package progmp_test

import (
	"fmt"
	"time"

	"progmp"
)

// Example shows the quickstart flow: dial a simulated two-path
// connection, load the default scheduler, transfer data.
func Example() {
	net := progmp.NewNetwork(42)
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		panic(err)
	}
	sched, err := progmp.LoadScheduler("default", progmp.Schedulers["minRTT"])
	if err != nil {
		panic(err)
	}
	conn.SetScheduler(sched)

	var delivered int64
	conn.OnDeliver(func(_ int64, size int, _ time.Duration) { delivered += int64(size) })
	net.At(0, func() { conn.Send(64 << 10) })
	net.Run(5 * time.Second)
	fmt.Printf("delivered %d bytes, all acked: %v\n", delivered, conn.AllAcked())
	// Output: delivered 65536 bytes, all acked: true
}

// ExampleCheckScheduler shows static checking of a custom scheduler:
// the type system rejects side effects in predicates before anything
// reaches the data path.
func ExampleCheckScheduler() {
	err := CheckBad()
	fmt.Println(err != nil)
	// Output: true
}

// CheckBad tries to load a scheduler that pops packets inside a
// condition — the classic mistake the model rules out (§3.3).
func CheckBad() error {
	return progmp.CheckScheduler(`IF (Q.POP() != NULL) { RETURN; }`)
}

// ExampleConn_SetRegister shows application-aware scheduling through
// registers: the TAP scheduler reads its target throughput from R1.
func ExampleConn_SetRegister() {
	net := progmp.NewNetwork(7)
	conn, err := net.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 1e6, OneWayDelay: 5 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
	)
	if err != nil {
		panic(err)
	}
	sched, err := progmp.LoadScheduler("tap", progmp.Schedulers["tap"])
	if err != nil {
		panic(err)
	}
	conn.SetScheduler(sched)
	conn.SetRegister(progmp.R1, 4<<20) // require 4 MB/s
	net.At(0, func() { conn.Send(1 << 20) })
	net.Run(10 * time.Second)
	stats := conn.Subflows()
	fmt.Printf("wifi used: %v, lte used: %v\n", stats[0].BytesSent > 0, stats[1].BytesSent > 0)
	// Output: wifi used: true, lte used: true
}

// ExampleDisassemble shows the bytecode view of a one-line scheduler.
func ExampleDisassemble() {
	asm, err := progmp.Disassemble(`IF (!Q.EMPTY) { SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP()); }`)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(asm) > 0)
	// Output: true
}
