// Command mpsim runs one MPTCP transfer scenario in the simulated
// network and reports per-subflow statistics and flow outcomes.
//
// Example:
//
//	mpsim -scheduler minRTT -send 1048576 \
//	      -path wifi:3e6:5ms:0:pref -path lte:8e6:20ms:0.01:backup
//
// With -guard the scheduler runs under supervision (panic recovery,
// action validation, stall detection, graceful degradation to native
// MinRTT). With -chaos the normal scenario is replaced by a seeded
// fault-injection soak:
//
//	mpsim -chaos meltdown -seed 7 -scheduler redundant
//	mpsim -chaos all -seed 42
//
// With -ctl the run is paced against the wall clock and serves the
// control plane on a socket, so a second terminal can steer it while
// it progresses (see docs/CONTROL.md and cmd/progmpctl):
//
//	mpsim -ctl /tmp/mpsim.sock -pace 1 -send 50000000 -duration 5m &
//	progmpctl -s /tmp/mpsim.sock swap redundant
//
// With -xstate every connection of the run (see -conns) attaches to
// one cross-connection shared-state store (docs/SHAREDSTATE.md):
// schedulers exchange the global registers G1..G8 and per-destination
// path statistics (XRTT, XLOST, XDELIVERED, XQUAR), and the control
// plane gains the gget/gset/deststats verbs:
//
//	mpsim -xstate -conns 4 -scheduler jointFlow -ctl /tmp/mpsim.sock &
//	progmpctl -s /tmp/mpsim.sock deststats
//	progmpctl -s /tmp/mpsim.sock gset G1 8
//
// With -fleet N the run becomes a sharded soak (docs/FLEET.md): N
// concurrent connections partitioned across per-core shards, each
// shard a batched event loop over self-contained connection worlds,
// reporting fleet p50/p99 scheduler-decision and delivery latency and
// steady-state bytes/conn:
//
//	mpsim -fleet 100000
//	mpsim -fleet 10000 -shards 4 -xstate -dest-groups 64 -metrics-http :9100
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"progmp"
	"progmp/internal/ctl"
	"progmp/internal/fleet"
	"progmp/internal/mptcp"
)

type pathFlags []progmp.Path

func (p *pathFlags) String() string { return fmt.Sprintf("%d paths", len(*p)) }

// Set parses "name:rateBps:delay:lossProb:pref|backup".
func (p *pathFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 5 {
		return fmt.Errorf("path %q: want name:rate:delay:loss:pref|backup", v)
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("path %q: bad rate: %v", v, err)
	}
	delay, err := time.ParseDuration(parts[2])
	if err != nil {
		return fmt.Errorf("path %q: bad delay: %v", v, err)
	}
	loss, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return fmt.Errorf("path %q: bad loss: %v", v, err)
	}
	backup := false
	switch parts[4] {
	case "backup":
		backup = true
	case "pref":
	default:
		return fmt.Errorf("path %q: last field must be pref or backup", v)
	}
	*p = append(*p, progmp.Path{
		Name: parts[0], RateBps: rate, OneWayDelay: delay, LossProb: loss, Backup: backup,
	})
	return nil
}

func main() {
	var paths pathFlags
	scheduler := flag.String("scheduler", "minRTT", "built-in scheduler name or a file path")
	backend := flag.String("backend", "vm", "execution backend: interpreter, compiled, vm")
	send := flag.Int("send", 1<<20, "bytes to transfer")
	prop := flag.Int64("prop", 0, "per-packet scheduling intent")
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Duration("duration", 60*time.Second, "simulation horizon")
	reg1 := flag.Int64("r1", 0, "initial value of register R1")
	cc := flag.String("cc", "", "congestion control: lia (default), olia, reno")
	pathmgr := flag.Bool("pathmgr", false, "enable the path manager (failure detection + backup promotion)")
	trace := flag.String("trace", "", "write a JSONL decision trace of the run to FILE")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	guard := flag.Bool("guard", false, "supervise the scheduler (panic recovery, validation, degradation)")
	chaos := flag.String("chaos", "", "run a chaos soak instead: scenario name or \"all\" (see -chaos list)")
	ctlAddr := flag.String("ctl", "", "serve the control plane on ADDR (a Unix socket path, or host:port for TCP) and run live")
	pace := flag.Float64("pace", 0, "live pacing with -ctl: virtual seconds per wall second (1 = real time, 0 = real time default, <0 = unpaced)")
	conns := flag.Int("conns", 1, "number of connections (each with its own scheduler instance and metrics registry)")
	xstate := flag.Bool("xstate", false, "attach every connection to one cross-connection shared-state store (globals G1..G8, per-destination path stats, gget/gset/deststats ctl verbs)")
	metricsInterval := flag.Duration("metrics-interval", 0, "sample aggregated fleet metrics every D of virtual time")
	metricsOut := flag.String("metrics-out", "", "write the sampled metrics time-series as JSONL to FILE (implies -metrics-interval 100ms)")
	metricsHTTP := flag.String("metrics-http", "", "serve the OpenMetrics exposition on host:port")
	fleetN := flag.Int("fleet", 0, "run a sharded fleet soak with N concurrent connections instead of a single scenario")
	shards := flag.Int("shards", 0, "fleet shard count (default GOMAXPROCS)")
	fleetSend := flag.Int("fleet-send", 16<<10, "fleet per-burst transfer size in bytes")
	destGroups := flag.Int("dest-groups", 0, "fleet destination-identity groups (spreads shared-store records; 0 = one identity per path)")
	flag.Var(&paths, "path", "path spec name:rateBps:delay:loss:pref|backup (repeatable)")
	flag.Parse()

	if *fleetN > 0 {
		// The 60s scenario default is a fleet-scale eternity; soak for
		// 2s of virtual time unless -duration was given explicitly.
		fleetDur := 2 * time.Second
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				fleetDur = *duration
			}
		})
		if err := runFleet(*scheduler, *backend, *fleetN, *shards, *fleetSend, *destGroups,
			*seed, fleetDur, *xstate, *guard, *metricsHTTP); err != nil {
			fmt.Fprintln(os.Stderr, "mpsim:", err)
			os.Exit(1)
		}
		return
	}
	if *chaos != "" {
		if err := runChaos(*chaos, *seed, *scheduler, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "mpsim:", err)
			os.Exit(1)
		}
		return
	}
	obsCfg := obsOptions{
		Conns:    *conns,
		XState:   *xstate,
		Interval: *metricsInterval,
		Out:      *metricsOut,
		HTTP:     *metricsHTTP,
	}
	if obsCfg.Out != "" && obsCfg.Interval <= 0 {
		obsCfg.Interval = 100 * time.Millisecond
	}
	if err := run(*scheduler, *backend, *send, *prop, *seed, *duration, *reg1, *cc, *pathmgr, *trace, *metrics, *guard, *ctlAddr, *pace, paths, obsCfg); err != nil {
		fmt.Fprintln(os.Stderr, "mpsim:", err)
		os.Exit(1)
	}
}

// obsOptions groups the fleet-level knobs: connection count, the
// shared-state store, time-series sampling, and the exposition
// endpoint.
type obsOptions struct {
	Conns    int
	XState   bool
	Interval time.Duration
	Out      string
	HTTP     string
}

// loadScheduler resolves a built-in name or a source file on the
// chosen backend.
func loadScheduler(scheduler, backend string) (*progmp.Scheduler, error) {
	src, ok := progmp.Schedulers[scheduler]
	if !ok {
		data, err := os.ReadFile(scheduler)
		if err != nil {
			return nil, fmt.Errorf("scheduler %q is neither built-in nor readable: %w", scheduler, err)
		}
		src = string(data)
	}
	var be progmp.Backend
	switch backend {
	case "interpreter":
		be = progmp.BackendInterpreter
	case "compiled":
		be = progmp.BackendCompiled
	case "vm":
		be = progmp.BackendVM
	default:
		return nil, fmt.Errorf("unknown backend %q", backend)
	}
	return progmp.LoadSchedulerBackend(scheduler, src, be)
}

// runFleet drives the sharded fleet soak (internal/fleet): n
// self-contained connection worlds across per-core shards, optional
// shared-state store and guard supervision, the OpenMetrics
// exposition served live off the shard loops' aggregated registries.
func runFleet(scheduler, backend string, n, shards, sendBytes, destGroups int, seed int64, duration time.Duration, useStore, guard bool, metricsHTTP string) error {
	// Fail fast on a bad scheduler/backend before building 100k worlds.
	if _, err := loadScheduler(scheduler, backend); err != nil {
		return err
	}
	agg := progmp.NewMetricsAggregator()
	var store *progmp.SharedStore
	if useStore {
		store = progmp.NewSharedStore()
	}
	if metricsHTTP != "" {
		// Exposition runs off the shard loops: Aggregate reads each
		// shard registry with atomic loads, so serving during the soak
		// never blocks a shard.
		hsrv := ctl.NewServer(ctl.Options{Agg: agg})
		hln, err := net.Listen("tcp", metricsHTTP)
		if err != nil {
			return err
		}
		go hsrv.ServeMetricsHTTP(hln)
		defer hsrv.Close()
		fmt.Printf("metrics http    http://%s/metrics\n", hln.Addr())
	}
	res, err := fleet.Run(fleet.Config{
		Conns:      n,
		Shards:     shards,
		Seed:       seed,
		Duration:   duration,
		SendBytes:  sendBytes,
		DestGroups: destGroups,
		NewScheduler: func() (mptcp.Scheduler, error) {
			return loadScheduler(scheduler, backend)
		},
		Program: scheduler,
		Guard:   guard,
		Store:   store,
		Agg:     agg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fleet           %d conns, %d shard(s), %v virtual in %v wall\n",
		res.Conns, res.Shards, res.VirtualDuration, res.Wall.Round(time.Millisecond))
	fmt.Printf("scheduler       %s (%s backend, shared per shard)\n", scheduler, backend)
	fmt.Printf("decision p50    %d ns   p99 %d ns\n", res.DecisionP50NS, res.DecisionP99NS)
	fmt.Printf("delivery p50    %d us   p99 %d us\n", res.DeliveryP50US, res.DeliveryP99US)
	fmt.Printf("bytes/conn      %d\n", res.BytesPerConn)
	fmt.Printf("delivered       %d bytes in %d bursts (%d/%d conns fully acked)\n",
		res.DeliveredBytes, res.Bursts, res.Acked, res.Conns)
	fmt.Printf("events          %d\n", res.Events)
	if store != nil {
		fmt.Printf("shared state    epoch %d, %d live dest(s), %d evicted\n",
			store.Epoch(), store.NumDests(), res.EvictedDests)
	}
	return nil
}

// runChaos soaks the scheduler through one (or every) chaos scenario
// and verifies conservation: every byte delivered exactly once, in
// order, fully acknowledged.
func runChaos(scenario string, seed int64, scheduler, backend string) error {
	names := []string{scenario}
	if scenario == "all" {
		names = progmp.ChaosScenarioNames()
	} else if scenario == "list" {
		for _, name := range progmp.ChaosScenarioNames() {
			fmt.Printf("%-10s %s\n", name, progmp.ChaosScenarioDesc(name))
		}
		return nil
	}
	sched, err := loadScheduler(scheduler, backend)
	if err != nil {
		return err
	}
	failed := 0
	for _, name := range names {
		res, err := progmp.RunChaos(name, seed, sched)
		if err != nil {
			failed++
			fmt.Printf("FAIL %-10s seed=%d: %v\n", name, seed, err)
			continue
		}
		fmt.Printf("PASS %-10s seed=%d delivered=%d segments=%d fct=%v closed=%d promoted=%d\n",
			name, res.Seed, res.DeliveredBytes, res.Segments, res.FCT.Round(time.Millisecond),
			res.ClosedByManager, res.Promotions)
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d chaos scenarios failed conservation", failed, len(names))
	}
	return nil
}

func run(scheduler, backend string, send int, prop, seed int64, duration time.Duration, reg1 int64, cc string, pathmgr bool, trace string, metrics, guard bool, ctlAddr string, pace float64, paths pathFlags, o obsOptions) error {
	sched, err := loadScheduler(scheduler, backend)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		paths = pathFlags{
			{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
			{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
		}
	}
	if o.Conns < 1 {
		o.Conns = 1
	}
	nw := progmp.NewNetwork(seed)
	// -xstate: one store shared by every connection of the run, so
	// schedulers exchange globals and per-destination path statistics
	// across connections and the control plane can read and steer them.
	var store *progmp.SharedStore
	if o.XState {
		store = progmp.NewSharedStore()
	}
	conn, err := nw.Dial(progmp.ConnConfig{CongestionControl: cc, Store: store}, paths...)
	if err != nil {
		return err
	}
	var sup *progmp.Supervisor
	var fleet *progmp.Fleet
	if guard {
		sup = conn.Supervise(sched, progmp.SupervisorConfig{})
		// The fleet tier: every supervised connection running the same
		// program counts toward its fleet-quarantine threshold, and the
		// control plane refuses to reinstall a fleet-blocked program.
		fleet = nw.NewFleet(progmp.FleetConfig{})
		if err := conn.JoinFleet(fleet, scheduler); err != nil {
			return err
		}
	} else {
		conn.SetScheduler(sched)
	}
	var tracer *progmp.Tracer
	var reg *progmp.Metrics
	if trace != "" || ctlAddr != "" {
		// The control plane needs a tracer for its subscribe verb.
		tracer = progmp.NewTracer(0)
	}
	wantFleet := o.Conns > 1 || o.Interval > 0 || o.Out != "" || o.HTTP != ""
	if metrics || ctlAddr != "" || wantFleet {
		reg = progmp.NewMetrics()
	}
	if tracer != nil || reg != nil {
		conn.Instrument(tracer, reg)
	}
	// The fleet tier: every connection's registry feeds one aggregator,
	// so the ctl metrics-agg verb, the HTTP exposition and the
	// time-series recorder see the whole run.
	var agg *progmp.MetricsAggregator
	if reg != nil {
		agg = progmp.NewMetricsAggregator()
		agg.Attach(progmp.MetricsLabels{Conn: "c1", Scheduler: scheduler}, reg)
		if store != nil {
			// The store's epochs/gsets/dests counters ride the primary
			// registry into the fleet aggregation.
			store.Instrument(reg)
		}
	}
	if pathmgr {
		conn.EnablePathManager(progmp.PathManagerConfig{PromoteBackupOnDeath: true})
	}
	if reg1 != 0 {
		conn.SetRegister(progmp.R1, reg1)
	}
	var delivered int64
	var fct time.Duration
	conn.OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		if delivered >= int64(send) && fct == 0 {
			fct = at
		}
	})
	nw.At(0, func() { conn.SendWithIntent(send, prop) })

	// Secondary connections (-conns): same paths, a fresh scheduler
	// instance and an own labeled registry each, same transfer size.
	extras := make([]*progmp.Conn, 0, o.Conns-1)
	for i := 2; i <= o.Conns; i++ {
		xc, err := nw.Dial(progmp.ConnConfig{CongestionControl: cc, Store: store}, paths...)
		if err != nil {
			return err
		}
		xs, err := loadScheduler(scheduler, backend)
		if err != nil {
			return err
		}
		if guard {
			xc.Supervise(xs, progmp.SupervisorConfig{})
			if err := xc.JoinFleet(fleet, scheduler); err != nil {
				return err
			}
		} else {
			xc.SetScheduler(xs)
		}
		xreg := progmp.NewMetrics()
		xc.Instrument(nil, xreg)
		agg.Attach(progmp.MetricsLabels{Conn: fmt.Sprintf("c%d", i), Scheduler: scheduler}, xreg)
		// Teardown wiring: once the secondary transfer fully drains, the
		// connection leaves the fleet merge — the exposition stops
		// carrying the finished source instead of serving it forever —
		// and its shared-store destination references are released so
		// idle records can be evicted.
		xc.OnAllAcked(func() {
			agg.Remove(xreg)
			xc.ReleaseDests()
		})
		nw.At(0, func() { xc.SendWithIntent(send, prop) })
		extras = append(extras, xc)
	}

	// Time-series recorder: samples on the virtual clock via a
	// self-rescheduling event, so it works identically under Run and
	// RunLive.
	var series *progmp.MetricsTimeSeries
	if o.Interval > 0 {
		series = progmp.NewMetricsTimeSeries(agg, 0)
		var tick func()
		next := o.Interval
		tick = func() {
			series.Sample(nw.Now())
			next += o.Interval
			if next <= duration {
				nw.At(next, tick)
			}
		}
		nw.At(o.Interval, tick)
	}
	if o.HTTP != "" {
		hsrv := ctl.NewServer(ctl.Options{Network: nw, Agg: agg})
		hln, err := net.Listen("tcp", o.HTTP)
		if err != nil {
			return err
		}
		go hsrv.ServeMetricsHTTP(hln)
		defer hsrv.Close()
		fmt.Printf("metrics http    http://%s/metrics\n", hln.Addr())
	}

	if ctlAddr != "" {
		if err := runWithControlPlane(nw, conn, extras, tracer, reg, agg, fleet, store, ctlAddr, pace, duration); err != nil {
			return err
		}
	} else {
		nw.Run(duration)
	}

	fmt.Printf("scheduler       %s (%s backend)\n", scheduler, backend)
	fmt.Printf("transferred     %d / %d bytes\n", delivered, send)
	if fct > 0 {
		fmt.Printf("completion time %v\n", fct)
		fmt.Printf("goodput         %.2f MB/s\n", float64(send)/fct.Seconds()/1e6)
	} else {
		fmt.Printf("completion time DID NOT COMPLETE within %v\n", duration)
	}
	fmt.Printf("%-8s %12s %10s %8s %8s %10s\n", "subflow", "bytes", "packets", "retx", "srtt", "cwnd")
	for _, s := range conn.Subflows() {
		fmt.Printf("%-8s %12d %10d %8d %8v %10.1f\n",
			s.Name, s.BytesSent, s.PktsSent, s.Retransmissions, s.SRTT.Round(time.Millisecond), s.Cwnd)
	}
	if sup != nil {
		fmt.Printf("guard           state=%v strikes=%d panics=%d violations=%d stalls=%d quarantines=%d restores=%d\n",
			sup.State(), sup.Strikes(), sup.Panics, sup.Violations, sup.Stalls, sup.Quarantines, sup.Restores)
	}
	if tracer != nil && trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := progmp.WriteTraceJSONL(f, tracer.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace           %s (%d events, %d overwritten)\n", trace, len(tracer.Events()), tracer.Dropped())
	}
	if len(extras) > 0 {
		done := 0
		for _, xc := range extras {
			if xc.AllAcked() {
				done++
			}
		}
		fmt.Printf("fleet           %d connections (%d secondary complete)\n", len(extras)+1, done)
		// Completed secondaries leave the aggregation (see the teardown
		// wiring above), so the live-source count proves the exposition
		// stopped serving finished connections.
		fmt.Printf("exposition      %d live source(s)\n", agg.NumSources())
	}
	if store != nil {
		snap := store.Load()
		fmt.Printf("shared state    epoch %d, %d destination(s)\n", snap.Epoch, len(snap.Dests))
		for i, g := range snap.Globals {
			if g != 0 {
				fmt.Printf("  G%d = %d\n", i+1, g)
			}
		}
		for _, d := range store.All() {
			fmt.Printf("  %-10s srtt=%-8v lost=%-5d quar=%-4d delivered=%d samples=%d\n",
				d.Name, time.Duration(d.SRTTUS)*time.Microsecond,
				d.Lost, d.Quarantines, d.Delivered, d.Samples)
		}
	}
	if series != nil {
		if o.Out != "" {
			f, err := os.Create(o.Out)
			if err != nil {
				return err
			}
			if err := series.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("metrics series  %s (%d samples, %d overwritten)\n", o.Out, series.Len(), series.Dropped())
		} else {
			fmt.Printf("metrics series  %d samples retained (%d overwritten)\n", series.Len(), series.Dropped())
		}
	}
	if reg != nil && metrics {
		fmt.Print(reg.Render())
	}
	return nil
}

// runWithControlPlane drives the scenario with RunLive while a ctl
// server on addr lets a second process (progmpctl) steer it. SIGINT
// and SIGTERM shut the run down gracefully: the server drains (stops
// accepting, finishes inflight requests, ends subscriptions, flushes
// the fleet metrics) before the simulation stops.
func runWithControlPlane(nw *progmp.Network, conn *progmp.Conn, extras []*progmp.Conn, tracer *progmp.Tracer, reg *progmp.Metrics, agg *progmp.MetricsAggregator, fleet *progmp.Fleet, store *progmp.SharedStore, addr string, pace float64, duration time.Duration) error {
	network := "unix"
	if !strings.Contains(addr, "/") && strings.Contains(addr, ":") {
		network = "tcp"
	}
	if network == "unix" {
		os.Remove(addr) // a stale socket file from a previous run
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	srv := ctl.NewServer(ctl.Options{Network: nw, Tracer: tracer, Metrics: reg, Agg: agg, Fleet: fleet, Store: store})
	srv.Register("mpsim", conn)
	for i, xc := range extras {
		srv.Register(fmt.Sprintf("mpsim%d", i+2), xc)
	}
	go srv.Serve(ln)
	if pace == 0 {
		pace = 1 // real time, so there is something to steer
	}
	fmt.Printf("control plane   %s://%s (pace %gx)\n", network, addr, pace)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return // run ended on its own
		}
		fmt.Fprintf(os.Stderr, "mpsim: %v: draining control plane\n", s)
		srv.Drain(0)
		nw.StopLive()
	}()
	// A remote `progmpctl drain` should end the whole process, not just
	// the control plane: watch for it and stop the live run too.
	drainPoll := time.NewTicker(100 * time.Millisecond)
	go func() {
		for range drainPoll.C {
			if srv.Draining() {
				nw.StopLive()
				return
			}
		}
	}()
	nw.RunLive(duration, pace)
	drainPoll.Stop()
	signal.Stop(sig)
	close(sig)
	nw.StopLive()
	srv.Close()
	if network == "unix" {
		os.Remove(addr)
	}
	return nil
}
