// Command progmp-vet lints ProgMP scheduler programs with the static
// analyzer (internal/analysis): the standalone face of the admission
// gate that core.Load and the ctl swap verb apply at runtime.
//
// Usage:
//
//	progmp-vet [flags] [target ...]
//
// Each target is a .progmp source file, a directory (searched
// recursively for *.progmp files), or builtin:NAME for a scheduler
// from the shipped corpus. With -all, every built-in scheduler is
// linted in addition to the named targets.
//
//	-all    lint every built-in scheduler from the corpus
//	-json   machine-readable output (one JSON object per target)
//	-v      also show info-level diagnostics and step bounds
//
// Exit status: 0 when every target is clean (errors and warnings both
// count as findings; infos do not), 1 when any finding is reported,
// 2 on usage or I/O errors.
//
// Diagnostics print in compiler form — file:line:col: severity:
// message [rule-id] — and can be suppressed in source with a
// `//vet:ignore rule-id` comment on or above the offending line. The
// rule catalogue is documented in docs/ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"progmp/internal/analysis"
	"progmp/internal/schedlib"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// target is one program to lint: a display name and its source.
type target struct {
	Name string
	Src  string
}

// result pairs a target with its report for -json output.
type result struct {
	Target string           `json:"target"`
	Report *analysis.Report `json:"report"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("progmp-vet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	all := fl.Bool("all", false, "lint every built-in scheduler from the corpus")
	asJSON := fl.Bool("json", false, "machine-readable output")
	verbose := fl.Bool("v", false, "also show info-level diagnostics and step bounds")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: progmp-vet [flags] [file.progmp|dir|builtin:NAME ...]\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() == 0 && !*all {
		fl.Usage()
		return 2
	}

	targets, err := collectTargets(fl.Args(), *all)
	if err != nil {
		fmt.Fprintf(stderr, "progmp-vet: %v\n", err)
		return 2
	}

	findings := 0
	var results []result
	for _, tgt := range targets {
		rep := analysis.AnalyzeSource(tgt.Src, analysis.Options{})
		findings += rep.Errors() + rep.Warnings()
		if *asJSON {
			results = append(results, result{Target: tgt.Name, Report: rep})
			continue
		}
		for _, d := range rep.Diagnostics {
			if d.Severity == analysis.SevInfo && !*verbose {
				continue
			}
			fmt.Fprintf(stdout, "%s:%s\n", tgt.Name, d)
		}
		if *verbose {
			fmt.Fprintf(stdout, "%s: step bound %s (%d steps at reference size)\n",
				tgt.Name, rep.StepBound, rep.StepBoundAt)
			if rep.Suppressed > 0 {
				fmt.Fprintf(stdout, "%s: %d diagnostic(s) suppressed\n", tgt.Name, rep.Suppressed)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(stderr, "progmp-vet: %v\n", err)
			return 2
		}
	}
	if findings > 0 {
		if !*asJSON {
			fmt.Fprintf(stdout, "progmp-vet: %d finding(s) across %d program(s)\n", findings, len(targets))
		}
		return 1
	}
	return 0
}

// collectTargets expands CLI arguments into lintable programs.
func collectTargets(args []string, all bool) ([]target, error) {
	var targets []target
	if all {
		names := make([]string, 0, len(schedlib.All))
		for name := range schedlib.All {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			targets = append(targets, target{Name: "builtin:" + name, Src: schedlib.All[name]})
		}
	}
	for _, arg := range args {
		switch {
		case strings.HasPrefix(arg, "builtin:"):
			name := strings.TrimPrefix(arg, "builtin:")
			src, ok := schedlib.All[name]
			if !ok {
				return nil, fmt.Errorf("unknown built-in scheduler %q", name)
			}
			targets = append(targets, target{Name: arg, Src: src})
		default:
			info, err := os.Stat(arg)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				src, err := os.ReadFile(arg)
				if err != nil {
					return nil, err
				}
				targets = append(targets, target{Name: arg, Src: string(src)})
				continue
			}
			err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() || !strings.HasSuffix(path, ".progmp") {
					return nil
				}
				src, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				targets = append(targets, target{Name: path, Src: string(src)})
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no .progmp files found")
	}
	return targets, nil
}
