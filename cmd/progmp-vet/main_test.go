package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"progmp/internal/analysis"
)

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestBuiltinClean(t *testing.T) {
	code, stdout, stderr := runVet(t, "builtin:minRTT")
	if code != 0 {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("expected silence for a clean target, got %q", stdout)
	}
}

func TestAllBuiltinsClean(t *testing.T) {
	code, stdout, stderr := runVet(t, "-all")
	if code != 0 {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

func TestBuggyFileFindings(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "buggy.progmp")
	// Never pushes and scans a guaranteed-false filter.
	src := "VAR none = SUBFLOWS.FILTER(s => 1 > 2);\nIF (!none.EMPTY) {\n    SET(R1, 1);\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runVet(t, path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q", code, stdout)
	}
	for _, rule := range []string{"[no-push]", "[false-filter]"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("output missing %s:\n%s", rule, stdout)
		}
	}
	if !strings.Contains(stdout, path+":") {
		t.Errorf("diagnostics not prefixed with the file path:\n%s", stdout)
	}
	if !strings.Contains(stdout, "finding(s)") {
		t.Errorf("missing summary line:\n%s", stdout)
	}
}

func TestDirectoryWalk(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "nested")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	clean := "SUBFLOWS.MIN(s => s.RTT).PUSH(RQ.POP());\n"
	buggy := "SET(R1, 1 / 0);\nSUBFLOWS.MIN(s => s.RTT).PUSH(RQ.POP());\n"
	if err := os.WriteFile(filepath.Join(dir, "clean.progmp"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "buggy.progmp"), []byte(buggy), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-.progmp file must be skipped, not parsed.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout %q", code, stdout)
	}
	if !strings.Contains(stdout, "[div-zero]") {
		t.Errorf("missing div-zero finding from nested file:\n%s", stdout)
	}
	if strings.Contains(stdout, "clean.progmp:") && !strings.Contains(stdout, "across 2 program(s)") {
		t.Errorf("clean file should produce no diagnostics:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warn.progmp")
	if err := os.WriteFile(path, []byte("SET(R1, R1 + 1);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runVet(t, "-json", "builtin:minRTT", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var results []result
	if err := json.Unmarshal([]byte(stdout), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Target != "builtin:minRTT" || results[0].Report.Warnings() != 0 {
		t.Errorf("minRTT report: %+v", results[0])
	}
	if results[1].Report.Warnings() == 0 {
		t.Errorf("warn.progmp should carry warnings: %+v", results[1].Report)
	}
	found := false
	for _, d := range results[1].Report.Diagnostics {
		if d.Rule == analysis.RuleNoPush {
			found = true
		}
	}
	if !found {
		t.Errorf("no-push missing from JSON diagnostics: %+v", results[1].Report.Diagnostics)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runVet(t, "builtin:nope"); code != 2 {
		t.Errorf("unknown builtin: exit %d, want 2", code)
	}
	if code, _, _ := runVet(t, "/nonexistent/path.progmp"); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code, _, stderr := runVet(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no targets: exit %d, stderr %q; want 2 with usage", code, stderr)
	}
}

func TestExamplesShipClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "schedulers")
	if _, err := os.Stat(dir); err != nil {
		t.Skip("examples not present")
	}
	code, stdout, stderr := runVet(t, dir)
	if code != 0 {
		t.Fatalf("shipped examples must vet clean: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}
