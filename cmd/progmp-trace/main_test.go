package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"progmp"
	"progmp/internal/obs"
)

func twoPathScenario(scheduler string) scenario {
	return scenario{
		scheduler: scheduler,
		backend:   "vm",
		send:      1 << 18,
		seed:      7,
		duration:  60 * time.Second,
		paths: []progmp.Path{
			{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
			{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond},
		},
	}
}

// TestEveryTransmissionAttributable is the acceptance property of the
// tracing layer: replaying a two-path scenario and exporting JSONL,
// every transmitted packet's subflow choice is attributable — through
// its exec id — to a scheduler execution event in the trace.
func TestEveryTransmissionAttributable(t *testing.T) {
	sc := twoPathScenario("minRTT")
	tracer, _, err := replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("ring overwrote %d events; enlarge the test ring", tracer.Dropped())
	}

	var buf bytes.Buffer
	if err := emit(&buf, "jsonl", tracer.Events(), 0); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	execStarts := map[uint64]bool{}
	for _, ev := range parsed {
		if ev.Ev == "EXEC_START" {
			execStarts[ev.Exec] = true
		}
	}
	if len(execStarts) == 0 {
		t.Fatal("no scheduler execution events in the trace")
	}

	pushedSeqs := map[int64]bool{}
	for _, ev := range parsed {
		if ev.Ev != "PUSH" {
			continue
		}
		if ev.Sbf < 0 {
			t.Fatalf("PUSH of seq %d has no subflow", ev.Seq)
		}
		if ev.Exec == 0 {
			t.Fatalf("PUSH of seq %d on subflow %d is outside any scheduler execution", ev.Seq, ev.Sbf)
		}
		if !execStarts[ev.Exec] {
			t.Fatalf("PUSH of seq %d references unknown execution %d", ev.Seq, ev.Exec)
		}
		pushedSeqs[ev.Seq] = true
	}

	// Every enqueued segment must have been transmitted (the transfer
	// completes in 60 virtual seconds) and hence appear as a PUSH.
	mss := 1460
	segments := (sc.send + mss - 1) / mss
	for seq := 0; seq < segments; seq++ {
		if !pushedSeqs[int64(seq)] {
			t.Fatalf("segment %d was never pushed (have %d pushed seqs)", seq, len(pushedSeqs))
		}
	}
}

// TestRedundantUsesBothSubflows checks that subflow choice is visible
// in the trace: the redundant scheduler transmits on both paths.
func TestRedundantUsesBothSubflows(t *testing.T) {
	tracer, _, err := replay(twoPathScenario("redundant"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.EvPush {
			seen[ev.Sbf] = true
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("redundant scheduler should push on both subflows, saw %v", seen)
	}
}

// TestSummaryReportsFullAttribution checks the human-readable summary
// agrees with the acceptance property.
func TestSummaryReportsFullAttribution(t *testing.T) {
	tracer, _, err := replay(twoPathScenario("minRTT"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSummary(&buf, tracer.Events(), tracer.Dropped()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "attribution:") {
		t.Fatalf("summary lacks attribution line:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "attribution:") {
			var got, want int
			if _, err := fmt.Sscanf(line, "attribution: %d/%d", &got, &want); err != nil {
				t.Fatalf("unparsable attribution line %q: %v", line, err)
			}
			if got != want {
				t.Fatalf("partial attribution: %s", line)
			}
		}
	}
}

// TestFilterKinds checks the -kinds filter keeps only requested events.
func TestFilterKinds(t *testing.T) {
	tracer, _, err := replay(twoPathScenario("minRTT"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := filterKinds(tracer.Events(), "PUSH, DROP")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("filter removed everything")
	}
	for _, ev := range events {
		if ev.Kind != obs.EvPush && ev.Kind != obs.EvDrop {
			t.Fatalf("unexpected kind %v after filter", ev.Kind)
		}
	}
	if _, err := filterKinds(nil, "NOPE"); err == nil {
		t.Fatal("unknown kind should error")
	}
}
