// Command progmp-trace replays an MPTCP transfer scenario with
// decision tracing enabled and emits the trace, so that every
// transmitted packet's subflow choice is attributable to the scheduler
// execution — and the decision site inside the scheduler program — that
// produced it.
//
// Example:
//
//	progmp-trace -scheduler minRTT -send 262144 -format summary
//	progmp-trace -scheduler redundant -format chrome -o trace.json
//	progmp-trace -kinds PUSH,DROP -o pushes.jsonl
//
// Formats:
//
//	jsonl    one JSON object per event (default; see docs/OBSERVABILITY.md)
//	chrome   Chrome trace_event JSON for chrome://tracing / Perfetto
//	summary  per-kind counts, per-subflow pushes and attribution stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"progmp"
	"progmp/internal/ctl"
	"progmp/internal/obs"
)

// scenario describes one replay run.
type scenario struct {
	scheduler string
	backend   string
	send      int
	prop      int64
	seed      int64
	duration  time.Duration
	reg1      int64
	cc        string
	ringCap   int
	guard     bool
	paths     []progmp.Path
}

type pathFlags []progmp.Path

func (p *pathFlags) String() string { return fmt.Sprintf("%d paths", len(*p)) }

// Set parses "name:rateBps:delay:lossProb:pref|backup" (the mpsim
// path-spec syntax).
func (p *pathFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 5 {
		return fmt.Errorf("path %q: want name:rate:delay:loss:pref|backup", v)
	}
	var rate, loss float64
	if _, err := fmt.Sscanf(parts[1], "%g", &rate); err != nil {
		return fmt.Errorf("path %q: bad rate: %v", v, err)
	}
	delay, err := time.ParseDuration(parts[2])
	if err != nil {
		return fmt.Errorf("path %q: bad delay: %v", v, err)
	}
	if _, err := fmt.Sscanf(parts[3], "%g", &loss); err != nil {
		return fmt.Errorf("path %q: bad loss: %v", v, err)
	}
	backup := false
	switch parts[4] {
	case "backup":
		backup = true
	case "pref":
	default:
		return fmt.Errorf("path %q: last field must be pref or backup", v)
	}
	*p = append(*p, progmp.Path{
		Name: parts[0], RateBps: rate, OneWayDelay: delay, LossProb: loss, Backup: backup,
	})
	return nil
}

func main() {
	var paths pathFlags
	scheduler := flag.String("scheduler", "minRTT", "built-in scheduler name or a file path")
	backend := flag.String("backend", "vm", "execution backend: interpreter, compiled, vm")
	send := flag.Int("send", 1<<18, "bytes to transfer")
	prop := flag.Int64("prop", 0, "per-packet scheduling intent")
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Duration("duration", 60*time.Second, "simulation horizon")
	reg1 := flag.Int64("r1", 0, "initial value of register R1")
	cc := flag.String("cc", "", "congestion control: lia (default), olia, reno")
	ringCap := flag.Int("cap", 0, "trace ring capacity in events (0 = default 65536)")
	format := flag.String("format", "jsonl", "output format: jsonl, chrome, summary")
	out := flag.String("o", "", "output file (default stdout)")
	kinds := flag.String("kinds", "", "comma-separated event kinds to keep (e.g. PUSH,DROP); empty keeps all")
	metrics := flag.Bool("metrics", false, "append the metrics registry to stderr")
	guard := flag.Bool("guard", false, "run the scheduler under supervision so GUARD_* transitions appear in the trace")
	top := flag.Bool("top", false, "live fleet summary of a running control plane instead of a replay (progmp-top mode)")
	topAddr := flag.String("s", "/tmp/progmp.sock", "-top: control-plane address (Unix socket path or host:port)")
	topInterval := flag.Duration("interval", time.Second, "-top: refresh interval")
	topCount := flag.Int("count", 0, "-top: number of refreshes (0 = until interrupted)")
	flag.Var(&paths, "path", "path spec name:rateBps:delay:loss:pref|backup (repeatable)")
	flag.Parse()

	if *top {
		if err := runTop(*topAddr, *topInterval, *topCount); err != nil {
			fmt.Fprintln(os.Stderr, "progmp-trace:", err)
			os.Exit(1)
		}
		return
	}
	sc := scenario{
		scheduler: *scheduler, backend: *backend, send: *send, prop: *prop,
		seed: *seed, duration: *duration, reg1: *reg1, cc: *cc,
		ringCap: *ringCap, guard: *guard, paths: paths,
	}
	if err := run(sc, *format, *out, *kinds, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "progmp-trace:", err)
		os.Exit(1)
	}
}

func run(sc scenario, format, out, kinds string, metrics bool) error {
	tracer, reg, err := replay(sc)
	if err != nil {
		return err
	}
	events := tracer.Events()
	if kinds != "" {
		events, err = filterKinds(events, kinds)
		if err != nil {
			return err
		}
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := emit(w, format, events, tracer.Dropped()); err != nil {
		return err
	}
	if metrics {
		fmt.Fprint(os.Stderr, reg.Render())
	}
	return nil
}

// replay runs the scenario with tracing and metrics attached and
// returns the instruments after the simulation drains.
func replay(sc scenario) (*progmp.Tracer, *progmp.Metrics, error) {
	src, ok := progmp.Schedulers[sc.scheduler]
	if !ok {
		data, err := os.ReadFile(sc.scheduler)
		if err != nil {
			return nil, nil, fmt.Errorf("scheduler %q is neither built-in nor readable: %w", sc.scheduler, err)
		}
		src = string(data)
	}
	var be progmp.Backend
	switch sc.backend {
	case "interpreter":
		be = progmp.BackendInterpreter
	case "compiled":
		be = progmp.BackendCompiled
	case "vm":
		be = progmp.BackendVM
	default:
		return nil, nil, fmt.Errorf("unknown backend %q", sc.backend)
	}
	sched, err := progmp.LoadSchedulerBackend(sc.scheduler, src, be)
	if err != nil {
		return nil, nil, err
	}
	paths := sc.paths
	if len(paths) == 0 {
		paths = []progmp.Path{
			{Name: "wifi", RateBps: 3e6, OneWayDelay: 5 * time.Millisecond},
			{Name: "lte", RateBps: 8e6, OneWayDelay: 20 * time.Millisecond, Backup: true},
		}
	}
	net := progmp.NewNetwork(sc.seed)
	conn, err := net.Dial(progmp.ConnConfig{CongestionControl: sc.cc}, paths...)
	if err != nil {
		return nil, nil, err
	}
	if sc.guard {
		conn.Supervise(sched, progmp.SupervisorConfig{})
	} else {
		conn.SetScheduler(sched)
	}
	tracer := progmp.NewTracer(sc.ringCap)
	reg := progmp.NewMetrics()
	conn.Instrument(tracer, reg)
	if sc.reg1 != 0 {
		conn.SetRegister(progmp.R1, sc.reg1)
	}
	net.At(0, func() { conn.SendWithIntent(sc.send, sc.prop) })
	net.Run(sc.duration)
	return tracer, reg, nil
}

// filterKinds keeps only events whose kind is in the comma-separated
// list.
func filterKinds(events []progmp.TraceEvent, kinds string) ([]progmp.TraceEvent, error) {
	keep := map[obs.EventKind]bool{}
	for _, name := range strings.Split(kinds, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := obs.KindFromString(name)
		if !ok {
			return nil, fmt.Errorf("unknown event kind %q", name)
		}
		keep[k] = true
	}
	var out []progmp.TraceEvent
	for _, ev := range events {
		if keep[ev.Kind] {
			out = append(out, ev)
		}
	}
	return out, nil
}

func emit(w io.Writer, format string, events []progmp.TraceEvent, dropped uint64) error {
	switch format {
	case "jsonl":
		return progmp.WriteTraceJSONL(w, events)
	case "chrome":
		return progmp.WriteChromeTrace(w, events)
	case "summary":
		return writeSummary(w, events, dropped)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// writeSummary renders per-kind counts, per-subflow pushes and the
// attribution statistics: how many transmissions trace back to a
// scheduler execution event retained in the ring.
func writeSummary(w io.Writer, events []progmp.TraceEvent, dropped uint64) error {
	kindCount := map[string]int{}
	sbfPushes := map[int32]int{}
	execs := map[uint64]bool{}
	var pushes, attributed int
	for _, ev := range events {
		kindCount[ev.Kind.String()]++
		if ev.Kind == obs.EvExecStart {
			execs[ev.Exec] = true
		}
	}
	for _, ev := range events {
		if ev.Kind != obs.EvPush {
			continue
		}
		pushes++
		sbfPushes[ev.Sbf]++
		if ev.Exec != 0 && execs[ev.Exec] {
			attributed++
		}
	}
	fmt.Fprintf(w, "events    %d retained, %d overwritten\n", len(events), dropped)
	names := make([]string, 0, len(kindCount))
	for name := range kindCount {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-12s %d\n", name, kindCount[name])
	}
	sbfs := make([]int, 0, len(sbfPushes))
	for id := range sbfPushes {
		sbfs = append(sbfs, int(id))
	}
	sort.Ints(sbfs)
	for _, id := range sbfs {
		fmt.Fprintf(w, "pushes on subflow %d: %d\n", id, sbfPushes[int32(id)])
	}
	if pushes > 0 {
		fmt.Fprintf(w, "attribution: %d/%d transmissions trace to a retained scheduler execution\n", attributed, pushes)
	}
	// Quarantine events carry the static analyzer's warning count at
	// admission in Site: a non-zero count means the supervisor had to
	// degrade a scheduler the admission gate had already flagged.
	var quarantines int
	var admissionWarn int32
	for _, ev := range events {
		if ev.Kind == obs.EvGuardQuarantine {
			quarantines++
			if ev.Site > admissionWarn {
				admissionWarn = ev.Site
			}
		}
	}
	if quarantines > 0 && admissionWarn > 0 {
		fmt.Fprintf(w, "quarantined scheduler was admitted with %d analyzer warning(s); run progmp-vet on it\n", admissionWarn)
	}
	return nil
}

// runTop is progmp-top: a live fleet dashboard over a running control
// plane. Each frame shows the connection table (list verb) and the
// fleet-aggregated metrics (metrics-agg verb) — totals, hot-path
// latency quantiles, control-plane self-metrics.
func runTop(addr string, interval time.Duration, count int) error {
	network := "unix"
	if !strings.Contains(addr, "/") && strings.Contains(addr, ":") {
		network = "tcp"
	}
	c, err := ctl.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("connecting to %s://%s: %w", network, addr, err)
	}
	defer c.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			select {
			case <-sig:
				return nil
			case <-time.After(interval):
			}
		}
		frame, err := topFrame(c)
		if err != nil {
			return err
		}
		if count != 1 {
			// Clear and home between refreshes; a single-shot frame
			// (-count 1) stays pipeable.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(frame)
	}
	return nil
}

// topFrame renders one dashboard frame.
func topFrame(c *ctl.Client) (string, error) {
	ping, err := c.Ping()
	if err != nil {
		return "", err
	}
	list, err := c.List()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "progmp-top  virtual %v  conns %d\n",
		(time.Duration(ping.NowUS) * time.Microsecond).Round(time.Millisecond), len(list.Conns))
	for _, ci := range list.Conns {
		sched := ci.Scheduler
		if ci.Supervised {
			sched += " guarded:" + ci.GuardState
		}
		fmt.Fprintf(&b, "  conn %-2d %-10s %-24s queued=%-6d unacked=%-6d allAcked=%v\n",
			ci.ID, ci.Name, sched, ci.QueuedSegs, ci.UnackedSegs, ci.AllAcked)
	}
	// Fleet aggregation is optional server-side; a server without an
	// aggregator still gets the connection table.
	agg, err := c.MetricsAgg("json")
	if err != nil || agg.Snapshot == nil {
		fmt.Fprintf(&b, "fleet metrics unavailable: no aggregator attached\n")
		return b.String(), nil
	}
	snap := agg.Snapshot
	fmt.Fprintf(&b, "fleet    %d metric sources\n", agg.NumSources)
	for _, name := range []string{"conn.sched_execs", "conn.pushes", "conn.reinjects", "conn.drops", "ctl.requests"} {
		if v, ok := snap.Counters[name]; ok {
			fmt.Fprintf(&b, "  %-24s %12d\n", name, v)
		}
	}
	for _, name := range []string{"conn.sched_exec_ns", "conn.sched_apply_ns", "ctl.request_ns"} {
		if h, ok := snap.Hists[name]; ok && h.Count > 0 {
			fmt.Fprintf(&b, "  %-24s n=%-9d p50=%-7d p99=%-7d p999=%d ns\n",
				name, h.Count, h.P50, h.P99, h.P999)
		}
	}
	return b.String(), nil
}
