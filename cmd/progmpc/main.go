// Command progmpc is the ProgMP scheduler compiler front-end: it
// checks, formats and disassembles scheduler specifications, and lists
// the built-in corpus.
//
// Usage:
//
//	progmpc check  <file|builtin:NAME>        parse + type-check
//	progmpc fmt    <file|builtin:NAME>        print canonical formatting
//	progmpc disasm <file|builtin:NAME>        print bytecode disassembly
//	progmpc exec   <file|builtin:NAME> <env>  run one execution against a
//	                                          JSON environment and print
//	                                          the resulting actions
//	progmpc profile <file|builtin:NAME> <env> per-instruction execution
//	                                          counts for one run
//	progmpc bench  <file|builtin:NAME> [env]  time the scheduler on all
//	                                          three back-ends
//	progmpc env-example                       print a starter environment
//	progmpc list                              list built-in schedulers
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"progmp"
	"progmp/internal/core"
	"progmp/internal/envjson"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
	"progmp/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progmpc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "list":
		names := make([]string, 0, len(progmp.Schedulers))
		for name := range progmp.Schedulers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return nil
	case "env-example":
		fmt.Print(envjson.Example())
		return nil
	case "profile":
		if len(args) != 3 {
			return usage()
		}
		src, err := load(args[1])
		if err != nil {
			return err
		}
		envData, err := os.ReadFile(args[2])
		if err != nil {
			return err
		}
		env, err := envjson.Parse(envData)
		if err != nil {
			return err
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return err
		}
		info, err := types.Check(prog)
		if err != nil {
			return err
		}
		compiled, err := vm.Compile(info, vm.Options{SubflowCount: -1})
		if err != nil {
			return err
		}
		profile := vm.NewProfile(compiled)
		if err := profile.ExecProfile(env); err != nil {
			return err
		}
		fmt.Print(profile.Report())
		return nil
	case "exec":
		if len(args) != 3 {
			return usage()
		}
		src, err := load(args[1])
		if err != nil {
			return err
		}
		envData, err := os.ReadFile(args[2])
		if err != nil {
			return err
		}
		env, err := envjson.Parse(envData)
		if err != nil {
			return err
		}
		sched, err := core.Load(args[1], src, core.BackendVM)
		if err != nil {
			return err
		}
		before := *env.Regs
		sched.Exec(env)
		fmt.Print(envjson.FormatActions(env))
		for i := 0; i < runtime.NumRegisters; i++ {
			if env.Regs[i] != before[i] {
				fmt.Printf("R%d: %d -> %d\n", i+1, before[i], env.Regs[i])
			}
		}
		return nil
	case "bench":
		if len(args) < 2 || len(args) > 3 {
			return usage()
		}
		src, err := load(args[1])
		if err != nil {
			return err
		}
		var env *runtime.Env
		if len(args) == 3 {
			data, err := os.ReadFile(args[2])
			if err != nil {
				return err
			}
			if env, err = envjson.Parse(data); err != nil {
				return err
			}
		} else if env, err = envjson.Parse([]byte(envjson.Example())); err != nil {
			return err
		}
		return benchScheduler(args[1], src, env)
	case "check", "fmt", "disasm":
		if len(args) != 2 {
			return usage()
		}
		src, err := load(args[1])
		if err != nil {
			return err
		}
		switch args[0] {
		case "check":
			if err := progmp.CheckScheduler(src); err != nil {
				return err
			}
			fmt.Println("ok")
		case "fmt":
			out, err := progmp.FormatScheduler(src)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "disasm":
			out, err := progmp.Disassemble(src)
			if err != nil {
				return err
			}
			fmt.Print(out)
		}
		return nil
	default:
		return usage()
	}
}

func load(ref string) (string, error) {
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		src, ok := progmp.Schedulers[name]
		if !ok {
			return "", fmt.Errorf("unknown built-in scheduler %q (try `progmpc list`)", name)
		}
		return src, nil
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// benchScheduler times one scheduler across all three back-ends
// against the same environment snapshot.
func benchScheduler(name, src string, env *runtime.Env) error {
	const iters = 200000
	fmt.Printf("%-14s %12s\n", "backend", "ns/exec")
	for _, backend := range []core.Backend{core.BackendInterpreter, core.BackendCompiled, core.BackendVM} {
		s, err := core.Load(name, src, backend)
		if err != nil {
			return err
		}
		s.SetSynchronousSpecialization(true)
		// Warm up (compiles the VM specialization).
		for i := 0; i < 1000; i++ {
			env.Reset()
			s.Exec(env)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			env.Reset()
			s.Exec(env)
		}
		fmt.Printf("%-14s %12.1f\n", backend, float64(time.Since(start).Nanoseconds())/iters)
	}
	return nil
}

func usage() error {
	return fmt.Errorf("usage: progmpc {check|fmt|disasm|bench} <file|builtin:NAME> | progmpc {exec|profile} <file|builtin:NAME> <env.json> | progmpc env-example | progmpc list")
}
