// Command progmp-bench regenerates the paper's evaluation tables and
// figure series (see DESIGN.md for the experiment index), and records
// or gates the machine-readable perf baseline (BENCH_*.json).
//
// Usage:
//
//	progmp-bench -exp all
//	progmp-bench -exp fig13
//	progmp-bench -record BENCH_8.json
//	progmp-bench -compare BENCH_8.json                 # fresh run vs baseline
//	progmp-bench -compare BENCH_8.json -against f.json # file vs baseline
//
// Experiments: fig1, fig9, fig9tp, fig10b, fig10c, fig12, fig13,
// fig14, upcall, memory, receiver, handover, opportunistic, fairness,
// probing, targetrtt, all.
//
// -compare exits nonzero when any experiment regresses past the
// tolerances (-ns-tol, -rel-tol; allocation counts have none): the CI
// perf gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"progmp/internal/benchrec"
	"progmp/internal/core"
	"progmp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see doc comment)")
	seed := flag.Int64("seed", 7, "simulation seed")
	record := flag.String("record", "", "measure and write a bench record to this file")
	compare := flag.String("compare", "", "baseline record to gate against (exit 1 on regression)")
	against := flag.String("against", "", "candidate record for -compare (default: measure fresh)")
	iters := flag.Int("iters", 200000, "execution-overhead iterations for -record/-compare")
	nsTol := flag.Float64("ns-tol", 0.10, "tolerated relative ns/op growth for -compare")
	relTol := flag.Float64("rel-tol", 0.10, "tolerated relative vs_native growth for -compare")
	flag.Parse()
	if *record != "" || *compare != "" {
		if err := runBench(*record, *compare, *against, *seed, *iters, benchrec.Thresholds{NsTol: *nsTol, RelTol: *relTol}); err != nil {
			fmt.Fprintln(os.Stderr, "progmp-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "progmp-bench:", err)
		os.Exit(1)
	}
}

// runBench drives the recorder: write a record, gate one against a
// baseline, or both in one invocation.
func runBench(record, compare, against string, seed int64, iters int, th benchrec.Thresholds) error {
	var cand benchrec.Record
	var have bool
	if against != "" {
		var err error
		cand, err = benchrec.ReadFile(against)
		if err != nil {
			return err
		}
		have = true
	}
	if record != "" || !have {
		fresh, err := benchrec.Measure(seed, iters)
		if err != nil {
			return err
		}
		if !have {
			cand = fresh
		}
		if record != "" {
			if err := benchrec.WriteFile(record, fresh); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d experiments, rev %s)\n", record, len(fresh.Experiments), fresh.GitRev)
		}
	}
	if compare == "" {
		return nil
	}
	base, err := benchrec.ReadFile(compare)
	if err != nil {
		return err
	}
	regressions := benchrec.Compare(base, cand, th)
	for _, e := range cand.Experiments {
		fmt.Printf("%-24s ns/op %10.1f  allocs/op %5.2f  vs_native %5.2f  p99 %6d ns  bytes/conn %6d\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.VsNative, e.P99NS, e.BytesPerConn)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d perf regression(s) vs %s", len(regressions), compare)
	}
	fmt.Printf("perf gate passed vs %s (ns-tol %.0f%%, rel-tol %.0f%%)\n", compare, th.NsTol*100, th.RelTol*100)
	return nil
}

func run(exp string, seed int64) error {
	all := exp == "all"
	backend := core.BackendVM
	any := false
	section := func(id, title string) bool {
		if !all && exp != id {
			return false
		}
		any = true
		fmt.Printf("\n=== %s — %s ===\n", id, title)
		return true
	}

	if all || exp == "fig1" || exp == "fig13" {
		any = true
		fmt.Printf("\n=== fig1+fig13 — interactive streaming: default vs backup vs TAP (Fig. 1, Fig. 13) ===\n")
		var rs []experiments.StreamingResult
		for _, v := range []experiments.StreamingVariant{
			experiments.StreamingDefault, experiments.StreamingBackup, experiments.StreamingTAP,
		} {
			r, err := experiments.Streaming(v, backend, seed)
			if err != nil {
				return err
			}
			rs = append(rs, r)
		}
		fmt.Print(experiments.FormatStreaming(rs))
	}
	if section("fig9", "runtime overhead per scheduling decision (Fig. 9 top)") {
		rs, err := experiments.ExecutionOverhead(200000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOverhead(rs))
	}
	if section("fig9tp", "throughput parity across back-ends (Fig. 9 bottom)") {
		rs, err := experiments.ThroughputParity(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatParity(rs))
	}
	if section("fig10b", "redundancy flavors: FCT vs flow size, 2% loss (Fig. 10b)") {
		points, err := experiments.RedundancyFCT(backend, []int{8, 16, 32, 64, 128, 256, 512}, experiments.RedundancySchedulers, 16)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFCT(points, experiments.RedundancySchedulers))
	}
	if section("fig10c", "redundancy flavors: normalized throughput (Fig. 10c)") {
		points, err := experiments.RedundancyThroughput(backend, experiments.RedundancySchedulers, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(points))
	}
	if section("fig12", "flow-end compensation vs RTT ratio (Fig. 12)") {
		points, err := experiments.CompensationSweep(backend, []float64{1, 1.5, 2, 3, 4, 6, 8}, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCompensation(points))
	}
	if section("fig14", "HTTP/2-aware scheduling (Fig. 14)") {
		delays := []time.Duration{0, 20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond, 80 * time.Millisecond}
		points, err := experiments.HTTP2Sweep(backend, delays, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatHTTP2(points))
	}
	if section("upcall", "in-stack execution vs userspace up-call (§4.1)") {
		r, err := experiments.UpcallOverhead(100000)
		if err != nil {
			return err
		}
		fmt.Printf("direct   %8.0f ns/decision\nupcall   %8.0f ns/decision\nfactor   %8.1fx\n",
			r.DirectNsPerOp, r.UpcallNsPerOp, r.Factor)
	}
	if section("memory", "scheduler memory footprints (§4.3)") {
		rs, err := experiments.MemoryFootprints()
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %14s %14s\n", "scheduler", "program B", "instance B")
		for _, r := range rs {
			fmt.Printf("%-14s %14d %14d\n", r.Scheduler, r.ProgramBytes, r.InstanceBytes)
		}
	}
	if section("receiver", "legacy vs optimized receiver (§4.2)") {
		rs, err := experiments.ReceiverComparison(backend, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %18s %14s %14s\n", "mode", "mean delivery", "fct", "held segs")
		for _, r := range rs {
			fmt.Printf("%-10v %18v %14v %14d\n", r.Mode, r.MeanDeliveryLatency.Round(time.Microsecond), r.FCT.Round(time.Microsecond), r.HeldSegments)
		}
	}
	if section("handover", "WiFi→LTE handover (§5.2)") {
		for _, sched := range []string{"minRTT", "handoverAware"} {
			r, err := experiments.Handover(sched, backend, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s interruption %10v   fct %10v   completed %v\n",
				r.Scheduler, r.Interruption.Round(time.Millisecond), r.FCT.Round(time.Millisecond), r.Completed)
		}
	}
	if section("opportunistic", "opportunistic retransmission under receive-window blocking (§3.4)") {
		for _, sched := range []string{"minRTT", "minRTTOpportunistic"} {
			r, err := experiments.Opportunistic(sched, backend, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s fct %10v   goodput %6.2f MB/s   completed %v\n",
				r.Scheduler, r.FCT.Round(time.Millisecond), r.Goodput/1e6, r.Completed)
		}
	}
	if section("fairness", "shared-bottleneck fairness of the coupled congestion controls (§2.1)") {
		for _, cc := range []string{"reno", "lia", "olia"} {
			r, err := experiments.Fairness(cc, backend, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-6s mptcp %6.2f MB/s   tcp %6.2f MB/s   ratio %5.2f\n",
				r.CC, r.MPTCPGoodput/1e6, r.TCPGoodput/1e6, r.Ratio)
		}
	}
	if section("probing", "probing for fresh estimates on idle subflows (Table 2)") {
		for _, sched := range []string{"minRTT", "probingMinRTT"} {
			r, err := experiments.Probing(sched, backend, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s mean response %10v   fast-path share %5.0f%%   responses %d\n",
				r.Scheduler, r.MeanResponse.Round(time.Millisecond), r.FastPathShare*100, r.Responses)
		}
	}
	if section("targetrtt", "target-RTT preference-aware scheduling (§5.4)") {
		for _, sched := range []string{"minRTT", "targetRTT"} {
			r, err := experiments.TargetRTT(sched, backend, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s mean %10v   p95 %10v   lte bytes %10d   responses %d\n",
				r.Scheduler, r.MeanResponse.Round(time.Millisecond), r.P95Response.Round(time.Millisecond), r.LTEBytes, r.Responses)
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
