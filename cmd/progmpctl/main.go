// Command progmpctl drives the ProgMP control plane of a live
// simulation (a process running with `mpsim -ctl`, or any embedder of
// internal/ctl): the out-of-process face of the paper's userspace
// library. It lists connections, compiles and hot-swaps schedulers,
// reads and writes registers, triggers sends, snapshots metrics, and
// streams live decision-trace events.
//
// Usage:
//
//	progmpctl [-s ADDR] [-conn N] <command> [args]
//
//	ping                         server liveness + virtual clock
//	list                         connections, schedulers, registers, subflows
//	schedulers                   names available to compile and swap
//	compile <name|file> [backend]  verify + compile without installing
//	swap    <name|file> [backend]  hot-swap the connection's scheduler
//	                             (-force installs despite analyzer warnings
//	                             or a fleet block)
//	getreg  <R1..R8|idx>         read a scheduler register
//	setreg  <R1..R8|idx> <value> write a scheduler register
//	gget    <G1..G8|idx>         read a shared-store global register
//	gset    <G1..G8|idx> <value> write a shared-store global register
//	deststats                    per-destination shared path statistics
//	send    <bytes> [prop]       enqueue bytes with a scheduling intent
//	metrics                      metrics registry snapshot
//	metrics-agg [json|text]      fleet-wide aggregated metrics (text = OpenMetrics)
//	drain                        gracefully shut the server down
//	watch   [kinds...]           stream trace events as JSONL (ctrl-C to stop)
//
// ADDR is a Unix socket path (default /tmp/progmp.sock) or host:port
// for TCP. -conn selects the target connection from `list` (default 1).
// Calls are deadline-bounded (-timeout overrides the per-verb defaults)
// and read-only verbs are retried across reconnects (-retries bounds
// the attempts); a server that stays down trips a circuit breaker and
// fails fast.
//
// Example against a live mpsim (second terminal):
//
//	mpsim -ctl /tmp/mpsim.sock -send 50000000 -duration 5m
//	progmpctl -s /tmp/mpsim.sock list
//	progmpctl -s /tmp/mpsim.sock setreg R1 4000000
//	progmpctl -s /tmp/mpsim.sock swap redundant
//	progmpctl -s /tmp/mpsim.sock watch SCHED_SWAP QUARANTINE
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"progmp"
	"progmp/internal/ctl"
)

func main() {
	addr := flag.String("s", "/tmp/progmp.sock", "server address: Unix socket path or host:port")
	connID := flag.Int("conn", 1, "target connection id (see list)")
	force := flag.Bool("force", false, "swap: install despite static-analyzer warnings or a fleet block")
	timeout := flag.Duration("timeout", 0, "per-call deadline (0 = per-verb defaults)")
	retries := flag.Int("retries", 0, "attempts for read-only verbs across reconnects (0 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: progmpctl [-s ADDR] [-conn N] <command> [args]\n")
		fmt.Fprintf(os.Stderr, "commands: ping list schedulers compile swap getreg setreg gget gset deststats send metrics metrics-agg drain watch\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *connID, *force, *timeout, *retries, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "progmpctl:", err)
		printDiags(err)
		os.Exit(1)
	}
}

func run(addr string, connID int, force bool, timeout time.Duration, retries int, args []string) error {
	network := "unix"
	if !strings.Contains(addr, "/") && strings.Contains(addr, ":") {
		network = "tcp"
	}
	// The reconnecting client: per-verb deadlines, retry of read-only
	// verbs across reconnects, circuit breaker when the server stays
	// down. It dials lazily, so connection errors surface on the call.
	c := ctl.DialRetry(ctl.RetryOptions{
		Network:     network,
		Addr:        addr,
		CallTimeout: timeout,
		MaxAttempts: retries,
	})
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ping":
		res, err := c.Ping()
		if err != nil {
			return err
		}
		fmt.Printf("ok, virtual time %v\n", time.Duration(res.NowUS)*time.Microsecond)
		return nil
	case "list":
		res, err := c.List()
		if err != nil {
			return err
		}
		printList(res)
		return nil
	case "schedulers":
		names, err := c.Schedulers()
		if err != nil {
			return err
		}
		for _, name := range names {
			fmt.Println(name)
		}
		return nil
	case "compile":
		name, src, backend, err := programArgs(rest)
		if err != nil {
			return err
		}
		res, err := c.Compile(name, src, backend)
		if err != nil {
			return err
		}
		fmt.Printf("ok: %s on %s backend, %d bytes resident\n", res.Name, res.Backend, res.MemoryBytes)
		if res.StepBound != "" {
			fmt.Printf("step bound: %s (%d steps at reference size)\n", res.StepBound, res.StepBoundSteps)
		}
		for _, d := range res.Diagnostics {
			fmt.Printf("%s: %s\n", res.Name, d)
		}
		if res.Warnings > 0 {
			fmt.Printf("%d warning(s): swap will refuse this program without -force\n", res.Warnings)
		}
		return nil
	case "swap":
		name, src, backend, err := programArgs(rest)
		if err != nil {
			return err
		}
		res, err := c.Swap(connID, name, src, backend, force)
		if err != nil {
			return err
		}
		state := ""
		if res.Supervised {
			state = " (supervised)"
		}
		fmt.Printf("conn %d: %s -> %s on %s backend%s\n",
			res.Conn, res.PrevScheduler, res.Scheduler, res.Backend, state)
		return nil
	case "getreg":
		if len(rest) != 1 {
			return fmt.Errorf("getreg <R1..R8|index>")
		}
		reg, err := parseReg(rest[0])
		if err != nil {
			return err
		}
		v, err := c.GetReg(connID, reg)
		if err != nil {
			return err
		}
		fmt.Printf("R%d = %d\n", reg+1, v)
		return nil
	case "setreg":
		if len(rest) != 2 {
			return fmt.Errorf("setreg <R1..R8|index> <value>")
		}
		reg, err := parseReg(rest[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", rest[1], err)
		}
		if err := c.SetReg(connID, reg, v); err != nil {
			return err
		}
		fmt.Printf("R%d = %d\n", reg+1, v)
		return nil
	case "gget":
		if len(rest) != 1 {
			return fmt.Errorf("gget <G1..G8|index>")
		}
		reg, err := parseGlobal(rest[0])
		if err != nil {
			return err
		}
		res, err := c.GGet(reg)
		if err != nil {
			return err
		}
		fmt.Printf("G%d = %d (epoch %d)\n", res.Reg+1, res.Value, res.Epoch)
		return nil
	case "gset":
		if len(rest) != 2 {
			return fmt.Errorf("gset <G1..G8|index> <value>")
		}
		reg, err := parseGlobal(rest[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", rest[1], err)
		}
		res, err := c.GSet(reg, v)
		if err != nil {
			return err
		}
		fmt.Printf("G%d = %d (epoch %d)\n", res.Reg+1, res.Value, res.Epoch)
		return nil
	case "deststats":
		res, err := c.DestStats()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d, %d destination(s)\n", res.Epoch, len(res.Dests))
		for _, d := range res.Dests {
			fmt.Printf("  %-10s srtt=%-8v lost=%-5d quar=%-4d delivered=%d samples=%d\n",
				d.Name, time.Duration(d.SRTTUS)*time.Microsecond,
				d.Lost, d.Quarantines, d.Delivered, d.Samples)
		}
		return nil
	case "send":
		if len(rest) < 1 || len(rest) > 2 {
			return fmt.Errorf("send <bytes> [prop]")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil {
			return fmt.Errorf("bad byte count %q: %v", rest[0], err)
		}
		var prop int64
		if len(rest) == 2 {
			if prop, err = strconv.ParseInt(rest[1], 10, 64); err != nil {
				return fmt.Errorf("bad prop %q: %v", rest[1], err)
			}
		}
		if err := c.Send(connID, n, prop); err != nil {
			return err
		}
		fmt.Printf("queued %d bytes (prop %d)\n", n, prop)
		return nil
	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			return err
		}
		printMetrics(snap)
		return nil
	case "metrics-agg":
		format := ""
		if len(rest) > 0 {
			format = rest[0]
		}
		switch format {
		case "text":
			res, err := c.MetricsAgg("text")
			if err != nil {
				return err
			}
			fmt.Print(res.Text)
		case "", "json":
			res, err := c.MetricsAgg("json")
			if err != nil {
				return err
			}
			buf, err := json.MarshalIndent(res.Snapshot, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(buf))
		default:
			return fmt.Errorf("metrics-agg: unknown format %q (json, text)", format)
		}
		return nil
	case "drain":
		if _, err := c.Drain(); err != nil {
			return err
		}
		fmt.Println("draining: server stops accepting, finishes inflight requests, then shuts down")
		return nil
	case "watch":
		return watch(c, connID, rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printDiags renders the analyzer's structured findings when a
// compile or swap was refused.
func printDiags(err error) {
	var de *ctl.DiagError
	if !errors.As(err, &de) {
		return
	}
	for _, d := range de.Diags {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
}

// programArgs resolves "<name|file> [backend]" for compile and swap: a
// built-in corpus name is passed by name, anything else is read as a
// source file and sent inline.
func programArgs(rest []string) (name, src, backend string, err error) {
	if len(rest) < 1 || len(rest) > 2 {
		return "", "", "", fmt.Errorf("want <name|file> [backend]")
	}
	if len(rest) == 2 {
		backend = rest[1]
	}
	if _, ok := progmp.Schedulers[rest[0]]; ok {
		return rest[0], "", backend, nil
	}
	data, err := os.ReadFile(rest[0])
	if err != nil {
		return "", "", "", fmt.Errorf("%q is neither a built-in scheduler nor a readable file: %v", rest[0], err)
	}
	name = strings.TrimSuffix(rest[0], ".progmp")
	return name, string(data), backend, nil
}

// parseReg accepts the language spelling (R1..R8) or a 0-based index.
func parseReg(s string) (int, error) {
	up := strings.ToUpper(s)
	if strings.HasPrefix(up, "R") {
		n, err := strconv.Atoi(up[1:])
		if err != nil || n < 1 || n > 8 {
			return 0, fmt.Errorf("bad register %q (want R1..R8)", s)
		}
		return n - 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad register %q (want R1..R8 or an index)", s)
	}
	return n, nil
}

// parseGlobal accepts the language spelling (G1..G8) or a 0-based
// index for the shared-store global registers.
func parseGlobal(s string) (int, error) {
	up := strings.ToUpper(s)
	if strings.HasPrefix(up, "G") {
		n, err := strconv.Atoi(up[1:])
		if err != nil || n < 1 || n > progmp.NumSharedGlobals {
			return 0, fmt.Errorf("bad global register %q (want G1..G%d)", s, progmp.NumSharedGlobals)
		}
		return n - 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad global register %q (want G1..G%d or an index)", s, progmp.NumSharedGlobals)
	}
	return n, nil
}

func printList(res ctl.ListResult) {
	for _, ci := range res.Conns {
		sched := ci.Scheduler
		if ci.Backend != "" {
			sched += " (" + ci.Backend + ")"
		}
		if ci.Supervised {
			sched += " guarded:" + ci.GuardState
		}
		fmt.Printf("conn %d %-10s sched=%s queued=%d unacked=%d allAcked=%v\n",
			ci.ID, ci.Name, sched, ci.QueuedSegs, ci.UnackedSegs, ci.AllAcked)
		var regs []string
		for i, v := range ci.Registers {
			if v != 0 {
				regs = append(regs, fmt.Sprintf("R%d=%d", i+1, v))
			}
		}
		if len(regs) > 0 {
			fmt.Printf("  registers %s\n", strings.Join(regs, " "))
		}
		for _, sf := range ci.Subflows {
			state := "established"
			switch {
			case sf.Closed:
				state = "closed"
			case !sf.Established:
				state = "connecting"
			}
			if sf.Backup {
				state += ",backup"
			}
			fmt.Printf("  %-8s %-18s srtt=%-8v cwnd=%-6.1f sent=%d pkts=%d retx=%d tput=%dB/s\n",
				sf.Name, state, time.Duration(sf.SRTTUS)*time.Microsecond,
				sf.Cwnd, sf.BytesSent, sf.PktsSent, sf.Retransmissions, sf.ThroughputBps)
		}
	}
}

func printMetrics(snap ctl.MetricsResult) {
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("counter %-40s %d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("gauge   %-40s %d\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Hists[name]
		fmt.Printf("hist    %-40s count=%d mean=%.1f p50=%d p99=%d\n",
			name, h.Count, h.Mean, h.P50, h.P99)
	}
}

// watch streams trace events as JSONL until interrupted. Streaming
// needs the live underlying connection; if it dies mid-watch the stream
// ends (rerun to resubscribe through a fresh connection).
func watch(rc *ctl.ReClient, connID int, kinds []string) error {
	c, err := rc.Client()
	if err != nil {
		return err
	}
	stream, err := c.Subscribe(connID, kinds, 0)
	if err != nil {
		return err
	}
	defer stream.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	enc := json.NewEncoder(os.Stdout)
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				// Surface why the server ended the stream (e.g. this
				// subscriber was evicted for falling behind).
				return stream.Err()
			}
			if err := enc.Encode(ev); err != nil {
				return err
			}
		case <-sig:
			if n := stream.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "progmpctl: %d events dropped\n", n)
			}
			return nil
		}
	}
}
