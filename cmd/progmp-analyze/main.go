// Command progmp-analyze runs the repository's type-aware invariant
// passes (tools/analyze) over Go packages: the Go-side counterpart of
// progmp-vet. Where progmp-vet gates scheduler programs, this gates
// the engine underneath them — hot-path allocation freedom,
// deterministic-zone hygiene, epoch/RCU write discipline, and the obs
// conventions.
//
// Usage:
//
//	go run ./cmd/progmp-analyze ./...
//	go run ./cmd/progmp-analyze -passes hotpath,deterministic internal/fleet
//	go run ./cmd/progmp-analyze -list
//
// Each argument is a directory, a dir/... pattern, or an import path
// below module progmp. Exit status is 1 when any diagnostic is
// reported, 2 on usage, load, or type-check errors. Directive syntax
// and the pass catalogue are documented in docs/ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"progmp/tools/analyze"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("progmp-analyze", flag.ContinueOnError)
	list := flags.Bool("list", false, "print the pass catalogue and exit")
	passes := flags.String("passes", "", "comma-separated subset of passes to run (default: all)")
	verbose := flags.Bool("v", false, "log loaded packages")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyze.Analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var selected []*analyze.Analyzer
	if *passes != "" {
		for _, name := range strings.Split(*passes, ",") {
			a := analyze.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "progmp-analyze: unknown pass %q (see -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	suite, err := analyze.NewSuite(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "progmp-analyze: %v\n", err)
		return 2
	}
	pkgs, err := suite.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "progmp-analyze: %v\n", err)
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(os.Stderr, "progmp-analyze: loaded %s (%d files)\n", pkg.Path, len(pkg.Files))
		}
	}
	diags := suite.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "progmp-analyze: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
