//go:build race

package progmp

// raceEnabled reports that the race detector is instrumenting this
// build; its allocation behaviour differs from production builds.
const raceEnabled = true
