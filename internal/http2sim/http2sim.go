// Package http2sim models the HTTP/2 content-retrieval process of
// §5.5: a prioritized multiplexed byte stream of resources with
// content classes (dependency-critical, required-for-initial-view,
// deferrable), a server that annotates packets with their class
// through the extended scheduling API (the nghttp2→OpenSSL→scheduler
// forwarding of the paper), and a browser model that resolves
// third-party-content dependencies from the in-order stream.
package http2sim

import (
	"fmt"
	"time"

	"progmp/internal/mptcp"
	"progmp/internal/schedlib"
)

// ContentClass categorizes HTTP/2 payload for the scheduler.
type ContentClass int

// Content classes, ordered by transmission priority.
const (
	// ClassDependency is initial data that carries references to
	// external (third-party) resources; retrieving it early enables
	// the earliest possible dependency resolution.
	ClassDependency ContentClass = iota
	// ClassRequired is first-party content needed to render the
	// initial page view.
	ClassRequired
	// ClassDeferrable is content outside the initial view (e.g.
	// below-the-fold images) that does not affect the user-perceived
	// load time.
	ClassDeferrable
)

// String names the class.
func (c ContentClass) String() string {
	switch c {
	case ClassDependency:
		return "dependency"
	case ClassRequired:
		return "required"
	case ClassDeferrable:
		return "deferrable"
	}
	return fmt.Sprintf("ContentClass(%d)", int(c))
}

// Prop maps the class to the scheduler packet property convention of
// the HTTP2Aware scheduler.
func (c ContentClass) Prop() int64 {
	switch c {
	case ClassDependency:
		return schedlib.PropDependency
	case ClassRequired:
		return schedlib.PropRequired
	default:
		return schedlib.PropDeferrable
	}
}

// Resource is one HTTP/2 stream's payload.
type Resource struct {
	StreamID int
	Name     string
	Class    ContentClass
	Size     int
}

// ThirdParty is an external dependency on the critical path: the
// browser can request it only after all ClassDependency bytes arrived,
// and the initial page completes only after it is fetched.
type ThirdParty struct {
	Name      string
	FetchTime time.Duration
}

// Page is the content inventory of one web page.
type Page struct {
	Resources  []Resource
	ThirdParty []ThirdParty
}

// TotalBytes sums payload and framing bytes as serialized.
func (p Page) TotalBytes() int {
	total := 0
	for _, f := range Serialize(p) {
		total += f.WireSize()
	}
	return total
}

// ClassBytes sums the wire bytes of one class.
func (p Page) ClassBytes(c ContentClass) int {
	total := 0
	for _, f := range Serialize(p) {
		if f.Class == c {
			total += f.WireSize()
		}
	}
	return total
}

// DefaultPage models the optimized page of the paper's measurement
// study: HTML head with dependency information first, then the CSS/JS
// and above-the-fold content required for the initial view, with more
// than half of the data (below-the-fold images) deferrable.
func DefaultPage() Page {
	return Page{
		Resources: []Resource{
			{StreamID: 1, Name: "html-head", Class: ClassDependency, Size: 12 << 10},
			{StreamID: 3, Name: "critical-css", Class: ClassRequired, Size: 24 << 10},
			{StreamID: 5, Name: "app-js", Class: ClassRequired, Size: 64 << 10},
			{StreamID: 7, Name: "hero-image", Class: ClassRequired, Size: 48 << 10},
			{StreamID: 9, Name: "fold-image-1", Class: ClassDeferrable, Size: 96 << 10},
			{StreamID: 11, Name: "fold-image-2", Class: ClassDeferrable, Size: 96 << 10},
			{StreamID: 13, Name: "fold-image-3", Class: ClassDeferrable, Size: 64 << 10},
			{StreamID: 15, Name: "analytics-js", Class: ClassDeferrable, Size: 32 << 10},
		},
		ThirdParty: []ThirdParty{
			{Name: "cdn-font", FetchTime: 60 * time.Millisecond},
			{Name: "ad-exchange", FetchTime: 90 * time.Millisecond},
		},
	}
}

// frameHeaderSize is the HTTP/2 frame header (RFC 7540 §4.1).
const frameHeaderSize = 9

// maxFramePayload is the serializer's DATA frame payload bound.
const maxFramePayload = 16 << 10

// Frame is one serialized HTTP/2 DATA frame.
type Frame struct {
	StreamID int
	Class    ContentClass
	Payload  int
}

// WireSize is the frame's size on the wire.
func (f Frame) WireSize() int { return frameHeaderSize + f.Payload }

// Serialize flattens the page into the server's transmission order:
// HTTP/2 priorities put dependency-bearing bytes first, then required
// content, then deferrable content, each split into DATA frames.
func Serialize(p Page) []Frame {
	var frames []Frame
	for _, class := range []ContentClass{ClassDependency, ClassRequired, ClassDeferrable} {
		for _, res := range p.Resources {
			if res.Class != class {
				continue
			}
			remaining := res.Size
			for remaining > 0 {
				payload := remaining
				if payload > maxFramePayload {
					payload = maxFramePayload
				}
				remaining -= payload
				frames = append(frames, Frame{StreamID: res.StreamID, Class: class, Payload: payload})
			}
		}
	}
	return frames
}

// Server pushes the page into an MPTCP connection, annotating each
// write with the content class (the per-packet scheduling intent of
// §3.2).
type Server struct {
	Page Page
}

// Respond enqueues the whole serialized page on conn.
func (s Server) Respond(conn *mptcp.Conn) {
	for _, f := range Serialize(s.Page) {
		conn.Send(f.WireSize(), f.Class.Prop())
	}
}

// Metrics are the browser-observed outcomes of one page load, the
// quantities of Fig. 14.
type Metrics struct {
	// DependencyRetrieved is when all dependency-class bytes arrived —
	// the "time to retrieve all dependency information".
	DependencyRetrieved time.Duration
	// ThirdPartyResolved is when the last third-party fetch finished.
	ThirdPartyResolved time.Duration
	// InitialPage is when the initial view completed: all required
	// first-party bytes and all third-party content.
	InitialPage time.Duration
	// FullLoad is when every byte of the page arrived.
	FullLoad time.Duration
	// Complete is true once FullLoad was observed.
	Complete bool
}

// Browser consumes the receiver's in-order byte stream, tracks class
// completion boundaries, and launches third-party fetches as soon as
// the dependency information is complete.
type Browser struct {
	conn *mptcp.Conn
	page Page

	depEnd      int64 // stream offset after the last dependency byte
	requiredEnd int64 // stream offset after the last required byte
	totalEnd    int64

	delivered int64
	m         Metrics
	tpPending int
	onInitial func(Metrics)
}

// NewBrowser attaches a browser to the connection's receiver.
func NewBrowser(conn *mptcp.Conn, page Page) *Browser {
	b := &Browser{conn: conn, page: page}
	var off int64
	for _, class := range []ContentClass{ClassDependency, ClassRequired, ClassDeferrable} {
		for _, f := range Serialize(page) {
			if f.Class != class {
				continue
			}
			off += int64(f.WireSize())
		}
		switch class {
		case ClassDependency:
			b.depEnd = off
		case ClassRequired:
			b.requiredEnd = off
		case ClassDeferrable:
			b.totalEnd = off
		}
	}
	b.m.DependencyRetrieved = -1
	b.m.ThirdPartyResolved = -1
	b.m.InitialPage = -1
	b.m.FullLoad = -1
	b.tpPending = len(page.ThirdParty)
	conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		b.onBytes(size, at)
	})
	return b
}

// OnInitialPage registers a callback fired when the initial page view
// completes.
func (b *Browser) OnInitialPage(fn func(Metrics)) { b.onInitial = fn }

// Metrics returns the current measurement snapshot.
func (b *Browser) Metrics() Metrics { return b.m }

func (b *Browser) onBytes(size int, at time.Duration) {
	b.delivered += int64(size)
	if b.m.DependencyRetrieved < 0 && b.delivered >= b.depEnd {
		b.m.DependencyRetrieved = at
		b.resolveThirdParty(at)
	}
	if b.delivered >= b.requiredEnd && b.m.InitialPage < 0 && b.tpPending == 0 {
		b.initialDone(at)
	}
	if b.m.FullLoad < 0 && b.delivered >= b.totalEnd {
		b.m.FullLoad = at
		b.m.Complete = true
	}
}

// resolveThirdParty issues all third-party fetches in parallel (the
// browser's dependency resolution of Fig. 14 right).
func (b *Browser) resolveThirdParty(at time.Duration) {
	if b.tpPending == 0 {
		return
	}
	eng := b.conn.Engine()
	for _, tp := range b.page.ThirdParty {
		tp := tp
		eng.At(at+tp.FetchTime, func() {
			b.tpPending--
			if b.tpPending == 0 {
				b.m.ThirdPartyResolved = eng.Now()
				if b.delivered >= b.requiredEnd && b.m.InitialPage < 0 {
					b.initialDone(eng.Now())
				}
			}
		})
	}
}

func (b *Browser) initialDone(at time.Duration) {
	b.m.InitialPage = at
	if b.onInitial != nil {
		b.onInitial(b.m)
	}
}
