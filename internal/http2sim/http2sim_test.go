package http2sim

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

func TestSerializePriorityOrder(t *testing.T) {
	frames := Serialize(DefaultPage())
	lastClass := ClassDependency
	for i, f := range frames {
		if f.Class < lastClass {
			t.Fatalf("frame %d: class %v after %v (priority order violated)", i, f.Class, lastClass)
		}
		lastClass = f.Class
		if f.Payload <= 0 || f.Payload > maxFramePayload {
			t.Errorf("frame %d: payload %d out of range", i, f.Payload)
		}
	}
}

func TestSerializePreservesBytes(t *testing.T) {
	page := DefaultPage()
	perStream := make(map[int]int)
	for _, f := range Serialize(page) {
		perStream[f.StreamID] += f.Payload
	}
	for _, res := range page.Resources {
		if perStream[res.StreamID] != res.Size {
			t.Errorf("stream %d: serialized %d bytes, want %d", res.StreamID, perStream[res.StreamID], res.Size)
		}
	}
}

func TestClassBytes(t *testing.T) {
	page := DefaultPage()
	total := page.ClassBytes(ClassDependency) + page.ClassBytes(ClassRequired) + page.ClassBytes(ClassDeferrable)
	if total != page.TotalBytes() {
		t.Errorf("class bytes %d do not add up to total %d", total, page.TotalBytes())
	}
	if page.ClassBytes(ClassDeferrable)*2 < page.TotalBytes() {
		t.Errorf("the default page should have more than half of its data deferrable (paper's optimized layout)")
	}
}

// loadPage runs a full page load over a WiFi+LTE connection.
func loadPage(t *testing.T, scheduler string) (Metrics, *mptcp.Conn) {
	t.Helper()
	eng := netsim.NewEngine(5)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	wifi := netsim.NewLink(eng, netsim.PathConfig{
		Name: "wifi", Rate: netsim.ConstantRate(3e6), Delay: 10 * time.Millisecond,
	})
	lte := netsim.NewLink(eng, netsim.PathConfig{
		Name: "lte", Rate: netsim.ConstantRate(6e6), Delay: 30 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "wifi", Link: wifi}); err != nil {
		t.Fatal(err)
	}
	// The backup flag is the preference marker consumed by the
	// preference-aware schedulers; the default scheduler would simply
	// deactivate a backup subflow, so the paper's default-scheduler
	// baseline runs with both subflows active.
	lteBackup := scheduler != "minRTT"
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "lte", Link: lte, Backup: lteBackup}); err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad(scheduler, schedlib.All[scheduler], core.BackendCompiled))
	page := DefaultPage()
	browser := NewBrowser(conn, page)
	eng.After(0, func() { Server{Page: page}.Respond(conn) })
	eng.RunUntil(60 * time.Second)
	m := browser.Metrics()
	if !m.Complete {
		t.Fatalf("page load incomplete with %s", scheduler)
	}
	return m, conn
}

func TestPageLoadCompletesAndOrdersMilestones(t *testing.T) {
	m, _ := loadPage(t, "http2Aware")
	if m.DependencyRetrieved <= 0 {
		t.Errorf("dependency retrieval time not recorded")
	}
	if m.DependencyRetrieved > m.InitialPage || m.InitialPage > m.FullLoad {
		t.Errorf("milestones out of order: deps %v, initial %v, full %v",
			m.DependencyRetrieved, m.InitialPage, m.FullLoad)
	}
	if m.ThirdPartyResolved < m.DependencyRetrieved {
		t.Errorf("third-party resolution before dependency info arrived")
	}
}

func TestHTTP2AwareSavesLTEBytes(t *testing.T) {
	_, defConn := loadPage(t, "minRTT")
	_, awareConn := loadPage(t, "http2Aware")
	defLTE := defConn.Subflows()[1].BytesSent
	awareLTE := awareConn.Subflows()[1].BytesSent
	if awareLTE >= defLTE {
		t.Errorf("HTTP/2-aware scheduler must reduce LTE usage: aware %d vs default %d", awareLTE, defLTE)
	}
}

func TestThirdPartyGatesInitialPage(t *testing.T) {
	m, _ := loadPage(t, "http2Aware")
	// The slowest third-party fetch takes 90 ms after dependency
	// retrieval; the initial page cannot complete before that.
	minInitial := m.DependencyRetrieved + 90*time.Millisecond
	if m.InitialPage < minInitial {
		t.Errorf("initial page %v before third-party resolution %v", m.InitialPage, minInitial)
	}
}
