package vm

import (
	"fmt"
	"sort"
	"strings"

	"progmp/internal/runtime"
)

// Profile is the result of a counting execution: per-instruction hit
// counts over one or more runs — the analogue of the paper's
// proc-based "performance profiling traces based on the control flow
// representation of the scheduler specification" (§4.1).
type Profile struct {
	prog *Program
	// Hits[i] counts executions of instruction i.
	Hits []uint64
	// Steps is the total number of executed instructions.
	Steps uint64
	// Runs counts accumulated executions.
	Runs int
}

// NewProfile prepares a profile collector for p.
func NewProfile(p *Program) *Profile {
	return &Profile{prog: p, Hits: make([]uint64, len(p.Insns))}
}

// ExecProfile runs one execution of p against env, accumulating
// per-instruction counts. It mirrors Program.Exec semantics exactly
// (same graceful arithmetic, same step budget) but pays the counting
// overhead, so it is meant for development, not the data path.
func (pr *Profile) ExecProfile(env *runtime.Env) error {
	p := pr.prog
	if p.SpecializedSubflows >= 0 && len(env.SubflowViews) != p.SpecializedSubflows {
		return ErrSpecializationMismatch
	}
	var regs [NumPhysRegs]int64
	var spills []int64
	if p.SpillSlots > 0 {
		spills = make([]int64, p.SpillSlots)
	}
	insns := p.Insns
	steps := uint64(0)
	for pc := 0; pc < len(insns); pc++ {
		steps++
		pr.Hits[pc]++
		in := &insns[pc]
		switch in.Op {
		case OpNop:
		case OpMovImm:
			regs[in.Dst] = in.K
		case OpMov:
			regs[in.Dst] = regs[in.A]
		case OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case OpDiv:
			if regs[in.B] == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = regs[in.A] / regs[in.B]
			}
		case OpMod:
			if regs[in.B] == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = regs[in.A] % regs[in.B]
			}
		case OpNeg:
			regs[in.Dst] = -regs[in.A]
		case OpNot:
			regs[in.Dst] = b2i(regs[in.A] == 0)
		case OpEq:
			regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
		case OpNe:
			regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
		case OpLt:
			regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
		case OpLe:
			regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
		case OpGt:
			regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
		case OpGe:
			regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])
		case OpPopcnt:
			regs[in.Dst] = popcount(regs[in.A])
		case OpBitSet:
			regs[in.Dst] = regs[in.A] | int64(uint64(1)<<uint(regs[in.B]&63))
		case OpBitTest:
			regs[in.Dst] = (regs[in.A] >> uint(regs[in.B]&63)) & 1
		case OpJmp:
			pc += int(in.K)
			if in.K < 0 && steps > MaxSteps {
				goto budget
			}
		case OpJz:
			if regs[in.A] == 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJnz:
			if regs[in.A] != 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJeq:
			if regs[in.A] == regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJne:
			if regs[in.A] != regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJlt:
			if regs[in.A] < regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJle:
			if regs[in.A] <= regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgt:
			if regs[in.A] > regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJge:
			if regs[in.A] >= regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJltz:
			if regs[in.A] < 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJlez:
			if regs[in.A] <= 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgtz:
			if regs[in.A] > 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgez:
			if regs[in.A] >= 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJsbz:
			// Mirrors Exec: NULL subflows read every property as false.
			if sbf := sbfView(env, regs[in.A]); sbf == nil || !sbf.Bools[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJsbnz:
			if sbf := sbfView(env, regs[in.A]); sbf != nil && sbf.Bools[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJbc:
			if (regs[in.A]>>uint(regs[in.B]&63))&1 == 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJbs:
			if (regs[in.A]>>uint(regs[in.B]&63))&1 != 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpReturn:
			pr.Steps += steps
			pr.Runs++
			return nil
		case OpLoadReg:
			regs[in.Dst] = env.Reg(int(in.K))
		case OpStoreReg:
			env.SetReg(int(in.K), regs[in.A])
		case OpLoadGlobal:
			regs[in.Dst] = env.Global(int(in.K))
		case OpStoreGlobal:
			env.SetGlobal(int(in.K), regs[in.A])
		case OpSbfCount:
			regs[in.Dst] = int64(len(env.SubflowViews))
		case OpSbfRef:
			regs[in.Dst] = regs[in.A] + 1
		case OpSbfIntProp:
			if sbf := sbfView(env, regs[in.A]); sbf != nil {
				regs[in.Dst] = sbf.Ints[in.K]
			} else {
				regs[in.Dst] = 0
			}
		case OpSbfBoolProp:
			if sbf := sbfView(env, regs[in.A]); sbf != nil {
				regs[in.Dst] = b2i(sbf.Bools[in.K])
			} else {
				regs[in.Dst] = 0
			}
		case OpHasWnd:
			regs[in.Dst] = b2i(sbfView(env, regs[in.A]).HasWindowFor(pktView(env, regs[in.B])))
		case OpPktProp:
			if p := pktView(env, regs[in.A]); p != nil {
				regs[in.Dst] = p.Ints[in.K]
			} else {
				regs[in.Dst] = 0
			}
		case OpSentOn:
			regs[in.Dst] = b2i(pktView(env, regs[in.A]).SentOn(sbfView(env, regs[in.B])))
		case OpQNext:
			// Mirrors Exec: a nil queue reads as exhausted, never a crash.
			if q := env.Queue(runtime.QueueID(in.K)); q != nil {
				regs[in.Dst] = int64(q.NextVisible(int(regs[in.A])))
			} else {
				regs[in.Dst] = -1
			}
		case OpPktRef:
			regs[in.Dst] = (in.K+1)<<32 | (regs[in.A] + 1)
		case OpPop:
			env.Site = int32(pc)
			env.Pop(runtime.QueueID(in.K), pktView(env, regs[in.A]))
		case OpPush:
			env.Site = int32(pc)
			env.Push(sbfView(env, regs[in.A]), pktView(env, regs[in.B]))
		case OpDrop:
			env.Site = int32(pc)
			env.Drop(pktView(env, regs[in.A]))
		case OpLoadSlot:
			regs[in.Dst] = spills[in.K]
		case OpStoreSlot:
			spills[in.K] = regs[in.A]
		default:
			// Mirrors Exec: executed steps are credited even when the
			// program faults on an invalid opcode.
			pr.Steps += steps
			return fmt.Errorf("vm: invalid opcode %d at pc %d", int(in.Op), pc)
		}
	}
	pr.Steps += steps
	pr.Runs++
	return nil
budget:
	pr.Steps += steps
	return ErrStepBudget
}

func popcount(v int64) int64 {
	var n int64
	u := uint64(v)
	for u != 0 {
		u &= u - 1
		n++
	}
	return n
}

// Report renders the profile: every instruction annotated with its hit
// count, followed by the hottest instructions.
func (pr *Profile) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d run(s), %d instructions executed (%.1f per run)\n",
		pr.Runs, pr.Steps, float64(pr.Steps)/float64(max(1, pr.Runs)))
	for i, in := range pr.prog.Insns {
		fmt.Fprintf(&b, "%10d  %4d: %s\n", pr.Hits[i], i, in)
	}
	type hot struct {
		idx  int
		hits uint64
	}
	hots := make([]hot, 0, len(pr.Hits))
	for i, h := range pr.Hits {
		if h > 0 {
			hots = append(hots, hot{idx: i, hits: h})
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].hits > hots[j].hits })
	b.WriteString("hottest:\n")
	for i, h := range hots {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %6.1f%%  %4d: %s\n",
			100*float64(h.hits)/float64(max(1, int(pr.Steps))), h.idx, pr.prog.Insns[h.idx])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
