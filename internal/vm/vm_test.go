package vm

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"progmp/internal/compile"
	"progmp/internal/envtest"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

func mustInfo(t *testing.T, src string) *types.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return info
}

func compileGeneric(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(mustInfo(t, src), Options{SubflowCount: -1})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

const minRTTSrc = `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
	SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}`

func TestVMMinRTT(t *testing.T) {
	p := compileGeneric(t, minRTTSrc)
	env := envtest.TwoSubflowEnv(2)
	if err := p.Exec(env); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if env.PushCount() != 1 {
		t.Fatalf("push count = %d, want 1\n%s", env.PushCount(), p.Disassemble())
	}
	if env.Actions[1].Subflow != env.SubflowViews[0].Handle {
		t.Errorf("pushed on wrong subflow\n%s", p.Disassemble())
	}
}

func TestVMRegisterStatePersists(t *testing.T) {
	p := compileGeneric(t, `SET(R1, R1 + 1); SET(R2, R1 * 10);`)
	env := envtest.TwoSubflowEnv(0)
	for i := 0; i < 3; i++ {
		if err := p.Exec(env); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	if env.Reg(0) != 3 || env.Reg(1) != 30 {
		t.Errorf("R1=%d R2=%d, want 3 and 30", env.Reg(0), env.Reg(1))
	}
}

func TestVMSpecializationMismatch(t *testing.T) {
	p, err := Compile(mustInfo(t, minRTTSrc), Options{SubflowCount: 4})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	env := envtest.TwoSubflowEnv(1) // 2 subflows, not 4
	if err := p.Exec(env); !errors.Is(err, ErrSpecializationMismatch) {
		t.Fatalf("Exec = %v, want ErrSpecializationMismatch", err)
	}
}

func TestVMSpecializedMatchesGeneric(t *testing.T) {
	srcs := []string{
		minRTTSrc,
		`VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
		IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
		IF (!Q.EMPTY) {
			VAR sbf = sbfs.GET(R1);
			IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) { sbf.PUSH(Q.POP()); }
			SET(R1, R1 + 1);
		}`,
		`IF (!Q.EMPTY) {
			VAR skb = Q.POP();
			FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }
		}`,
	}
	for _, src := range srcs {
		info := mustInfo(t, src)
		generic, err := Compile(info, Options{SubflowCount: -1})
		if err != nil {
			t.Fatalf("Compile generic: %v", err)
		}
		special, err := Compile(info, Options{SubflowCount: 2})
		if err != nil {
			t.Fatalf("Compile specialized: %v", err)
		}
		for seed := int64(0); seed < 20; seed++ {
			envA := envtest.TwoSubflowEnv(int(seed % 5))
			envB := envtest.TwoSubflowEnv(int(seed % 5))
			envA.Regs[0] = seed
			envB.Regs[0] = seed
			if err := generic.Exec(envA); err != nil {
				t.Fatalf("generic Exec: %v", err)
			}
			if err := special.Exec(envB); err != nil {
				t.Fatalf("specialized Exec: %v", err)
			}
			if !envtest.SameActions(envA.Actions, envB.Actions) {
				t.Fatalf("specialized diverges from generic:\n%s\ngeneric:     %v\nspecialized: %v", src, envA.Actions, envB.Actions)
			}
			if *envA.Regs != *envB.Regs {
				t.Fatalf("specialized register divergence on %s", src)
			}
		}
	}
}

func TestVMConstantFolding(t *testing.T) {
	p := compileGeneric(t, `SET(R1, 2 + 3 * 4);`)
	// The whole expression must fold into a single movimm.
	found := false
	for _, in := range p.Insns {
		switch in.Op {
		case OpAdd, OpMul:
			t.Errorf("constant expression not folded:\n%s", p.Disassemble())
		case OpMovImm:
			if in.K == 14 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("folded constant 14 not found:\n%s", p.Disassemble())
	}
}

func TestVMDisassembleStable(t *testing.T) {
	p := compileGeneric(t, minRTTSrc)
	d := p.Disassemble()
	if !strings.Contains(d, "qnext") || !strings.Contains(d, "push") || !strings.Contains(d, "return") {
		t.Errorf("disassembly missing expected mnemonics:\n%s", d)
	}
}

func TestVerifyRejectsCorruptPrograms(t *testing.T) {
	base := compileGeneric(t, minRTTSrc)
	tests := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"empty", func(p *Program) { p.Insns = nil }},
		{"no return", func(p *Program) { p.Insns = p.Insns[:len(p.Insns)-1] }},
		{"jump out of range", func(p *Program) {
			for i := range p.Insns {
				if p.Insns[i].Op == OpJz {
					p.Insns[i].K = 1 << 20
					return
				}
			}
			panic("no jump found")
		}},
		{"bad property", func(p *Program) {
			for i := range p.Insns {
				if p.Insns[i].Op == OpSbfIntProp {
					p.Insns[i].K = 99
					return
				}
			}
			panic("no property load found")
		}},
		{"bad queue", func(p *Program) {
			for i := range p.Insns {
				if p.Insns[i].Op == OpQNext {
					p.Insns[i].K = 7
					return
				}
			}
			panic("no qnext found")
		}},
		{"bad spill slot", func(p *Program) {
			p.Insns = append([]Instr{{Op: OpLoadSlot, Dst: 0, K: 3}}, p.Insns...)
		}},
		{"unknown opcode", func(p *Program) {
			p.Insns[0] = Instr{Op: Op(200)}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clone := &Program{
				Insns:               append([]Instr(nil), base.Insns...),
				SpillSlots:          base.SpillSlots,
				SpecializedSubflows: base.SpecializedSubflows,
			}
			tc.mutate(clone)
			if err := Verify(clone); err == nil {
				t.Errorf("Verify accepted a corrupt program")
			}
		})
	}
}

// Regression: a program can end in OpReturn and still trap execution
// in a jump cycle the return never post-dominates. Verify must reject
// any reachable instruction with no path to a return.
func TestVerifyRejectsReturnlessCycle(t *testing.T) {
	trapped := &Program{Insns: []Instr{
		{Op: OpMovImm, Dst: 0, K: 1},
		{Op: OpJmp, K: -1}, // jumps back to the movimm forever
		{Op: OpReturn},     // syntactically present, never reachable as an exit
	}}
	err := Verify(trapped)
	if !errors.Is(err, ErrNoTermination) {
		t.Fatalf("Verify = %v, want ErrNoTermination", err)
	}

	// A conditional escape from the cycle makes the same shape legal:
	// loops are allowed, only return-free traps are not.
	escapable := &Program{Insns: []Instr{
		{Op: OpMovImm, Dst: 0, K: 1},
		{Op: OpJz, A: 0, K: -1},
		{Op: OpReturn},
	}}
	if err := Verify(escapable); err != nil {
		t.Fatalf("Verify rejected an escapable loop: %v", err)
	}

	// An unreachable cycle is dead code, not a trap.
	deadCycle := &Program{Insns: []Instr{
		{Op: OpJmp, K: 2},
		{Op: OpJmp, K: -1},
		{Op: OpJmp, K: -2},
		{Op: OpReturn},
	}}
	if err := Verify(deadCycle); err != nil {
		t.Fatalf("Verify rejected a program with an unreachable cycle: %v", err)
	}
}

func TestVMSpillPressure(t *testing.T) {
	// Build an expression wide enough to exceed 14 allocatable
	// registers so the allocator must spill; semantics must hold.
	var sb strings.Builder
	sb.WriteString("SET(R1, ")
	// A deep left-leaning sum keeps many intermediates alive at once
	// only with parentheses on the right side.
	sum := "1"
	for i := 2; i <= 40; i++ {
		sum = "(" + sum + " + " + itoa(i) + ")"
	}
	// Nest differently to lengthen live ranges: (a*(b+(c*(d+...))))
	expr := "1"
	for i := 2; i <= 30; i++ {
		expr = "(" + itoa(i) + " + (" + expr + " * 2))"
	}
	sb.WriteString(sum + " + " + expr)
	sb.WriteString(");")
	info := mustInfo(t, sb.String())

	// Constant folding would erase the pressure; verify against the
	// interpreter result rather than structure.
	p, err := Compile(info, Options{SubflowCount: -1})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	envA := envtest.TwoSubflowEnv(0)
	envB := envtest.TwoSubflowEnv(0)
	interp.New(info).Exec(envA)
	if err := p.Exec(envB); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if envA.Reg(0) != envB.Reg(0) {
		t.Fatalf("spilled program wrong: vm R1=%d, interp R1=%d", envB.Reg(0), envA.Reg(0))
	}
}

func itoa(i int) string {
	return lang.FormatExpr(&lang.NumberLit{Val: int64(i)})
}

// TestDifferentialThreeWay drives random programs through all three
// back-ends and requires identical actions and registers.
func TestDifferentialThreeWay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 700; i++ {
		src := envtest.GenProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("generated program does not check: %v\n%s", err, src)
		}
		vmProg, err := Compile(info, Options{SubflowCount: -1})
		if err != nil {
			t.Fatalf("vm compile failed: %v\n%s", err, src)
		}
		seed := rng.Int63()
		envI := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
		envC := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
		envV := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
		interp.New(info).Exec(envI)
		compile.New(info).Exec(envC)
		if err := vmProg.Exec(envV); err != nil {
			t.Fatalf("vm exec failed: %v\n%s", err, src)
		}
		if !actionsEquivalent(envI, envV) {
			t.Fatalf("vm diverges from interpreter on:\n%s\ninterp: %v\nvm:     %v\n%s", src, envI.Actions, envV.Actions, vmProg.Disassemble())
		}
		if !reflect.DeepEqual(envI.Actions, envC.Actions) {
			t.Fatalf("compiled closures diverge from interpreter on:\n%s", src)
		}
		if *envI.Regs != *envV.Regs {
			t.Fatalf("vm register divergence on:\n%s\ninterp: %v\nvm:     %v", src, *envI.Regs, *envV.Regs)
		}
		if *envI.Globals != *envV.Globals || envI.DirtyGlobals() != envV.DirtyGlobals() {
			t.Fatalf("vm global divergence on:\n%s\ninterp: %v (dirty %b)\nvm:     %v (dirty %b)",
				src, *envI.Globals, envI.DirtyGlobals(), *envV.Globals, envV.DirtyGlobals())
		}
		if *envI.Globals != *envC.Globals || envI.DirtyGlobals() != envC.DirtyGlobals() {
			t.Fatalf("compiled closures global divergence on:\n%s", src)
		}
	}
}

// actionsEquivalent compares action queues. The VM records the same
// actions in the same order; handles must match exactly because both
// sides read the same envtest-built snapshots. Decision sites are
// back-end-specific and ignored.
func actionsEquivalent(a, b *runtime.Env) bool {
	return envtest.SameActions(a.Actions, b.Actions)
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on nil info program")
		}
	}()
	MustCompile(nil)
}

func TestVerifyQueueIDs(t *testing.T) {
	// Every queue-id-carrying opcode must reject ids beyond RQ and
	// negative ids, mirroring the eBPF loader's bounds discipline.
	mk := func(insns ...Instr) *Program {
		return &Program{Insns: append(insns, Instr{Op: OpReturn}), SpecializedSubflows: -1}
	}
	for _, op := range []Op{OpQNext, OpPktRef, OpPop} {
		if err := Verify(mk(Instr{Op: op, K: int64(runtime.QueueReinject) + 1})); err == nil {
			t.Errorf("%s: Verify accepted an out-of-range queue id", op)
		}
		if err := Verify(mk(Instr{Op: op, K: -1})); err == nil {
			t.Errorf("%s: Verify accepted a negative queue id", op)
		}
		if err := Verify(mk(Instr{Op: op, K: int64(runtime.QueueReinject)})); err != nil {
			t.Errorf("%s: Verify rejected a valid queue id: %v", op, err)
		}
	}
}

func TestVerifyFusedBranches(t *testing.T) {
	mk := func(insns ...Instr) *Program {
		return &Program{Insns: append(insns, Instr{Op: OpReturn}), SpecializedSubflows: -1}
	}
	fused := []Op{OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
		OpJltz, OpJlez, OpJgtz, OpJgez, OpJsbz, OpJsbnz, OpJbc, OpJbs}
	for _, op := range fused {
		if err := Verify(mk(Instr{Op: op, K: 99})); err == nil {
			t.Errorf("%s: Verify accepted an out-of-range jump target", op)
		}
		if err := Verify(mk(Instr{Op: op, K: -2})); err == nil {
			t.Errorf("%s: Verify accepted a jump before the program start", op)
		}
		if err := Verify(mk(Instr{Op: op, K: 0})); err != nil {
			t.Errorf("%s: Verify rejected a valid jump: %v", op, err)
		}
	}
	// OpJsbz/OpJsbnz carry a subflow bool property index in B.
	for _, op := range []Op{OpJsbz, OpJsbnz} {
		bad := mk(Instr{Op: op, B: uint8(runtime.NumSubflowBoolProps), K: 0})
		if err := Verify(bad); err == nil {
			t.Errorf("%s: Verify accepted an out-of-range property index", op)
		}
	}
}

func TestVMNilQueueReadsAsExhausted(t *testing.T) {
	// Hand-assembled program (bypassing the compiler, whose queue ids
	// are always valid): qnext against an environment whose queues are
	// unbound must read as exhausted (-1), never crash. A bare Env has
	// nil queue views, the harshest case the guard must absorb.
	p := &Program{
		Insns: []Instr{
			{Op: OpMovImm, Dst: 0, K: -1},
			{Op: OpQNext, Dst: 1, A: 0, K: int64(runtime.QueueSend)},
			{Op: OpStoreReg, A: 1, K: 0},
			{Op: OpReturn},
		},
		SpecializedSubflows: -1,
	}
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	env := &runtime.Env{Regs: new([runtime.NumRegisters]int64)}
	env.Regs[0] = 77
	if err := p.Exec(env); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if got := env.Reg(0); got != -1 {
		t.Errorf("qnext on a nil queue stored %d, want -1", got)
	}
}
