package vm

// IR-level optimizations run between the cross-compiler and the
// register allocator (the paper's runtime performs the analogous
// simplifications on its intermediate representation, §4.1):
//
//   - jump threading: a jump whose target is an unconditional jump is
//     retargeted to the final destination
//   - block-local constant folding: immediates propagate through moves
//     and pure ALU ops; branches on known conditions become jumps/no-ops
//     (this is what collapses the constant subflow masks and bounds that
//     specialization bakes in)
//   - compare-and-branch fusion: a comparison (or boolean NOT) whose
//     only consumer is the adjacent conditional jump fuses into one
//     OpJeq..OpJge instruction (or an inverted OpJz/OpJnz)
//   - move coalescing: `op t, ...; mov d, t` with t used once collapses
//     into `op d, ...`
//   - dead-def elimination: a pure instruction whose result is never
//     read afterwards (global liveness) is dropped
//   - dead-code elimination: instructions unreachable from the entry
//     are removed (with jump offsets remapped)
//   - trivial-move removal: `mov r, r` becomes a no-op and is dropped
//
// All passes preserve semantics exactly; the three-way differential
// tests exercise them on every randomly generated program.

// optimize applies the IR passes until a fixpoint (bounded), then
// hoists rematerialized constants into an entry preamble and cleans up
// once more.
func optimize(ir []irIns) []irIns {
	ir = fixpoint(ir)
	if out, hoisted := hoistConsts(ir); hoisted {
		ir = fixpoint(out)
	}
	return ir
}

func fixpoint(ir []irIns) []irIns {
	for round := 0; round < 10; round++ {
		out, c1 := threadJumps(ir)
		c2 := condJumpThread(out)
		c3 := constFold(out)
		c4 := fuseCompareBranch(out)
		c5 := zeroCompareJumps(out)
		c6 := coalesceMovs(out)
		c7 := deadDefs(out)
		out, c8 := eliminateDead(out)
		ir = out
		if !c1 && !c2 && !c3 && !c4 && !c5 && !c6 && !c7 && !c8 {
			break
		}
	}
	return ir
}

// hoistConsts merges globally-constant vregs (see globalConsts) holding
// the same value into one canonical vreg defined once in an entry
// preamble, no-op-ing the scattered movimm defs. Specialized unrolled
// code rematerializes the same loop indices and handles many times;
// after hoisting each distinct value costs one instruction per
// execution. Prepending is safe: jump offsets are relative, so the
// uniform shift preserves every edge, and no jump can target the
// preamble (offsets only reach existing instructions).
func hoistConsts(ir []irIns) ([]irIns, bool) {
	nv := maxVreg(ir)
	if nv == 0 {
		return ir, false
	}
	gknown, gval := globalConsts(ir, nv)
	// Hoisting pays off only for values rematerialized at 2+ sites:
	// one def site merely moves to the preamble.
	defSites := make(map[int64]int)
	for _, in := range ir {
		if in.op == OpMovImm && in.dst < nv && gknown[in.dst] {
			defSites[in.k]++
		}
	}
	canon := make(map[int64]int) // value → canonical vreg
	next := nv
	var order []int64 // deterministic preamble order: first def wins
	for _, in := range ir {
		if in.op == OpMovImm && in.dst < nv && gknown[in.dst] && defSites[in.k] > 1 {
			if _, ok := canon[in.k]; !ok {
				canon[in.k] = next
				next++
				order = append(order, in.k)
			}
		}
	}
	if len(canon) == 0 {
		return ir, false
	}
	out := make([]irIns, 0, len(ir)+len(canon))
	for _, k := range order {
		out = append(out, irIns{op: OpMovImm, dst: canon[k], k: k})
	}
	for _, in := range ir {
		if in.op == OpMovImm && in.dst < nv && gknown[in.dst] {
			if _, ok := canon[in.k]; ok {
				// The value now lives in the canonical vreg.
				in.op, in.k = OpNop, 0
				out = append(out, in)
				continue
			}
		}
		r := roles[in.op]
		if r.readsA && in.a < nv && gknown[in.a] {
			if cv, ok := canon[gval[in.a]]; ok {
				in.a = cv
			}
		}
		if r.readsB && in.b < nv && gknown[in.b] {
			if cv, ok := canon[gval[in.b]]; ok {
				in.b = cv
			}
		}
		out = append(out, in)
	}
	return out, true
}

// isJump reports whether the op transfers control via K.
func isJump(op Op) bool {
	switch op {
	case OpJmp, OpJz, OpJnz, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
		OpJltz, OpJlez, OpJgtz, OpJgez, OpJsbz, OpJsbnz, OpJbc, OpJbs:
		return true
	}
	return false
}

// isCondJump reports a jump with a fall-through successor.
func isCondJump(op Op) bool { return isJump(op) && op != OpJmp }

// threadJumps retargets jumps that land on unconditional jumps and
// drops self-moves.
func threadJumps(ir []irIns) ([]irIns, bool) {
	changed := false
	// finalTarget follows OpJmp chains (with a hop bound for safety
	// against adversarial cycles).
	finalTarget := func(idx int) int {
		for hops := 0; hops < len(ir); hops++ {
			if idx < 0 || idx >= len(ir) {
				return idx
			}
			in := ir[idx]
			if in.op != OpJmp {
				return idx
			}
			next := idx + 1 + int(in.k)
			if next == idx { // self-loop: leave it
				return idx
			}
			idx = next
		}
		return idx
	}
	out := make([]irIns, len(ir))
	copy(out, ir)
	for i := range out {
		in := &out[i]
		if isJump(in.op) {
			target := i + 1 + int(in.k)
			final := finalTarget(target)
			if final != target {
				in.k = int64(final - i - 1)
				changed = true
			}
		}
		if in.op == OpMov && in.dst == in.a {
			in.op = OpNop
			changed = true
		}
		if in.op == OpJmp && in.k == 0 {
			// Jump to the next instruction: pure fall-through.
			in.op = OpNop
			changed = true
		}
	}
	return out, changed
}

// condJumpThread retargets a conditional jump whose destination is
// another conditional jump testing the same condition: the second
// test's outcome is already decided on arrival, so the first jump can
// go straight to where the second one would. Nothing executes between
// the two (the destination IS the second jump), so the tested registers
// are untouched in between.
func condJumpThread(ir []irIns) bool {
	sameCond := func(a, b irIns) bool {
		if a.op != b.op {
			return false
		}
		return condOperandsEqual(a, b)
	}
	changed := false
	for i := range ir {
		in := &ir[i]
		if !isCondJump(in.op) {
			continue
		}
		t := i + 1 + int(in.k)
		if t < 0 || t >= len(ir) || t == i {
			continue
		}
		if sameCond(*in, ir[t]) {
			// Taken here → taken there too: land beyond the second jump.
			next := t + 1 + int(ir[t].k)
			if next >= 0 && next < len(ir) && next != t && next != i {
				in.k = int64(next - i - 1)
				changed = true
			}
		} else if invCond(*in, ir[t]) {
			// Taken here → NOT taken there: fall through the second jump.
			if t+1 < len(ir) {
				in.k = int64(t - i)
				changed = true
			}
		}
	}
	return changed
}

// invCond reports that jump b's condition is the exact complement of
// jump a's over identical operands, so a taken implies b not taken.
func invCond(a, b irIns) bool {
	var inv Op
	switch a.op {
	case OpJz:
		inv = OpJnz
	case OpJnz:
		inv = OpJz
	case OpJeq:
		inv = OpJne
	case OpJne:
		inv = OpJeq
	case OpJlt:
		inv = OpJge
	case OpJge:
		inv = OpJlt
	case OpJle:
		inv = OpJgt
	case OpJgt:
		inv = OpJle
	case OpJltz:
		inv = OpJgez
	case OpJgez:
		inv = OpJltz
	case OpJlez:
		inv = OpJgtz
	case OpJgtz:
		inv = OpJlez
	case OpJsbz:
		inv = OpJsbnz
	case OpJsbnz:
		inv = OpJsbz
	case OpJbc:
		inv = OpJbs
	case OpJbs:
		inv = OpJbc
	default:
		return false
	}
	if b.op != inv {
		return false
	}
	return condOperandsEqual(a, b)
}

// condOperandsEqual compares the condition operands of two jumps with
// the same (or complementary) opcode. OpJsbz/OpJsbnz carry a property
// index in B that roles does not describe as a register read, so it is
// compared explicitly.
func condOperandsEqual(a, b irIns) bool {
	r := roles[a.op]
	if r.readsA && a.a != b.a {
		return false
	}
	if r.readsB && a.b != b.b {
		return false
	}
	if (a.op == OpJsbz || a.op == OpJsbnz) && a.b != b.b {
		return false
	}
	return true
}

// blockLeaders marks basic-block entry points: instruction 0, every
// jump target, and every instruction following a jump.
func blockLeaders(ir []irIns) []bool {
	leader := make([]bool, len(ir)+1)
	if len(ir) > 0 {
		leader[0] = true
	}
	for i, in := range ir {
		if isJump(in.op) {
			t := i + 1 + int(in.k)
			if t >= 0 && t <= len(ir) {
				leader[t] = true
			}
			if i+1 <= len(ir) {
				leader[i+1] = true
			}
		}
	}
	return leader
}

// readCounts tallies how many instruction operands read each vreg.
func readCounts(ir []irIns, nv int) []int {
	counts := make([]int, nv)
	for _, in := range ir {
		r := roles[in.op]
		if r.readsA {
			counts[in.a]++
		}
		if r.readsB {
			counts[in.b]++
		}
	}
	return counts
}

func maxVreg(ir []irIns) int {
	nv := 0
	for _, in := range ir {
		r := roles[in.op]
		if r.readsA && in.a >= nv {
			nv = in.a + 1
		}
		if r.readsB && in.b >= nv {
			nv = in.b + 1
		}
		if r.writesDst && in.dst >= nv {
			nv = in.dst + 1
		}
	}
	return nv
}

// globalConsts finds vregs whose every definition is OpMovImm of one
// value and whose first definition precedes the first read: those hold
// that constant everywhere. This is what carries specialization-time
// constants (subflow masks, unrolled loop indices) across the block
// boundaries that conditional branches introduce.
func globalConsts(ir []irIns, nv int) ([]bool, []int64) {
	const (
		unseen = iota
		constant
		dynamic
	)
	state := make([]uint8, nv)
	val := make([]int64, nv)
	firstRead := make([]int, nv)
	firstDef := make([]int, nv)
	for v := range firstRead {
		firstRead[v] = len(ir)
		firstDef[v] = len(ir)
	}
	for i, in := range ir {
		r := roles[in.op]
		if r.readsA && in.a < nv && i < firstRead[in.a] {
			firstRead[in.a] = i
		}
		if r.readsB && in.b < nv && i < firstRead[in.b] {
			firstRead[in.b] = i
		}
		if r.writesDst && in.dst < nv {
			if i < firstDef[in.dst] {
				firstDef[in.dst] = i
			}
			if in.op == OpMovImm {
				switch state[in.dst] {
				case unseen:
					state[in.dst], val[in.dst] = constant, in.k
				case constant:
					if val[in.dst] != in.k {
						state[in.dst] = dynamic
					}
				}
			} else {
				state[in.dst] = dynamic
			}
		}
	}
	known := make([]bool, nv)
	for v := range known {
		known[v] = state[v] == constant && firstDef[v] < firstRead[v]
	}
	return known, val
}

// constFold propagates constants and folds pure instructions whose
// operands are all known, turning decided branches into unconditional
// jumps or no-ops. Constants are tracked block-locally plus globally
// (single-valued vregs, see globalConsts). Arithmetic replicates the
// VM exactly: int64 wraparound, and division or modulo by zero yields
// 0 (no exceptions by design, §3.3).
func constFold(ir []irIns) bool {
	leader := blockLeaders(ir)
	nv := maxVreg(ir)
	gknown, gval := globalConsts(ir, nv)
	konst := make([]int64, nv)
	known := make([]bool, nv)
	changed := false
	for i := range ir {
		if i < len(leader) && leader[i] {
			for v := range known {
				known[v] = false
			}
		}
		in := &ir[i]
		var va, vb int64
		ka, kb := false, false
		if roles[in.op].readsA && in.a < nv {
			if known[in.a] {
				ka, va = true, konst[in.a]
			} else if gknown[in.a] {
				ka, va = true, gval[in.a]
			}
		}
		if roles[in.op].readsB && in.b < nv {
			if known[in.b] {
				kb, vb = true, konst[in.b]
			} else if gknown[in.b] {
				kb, vb = true, gval[in.b]
			}
		}
		setConst := func(v int64) {
			in.op, in.k = OpMovImm, v
			changed = true
		}
		switch in.op {
		case OpMovImm:
			// Recorded below.
		case OpMov:
			if ka {
				setConst(va)
			}
		case OpAdd:
			if ka && kb {
				setConst(va + vb)
			}
		case OpSub:
			if ka && kb {
				setConst(va - vb)
			}
		case OpMul:
			if ka && kb {
				setConst(va * vb)
			}
		case OpDiv:
			if ka && kb {
				if vb == 0 {
					setConst(0)
				} else {
					setConst(va / vb)
				}
			}
		case OpMod:
			if ka && kb {
				if vb == 0 {
					setConst(0)
				} else {
					setConst(va % vb)
				}
			}
		case OpNeg:
			if ka {
				setConst(-va)
			}
		case OpNot:
			if ka {
				setConst(foldB2i(va == 0))
			}
		case OpEq:
			if ka && kb {
				setConst(foldB2i(va == vb))
			}
		case OpNe:
			if ka && kb {
				setConst(foldB2i(va != vb))
			}
		case OpLt:
			if ka && kb {
				setConst(foldB2i(va < vb))
			}
		case OpLe:
			if ka && kb {
				setConst(foldB2i(va <= vb))
			}
		case OpGt:
			if ka && kb {
				setConst(foldB2i(va > vb))
			}
		case OpGe:
			if ka && kb {
				setConst(foldB2i(va >= vb))
			}
		case OpPopcnt:
			if ka {
				setConst(popcount(va))
			}
		case OpBitSet:
			if ka && kb {
				setConst(va | int64(uint64(1)<<uint(vb&63)))
			}
		case OpBitTest:
			if ka && kb {
				setConst((va >> uint(vb&63)) & 1)
			}
		case OpSbfRef:
			// The handle encoding is pure arithmetic (index + 1), so a
			// constant index — the unrolled-loop case — folds entirely.
			if ka {
				setConst(va + 1)
			}
		case OpJz:
			if ka {
				if va == 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJnz:
			if ka {
				if va != 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
			if ka && kb {
				var take bool
				switch in.op {
				case OpJeq:
					take = va == vb
				case OpJne:
					take = va != vb
				case OpJlt:
					take = va < vb
				case OpJle:
					take = va <= vb
				case OpJgt:
					take = va > vb
				case OpJge:
					take = va >= vb
				}
				if take {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJltz:
			if ka {
				if va < 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJlez:
			if ka {
				if va <= 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJgtz:
			if ka {
				if va > 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJgez:
			if ka {
				if va >= 0 {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		case OpJbc, OpJbs:
			if ka && kb {
				bit := (va >> uint(vb&63)) & 1
				if (bit == 0) == (in.op == OpJbc) {
					in.op = OpJmp
				} else {
					in.op, in.k = OpNop, 0
				}
				changed = true
			}
		}
		// Update the constant state with this instruction's result.
		if roles[in.op].writesDst && in.dst < nv {
			if in.op == OpMovImm {
				known[in.dst], konst[in.dst] = true, in.k
			} else {
				known[in.dst] = false
			}
		}
	}
	return changed
}

func foldB2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// fusedJump maps a comparison opcode to the fused jump taken when the
// comparison holds (neg false) or when it fails (neg true).
func fusedJump(op Op, neg bool) (Op, bool) {
	type pair struct{ pos, neg Op }
	var p pair
	switch op {
	case OpEq:
		p = pair{OpJeq, OpJne}
	case OpNe:
		p = pair{OpJne, OpJeq}
	case OpLt:
		p = pair{OpJlt, OpJge}
	case OpLe:
		p = pair{OpJle, OpJgt}
	case OpGt:
		p = pair{OpJgt, OpJle}
	case OpGe:
		p = pair{OpJge, OpJlt}
	default:
		return OpNop, false
	}
	if neg {
		return p.neg, true
	}
	return p.pos, true
}

// fuseCompareBranch rewrites `cmp t, a, b; jnz t, L` into a single
// fused compare-and-branch (and `jz t, L` into its inversion), plus
// `not t, a; jz/jnz t, L` into the opposite plain branch — provided t
// dies at the jump (liveness, so multi-def short-circuit chains fuse
// too) and no other control flow can enter between the pair.
func fuseCompareBranch(ir []irIns) bool {
	nv := maxVreg(ir)
	if nv == 0 {
		return false
	}
	liveOut, words := liveSets(ir, nv)
	leader := blockLeaders(ir)
	changed := false
	for i := 0; i+1 < len(ir); i++ {
		def := &ir[i]
		jmp := &ir[i+1]
		if (jmp.op != OpJz && jmp.op != OpJnz) || jmp.a != def.dst {
			continue
		}
		// The jump must be reachable only by falling out of the compare:
		// a side entry would evaluate the fused condition on unrelated
		// register contents.
		if leader[i+1] {
			continue
		}
		if !roles[def.op].writesDst || def.dst >= nv {
			continue
		}
		// t must die at the jump: a later read would miss the value.
		j := i + 1
		if bitSet(liveOut[j*words:(j+1)*words], def.dst) {
			continue
		}
		switch def.op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			op, ok := fusedJump(def.op, jmp.op == OpJz)
			if !ok {
				continue
			}
			jmp.op, jmp.a, jmp.b = op, def.a, def.b
			def.op, def.k = OpNop, 0
			changed = true
		case OpNot:
			if jmp.op == OpJz {
				jmp.op = OpJnz
			} else {
				jmp.op = OpJz
			}
			jmp.a = def.a
			def.op, def.k = OpNop, 0
			changed = true
		}
	}
	return changed
}

// coalesceMovs collapses `op t, ...; mov d, t` into `op d, ...` when t
// is read only by that move, the pair sits in one basic block, and d is
// untouched in between.
func coalesceMovs(ir []irIns) bool {
	nv := maxVreg(ir)
	counts := readCounts(ir, nv)
	leader := blockLeaders(ir)
	changed := false
	for j := range ir {
		mv := &ir[j]
		if mv.op != OpMov || mv.a >= nv || counts[mv.a] != 1 || mv.a == mv.dst {
			continue
		}
		// A side entry at the move would bypass the retargeted def.
		if leader[j] {
			continue
		}
		// Walk back to t's def within the block.
		for i := j - 1; i >= 0; i-- {
			in := &ir[i]
			r := roles[in.op]
			if r.writesDst && in.dst == mv.a {
				// Found the def. Retarget it unless d is used in between
				// (the scan above already proved it is not).
				in.dst = mv.dst
				mv.op, mv.a, mv.k = OpNop, 0, 0
				changed = true
				break
			}
			// d read, written, or block boundary in between: give up.
			if (r.readsA && in.a == mv.dst) || (r.readsB && in.b == mv.dst) ||
				(r.writesDst && in.dst == mv.dst) || leader[i+1] {
				break
			}
		}
	}
	return changed
}

// sideEffectFree reports ops whose only observable effect is writing
// dst; these may be dropped when the result is dead. Queue and subflow
// reads are pure — only the action ops, register-file stores, control
// flow and OpReturn have effects beyond dst.
func sideEffectFree(op Op) bool {
	switch op {
	case OpPop, OpPush, OpDrop, OpStoreReg, OpStoreGlobal, OpStoreSlot, OpReturn:
		return false
	}
	return !isJump(op)
}

// bitSet reports whether vreg v is present in the bitset.
func bitSet(set []uint64, v int) bool { return set[v/64]&(1<<(v%64)) != 0 }

// liveSets computes per-instruction live-out bitsets with a global
// backward dataflow over the CFG. liveOut[i*words:(i+1)*words] is the
// set of vregs read on some path after instruction i executes.
func liveSets(ir []irIns, nv int) (liveOut []uint64, words int) {
	n := len(ir)
	words = (nv + 63) / 64
	liveOut = make([]uint64, n*words)
	liveIn := make([]uint64, n*words)
	set := func(s []uint64, v int) { s[v/64] |= 1 << (v % 64) }
	for changedFlow := true; changedFlow; {
		changedFlow = false
		for i := n - 1; i >= 0; i-- {
			in := ir[i]
			out := liveOut[i*words : (i+1)*words]
			// Successors.
			merge := func(succ int) {
				if succ < 0 || succ >= n {
					return
				}
				src := liveIn[succ*words : (succ+1)*words]
				for w := range out {
					if out[w]|src[w] != out[w] {
						out[w] |= src[w]
						changedFlow = true
					}
				}
			}
			switch {
			case in.op == OpReturn:
			case in.op == OpJmp:
				merge(i + 1 + int(in.k))
			case isCondJump(in.op):
				merge(i + 1)
				merge(i + 1 + int(in.k))
			default:
				merge(i + 1)
			}
			// liveIn = (liveOut − def) ∪ use.
			inSet := liveIn[i*words : (i+1)*words]
			r := roles[in.op]
			for w := range inSet {
				v := out[w]
				if r.writesDst {
					if dw := in.dst / 64; dw == w {
						v &^= 1 << (in.dst % 64)
					}
				}
				if v|inSet[w] != inSet[w] {
					inSet[w] |= v
					changedFlow = true
				}
			}
			if r.readsA && !bitSet(inSet, in.a) {
				set(inSet, in.a)
				changedFlow = true
			}
			if r.readsB && !bitSet(inSet, in.b) {
				set(inSet, in.b)
				changedFlow = true
			}
		}
	}
	return liveOut, words
}

// zeroCompareJumps rewrites fused compare-and-branch instructions whose
// one operand is a known constant zero into the single-operand
// zero-compare forms, freeing the constant's defining movimm to die.
func zeroCompareJumps(ir []irIns) bool {
	nv := maxVreg(ir)
	if nv == 0 {
		return false
	}
	gknown, gval := globalConsts(ir, nv)
	isZero := func(v int) bool { return v < nv && gknown[v] && gval[v] == 0 }
	changed := false
	for i := range ir {
		in := &ir[i]
		switch in.op {
		case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
		default:
			continue
		}
		if isZero(in.b) {
			switch in.op {
			case OpJeq:
				in.op = OpJz
			case OpJne:
				in.op = OpJnz
			case OpJlt:
				in.op = OpJltz
			case OpJle:
				in.op = OpJlez
			case OpJgt:
				in.op = OpJgtz
			case OpJge:
				in.op = OpJgez
			}
			changed = true
		} else if isZero(in.a) {
			// 0 OP b ⇔ b OP' 0 with the comparison mirrored.
			in.a = in.b
			switch in.op {
			case OpJeq:
				in.op = OpJz
			case OpJne:
				in.op = OpJnz
			case OpJlt:
				in.op = OpJgtz
			case OpJle:
				in.op = OpJgez
			case OpJgt:
				in.op = OpJltz
			case OpJge:
				in.op = OpJlez
			}
			changed = true
		}
	}
	return changed
}

// deadDefs removes pure instructions whose destination is dead: never
// read on any path from the instruction (global backward liveness over
// the CFG).
func deadDefs(ir []irIns) bool {
	n := len(ir)
	nv := maxVreg(ir)
	if n == 0 || nv == 0 {
		return false
	}
	liveOut, words := liveSets(ir, nv)
	changed := false
	for i := range ir {
		in := &ir[i]
		r := roles[in.op]
		if in.op == OpNop || !r.writesDst || !sideEffectFree(in.op) {
			continue
		}
		if !bitSet(liveOut[i*words:(i+1)*words], in.dst) {
			in.op, in.k = OpNop, 0
			changed = true
		}
	}
	return changed
}

// eliminateDead removes instructions that cannot execute (unreachable
// from entry) plus OpNops, rebuilding jump offsets.
func eliminateDead(ir []irIns) ([]irIns, bool) {
	n := len(ir)
	if n == 0 {
		return ir, false
	}
	reachable := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n || reachable[i] {
			continue
		}
		reachable[i] = true
		in := ir[i]
		switch {
		case in.op == OpReturn:
			// No successors.
		case in.op == OpJmp:
			stack = append(stack, i+1+int(in.k))
		case isJump(in.op):
			stack = append(stack, i+1, i+1+int(in.k))
		default:
			stack = append(stack, i+1)
		}
	}
	// keep[i] reports survival; newIndex[i] is the compacted position.
	newIndex := make([]int, n+1)
	kept := 0
	for i := 0; i < n; i++ {
		newIndex[i] = kept
		if reachable[i] && ir[i].op != OpNop {
			kept++
		}
	}
	newIndex[n] = kept
	if kept == n {
		return ir, false
	}
	out := make([]irIns, 0, kept)
	for i := 0; i < n; i++ {
		if !reachable[i] || ir[i].op == OpNop {
			continue
		}
		in := ir[i]
		if isJump(in.op) {
			oldTarget := i + 1 + int(in.k)
			// A reachable jump's target is reachable; nops at the
			// target compact to the next surviving instruction.
			in.k = int64(newIndex[oldTarget] - len(out) - 1)
		}
		out = append(out, in)
	}
	return out, true
}
