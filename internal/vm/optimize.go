package vm

// IR-level optimizations run between the cross-compiler and the
// register allocator (the paper's runtime performs the analogous
// simplifications on its intermediate representation, §4.1):
//
//   - jump threading: a jump whose target is an unconditional jump is
//     retargeted to the final destination
//   - dead-code elimination: instructions unreachable from the entry
//     are removed (with jump offsets remapped)
//   - trivial-move removal: `mov r, r` becomes a no-op and is dropped
//
// All passes preserve semantics exactly; the three-way differential
// tests exercise them on every randomly generated program.

// optimize applies the IR passes until a fixpoint (bounded).
func optimize(ir []irIns) []irIns {
	for round := 0; round < 4; round++ {
		changed := false
		ir, changed = threadJumps(ir)
		ir2, changed2 := eliminateDead(ir)
		ir = ir2
		if !changed && !changed2 {
			break
		}
	}
	return ir
}

// isJump reports whether the op transfers control via K.
func isJump(op Op) bool { return op == OpJmp || op == OpJz || op == OpJnz }

// threadJumps retargets jumps that land on unconditional jumps and
// drops self-moves.
func threadJumps(ir []irIns) ([]irIns, bool) {
	changed := false
	// finalTarget follows OpJmp chains (with a hop bound for safety
	// against adversarial cycles).
	finalTarget := func(idx int) int {
		for hops := 0; hops < len(ir); hops++ {
			if idx < 0 || idx >= len(ir) {
				return idx
			}
			in := ir[idx]
			if in.op != OpJmp {
				return idx
			}
			next := idx + 1 + int(in.k)
			if next == idx { // self-loop: leave it
				return idx
			}
			idx = next
		}
		return idx
	}
	out := make([]irIns, len(ir))
	copy(out, ir)
	for i := range out {
		in := &out[i]
		if isJump(in.op) {
			target := i + 1 + int(in.k)
			final := finalTarget(target)
			if final != target {
				in.k = int64(final - i - 1)
				changed = true
			}
		}
		if in.op == OpMov && in.dst == in.a {
			in.op = OpNop
			changed = true
		}
	}
	return out, changed
}

// eliminateDead removes instructions that cannot execute (unreachable
// from entry) plus OpNops, rebuilding jump offsets.
func eliminateDead(ir []irIns) ([]irIns, bool) {
	n := len(ir)
	if n == 0 {
		return ir, false
	}
	reachable := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n || reachable[i] {
			continue
		}
		reachable[i] = true
		in := ir[i]
		switch {
		case in.op == OpReturn:
			// No successors.
		case in.op == OpJmp:
			stack = append(stack, i+1+int(in.k))
		case isJump(in.op):
			stack = append(stack, i+1, i+1+int(in.k))
		default:
			stack = append(stack, i+1)
		}
	}
	// keep[i] reports survival; newIndex[i] is the compacted position.
	newIndex := make([]int, n+1)
	kept := 0
	for i := 0; i < n; i++ {
		newIndex[i] = kept
		if reachable[i] && ir[i].op != OpNop {
			kept++
		}
	}
	newIndex[n] = kept
	if kept == n {
		return ir, false
	}
	out := make([]irIns, 0, kept)
	for i := 0; i < n; i++ {
		if !reachable[i] || ir[i].op == OpNop {
			continue
		}
		in := ir[i]
		if isJump(in.op) {
			oldTarget := i + 1 + int(in.k)
			// A reachable jump's target is reachable; nops at the
			// target compact to the next surviving instruction.
			in.k = int64(newIndex[oldTarget] - len(out) - 1)
		}
		out = append(out, in)
	}
	return out, true
}
