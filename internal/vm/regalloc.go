package vm

import (
	"fmt"
	"sort"
)

// The allocator maps unlimited virtual registers onto the physical
// file. It implements a non-splitting variant of linear-scan register
// allocation with second-chance binpacking (Traub, Holloway and Smith,
// PLDI 1998 — the algorithm the paper's in-kernel eBPF cross-compiler
// uses): intervals that lose the first scan get a second chance to
// bin-pack into lifetime holes of already-assigned registers before
// being spilled to memory slots; spilled values are accessed through
// two reserved scratch registers.

// numAllocatable physical registers; the last two are spill scratch.
const (
	numAllocatable = NumPhysRegs - 2
	scratchA       = NumPhysRegs - 2
	scratchB       = NumPhysRegs - 1
)

// interval is the conservative live range of one virtual register,
// in IR instruction indices (inclusive).
type interval struct {
	vreg       int
	start, end int
	phys       int // assigned physical register, or -1
	slot       int // assigned spill slot, or -1
}

// operand roles per opcode: which fields are read and written.
type opRoles struct {
	readsA, readsB, writesDst bool
}

var roles = map[Op]opRoles{
	OpNop:         {},
	OpMovImm:      {writesDst: true},
	OpMov:         {readsA: true, writesDst: true},
	OpAdd:         {readsA: true, readsB: true, writesDst: true},
	OpSub:         {readsA: true, readsB: true, writesDst: true},
	OpMul:         {readsA: true, readsB: true, writesDst: true},
	OpDiv:         {readsA: true, readsB: true, writesDst: true},
	OpMod:         {readsA: true, readsB: true, writesDst: true},
	OpNeg:         {readsA: true, writesDst: true},
	OpNot:         {readsA: true, writesDst: true},
	OpEq:          {readsA: true, readsB: true, writesDst: true},
	OpNe:          {readsA: true, readsB: true, writesDst: true},
	OpLt:          {readsA: true, readsB: true, writesDst: true},
	OpLe:          {readsA: true, readsB: true, writesDst: true},
	OpGt:          {readsA: true, readsB: true, writesDst: true},
	OpGe:          {readsA: true, readsB: true, writesDst: true},
	OpPopcnt:      {readsA: true, writesDst: true},
	OpBitSet:      {readsA: true, readsB: true, writesDst: true},
	OpBitTest:     {readsA: true, readsB: true, writesDst: true},
	OpJmp:         {},
	OpJz:          {readsA: true},
	OpJnz:         {readsA: true},
	OpReturn:      {},
	OpLoadReg:     {writesDst: true},
	OpStoreReg:    {readsA: true},
	OpLoadGlobal:  {writesDst: true},
	OpStoreGlobal: {readsA: true},
	OpSbfCount:    {writesDst: true},
	OpSbfRef:      {readsA: true, writesDst: true},
	OpSbfIntProp:  {readsA: true, writesDst: true},
	OpSbfBoolProp: {readsA: true, writesDst: true},
	OpHasWnd:      {readsA: true, readsB: true, writesDst: true},
	OpPktProp:     {readsA: true, writesDst: true},
	OpSentOn:      {readsA: true, readsB: true, writesDst: true},
	OpQNext:       {readsA: true, writesDst: true},
	OpPktRef:      {readsA: true, writesDst: true},
	OpPop:         {readsA: true},
	OpPush:        {readsA: true, readsB: true},
	OpDrop:        {readsA: true},
	OpLoadSlot:    {writesDst: true},
	OpStoreSlot:   {readsA: true},
	OpJeq:         {readsA: true, readsB: true},
	OpJne:         {readsA: true, readsB: true},
	OpJlt:         {readsA: true, readsB: true},
	OpJle:         {readsA: true, readsB: true},
	OpJgt:         {readsA: true, readsB: true},
	OpJge:         {readsA: true, readsB: true},
	OpJltz:        {readsA: true},
	OpJlez:        {readsA: true},
	OpJgtz:        {readsA: true},
	OpJgez:        {readsA: true},
	OpJsbz:        {readsA: true}, // B is a property index, not a register
	OpJsbnz:       {readsA: true},
	OpJbc:         {readsA: true, readsB: true},
	OpJbs:         {readsA: true, readsB: true},
}

// buildIntervals computes conservative live intervals and extends them
// across backward edges so that values live anywhere inside a loop stay
// live for the whole loop.
func buildIntervals(ir []irIns, nv int) []interval {
	ivs := make([]interval, nv)
	for v := range ivs {
		ivs[v] = interval{vreg: v, start: -1, end: -1, phys: -1, slot: -1}
	}
	touch := func(v, at int) {
		iv := &ivs[v]
		if iv.start == -1 || at < iv.start {
			iv.start = at
		}
		if at > iv.end {
			iv.end = at
		}
	}
	for i, in := range ir {
		r := roles[in.op]
		if r.readsA {
			touch(in.a, i)
		}
		if r.readsB {
			touch(in.b, i)
		}
		if r.writesDst {
			touch(in.dst, i)
		}
	}
	// Collect backward edges (jump at j targeting t <= j).
	type edge struct{ t, j int }
	var back []edge
	for j, in := range ir {
		if isJump(in.op) {
			t := j + 1 + int(in.k)
			if t <= j {
				back = append(back, edge{t: t, j: j})
			}
		}
	}
	// Extend to fixpoint: an interval overlapping a loop body must
	// cover the whole body.
	for changed := true; changed; {
		changed = false
		for _, e := range back {
			for v := range ivs {
				iv := &ivs[v]
				if iv.start == -1 {
					continue
				}
				if iv.start <= e.j && iv.end >= e.t {
					if iv.end < e.j {
						iv.end = e.j
						changed = true
					}
					if iv.start > e.t {
						iv.start = e.t
						changed = true
					}
				}
			}
		}
	}
	// Drop never-used vregs.
	used := ivs[:0]
	for _, iv := range ivs {
		if iv.start != -1 {
			used = append(used, iv)
		}
	}
	return used
}

// allocate assigns physical registers and spill slots, then rewrites
// the IR into executable instructions with spill traffic through the
// scratch registers. It returns the instructions and spill-slot count.
func allocate(ir []irIns, nv int) ([]Instr, int, error) {
	ivs := buildIntervals(ir, nv)
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})

	// First scan: classic linear scan with furthest-end eviction.
	var active []*interval // sorted by end
	var spilled []*interval
	freeRegs := make([]int, 0, numAllocatable)
	for r := numAllocatable - 1; r >= 0; r-- {
		freeRegs = append(freeRegs, r) // pop from the back → r0 first
	}
	insertActive := func(iv *interval) {
		i := sort.Search(len(active), func(i int) bool { return active[i].end > iv.end })
		active = append(active, nil)
		copy(active[i+1:], active[i:])
		active[i] = iv
	}
	for i := range ivs {
		iv := &ivs[i]
		// Expire finished intervals.
		keep := active[:0]
		for _, a := range active {
			if a.end < iv.start {
				freeRegs = append(freeRegs, a.phys)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
		if len(freeRegs) > 0 {
			iv.phys = freeRegs[len(freeRegs)-1]
			freeRegs = freeRegs[:len(freeRegs)-1]
			insertActive(iv)
			continue
		}
		// Pressure: spill the interval ending furthest (current or the
		// longest active one).
		last := active[len(active)-1]
		if last.end > iv.end {
			iv.phys = last.phys
			last.phys = -1
			spilled = append(spilled, last)
			active = active[:len(active)-1]
			insertActive(iv)
		} else {
			spilled = append(spilled, iv)
		}
	}

	// Second chance: bin-pack spilled intervals into lifetime holes of
	// the physical registers before resorting to memory.
	regBusy := make([][]*interval, numAllocatable)
	for i := range ivs {
		if iv := &ivs[i]; iv.phys >= 0 {
			regBusy[iv.phys] = append(regBusy[iv.phys], iv)
		}
	}
	overlaps := func(list []*interval, iv *interval) bool {
		for _, o := range list {
			if iv.start <= o.end && o.start <= iv.end {
				return true
			}
		}
		return false
	}
	nSlots := 0
	for _, iv := range spilled {
		placed := false
		for r := 0; r < numAllocatable; r++ {
			if !overlaps(regBusy[r], iv) {
				iv.phys = r
				regBusy[r] = append(regBusy[r], iv)
				placed = true
				break
			}
		}
		if !placed {
			iv.slot = nSlots
			nSlots++
		}
	}

	// Location map.
	type loc struct{ phys, slot int }
	locs := make(map[int]loc, len(ivs))
	for i := range ivs {
		iv := &ivs[i]
		locs[iv.vreg] = loc{phys: iv.phys, slot: iv.slot}
	}

	// Rewrite pass with jump remapping.
	groupStart := make([]int, len(ir)+1)
	opPos := make([]int, len(ir))
	var out []Instr
	for i, in := range ir {
		groupStart[i] = len(out)
		r := roles[in.op]
		ni := Instr{Op: in.op, K: in.k}
		if in.op == OpJsbz || in.op == OpJsbnz {
			// B carries a property index, not a register.
			ni.B = uint8(in.b)
		}
		if r.readsA {
			l, ok := locs[in.a]
			if !ok {
				return nil, 0, fmt.Errorf("read of unallocated vreg %d at %d", in.a, i)
			}
			if l.phys >= 0 {
				ni.A = uint8(l.phys)
			} else {
				out = append(out, Instr{Op: OpLoadSlot, Dst: scratchA, K: int64(l.slot)})
				ni.A = scratchA
			}
		}
		if r.readsB {
			l, ok := locs[in.b]
			if !ok {
				return nil, 0, fmt.Errorf("read of unallocated vreg %d at %d", in.b, i)
			}
			if l.phys >= 0 {
				ni.B = uint8(l.phys)
			} else {
				out = append(out, Instr{Op: OpLoadSlot, Dst: scratchB, K: int64(l.slot)})
				ni.B = scratchB
			}
		}
		var storeAfter *Instr
		if r.writesDst {
			l, ok := locs[in.dst]
			if !ok {
				return nil, 0, fmt.Errorf("write of unallocated vreg %d at %d", in.dst, i)
			}
			if l.phys >= 0 {
				ni.Dst = uint8(l.phys)
			} else {
				ni.Dst = scratchA
				storeAfter = &Instr{Op: OpStoreSlot, A: scratchA, K: int64(l.slot)}
			}
		}
		opPos[i] = len(out)
		out = append(out, ni)
		if storeAfter != nil {
			out = append(out, *storeAfter)
		}
	}
	groupStart[len(ir)] = len(out)

	// Fix jump offsets: a jump at old index i with offset k targeted
	// old index i+1+k; it must now reach the start of that group.
	for i, in := range ir {
		if isJump(in.op) {
			oldTarget := i + 1 + int(in.k)
			if oldTarget < 0 || oldTarget > len(ir) {
				return nil, 0, fmt.Errorf("jump at %d targets out-of-range %d", i, oldTarget)
			}
			newPos := opPos[i]
			out[newPos].K = int64(groupStart[oldTarget] - newPos - 1)
		}
	}
	return out, nSlots, nil
}
