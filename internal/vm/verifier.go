package vm

import (
	"errors"
	"fmt"

	"progmp/internal/runtime"
)

// Verification errors.
var (
	ErrEmptyProgram = errors.New("empty program")
	ErrNoReturn     = errors.New("program does not end with return")
)

// Verify checks a program the way the eBPF loader would before
// admitting it into the kernel: structural validity of every
// instruction, jump targets inside the program, register and slot
// indices in range, and property/queue indices valid. Unlike eBPF,
// loops are permitted (§6: "While eBPF does not support loops to
// ensure termination, our programming model allows FOREACH loops");
// termination is enforced by the interpreter's step budget instead.
func Verify(p *Program) error {
	n := len(p.Insns)
	if n == 0 {
		return ErrEmptyProgram
	}
	if p.Insns[n-1].Op != OpReturn {
		return ErrNoReturn
	}
	for i, in := range p.Insns {
		r, known := roles[in.Op]
		if !known {
			return fmt.Errorf("instruction %d: unknown opcode %d", i, int(in.Op))
		}
		if r.readsA && int(in.A) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): source register A out of range", i, in)
		}
		if r.readsB && int(in.B) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): source register B out of range", i, in)
		}
		if r.writesDst && int(in.Dst) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): destination register out of range", i, in)
		}
		switch in.Op {
		case OpJmp, OpJz, OpJnz, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
			OpJltz, OpJlez, OpJgtz, OpJgez, OpJsbz, OpJsbnz, OpJbc, OpJbs:
			target := i + 1 + int(in.K)
			if target < 0 || target >= n {
				return fmt.Errorf("instruction %d (%s): jump target %d out of range", i, in, target)
			}
			if (in.Op == OpJsbz || in.Op == OpJsbnz) && int(in.B) >= runtime.NumSubflowBoolProps {
				return fmt.Errorf("instruction %d (%s): subflow bool property out of range", i, in)
			}
		case OpLoadReg, OpStoreReg:
			if in.K < 0 || in.K >= runtime.NumRegisters {
				return fmt.Errorf("instruction %d (%s): ProgMP register index out of range", i, in)
			}
		case OpSbfIntProp:
			if in.K < 0 || int(in.K) >= runtime.NumSubflowIntProps {
				return fmt.Errorf("instruction %d (%s): subflow property out of range", i, in)
			}
		case OpSbfBoolProp:
			if in.K < 0 || int(in.K) >= runtime.NumSubflowBoolProps {
				return fmt.Errorf("instruction %d (%s): subflow bool property out of range", i, in)
			}
		case OpPktProp:
			if in.K < 0 || int(in.K) >= runtime.NumPacketIntProps {
				return fmt.Errorf("instruction %d (%s): packet property out of range", i, in)
			}
		case OpQNext, OpPktRef, OpPop:
			if in.K < 0 || in.K > int64(runtime.QueueReinject) {
				return fmt.Errorf("instruction %d (%s): queue id out of range", i, in)
			}
		case OpLoadSlot, OpStoreSlot:
			if in.K < 0 || int(in.K) >= p.SpillSlots {
				return fmt.Errorf("instruction %d (%s): spill slot out of range", i, in)
			}
		}
	}
	return nil
}
