package vm

import (
	"errors"
	"fmt"

	"progmp/internal/runtime"
)

// Verification errors.
var (
	ErrEmptyProgram = errors.New("empty program")
	ErrNoReturn     = errors.New("program does not end with return")
	// ErrNoTermination is returned when some reachable instruction has
	// no control-flow path to an OpReturn: execution entering it can
	// only leave via the step budget, never by terminating.
	ErrNoTermination = errors.New("reachable code has no path to a return instruction")
)

// Verify checks a program the way the eBPF loader would before
// admitting it into the kernel: structural validity of every
// instruction, jump targets inside the program, register and slot
// indices in range, and property/queue indices valid. Unlike eBPF,
// loops are permitted (§6: "While eBPF does not support loops to
// ensure termination, our programming model allows FOREACH loops");
// termination is enforced by the interpreter's step budget instead.
func Verify(p *Program) error {
	n := len(p.Insns)
	if n == 0 {
		return ErrEmptyProgram
	}
	if p.Insns[n-1].Op != OpReturn {
		return ErrNoReturn
	}
	for i, in := range p.Insns {
		r, known := roles[in.Op]
		if !known {
			return fmt.Errorf("instruction %d: unknown opcode %d", i, int(in.Op))
		}
		if r.readsA && int(in.A) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): source register A out of range", i, in)
		}
		if r.readsB && int(in.B) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): source register B out of range", i, in)
		}
		if r.writesDst && int(in.Dst) >= NumPhysRegs {
			return fmt.Errorf("instruction %d (%s): destination register out of range", i, in)
		}
		switch in.Op {
		case OpJmp, OpJz, OpJnz, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
			OpJltz, OpJlez, OpJgtz, OpJgez, OpJsbz, OpJsbnz, OpJbc, OpJbs:
			target := i + 1 + int(in.K)
			if target < 0 || target >= n {
				return fmt.Errorf("instruction %d (%s): jump target %d out of range", i, in, target)
			}
			if (in.Op == OpJsbz || in.Op == OpJsbnz) && int(in.B) >= runtime.NumSubflowBoolProps {
				return fmt.Errorf("instruction %d (%s): subflow bool property out of range", i, in)
			}
		case OpLoadReg, OpStoreReg:
			if in.K < 0 || in.K >= runtime.NumRegisters {
				return fmt.Errorf("instruction %d (%s): ProgMP register index out of range", i, in)
			}
		case OpLoadGlobal, OpStoreGlobal:
			if in.K < 0 || in.K >= runtime.NumGlobals {
				return fmt.Errorf("instruction %d (%s): global register index out of range", i, in)
			}
		case OpSbfIntProp:
			if in.K < 0 || int(in.K) >= runtime.NumSubflowIntProps {
				return fmt.Errorf("instruction %d (%s): subflow property out of range", i, in)
			}
		case OpSbfBoolProp:
			if in.K < 0 || int(in.K) >= runtime.NumSubflowBoolProps {
				return fmt.Errorf("instruction %d (%s): subflow bool property out of range", i, in)
			}
		case OpPktProp:
			if in.K < 0 || int(in.K) >= runtime.NumPacketIntProps {
				return fmt.Errorf("instruction %d (%s): packet property out of range", i, in)
			}
		case OpQNext, OpPktRef, OpPop:
			if in.K < 0 || in.K > int64(runtime.QueueReinject) {
				return fmt.Errorf("instruction %d (%s): queue id out of range", i, in)
			}
		case OpLoadSlot, OpStoreSlot:
			if in.K < 0 || int(in.K) >= p.SpillSlots {
				return fmt.Errorf("instruction %d (%s): spill slot out of range", i, in)
			}
		}
	}
	return verifyTermination(p)
}

// verifyTermination checks that every instruction reachable from entry
// has a control-flow path to an OpReturn. The trailing-return check
// above is not enough: a program whose last instruction is OpReturn
// can still trap execution in a jump cycle that the return never
// post-dominates (e.g. `movimm; jmp -1; return`). Forward
// reachability from instruction 0 then backward reachability from the
// reachable returns finds any such trap.
func verifyTermination(p *Program) error {
	n := len(p.Insns)

	// succs lists instruction i's control-flow successors. OpReturn
	// halts; OpJmp transfers unconditionally; conditional jumps fall
	// through or take the target.
	succs := func(i int) []int {
		in := p.Insns[i]
		switch in.Op {
		case OpReturn:
			return nil
		case OpJmp:
			return []int{i + 1 + int(in.K)}
		case OpJz, OpJnz, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
			OpJltz, OpJlez, OpJgtz, OpJgez, OpJsbz, OpJsbnz, OpJbc, OpJbs:
			return []int{i + 1, i + 1 + int(in.K)}
		}
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}

	reachable := make([]bool, n)
	stack := []int{0}
	reachable[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs(i) {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}

	// Backward reachability from every reachable return, over the
	// reversed edges.
	preds := make([][]int32, n)
	for i := 0; i < n; i++ {
		if !reachable[i] {
			continue
		}
		for _, s := range succs(i) {
			preds[s] = append(preds[s], int32(i))
		}
	}
	reaches := make([]bool, n)
	for i := 0; i < n; i++ {
		if reachable[i] && p.Insns[i].Op == OpReturn {
			reaches[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range preds[i] {
			if !reaches[pr] {
				reaches[pr] = true
				stack = append(stack, int(pr))
			}
		}
	}

	for i := 0; i < n; i++ {
		if reachable[i] && !reaches[i] {
			return fmt.Errorf("instruction %d (%s): %w", i, p.Insns[i], ErrNoTermination)
		}
	}
	return nil
}
