package vm

import (
	"fmt"

	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

// irIns is an instruction over unlimited virtual registers, produced by
// the cross-compiler and consumed by the register allocator.
type irIns struct {
	op   Op
	dst  int
	a, b int
	k    int64
}

// unrollLimit bounds full loop unrolling under constant-subflow-count
// specialization.
const unrollLimit = 8

// Options configure compilation.
type Options struct {
	// SubflowCount, when >= 0, specializes the program for exactly
	// that many subflows: subflow loops unroll and SUBFLOWS masks
	// become constants. The VM refuses to run a specialized program
	// against a mismatched environment; callers keep a generic
	// fallback (§4.1: "the JIT-compiler optimizes for a constant
	// number of subflows and returns to the original version
	// otherwise").
	SubflowCount int
	// DisableOptimizations skips the IR passes (jump threading,
	// dead-code elimination); for ablation measurements only.
	DisableOptimizations bool
}

// Compile lowers a checked program to verified bytecode.
func Compile(info *types.Info, opts Options) (*Program, error) {
	if opts.SubflowCount >= 0 && opts.SubflowCount > runtime.MaxSubflows {
		return nil, fmt.Errorf("vm: cannot specialize for %d subflows (max %d)", opts.SubflowCount, runtime.MaxSubflows)
	}
	c := &comp{
		info:      info,
		syms:      make(map[*types.Symbol]int),
		queueDefs: make(map[*types.Symbol]lang.Expr),
		constN:    opts.SubflowCount,
	}
	for _, s := range info.Prog.Stmts {
		c.stmt(s)
	}
	c.emit(OpReturn, 0, 0, 0, 0)
	if !opts.DisableOptimizations {
		c.ir = optimize(c.ir)
	}
	// Optimization may introduce vregs (hoisted canonical constants).
	nv := c.nv
	if mv := maxVreg(c.ir); mv > nv {
		nv = mv
	}
	insns, spills, err := allocate(c.ir, nv)
	if err != nil {
		return nil, fmt.Errorf("vm: register allocation: %w", err)
	}
	prog := &Program{Insns: insns, SpillSlots: spills, SpecializedSubflows: opts.SubflowCount}
	if err := Verify(prog); err != nil {
		return nil, fmt.Errorf("vm: verification: %w", err)
	}
	return prog, nil
}

// MustCompile compiles with the generic (unspecialized) options and
// panics on error; for embedded specifications and tests.
func MustCompile(info *types.Info) *Program {
	p, err := Compile(info, Options{SubflowCount: -1})
	if err != nil {
		panic(fmt.Sprintf("vm.MustCompile: %v", err))
	}
	return p
}

type comp struct {
	info *types.Info
	ir   []irIns
	nv   int
	// syms maps int/bool/packet/subflow/list symbols to their vreg.
	syms map[*types.Symbol]int
	// queueDefs maps queue-typed symbols to their defining expression;
	// chains are inlined at use sites (single assignment + pure
	// predicates make this sound).
	queueDefs map[*types.Symbol]lang.Expr
	constN    int
}

func (c *comp) newv() int {
	v := c.nv
	c.nv++
	return v
}

func (c *comp) emit(op Op, dst, a, b int, k int64) int {
	c.ir = append(c.ir, irIns{op: op, dst: dst, a: a, b: b, k: k})
	return len(c.ir) - 1
}

// here returns the index of the next instruction to be emitted.
func (c *comp) here() int { return len(c.ir) }

// patch fixes the jump at index at to target the next instruction.
func (c *comp) patch(at int) {
	c.ir[at].k = int64(len(c.ir) - at - 1)
}

// patchTo fixes the jump at index at to target instruction index to.
func (c *comp) patchTo(at, to int) {
	c.ir[at].k = int64(to - at - 1)
}

// imm materializes a constant in a fresh vreg.
func (c *comp) imm(v int64) int {
	dst := c.newv()
	c.emit(OpMovImm, dst, 0, 0, v)
	return dst
}

// ---- Statements ----

func (c *comp) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, inner := range s.Stmts {
			c.stmt(inner)
		}
	case *lang.IfStmt:
		jfs := c.condJumps(s.Cond, false)
		for _, inner := range s.Then.Stmts {
			c.stmt(inner)
		}
		if s.Else == nil {
			for _, j := range jfs {
				c.patch(j)
			}
			return
		}
		jend := c.emit(OpJmp, 0, 0, 0, 0)
		for _, j := range jfs {
			c.patch(j)
		}
		c.stmt(s.Else)
		c.patch(jend)
	case *lang.VarDecl:
		sym := c.info.Defs[s]
		switch sym.Type {
		case types.Int:
			c.syms[sym] = c.intExpr(s.Init)
		case types.Bool:
			c.syms[sym] = c.boolExpr(s.Init)
		case types.Packet:
			c.syms[sym] = c.pktExpr(s.Init)
		case types.Subflow:
			c.syms[sym] = c.sbfExpr(s.Init)
		case types.SubflowList:
			c.syms[sym] = c.listMask(s.Init)
		case types.PacketQueue:
			c.queueDefs[sym] = s.Init
		}
	case *lang.ForeachStmt:
		sym := c.info.Defs[s]
		mask := c.listMask(s.Iter)
		c.forEachSubflowIdx(func(idx int) {
			skip := c.emit(OpJbc, 0, mask, idx, 0)
			// A fresh loop variable per unrolled iteration keeps each
			// OpSbfRef single-assignment, so constant folding turns it
			// into a hoistable constant handle.
			loopVar := c.newv()
			c.syms[sym] = loopVar
			c.emit(OpSbfRef, loopVar, idx, 0, 0)
			for _, inner := range s.Body.Stmts {
				c.stmt(inner)
			}
			c.patch(skip)
		})
	case *lang.SetStmt:
		v := c.intExpr(s.Value)
		c.emit(OpStoreReg, 0, v, 0, int64(s.Reg))
	case *lang.GSetStmt:
		v := c.intExpr(s.Value)
		c.emit(OpStoreGlobal, 0, v, 0, int64(s.Reg))
	case *lang.PushStmt:
		target := c.sbfExpr(s.Target)
		arg := c.pktExpr(s.Arg)
		c.emit(OpPush, 0, target, arg, 0)
	case *lang.DropStmt:
		arg := c.pktExpr(s.Arg)
		c.emit(OpDrop, 0, arg, 0, 0)
	case *lang.ReturnStmt:
		c.emit(OpReturn, 0, 0, 0, 0)
	default:
		panic(fmt.Sprintf("vm: unhandled statement %T", s))
	}
}

// forEachSubflowIdx emits a loop (or, under specialization with a small
// constant count, an unrolled sequence) whose body receives a vreg
// holding the current subflow index.
func (c *comp) forEachSubflowIdx(body func(idxVreg int)) {
	if c.constN >= 0 && c.constN <= unrollLimit {
		for i := 0; i < c.constN; i++ {
			body(c.imm(int64(i)))
		}
		return
	}
	count := c.subflowCount()
	idx := c.imm(0)
	one := c.imm(1)
	loopStart := c.here()
	inRange := c.newv()
	c.emit(OpLt, inRange, idx, count, 0)
	jdone := c.emit(OpJz, 0, inRange, 0, 0)
	body(idx)
	c.emit(OpAdd, idx, idx, one, 0)
	back := c.emit(OpJmp, 0, 0, 0, 0)
	c.patchTo(back, loopStart)
	c.patch(jdone)
}

// subflowCount yields a vreg with the number of subflows.
func (c *comp) subflowCount() int {
	if c.constN >= 0 {
		return c.imm(int64(c.constN))
	}
	dst := c.newv()
	c.emit(OpSbfCount, dst, 0, 0, 0)
	return dst
}

// ---- Constant folding ----

// constEval folds pure constant integer expressions at compile time.
func (c *comp) constEval(e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.NumberLit:
		return e.Val, true
	case *lang.UnaryExpr:
		if e.Op == lang.MINUS {
			if v, ok := c.constEval(e.X); ok {
				return -v, true
			}
		}
	case *lang.BinaryExpr:
		x, okx := c.constEval(e.X)
		if !okx {
			return 0, false
		}
		y, oky := c.constEval(e.Y)
		if !oky {
			return 0, false
		}
		switch e.Op {
		case lang.PLUS:
			return x + y, true
		case lang.MINUS:
			return x - y, true
		case lang.STAR:
			return x * y, true
		case lang.SLASH:
			if y == 0 {
				return 0, true
			}
			return x / y, true
		case lang.PERCENT:
			if y == 0 {
				return 0, true
			}
			return x % y, true
		}
	}
	return 0, false
}

// ---- Int expressions ----

func (c *comp) intExpr(e lang.Expr) int {
	if v, ok := c.constEval(e); ok {
		return c.imm(v)
	}
	switch e := e.(type) {
	case *lang.RegExpr:
		dst := c.newv()
		c.emit(OpLoadReg, dst, 0, 0, int64(e.Index))
		return dst
	case *lang.GlobalExpr:
		dst := c.newv()
		c.emit(OpLoadGlobal, dst, 0, 0, int64(e.Index))
		return dst
	case *lang.Ident:
		return c.syms[c.info.Uses[e]]
	case *lang.UnaryExpr:
		x := c.intExpr(e.X)
		dst := c.newv()
		c.emit(OpNeg, dst, x, 0, 0)
		return dst
	case *lang.BinaryExpr:
		x := c.intExpr(e.X)
		y := c.intExpr(e.Y)
		dst := c.newv()
		var op Op
		switch e.Op {
		case lang.PLUS:
			op = OpAdd
		case lang.MINUS:
			op = OpSub
		case lang.STAR:
			op = OpMul
		case lang.SLASH:
			op = OpDiv
		case lang.PERCENT:
			op = OpMod
		default:
			panic(fmt.Sprintf("vm: unhandled int binary %s", e.Op))
		}
		c.emit(op, dst, x, y, 0)
		return dst
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberSbfInt:
			recv := c.sbfExpr(e.Recv)
			dst := c.newv()
			c.emit(OpSbfIntProp, dst, recv, 0, int64(m.SbfInt))
			return dst
		case types.MemberPktInt:
			recv := c.pktExpr(e.Recv)
			dst := c.newv()
			c.emit(OpPktProp, dst, recv, 0, int64(m.PktInt))
			return dst
		case types.MemberCount:
			if m.RecvType == types.SubflowList {
				mask := c.listMask(e.Recv)
				dst := c.newv()
				c.emit(OpPopcnt, dst, mask, 0, 0)
				return dst
			}
			return c.queueCount(e.Recv)
		case types.MemberBytes:
			return c.queueBytes(e.Recv)
		}
	}
	panic(fmt.Sprintf("vm: unhandled int expression %s", lang.FormatExpr(e)))
}

// ---- Bool expressions ----

// condJumps compiles e in branch context: the emitted code jumps when
// the condition's truth equals want and falls through otherwise. The
// returned instruction indices are the pending jumps, to be patched to
// the branch target. NOT and short-circuit AND/OR become pure control
// flow — no boolean is materialized — and comparisons emit fused
// compare-and-branch instructions directly.
func (c *comp) condJumps(e lang.Expr, want bool) []int {
	switch e := e.(type) {
	case *lang.BoolLit:
		if e.Val == want {
			return []int{c.emit(OpJmp, 0, 0, 0, 0)}
		}
		return nil
	case *lang.UnaryExpr:
		if e.Op == lang.NOT {
			return c.condJumps(e.X, !want)
		}
	case *lang.BinaryExpr:
		switch e.Op {
		case lang.AND, lang.OR:
			// Jumping on the truth of an AND (dually, the falsity of an
			// OR) must prove both operands: the first operand's
			// complement jumps land on the overall fall-through.
			if (e.Op == lang.AND) == want {
				around := c.condJumps(e.X, !want)
				out := c.condJumps(e.Y, want)
				for _, j := range around {
					c.patch(j)
				}
				return out
			}
			out := c.condJumps(e.X, want)
			return append(out, c.condJumps(e.Y, want)...)
		case lang.LT, lang.LTE, lang.GT, lang.GTE:
			x := c.intExpr(e.X)
			y := c.intExpr(e.Y)
			return []int{c.emit(cmpJump(e.Op, want), 0, x, y, 0)}
		case lang.EQ, lang.NEQ:
			x := c.anyExpr(e.X)
			y := c.anyExpr(e.Y)
			op := OpJeq
			if (e.Op == lang.EQ) != want {
				op = OpJne
			}
			return []int{c.emit(op, 0, x, y, 0)}
		}
	case *lang.MemberExpr:
		if m := c.info.Members[e]; m.Kind == types.MemberSbfBool {
			// The hottest predicate shape: test a subflow boolean
			// property and branch, with no materialized 0/1.
			recv := c.sbfExpr(e.Recv)
			op := OpJsbnz
			if !want {
				op = OpJsbz
			}
			return []int{c.emit(op, 0, recv, int(m.SbfBool), 0)}
		}
		if c.info.Members[e].Kind == types.MemberEmpty {
			// EMPTY is a zero test on the mask or top-packet handle.
			var v int
			if c.info.Members[e].RecvType == types.SubflowList {
				v = c.listMask(e.Recv)
			} else {
				v = c.queueTop(e.Recv)
			}
			if want {
				return []int{c.emit(OpJz, 0, v, 0, 0)}
			}
			return []int{c.emit(OpJnz, 0, v, 0, 0)}
		}
	}
	v := c.boolExpr(e)
	if want {
		return []int{c.emit(OpJnz, 0, v, 0, 0)}
	}
	return []int{c.emit(OpJz, 0, v, 0, 0)}
}

// cmpJump maps an ordering comparison to the fused jump that is taken
// when the comparison's truth equals want.
func cmpJump(op lang.Kind, want bool) Op {
	switch op {
	case lang.LT:
		if want {
			return OpJlt
		}
		return OpJge
	case lang.LTE:
		if want {
			return OpJle
		}
		return OpJgt
	case lang.GT:
		if want {
			return OpJgt
		}
		return OpJle
	default: // lang.GTE
		if want {
			return OpJge
		}
		return OpJlt
	}
}

func (c *comp) boolExpr(e lang.Expr) int {
	switch e := e.(type) {
	case *lang.BoolLit:
		if e.Val {
			return c.imm(1)
		}
		return c.imm(0)
	case *lang.Ident:
		return c.syms[c.info.Uses[e]]
	case *lang.UnaryExpr:
		x := c.boolExpr(e.X)
		dst := c.newv()
		c.emit(OpNot, dst, x, 0, 0)
		return dst
	case *lang.BinaryExpr:
		return c.boolBinary(e)
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberSbfBool:
			recv := c.sbfExpr(e.Recv)
			dst := c.newv()
			c.emit(OpSbfBoolProp, dst, recv, 0, int64(m.SbfBool))
			return dst
		case types.MemberHasWindowFor:
			recv := c.sbfExpr(e.Recv)
			arg := c.pktExpr(e.Args[0])
			dst := c.newv()
			c.emit(OpHasWnd, dst, recv, arg, 0)
			return dst
		case types.MemberSentOn:
			recv := c.pktExpr(e.Recv)
			arg := c.sbfExpr(e.Args[0])
			dst := c.newv()
			c.emit(OpSentOn, dst, recv, arg, 0)
			return dst
		case types.MemberEmpty:
			if m.RecvType == types.SubflowList {
				mask := c.listMask(e.Recv)
				zero := c.imm(0)
				dst := c.newv()
				c.emit(OpEq, dst, mask, zero, 0)
				return dst
			}
			top := c.queueTop(e.Recv)
			zero := c.imm(0)
			dst := c.newv()
			c.emit(OpEq, dst, top, zero, 0)
			return dst
		}
	}
	panic(fmt.Sprintf("vm: unhandled bool expression %s", lang.FormatExpr(e)))
}

func (c *comp) boolBinary(e *lang.BinaryExpr) int {
	switch e.Op {
	case lang.AND, lang.OR:
		// Short-circuit into a result vreg.
		dst := c.newv()
		x := c.boolExpr(e.X)
		c.emit(OpMov, dst, x, 0, 0)
		var skip int
		if e.Op == lang.AND {
			skip = c.emit(OpJz, 0, dst, 0, 0)
		} else {
			skip = c.emit(OpJnz, 0, dst, 0, 0)
		}
		y := c.boolExpr(e.Y)
		c.emit(OpMov, dst, y, 0, 0)
		c.patch(skip)
		return dst
	case lang.LT, lang.LTE, lang.GT, lang.GTE:
		x := c.intExpr(e.X)
		y := c.intExpr(e.Y)
		dst := c.newv()
		var op Op
		switch e.Op {
		case lang.LT:
			op = OpLt
		case lang.LTE:
			op = OpLe
		case lang.GT:
			op = OpGt
		default:
			op = OpGe
		}
		c.emit(op, dst, x, y, 0)
		return dst
	case lang.EQ, lang.NEQ:
		// All value encodings are canonical int64 handles, so a single
		// integer comparison implements every equality.
		x := c.anyExpr(e.X)
		y := c.anyExpr(e.Y)
		dst := c.newv()
		if e.Op == lang.EQ {
			c.emit(OpEq, dst, x, y, 0)
		} else {
			c.emit(OpNe, dst, x, y, 0)
		}
		return dst
	}
	panic(fmt.Sprintf("vm: unhandled bool binary %s", e.Op))
}

// anyExpr compiles an operand of an equality by its checked type.
func (c *comp) anyExpr(e lang.Expr) int {
	switch c.info.TypeOf(e) {
	case types.Packet:
		return c.pktExpr(e)
	case types.Subflow:
		return c.sbfExpr(e)
	case types.Bool:
		return c.boolExpr(e)
	default:
		return c.intExpr(e)
	}
}

// ---- Packet expressions ----

func (c *comp) pktExpr(e lang.Expr) int {
	switch e := e.(type) {
	case *lang.NullLit:
		return c.imm(0)
	case *lang.Ident:
		return c.syms[c.info.Uses[e]]
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberTop:
			return c.queueTop(e.Recv)
		case types.MemberPop:
			top := c.queueTop(e.Recv)
			qid, _ := c.resolveQueue(e.Recv)
			skip := c.emit(OpJz, 0, top, 0, 0)
			c.emit(OpPop, 0, top, 0, int64(qid))
			c.patch(skip)
			return top
		case types.MemberMin, types.MemberMax:
			return c.queueMinMax(e, m)
		}
	}
	panic(fmt.Sprintf("vm: unhandled packet expression %s", lang.FormatExpr(e)))
}

// ---- Subflow expressions ----

func (c *comp) sbfExpr(e lang.Expr) int {
	switch e := e.(type) {
	case *lang.NullLit:
		return c.imm(0)
	case *lang.Ident:
		return c.syms[c.info.Uses[e]]
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberMin, types.MemberMax:
			return c.listMinMax(e, m)
		case types.MemberGet:
			return c.listGet(e)
		}
	}
	panic(fmt.Sprintf("vm: unhandled subflow expression %s", lang.FormatExpr(e)))
}

// listMinMax selects the subflow with minimal/maximal key from a list.
func (c *comp) listMinMax(e *lang.MemberExpr, m *types.Member) int {
	mask := c.listMask(e.Recv)
	lam := e.Args[0].(*lang.Lambda)
	paramSym := c.info.Defs[lam]

	best := c.imm(0)    // NULL
	bestKey := c.imm(0) // irrelevant while best == 0
	c.forEachSubflowIdx(func(idx int) {
		skip := c.emit(OpJbc, 0, mask, idx, 0)
		param := c.newv()
		c.syms[paramSym] = param
		c.emit(OpSbfRef, param, idx, 0, 0)
		key := c.intExpr(lam.Body)
		// take if best == NULL or key beats bestKey
		isNull := c.newv()
		zero := c.imm(0)
		c.emit(OpEq, isNull, best, zero, 0)
		jTake := c.emit(OpJnz, 0, isNull, 0, 0)
		better := c.newv()
		if m.Kind == types.MemberMax {
			c.emit(OpGt, better, key, bestKey, 0)
		} else {
			c.emit(OpLt, better, key, bestKey, 0)
		}
		jSkip := c.emit(OpJz, 0, better, 0, 0)
		c.patch(jTake)
		c.emit(OpMov, best, param, 0, 0)
		c.emit(OpMov, bestKey, key, 0, 0)
		c.patch(jSkip)
		c.patch(skip)
	})
	return best
}

// listGet implements GET(i) with wrap-around indexing over the list's
// set bits (graceful out-of-range handling, NULL when empty).
func (c *comp) listGet(e *lang.MemberExpr) int {
	mask := c.listMask(e.Recv)
	rawIdx := c.intExpr(e.Args[0])

	res := c.imm(0)
	n := c.newv()
	c.emit(OpPopcnt, n, mask, 0, 0)
	jEmpty := c.emit(OpJz, 0, n, 0, 0)
	// want = ((rawIdx % n) + n) % n
	t := c.newv()
	c.emit(OpMod, t, rawIdx, n, 0)
	c.emit(OpAdd, t, t, n, 0)
	c.emit(OpMod, t, t, n, 0)
	// Walk set bits counting down.
	seen := c.imm(0)
	one := c.imm(1)
	c.forEachSubflowIdx(func(idx int) {
		skip := c.emit(OpJbc, 0, mask, idx, 0)
		notTarget := c.emit(OpJne, 0, seen, t, 0)
		c.emit(OpSbfRef, res, idx, 0, 0)
		c.patch(notTarget)
		c.emit(OpAdd, seen, seen, one, 0)
		c.patch(skip)
	})
	c.patch(jEmpty)
	return res
}

// ---- Subflow list masks ----

// listMask compiles a subflow-list expression into a membership bitmask
// over subflow indices.
func (c *comp) listMask(e lang.Expr) int {
	switch e := e.(type) {
	case *lang.EntityExpr:
		if c.constN >= 0 {
			var m int64
			if c.constN > 0 {
				m = int64((uint64(1) << uint(c.constN)) - 1)
			}
			return c.imm(m)
		}
		mask := c.imm(0)
		c.forEachSubflowIdx(func(idx int) {
			c.emit(OpBitSet, mask, mask, idx, 0)
		})
		return mask
	case *lang.Ident:
		return c.syms[c.info.Uses[e]]
	case *lang.MemberExpr:
		m := c.info.Members[e]
		if m.Kind != types.MemberFilter {
			break
		}
		inner := c.listMask(e.Recv)
		lam := e.Args[0].(*lang.Lambda)
		paramSym := c.info.Defs[lam]
		mask := c.imm(0)
		c.forEachSubflowIdx(func(idx int) {
			skip := c.emit(OpJbc, 0, inner, idx, 0)
			param := c.newv()
			c.syms[paramSym] = param
			c.emit(OpSbfRef, param, idx, 0, 0)
			fails := c.condJumps(lam.Body, false)
			c.emit(OpBitSet, mask, mask, idx, 0)
			for _, at := range fails {
				c.patch(at)
			}
			c.patch(skip)
		})
		return mask
	}
	panic(fmt.Sprintf("vm: unhandled subflow list expression %s", lang.FormatExpr(e)))
}

// ---- Queues ----

// resolveQueue walks a queue expression to its base queue id and the
// filter chain (outermost last). Queue-typed variables resolve through
// their single assignment.
func (c *comp) resolveQueue(e lang.Expr) (runtime.QueueID, []*lang.Lambda) {
	switch e := e.(type) {
	case *lang.EntityExpr:
		switch e.Kind {
		case lang.EntityQ:
			return runtime.QueueSend, nil
		case lang.EntityQU:
			return runtime.QueueUnacked, nil
		case lang.EntityRQ:
			return runtime.QueueReinject, nil
		}
	case *lang.Ident:
		def, ok := c.queueDefs[c.info.Uses[e]]
		if !ok {
			panic(fmt.Sprintf("vm: queue variable %s has no recorded definition", e.Name))
		}
		return c.resolveQueue(def)
	case *lang.MemberExpr:
		if c.info.Members[e].Kind == types.MemberFilter {
			qid, chain := c.resolveQueue(e.Recv)
			return qid, append(chain, e.Args[0].(*lang.Lambda))
		}
	}
	panic(fmt.Sprintf("vm: unhandled queue expression %s", lang.FormatExpr(e)))
}

// queueScan emits a loop over the visible, filter-matching packets of a
// queue expression. body receives the vreg holding the current packet
// handle and the patch-list for "continue"; returning from body is via
// emitted jumps. body returns jump indices to patch to the loop end
// ("break" sites).
func (c *comp) queueScan(recv lang.Expr, body func(pkt int) (breaks []int)) {
	qid, chain := c.resolveQueue(recv)
	pos := c.imm(-1)
	loopStart := c.here()
	c.emit(OpQNext, pos, pos, 0, int64(qid))
	negative := c.newv()
	zero := c.imm(0)
	c.emit(OpLt, negative, pos, zero, 0)
	jdone := c.emit(OpJnz, 0, negative, 0, 0)
	pkt := c.newv()
	c.emit(OpPktRef, pkt, pos, 0, int64(qid))
	var continues []int
	for _, lam := range chain {
		paramSym := c.info.Defs[lam]
		param, ok := c.syms[paramSym]
		if !ok {
			param = c.newv()
			c.syms[paramSym] = param
		}
		c.emit(OpMov, param, pkt, 0, 0)
		continues = append(continues, c.condJumps(lam.Body, false)...)
	}
	breaks := body(pkt)
	for _, at := range continues {
		c.patch(at)
	}
	back := c.emit(OpJmp, 0, 0, 0, 0)
	c.patchTo(back, loopStart)
	c.patch(jdone)
	for _, at := range breaks {
		c.patch(at)
	}
}

// queueTop returns a vreg holding the first matching packet (0 = NULL).
func (c *comp) queueTop(recv lang.Expr) int {
	res := c.imm(0)
	c.queueScan(recv, func(pkt int) []int {
		c.emit(OpMov, res, pkt, 0, 0)
		return []int{c.emit(OpJmp, 0, 0, 0, 0)}
	})
	return res
}

// queueCount returns a vreg holding the number of matching packets.
func (c *comp) queueCount(recv lang.Expr) int {
	n := c.imm(0)
	one := c.imm(1)
	c.queueScan(recv, func(int) []int {
		c.emit(OpAdd, n, n, one, 0)
		return nil
	})
	return n
}

// queueBytes returns a vreg holding the byte total of matching packets.
func (c *comp) queueBytes(recv lang.Expr) int {
	n := c.imm(0)
	c.queueScan(recv, func(pkt int) []int {
		sz := c.newv()
		c.emit(OpPktProp, sz, pkt, 0, int64(runtime.PktSize))
		c.emit(OpAdd, n, n, sz, 0)
		return nil
	})
	return n
}

// queueMinMax selects the packet with minimal/maximal key.
func (c *comp) queueMinMax(e *lang.MemberExpr, m *types.Member) int {
	lam := e.Args[0].(*lang.Lambda)
	paramSym := c.info.Defs[lam]
	param := c.newv()
	c.syms[paramSym] = param

	best := c.imm(0)
	bestKey := c.imm(0)
	zero := c.imm(0)
	c.queueScan(e.Recv, func(pkt int) []int {
		c.emit(OpMov, param, pkt, 0, 0)
		key := c.intExpr(lam.Body)
		isNull := c.newv()
		c.emit(OpEq, isNull, best, zero, 0)
		jTake := c.emit(OpJnz, 0, isNull, 0, 0)
		better := c.newv()
		if m.Kind == types.MemberMax {
			c.emit(OpGt, better, key, bestKey, 0)
		} else {
			c.emit(OpLt, better, key, bestKey, 0)
		}
		jSkip := c.emit(OpJz, 0, better, 0, 0)
		c.patch(jTake)
		c.emit(OpMov, best, pkt, 0, 0)
		c.emit(OpMov, bestKey, key, 0, 0)
		c.patch(jSkip)
		return nil
	})
	return best
}
