package vm

import (
	"math/rand"
	"testing"

	"progmp/internal/runtime"
)

// execRaw runs instructions against an empty environment and returns
// the final ProgMP register file (the only observable state).
func execRaw(t *testing.T, insns []Instr, spills int) [runtime.NumRegisters]int64 {
	t.Helper()
	p := &Program{Insns: insns, SpillSlots: spills, SpecializedSubflows: -1}
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	env := runtime.NewEnv(nil, nil, nil, nil, nil)
	if err := p.Exec(env); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	var regs [runtime.NumRegisters]int64
	for i := range regs {
		regs[i] = env.Reg(i)
	}
	return regs
}

// allocAndRun pushes an IR program through the allocator and executes
// the result.
func allocAndRun(t *testing.T, ir []irIns, nv int) [runtime.NumRegisters]int64 {
	t.Helper()
	insns, spills, err := allocate(ir, nv)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	return execRaw(t, insns, spills)
}

func TestAllocateSimpleChain(t *testing.T) {
	// v0 = 7; v1 = 35; v2 = v0 + v1; R1 = v2
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 7},
		{op: OpMovImm, dst: 1, k: 35},
		{op: OpAdd, dst: 2, a: 0, b: 1},
		{op: OpStoreReg, a: 2, k: 0},
		{op: OpReturn},
	}
	regs := allocAndRun(t, ir, 3)
	if regs[0] != 42 {
		t.Errorf("R1 = %d, want 42", regs[0])
	}
}

func TestAllocateRegisterReuseAfterDeath(t *testing.T) {
	// Build a long sequence of short-lived values; the allocator must
	// reuse registers instead of spilling.
	var ir []irIns
	nv := 0
	for i := 0; i < 100; i++ {
		v := nv
		nv++
		ir = append(ir,
			irIns{op: OpMovImm, dst: v, k: int64(i)},
			irIns{op: OpStoreReg, a: v, k: int64(i % runtime.NumRegisters)},
		)
	}
	ir = append(ir, irIns{op: OpReturn})
	insns, spills, err := allocate(ir, nv)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if spills != 0 {
		t.Errorf("short-lived values forced %d spills; intervals not expiring", spills)
	}
	regs := execRaw(t, insns, spills)
	// The last value stored in each ProgMP register wins: the largest
	// i <= 99 with i % 8 == r.
	for r := 0; r < runtime.NumRegisters; r++ {
		want := int64(99 - ((99 - r) % runtime.NumRegisters))
		if regs[r] != want {
			t.Errorf("R%d = %d, want %d", r+1, regs[r], want)
		}
	}
}

func TestAllocateSpillsUnderPressure(t *testing.T) {
	// More simultaneously-live values than physical registers: define
	// 30 values first, then consume them all.
	var ir []irIns
	const n = 30
	for i := 0; i < n; i++ {
		ir = append(ir, irIns{op: OpMovImm, dst: i, k: int64(i + 1)})
	}
	// sum = v0 + v1 + ... accumulated into vreg n.
	ir = append(ir, irIns{op: OpMovImm, dst: n, k: 0})
	for i := 0; i < n; i++ {
		ir = append(ir, irIns{op: OpAdd, dst: n, a: n, b: i})
	}
	ir = append(ir,
		irIns{op: OpStoreReg, a: n, k: 0},
		irIns{op: OpReturn},
	)
	insns, spills, err := allocate(ir, n+1)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if spills == 0 {
		t.Fatalf("30 live values across %d registers must spill", numAllocatable)
	}
	regs := execRaw(t, insns, spills)
	if want := int64(n * (n + 1) / 2); regs[0] != want {
		t.Errorf("R1 = %d, want %d (spilled values corrupted)", regs[0], want)
	}
}

func TestAllocateLoopLiveness(t *testing.T) {
	// A value defined before a loop and used after it must survive the
	// loop even though its last textual use precedes later intervals.
	//
	//   v0 = 99          ; live across the loop
	//   v1 = 0           ; counter
	//   v2 = 10          ; bound
	//   v3 = 1
	// loop:
	//   v4 = v1 < v2
	//   jz v4, done
	//   v5..v20 = i      ; loop-local pressure trying to steal v0's reg
	//   v1 = v1 + v3
	//   jmp loop
	// done:
	//   R1 = v0
	var ir []irIns
	ir = append(ir,
		irIns{op: OpMovImm, dst: 0, k: 99},
		irIns{op: OpMovImm, dst: 1, k: 0},
		irIns{op: OpMovImm, dst: 2, k: 10},
		irIns{op: OpMovImm, dst: 3, k: 1},
	)
	loopStart := len(ir)
	ir = append(ir, irIns{op: OpLt, dst: 4, a: 1, b: 2})
	jzAt := len(ir)
	ir = append(ir, irIns{op: OpJz, a: 4}) // patched below
	nv := 5
	for i := 0; i < 16; i++ {
		ir = append(ir, irIns{op: OpMovImm, dst: nv, k: int64(i)})
		ir = append(ir, irIns{op: OpStoreReg, a: nv, k: 7})
		nv++
	}
	ir = append(ir, irIns{op: OpAdd, dst: 1, a: 1, b: 3})
	jmpAt := len(ir)
	ir = append(ir, irIns{op: OpJmp})
	ir[jmpAt].k = int64(loopStart - jmpAt - 1)
	ir[jzAt].k = int64(len(ir) - jzAt - 1)
	ir = append(ir,
		irIns{op: OpStoreReg, a: 0, k: 0},
		irIns{op: OpReturn},
	)
	regs := allocAndRun(t, ir, nv)
	if regs[0] != 99 {
		t.Errorf("R1 = %d, want 99 (loop-crossing value clobbered)", regs[0])
	}
	if regs[7] != 15 {
		t.Errorf("R8 = %d, want 15", regs[7])
	}
}

// TestAllocatePropertyRandomPrograms: random straight-line IR programs
// must compute the same result as a direct virtual-register emulation.
func TestAllocatePropertyRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(40)
		var ir []irIns
		// Initialize every vreg.
		for v := 0; v < nv; v++ {
			ir = append(ir, irIns{op: OpMovImm, dst: v, k: int64(rng.Intn(100))})
		}
		// Random ALU soup.
		ops := []Op{OpAdd, OpSub, OpMul, OpMov, OpNeg, OpEq, OpLt}
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			ir = append(ir, irIns{
				op:  op,
				dst: rng.Intn(nv),
				a:   rng.Intn(nv),
				b:   rng.Intn(nv),
			})
		}
		// Store everything observable.
		for r := 0; r < runtime.NumRegisters; r++ {
			ir = append(ir, irIns{op: OpStoreReg, a: rng.Intn(nv), k: int64(r)})
		}
		ir = append(ir, irIns{op: OpReturn})

		// Reference: emulate over virtual registers directly.
		vregs := make([]int64, nv)
		var wantRegs [runtime.NumRegisters]int64
		for _, in := range ir {
			switch in.op {
			case OpMovImm:
				vregs[in.dst] = in.k
			case OpMov:
				vregs[in.dst] = vregs[in.a]
			case OpAdd:
				vregs[in.dst] = vregs[in.a] + vregs[in.b]
			case OpSub:
				vregs[in.dst] = vregs[in.a] - vregs[in.b]
			case OpMul:
				vregs[in.dst] = vregs[in.a] * vregs[in.b]
			case OpNeg:
				vregs[in.dst] = -vregs[in.a]
			case OpEq:
				if vregs[in.a] == vregs[in.b] {
					vregs[in.dst] = 1
				} else {
					vregs[in.dst] = 0
				}
			case OpLt:
				if vregs[in.a] < vregs[in.b] {
					vregs[in.dst] = 1
				} else {
					vregs[in.dst] = 0
				}
			case OpStoreReg:
				wantRegs[in.k] = vregs[in.a]
			}
		}
		got := allocAndRun(t, ir, nv)
		if got != wantRegs {
			t.Fatalf("trial %d: allocation changed semantics\ngot  %v\nwant %v", trial, got, wantRegs)
		}
	}
}

func TestBuildIntervalsBackwardEdgeExtension(t *testing.T) {
	// v0 defined at 0, used at 1; backward jump from 3 to 1 must extend
	// v0's interval through 3.
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 1}, // 0
		{op: OpStoreReg, a: 0, k: 0}, // 1
		{op: OpMovImm, dst: 1, k: 2}, // 2
		{op: OpJmp, k: -3},           // 3 → 1
		{op: OpReturn},               // 4
	}
	ivs := buildIntervals(ir, 2)
	for _, iv := range ivs {
		if iv.vreg == 0 && iv.end < 3 {
			t.Errorf("v0 interval ends at %d, want >= 3 (loop extension)", iv.end)
		}
	}
}
