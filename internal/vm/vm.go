package vm

import (
	"errors"
	"fmt"
	"math/bits"

	"progmp/internal/runtime"
)

// Execution errors.
var (
	// ErrSpecializationMismatch reports running a program specialized
	// for a constant subflow count against a different environment.
	// Callers fall back to the generic program (§4.1).
	ErrSpecializationMismatch = errors.New("vm: subflow count does not match specialization")
	// ErrStepBudget reports that an execution exceeded the step budget.
	// The programming model permits loops, so the VM bounds runtime
	// instead of rejecting loops at load time.
	ErrStepBudget = errors.New("vm: step budget exhausted")
)

// MaxSteps bounds one execution. Real schedulers run a few hundred
// instructions; the budget only exists to contain pathological
// programs, mirroring the isolation duty of the kernel runtime.
const MaxSteps = 1 << 22

// spillStackSlots is the spill count served from a stack buffer; real
// scheduler programs spill a handful of values at most, so steady-state
// execution allocates nothing.
const spillStackSlots = 16

// Exec runs one scheduler execution of p against env.
//
// The step budget is enforced on taken backward jumps only: the program
// counter otherwise increases monotonically, so a forward-only stretch
// is bounded by the program length and a loop must pass through a
// backward jump on every iteration. This keeps the budget exact to
// within one pass over the program while removing a compare from every
// dispatched instruction.
//
//progmp:hotpath
//progmp:deterministic
func (p *Program) Exec(env *runtime.Env) error {
	if p.SpecializedSubflows >= 0 && len(env.SubflowViews) != p.SpecializedSubflows {
		return ErrSpecializationMismatch
	}
	if len(env.SubflowViews) > runtime.MaxSubflows {
		//progmp:ignore hotpath cold rejection path, never taken in steady state
		return fmt.Errorf("vm: %d subflows exceed the supported maximum %d", len(env.SubflowViews), runtime.MaxSubflows)
	}
	var regs [NumPhysRegs]int64
	var spillBuf [spillStackSlots]int64
	var spills []int64
	if p.SpillSlots > 0 {
		if p.SpillSlots <= spillStackSlots {
			spills = spillBuf[:p.SpillSlots]
		} else {
			//progmp:ignore hotpath cold path: real programs spill <= spillStackSlots values
			spills = make([]int64, p.SpillSlots)
		}
	}
	insns := p.Insns
	steps := 0
	for pc := 0; pc < len(insns); pc++ {
		steps++
		in := &insns[pc]
		switch in.Op {
		case OpNop:
		case OpMovImm:
			regs[in.Dst] = in.K
		case OpMov:
			regs[in.Dst] = regs[in.A]
		case OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case OpDiv:
			if regs[in.B] == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = regs[in.A] / regs[in.B]
			}
		case OpMod:
			if regs[in.B] == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = regs[in.A] % regs[in.B]
			}
		case OpNeg:
			regs[in.Dst] = -regs[in.A]
		case OpNot:
			regs[in.Dst] = b2i(regs[in.A] == 0)
		case OpEq:
			regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
		case OpNe:
			regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
		case OpLt:
			regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
		case OpLe:
			regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
		case OpGt:
			regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
		case OpGe:
			regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])
		case OpPopcnt:
			regs[in.Dst] = int64(bits.OnesCount64(uint64(regs[in.A])))
		case OpBitSet:
			regs[in.Dst] = regs[in.A] | int64(uint64(1)<<uint(regs[in.B]&63))
		case OpBitTest:
			regs[in.Dst] = (regs[in.A] >> uint(regs[in.B]&63)) & 1
		case OpJmp:
			pc += int(in.K)
			if in.K < 0 && steps > MaxSteps {
				goto budget
			}
		case OpJz:
			if regs[in.A] == 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJnz:
			if regs[in.A] != 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJeq:
			if regs[in.A] == regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJne:
			if regs[in.A] != regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJlt:
			if regs[in.A] < regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJle:
			if regs[in.A] <= regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgt:
			if regs[in.A] > regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJge:
			if regs[in.A] >= regs[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJltz:
			if regs[in.A] < 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJlez:
			if regs[in.A] <= 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgtz:
			if regs[in.A] > 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJgez:
			if regs[in.A] >= 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJsbz:
			// A NULL subflow reads every property as false, matching
			// OpSbfBoolProp's graceful-NULL semantics.
			if sbf := sbfView(env, regs[in.A]); sbf == nil || !sbf.Bools[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJsbnz:
			if sbf := sbfView(env, regs[in.A]); sbf != nil && sbf.Bools[in.B] {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJbc:
			if (regs[in.A]>>uint(regs[in.B]&63))&1 == 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpJbs:
			if (regs[in.A]>>uint(regs[in.B]&63))&1 != 0 {
				pc += int(in.K)
				if in.K < 0 && steps > MaxSteps {
					goto budget
				}
			}
		case OpReturn:
			p.StepCounter.Add(int64(steps))
			return nil
		case OpLoadReg:
			regs[in.Dst] = env.Reg(int(in.K))
		case OpStoreReg:
			env.SetReg(int(in.K), regs[in.A])
		case OpLoadGlobal:
			regs[in.Dst] = env.Global(int(in.K))
		case OpStoreGlobal:
			env.SetGlobal(int(in.K), regs[in.A])
		case OpSbfCount:
			regs[in.Dst] = int64(len(env.SubflowViews))
		case OpSbfRef:
			regs[in.Dst] = regs[in.A] + 1
		case OpSbfIntProp:
			if sbf := sbfView(env, regs[in.A]); sbf != nil {
				regs[in.Dst] = sbf.Ints[in.K]
			} else {
				regs[in.Dst] = 0
			}
		case OpSbfBoolProp:
			if sbf := sbfView(env, regs[in.A]); sbf != nil {
				regs[in.Dst] = b2i(sbf.Bools[in.K])
			} else {
				regs[in.Dst] = 0
			}
		case OpHasWnd:
			regs[in.Dst] = b2i(sbfView(env, regs[in.A]).HasWindowFor(pktView(env, regs[in.B])))
		case OpPktProp:
			if p := pktView(env, regs[in.A]); p != nil {
				regs[in.Dst] = p.Ints[in.K]
			} else {
				regs[in.Dst] = 0
			}
		case OpSentOn:
			regs[in.Dst] = b2i(pktView(env, regs[in.A]).SentOn(sbfView(env, regs[in.B])))
		case OpQNext:
			// The verifier rejects out-of-range queue ids, but guard the
			// lookup anyway: hand-assembled programs bypass Verify, and a
			// nil queue must read as exhausted (-1), not crash the VM.
			if q := env.Queue(runtime.QueueID(in.K)); q != nil {
				regs[in.Dst] = int64(q.NextVisible(int(regs[in.A])))
			} else {
				regs[in.Dst] = -1
			}
		case OpPktRef:
			regs[in.Dst] = (in.K+1)<<32 | (regs[in.A] + 1)
		case OpPop:
			env.Site = int32(pc)
			env.Pop(runtime.QueueID(in.K), pktView(env, regs[in.A]))
		case OpPush:
			env.Site = int32(pc)
			env.Push(sbfView(env, regs[in.A]), pktView(env, regs[in.B]))
		case OpDrop:
			env.Site = int32(pc)
			env.Drop(pktView(env, regs[in.A]))
		case OpLoadSlot:
			regs[in.Dst] = spills[in.K]
		case OpStoreSlot:
			spills[in.K] = regs[in.A]
		default:
			// Credit the executed steps before failing: the steps metric
			// must account for every dispatched instruction, including
			// the one that faulted.
			p.StepCounter.Add(int64(steps))
			//progmp:ignore hotpath cold fault path: verified programs never reach an invalid opcode
			return fmt.Errorf("vm: invalid opcode %d at pc %d", int(in.Op), pc)
		}
	}
	p.StepCounter.Add(int64(steps))
	return nil
budget:
	p.StepCounter.Add(int64(steps))
	return ErrStepBudget
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sbfView decodes a subflow handle (index+1; 0 = NULL).
func sbfView(env *runtime.Env, h int64) *runtime.SubflowView {
	if h <= 0 || h > int64(len(env.SubflowViews)) {
		return nil
	}
	return env.SubflowViews[h-1]
}

// pktView decodes a packet handle ((queue+1)<<32 | position+1; 0 = NULL).
func pktView(env *runtime.Env, h int64) *runtime.PacketView {
	if h <= 0 {
		return nil
	}
	q := env.Queue(runtime.QueueID((h >> 32) - 1))
	if q == nil {
		return nil
	}
	return q.At(int(h&0xffffffff) - 1)
}
