package vm

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"progmp/internal/envtest"
)

func TestProfileMatchesExec(t *testing.T) {
	// The counting loop must be semantically identical to the hot loop
	// across random programs and environments.
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 100; trial++ {
		src := envtest.GenProgram(rng)
		info := mustInfo(t, src)
		p, err := Compile(info, Options{SubflowCount: -1})
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		seed := rng.Int63()
		envA := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
		envB := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
		if err := p.Exec(envA); err != nil {
			t.Fatal(err)
		}
		pr := NewProfile(p)
		if err := pr.ExecProfile(envB); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(envA.Actions, envB.Actions) {
			t.Fatalf("profiled execution diverges on:\n%s", src)
		}
		if *envA.Regs != *envB.Regs {
			t.Fatalf("profiled registers diverge on:\n%s", src)
		}
		if pr.Steps == 0 || pr.Runs != 1 {
			t.Fatalf("profile bookkeeping wrong: steps=%d runs=%d", pr.Steps, pr.Runs)
		}
	}
}

func TestProfileCountsLoopBodies(t *testing.T) {
	p := compileGeneric(t, `FOREACH (VAR sbf IN SUBFLOWS) { SET(R1, R1 + sbf.ID); }`)
	pr := NewProfile(p)
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}},
	}.Build()
	if err := pr.ExecProfile(env); err != nil {
		t.Fatal(err)
	}
	// The StoreReg inside the loop must have executed exactly 4 times.
	var storeHits uint64
	for i, in := range p.Insns {
		if in.Op == OpStoreReg {
			storeHits += pr.Hits[i]
		}
	}
	if storeHits != 4 {
		t.Errorf("loop body StoreReg hits = %d, want 4\n%s", storeHits, pr.Report())
	}
	rep := pr.Report()
	if !strings.Contains(rep, "hottest:") || !strings.Contains(rep, "1 run(s)") {
		t.Errorf("report malformed:\n%s", rep)
	}
}

func TestProfileAccumulatesRuns(t *testing.T) {
	p := compileGeneric(t, `SET(R1, R1 + 1);`)
	pr := NewProfile(p)
	env := envtest.TwoSubflowEnv(0)
	for i := 0; i < 3; i++ {
		env.Reset()
		if err := pr.ExecProfile(env); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Runs != 3 {
		t.Errorf("runs = %d, want 3", pr.Runs)
	}
	if env.Reg(0) != 3 {
		t.Errorf("R1 = %d, want 3", env.Reg(0))
	}
}
