// Package vm implements the bytecode execution back-end for ProgMP
// scheduler programs — the Go analogue of the paper's in-kernel eBPF
// JIT ("alternative 3" in §4.1). The cross-compiler lowers the checked
// AST to a register-based 64-bit ISA, allocates physical registers with
// a second-chance-binpacking linear scan (Traub et al., PLDI 1998, as
// cited by the paper), verifies the result eBPF-style, and executes it
// in a threaded dispatch loop.
//
// All values are int64, as on an eBPF machine. Object references are
// encoded handles:
//
//   - subflow:  index into Env.SubflowViews + 1 (0 is NULL)
//   - packet:   (queueID+1)<<32 | (position in base queue + 1) (0 is NULL)
//   - subflow list: 64-bit membership mask over subflow indices
//   - queue:    filter chains are inlined statically; a queue-typed
//     variable reduces to its defining chain at compile time (legal
//     because variables are single-assignment and predicates are pure)
package vm

import (
	"fmt"
	"strings"

	"progmp/internal/obs"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Dst/A/B address physical registers; K is an immediate whose
// meaning depends on the opcode (constant, ProgMP register index,
// property index, queue id, jump offset, or spill slot).
const (
	OpNop Op = iota

	// Moves and ALU.
	OpMovImm // dst = K
	OpMov    // dst = a
	OpAdd    // dst = a + b
	OpSub    // dst = a - b
	OpMul    // dst = a * b
	OpDiv    // dst = a / b (0 when b == 0: no exceptions by design)
	OpMod    // dst = a % b (0 when b == 0)
	OpNeg    // dst = -a
	OpNot    // dst = boolean !a (a is 0/1)

	// Comparisons produce 0/1.
	OpEq // dst = a == b
	OpNe // dst = a != b
	OpLt // dst = a < b
	OpLe // dst = a <= b
	OpGt // dst = a > b
	OpGe // dst = a >= b

	// Bit operations (used for subflow-list masks).
	OpPopcnt  // dst = popcount(a)
	OpBitSet  // dst = a | (1 << b)
	OpBitTest // dst = (a >> b) & 1

	// Control flow. Jump offsets in K are relative to the next
	// instruction (pc += K after increment).
	OpJmp    // pc += K
	OpJz     // if a == 0: pc += K
	OpJnz    // if a != 0: pc += K
	OpReturn // halt

	// ProgMP register file (R1..R8).
	OpLoadReg  // dst = Regs[K]
	OpStoreReg // Regs[K] = a

	// Shared global register file (G1..G8), execution-local copy.
	OpLoadGlobal  // dst = Globals[K]
	OpStoreGlobal // Globals[K] = a (marks the register dirty for publication)

	// Environment queries.
	OpSbfCount    // dst = number of subflows
	OpSbfRef      // dst = subflow handle for index a (no bounds check; compiler guards)
	OpSbfIntProp  // dst = subflow(a).Ints[K]; 0 when a is NULL
	OpSbfBoolProp // dst = subflow(a).Bools[K]; 0 when a is NULL
	OpHasWnd      // dst = subflow(a).HasWindowFor(packet(b))
	OpPktProp     // dst = packet(a).Ints[K]; 0 when a is NULL
	OpSentOn      // dst = packet(a).SentOn(subflow(b))
	OpQNext       // dst = next visible position in queue K strictly after position a (start with a = -1); -1 when exhausted
	OpPktRef      // dst = packet handle for queue K, position a

	// Side effects (recorded in the action queue).
	OpPop  // pop packet(a) from queue K
	OpPush // push packet(b) on subflow(a)
	OpDrop // drop packet(a)

	// Spill traffic inserted by the register allocator.
	OpLoadSlot  // dst = spill[K]
	OpStoreSlot // spill[K] = a

	// Fused compare-and-branch, produced by the optimizer from a
	// comparison whose only consumer is the adjacent conditional jump
	// (the dominant pattern in compiled scheduler code: every FILTER
	// predicate, IF condition and loop bound lowers to compare+branch).
	OpJeq // if a == b: pc += K
	OpJne // if a != b: pc += K
	OpJlt // if a < b:  pc += K
	OpJle // if a <= b: pc += K
	OpJgt // if a > b:  pc += K
	OpJge // if a >= b: pc += K

	// Zero-compare branches, the immediate-free special case the
	// optimizer reaches for when one comparison operand is a known
	// constant zero (queue-scan exhaustion tests, NULL checks).
	OpJltz // if a < 0:  pc += K
	OpJlez // if a <= 0: pc += K
	OpJgtz // if a > 0:  pc += K
	OpJgez // if a >= 0: pc += K

	// Fused environment-test branches, emitted by the compiler's
	// branch-context condition codegen for the two hottest predicate
	// shapes in scheduler code: subflow boolean properties (THROTTLED,
	// BACKUP, CWND_AVAILABLE, ...) and subflow-mask membership tests.
	// For OpJsbz/OpJsbnz the B field is the property index, not a
	// register (K already carries the jump offset).
	OpJsbz  // if subflow(a) is NULL or !Bools[B]: pc += K
	OpJsbnz // if subflow(a) is non-NULL and Bools[B]: pc += K
	OpJbc   // if (a >> b) & 1 == 0: pc += K
	OpJbs   // if (a >> b) & 1 == 1: pc += K

	opCount
)

var opNames = [...]string{
	OpNop:         "nop",
	OpMovImm:      "movimm",
	OpMov:         "mov",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpMod:         "mod",
	OpNeg:         "neg",
	OpNot:         "not",
	OpEq:          "eq",
	OpNe:          "ne",
	OpLt:          "lt",
	OpLe:          "le",
	OpGt:          "gt",
	OpGe:          "ge",
	OpPopcnt:      "popcnt",
	OpBitSet:      "bitset",
	OpBitTest:     "bittest",
	OpJmp:         "jmp",
	OpJz:          "jz",
	OpJnz:         "jnz",
	OpReturn:      "return",
	OpLoadReg:     "loadreg",
	OpStoreReg:    "storereg",
	OpLoadGlobal:  "loadglobal",
	OpStoreGlobal: "storeglobal",
	OpSbfCount:    "sbfcount",
	OpSbfRef:      "sbfref",
	OpSbfIntProp:  "sbfprop",
	OpSbfBoolProp: "sbfbool",
	OpHasWnd:      "haswnd",
	OpPktProp:     "pktprop",
	OpSentOn:      "senton",
	OpQNext:       "qnext",
	OpPktRef:      "pktref",
	OpPop:         "pop",
	OpPush:        "push",
	OpDrop:        "drop",
	OpLoadSlot:    "loadslot",
	OpStoreSlot:   "storeslot",
	OpJeq:         "jeq",
	OpJne:         "jne",
	OpJlt:         "jlt",
	OpJle:         "jle",
	OpJgt:         "jgt",
	OpJge:         "jge",
	OpJltz:        "jltz",
	OpJlez:        "jlez",
	OpJgtz:        "jgtz",
	OpJgez:        "jgez",
	OpJsbz:        "jsbz",
	OpJsbnz:       "jsbnz",
	OpJbc:         "jbc",
	OpJbs:         "jbs",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Instr is one fixed-width instruction.
type Instr struct {
	Op   Op
	Dst  uint8
	A, B uint8
	K    int64
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpReturn:
		return in.Op.String()
	case OpMovImm:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Dst, in.K)
	case OpMov, OpNeg, OpNot, OpPopcnt:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Dst, in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpBitSet, OpBitTest, OpHasWnd, OpSentOn:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.A, in.B)
	case OpJmp:
		return fmt.Sprintf("%s %+d", in.Op, in.K)
	case OpJz, OpJnz, OpJltz, OpJlez, OpJgtz, OpJgez:
		return fmt.Sprintf("%s r%d, %+d", in.Op, in.A, in.K)
	case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge, OpJbc, OpJbs:
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.A, in.B, in.K)
	case OpJsbz, OpJsbnz:
		return fmt.Sprintf("%s r%d, #%d, %+d", in.Op, in.A, in.B, in.K)
	case OpLoadReg, OpLoadSlot, OpLoadGlobal:
		return fmt.Sprintf("%s r%d, [%d]", in.Op, in.Dst, in.K)
	case OpStoreReg, OpStoreSlot, OpStoreGlobal:
		return fmt.Sprintf("%s [%d], r%d", in.Op, in.K, in.A)
	case OpSbfCount:
		return fmt.Sprintf("%s r%d", in.Op, in.Dst)
	case OpSbfRef:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Dst, in.A)
	case OpSbfIntProp, OpSbfBoolProp, OpPktProp:
		return fmt.Sprintf("%s r%d, r%d, #%d", in.Op, in.Dst, in.A, in.K)
	case OpQNext:
		return fmt.Sprintf("%s r%d, r%d, q%d", in.Op, in.Dst, in.A, in.K)
	case OpPktRef:
		return fmt.Sprintf("%s r%d, r%d, q%d", in.Op, in.Dst, in.A, in.K)
	case OpPop:
		return fmt.Sprintf("%s r%d, q%d", in.Op, in.A, in.K)
	case OpPush:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpDrop:
		return fmt.Sprintf("%s r%d", in.Op, in.A)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", in.Op, in.Dst, in.A, in.B, in.K)
}

// NumPhysRegs is the size of the physical register file. Two registers
// are reserved by the allocator as spill scratch.
const NumPhysRegs = 16

// Program is a verified, executable bytecode program.
type Program struct {
	Insns      []Instr
	SpillSlots int
	// SpecializedSubflows is the constant subflow count this program
	// was specialized for, or -1 for the generic version (§4.1,
	// "constant subflow number" optimization).
	SpecializedSubflows int
	// StepCounter, when non-nil, accumulates executed instruction
	// counts (the "steps" metric). Left nil by default so the hot path
	// pays only an inlined nil check at exit.
	StepCounter *obs.Counter
}

// Disassemble renders the program, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.Insns {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
