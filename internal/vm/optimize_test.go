package vm

import (
	"testing"

	"progmp/internal/runtime"
)

func TestOptimizeDropsUnreachableCode(t *testing.T) {
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 1}, // 0
		{op: OpJmp, k: 2},            // 1 → 4
		{op: OpMovImm, dst: 0, k: 9}, // 2 unreachable
		{op: OpStoreReg, a: 0, k: 1}, // 3 unreachable
		{op: OpStoreReg, a: 0, k: 0}, // 4
		{op: OpReturn},               // 5
	}
	out := optimize(ir)
	if len(out) >= len(ir) {
		t.Fatalf("unreachable code not removed: %d -> %d instructions", len(ir), len(out))
	}
	regs := allocAndRunIR(t, out, 1)
	if regs[0] != 1 || regs[1] != 0 {
		t.Errorf("regs = %v, want R1=1 R2=0", regs[:2])
	}
}

func TestOptimizeThreadsJumpChains(t *testing.T) {
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 5}, // 0
		{op: OpJz, a: 0, k: 1},       // 1 → 3 (jmp) — should thread to 5
		{op: OpStoreReg, a: 0, k: 0}, // 2
		{op: OpJmp, k: 1},            // 3 → 5
		{op: OpStoreReg, a: 0, k: 1}, // 4 unreachable? no: falls from 2... 2 falls to 3, 3 jumps to 5, so 4 unreachable
		{op: OpReturn},               // 5
	}
	out := optimize(ir)
	regs := allocAndRunIR(t, out, 1)
	if regs[0] != 5 {
		t.Errorf("R1 = %d, want 5 (fallthrough path must store)", regs[0])
	}
	if regs[1] != 0 {
		t.Errorf("R2 = %d, want 0 (unreachable store ran)", regs[1])
	}
	for _, in := range out {
		if in.op == OpJz {
			// The conditional's target must now be the return, not the
			// intermediate jump.
			return
		}
	}
}

func TestOptimizeRemovesSelfMoves(t *testing.T) {
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 3},
		{op: OpMov, dst: 0, a: 0},
		{op: OpStoreReg, a: 0, k: 0},
		{op: OpReturn},
	}
	out := optimize(ir)
	for _, in := range out {
		if in.op == OpMov && in.dst == in.a {
			t.Errorf("self-move survived optimization")
		}
		if in.op == OpNop {
			t.Errorf("nop survived compaction")
		}
	}
	regs := allocAndRunIR(t, out, 1)
	if regs[0] != 3 {
		t.Errorf("R1 = %d, want 3", regs[0])
	}
}

func TestOptimizePreservesLoops(t *testing.T) {
	// while (v0 < 5) { v0++ }; R1 = v0
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 0},    // 0
		{op: OpMovImm, dst: 1, k: 5},    // 1
		{op: OpMovImm, dst: 2, k: 1},    // 2
		{op: OpLt, dst: 3, a: 0, b: 1},  // 3 loop head
		{op: OpJz, a: 3, k: 2},          // 4 → 7
		{op: OpAdd, dst: 0, a: 0, b: 2}, // 5
		{op: OpJmp, k: -4},              // 6 → 3
		{op: OpStoreReg, a: 0, k: 0},    // 7
		{op: OpReturn},                  // 8
	}
	out := optimize(ir)
	regs := allocAndRunIR(t, out, 4)
	if regs[0] != 5 {
		t.Errorf("R1 = %d, want 5 (loop broken by optimizer)", regs[0])
	}
}

func TestOptimizeIdempotentOnCleanCode(t *testing.T) {
	ir := []irIns{
		{op: OpMovImm, dst: 0, k: 1},
		{op: OpStoreReg, a: 0, k: 0},
		{op: OpReturn},
	}
	out := optimize(ir)
	if len(out) != len(ir) {
		t.Errorf("optimizer changed already-optimal code: %d -> %d", len(ir), len(out))
	}
}

// allocAndRunIR is allocAndRun with a clearer name for optimizer tests.
func allocAndRunIR(t *testing.T, ir []irIns, nv int) [runtime.NumRegisters]int64 {
	t.Helper()
	return allocAndRun(t, ir, nv)
}
