// Package core assembles the ProgMP runtime environment: it loads
// scheduler specifications, manages the three execution back-ends
// (interpreter, compiled closures, bytecode VM), keeps a registry of
// named schedulers for reuse across connections, caches VM programs
// specialized for a constant subflow count with generic fallback, and
// exposes proc-style execution statistics (§4.1 of the paper).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"progmp/internal/analysis"
	"progmp/internal/compile"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/vm"
)

// Backend selects the execution environment for a scheduler.
type Backend int

// The three execution back-ends of §4.1.
const (
	// BackendInterpreter walks the AST directly (alternative 1).
	BackendInterpreter Backend = iota
	// BackendCompiled executes ahead-of-time compiled closures
	// (alternative 2, the generated-C analogue).
	BackendCompiled
	// BackendVM executes eBPF-flavoured bytecode with runtime
	// specialization (alternative 3).
	BackendVM
)

// String names the back-end.
func (b Backend) String() string {
	switch b {
	case BackendInterpreter:
		return "interpreter"
	case BackendCompiled:
		return "compiled"
	case BackendVM:
		return "vm"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Stats are cumulative execution statistics, the analogue of the
// paper's proc-based debugging and performance interface. They are a
// snapshot view over the scheduler's metrics registry (package obs),
// which keeps the authoritative counters.
type Stats struct {
	Executions int64
	Pushes     int64
	Pops       int64
	Drops      int64
	// GenericExecs counts VM executions that ran the generic program
	// because no specialization was available yet (or specialization
	// fell back); Executions - GenericExecs is the specialization hit
	// count. Always 0 on the non-VM back-ends.
	GenericExecs int64
	// FallbackErrors counts executions where even the generic program
	// failed (step-budget overrun or verifier-escaping fault); the
	// execution's actions were discarded. Always 0 on the non-VM
	// back-ends.
	FallbackErrors int64
	// Steps is the total executed VM instructions, collected only
	// while step counting is enabled (EnableStepMetrics).
	Steps int64
}

// Metric names used by the per-scheduler registry.
const (
	MetricExecutions     = "sched.executions"
	MetricPushes         = "sched.pushes"
	MetricPops           = "sched.pops"
	MetricDrops          = "sched.drops"
	MetricFallbackErrors = "sched.fallback_errors"
	MetricGenericExecs   = "vm.generic_execs"
	MetricSpecCompiled   = "vm.specializations"
	MetricSteps          = "vm.steps"
)

// Scheduler is a loaded, executable scheduler program. It is safe for
// concurrent use: per-connection state (registers) lives in the
// environment, not the scheduler.
type Scheduler struct {
	name string
	info *types.Info

	backend  Backend
	interp   *interp.Interpreter
	compiled *compile.Compiled
	vmProg   *vm.Program // generic (unspecialized)

	// Specialization cache: subflow count → compiled program. A miss
	// runs the generic program and kicks off background compilation,
	// mirroring the paper's concurrent JIT ("the compilation is
	// executed concurrently in a separate thread, therefore not
	// harming network performance"). The cache is an immutable array
	// indexed by subflow count, swapped atomically on every install
	// (copy-on-write), so the execution fast path is one lock-free
	// load plus an array index; mu serializes writers and the
	// compiling set only.
	mu          sync.Mutex
	specialized atomic.Pointer[[runtime.MaxSubflows + 1]*vm.Program]
	compiling   map[int]bool
	// specializeSync forces synchronous specialization (tests).
	specializeSync bool

	// metrics is the scheduler's registry (§4.1 proc interface);
	// the hot path touches only the pre-resolved handles below.
	metrics       *obs.Registry
	mExecutions   *obs.Counter
	mPushes       *obs.Counter
	mPops         *obs.Counter
	mDrops        *obs.Counter
	mGenericExec  *obs.Counter
	mSpecialized  *obs.Counter
	mFallbackErrs *obs.Counter
	stepCounting  atomic.Bool

	// Optional trace sink for execution faults. Set before traffic
	// starts (like EnableStepMetrics); nil leaves fault tracing off.
	tracer   *obs.Tracer
	traceNow func() time.Duration

	// lastFallbackErr retains the most recent fallback failure for
	// diagnostics (the proc-style error surface).
	lastFallbackErr atomic.Pointer[fallbackErr]

	// report is the static-analysis report from admission: warnings and
	// infos that did not block loading but are surfaced through tooling
	// (progmp-vet, ctl compile, the guard's quarantine trace).
	report *analysis.Report
}

type fallbackErr struct{ err error }

// Load parses, type-checks and compiles a scheduler specification for
// the given back-end.
func Load(name, src string, backend Backend) (*Scheduler, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: parsing scheduler %q: %w", name, err)
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("core: checking scheduler %q: %w", name, err)
	}
	// Static analysis runs before any back-end sees the program: hard
	// errors reject admission outright, warnings and infos ride along
	// on the scheduler for tooling and the control-plane gate.
	report := analysis.Analyze(info, analysis.Options{})
	if report.HasErrors() {
		return nil, fmt.Errorf("core: %w", &analysis.RejectError{Name: name, Report: report})
	}
	s := &Scheduler{
		name:      name,
		info:      info,
		backend:   backend,
		compiling: make(map[int]bool),
		metrics:   obs.NewRegistry(),
		report:    report,
	}
	s.specialized.Store(new([runtime.MaxSubflows + 1]*vm.Program))
	s.mExecutions = s.metrics.Counter(MetricExecutions)
	s.mPushes = s.metrics.Counter(MetricPushes)
	s.mPops = s.metrics.Counter(MetricPops)
	s.mDrops = s.metrics.Counter(MetricDrops)
	s.mGenericExec = s.metrics.Counter(MetricGenericExecs)
	s.mSpecialized = s.metrics.Counter(MetricSpecCompiled)
	s.mFallbackErrs = s.metrics.Counter(MetricFallbackErrors)
	switch backend {
	case BackendInterpreter:
		s.interp = interp.New(info)
	case BackendCompiled:
		s.compiled = compile.New(info)
	case BackendVM:
		p, err := vm.Compile(info, vm.Options{SubflowCount: -1})
		if err != nil {
			return nil, fmt.Errorf("core: compiling scheduler %q to bytecode: %w", name, err)
		}
		s.vmProg = p
	default:
		return nil, fmt.Errorf("core: unknown backend %d", int(backend))
	}
	return s, nil
}

// MustLoad loads or panics; for embedded specifications.
func MustLoad(name, src string, backend Backend) *Scheduler {
	s, err := Load(name, src, backend)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the scheduler's registry name.
func (s *Scheduler) Name() string { return s.name }

// Backend returns the execution back-end.
func (s *Scheduler) Backend() Backend { return s.backend }

// Info exposes the type-checked program (for tooling).
func (s *Scheduler) Info() *types.Info { return s.info }

// Source returns the original specification text.
func (s *Scheduler) Source() string { return s.info.Prog.Source }

// AnalysisReport returns the static-analysis report recorded at
// admission (never nil for a loaded scheduler).
func (s *Scheduler) AnalysisReport() *analysis.Report { return s.report }

// AdmissionWarnings returns the number of analyzer warnings the
// program carried when it was admitted. The guard stamps this into
// quarantine trace events so operators can see whether a misbehaving
// scheduler was flagged before it ever ran.
func (s *Scheduler) AdmissionWarnings() int { return s.report.Warnings() }

// SetSynchronousSpecialization forces specialization to happen inline
// rather than in a background goroutine. Used by tests and benchmarks
// that need deterministic behaviour.
func (s *Scheduler) SetSynchronousSpecialization(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specializeSync = on
}

// Exec runs one scheduler execution against env and updates statistics.
//
//progmp:hotpath
//progmp:deterministic
func (s *Scheduler) Exec(env *runtime.Env) {
	before := len(env.Actions)
	switch s.backend {
	case BackendInterpreter:
		s.interp.Exec(env)
	case BackendCompiled:
		s.compiled.Exec(env)
	case BackendVM:
		s.execVM(env)
	}
	s.mExecutions.Add(1)
	for _, a := range env.Actions[before:] {
		switch a.Kind {
		case runtime.ActionPush:
			s.mPushes.Add(1)
		case runtime.ActionPop:
			s.mPops.Add(1)
		case runtime.ActionDrop:
			s.mDrops.Add(1)
		}
	}
}

func (s *Scheduler) execVM(env *runtime.Env) {
	n := len(env.SubflowViews)
	// Lock-free fast path: in steady state every execution is a hit in
	// the immutable specialization cache.
	var prog *vm.Program
	if n <= runtime.MaxSubflows {
		prog = s.specialized.Load()[n]
	}
	if prog == nil {
		//progmp:ignore hotpath,deterministic cold miss path: deterministic runs use specializeSync; async installs change when the specialized program lands, never its semantics
		prog = s.specializationMiss(n)
	}
	if prog == nil {
		prog = s.vmProg
		// A generic-program run is a specialization miss; hits are
		// derived (executions - generic_execs), so the specialized
		// fast path pays no extra bookkeeping.
		s.mGenericExec.Add(1)
	}
	if err := prog.Exec(env); err != nil {
		// Specialization mismatch or step-budget overrun: fall back to
		// the generic program ("returns to the original version").
		env.Actions = env.Actions[:0]
		if prog == s.vmProg {
			// The generic program itself failed; re-running it would
			// fail identically, so record the fault and execute nothing.
			//progmp:ignore hotpath,deterministic cold fault path: executions only fail on budget overrun or mismatch
			s.noteFallbackError(err)
			return
		}
		s.mGenericExec.Add(1)
		if err := s.vmProg.Exec(env); err != nil {
			// The safety net failed too. Discard the partial action
			// queue (termination guarantee: a failed execution has no
			// effects) and surface the fault instead of swallowing it.
			env.Actions = env.Actions[:0]
			//progmp:ignore hotpath,deterministic cold fault path: double execution failure
			s.noteFallbackError(err)
		}
	}
}

// specializationMiss handles the slow path of execVM: it re-checks the
// cache under the writer lock and kicks off compilation for n (inline
// when synchronous specialization is forced). It returns the program to
// run, or nil to use the generic one.
func (s *Scheduler) specializationMiss(n int) *vm.Program {
	if n < 0 || n > runtime.MaxSubflows {
		return nil
	}
	s.mu.Lock()
	if prog := s.specialized.Load()[n]; prog != nil {
		s.mu.Unlock()
		return prog
	}
	if !s.compiling[n] {
		s.compiling[n] = true
		if s.specializeSync {
			s.mu.Unlock()
			s.specialize(n)
			return s.specialized.Load()[n]
		}
		go s.specialize(n)
	}
	s.mu.Unlock()
	return nil
}

// noteFallbackError records a generic-program execution failure in the
// sched.fallback_errors metric, the fault trace (when attached) and the
// last-error diagnostic slot.
func (s *Scheduler) noteFallbackError(err error) {
	s.mFallbackErrs.Add(1)
	s.lastFallbackErr.Store(&fallbackErr{err: err})
	if t := s.tracer; t != nil {
		var at time.Duration
		if s.traceNow != nil {
			at = s.traceNow()
		}
		t.Record(obs.Event{At: at, Kind: obs.EvSchedFallback, Seq: -1, Sbf: -1})
	}
}

// LastFallbackError returns the most recent generic-program execution
// failure, or nil when every execution succeeded.
func (s *Scheduler) LastFallbackError() error {
	if fe := s.lastFallbackErr.Load(); fe != nil {
		return fe.err
	}
	return nil
}

// InstrumentTrace attaches a trace sink (and virtual clock) for
// execution faults such as generic-fallback failures. Call it before
// traffic starts; either argument may be nil.
func (s *Scheduler) InstrumentTrace(t *obs.Tracer, now func() time.Duration) {
	s.tracer = t
	s.traceNow = now
}

func (s *Scheduler) specialize(n int) {
	p, err := vm.Compile(s.info, vm.Options{SubflowCount: n})
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.compiling, n)
	if err == nil {
		if s.stepCounting.Load() {
			p.StepCounter = s.metrics.Counter(MetricSteps)
		}
		s.installSpecialized(n, p)
		s.mSpecialized.Add(1)
	}
}

// installSpecialized publishes count → p with a copy-on-write swap.
// Callers must hold mu.
func (s *Scheduler) installSpecialized(n int, p *vm.Program) {
	if n < 0 || n > runtime.MaxSubflows {
		return
	}
	next := *s.specialized.Load()
	next[n] = p
	s.specialized.Store(&next)
}

// Metrics exposes the scheduler's metrics registry (the §4.1
// proc-style statistics surface).
func (s *Scheduler) Metrics() *obs.Registry { return s.metrics }

// EnableStepMetrics turns on per-execution VM instruction counting
// into the MetricSteps counter. Off by default so the VM exit path
// pays only an inlined nil check. Call it before traffic starts:
// wiring the counter while executions are in flight is racy.
func (s *Scheduler) EnableStepMetrics() {
	s.stepCounting.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	steps := s.metrics.Counter(MetricSteps)
	if s.vmProg != nil {
		s.vmProg.StepCounter = steps
	}
	for _, p := range s.specialized.Load() {
		if p != nil {
			p.StepCounter = steps
		}
	}
}

// Stats returns a snapshot of the cumulative statistics.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Executions:     s.mExecutions.Value(),
		Pushes:         s.mPushes.Value(),
		Pops:           s.mPops.Value(),
		Drops:          s.mDrops.Value(),
		GenericExecs:   s.mGenericExec.Value(),
		FallbackErrors: s.mFallbackErrs.Value(),
		Steps:          s.metrics.Counter(MetricSteps).Value(),
	}
}

// MemoryFootprint estimates the resident bytes of the loaded scheduler
// program: specification text, bytecode, and compiled structures. The
// paper reports ~3048 B for the round-robin scheduler program (§4.3).
func (s *Scheduler) MemoryFootprint() int {
	total := len(s.info.Prog.Source)
	total += s.info.NumSlots * 16
	if s.vmProg != nil {
		total += len(s.vmProg.Insns) * int(unsafe.Sizeof(vm.Instr{}))
		for _, p := range s.specialized.Load() {
			if p != nil {
				total += len(p.Insns) * int(unsafe.Sizeof(vm.Instr{}))
			}
		}
	}
	// AST and analysis structures, approximated per statement.
	total += len(s.info.Prog.Stmts) * 96
	total += len(s.info.ExprTypes) * 24
	return total
}

// InstanceFootprint estimates per-connection bytes of one scheduler
// instantiation: the register file plus per-instance bookkeeping. The
// paper reports 328 B per instantiation (§4.3).
func InstanceFootprint() int {
	return runtime.NumRegisters*8 + 264
}

// ---- Registry ----

// ErrNotFound reports a lookup of an unknown scheduler name.
var ErrNotFound = errors.New("core: scheduler not found")

// ErrExists reports loading a scheduler under a name already taken.
var ErrExists = errors.New("core: scheduler already loaded")

// Registry holds loaded schedulers by name so applications can reuse
// them across connections "to reduce compilation overhead" (§3.2).
// The zero value is ready to use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Scheduler
}

// Load parses and registers a scheduler under name. Loading an
// already-registered name fails with ErrExists.
func (r *Registry) Load(name, src string, backend Backend) (*Scheduler, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	s, err := Load(name, src, backend)
	if err != nil {
		return nil, err
	}
	if r.m == nil {
		r.m = make(map[string]*Scheduler)
	}
	r.m[name] = s
	return s, nil
}

// Get returns the scheduler registered under name.
func (r *Registry) Get(name string) (*Scheduler, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s, nil
}

// Remove unregisters name. Connections already using the scheduler
// keep their reference.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.m, name)
	return nil
}

// Names lists registered scheduler names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
