package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"progmp/internal/envtest"
	"progmp/internal/obs"
	"progmp/internal/vm"
)

const minRTT = `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
	SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}`

func TestLoadRejectsBadPrograms(t *testing.T) {
	if _, err := Load("bad", "VAR x = ;", BackendVM); err == nil {
		t.Error("Load accepted a syntax error")
	}
	if _, err := Load("bad", "VAR x = y;", BackendVM); err == nil {
		t.Error("Load accepted a type error")
	}
}

func TestSchedulerExecAndStats(t *testing.T) {
	for _, backend := range []Backend{BackendInterpreter, BackendCompiled, BackendVM} {
		s := MustLoad("minRTT", minRTT, backend)
		s.SetSynchronousSpecialization(true)
		env := envtest.TwoSubflowEnv(3)
		s.Exec(env)
		s.Exec(env)
		st := s.Stats()
		if st.Executions != 2 {
			t.Errorf("%s: executions = %d, want 2", backend, st.Executions)
		}
		if st.Pushes != 2 || st.Pops != 2 {
			t.Errorf("%s: pushes=%d pops=%d, want 2 and 2", backend, st.Pushes, st.Pops)
		}
	}
}

func TestVMSpecializationCacheAndFallback(t *testing.T) {
	s := MustLoad("minRTT", minRTT, BackendVM)
	s.SetSynchronousSpecialization(true)
	// Execute with 2 subflows (specializes for 2), then 0 subflows
	// (specializes for 0): both must behave correctly.
	env2 := envtest.TwoSubflowEnv(1)
	s.Exec(env2)
	if env2.PushCount() != 1 {
		t.Errorf("2-subflow exec pushed %d, want 1", env2.PushCount())
	}
	env0 := envtest.EnvSpec{Q: []envtest.PktSpec{{Seq: 0}}}.Build()
	s.Exec(env0)
	if env0.PushCount() != 0 {
		t.Errorf("0-subflow exec must not push")
	}
	nSpecialized := 0
	for _, p := range s.specialized.Load() {
		if p != nil {
			nSpecialized++
		}
	}
	if nSpecialized != 2 {
		t.Errorf("specialization cache has %d entries, want 2", nSpecialized)
	}
}

func TestMemoryFootprint(t *testing.T) {
	s := MustLoad("minRTT", minRTT, BackendVM)
	got := s.MemoryFootprint()
	if got <= 0 || got > 64<<10 {
		t.Errorf("MemoryFootprint = %d, want a small positive number", got)
	}
	if InstanceFootprint() <= 0 {
		t.Errorf("InstanceFootprint must be positive")
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	if _, err := r.Load("a", minRTT, BackendCompiled); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := r.Load("a", minRTT, BackendCompiled); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Load = %v, want ErrExists", err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Errorf("Get: %v", err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if _, err := r.Load("b", minRTT, BackendVM); err != nil {
		t.Fatalf("Load b: %v", err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	if err := r.Remove("a"); err != nil {
		t.Errorf("Remove: %v", err)
	}
	if err := r.Remove("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove = %v, want ErrNotFound", err)
	}
}

func TestConcurrentExecIsSafe(t *testing.T) {
	s := MustLoad("minRTT", minRTT, BackendVM)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				env := envtest.TwoSubflowEnv(2)
				s.Exec(env)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := s.Stats().Executions; got != 1600 {
		t.Errorf("executions = %d, want 1600", got)
	}
}

func TestStatusReport(t *testing.T) {
	s := MustLoad("rr", `VAR sbfs = SUBFLOWS;
IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
IF (!Q.EMPTY) { sbfs.GET(R1).PUSH(Q.POP()); SET(R1, R1 + 1); }`, BackendVM)
	s.SetSynchronousSpecialization(true)
	s.Exec(envtest.TwoSubflowEnv(2))
	rep := s.StatusReport()
	for _, want := range []string{"scheduler rr", "backend          vm", "executions       1", "R1(rw)", "bytecode", "specialized[2]"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var reg Registry
	if _, err := reg.Load("a", minRTT, BackendCompiled); err != nil {
		t.Fatal(err)
	}
	if all := reg.ReportAll(); !strings.Contains(all, "scheduler a") {
		t.Errorf("ReportAll missing scheduler a:\n%s", all)
	}
}

// TestFallbackErrorsObservable sabotages the generic VM program with an
// infinite loop so its execution exhausts the step budget, then checks
// the failure is counted, traced and surfaced — not silently swallowed.
func TestFallbackErrorsObservable(t *testing.T) {
	s := MustLoad("minRTT", minRTT, BackendVM)
	s.vmProg = &vm.Program{
		Insns:               []vm.Instr{{Op: vm.OpJmp, K: -1}},
		SpecializedSubflows: -1,
	}
	// Pretend specialization for two subflows is perpetually in flight
	// so execVM keeps taking the generic path deterministically.
	s.compiling[2] = true
	tracer := obs.NewTracer(16)
	s.InstrumentTrace(tracer, func() time.Duration { return 7 * time.Millisecond })

	env := envtest.TwoSubflowEnv(3)
	s.Exec(env)

	if len(env.Actions) != 0 {
		t.Errorf("failed execution left %d actions; must have no effects", len(env.Actions))
	}
	st := s.Stats()
	if st.FallbackErrors != 1 {
		t.Errorf("FallbackErrors = %d, want 1", st.FallbackErrors)
	}
	if err := s.LastFallbackError(); !errors.Is(err, vm.ErrStepBudget) {
		t.Errorf("LastFallbackError = %v, want ErrStepBudget", err)
	}
	found := false
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.EvSchedFallback {
			found = true
			if ev.At != 7*time.Millisecond {
				t.Errorf("EvSchedFallback at %v, want 7ms (virtual clock)", ev.At)
			}
		}
	}
	if !found {
		t.Error("no EvSchedFallback event recorded")
	}
}

// Loading attaches the static-analysis report; a clean scheduler has a
// step bound and no admission warnings.
func TestLoadAttachesAnalysisReport(t *testing.T) {
	s, err := Load("minrtt", minRTT, BackendInterpreter)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.AnalysisReport()
	if rep == nil {
		t.Fatal("AnalysisReport() = nil")
	}
	if rep.StepBoundAt <= 0 {
		t.Errorf("step bound missing: %q at %d", rep.StepBound, rep.StepBoundAt)
	}
	if s.AdmissionWarnings() != 0 {
		t.Errorf("AdmissionWarnings = %d for a clean scheduler:\n%s", s.AdmissionWarnings(), rep)
	}
}

// A scheduler admitted with warnings keeps them on the report; the
// guard reads AdmissionWarnings when it quarantines.
func TestLoadKeepsAdmissionWarnings(t *testing.T) {
	s, err := Load("nopush", `SET(R1, R1 + 1);`, BackendVM)
	if err != nil {
		t.Fatal(err)
	}
	if s.AdmissionWarnings() == 0 {
		t.Errorf("no-push scheduler admitted without warnings:\n%s", s.AnalysisReport())
	}
	if !strings.Contains(s.StatusReport(), "step bound") {
		t.Error("StatusReport missing step bound line")
	}
	if !strings.Contains(s.StatusReport(), "analysis") {
		t.Error("StatusReport missing analysis summary line")
	}
}

// Front-end failures surface through Load as errors (the analyzer
// re-expresses them with rule ids for the ctl layer).
func TestLoadRejectsCheckerErrors(t *testing.T) {
	if _, err := Load("bad", `missing.PUSH(Q.TOP);`, BackendInterpreter); err == nil {
		t.Fatal("Load accepted a program with an undeclared identifier")
	}
}
