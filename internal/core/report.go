package core

import (
	"fmt"
	"strings"

	"progmp/internal/analysis"
)

// StatusReport renders a proc-style status page for a scheduler — the
// analogue of the paper's "extensive proc-based interface with
// debugging and performance statistics" (§4.1).
func (s *Scheduler) StatusReport() string {
	var b strings.Builder
	st := s.Stats()
	fmt.Fprintf(&b, "scheduler %s\n", s.name)
	fmt.Fprintf(&b, "  backend          %s\n", s.backend)
	fmt.Fprintf(&b, "  executions       %d\n", st.Executions)
	fmt.Fprintf(&b, "  pushes           %d\n", st.Pushes)
	fmt.Fprintf(&b, "  pops             %d\n", st.Pops)
	fmt.Fprintf(&b, "  drops            %d\n", st.Drops)
	if s.backend == BackendVM {
		fmt.Fprintf(&b, "  spec hits/misses %d/%d\n", st.Executions-st.GenericExecs, st.GenericExecs)
		if st.Steps > 0 {
			fmt.Fprintf(&b, "  vm steps         %d\n", st.Steps)
		}
	}
	fmt.Fprintf(&b, "  memory           %d B program, %d B per instance\n", s.MemoryFootprint(), InstanceFootprint())
	fmt.Fprintf(&b, "  frame slots      %d\n", s.info.NumSlots)
	if s.report != nil {
		fmt.Fprintf(&b, "  step bound       %s (%d steps at reference size)\n", s.report.StepBound, s.report.StepBoundAt)
		if n := len(s.report.Diagnostics); n > 0 {
			fmt.Fprintf(&b, "  analysis         %d warning(s), %d info(s)\n", s.report.Warnings(), s.report.Count(analysis.SevInfo))
		}
	}

	var regs []string
	for i := 0; i < len(s.info.RegsRead); i++ {
		switch {
		case s.info.RegsRead[i] && s.info.RegsWritten[i]:
			regs = append(regs, fmt.Sprintf("R%d(rw)", i+1))
		case s.info.RegsRead[i]:
			regs = append(regs, fmt.Sprintf("R%d(r)", i+1))
		case s.info.RegsWritten[i]:
			regs = append(regs, fmt.Sprintf("R%d(w)", i+1))
		}
	}
	if len(regs) == 0 {
		regs = []string{"none"}
	}
	fmt.Fprintf(&b, "  registers        %s\n", strings.Join(regs, " "))

	if s.vmProg != nil {
		fmt.Fprintf(&b, "  bytecode         %d instructions, %d spill slots (generic)\n",
			len(s.vmProg.Insns), s.vmProg.SpillSlots)
		specialized := s.specialized.Load()
		for n, p := range specialized {
			if p != nil {
				fmt.Fprintf(&b, "  specialized[%d]   %d instructions\n", n, len(p.Insns))
			}
		}
	}
	// The full registry snapshot, indented under the header block.
	for _, line := range strings.Split(strings.TrimRight(s.metrics.Render(), "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// ReportAll renders the status of every scheduler in the registry.
func (r *Registry) ReportAll() string {
	var b strings.Builder
	for _, name := range r.Names() {
		s, err := r.Get(name)
		if err != nil {
			continue
		}
		b.WriteString(s.StatusReport())
	}
	return b.String()
}
