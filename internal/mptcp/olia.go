package mptcp

// OLIA is the Opportunistic Linked-Increases Algorithm (Khalili et al.,
// "MPTCP is not Pareto-optimal", CoNEXT 2012 — reference [28] of the
// paper). It fixes LIA's non-Pareto-optimality by steering window
// growth toward the currently best paths while keeping the aggregate
// TCP-friendly.
//
// Increase per ACK on path r:
//
//	w_r/rtt_r² / (Σ_p w_p/rtt_p)² + α_r/w_r
//
// where α_r shifts capacity toward best paths with small windows:
// collected paths (best by inter-loss delivery, window not maximal)
// get +1/(n·|collected|); maximal-window paths give up
// -1/(n·|maxW|) when collected paths exist; everything else gets 0.
//
// Inter-loss delivery l_r is tracked per subflow as
// max(bytes since last loss, bytes in the previous loss interval).
type OLIA struct{}

// Name returns "olia".
func (OLIA) Name() string { return "olia" }

// oliaState lives on the subflow (zero value ready).
type oliaState struct {
	// sinceLoss is bytes acked since the last loss event (l1).
	sinceLoss int64
	// prevInterval is the bytes acked in the previous inter-loss
	// interval (l2).
	prevInterval int64
}

// interLoss is OLIA's l_r = max(l1, l2), a proxy for the path's
// achievable delivery between losses.
func (st *oliaState) interLoss() int64 {
	if st.sinceLoss > st.prevInterval {
		return st.sinceLoss
	}
	return st.prevInterval
}

// OnAck applies slow start below ssthresh and the OLIA coupled
// increase in congestion avoidance.
func (o OLIA) OnAck(conn *Conn, sbf *Subflow) {
	sbf.olia.sinceLoss += int64(conn.cfg.MSS)
	if !cwndLimited(sbf) {
		return
	}
	if sbf.cwnd < sbf.ssthresh {
		sbf.cwnd++
		return
	}
	paths := activeSubflows(conn)
	if len(paths) == 0 {
		return
	}
	// Σ_p w_p/rtt_p over active paths.
	var denom float64
	for _, p := range paths {
		denom += p.cwnd / rttSeconds(p)
	}
	if denom <= 0 {
		return
	}
	rtt := rttSeconds(sbf)
	inc := (sbf.cwnd / (rtt * rtt)) / (denom * denom)
	inc += o.alpha(paths, sbf) / sbf.cwnd
	sbf.cwnd += inc
	if sbf.cwnd < minCwnd {
		sbf.cwnd = minCwnd
	}
}

// alpha computes OLIA's α_r over the active path set.
func (OLIA) alpha(paths []*Subflow, sbf *Subflow) float64 {
	n := float64(len(paths))
	if n <= 1 {
		return 0
	}
	// Best paths: maximal l_r² / rtt_r.
	var bestMetric float64
	for _, p := range paths {
		l := float64(p.olia.interLoss())
		if m := l * l / rttSeconds(p); m > bestMetric {
			bestMetric = m
		}
	}
	// Max-window paths.
	var maxW float64
	for _, p := range paths {
		if p.cwnd > maxW {
			maxW = p.cwnd
		}
	}
	isBest := func(p *Subflow) bool {
		l := float64(p.olia.interLoss())
		return l*l/rttSeconds(p) >= bestMetric*0.999
	}
	isMaxW := func(p *Subflow) bool { return p.cwnd >= maxW*0.999 }
	// Collected: best paths whose window is not maximal.
	var collected, maxWCount int
	for _, p := range paths {
		if isBest(p) && !isMaxW(p) {
			collected++
		}
		if isMaxW(p) {
			maxWCount++
		}
	}
	switch {
	case collected > 0 && isBest(sbf) && !isMaxW(sbf):
		return 1 / (n * float64(collected))
	case collected > 0 && isMaxW(sbf):
		return -1 / (n * float64(maxWCount))
	default:
		return 0
	}
}

// OnLoss halves the window and rolls the inter-loss interval.
func (OLIA) OnLoss(conn *Conn, sbf *Subflow) {
	sbf.olia.prevInterval = sbf.olia.sinceLoss
	sbf.olia.sinceLoss = 0
	Reno{}.OnLoss(conn, sbf)
}

// OnRTO collapses the window and rolls the inter-loss interval.
func (OLIA) OnRTO(conn *Conn, sbf *Subflow) {
	sbf.olia.prevInterval = sbf.olia.sinceLoss
	sbf.olia.sinceLoss = 0
	Reno{}.OnRTO(conn, sbf)
}

// activeSubflows lists established, open subflows.
func activeSubflows(conn *Conn) []*Subflow {
	var out []*Subflow
	for _, s := range conn.subflows {
		if s.established && !s.closed {
			out = append(out, s)
		}
	}
	return out
}

// rttSeconds returns a floor-guarded SRTT in seconds.
func rttSeconds(s *Subflow) float64 {
	rtt := s.srtt.Seconds()
	if rtt <= 0 {
		return 0.001
	}
	return rtt
}

var _ CongestionControl = OLIA{}
