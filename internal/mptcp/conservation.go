package mptcp

import (
	"fmt"
	"time"
)

// ConservationChecker attaches to a connection's delivery path and
// asserts the end-to-end conservation invariant the programming model
// guarantees for ANY scheduler: every byte handed to Send is delivered
// to the receiving application exactly once and in order. Violations
// are collected rather than panicking so a chaos run can finish and
// report them all.
type ConservationChecker struct {
	conn *Conn

	next int64 // next expected meta sequence number

	// Bytes and Segments count in-order application deliveries.
	Bytes    int64
	Segments int64
	// LastDeliveryAt is the virtual time of the latest delivery.
	LastDeliveryAt time.Duration

	violations []string
}

// maxRecordedViolations bounds the violation list; past it we only
// count (a wedged run could otherwise accumulate millions of entries).
const maxRecordedViolations = 16

// NewConservationChecker attaches a checker to conn. It chains onto
// the delivery path (AddDeliveryHook), so it coexists with an
// application OnDeliver consumer or the fleet engine's latency probes.
func NewConservationChecker(conn *Conn) *ConservationChecker {
	k := &ConservationChecker{conn: conn}
	conn.Receiver().AddDeliveryHook(func(seq int64, size int, at time.Duration) {
		if seq != k.next {
			k.violate("delivery at %v: got seq %d, want %d", at, seq, k.next)
		}
		k.next = seq + 1
		k.Bytes += int64(size)
		k.Segments++
		k.LastDeliveryAt = at
	})
	return k
}

func (k *ConservationChecker) violate(format string, args ...any) {
	if len(k.violations) < maxRecordedViolations {
		k.violations = append(k.violations, fmt.Sprintf(format, args...))
	} else {
		k.violations[maxRecordedViolations-1] = fmt.Sprintf("... and more (suppressed)")
	}
}

// Violations returns the recorded invariant violations.
func (k *ConservationChecker) Violations() []string { return k.violations }

// Check verifies the post-run invariant: wantBytes delivered exactly
// once and in order, and the sender fully acknowledged. Call it after
// the simulation horizon.
func (k *ConservationChecker) Check(wantBytes int64) error {
	if len(k.violations) > 0 {
		return fmt.Errorf("conservation violated (%d): %s", len(k.violations), k.violations[0])
	}
	if k.Bytes != wantBytes {
		return fmt.Errorf("delivered %d bytes, want exactly %d", k.Bytes, wantBytes)
	}
	if !k.conn.AllAcked() {
		return fmt.Errorf("sender not fully acked: Q=%d QU=%d RQ=%d",
			k.conn.QueuedSegments(), k.conn.UnackedSegments(), k.conn.reinjectQ.len())
	}
	return nil
}
