package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// TestBlackoutRTOBackoffCycle drives a subflow into a temporary
// blackout and asserts the RTO state machine end to end: the
// retransmission timeout backs off exponentially while the link is
// dark, the backoff resets once an acknowledgement gets through after
// recovery, and the connection keeps draining through the surviving
// subflow the whole time.
func TestBlackoutRTOBackoffCycle(t *testing.T) {
	eng := netsim.NewEngine(9)
	conn := NewConn(eng, Config{})
	dark := netsim.NewLink(eng, netsim.PathConfig{
		Name:  "dark",
		Rate:  netsim.ConstantRate(4e6),
		Delay: 5 * time.Millisecond,
		Loss:  netsim.BlackoutLoss{From: 200 * time.Millisecond, Until: 3 * time.Second},
	})
	healthy := netsim.NewLink(eng, netsim.PathConfig{
		Name:  "healthy",
		Rate:  netsim.ConstantRate(2e6),
		Delay: 25 * time.Millisecond,
	})
	darkSbf, err := conn.AddSubflow(SubflowConfig{Name: "dark", Link: dark})
	if err != nil {
		t.Fatal(err)
	}
	healthySbf, err := conn.AddSubflow(SubflowConfig{Name: "healthy", Link: healthy})
	if err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendCompiled))
	chk := NewConservationChecker(conn)

	const total = 2 << 20
	eng.After(0, func() { conn.Send(total, 0) })

	// Mid-blackout the timeout must have backed off at least twice
	// (MinRTO 200 ms: RTO fires around 0.4 s, 0.8 s, 1.6 s, ...).
	var midBackoff int
	var midRTOs int64
	eng.At(2500*time.Millisecond, func() {
		midBackoff = darkSbf.rtoBackoff
		midRTOs = darkSbf.RTOs
	})
	// Well after recovery the first SACK on the dark subflow must have
	// reset the backoff.
	var lateBackoff = -1
	eng.At(8*time.Second, func() { lateBackoff = darkSbf.rtoBackoff })

	eng.RunUntil(120 * time.Second)

	if midRTOs < 2 {
		t.Errorf("mid-blackout RTOs = %d, want >= 2", midRTOs)
	}
	if midBackoff < 2 {
		t.Errorf("mid-blackout rtoBackoff = %d, want >= 2 (exponential backoff)", midBackoff)
	}
	if lateBackoff != 0 {
		t.Errorf("post-recovery rtoBackoff = %d, want 0 (reset on SACK)", lateBackoff)
	}
	if err := chk.Check(total); err != nil {
		t.Fatalf("conservation across blackout/recovery: %v", err)
	}
	if healthySbf.BytesSent == 0 {
		t.Error("surviving subflow carried no data during the blackout")
	}
	if darkSbf.Closed() {
		t.Error("dark subflow should survive (no path manager attached)")
	}
}
