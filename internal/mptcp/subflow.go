package mptcp

import (
	"fmt"
	"time"

	"progmp/internal/netsim"
	"progmp/internal/obs"
)

// txRecord tracks one subflow-level segment until acknowledged.
type txRecord struct {
	pkt    *Packet
	sbfSeq int64
	sentAt time.Duration
	size   int
	// sbfRetx marks subflow-level retransmissions (Karn's algorithm:
	// no RTT sample from retransmitted segments).
	sbfRetx bool
	// lost marks SACK/RTO loss suspicion; the segment was or will be
	// retransmitted on this subflow and reinjected via RQ.
	lost bool
}

// SubflowConfig describes one subflow of a connection.
type SubflowConfig struct {
	Name string
	// Link carries data on Fwd and ACKs on Rev.
	Link *netsim.Link
	// Backup marks the subflow as backup/non-preferred (IS_BACKUP).
	Backup bool
	// StartAt is when the path manager establishes the subflow.
	StartAt time.Duration
	// InitialCwnd in segments (default 10, like Linux).
	InitialCwnd float64
}

// dupThresh is the FACK-style reordering threshold: a segment is
// deemed lost once three segments above it have been SACKed.
const dupThresh = 3

// ackSize is the wire size of a pure ACK.
const ackSize = 40

// Subflow is one TCP subflow of an MPTCP connection (sender side).
type Subflow struct {
	id   int
	name string
	conn *Conn
	link *netsim.Link

	backup      bool
	established bool
	closed      bool

	// Congestion control state (owned by the CC algorithm).
	cwnd     float64
	ssthresh float64

	// Transmission state.
	nextSbfSeq    int64
	outstanding   []*txRecord // un-SACKed records, ordered by sbfSeq
	highestSacked int64       // highest SACKed sbfSeq (-1 initially)

	// RTT estimation (RFC 6298).
	srtt     time.Duration
	rttvar   time.Duration
	rto      time.Duration
	rttCount int64
	rttSum   time.Duration

	// Loss recovery.
	inRecovery bool
	recoverEnd int64 // leave recovery once sbfSeq >= recoverEnd SACKed
	rtoTimer   *netsim.Timer
	rtoBackoff int

	// retxPending queues records marked lost awaiting their paced
	// subflow-level retransmission (one per incoming ACK during
	// recovery, like NewReno) so bursts of drops do not blast
	// retransmissions into a still-full bottleneck queue.
	retxPending []*txRecord

	// qdiscBytes is this subflow's own unserialized backlog at the
	// link — the quantity the TCP-small-queues condition gates on.
	// On shared links each flow counts only its own bytes, as in the
	// kernel.
	qdiscBytes int64

	// Delivery-rate estimation: acked-bytes samples in a sliding window.
	rateSamples []rateSample

	// olia is per-subflow state for the OLIA congestion control.
	olia oliaState

	// destID is the shared-state store's interned destination id for
	// this subflow's path (-1 when no store is attached).
	destID int

	// Stats.
	BytesSent       int64
	PktsSent        int64
	Retransmissions int64
	LossEpisodes    int64
	RTOs            int64

	// Observability handles (nil-safe no-ops when uninstrumented).
	mBytes *obs.Counter
	mRetx  *obs.Counter
	mRTOs  *obs.Counter
	mRTT   *obs.Histogram
}

type rateSample struct {
	at    time.Duration
	bytes int
}

// rateWindow is the sliding window for THROUGHPUT estimation.
const rateWindow = time.Second

// ID returns the stable subflow id (the SentOnMask bit index).
func (s *Subflow) ID() int { return s.id }

// Name returns the configured name.
func (s *Subflow) Name() string { return s.name }

// Established reports whether the handshake completed.
func (s *Subflow) Established() bool { return s.established }

// Closed reports whether the subflow was torn down.
func (s *Subflow) Closed() bool { return s.closed }

// Cwnd returns the congestion window in segments.
func (s *Subflow) Cwnd() float64 { return s.cwnd }

// SRTT returns the smoothed RTT estimate.
func (s *Subflow) SRTT() time.Duration { return s.srtt }

// InFlight returns the number of un-SACKed segments.
func (s *Subflow) InFlight() int { return len(s.outstanding) }

// SetBackup changes the backup flag (path-manager operation).
func (s *Subflow) SetBackup(b bool) { s.backup = b }

// Backup reports whether the subflow is marked backup/non-preferred.
func (s *Subflow) Backup() bool { return s.backup }

// usable reports whether the subflow can carry data now.
func (s *Subflow) usable() bool { return s.established && !s.closed }

// instrument resolves the subflow's metric handles from reg, namespaced
// by the subflow name (falling back to the numeric id).
func (s *Subflow) instrument(reg *obs.Registry) {
	key := s.name
	if key == "" {
		key = fmt.Sprintf("%d", s.id)
	}
	s.mBytes = reg.Counter("sbf." + key + ".bytes_sent")
	s.mRetx = reg.Counter("sbf." + key + ".retransmits")
	s.mRTOs = reg.Counter("sbf." + key + ".rtos")
	s.mRTT = reg.Histogram("sbf." + key + ".rtt_us")
}

// trace records a subflow-scoped event through the connection's tracer.
func (s *Subflow) trace(kind obs.EventKind, seq, aux int64, site int32) {
	s.conn.trace(kind, int32(s.id), seq, aux, site)
}

// synRetryBase is the initial SYN retransmission timeout (RFC 6298
// prescribes 1 s; it doubles per retry).
const synRetryBase = time.Second

// maxSynRetries bounds handshake attempts before the subflow gives up.
const maxSynRetries = 6

// establish runs the handshake: a SYN over the forward path and its
// ACK over the reverse path seed the RTT estimate. Lost SYNs are
// retransmitted with exponential backoff.
func (s *Subflow) establish() { s.sendSYN(0) }

func (s *Subflow) sendSYN(attempt int) {
	if s.closed || s.established {
		return
	}
	synAt := s.conn.eng.Now()
	var retry *netsim.Timer
	if attempt < maxSynRetries {
		retry = s.conn.eng.After(synRetryBase<<uint(attempt), func() {
			s.sendSYN(attempt + 1)
		})
	}
	s.link.Fwd.Send(ackSize, func() {
		s.link.Rev.Send(ackSize, func() {
			if s.closed || s.established {
				return
			}
			if retry != nil {
				retry.Stop()
			}
			s.established = true
			s.rttSample(s.conn.eng.Now() - synAt)
			s.conn.onSubflowEstablished(s)
		})
	})
}

// Close tears the subflow down. Outstanding segments that still have a
// copy in flight on another live subflow become reinjection candidates
// (RQ); segments whose only carrier was this subflow are no longer in
// flight anywhere and return to the sending queue Q, so even a
// scheduler that never services RQ cannot lose data ("packets must not
// be lost ... impossible by design", §3.3). The scheduler never
// observes a stale reference: closed subflows simply vanish from the
// next environment snapshot.
func (s *Subflow) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
		s.rtoTimer = nil
	}
	for _, rec := range s.outstanding {
		if rec.pkt.MetaAcked {
			continue
		}
		if s.conn.inFlightElsewhere(rec.pkt, s) {
			s.conn.addReinject(rec.pkt)
		} else {
			s.conn.returnToSendQ(rec.pkt)
		}
	}
	s.outstanding = nil
	s.retxPending = nil
	s.conn.onSubflowClosed(s)
}

// transmit sends pkt on the subflow. It refuses (returning false) when
// the subflow is unusable or the peer's receive window has no room —
// the same guard the kernel applies below the scheduler.
func (s *Subflow) transmit(pkt *Packet) bool {
	if !s.usable() {
		return false
	}
	if !s.conn.withinWindow(pkt) {
		return false
	}
	s.conn.noteTransmitted(pkt)
	rec := &txRecord{
		pkt:    pkt,
		sbfSeq: s.nextSbfSeq,
		sentAt: s.conn.eng.Now(),
		size:   pkt.Size,
	}
	s.nextSbfSeq++
	s.outstanding = append(s.outstanding, rec)
	s.sendRecord(rec)
	pkt.SentOnMask |= 1 << uint(s.id)
	pkt.SentCount++
	pkt.LastSentAt = rec.sentAt
	return true
}

// sendRecord puts one record on the wire (first transmission or
// subflow-level retransmission) and maintains the subflow's own qdisc
// accounting: when the packet finishes serializing and the backlog
// falls back under the TSQ budget, the scheduler runs again — the
// kernel's TSQ completion tasklet.
func (s *Subflow) sendRecord(rec *txRecord) {
	s.PktsSent++
	s.BytesSent += int64(rec.size)
	s.mBytes.Add(int64(rec.size))
	sbfSeq, metaSeq, size := rec.sbfSeq, rec.pkt.Seq, rec.size
	wire := int64(size + 40) // 40 bytes of TCP/MPTCP headers
	accepted := s.link.Fwd.SendTracked(int(wire), func() {
		s.conn.receiver.onData(s, sbfSeq, metaSeq, size)
	}, func() {
		wasThrottled := s.tsqThrottled()
		s.qdiscBytes -= wire
		// The kernel's TSQ tasklet re-enters the scheduler when the
		// flag clears — on the throttled→unthrottled transition, not
		// on every serialization.
		if wasThrottled && !s.tsqThrottled() && !s.closed && !s.conn.cfg.DisableTSQWake {
			s.conn.schedule()
		}
	})
	if accepted {
		s.qdiscBytes += wire
	}
	s.armRTO()
}

// retransmitRecord resends rec on this subflow (TCP's mandatory
// subflow-level retransmission; the subflow byte stream must stay
// complete regardless of meta-level reinjection).
func (s *Subflow) retransmitRecord(rec *txRecord) {
	if s.closed {
		return
	}
	rec.sbfRetx = true
	rec.sentAt = s.conn.eng.Now()
	s.Retransmissions++
	s.mRetx.Add(1)
	s.sendRecord(rec)
}

// handleAck processes a SACK for sbfSeq together with the piggybacked
// meta-level cumulative DATA_ACK and receive window.
func (s *Subflow) handleAck(sackSbfSeq, metaCumAck int64, rwnd int64) {
	if s.closed {
		return
	}
	// Locate and remove the SACKed record.
	var rec *txRecord
	for i, cand := range s.outstanding {
		if cand.sbfSeq == sackSbfSeq {
			rec = cand
			s.outstanding = append(s.outstanding[:i], s.outstanding[i+1:]...)
			break
		}
	}
	if rec != nil {
		if !rec.sbfRetx {
			s.rttSample(s.conn.eng.Now() - rec.sentAt)
		}
		if !rec.lost {
			prev := s.cwnd
			s.conn.cc.OnAck(s.conn, s)
			if s.cwnd != prev {
				s.trace(obs.EvCwnd, -1, int64(s.cwnd*1000), 0)
			}
		}
		s.recordDelivered(rec.size)
		s.rtoBackoff = 0
	}
	if sackSbfSeq > s.highestSacked {
		s.highestSacked = sackSbfSeq
	}
	if s.inRecovery && s.highestSacked >= s.recoverEnd-1 {
		s.inRecovery = false
	}
	// FACK-style loss detection: segments more than dupThresh below
	// the highest SACK are lost.
	s.detectLosses()
	// Pace one queued retransmission per acknowledgement.
	s.drainRetx()
	s.armRTO()
	s.conn.onAck(metaCumAck, rwnd, s)
}

// detectLosses marks and retransmits records overtaken by dupThresh
// SACKs above them.
func (s *Subflow) detectLosses() {
	for _, rec := range s.outstanding {
		if rec.lost {
			continue
		}
		if s.highestSacked-rec.sbfSeq >= dupThresh {
			s.markLost(rec, false)
		}
	}
}

// markLost handles one lost record: congestion response (once per
// episode), a paced subflow-level retransmission, and meta-level
// reinjection via RQ. The first loss of an episode retransmits
// immediately (fast retransmit); further losses queue and go out one
// per subsequent ACK (NewReno-style pacing).
func (s *Subflow) markLost(rec *txRecord, isRTO bool) {
	rec.lost = true
	s.trace(obs.EvLoss, rec.pkt.Seq, rec.sbfSeq, 0)
	if st := s.conn.store; st != nil {
		st.RecordLoss(s.destID, 1)
	}
	first := false
	if !s.inRecovery {
		s.inRecovery = true
		s.recoverEnd = s.nextSbfSeq
		s.LossEpisodes++
		first = true
		prev := s.cwnd
		if isRTO {
			s.conn.cc.OnRTO(s.conn, s)
		} else {
			s.conn.cc.OnLoss(s.conn, s)
		}
		if s.cwnd != prev {
			s.trace(obs.EvCwnd, -1, int64(s.cwnd*1000), 0)
		}
	}
	if first || isRTO {
		s.retransmitRecord(rec)
	} else {
		s.retxPending = append(s.retxPending, rec)
	}
	if !rec.pkt.MetaAcked {
		s.conn.addReinject(rec.pkt)
	}
}

// drainRetx sends one paced retransmission, skipping records that were
// SACKed or whose data was meta-acknowledged in the meantime.
func (s *Subflow) drainRetx() {
	for len(s.retxPending) > 0 {
		rec := s.retxPending[0]
		s.retxPending = s.retxPending[1:]
		still := false
		for _, o := range s.outstanding {
			if o == rec {
				still = true
				break
			}
		}
		if !still {
			continue
		}
		s.retransmitRecord(rec)
		return
	}
}

// armRTO (re)schedules the retransmission timer for the oldest
// outstanding record.
func (s *Subflow) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
		s.rtoTimer = nil
	}
	if len(s.outstanding) == 0 || s.closed {
		return
	}
	oldest := s.outstanding[0]
	rto := s.currentRTO()
	deadline := oldest.sentAt + rto
	now := s.conn.eng.Now()
	if deadline < now {
		deadline = now + rto
	}
	s.rtoTimer = s.conn.eng.At(deadline, s.onRTO)
}

// onRTO fires the retransmission timeout: collapse the window,
// retransmit the oldest record, reinject everything outstanding.
func (s *Subflow) onRTO() {
	if s.closed || len(s.outstanding) == 0 {
		return
	}
	s.RTOs++
	s.mRTOs.Add(1)
	s.trace(obs.EvRTO, s.outstanding[0].pkt.Seq, int64(s.rtoBackoff), 0)
	// An RTO is the strongest path-degradation signal the sender sees;
	// publish it as a quarantine signal so other connections steering by
	// XQUAR avoid this destination.
	if st := s.conn.store; st != nil {
		st.RecordQuarantine(s.destID)
	}
	s.rtoBackoff++
	s.inRecovery = false // force a fresh congestion response
	oldest := s.outstanding[0]
	s.markLost(oldest, true)
	for _, rec := range s.outstanding[1:] {
		if !rec.pkt.MetaAcked {
			rec.lost = true
			s.conn.addReinject(rec.pkt)
		}
	}
	s.armRTO()
	s.conn.schedule()
}

// currentRTO applies exponential backoff to the base RTO.
func (s *Subflow) currentRTO() time.Duration {
	rto := s.rto
	if rto == 0 {
		rto = s.conn.cfg.MinRTO
	}
	for i := 0; i < s.rtoBackoff && i < 6; i++ {
		rto *= 2
	}
	return rto
}

// rttSample updates the RFC 6298 estimators.
func (s *Subflow) rttSample(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if s.rttCount == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rttCount++
	s.rttSum += sample
	s.mRTT.Observe(sample.Microseconds())
	if st := s.conn.store; st != nil {
		st.RecordRTT(s.destID, sample.Microseconds())
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.conn.cfg.MinRTO {
		s.rto = s.conn.cfg.MinRTO
	}
}

// recordDelivered feeds the sliding-window delivery-rate estimator.
func (s *Subflow) recordDelivered(bytes int) {
	now := s.conn.eng.Now()
	s.rateSamples = append(s.rateSamples, rateSample{at: now, bytes: bytes})
	s.pruneRateSamples(now)
	if st := s.conn.store; st != nil {
		st.RecordDelivered(s.destID, int64(bytes))
	}
}

func (s *Subflow) pruneRateSamples(now time.Duration) {
	cut := 0
	for cut < len(s.rateSamples) && s.rateSamples[cut].at < now-rateWindow {
		cut++
	}
	s.rateSamples = s.rateSamples[cut:]
}

// Throughput estimates the delivery rate in bytes/s over the sliding
// window.
func (s *Subflow) Throughput() int64 {
	now := s.conn.eng.Now()
	s.pruneRateSamples(now)
	var total int
	for _, smp := range s.rateSamples {
		total += smp.bytes
	}
	return int64(float64(total) / rateWindow.Seconds())
}

// queuedSegments approximates segments handed to the subflow but not
// yet serialized onto the wire (the QUEUED property). Together with
// wireInFlight it partitions the outstanding segments, so
// CWND > SKBS_IN_FLIGHT + QUEUED gates on the total outstanding count
// without double counting.
func (s *Subflow) queuedSegments() int64 {
	q := s.qdiscBytes / int64(s.conn.cfg.MSS)
	if n := int64(len(s.outstanding)); q > n {
		q = n
	}
	return q
}

// wireInFlight is the number of outstanding segments already on the
// wire (the SKBS_IN_FLIGHT property).
func (s *Subflow) wireInFlight() int64 {
	return int64(len(s.outstanding)) - s.queuedSegments()
}

// tsqBudget is the TCP-small-queues transmit budget: roughly 1 ms of
// the pacing rate (cwnd·MSS/SRTT), floored at two segments — the
// kernel's tcp_small_queue_check shape.
func (s *Subflow) tsqBudget() int {
	floor := s.conn.cfg.TSQLimitBytes
	if s.srtt <= 0 {
		return floor
	}
	pacing := s.cwnd * float64(s.conn.cfg.MSS) / s.srtt.Seconds() // bytes/s
	budget := int(pacing * 0.001)
	if budget < floor {
		budget = floor
	}
	return budget
}

// tsqThrottled models the TCP-small-queues condition: the subflow's
// own unserialized backlog exceeds the TSQ budget.
func (s *Subflow) tsqThrottled() bool {
	return s.qdiscBytes > int64(s.tsqBudget())
}

// lostPending counts records currently marked lost and un-SACKed.
func (s *Subflow) lostPending() int64 {
	var n int64
	for _, rec := range s.outstanding {
		if rec.lost {
			n++
		}
	}
	return n
}

// avgRTT returns the long-run mean RTT.
func (s *Subflow) avgRTT() time.Duration {
	if s.rttCount == 0 {
		return 0
	}
	return s.rttSum / time.Duration(s.rttCount)
}

// InRecovery exposes the loss-recovery state (tests/diagnostics).
func (s *Subflow) InRecovery() bool { return s.inRecovery }

// TSQForTest exposes the TSQ condition (tests/diagnostics).
func (s *Subflow) TSQForTest() bool { return s.tsqThrottled() }
