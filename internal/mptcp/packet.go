// Package mptcp is a userspace model of the Multipath TCP sender and
// receiver sufficient to host ProgMP schedulers: the meta socket with
// the queues Q/QU/RQ of §3.1, subflows with Reno/LIA congestion
// control, RFC 6298 RTT estimation, SACK-style loss detection, RTO
// handling with mandatory subflow-level retransmission, TSQ throttling,
// and the two-level receiver queue architecture of §4.2 in both its
// legacy and optimized ("fastest possible packet handling") variants.
//
// It substitutes for the paper's in-kernel runtime (see DESIGN.md);
// the scheduler decision surface — subflow and packet properties,
// queue contents, triggering events — matches the programming model.
package mptcp

import (
	"sort"
	"time"
)

// Packet is one meta-level segment. Segments carry a data sequence
// number at packet granularity; the size is the payload in bytes.
type Packet struct {
	Seq  int64
	Size int
	// Offset is the packet's first byte's position in the stream;
	// receive-window accounting works in sequence space, so
	// retransmissions of old data never consume new window.
	Offset     int64
	Prop       int64 // application-set scheduling intent (§3.2)
	EnqueuedAt time.Duration

	// SentOnMask has bit i set after a transmission on subflow id i.
	SentOnMask uint64
	SentCount  int
	// LastSentAt is the time of the most recent transmission.
	LastSentAt time.Duration
	// MetaAcked is set once the cumulative DATA_ACK covers the packet;
	// acked packets are automatically removed from all queues (§3.1).
	MetaAcked bool

	// consumedGen stamps the applyActions pass (Conn.applyGen) that
	// pushed or dropped the packet, replacing a per-pass map.
	consumedGen uint64
}

// sentOn reports a prior transmission on the subflow id.
func (p *Packet) sentOn(id int) bool { return p.SentOnMask&(1<<uint(id)) != 0 }

// packetList is an ordered packet queue with O(1) membership checks,
// used for Q, QU and RQ. Queues hold each packet at most once.
type packetList struct {
	pkts []*Packet
	in   map[*Packet]bool
	// ver counts membership mutations. The snapshot layer compares it
	// across scheduler executions to decide whether lazily-materialized
	// packet views may be reused (incremental snapshot reuse, §4.1);
	// property-only mutations that keep membership intact must bump it
	// explicitly (see Conn.applyActions).
	ver uint64
}

func newPacketList() *packetList {
	return &packetList{in: make(map[*Packet]bool)}
}

func (l *packetList) len() int { return len(l.pkts) }

func (l *packetList) contains(p *Packet) bool { return l.in[p] }

// pushBack appends p unless already present, reporting whether it was
// added.
func (l *packetList) pushBack(p *Packet) bool {
	if l.in[p] {
		return false
	}
	l.pkts = append(l.pkts, p)
	l.in[p] = true
	l.ver++
	return true
}

// insertBySeq inserts p at its sequence-ordered position unless already
// present, reporting whether it was added. On a seq-sorted list this is
// a sorted insert; reinserting popped-but-unconsumed packets this way
// (packets must not be lost by design, §3.3) preserves the ordering
// invariant that the sorted-insert binary searches rely on.
func (l *packetList) insertBySeq(p *Packet) bool {
	if l.in[p] {
		return false
	}
	//progmp:ignore hotpath sort.Search's comparator does not escape; the closure stays on the stack
	idx := sort.Search(len(l.pkts), func(i int) bool { return l.pkts[i].Seq > p.Seq })
	//progmp:ignore hotpath amortized: reinsertion refills a slot freed by remove, so cap is retained in steady state
	l.pkts = append(l.pkts, nil)
	copy(l.pkts[idx+1:], l.pkts[idx:])
	l.pkts[idx] = p
	//progmp:ignore hotpath amortized: the key was deleted from this map moments ago, so its bucket space is reused
	l.in[p] = true
	l.ver++
	return true
}

// remove deletes p, reporting whether it was present.
func (l *packetList) remove(p *Packet) bool {
	if !l.in[p] {
		return false
	}
	delete(l.in, p)
	for i, cand := range l.pkts {
		if cand == p {
			//progmp:ignore hotpath in-place shrink: len never grows past cap
			l.pkts = append(l.pkts[:i], l.pkts[i+1:]...)
			l.ver++
			return true
		}
	}
	return false
}

// front returns the first packet or nil.
func (l *packetList) front() *Packet {
	if len(l.pkts) == 0 {
		return nil
	}
	return l.pkts[0]
}

// all returns the underlying slice (callers must not mutate).
func (l *packetList) all() []*Packet { return l.pkts }
