package mptcp

import (
	"fmt"
	"sort"
	"time"

	"progmp/internal/mptcp/sched"
	"progmp/internal/netsim"
)

// Chaos scenario driver: the connection-level half of the fault-
// injection harness. A ChaosScenario describes a hostile network (the
// link-level injectors live in netsim's ChaosSpec); RunChaos executes
// one seeded soak of a scheduler against it with the path manager and
// conservation checker attached, so every run asserts the model's core
// robustness claim — faults make a connection slow, never incorrect.

// SubflowSpec is one subflow of a chaos scenario.
type SubflowSpec struct {
	Path    netsim.PathConfig
	Backup  bool
	StartAt time.Duration
}

// ChaosScenario is one reproducible fault pattern. Paths is a builder,
// not a value, because loss models carry state (Gilbert-Elliott) and
// every run needs a fresh instance.
type ChaosScenario struct {
	Name string
	Desc string
	// Paths builds fresh per-run subflow specs.
	Paths func() []SubflowSpec
	// Revive, when set, adds one more subflow established at ReviveAt —
	// the revival half of a subflow-death scenario. The path manager
	// tears the dead subflow down; this brings capacity back.
	Revive   func() SubflowSpec
	ReviveAt time.Duration
	// SendBytes is the workload size (default 256 KiB).
	SendBytes int
	// Horizon bounds the virtual run time (default 300 s).
	Horizon time.Duration
}

// ChaosResult summarizes one chaos run.
type ChaosResult struct {
	Scenario        string
	Seed            int64
	DeliveredBytes  int64
	Segments        int64
	FCT             time.Duration // flow completion time (0 when incomplete)
	AllAcked        bool
	ClosedByManager int // subflows the path manager tore down
	Promotions      int
}

// RunChaos executes one seeded soak of the scenario. schedFn builds
// the scheduler under test (nil means native MinRTT); a builder keeps
// per-run scheduler state fresh. The returned error is the
// conservation verdict: nil means every byte was delivered exactly
// once, in order, and fully acknowledged within the horizon.
func RunChaos(sc ChaosScenario, seed int64, schedFn func() Scheduler) (ChaosResult, error) {
	res := ChaosResult{Scenario: sc.Name, Seed: seed}
	if sc.Paths == nil {
		return res, fmt.Errorf("chaos scenario %q has no paths", sc.Name)
	}
	sendBytes := sc.SendBytes
	if sendBytes == 0 {
		sendBytes = 256 << 10
	}
	horizon := sc.Horizon
	if horizon == 0 {
		horizon = 300 * time.Second
	}

	eng := netsim.NewEngine(seed)
	conn := NewConn(eng, Config{})
	for i, spec := range sc.Paths() {
		link := netsim.NewLink(eng, spec.Path)
		name := spec.Path.Name
		if name == "" {
			name = fmt.Sprintf("p%d", i)
		}
		if _, err := conn.AddSubflow(SubflowConfig{
			Name:    name,
			Link:    link,
			Backup:  spec.Backup,
			StartAt: spec.StartAt,
		}); err != nil {
			return res, err
		}
	}
	if sc.Revive != nil {
		spec := sc.Revive()
		spec.StartAt = sc.ReviveAt
		link := netsim.NewLink(eng, spec.Path)
		if _, err := conn.AddSubflow(SubflowConfig{
			Name:    spec.Path.Name,
			Link:    link,
			Backup:  spec.Backup,
			StartAt: spec.StartAt,
		}); err != nil {
			return res, err
		}
	}
	var s Scheduler
	if schedFn != nil {
		s = schedFn()
	}
	if s == nil {
		s = sched.MinRTT{}
	}
	conn.SetScheduler(s)
	pm := NewPathManager(conn, PathManagerConfig{PromoteBackupOnDeath: true})
	chk := NewConservationChecker(conn)
	conn.OnAllAcked(func() { res.FCT = eng.Now() })

	eng.After(0, func() { conn.Send(sendBytes, 0) })
	eng.RunUntil(horizon)
	pm.Stop()

	res.DeliveredBytes = chk.Bytes
	res.Segments = chk.Segments
	res.AllAcked = conn.AllAcked()
	res.ClosedByManager = pm.ClosedByManager
	res.Promotions = pm.Promotions
	return res, chk.Check(int64(sendBytes))
}

// wifiPath is the chaotic-scenario baseline path: a moderate-rate,
// moderate-delay link the injectors are layered onto.
func wifiPath(name string, rate float64, delay time.Duration) netsim.PathConfig {
	return netsim.PathConfig{Name: name, Rate: netsim.ConstantRate(rate), Delay: delay}
}

// ChaosScenarios is the scenario registry, keyed by name. Each covers
// one fault family from the robustness matrix; "meltdown" combines
// them all.
var ChaosScenarios = map[string]ChaosScenario{
	"bursty": {
		Name: "bursty",
		Desc: "Gilbert-Elliott bursty loss on both paths",
		Paths: func() []SubflowSpec {
			spec := func(name string, rate float64, delay time.Duration) SubflowSpec {
				cs := netsim.ChaosSpec{Burst: &netsim.GilbertElliott{
					PGood: 0.001, PBad: 0.3, PGoodToBad: 0.02, PBadToGood: 0.2,
				}}
				return SubflowSpec{Path: cs.Apply(wifiPath(name, 2e6, 10*time.Millisecond))}
			}
			return []SubflowSpec{spec("ge0", 2e6, 10*time.Millisecond), spec("ge1", 2e6, 25*time.Millisecond)}
		},
	},
	"flap": {
		Name: "flap",
		Desc: "scheduled link flaps on the primary path",
		Paths: func() []SubflowSpec {
			flappy := netsim.ChaosSpec{Flap: &netsim.Flap{
				FirstDownAt: 500 * time.Millisecond,
				DownFor:     400 * time.Millisecond,
				UpFor:       1600 * time.Millisecond,
			}}
			return []SubflowSpec{
				{Path: flappy.Apply(wifiPath("flappy", 4e6, 8*time.Millisecond))},
				{Path: wifiPath("steady", 1e6, 30*time.Millisecond)},
			}
		},
		// Long enough that the transfer spans several down/up cycles.
		SendBytes: 4 << 20,
	},
	"reorder": {
		Name: "reorder",
		Desc: "packet duplication, reordering and jitter on both paths",
		Paths: func() []SubflowSpec {
			noisy := netsim.ChaosSpec{
				DupProb:     0.03,
				ReorderProb: 0.05,
				ReorderBy:   20 * time.Millisecond,
				Jitter:      5 * time.Millisecond,
			}
			return []SubflowSpec{
				{Path: noisy.Apply(wifiPath("noisy0", 3e6, 10*time.Millisecond))},
				{Path: noisy.Apply(wifiPath("noisy1", 3e6, 20*time.Millisecond))},
			}
		},
	},
	"sbfdeath": {
		Name: "sbfdeath",
		Desc: "silent subflow death (blackout), path-manager teardown, later revival",
		Paths: func() []SubflowSpec {
			// The blackout hits while plenty of data is still queued, so
			// the dying subflow has outstanding segments for the path
			// manager's no-progress detector to observe.
			dying := netsim.ChaosSpec{Blackout: &netsim.BlackoutLoss{From: 150 * time.Millisecond}}
			return []SubflowSpec{
				{Path: dying.Apply(wifiPath("dying", 6e6, 5*time.Millisecond))},
				{Path: wifiPath("survivor", 1e6, 40*time.Millisecond), Backup: true},
			}
		},
		Revive: func() SubflowSpec {
			return SubflowSpec{Path: wifiPath("revived", 6e6, 5*time.Millisecond)}
		},
		ReviveAt:  8 * time.Second,
		SendBytes: 2 << 20,
	},
	"meltdown": {
		Name: "meltdown",
		Desc: "bursty loss + flaps + reorder/duplication + subflow death, combined",
		Paths: func() []SubflowSpec {
			storm := netsim.ChaosSpec{
				Burst: &netsim.GilbertElliott{
					PGood: 0.002, PBad: 0.25, PGoodToBad: 0.01, PBadToGood: 0.3,
				},
				Flap: &netsim.Flap{
					FirstDownAt: time.Second,
					DownFor:     300 * time.Millisecond,
					UpFor:       1700 * time.Millisecond,
				},
				DupProb:     0.02,
				ReorderProb: 0.04,
				Jitter:      4 * time.Millisecond,
			}
			dying := netsim.ChaosSpec{Blackout: &netsim.BlackoutLoss{From: 2 * time.Second}}
			return []SubflowSpec{
				{Path: storm.Apply(wifiPath("storm", 3e6, 12*time.Millisecond))},
				{Path: dying.Apply(wifiPath("dying", 4e6, 6*time.Millisecond))},
				{Path: wifiPath("steady", 800e3, 50*time.Millisecond), Backup: true},
			}
		},
		Revive: func() SubflowSpec {
			return SubflowSpec{Path: wifiPath("revived", 4e6, 6*time.Millisecond)}
		},
		ReviveAt:  10 * time.Second,
		SendBytes: 4 << 20,
	},
}

// ChaosScenarioNames returns the registry keys, sorted.
func ChaosScenarioNames() []string {
	names := make([]string, 0, len(ChaosScenarios))
	for name := range ChaosScenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
