package mptcp

import (
	"math/rand"
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

// adversarialExec plays a hostile scheduler against one snapshot: it
// pops packets and then abandons, pushes, or drops them at random —
// including pushes without a preceding pop, drops of never-transmitted
// data, and redundant re-pushes — so applyActions has to exercise
// every commit and restore path, in particular the seq-ordered
// reinsertion of popped-but-unconsumed packets.
func adversarialExec(env *runtime.Env, rng *rand.Rand) {
	type visible struct {
		v *runtime.PacketView
		q runtime.QueueID
	}
	var views []visible
	for _, id := range []runtime.QueueID{runtime.QueueSend, runtime.QueueUnacked, runtime.QueueReinject} {
		q := env.Queue(id)
		if q == nil {
			continue
		}
		for i := q.NextVisible(-1); i >= 0; i = q.NextVisible(i) {
			views = append(views, visible{v: q.At(i), q: id})
		}
	}
	sbfs := env.SubflowViews
	// Shuffle so pops/pushes are not issued in queue order.
	rng.Shuffle(len(views), func(i, j int) { views[i], views[j] = views[j], views[i] })
	for n, ent := range views {
		if n >= 48 { // bound per-round work on large queues
			break
		}
		switch rng.Intn(7) {
		case 0, 1: // pop and abandon → must be restored in seq order
			env.Pop(ent.q, ent.v)
		case 2: // pop then push
			env.Pop(ent.q, ent.v)
			if len(sbfs) > 0 {
				env.Push(sbfs[rng.Intn(len(sbfs))], ent.v)
			}
		case 3: // push without a pop (actions are independent)
			if len(sbfs) > 0 {
				env.Push(sbfs[rng.Intn(len(sbfs))], ent.v)
			}
		case 4: // pop then drop
			env.Pop(ent.q, ent.v)
			env.Drop(ent.v)
		case 5: // drop in place; never-sent data must bounce back to Q
			env.Drop(ent.v)
		default: // leave it alone
		}
	}
}

// checkQueueInvariants asserts, after one applyActions pass, the
// structural invariants the scheduling substrate promises regardless
// of scheduler behaviour: internally consistent packet lists, strict
// sequence ordering for Q and QU (the sorted inserts binary-search, so
// a single out-of-order restore would corrupt them), Q/QU
// disjointness, no acknowledged packet lingering in a queue, and byte
// conservation — every unacked segment reachable from a queue or an
// in-flight transmission record.
func checkQueueInvariants(t *testing.T, c *Conn, round int) {
	t.Helper()
	lists := []struct {
		name   string
		l      *packetList
		sorted bool
	}{
		{"Q", c.sendQ, true},
		{"QU", c.unackedQ, true},
		{"RQ", c.reinjectQ, false}, // RQ is loss-ordered, not seq-ordered
	}
	for _, ent := range lists {
		if len(ent.l.in) != len(ent.l.pkts) {
			t.Fatalf("round %d: %s membership map has %d entries for %d packets",
				round, ent.name, len(ent.l.in), len(ent.l.pkts))
		}
		seen := make(map[*Packet]bool, len(ent.l.pkts))
		for i, p := range ent.l.pkts {
			if seen[p] {
				t.Fatalf("round %d: %s holds seq %d twice", round, ent.name, p.Seq)
			}
			seen[p] = true
			if !ent.l.in[p] {
				t.Fatalf("round %d: %s seq %d missing from membership map", round, ent.name, p.Seq)
			}
			if p.MetaAcked {
				t.Fatalf("round %d: %s holds acknowledged seq %d", round, ent.name, p.Seq)
			}
			if ent.sorted && i > 0 && ent.l.pkts[i-1].Seq >= p.Seq {
				t.Fatalf("round %d: %s out of order at %d: seq %d before seq %d",
					round, ent.name, i, ent.l.pkts[i-1].Seq, p.Seq)
			}
		}
	}
	for _, p := range c.sendQ.pkts {
		if c.unackedQ.contains(p) {
			t.Fatalf("round %d: seq %d in both Q and QU", round, p.Seq)
		}
	}
	inFlight := make(map[*Packet]bool)
	for _, s := range c.subflows {
		for _, rec := range s.outstanding {
			inFlight[rec.pkt] = true
		}
	}
	// A segment may legally vanish from the sender's queues before the
	// cumulative DATA_ACK covers it only once its data is safely at the
	// receiver (delivered in order, or buffered out of order awaiting
	// earlier sequence numbers).
	receiverHas := func(p *Packet) bool {
		if p.Seq < c.receiver.nextMetaSeq {
			return true
		}
		_, ok := c.receiver.oooMeta[p.Seq]
		return ok
	}
	for _, p := range c.pktBySeq {
		if p.MetaAcked {
			continue
		}
		if !c.sendQ.contains(p) && !c.unackedQ.contains(p) &&
			!c.reinjectQ.contains(p) && !inFlight[p] && !receiverHas(p) {
			t.Fatalf("round %d: unacked seq %d reachable from no queue, no in-flight record, and not at receiver",
				round, p.Seq)
		}
	}
}

// TestAdversarialActionsPreserveInvariants drives a connection through
// hundreds of randomized hostile scheduler executions — interleaved
// with real clock advances so transmissions complete and DATA_ACKs
// land — and checks the queue invariants after every single
// applyActions pass. It then hands the (by now thoroughly scrambled)
// connection to a well-behaved scheduler and requires exact
// exactly-once in-order delivery of every byte, proving the substrate
// lost nothing along the way.
func TestAdversarialActionsPreserveInvariants(t *testing.T) {
	eng := netsim.NewEngine(7)
	conn := NewConn(eng, Config{})
	for _, pc := range []netsim.PathConfig{
		{Name: "fast", Rate: netsim.ConstantRate(20e6), Delay: 5 * time.Millisecond},
		{Name: "slow", Rate: netsim.ConstantRate(5e6), Delay: 30 * time.Millisecond},
		{Name: "thin", Rate: netsim.ConstantRate(1e6), Delay: 60 * time.Millisecond},
	} {
		if _, err := conn.AddSubflow(SubflowConfig{Name: pc.Name, Link: netsim.NewLink(eng, pc)}); err != nil {
			t.Fatal(err)
		}
	}
	chk := NewConservationChecker(conn)
	eng.RunUntil(10 * time.Millisecond) // establish subflows

	rng := rand.New(rand.NewSource(20260805))
	total := 0
	send := func(n int) {
		conn.Send(n, int64(rng.Intn(3)))
		total += n
	}
	send(96 * 1460)

	const rounds = 400
	for round := 0; round < rounds; round++ {
		if round%37 == 0 {
			send(rng.Intn(16*1460) + 1)
		}
		env := conn.buildEnv()
		adversarialExec(env, rng)
		conn.applyActions(env)
		checkQueueInvariants(t, conn, round)
		if rng.Intn(3) == 0 {
			// Let transmissions drain and acknowledgements arrive so
			// later rounds see QU/RQ churn and meta-ack removals.
			eng.RunUntil(eng.Now() + time.Duration(rng.Intn(15)+1)*time.Millisecond)
			checkQueueInvariants(t, conn, round)
		}
	}

	// Recovery: a sane scheduler must be able to finish the transfer.
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendVM))
	conn.Kick()
	eng.RunUntil(eng.Now() + 120*time.Second)
	if !conn.AllAcked() {
		t.Fatalf("transfer wedged after adversarial phase: %d queued, %d unacked",
			conn.QueuedSegments(), conn.UnackedSegments())
	}
	if err := chk.Check(int64(total)); err != nil {
		t.Fatalf("conservation after adversarial scheduling: %v", err)
	}
}

// TestScheduleSteadyStateZeroAlloc pins the full per-trigger
// scheduling block — snapshot build, scheduler execution, action
// apply — at zero allocations once the connection's arena and
// scratch buffers are warm. The connection is parked in a state where
// the congestion window is exhausted (data queued, acks withheld), so
// every Kick runs a real execution over populated queues without
// transmitting; this is exactly the hot path the lazy snapshot arena
// exists for.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	eng := netsim.NewEngine(3)
	conn := NewConn(eng, Config{})
	for _, name := range []string{"a", "b"} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: name, Rate: netsim.ConstantRate(10e6), Delay: 20 * time.Millisecond,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: name, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	s := core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendVM)
	s.SetSynchronousSpecialization(true)
	conn.SetScheduler(s)
	eng.RunUntil(10 * time.Millisecond)

	// Fill both congestion windows; with the engine paused no acks
	// arrive, so subsequent executions select nothing and the pass is
	// pure snapshot + execute + (empty) apply.
	conn.Send(1<<20, 0)
	for i := 0; i < 64; i++ { // warm pools, specialization, scratch
		conn.Kick()
	}
	if n := testing.AllocsPerRun(200, conn.Kick); n != 0 {
		t.Fatalf("steady-state scheduling pass allocates %.1f times per trigger, want 0", n)
	}
}

// TestInstrumentedScheduleZeroAlloc is the metrics-on variant of
// TestScheduleSteadyStateZeroAlloc: with a registry attached, the
// scheduling block additionally reads the clock and feeds the
// conn.sched_exec_ns / conn.sched_apply_ns latency histograms, and must
// still allocate nothing per trigger.
func TestInstrumentedScheduleZeroAlloc(t *testing.T) {
	eng := netsim.NewEngine(4)
	conn := NewConn(eng, Config{})
	for _, name := range []string{"a", "b"} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: name, Rate: netsim.ConstantRate(10e6), Delay: 20 * time.Millisecond,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: name, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	s := core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendVM)
	s.SetSynchronousSpecialization(true)
	conn.SetScheduler(s)
	reg := obs.NewRegistry()
	conn.Instrument(nil, reg)
	eng.RunUntil(10 * time.Millisecond)

	conn.Send(1<<20, 0)
	for i := 0; i < 64; i++ {
		conn.Kick()
	}
	execs := reg.Counter("conn.sched_execs").Value()
	if n := testing.AllocsPerRun(200, conn.Kick); n != 0 {
		t.Fatalf("instrumented scheduling pass allocates %.1f times per trigger, want 0", n)
	}
	h := reg.Histogram("conn.sched_exec_ns")
	if h.Count() <= execs {
		t.Fatalf("exec latency histogram did not advance: count %d, execs before %d", h.Count(), execs)
	}
	if h.Quantile(0.50) <= 0 {
		t.Fatalf("exec latency p50 = %d, want > 0", h.Quantile(0.50))
	}
	if a := reg.Histogram("conn.sched_apply_ns"); a.Count() != h.Count() {
		t.Fatalf("apply histogram count %d != exec count %d", a.Count(), h.Count())
	}
}
