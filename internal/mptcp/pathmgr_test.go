package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

func TestPathManagerClosesDeadSubflow(t *testing.T) {
	eng := netsim.NewEngine(3)
	conn := NewConn(eng, Config{})
	// A silent blackout: the link keeps accepting data but delivers
	// nothing, so in-flight segments strand and only the missing
	// acknowledgement progress reveals the death.
	dying := netsim.NewLink(eng, netsim.PathConfig{
		Name:  "dying",
		Rate:  netsim.ConstantRate(3e6),
		Delay: 5 * time.Millisecond,
		Loss:  netsim.BlackoutLoss{From: 200 * time.Millisecond},
	})
	healthy := netsim.NewLink(eng, netsim.PathConfig{
		Name: "healthy", Rate: netsim.ConstantRate(3e6), Delay: 15 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(SubflowConfig{Name: "dying", Link: dying}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AddSubflow(SubflowConfig{Name: "healthy", Link: healthy}); err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled))
	pm := NewPathManager(conn, PathManagerConfig{DeadAfter: time.Second})

	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 8 << 20
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(60 * time.Second)

	if pm.ClosedByManager != 1 {
		t.Errorf("manager closed %d subflows, want 1", pm.ClosedByManager)
	}
	if !conn.subflows[0].Closed() {
		t.Errorf("dead subflow not closed")
	}
	if conn.subflows[1].Closed() {
		t.Errorf("healthy subflow closed")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d of %d after path death", chk.bytes, total)
	}
	if !conn.AllAcked() {
		t.Errorf("transfer not fully acked")
	}
}

func TestPathManagerLeavesHealthySubflowsAlone(t *testing.T) {
	eng, conn := buildConn(t, 1, Config{}, "minRTT",
		testNet{rate: 3e6, delay: 5 * time.Millisecond},
		testNet{rate: 3e6, delay: 15 * time.Millisecond},
	)
	pm := NewPathManager(conn, PathManagerConfig{DeadAfter: time.Second})
	eng.After(0, func() { conn.Send(2<<20, 0) })
	eng.RunUntil(30 * time.Second)
	if pm.ClosedByManager != 0 {
		t.Errorf("manager closed %d healthy subflows", pm.ClosedByManager)
	}
	if !conn.AllAcked() {
		t.Fatalf("transfer incomplete")
	}
}

func TestPathManagerIdleConnectionNotKilled(t *testing.T) {
	// No traffic at all: nothing has outstanding data, nothing dies.
	eng, conn := buildConn(t, 1, Config{}, "minRTT",
		testNet{rate: 3e6, delay: 5 * time.Millisecond},
	)
	pm := NewPathManager(conn, PathManagerConfig{DeadAfter: 500 * time.Millisecond})
	eng.RunUntil(10 * time.Second)
	if pm.ClosedByManager != 0 {
		t.Errorf("idle subflow killed")
	}
}

func TestPathManagerPromotesBackup(t *testing.T) {
	eng := netsim.NewEngine(3)
	conn := NewConn(eng, Config{})
	wifi := netsim.NewLink(eng, netsim.PathConfig{
		Name: "wifi",
		Rate: netsim.SteppedRate(
			netsim.Step{From: 0, Rate: 3e6},
			netsim.Step{From: 500 * time.Millisecond, Rate: 0},
		),
		Delay: 5 * time.Millisecond,
	})
	lte := netsim.NewLink(eng, netsim.PathConfig{
		Name: "lte", Rate: netsim.ConstantRate(6e6), Delay: 20 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(SubflowConfig{Name: "wifi", Link: wifi}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AddSubflow(SubflowConfig{Name: "lte", Link: lte, Backup: true}); err != nil {
		t.Fatal(err)
	}
	// minRTT never uses a backup while a preferred subflow exists, so
	// without promotion the transfer would wedge after the WiFi death.
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled))
	pm := NewPathManager(conn, PathManagerConfig{DeadAfter: time.Second, PromoteBackupOnDeath: true})

	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 2 << 20
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(60 * time.Second)

	if pm.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", pm.Promotions)
	}
	if conn.subflows[1].backup {
		t.Errorf("LTE still flagged backup after promotion")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d of %d; promotion failed to unblock the transfer", chk.bytes, total)
	}
}

func TestPathManagerStop(t *testing.T) {
	eng := netsim.NewEngine(1)
	conn := NewConn(eng, Config{})
	link := netsim.NewLink(eng, netsim.PathConfig{
		Name:  "dead",
		Rate:  netsim.SteppedRate(netsim.Step{From: 0, Rate: 1e6}, netsim.Step{From: 100 * time.Millisecond, Rate: 0}),
		Delay: time.Millisecond,
	})
	if _, err := conn.AddSubflow(SubflowConfig{Name: "dead", Link: link}); err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad("minRTT", schedlib.MinRTT, core.BackendCompiled))
	pm := NewPathManager(conn, PathManagerConfig{DeadAfter: 500 * time.Millisecond})
	pm.Stop()
	eng.After(0, func() { conn.Send(64<<10, 0) })
	eng.RunUntil(10 * time.Second)
	if pm.ClosedByManager != 0 {
		t.Errorf("stopped manager still acted")
	}
}
