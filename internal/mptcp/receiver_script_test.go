package mptcp

// Packetdrill-style receiver tests (§4.2: "We appreciated the use of
// packetdrill ... to extensively test the receiver side packet
// handling for incoming packet combinations"): crafted arrival scripts
// drive the receiver directly and assert exactly which segments reach
// the application, in which order, and when.

import (
	"testing"
	"time"

	"progmp/internal/netsim"
)

// arrival is one scripted segment arrival.
type arrival struct {
	at      time.Duration
	sbf     int
	sbfSeq  int64
	metaSeq int64
}

// delivery is one observed application-level delivery.
type delivery struct {
	metaSeq int64
	at      time.Duration
}

// runScript builds a two-subflow connection, injects the arrivals at
// their times, and returns the in-order deliveries.
func runScript(t *testing.T, mode ReceiverMode, script []arrival) ([]delivery, *Receiver) {
	t.Helper()
	eng := netsim.NewEngine(1)
	conn := NewConn(eng, Config{ReceiverMode: mode})
	for i := 0; i < 2; i++ {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Rate: netsim.ConstantRate(1e9), Delay: time.Microsecond,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: "s", Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	// Register the packets so meta DATA_ACK processing knows them.
	for _, a := range script {
		if conn.pktBySeq[a.metaSeq] == nil {
			conn.pktBySeq[a.metaSeq] = &Packet{Seq: a.metaSeq, Size: segSize}
		}
	}
	var out []delivery
	conn.Receiver().OnDeliver(func(seq int64, _ int, at time.Duration) {
		out = append(out, delivery{metaSeq: seq, at: at})
	})
	for _, a := range script {
		a := a
		eng.At(a.at, func() {
			conn.receiver.onData(conn.subflows[a.sbf], a.sbfSeq, a.metaSeq, segSize)
		})
	}
	eng.RunUntil(time.Second)
	return out, conn.receiver
}

const segSize = 1460

func seqs(ds []delivery) []int64 {
	out := make([]int64, len(ds))
	for i, d := range ds {
		out[i] = d.metaSeq
	}
	return out
}

func expectSeqs(t *testing.T, got []delivery, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", seqs(got), want)
	}
	for i, w := range want {
		if got[i].metaSeq != w {
			t.Fatalf("delivery %d = seq %d, want %d (full: %v)", i, got[i].metaSeq, w, seqs(got))
		}
	}
}

func TestScriptInOrderDelivery(t *testing.T) {
	for _, mode := range []ReceiverMode{ReceiverLegacy, ReceiverOptimized} {
		got, _ := runScript(t, mode, []arrival{
			{at: 1 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
			{at: 2 * time.Millisecond, sbf: 0, sbfSeq: 1, metaSeq: 1},
			{at: 3 * time.Millisecond, sbf: 0, sbfSeq: 2, metaSeq: 2},
		})
		expectSeqs(t, got, 0, 1, 2)
		for i, d := range got {
			want := time.Duration(i+1) * time.Millisecond
			if d.at != want {
				t.Errorf("mode %v: delivery %d at %v, want immediate %v", mode, i, d.at, want)
			}
		}
	}
}

func TestScriptMetaReorderAcrossSubflows(t *testing.T) {
	// metaSeq 1 arrives (on sbf1) before metaSeq 0 (on sbf0): both
	// receivers must hold 1 and release 0,1 together.
	for _, mode := range []ReceiverMode{ReceiverLegacy, ReceiverOptimized} {
		got, _ := runScript(t, mode, []arrival{
			{at: 1 * time.Millisecond, sbf: 1, sbfSeq: 0, metaSeq: 1},
			{at: 5 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
		})
		expectSeqs(t, got, 0, 1)
		if got[0].at != 5*time.Millisecond || got[1].at != 5*time.Millisecond {
			t.Errorf("mode %v: deliveries at %v/%v, want both at 5ms", mode, got[0].at, got[1].at)
		}
	}
}

// TestScriptLegacyHoldsCrossSubflowFill is the §4.2 pattern: a gap on
// subflow 0 is filled at the meta level via subflow 1, but the legacy
// receiver keeps subflow 0's later segments hostage until subflow 0's
// own retransmission arrives.
func TestScriptLegacyHoldsCrossSubflowFill(t *testing.T) {
	script := []arrival{
		{at: 1 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
		// sbf0's sbfSeq 1 (carrying metaSeq 1) is lost on the wire.
		{at: 2 * time.Millisecond, sbf: 0, sbfSeq: 2, metaSeq: 2},
		// Reinjection of metaSeq 1 arrives via sbf1.
		{at: 3 * time.Millisecond, sbf: 1, sbfSeq: 0, metaSeq: 1},
		// sbf0's subflow-level retransmission lands much later.
		{at: 50 * time.Millisecond, sbf: 0, sbfSeq: 1, metaSeq: 1},
	}

	opt, _ := runScript(t, ReceiverOptimized, script)
	expectSeqs(t, opt, 0, 1, 2)
	if opt[2].at != 3*time.Millisecond {
		t.Errorf("optimized receiver delivered metaSeq 2 at %v, want 3ms (as soon as the hole filled)", opt[2].at)
	}

	leg, rx := runScript(t, ReceiverLegacy, script)
	expectSeqs(t, leg, 0, 1, 2)
	if leg[2].at != 50*time.Millisecond {
		t.Errorf("legacy receiver delivered metaSeq 2 at %v, want 50ms (held behind the subflow gap)", leg[2].at)
	}
	if rx.HeldByLegacy == 0 {
		t.Errorf("legacy receiver did not count the held segment")
	}
}

func TestScriptDuplicateSuppression(t *testing.T) {
	for _, mode := range []ReceiverMode{ReceiverLegacy, ReceiverOptimized} {
		got, rx := runScript(t, mode, []arrival{
			{at: 1 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
			// Same subflow segment retransmitted (spurious).
			{at: 2 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
			// Redundant copy of the same meta data via the other subflow.
			{at: 3 * time.Millisecond, sbf: 1, sbfSeq: 0, metaSeq: 0},
			{at: 4 * time.Millisecond, sbf: 0, sbfSeq: 1, metaSeq: 1},
		})
		expectSeqs(t, got, 0, 1)
		if rx.DuplicateSegments == 0 {
			t.Errorf("mode %v: duplicates not counted", mode)
		}
	}
}

func TestScriptRedundantCopiesFirstWins(t *testing.T) {
	// The same meta data races over both subflows; whichever lands
	// first is delivered, the second is a duplicate (the redundant
	// scheduler's premise, §5.1).
	for _, mode := range []ReceiverMode{ReceiverLegacy, ReceiverOptimized} {
		got, _ := runScript(t, mode, []arrival{
			{at: 2 * time.Millisecond, sbf: 1, sbfSeq: 0, metaSeq: 0},
			{at: 9 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 0},
		})
		expectSeqs(t, got, 0)
		if got[0].at != 2*time.Millisecond {
			t.Errorf("mode %v: first copy must win, delivered at %v", mode, got[0].at)
		}
	}
}

func TestScriptWindowShrinksWhileHolding(t *testing.T) {
	// Out-of-order data held at the receiver must shrink the
	// advertised window.
	_, rx := runScript(t, ReceiverOptimized, []arrival{
		{at: 1 * time.Millisecond, sbf: 0, sbfSeq: 0, metaSeq: 5},
		{at: 2 * time.Millisecond, sbf: 0, sbfSeq: 1, metaSeq: 6},
	})
	full := int64(rx.rcvBuf)
	if got := rx.rwnd(); got >= full {
		t.Errorf("rwnd = %d, want < %d while holding out-of-order data", got, full)
	}
	if rx.oooBytes != 2*segSize {
		t.Errorf("oooBytes = %d, want %d", rx.oooBytes, 2*segSize)
	}
}

func TestScriptLegacySubflowHeldCountsAgainstWindow(t *testing.T) {
	_, rx := runScript(t, ReceiverLegacy, []arrival{
		// Subflow gap: sbfSeq 0 missing, 1..3 held at the subflow level.
		{at: 1 * time.Millisecond, sbf: 0, sbfSeq: 1, metaSeq: 1},
		{at: 2 * time.Millisecond, sbf: 0, sbfSeq: 2, metaSeq: 2},
		{at: 3 * time.Millisecond, sbf: 0, sbfSeq: 3, metaSeq: 3},
	})
	if got := rx.rwnd(); got >= int64(rx.rcvBuf) {
		t.Errorf("rwnd = %d must account for subflow-held segments", got)
	}
}

func TestScriptInterleavedBulk(t *testing.T) {
	// A braided arrival pattern across both subflows must still yield
	// exactly-once in-order delivery in both modes.
	var script []arrival
	at := time.Millisecond
	// Even meta seqs on sbf0, odd on sbf1, arrivals slightly shuffled.
	order := []int64{1, 0, 3, 2, 4, 6, 5, 8, 7, 9}
	sbfSeqNext := [2]int64{}
	for _, meta := range order {
		sbf := int(meta % 2)
		script = append(script, arrival{at: at, sbf: sbf, sbfSeq: sbfSeqNext[sbf], metaSeq: meta})
		sbfSeqNext[sbf]++
		at += 500 * time.Microsecond
	}
	for _, mode := range []ReceiverMode{ReceiverLegacy, ReceiverOptimized} {
		got, _ := runScript(t, mode, script)
		expectSeqs(t, got, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	}
}
