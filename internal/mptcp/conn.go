package mptcp

import (
	"fmt"
	"time"

	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/xstate"
)

// Scheduler is the execution interface of the scheduling block: one
// run against an environment snapshot. core.Scheduler (ProgMP programs
// on any back-end) and the native reference schedulers in package
// sched both implement it.
type Scheduler interface {
	// Exec runs one scheduler execution. The directive is a proof
	// obligation on every implementation: Conn.schedule invokes it on
	// the allocation-free hot path.
	//
	//progmp:hotpath
	Exec(env *runtime.Env)
}

// Config holds connection parameters.
type Config struct {
	// MSS is the maximum segment payload (default 1460).
	MSS int
	// CC is the congestion-control algorithm (default LIA).
	CC CongestionControl
	// RcvBuf is the receiver buffer bounding the receive window
	// (default 4 MiB).
	RcvBuf int
	// ReceiverMode selects the legacy two-level queue behaviour or the
	// optimized §4.2 receiver (default optimized).
	ReceiverMode ReceiverMode
	// MinRTO floors the retransmission timeout (default 200 ms).
	MinRTO time.Duration
	// InitialCwnd in segments (default 10).
	InitialCwnd float64
	// TSQLimitBytes is the TCP-small-queues transmit budget per
	// subflow (default 2 segments).
	TSQLimitBytes int
	// MaxSchedIterations bounds compressed executions per trigger
	// (default 4096). Setting it to 1 disables compressed executions
	// (ablation of the §4.1 optimization).
	MaxSchedIterations int
	// DisableTSQWake suppresses the TSQ-drain scheduler trigger so
	// scheduling becomes purely ACK-clocked (ablation of the trigger
	// model, Fig. 4).
	DisableTSQWake bool
	// Store attaches a cross-connection shared-state store: schedulers
	// gain the global registers G1..G8 and the per-destination path
	// statistics (XRTT, XLOST, XDELIVERED, XQUAR), and the connection
	// publishes its own RTT/loss/delivery observations keyed by subflow
	// name. Nil keeps the connection isolated — globals stay
	// connection-local and X-properties read 0.
	Store *xstate.Store
}

func (c *Config) applyDefaults() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.CC == nil {
		c.CC = LIA{}
	}
	if c.RcvBuf == 0 {
		c.RcvBuf = 4 << 20
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.TSQLimitBytes == 0 {
		c.TSQLimitBytes = 2 * c.MSS
	}
	if c.MaxSchedIterations == 0 {
		c.MaxSchedIterations = 4096
	}
}

// Conn is the sender-side meta socket of one MPTCP connection, wired
// to its receiver through the subflows' simulated links.
//
// Queue invariants presented to schedulers (pairwise disjoint views,
// §3.1): Q holds never-transmitted segments; QU holds transmitted,
// unacknowledged segments that are not reinjection candidates; RQ
// holds suspected-lost segments awaiting reinjection. A successful
// PUSH moves a segment out of Q (and out of RQ) automatically;
// cumulative DATA_ACKs remove segments from all queues.
type Conn struct {
	eng *netsim.Engine
	cfg Config
	cc  CongestionControl

	sched Scheduler
	regs  [runtime.NumRegisters]int64
	store *xstate.Store
	// destsReleased latches ReleaseDests so teardown paths may call it
	// from several places without double-releasing store references.
	destsReleased bool

	subflows []*Subflow
	receiver *Receiver

	sendQ     *packetList // Q
	unackedQ  *packetList // transmitted, un-DATA_ACKed (superset of RQ)
	reinjectQ *packetList // RQ

	nextSeq  int64
	cumAcked int64 // meta seq below which everything is acked
	rwnd     int64 // latest advertised receive window (bytes)
	// Sequence-space window accounting (bytes): ackedOffset is the
	// stream offset below which everything is cumulatively acked;
	// maxSentEnd is the end offset of the highest segment ever
	// transmitted. New data must satisfy
	// end - ackedOffset <= rwnd; retransmissions always fit.
	ackedOffset int64
	maxSentEnd  int64
	bytesQueued int64 // total bytes enqueued so far (next Offset)
	pktBySeq    map[int64]*Packet

	// Snapshot arena (§4.1): recycled environment, subflow views and
	// lazily-materialized queue views. The three sources feed the
	// arena's queues; lastNow and the last* version stamps decide when
	// a queue's materialized views survive into the next execution.
	arena     *runtime.Arena
	qSrc      pktSource
	quSrc     pktSource
	rqSrc     pktSource
	quSnap    []*Packet // QU minus RQ members, rebuilt only when stale
	snapValid bool
	lastNow   time.Duration
	lastQVer  uint64
	lastQUVer uint64
	lastRQVer uint64

	// applyActions bookkeeping, recycled across passes.
	applyGen   uint64
	popScratch []popEntry

	scheduling   bool
	schedPending bool
	// Scheduler swap deferred to the execution boundary (see
	// SetScheduler): applied at the top of the next schedule iteration
	// so no execution observes a half-installed program.
	pendingSched    Scheduler
	hasPendingSched bool

	// Observability (nil when not instrumented; every handle below is
	// nil-safe, so the uninstrumented data path pays one nil check).
	tracer  *obs.Tracer
	connID  int32
	curExec uint64 // scheduler execution id during schedule(); 0 outside

	metricsReg *obs.Registry
	mExecs     *obs.Counter
	mPushes    *obs.Counter
	mPops      *obs.Counter
	mDrops     *obs.Counter
	mReinjects *obs.Counter
	mAcks      *obs.Counter
	mEnqueued  *obs.Counter
	mRegOOB    *obs.Counter
	// Hot-path latency histograms (ns): scheduler execution and action
	// application. Timed only when resolved, so the uninstrumented path
	// pays one nil check and no clock reads.
	mExecNS  *obs.Histogram
	mApplyNS *obs.Histogram

	// Stats.
	SchedulerExecutions int64
	TotalEnqueued       int64
	onAllAcked          func()
}

// NewConn creates a connection with its receiver.
func NewConn(eng *netsim.Engine, cfg Config) *Conn {
	cfg.applyDefaults()
	c := &Conn{
		eng:       eng,
		cfg:       cfg,
		cc:        cfg.CC,
		sendQ:     newPacketList(),
		unackedQ:  newPacketList(),
		reinjectQ: newPacketList(),
		pktBySeq:  make(map[int64]*Packet),
		rwnd:      int64(cfg.RcvBuf),
	}
	c.arena = runtime.NewArena(&c.regs)
	c.receiver = newReceiver(c, cfg.ReceiverMode, cfg.RcvBuf)
	c.store = cfg.Store
	return c
}

// Store returns the attached shared-state store (nil when detached).
func (c *Conn) Store() *xstate.Store { return c.store }

// Engine returns the simulation engine.
func (c *Conn) Engine() *netsim.Engine { return c.eng }

// Config returns the connection configuration.
func (c *Conn) Config() Config { return c.cfg }

// Receiver returns the peer model.
func (c *Conn) Receiver() *Receiver { return c.receiver }

// Instrument attaches decision tracing and/or a metrics registry to
// the connection. Either argument may be nil to leave that facility
// off. Call it before traffic starts; handles are resolved once here
// (and in AddSubflow for later subflows) so the data path never does
// registry lookups. Multiple connections may share a tracer and a
// registry — events carry a per-tracer connection id, and metric
// names are namespaced per connection when an id is assigned.
func (c *Conn) Instrument(t *obs.Tracer, reg *obs.Registry) {
	c.tracer = t
	c.connID = t.RegisterConn()
	c.metricsReg = reg
	if reg != nil {
		c.mExecs = reg.Counter("conn.sched_execs")
		c.mPushes = reg.Counter("conn.pushes")
		c.mPops = reg.Counter("conn.pops")
		c.mDrops = reg.Counter("conn.drops")
		c.mReinjects = reg.Counter("conn.reinjects")
		c.mAcks = reg.Counter("conn.acks")
		c.mEnqueued = reg.Counter("conn.enqueued_segments")
		c.mRegOOB = reg.Counter("api.register_oob")
		c.mExecNS = reg.Histogram("conn.sched_exec_ns")
		c.mApplyNS = reg.Histogram("conn.sched_apply_ns")
		c.receiver.instrument(reg)
		for _, s := range c.subflows {
			s.instrument(reg)
		}
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Conn) Tracer() *obs.Tracer { return c.tracer }

// TraceConnID returns the connection id assigned by the attached tracer
// (0 when tracing is off), so auxiliary instruments — e.g. a scheduler
// supervisor — can label their events with the same identity.
func (c *Conn) TraceConnID() int32 { return c.connID }

// Kick triggers a scheduling pass outside the normal trigger model.
// Supervision watchdogs use it to re-drive a connection whose scheduler
// went quiet with work pending (no ACK clock left to trigger it).
func (c *Conn) Kick() { c.schedule() }

// Metrics returns the attached metrics registry (nil when off).
func (c *Conn) Metrics() *obs.Registry { return c.metricsReg }

// trace records one event with the connection's identity and the
// current scheduler execution id. The tracing-off cost is this nil
// check.
func (c *Conn) trace(kind obs.EventKind, sbf int32, seq, aux int64, site int32) {
	if c.tracer == nil {
		return
	}
	c.tracer.Record(obs.Event{
		At:   c.eng.Now(),
		Kind: kind,
		Conn: c.connID,
		Exec: c.curExec,
		Sbf:  sbf,
		Seq:  seq,
		Aux:  aux,
		Site: site,
	})
}

// SetScheduler installs the scheduling block. It is safe at any time,
// including mid-transfer: a swap requested while a scheduling pass is
// executing is deferred and applied atomically at the next execution
// boundary, so no execution ever observes a half-installed program.
// Replacing a running scheduler emits a SCHED_SWAP trace event and
// immediately triggers a scheduling pass under the new program. (The
// paper exposes scheduler choice per connection, §3.2; the control
// plane extends it to live hot-swap, see internal/ctl.)
func (c *Conn) SetScheduler(s Scheduler) {
	if c.scheduling {
		c.pendingSched = s
		c.hasPendingSched = true
		c.schedPending = true
		return
	}
	swapped := c.sched != nil && s != nil && c.sched != s
	c.sched = s
	if swapped {
		c.trace(obs.EvSchedSwap, -1, -1, 0, 0)
		c.schedule()
	}
}

// applyPendingSched commits a deferred scheduler swap at an execution
// boundary inside schedule().
func (c *Conn) applyPendingSched() {
	prev := c.sched
	c.sched = c.pendingSched
	c.pendingSched = nil
	c.hasPendingSched = false
	if prev != nil && c.sched != nil && prev != c.sched {
		c.trace(obs.EvSchedSwap, -1, -1, 1, 0)
	}
}

// NoteSchedSwap records a SCHED_SWAP trace event for scheduler
// replacements applied inside a wrapper the connection cannot observe
// through SetScheduler — e.g. a guard.Supervisor retargeting its
// supervised program during a control-plane hot-swap.
func (c *Conn) NoteSchedSwap() { c.trace(obs.EvSchedSwap, -1, -1, 2, 0) }

// SetRegister writes a scheduler register through the extended
// scheduling API (§3.2) and triggers a scheduling pass so the new
// intent takes effect immediately. An out-of-range index is rejected
// with an error (and counted as api.register_oob when a metrics
// registry is attached).
func (c *Conn) SetRegister(i int, v int64) error {
	if i < 0 || i >= runtime.NumRegisters {
		c.mRegOOB.Add(1)
		return fmt.Errorf("mptcp: register index %d out of range [0, %d)", i, runtime.NumRegisters)
	}
	c.regs[i] = v
	c.schedule()
	return nil
}

// Register reads a scheduler register.
func (c *Conn) Register(i int) int64 {
	if i < 0 || i >= runtime.NumRegisters {
		return 0
	}
	return c.regs[i]
}

// AddSubflow registers a subflow; the path manager establishes it at
// cfg.StartAt.
func (c *Conn) AddSubflow(cfg SubflowConfig) (*Subflow, error) {
	if len(c.subflows) >= runtime.MaxSubflows {
		return nil, fmt.Errorf("mptcp: subflow limit %d reached", runtime.MaxSubflows)
	}
	if cfg.Link == nil {
		return nil, fmt.Errorf("mptcp: subflow %q has no link", cfg.Name)
	}
	initialCwnd := cfg.InitialCwnd
	if initialCwnd == 0 {
		initialCwnd = c.cfg.InitialCwnd
	}
	s := &Subflow{
		id:            len(c.subflows),
		name:          cfg.Name,
		conn:          c,
		link:          cfg.Link,
		backup:        cfg.Backup,
		cwnd:          initialCwnd,
		ssthresh:      1 << 20, // effectively unbounded until first loss
		highestSacked: -1,
		destID:        -1,
	}
	if c.store != nil {
		// Destination identity is the subflow name: connections sharing a
		// path (same name) aggregate their observations into one record.
		name := cfg.Name
		if name == "" {
			name = fmt.Sprintf("sbf%d", s.id)
		}
		s.destID = c.store.DestID(name)
	}
	c.subflows = append(c.subflows, s)
	c.receiver.addSubflow()
	if c.metricsReg != nil {
		s.instrument(c.metricsReg)
	}
	c.eng.At(cfg.StartAt, s.establish)
	return s, nil
}

// Subflows returns all subflows (including closed ones; check
// Established/Closed).
func (c *Conn) Subflows() []*Subflow { return c.subflows }

// Send enqueues n bytes with the given per-packet scheduling intent
// (§3.2 packet properties), split into MSS-sized segments, and
// triggers the scheduler (Fig. 4: packets arrive in Q).
func (c *Conn) Send(n int, prop int64) {
	now := c.eng.Now()
	firstSeq, bytes := c.nextSeq, int64(n)
	for n > 0 {
		size := c.cfg.MSS
		if n < size {
			size = n
		}
		n -= size
		pkt := &Packet{
			Seq:        c.nextSeq,
			Size:       size,
			Offset:     c.bytesQueued,
			Prop:       prop,
			EnqueuedAt: now,
		}
		c.bytesQueued += int64(size)
		c.nextSeq++
		c.pktBySeq[pkt.Seq] = pkt
		c.sendQ.pushBack(pkt)
		c.TotalEnqueued++
	}
	c.mEnqueued.Add(c.nextSeq - firstSeq)
	c.trace(obs.EvEnqueue, -1, firstSeq, bytes, 0)
	c.schedule()
}

// QueuedSegments returns the Q length.
func (c *Conn) QueuedSegments() int { return c.sendQ.len() }

// UnackedSegments returns the number of transmitted, unacked segments.
func (c *Conn) UnackedSegments() int { return c.unackedQ.len() }

// AllAcked reports whether every enqueued byte has been cumulatively
// acknowledged.
func (c *Conn) AllAcked() bool {
	return c.sendQ.len() == 0 && c.unackedQ.len() == 0 && c.nextSeq > 0
}

// OnAllAcked registers a callback fired when the send buffer fully
// drains (used for flow-completion-time measurements).
func (c *Conn) OnAllAcked(fn func()) { c.onAllAcked = fn }

// ReleaseDests drops the connection's shared-store destination
// references (one per subflow, acquired at AddSubflow). Call it when
// the connection finishes: the store only evicts idle per-destination
// records once every referencing connection has released them, so a
// fleet that retires connections without releasing leaks dest records
// across churn. Idempotent; a no-op without an attached store.
//
//progmp:deterministic
func (c *Conn) ReleaseDests() {
	if c.store == nil || c.destsReleased {
		return
	}
	c.destsReleased = true
	for _, s := range c.subflows {
		if s.destID >= 0 {
			c.store.ReleaseDest(s.destID)
		}
	}
}

// rwndFreeBytes is the remaining receive window for new data:
// advertised window minus the sequence space already in use between
// the cumulative ACK and the highest transmitted byte.
func (c *Conn) rwndFreeBytes() int64 {
	used := c.maxSentEnd - c.ackedOffset
	free := c.rwnd - used
	if free < 0 {
		free = 0
	}
	return free
}

// withinWindow reports whether transmitting pkt respects the receive
// window. Segments at or below the current send frontier are
// retransmissions of in-window data and always pass (TCP window
// semantics are sequence space, not bytes in flight).
func (c *Conn) withinWindow(pkt *Packet) bool {
	end := pkt.Offset + int64(pkt.Size)
	if end <= c.maxSentEnd {
		return true
	}
	return end-c.ackedOffset <= c.rwnd
}

// noteTransmitted advances the send frontier.
func (c *Conn) noteTransmitted(pkt *Packet) {
	if end := pkt.Offset + int64(pkt.Size); end > c.maxSentEnd {
		c.maxSentEnd = end
	}
}

// inFlightElsewhere reports whether pkt has an outstanding
// transmission on a live subflow other than except.
func (c *Conn) inFlightElsewhere(pkt *Packet, except *Subflow) bool {
	for _, s := range c.subflows {
		if s == except || !s.usable() {
			continue
		}
		for _, rec := range s.outstanding {
			if rec.pkt == pkt {
				return true
			}
		}
	}
	return false
}

// returnToSendQ puts a no-longer-in-flight packet back into Q so any
// scheduler — including ones that never read RQ — will eventually
// deliver it.
func (c *Conn) returnToSendQ(pkt *Packet) {
	c.unackedQ.remove(pkt)
	c.reinjectQ.remove(pkt)
	c.insertSendQ(pkt)
	c.schedule()
}

// addReinject queues pkt for reinjection (it joins RQ unless already
// acked) and triggers the scheduler (Fig. 4: loss events).
func (c *Conn) addReinject(pkt *Packet) {
	if pkt.MetaAcked {
		return
	}
	if c.reinjectQ.pushBack(pkt) {
		c.mReinjects.Add(1)
		c.trace(obs.EvReinject, -1, pkt.Seq, 0, 0)
	}
	c.schedule()
}

// onSubflowEstablished fires the scheduler (Fig. 4: subflow events).
func (c *Conn) onSubflowEstablished(s *Subflow) {
	c.trace(obs.EvSbfUp, int32(s.id), -1, 0, 0)
	c.schedule()
}

// onSubflowClosed fires the scheduler after a subflow teardown.
func (c *Conn) onSubflowClosed(s *Subflow) {
	c.trace(obs.EvSbfDown, int32(s.id), -1, 0, 0)
	c.schedule()
}

// onAck processes the meta-level part of an acknowledgement: the
// cumulative DATA_ACK removes packets from all queues (§3.1), and the
// advertised window is refreshed. It then triggers the scheduler.
func (c *Conn) onAck(metaCumAck int64, rwnd int64, s *Subflow) {
	c.rwnd = rwnd
	c.mAcks.Add(1)
	c.trace(obs.EvAck, int32(s.id), -1, metaCumAck, 0)
	if metaCumAck > c.cumAcked {
		for seq := c.cumAcked; seq < metaCumAck; seq++ {
			pkt := c.pktBySeq[seq]
			if pkt == nil {
				continue
			}
			pkt.MetaAcked = true
			if end := pkt.Offset + int64(pkt.Size); end > c.ackedOffset {
				c.ackedOffset = end
			}
			c.unackedQ.remove(pkt)
			c.reinjectQ.remove(pkt)
			c.sendQ.remove(pkt)
		}
		c.cumAcked = metaCumAck
		if c.AllAcked() && c.onAllAcked != nil {
			cb := c.onAllAcked
			c.onAllAcked = nil
			cb()
		}
	}
	c.schedule()
}

// schedule runs the scheduling block: build a snapshot, execute, apply
// the action queue, and repeat while the scheduler makes progress
// (compressed executions, §4.1). Reentrant triggers coalesce.
//
// The zero-alloc contract (docs/PERFORMANCE.md) covers snapshot build,
// scheduler execution and action application; transmission
// (Subflow.transmit) and the epoch publish (Store.SetGlobals) sit
// outside it and are suppressed below with reasons.
//
//progmp:hotpath
func (c *Conn) schedule() {
	if c.sched == nil {
		return
	}
	if c.scheduling {
		c.schedPending = true
		return
	}
	c.scheduling = true
	defer func() {
		c.scheduling = false
		// A swap requested in the final iteration still lands before
		// the pass returns (the execution boundary).
		if c.hasPendingSched {
			c.applyPendingSched()
		}
	}()
	for iter := 0; iter < c.cfg.MaxSchedIterations; iter++ {
		if c.hasPendingSched {
			c.applyPendingSched()
			if c.sched == nil {
				return
			}
		}
		c.schedPending = false
		env := c.buildEnv()
		if c.tracer != nil {
			c.curExec = c.tracer.NextExecID()
			c.trace(obs.EvExecStart, -1, -1, int64(iter), 0)
		}
		var progress bool
		if c.mExecNS != nil {
			// time.Now/Since are allocation-free, so the instrumented
			// hot path stays 0 allocs/op (benchmark-gated).
			t0 := time.Now()
			c.sched.Exec(env)
			c.mExecNS.Observe(int64(time.Since(t0)))
			c.SchedulerExecutions++
			c.mExecs.Add(1)
			t1 := time.Now()
			progress = c.applyActions(env)
			c.mApplyNS.Observe(int64(time.Since(t1)))
		} else {
			c.sched.Exec(env)
			c.SchedulerExecutions++
			c.mExecs.Add(1)
			progress = c.applyActions(env)
		}
		if c.tracer != nil {
			c.trace(obs.EvExecEnd, -1, -1, int64(len(env.Actions)), 0)
			c.curExec = 0
		}
		if !progress && !c.schedPending {
			return
		}
	}
}

// pktSource materializes packet views from a substrate packet slice,
// frozen for one execution (the substrate only mutates in applyActions,
// after the execution finished).
type pktSource struct {
	pkts []*Packet
	now  time.Duration
}

// MaterializePacket fills v from packet i; every exported field is
// overwritten because views are recycled across executions.
func (s *pktSource) MaterializePacket(i int, v *runtime.PacketView) {
	p := s.pkts[i]
	v.Handle = runtime.PacketHandle(p.Seq + 1)
	v.SentOnMask = p.SentOnMask
	v.Ints[runtime.PktSize] = int64(p.Size)
	v.Ints[runtime.PktSeq] = p.Seq
	v.Ints[runtime.PktProp] = p.Prop
	v.Ints[runtime.PktSentCount] = int64(p.SentCount)
	v.Ints[runtime.PktAgeUS] = (s.now - p.EnqueuedAt).Microseconds()
	if p.SentCount > 0 {
		v.Ints[runtime.PktLastSentUS] = (s.now - p.LastSentAt).Microseconds()
	} else {
		v.Ints[runtime.PktLastSentUS] = -1
	}
}

// buildEnv snapshots the scheduling environment (§3.1). Properties are
// immutable for the execution; side effects are collected in the action
// queue. The snapshot is allocation-free in steady state: views live in
// the connection's arena and materialize lazily as the scheduler
// touches them, and a queue whose substrate is unchanged since the
// previous execution (same membership and properties — tracked by the
// packetList version counters — at the same clock) keeps its
// materialized views entirely.
func (c *Conn) buildEnv() *runtime.Env {
	now := c.eng.Now()
	sameClock := c.snapValid && now == c.lastNow
	rwndFree := c.rwndFreeBytes()

	// One epoch-consistent store snapshot per execution: every X-property
	// and global read below sees the same coherent version. The load is a
	// single atomic pointer read — no locks, no allocations.
	var snap *xstate.Snapshot
	if c.store != nil {
		snap = c.store.Load()
	}

	// Subflow views are small and volatile (cwnd, RTT, in-flight move
	// with every event), so they are always refilled.
	n := 0
	for _, s := range c.subflows {
		if s.usable() {
			n++
		}
	}
	views := c.arena.BindSubflows(n)
	i := 0
	for _, s := range c.subflows {
		if !s.usable() {
			continue
		}
		v := views[i]
		i++
		*v = runtime.SubflowView{
			Handle:        runtime.SubflowHandle(s.id + 1),
			RWndFreeBytes: rwndFree,
		}
		v.Ints[runtime.SbfID] = int64(s.id)
		v.Ints[runtime.SbfRTT] = s.srtt.Microseconds()
		v.Ints[runtime.SbfRTTAvg] = s.avgRTT().Microseconds()
		v.Ints[runtime.SbfRTTVar] = s.rttvar.Microseconds()
		v.Ints[runtime.SbfCwnd] = int64(s.cwnd)
		v.Ints[runtime.SbfSkbsInFlight] = s.wireInFlight()
		v.Ints[runtime.SbfQueued] = s.queuedSegments()
		v.Ints[runtime.SbfThroughput] = s.Throughput()
		v.Ints[runtime.SbfMSS] = int64(c.cfg.MSS)
		v.Ints[runtime.SbfLostSkbs] = s.lostPending()
		v.Ints[runtime.SbfRTO] = s.currentRTO().Microseconds()
		v.Bools[runtime.SbfLossy] = s.inRecovery
		v.Bools[runtime.SbfTSQThrottled] = s.tsqThrottled()
		v.Bools[runtime.SbfIsBackup] = s.backup
		v.Ints[runtime.SbfLinkQueued] = int64(s.link.Fwd.QueuedBytes())
		if snap != nil {
			if d := snap.Stats(s.destID); d != nil {
				v.Ints[runtime.SbfXRTT] = d.SRTTUS
				v.Ints[runtime.SbfXLost] = d.Lost
				v.Ints[runtime.SbfXDelivered] = d.Delivered
				v.Ints[runtime.SbfXQuar] = d.Quarantines
			}
		}
	}

	c.qSrc = pktSource{pkts: c.sendQ.pkts, now: now}
	c.arena.BindQueue(runtime.QueueSend, &c.qSrc,
		len(c.sendQ.pkts), sameClock && c.lastQVer == c.sendQ.ver)

	// QU excludes reinjection candidates (pairwise disjoint views,
	// §3.1), so its filtered membership depends on both QU and RQ.
	reuseQU := sameClock && c.lastQUVer == c.unackedQ.ver && c.lastRQVer == c.reinjectQ.ver
	if !reuseQU {
		c.quSnap = c.quSnap[:0]
		for _, p := range c.unackedQ.pkts {
			if !c.reinjectQ.contains(p) {
				//progmp:ignore hotpath amortized: quSnap capacity is retained across executions
				c.quSnap = append(c.quSnap, p)
			}
		}
	}
	c.quSrc = pktSource{pkts: c.quSnap, now: now}
	c.arena.BindQueue(runtime.QueueUnacked, &c.quSrc, len(c.quSnap), reuseQU)

	c.rqSrc = pktSource{pkts: c.reinjectQ.pkts, now: now}
	c.arena.BindQueue(runtime.QueueReinject, &c.rqSrc,
		len(c.reinjectQ.pkts), sameClock && c.lastRQVer == c.reinjectQ.ver)

	c.lastNow = now
	c.lastQVer = c.sendQ.ver
	c.lastQUVer = c.unackedQ.ver
	c.lastRQVer = c.reinjectQ.ver
	c.snapValid = true

	c.arena.BeginExec()
	env := c.arena.Env()
	if snap != nil {
		// Seed the execution-local global file from the store snapshot.
		// Without a store the arena array persists across executions, so
		// globals degrade to connection-local registers.
		*env.Globals = snap.Globals
	}
	return env
}

// popEntry records one committed POP for the restore pass.
type popEntry struct {
	pkt *Packet
	q   runtime.QueueID
}

// applyActions commits the execution's action queue to the connection
// state and reports whether the scheduler made progress (transmitted
// or deliberately dropped something).
func (c *Conn) applyActions(env *runtime.Env) bool {
	pops := c.popScratch[:0]
	c.applyGen++
	gen := c.applyGen
	progress := false
	for _, a := range env.Actions {
		switch a.Kind {
		case runtime.ActionPop:
			pkt := c.pktOf(a.Packet)
			if pkt == nil || pkt.MetaAcked {
				continue
			}
			if c.queueList(a.Queue).remove(pkt) {
				//progmp:ignore hotpath amortized: popScratch capacity is retained across executions
				pops = append(pops, popEntry{pkt: pkt, q: a.Queue})
				c.mPops.Add(1)
				c.trace(obs.EvPop, -1, pkt.Seq, int64(a.Queue), a.Site)
			}
		case runtime.ActionPush:
			pkt := c.pktOf(a.Packet)
			sbf := c.sbfOf(a.Subflow)
			if pkt == nil || sbf == nil {
				continue
			}
			if pkt.MetaAcked {
				pkt.consumedGen = gen
				continue
			}
			//progmp:ignore hotpath transmission is outside the zero-alloc contract (docs/PERFORMANCE.md): it crosses into the netsim path and the peer's receive path
			if sbf.transmit(pkt) {
				progress = true
				pkt.consumedGen = gen
				// A transmitted segment leaves Q and RQ and is
				// tracked as unacknowledged. The transmission also
				// mutated packet properties (SentOnMask, SentCount),
				// so QU views are stale even when membership did not
				// change (a redundant re-push of an in-flight
				// segment); bump the version unconditionally.
				c.sendQ.remove(pkt)
				c.reinjectQ.remove(pkt)
				c.insertUnacked(pkt)
				c.unackedQ.ver++
				c.mPushes.Add(1)
				c.trace(obs.EvPush, int32(sbf.id), pkt.Seq, int64(pkt.Size), a.Site)
			}
		case runtime.ActionDrop:
			pkt := c.pktOf(a.Packet)
			if pkt == nil {
				continue
			}
			pkt.consumedGen = gen
			removed := c.sendQ.remove(pkt) || c.reinjectQ.remove(pkt)
			if pkt.SentCount == 0 && !c.unackedQ.contains(pkt) && !pkt.MetaAcked {
				// Dropping never-transmitted data would lose bytes of
				// the stream; reinsert (packets must not be lost by
				// design, §3.3) and count no progress for it.
				c.insertSendQ(pkt)
			} else if removed {
				progress = true
				c.mDrops.Add(1)
				c.trace(obs.EvDrop, -1, pkt.Seq, 0, a.Site)
			}
		}
	}
	// Popped packets that were neither pushed nor dropped return to
	// their queue (graceful: no packet loss on scheduler mistakes).
	// Reinsertion is by sequence number for every queue: Q and QU are
	// seq-sorted invariantly (their sorted inserts binary-search), and
	// a front-insert into the middle pop's former queue would silently
	// break that ordering.
	for _, e := range pops {
		if e.pkt.consumedGen == gen || e.pkt.MetaAcked {
			continue
		}
		c.queueList(e.q).insertBySeq(e.pkt)
	}
	c.popScratch = pops[:0]
	// Publish the execution's GSET writes as one batched epoch. Only the
	// dirty registers land, so concurrent connections writing disjoint
	// globals do not clobber each other.
	if c.store != nil {
		if dirty := env.DirtyGlobals(); dirty != 0 {
			//progmp:ignore hotpath epoch publish is outside the zero-alloc contract: SetGlobals clones a snapshot per epoch by design
			c.store.SetGlobals(dirty, env.Globals)
			env.ClearDirtyGlobals()
		}
	}
	return progress
}

// insertUnacked keeps QU ordered by meta sequence number.
func (c *Conn) insertUnacked(pkt *Packet) {
	c.unackedQ.insertBySeq(pkt)
}

// insertSendQ reinserts pkt into Q in sequence order.
func (c *Conn) insertSendQ(pkt *Packet) {
	c.sendQ.insertBySeq(pkt)
}

func (c *Conn) pktOf(h runtime.PacketHandle) *Packet {
	return c.pktBySeq[int64(h)-1]
}

func (c *Conn) sbfOf(h runtime.SubflowHandle) *Subflow {
	idx := int(h) - 1
	if idx < 0 || idx >= len(c.subflows) {
		return nil
	}
	return c.subflows[idx]
}

func (c *Conn) queueList(id runtime.QueueID) *packetList {
	switch id {
	case runtime.QueueSend:
		return c.sendQ
	case runtime.QueueUnacked:
		return c.unackedQ
	default:
		return c.reinjectQ
	}
}
