// Package sched provides native Go reference schedulers — the analogue
// of the kernel's hand-written C schedulers. They implement exactly
// the same semantics as their schedlib specifications, serving as the
// baseline for the overhead evaluation (Fig. 9: "We compare the
// execution times of the C-based default scheduler implementation with
// a semantically equivalent scheduler specified in our programming
// model") and as a differential oracle for the substrate tests.
package sched

import (
	"progmp/internal/runtime"
)

// available reports the canonical availability condition: not
// TSQ-throttled, not in loss state, congestion window not exhausted.
func available(s *runtime.SubflowView) bool {
	return !s.Bools[runtime.SbfTSQThrottled] &&
		!s.Bools[runtime.SbfLossy] &&
		s.Ints[runtime.SbfCwnd] > s.Ints[runtime.SbfSkbsInFlight]+s.Ints[runtime.SbfQueued]
}

// minRTTOf returns the view with minimal RTT among those passing keep,
// or nil.
func minRTTOf(views []*runtime.SubflowView, keep func(*runtime.SubflowView) bool) *runtime.SubflowView {
	var best *runtime.SubflowView
	for _, v := range views {
		//progmp:ignore hotpath callback literal is checked inline at each call site
		if keep != nil && !keep(v) {
			continue
		}
		if best == nil || v.Ints[runtime.SbfRTT] < best.Ints[runtime.SbfRTT] {
			best = v
		}
	}
	return best
}

// reinject performs the reinjection-first behaviour shared by the
// minRTT-derived schedulers (schedlib.ReinjectPrelude).
func reinject(env *runtime.Env) {
	top := env.ReinjectQ.Top()
	if top == nil {
		return
	}
	best := minRTTOf(env.SubflowViews, func(s *runtime.SubflowView) bool {
		return available(s) && !top.SentOn(s)
	})
	if best == nil {
		return
	}
	env.Pop(runtime.QueueReinject, top)
	env.Push(best, top)
}

// MinRTT is the native default scheduler (semantically equivalent to
// schedlib.MinRTT).
type MinRTT struct{}

// Exec runs one scheduling decision.
//
//progmp:hotpath
//progmp:deterministic
func (MinRTT) Exec(env *runtime.Env) {
	reinject(env)
	if env.SendQ.Empty() {
		return
	}
	anyNonBackup := false
	for _, s := range env.SubflowViews {
		if !s.Bools[runtime.SbfIsBackup] {
			anyNonBackup = true
			break
		}
	}
	var target *runtime.SubflowView
	if anyNonBackup {
		target = minRTTOf(env.SubflowViews, func(s *runtime.SubflowView) bool {
			return available(s) && !s.Bools[runtime.SbfIsBackup]
		})
	} else {
		target = minRTTOf(env.SubflowViews, available)
	}
	if target == nil {
		return
	}
	pkt := env.SendQ.Top()
	env.Pop(runtime.QueueSend, pkt)
	env.Push(target, pkt)
}

// RoundRobin is the native cyclic scheduler (semantically equivalent
// to schedlib.RoundRobin; the rotating index lives in R8).
type RoundRobin struct{}

// Exec runs one scheduling decision.
//
//progmp:hotpath
//progmp:deterministic
func (RoundRobin) Exec(env *runtime.Env) {
	// Select the k-th eligible subflow by scanning twice instead of
	// collecting eligibles into a slice: a per-execution []*SubflowView
	// here allocated on every decision (caught by progmp-analyze).
	var n int64
	for _, s := range env.SubflowViews {
		if !s.Bools[runtime.SbfTSQThrottled] && !s.Bools[runtime.SbfLossy] {
			n++
		}
	}
	const reg = 7 // R8
	if env.Reg(reg) >= n {
		env.SetReg(reg, 0)
	}
	if env.SendQ.Empty() {
		return
	}
	idx := env.Reg(reg)
	if n > 0 {
		want := ((idx % n) + n) % n
		var seen int64
		for _, s := range env.SubflowViews {
			if s.Bools[runtime.SbfTSQThrottled] || s.Bools[runtime.SbfLossy] {
				continue
			}
			if seen == want {
				if s.Ints[runtime.SbfCwnd] > s.Ints[runtime.SbfSkbsInFlight]+s.Ints[runtime.SbfQueued] {
					pkt := env.SendQ.Top()
					env.Pop(runtime.QueueSend, pkt)
					env.Push(s, pkt)
				}
				break
			}
			seen++
		}
	}
	env.SetReg(reg, idx+1)
}

// Redundant is the native full-redundancy scheduler (semantically
// equivalent to schedlib.Redundant).
type Redundant struct{}

// Exec runs one scheduling decision.
//
//progmp:hotpath
//progmp:deterministic
func (Redundant) Exec(env *runtime.Env) {
	for _, sbf := range env.SubflowViews {
		// The redundant scheduler gates on the congestion window only
		// (§5.1); TSQ is a default-scheduler refinement (footnote 2).
		if sbf.Bools[runtime.SbfLossy] || sbf.Ints[runtime.SbfCwnd] <= sbf.Ints[runtime.SbfSkbsInFlight]+sbf.Ints[runtime.SbfQueued] {
			continue
		}
		var unsent *runtime.PacketView
		env.UnackedQ.All(func(p *runtime.PacketView) bool {
			if !p.SentOn(sbf) {
				unsent = p
				return false
			}
			return true
		})
		if unsent != nil {
			env.Push(sbf, unsent)
			continue
		}
		fresh := env.SendQ.Top()
		if fresh != nil {
			env.Pop(runtime.QueueSend, fresh)
			env.Push(sbf, fresh)
		}
	}
}
