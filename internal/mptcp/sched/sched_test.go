package sched

import (
	"math/rand"
	"testing"

	"progmp/internal/core"
	"progmp/internal/envtest"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

// TestNativeMatchesDSL drives the native reference schedulers and
// their schedlib specifications through random environments and
// requires identical actions and registers — the "semantically
// equivalent" relation the paper's Fig. 9 comparison rests on.
func TestNativeMatchesDSL(t *testing.T) {
	pairs := []struct {
		name   string
		native interface{ Exec(*runtime.Env) }
		spec   string
	}{
		{"minRTT", MinRTT{}, schedlib.MinRTT},
		{"roundRobin", RoundRobin{}, schedlib.RoundRobin},
		{"redundant", Redundant{}, schedlib.Redundant},
	}
	for _, backend := range []core.Backend{core.BackendInterpreter, core.BackendCompiled, core.BackendVM} {
		for _, pair := range pairs {
			t.Run(pair.name+"/"+backend.String(), func(t *testing.T) {
				dsl := core.MustLoad(pair.name, pair.spec, backend)
				for seed := int64(0); seed < 300; seed++ {
					envN := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
					envD := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
					pair.native.Exec(envN)
					dsl.Exec(envD)
					if !envtest.SameActions(envN.Actions, envD.Actions) {
						t.Fatalf("seed %d: native and DSL diverge\nnative: %v\ndsl:    %v",
							seed, envN.Actions, envD.Actions)
					}
					if *envN.Regs != *envD.Regs {
						t.Fatalf("seed %d: register divergence\nnative: %v\ndsl:    %v",
							seed, *envN.Regs, *envD.Regs)
					}
				}
			})
		}
	}
}

func TestNativeMinRTTPicksFastAvailable(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 2, InFlight: 2}, // exhausted
			{ID: 1, RTT: 30000, Cwnd: 10},
			{ID: 2, RTT: 20000, Cwnd: 10, TSQ: true}, // throttled
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	MinRTT{}.Exec(env)
	if env.PushCount() != 1 {
		t.Fatalf("pushes = %d, want 1", env.PushCount())
	}
	if env.Actions[1].Subflow != env.SubflowViews[1].Handle {
		t.Errorf("picked wrong subflow")
	}
}

func TestNativeMinRTTServicesReinjectFirst(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10000, Cwnd: 10},
			{ID: 1, RTT: 30000, Cwnd: 10},
		},
		Q:  []envtest.PktSpec{{Seq: 5}},
		RQ: []envtest.PktSpec{{Seq: 2, SentOn: []int{0}}},
	}.Build()
	MinRTT{}.Exec(env)
	// First push must be the reinjection of seq 2 on subflow 1 (the
	// packet was lost on subflow 0).
	var pushes []runtime.Action
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush {
			pushes = append(pushes, a)
		}
	}
	if len(pushes) != 2 {
		t.Fatalf("pushes = %d, want reinject + fresh", len(pushes))
	}
	if pushes[0].Packet != runtime.PacketHandle(10002) || pushes[0].Subflow != env.SubflowViews[1].Handle {
		t.Errorf("reinjection wrong: %+v", pushes[0])
	}
}

func TestNativeRoundRobinCycles(t *testing.T) {
	var regs [runtime.NumRegisters]int64
	var targets []runtime.SubflowHandle
	for i := 0; i < 4; i++ {
		env := envtest.TwoSubflowEnv(1)
		*env.Regs = regs
		RoundRobin{}.Exec(env)
		regs = *env.Regs
		for _, a := range env.Actions {
			if a.Kind == runtime.ActionPush {
				targets = append(targets, a.Subflow)
			}
		}
	}
	if len(targets) != 4 {
		t.Fatalf("pushes = %d, want 4", len(targets))
	}
	if targets[0] == targets[1] || targets[0] != targets[2] || targets[1] != targets[3] {
		t.Errorf("round robin did not cycle: %v", targets)
	}
}

// TestNativeSchedulersZeroAlloc pins the //progmp:hotpath contract on
// the native reference schedulers: a steady-state execution allocates
// nothing. Regression: RoundRobin used to collect eligible subflows
// into a fresh slice per decision.
func TestNativeSchedulersZeroAlloc(t *testing.T) {
	scheds := []struct {
		name string
		s    interface{ Exec(*runtime.Env) }
	}{
		{"minRTT", MinRTT{}},
		{"roundRobin", RoundRobin{}},
		{"redundant", Redundant{}},
	}
	for _, tc := range scheds {
		t.Run(tc.name, func(t *testing.T) {
			env := envtest.EnvSpec{
				Subflows: []envtest.SbfSpec{
					{ID: 0, RTT: 10000, Cwnd: 8},
					{ID: 1, RTT: 30000, Cwnd: 8},
					{ID: 2, RTT: 20000, Cwnd: 8, TSQ: true},
				},
				Q:  []envtest.PktSpec{{Seq: 0}, {Seq: 1}},
				RQ: []envtest.PktSpec{{Seq: 2}},
			}.Build()
			tc.s.Exec(env) // warm-up sizes the action queue
			allocs := testing.AllocsPerRun(200, func() {
				env.Reset()
				tc.s.Exec(env)
			})
			if allocs != 0 {
				t.Fatalf("%s: %.1f allocs per execution, want 0", tc.name, allocs)
			}
		})
	}
}
