package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// testNet describes one test path.
type testNet struct {
	rate  float64
	delay time.Duration
	loss  float64
}

// buildConn wires a connection over the given paths with the named
// schedlib scheduler on the compiled back-end.
func buildConn(t *testing.T, seed int64, cfg Config, scheduler string, paths ...testNet) (*netsim.Engine, *Conn) {
	t.Helper()
	eng := netsim.NewEngine(seed)
	conn := NewConn(eng, cfg)
	for i, p := range paths {
		var loss netsim.LossModel
		if p.loss > 0 {
			loss = netsim.BernoulliLoss{P: p.loss}
		}
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name:  "path",
			Rate:  netsim.ConstantRate(p.rate),
			Delay: p.delay,
			Loss:  loss,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: "sbf", Link: link, Backup: i > 0 && false}); err != nil {
			t.Fatalf("AddSubflow: %v", err)
		}
	}
	src, ok := schedlib.All[scheduler]
	if !ok {
		t.Fatalf("unknown scheduler %q", scheduler)
	}
	conn.SetScheduler(core.MustLoad(scheduler, src, core.BackendCompiled))
	return eng, conn
}

// deliveryChecker asserts exactly-once, in-order delivery.
type deliveryChecker struct {
	t        *testing.T
	next     int64
	bytes    int64
	lastAt   time.Duration
	segments int
}

func (d *deliveryChecker) attach(conn *Conn) {
	conn.Receiver().OnDeliver(func(seq int64, size int, at time.Duration) {
		if seq != d.next {
			d.t.Errorf("out-of-order delivery: got seq %d, want %d", seq, d.next)
		}
		d.next = seq + 1
		d.bytes += int64(size)
		d.lastAt = at
		d.segments++
	})
}

func TestBulkTransferTwoSubflows(t *testing.T) {
	eng, conn := buildConn(t, 1, Config{}, "minRTT",
		testNet{rate: 3e6, delay: 5 * time.Millisecond},
		testNet{rate: 8e6, delay: 20 * time.Millisecond},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 2 << 20
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(30 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("transfer incomplete: Q=%d QU=%d RQ=%d", conn.QueuedSegments(), conn.UnackedSegments(), conn.reinjectQ.len())
	}
	if chk.bytes != total {
		t.Errorf("delivered %d bytes, want %d", chk.bytes, total)
	}
	// Both subflows should carry data for a 2 MiB bulk transfer over
	// 3+8 MB/s paths.
	if conn.subflows[0].BytesSent == 0 || conn.subflows[1].BytesSent == 0 {
		t.Errorf("bulk transfer did not use both subflows: %d / %d bytes",
			conn.subflows[0].BytesSent, conn.subflows[1].BytesSent)
	}
	// Aggregate goodput must be in the right ballpark: 2 MiB over
	// 11 MB/s ≈ 0.19 s plus slow-start ramp on a 40 ms-RTT path.
	if chk.lastAt > 800*time.Millisecond {
		t.Errorf("FCT %v too slow for aggregated 11 MB/s", chk.lastAt)
	}
}

func TestTransferCompletesUnderLoss(t *testing.T) {
	for _, sched := range []string{"minRTT", "redundant", "opportunisticRedundant", "redundantIfNoQ", "roundRobin"} {
		t.Run(sched, func(t *testing.T) {
			eng, conn := buildConn(t, 7, Config{}, sched,
				testNet{rate: 2e6, delay: 10 * time.Millisecond, loss: 0.02},
				testNet{rate: 2e6, delay: 15 * time.Millisecond, loss: 0.02},
			)
			chk := &deliveryChecker{t: t}
			chk.attach(conn)
			const total = 256 << 10
			eng.After(0, func() { conn.Send(total, 0) })
			eng.RunUntil(60 * time.Second)
			if !conn.AllAcked() {
				t.Fatalf("transfer incomplete under loss: Q=%d QU=%d RQ=%d",
					conn.QueuedSegments(), conn.UnackedSegments(), conn.reinjectQ.len())
			}
			if chk.bytes != total {
				t.Errorf("delivered %d bytes, want %d (exactly once)", chk.bytes, total)
			}
		})
	}
}

func TestSingleSubflowLossRecovery(t *testing.T) {
	eng, conn := buildConn(t, 3, Config{}, "minRTT",
		testNet{rate: 1e6, delay: 10 * time.Millisecond, loss: 0.05},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 256 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(60 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("single-subflow transfer incomplete")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d, want %d", chk.bytes, total)
	}
	if conn.subflows[0].Retransmissions == 0 {
		t.Errorf("5%% loss must force retransmissions")
	}
}

func TestRTTEstimation(t *testing.T) {
	eng, conn := buildConn(t, 1, Config{}, "minRTT",
		testNet{rate: 10e6, delay: 25 * time.Millisecond},
	)
	eng.After(0, func() { conn.Send(200<<10, 0) })
	eng.RunUntil(10 * time.Second)
	srtt := conn.subflows[0].SRTT()
	// One-way 25 ms → RTT 50 ms plus serialization.
	if srtt < 45*time.Millisecond || srtt > 80*time.Millisecond {
		t.Errorf("SRTT = %v, want ≈ 50 ms", srtt)
	}
	if got := conn.subflows[0].avgRTT(); got < 45*time.Millisecond || got > 80*time.Millisecond {
		t.Errorf("avg RTT = %v, want ≈ 50 ms", got)
	}
}

func TestCongestionWindowDynamics(t *testing.T) {
	// Slow start growth on a clean path.
	eng, conn := buildConn(t, 1, Config{CC: Reno{}}, "minRTT",
		testNet{rate: 20e6, delay: 10 * time.Millisecond},
	)
	initial := conn.cfg.InitialCwnd
	eng.After(0, func() { conn.Send(1<<20, 0) })
	eng.RunUntil(2 * time.Second)
	if got := conn.subflows[0].Cwnd(); got <= initial {
		t.Errorf("cwnd = %v after clean 1 MiB, want growth beyond %v", got, initial)
	}

	// A lossy path must trigger multiplicative decrease episodes.
	eng2, conn2 := buildConn(t, 5, Config{CC: Reno{}}, "minRTT",
		testNet{rate: 20e6, delay: 10 * time.Millisecond, loss: 0.02},
	)
	eng2.After(0, func() { conn2.Send(1<<20, 0) })
	eng2.RunUntil(30 * time.Second)
	if conn2.subflows[0].LossEpisodes == 0 {
		t.Errorf("no loss episodes on a 2%% loss path")
	}
}

func TestLIACoupledIncreaseGentlerThanReno(t *testing.T) {
	run := func(cc CongestionControl) float64 {
		eng, conn := buildConn(t, 9, Config{CC: cc}, "minRTT",
			testNet{rate: 4e6, delay: 20 * time.Millisecond},
			testNet{rate: 4e6, delay: 20 * time.Millisecond},
		)
		eng.After(0, func() { conn.Send(4<<20, 0) })
		eng.RunUntil(3 * time.Second)
		return conn.subflows[0].Cwnd() + conn.subflows[1].Cwnd()
	}
	reno := run(Reno{})
	lia := run(LIA{})
	if lia > reno {
		t.Errorf("LIA aggregate cwnd %v should not exceed uncoupled Reno %v", lia, reno)
	}
}

func TestReceiveWindowBlocksSender(t *testing.T) {
	// A tiny receive buffer with a slow second path forces meta
	// head-of-line blocking; in-flight meta bytes must never exceed the
	// advertised window.
	eng, conn := buildConn(t, 2, Config{RcvBuf: 16 << 10}, "minRTT",
		testNet{rate: 4e6, delay: 5 * time.Millisecond},
		testNet{rate: 1e6, delay: 60 * time.Millisecond},
	)
	exceeded := false
	check := func() {
		var inFlight int64
		for _, p := range conn.unackedQ.all() {
			inFlight += int64(p.Size)
		}
		if inFlight > int64(conn.cfg.RcvBuf) {
			exceeded = true
		}
	}
	for at := time.Duration(0); at < 2*time.Second; at += 10 * time.Millisecond {
		eng.At(at, check)
	}
	eng.After(0, func() { conn.Send(512<<10, 0) })
	eng.RunUntil(30 * time.Second)
	if exceeded {
		t.Errorf("sender violated the receive window")
	}
	if !conn.AllAcked() {
		t.Fatalf("transfer incomplete under small rwnd")
	}
}

func TestSubflowCloseReinjection(t *testing.T) {
	eng, conn := buildConn(t, 4, Config{}, "minRTT",
		testNet{rate: 2e6, delay: 5 * time.Millisecond},
		testNet{rate: 2e6, delay: 30 * time.Millisecond},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 512 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.After(200*time.Millisecond, func() { conn.subflows[0].Close() })
	eng.RunUntil(60 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("transfer incomplete after subflow close")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d, want %d", chk.bytes, total)
	}
}

func TestRedundantSchedulerDuplicatesThinFlow(t *testing.T) {
	eng, conn := buildConn(t, 1, Config{}, "redundant",
		testNet{rate: 4e6, delay: 10 * time.Millisecond},
		testNet{rate: 4e6, delay: 30 * time.Millisecond},
	)
	// Send after both subflows finished their handshakes so the thin
	// flow actually has two paths to be redundant over.
	eng.At(100*time.Millisecond, func() { conn.Send(8*1460, 0) })
	eng.RunUntil(10 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("redundant transfer incomplete")
	}
	// Thin flow: every packet should have been sent on both subflows
	// (unless acked before the slow copy was scheduled).
	dups := conn.receiver.DuplicateSegments
	if dups == 0 {
		t.Errorf("full redundancy produced no duplicate arrivals")
	}
	// Full redundancy would be 16 transmissions; early cumulative
	// DATA_ACKs legitimately suppress some slow-path copies ("unless
	// the packet is already acknowledged and therefore removed from QU
	// before being sent on the slower subflow", §5.1).
	sentTotal := conn.subflows[0].PktsSent + conn.subflows[1].PktsSent
	if sentTotal <= 8 {
		t.Errorf("redundant scheduler sent only %d segments for 8 packets", sentTotal)
	}
}

func TestReceiverLegacyVsOptimized(t *testing.T) {
	// Loss on the fast subflow creates subflow-level gaps whose
	// segments would fit meta order; the optimized receiver must
	// deliver strictly no later than legacy, and the legacy counter
	// must observe held segments.
	run := func(mode ReceiverMode) (time.Duration, int64) {
		eng, conn := buildConn(t, 11, Config{ReceiverMode: mode}, "roundRobin",
			testNet{rate: 2e6, delay: 10 * time.Millisecond, loss: 0.03},
			testNet{rate: 2e6, delay: 12 * time.Millisecond, loss: 0.03},
		)
		chk := &deliveryChecker{t: t}
		chk.attach(conn)
		eng.After(0, func() { conn.Send(128<<10, 0) })
		eng.RunUntil(60 * time.Second)
		if !conn.AllAcked() {
			t.Fatalf("mode %v: incomplete", mode)
		}
		return chk.lastAt, conn.receiver.HeldByLegacy
	}
	optAt, _ := run(ReceiverOptimized)
	legAt, held := run(ReceiverLegacy)
	if held == 0 {
		t.Errorf("legacy receiver never held a meta-order-ready segment; scenario too clean")
	}
	if optAt > legAt {
		t.Errorf("optimized receiver finished later (%v) than legacy (%v)", optAt, legAt)
	}
}

func TestTSQAndQueuedProperties(t *testing.T) {
	// A slow path accumulates transmit backlog → TSQ_THROTTLED.
	eng := netsim.NewEngine(1)
	conn := NewConn(eng, Config{})
	link := netsim.NewLink(eng, netsim.PathConfig{
		Rate:  netsim.ConstantRate(1e5), // 100 KB/s: 1460 B ≈ 15 ms serialization
		Delay: 5 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(SubflowConfig{Name: "slow", Link: link}); err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad("rr", schedlib.RoundRobin, core.BackendCompiled))
	eng.After(0, func() { conn.Send(64<<10, 0) })
	throttledSeen := false
	for at := 10 * time.Millisecond; at < 2*time.Second; at += 5 * time.Millisecond {
		eng.At(at, func() {
			if conn.subflows[0].tsqThrottled() {
				throttledSeen = true
			}
		})
	}
	eng.RunUntil(2 * time.Second)
	if !throttledSeen {
		t.Errorf("slow path never hit the TSQ condition")
	}
}

func TestThroughputEstimate(t *testing.T) {
	eng, conn := buildConn(t, 1, Config{}, "minRTT",
		testNet{rate: 2e6, delay: 5 * time.Millisecond},
	)
	eng.After(0, func() { conn.Send(4<<20, 0) })
	var est int64
	eng.At(2*time.Second, func() { est = conn.subflows[0].Throughput() })
	eng.RunUntil(2100 * time.Millisecond)
	// Saturated 2 MB/s path: estimate within a factor of two.
	if est < 1e6 || est > 3e6 {
		t.Errorf("throughput estimate %d B/s, want ≈ 2e6", est)
	}
}

func TestSchedulerRegisterAPIRetriggers(t *testing.T) {
	// With the TAP scheduler and target 0, nothing moves on the backup
	// path when preferred is exhausted; raising the target via
	// SetRegister must unblock scheduling without new data arriving.
	eng := netsim.NewEngine(1)
	conn := NewConn(eng, Config{})
	fast := netsim.NewLink(eng, netsim.PathConfig{Rate: netsim.ConstantRate(5e5), Delay: 5 * time.Millisecond})
	slow := netsim.NewLink(eng, netsim.PathConfig{Rate: netsim.ConstantRate(5e6), Delay: 30 * time.Millisecond})
	if _, err := conn.AddSubflow(SubflowConfig{Name: "wifi", Link: fast}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AddSubflow(SubflowConfig{Name: "lte", Link: slow, Backup: true}); err != nil {
		t.Fatal(err)
	}
	conn.SetScheduler(core.MustLoad("tap", schedlib.TAP, core.BackendCompiled))
	conn.SetRegister(schedlib.RegTarget, 1) // ≈ no target: stay on WiFi
	eng.After(0, func() { conn.Send(4<<20, 0) })
	var lteBefore int64
	eng.At(time.Second, func() {
		lteBefore = conn.subflows[1].BytesSent
		conn.SetRegister(schedlib.RegTarget, 4<<20) // now require 4 MB/s
	})
	eng.RunUntil(5 * time.Second)
	if lteBefore != 0 {
		t.Fatalf("TAP used LTE despite trivial target (sent %d bytes)", lteBefore)
	}
	if conn.subflows[1].BytesSent == 0 {
		t.Errorf("raising the target via SetRegister did not engage LTE")
	}
}

func TestExactlyOnceDeliveryInvariant(t *testing.T) {
	// Heavy loss + redundancy: the application must still see every
	// byte exactly once, in order.
	eng, conn := buildConn(t, 21, Config{}, "opportunisticRedundant",
		testNet{rate: 1e6, delay: 10 * time.Millisecond, loss: 0.1},
		testNet{rate: 1e6, delay: 25 * time.Millisecond, loss: 0.1},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 100 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(120 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("incomplete under 10%% loss")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d bytes, want exactly %d", chk.bytes, total)
	}
}

func TestBurstyAppLimitedFlow(t *testing.T) {
	// Request/response pattern: send 8 KiB every 200 ms; all bursts
	// must complete and Q must drain between bursts.
	eng, conn := buildConn(t, 6, Config{}, "minRTT",
		testNet{rate: 2e6, delay: 10 * time.Millisecond},
		testNet{rate: 2e6, delay: 40 * time.Millisecond},
	)
	for i := 0; i < 10; i++ {
		eng.At(time.Duration(i)*200*time.Millisecond, func() { conn.Send(8<<10, 0) })
	}
	eng.RunUntil(10 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("bursty flow incomplete")
	}
	if got := conn.receiver.DeliveredBytes; got != 80<<10 {
		t.Errorf("delivered %d, want %d", got, 80<<10)
	}
}

func TestOLIAEndToEnd(t *testing.T) {
	eng, conn := buildConn(t, 15, Config{CC: OLIA{}}, "minRTT",
		testNet{rate: 2e6, delay: 10 * time.Millisecond, loss: 0.01},
		testNet{rate: 2e6, delay: 25 * time.Millisecond, loss: 0.01},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 512 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(60 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("OLIA transfer incomplete")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d, want %d", chk.bytes, total)
	}
}

func TestSchedulerSwitchMidConnection(t *testing.T) {
	// §3.2 disadvises runtime scheduler switching but the runtime must
	// survive it without losing data (register conventions may clash,
	// correctness may not).
	eng, conn := buildConn(t, 8, Config{}, "minRTT",
		testNet{rate: 2e6, delay: 5 * time.Millisecond, loss: 0.01},
		testNet{rate: 2e6, delay: 20 * time.Millisecond, loss: 0.01},
	)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 512 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.At(300*time.Millisecond, func() {
		conn.SetScheduler(core.MustLoad("redundant", schedlib.Redundant, core.BackendVM))
	})
	eng.At(600*time.Millisecond, func() {
		conn.SetScheduler(core.MustLoad("rr", schedlib.RoundRobin, core.BackendInterpreter))
	})
	eng.RunUntil(120 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("transfer incomplete after scheduler switches")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d, want exactly %d", chk.bytes, total)
	}
}

func TestEightSubflowTransfer(t *testing.T) {
	// Many-subflow scaling ("the demand ... increases with the
	// availability of more subflows, e.g., for connections between
	// data-centers"): 8 heterogeneous paths, bulk transfer, exact
	// delivery, and every usable path carries data.
	paths := make([]testNet, 8)
	for i := range paths {
		paths[i] = testNet{
			rate:  float64(1+i%3) * 1e6,
			delay: time.Duration(3+2*i) * time.Millisecond,
			loss:  0.005,
		}
	}
	eng, conn := buildConn(t, 12, Config{}, "redundantIfNoQ", paths...)
	chk := &deliveryChecker{t: t}
	chk.attach(conn)
	const total = 4 << 20
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(120 * time.Second)
	if !conn.AllAcked() {
		t.Fatalf("8-subflow transfer incomplete")
	}
	if chk.bytes != total {
		t.Errorf("delivered %d, want %d", chk.bytes, total)
	}
	used := 0
	for _, s := range conn.subflows {
		if s.BytesSent > 0 {
			used++
		}
	}
	if used < 6 {
		t.Errorf("only %d of 8 subflows carried data", used)
	}
}
