package mptcp

import (
	"time"
)

// PathManagerConfig tunes the path-manager building block (§2.1 of the
// paper: "The path manager decides on the creation and removal of
// subflows. Compared to the scheduling decision, the path manager has
// relaxed time constraints").
type PathManagerConfig struct {
	// DeadAfter closes a subflow that has outstanding data but made no
	// acknowledgement progress for this long (default 3 s).
	DeadAfter time.Duration
	// CheckInterval is the health-check period (default 500 ms).
	CheckInterval time.Duration
	// PromoteBackupOnDeath clears the backup flag of the lowest-RTT
	// surviving subflow once no non-backup subflow remains, so
	// preference-aware schedulers keep a preferred path.
	PromoteBackupOnDeath bool
}

func (c *PathManagerConfig) applyDefaults() {
	if c.DeadAfter == 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 500 * time.Millisecond
	}
}

// PathManager watches subflow health on its relaxed timescale and
// removes subflows that stopped making progress. Subflow creation
// happens through Conn.AddSubflow (at connection setup or triggered by
// application logic); the manager owns removal and backup promotion.
type PathManager struct {
	conn *Conn
	cfg  PathManagerConfig
	// progress tracks the last SACK frontier and when it last moved.
	lastSacked []int64
	lastMove   []time.Duration
	stopped    bool

	// ClosedByManager counts subflows the manager tore down.
	ClosedByManager int
	// Promotions counts backup-flag promotions.
	Promotions int
}

// NewPathManager attaches a manager to conn and starts its periodic
// health checks.
func NewPathManager(conn *Conn, cfg PathManagerConfig) *PathManager {
	cfg.applyDefaults()
	pm := &PathManager{conn: conn, cfg: cfg}
	pm.scheduleCheck()
	return pm
}

// Stop halts the periodic checks.
func (pm *PathManager) Stop() { pm.stopped = true }

func (pm *PathManager) scheduleCheck() {
	pm.conn.eng.After(pm.cfg.CheckInterval, func() {
		if pm.stopped {
			return
		}
		pm.check()
		pm.scheduleCheck()
	})
}

// check closes wedged subflows and promotes a backup when no preferred
// subflow is left.
func (pm *PathManager) check() {
	now := pm.conn.eng.Now()
	for i, s := range pm.conn.subflows {
		for len(pm.lastSacked) <= i {
			pm.lastSacked = append(pm.lastSacked, -1)
			pm.lastMove = append(pm.lastMove, now)
		}
		if !s.usable() {
			continue
		}
		if s.highestSacked > pm.lastSacked[i] {
			pm.lastSacked[i] = s.highestSacked
			pm.lastMove[i] = now
			continue
		}
		if len(s.outstanding) == 0 {
			// Idle subflows are healthy by definition.
			pm.lastMove[i] = now
			continue
		}
		if now-pm.lastMove[i] >= pm.cfg.DeadAfter {
			s.Close()
			pm.ClosedByManager++
		}
	}
	if pm.cfg.PromoteBackupOnDeath {
		pm.promoteIfNeeded()
	}
}

// promoteIfNeeded clears the backup flag on the best surviving subflow
// when every non-backup subflow is gone.
func (pm *PathManager) promoteIfNeeded() {
	var best *Subflow
	for _, s := range pm.conn.subflows {
		if !s.usable() {
			continue
		}
		if !s.backup {
			return // a preferred subflow still lives
		}
		if best == nil || s.srtt < best.srtt {
			best = s
		}
	}
	if best != nil {
		best.SetBackup(false)
		pm.Promotions++
		pm.conn.schedule()
	}
}
