package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

// TestHotSwapMidTransferConserves swaps minRTT → redundant while a
// transfer is in flight and asserts the conservation invariant: every
// byte delivered exactly once, in order, fully acknowledged — plus a
// SCHED_SWAP trace event marking the swap.
func TestHotSwapMidTransferConserves(t *testing.T) {
	eng, conn := buildConn(t, 7, Config{}, "minRTT",
		testNet{rate: 2e6, delay: 10 * time.Millisecond},
		testNet{rate: 4e6, delay: 30 * time.Millisecond, loss: 0.01},
	)
	tracer := obs.NewTracer(1 << 14)
	reg := obs.NewRegistry()
	conn.Instrument(tracer, reg)
	k := NewConservationChecker(conn)

	const total = 2 << 20
	eng.At(0, func() { conn.Send(total, 0) })
	swapped := false
	eng.At(400*time.Millisecond, func() {
		if conn.AllAcked() {
			t.Fatal("transfer already finished before the swap; grow it")
		}
		conn.SetScheduler(core.MustLoad("redundant", schedlib.All["redundant"], core.BackendCompiled))
		swapped = true
	})
	eng.RunUntil(60 * time.Second)

	if !swapped {
		t.Fatal("swap callback never ran")
	}
	if err := k.Check(total); err != nil {
		t.Fatalf("conservation after mid-transfer swap: %v", err)
	}
	var swaps int
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.EvSchedSwap {
			swaps++
			if ev.At != 400*time.Millisecond {
				t.Errorf("SCHED_SWAP at %v, want 400ms", ev.At)
			}
		}
	}
	if swaps != 1 {
		t.Fatalf("recorded %d SCHED_SWAP events, want 1", swaps)
	}
}

// swapOnExec runs inner and, on its swapAt-th execution, asks the
// connection to install next from within the execution — exercising
// the deferred-to-execution-boundary path.
type swapOnExec struct {
	conn   *Conn
	inner  Scheduler
	next   Scheduler
	swapAt int
	execs  int
}

func (s *swapOnExec) Exec(env *runtime.Env) {
	s.execs++
	if s.execs == s.swapAt {
		s.conn.SetScheduler(s.next)
	}
	s.inner.Exec(env)
}

// TestSwapInsideExecutionDefersToBoundary installs a scheduler that
// replaces itself mid-pass; the swap must land between executions (no
// torn state) and the transfer must still complete.
func TestSwapInsideExecutionDefersToBoundary(t *testing.T) {
	eng := netsim.NewEngine(3)
	conn := NewConn(eng, Config{})
	for _, d := range []time.Duration{10 * time.Millisecond, 25 * time.Millisecond} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: "p", Rate: netsim.ConstantRate(2e6), Delay: d,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: "sbf", Link: link}); err != nil {
			t.Fatalf("AddSubflow: %v", err)
		}
	}
	tracer := obs.NewTracer(1 << 14)
	conn.Instrument(tracer, nil)

	sw := &swapOnExec{
		conn:   conn,
		inner:  core.MustLoad("roundRobin", schedlib.All["roundRobin"], core.BackendCompiled),
		next:   core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendCompiled),
		swapAt: 3,
	}
	conn.SetScheduler(sw)
	k := NewConservationChecker(conn)

	const total = 512 << 10
	eng.At(0, func() { conn.Send(total, 0) })
	eng.RunUntil(30 * time.Second)

	if sw.execs < sw.swapAt {
		t.Fatalf("swapper executed %d times, never reached the swap", sw.execs)
	}
	if err := k.Check(total); err != nil {
		t.Fatalf("conservation after in-execution swap: %v", err)
	}
	deferred := false
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.EvSchedSwap && ev.Aux == 1 {
			deferred = true
		}
	}
	if !deferred {
		t.Fatal("no deferred SCHED_SWAP (aux=1) event recorded")
	}
}

// TestSetRegisterOutOfRange asserts the error return and the
// api.register_oob counter.
func TestSetRegisterOutOfRange(t *testing.T) {
	_, conn := buildConn(t, 1, Config{}, "minRTT", testNet{rate: 1e6, delay: 5 * time.Millisecond})
	reg := obs.NewRegistry()
	conn.Instrument(nil, reg)

	if err := conn.SetRegister(0, 42); err != nil {
		t.Fatalf("in-range SetRegister: %v", err)
	}
	if got := conn.Register(0); got != 42 {
		t.Fatalf("Register(0) = %d, want 42", got)
	}
	for _, i := range []int{-1, 8, 99} {
		if err := conn.SetRegister(i, 1); err == nil {
			t.Fatalf("SetRegister(%d) succeeded, want out-of-range error", i)
		}
	}
	if got := reg.Counter("api.register_oob").Value(); got != 3 {
		t.Fatalf("api.register_oob = %d, want 3", got)
	}
}
