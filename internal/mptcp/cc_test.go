package mptcp

import (
	"testing"
	"time"
)

// ccConn builds a connection skeleton with n established subflows for
// unit-testing congestion-control arithmetic without a network.
func ccConn(n int) *Conn {
	c := &Conn{cfg: Config{MSS: 1460, MinRTO: 200 * time.Millisecond}}
	for i := 0; i < n; i++ {
		s := &Subflow{
			id:          i,
			conn:        c,
			established: true,
			cwnd:        10,
			ssthresh:    5, // force congestion avoidance
			srtt:        20 * time.Millisecond,
		}
		// Make the window look fully used so cwnd validation passes.
		for j := 0; j < 10; j++ {
			s.outstanding = append(s.outstanding, &txRecord{})
		}
		c.subflows = append(c.subflows, s)
	}
	return c
}

func TestRenoSlowStartAndCA(t *testing.T) {
	c := ccConn(1)
	s := c.subflows[0]
	s.ssthresh = 100 // slow start
	before := s.cwnd
	Reno{}.OnAck(c, s)
	if s.cwnd != before+1 {
		t.Errorf("slow start: cwnd %v -> %v, want +1", before, s.cwnd)
	}
	s.ssthresh = 5 // congestion avoidance
	before = s.cwnd
	Reno{}.OnAck(c, s)
	want := before + 1/before
	if s.cwnd != want {
		t.Errorf("CA: cwnd = %v, want %v", s.cwnd, want)
	}
}

func TestRenoLossAndRTO(t *testing.T) {
	c := ccConn(1)
	s := c.subflows[0]
	s.cwnd = 20
	Reno{}.OnLoss(c, s)
	if s.cwnd != 10 || s.ssthresh != 10 {
		t.Errorf("after loss: cwnd=%v ssthresh=%v, want 10/10", s.cwnd, s.ssthresh)
	}
	Reno{}.OnRTO(c, s)
	if s.cwnd != 1 {
		t.Errorf("after RTO: cwnd=%v, want 1", s.cwnd)
	}
	// Floor.
	s.cwnd = 3
	Reno{}.OnLoss(c, s)
	if s.ssthresh < minCwnd {
		t.Errorf("ssthresh %v below floor", s.ssthresh)
	}
}

func TestCwndValidationBlocksIdleGrowth(t *testing.T) {
	c := ccConn(1)
	s := c.subflows[0]
	s.outstanding = s.outstanding[:2] // window mostly unused
	before := s.cwnd
	Reno{}.OnAck(c, s)
	if s.cwnd != before {
		t.Errorf("app-limited flow grew cwnd %v -> %v", before, s.cwnd)
	}
	LIA{}.OnAck(c, s)
	if s.cwnd != before {
		t.Errorf("LIA grew an app-limited window")
	}
	OLIA{}.OnAck(c, s)
	if s.cwnd != before {
		t.Errorf("OLIA grew an app-limited window")
	}
}

func TestLIACoupledIncreaseBounded(t *testing.T) {
	c := ccConn(2)
	s := c.subflows[0]
	before := s.cwnd
	LIA{}.OnAck(c, s)
	liaInc := s.cwnd - before
	if liaInc <= 0 {
		t.Fatalf("LIA increase = %v, want > 0", liaInc)
	}
	// The coupled increase never exceeds uncoupled Reno's 1/cwnd.
	if liaInc > 1/before {
		t.Errorf("LIA increase %v exceeds Reno's %v", liaInc, 1/before)
	}
}

func TestLIAAlphaEqualPaths(t *testing.T) {
	c := ccConn(2)
	// Equal windows and RTTs: alpha = total·(c/r²)/(2c/r)² = 1/2.
	got := LIA{}.alpha(c)
	if got < 0.49 || got > 0.51 {
		t.Errorf("alpha = %v, want 0.5 for symmetric paths", got)
	}
}

func TestOLIAShiftsTowardBestPath(t *testing.T) {
	c := ccConn(2)
	good, bad := c.subflows[0], c.subflows[1]
	// The good path delivers much more between losses but has the
	// smaller window: it must receive a positive alpha; the
	// max-window path a negative one.
	good.olia.sinceLoss = 1 << 20
	good.cwnd = 8
	bad.olia.sinceLoss = 1 << 10
	bad.cwnd = 16
	paths := activeSubflows(c)
	aGood := OLIA{}.alpha(paths, good)
	aBad := OLIA{}.alpha(paths, bad)
	if aGood <= 0 {
		t.Errorf("alpha(good) = %v, want positive", aGood)
	}
	if aBad >= 0 {
		t.Errorf("alpha(bad) = %v, want negative", aBad)
	}
}

func TestOLIAInterLossTracking(t *testing.T) {
	c := ccConn(1)
	s := c.subflows[0]
	s.olia.sinceLoss = 5000
	OLIA{}.OnLoss(c, s)
	if s.olia.prevInterval != 5000 || s.olia.sinceLoss != 0 {
		t.Errorf("inter-loss interval not rolled: %+v", s.olia)
	}
	if s.olia.interLoss() != 5000 {
		t.Errorf("interLoss = %d, want the previous interval", s.olia.interLoss())
	}
	OLIA{}.OnAck(c, s)
	if s.olia.sinceLoss != int64(c.cfg.MSS) {
		t.Errorf("sinceLoss = %d, want one MSS", s.olia.sinceLoss)
	}
}

func TestOLIASinglePathBehavesLikeTCP(t *testing.T) {
	c := ccConn(1)
	s := c.subflows[0]
	before := s.cwnd
	OLIA{}.OnAck(c, s)
	inc := s.cwnd - before
	// Single path: alpha = 0 and the coupled term reduces to
	// w/rtt²/(w/rtt)² = 1/w.
	if inc < 0.9/before || inc > 1.1/before {
		t.Errorf("single-path OLIA increase %v, want ≈ 1/w = %v", inc, 1/before)
	}
}

func TestCCNames(t *testing.T) {
	if (Reno{}).Name() != "reno" || (LIA{}).Name() != "lia" || (OLIA{}).Name() != "olia" {
		t.Error("congestion control names wrong")
	}
}
