package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
	"progmp/internal/xstate"
)

// TestChaosSharedStateSchedulers soaks the two shared-state schedulers
// (qaware, jointFlow) through every chaos scenario: without a store
// attached the X-properties read 0 and LINK_QUEUED feeds from the real
// link backlog, so the schedulers must still conserve every byte under
// the full fault mix.
func TestChaosSharedStateSchedulers(t *testing.T) {
	for _, name := range []string{"qaware", "jointFlow"} {
		name := name
		for _, scn := range ChaosScenarioNames() {
			scn := scn
			t.Run(name+"/"+scn, func(t *testing.T) {
				res, err := RunChaos(ChaosScenarios[scn], 7, func() Scheduler {
					return core.MustLoad(name, schedlib.All[name], core.BackendVM)
				})
				if err != nil {
					t.Fatalf("%s under %s: %v (result %+v)", scn, name, err, res)
				}
			})
		}
	}
}

// twoPathConn dials a connection with a fast "lte" path and a slower
// "wifi" path on eng, optionally attached to st, optionally with
// Bernoulli loss on lte.
func twoPathConn(t *testing.T, eng *netsim.Engine, st *xstate.Store, lteLoss float64) *Conn {
	t.Helper()
	conn := NewConn(eng, Config{Store: st})
	var loss netsim.LossModel
	if lteLoss > 0 {
		loss = netsim.BernoulliLoss{P: lteLoss}
	}
	lte := netsim.NewLink(eng, netsim.PathConfig{
		Name: "lte", Rate: netsim.ConstantRate(8e6), Delay: 5 * time.Millisecond, Loss: loss,
	})
	wifi := netsim.NewLink(eng, netsim.PathConfig{
		Name: "wifi", Rate: netsim.ConstantRate(2e6), Delay: 30 * time.Millisecond,
	})
	for name, link := range map[string]*netsim.Link{"lte": lte, "wifi": wifi} {
		if _, err := conn.AddSubflow(SubflowConfig{Name: name, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	return conn
}

// bytesOn returns the bytes a connection sent on the named subflow.
func bytesOn(conn *Conn, name string) int64 {
	for _, s := range conn.Subflows() {
		if s.Name() == name {
			return s.BytesSent
		}
	}
	return -1
}

// TestJointFlowShiftsTrafficOffDegradedPath is the joint-flow
// acceptance experiment: connection 1 transfers over a lossy lte path
// and feeds its observations into the shared store; connection 2 —
// running jointFlow over loss-free links — then starts a fresh
// transfer. With the store attached it inherits the fleet's view and
// keeps its traffic off lte; the identical seeded run without a store
// floods lte (the minRTT choice). Both runs must conserve every byte.
func TestJointFlowShiftsTrafficOffDegradedPath(t *testing.T) {
	run := func(shareWithConn2 bool) (lteBytes, wifiBytes int64) {
		eng := netsim.NewEngine(5)
		st := xstate.NewStore()

		// Connection 1: minRTT prefers the fast lossy lte path, so its
		// loss observations land in the store.
		c1 := twoPathConn(t, eng, st, 0.15)
		c1.SetScheduler(core.MustLoad("minRTT", schedlib.All["minRTT"], core.BackendVM))
		chk1 := NewConservationChecker(c1)
		const c1Bytes = 512 << 10
		eng.After(0, func() { c1.Send(c1Bytes, 0) })
		eng.RunUntil(10 * time.Second)
		if err := chk1.Check(c1Bytes); err != nil {
			t.Fatalf("conn1 conservation: %v", err)
		}
		var lost int64
		for _, d := range st.All() {
			if d.Name == "lte" {
				lost = d.Lost
			}
		}
		if lost < 8 {
			t.Fatalf("conn1 fed only %d lte loss events into the store; threshold experiment needs >= 8", lost)
		}

		// Connection 2: fresh transfer over clean links; only the shared
		// store tells it lte is suspect. The send waits out the subflow
		// establishment handshakes (the wifi SYN takes 2×30 ms) so the
		// experiment measures the steering decision, not the window in
		// which lte is the only usable subflow.
		var st2 *xstate.Store
		if shareWithConn2 {
			st2 = st
		}
		c2 := twoPathConn(t, eng, st2, 0)
		c2.SetScheduler(core.MustLoad("jointFlow", schedlib.All["jointFlow"], core.BackendVM))
		chk2 := NewConservationChecker(c2)
		const c2Bytes = 256 << 10
		eng.After(200*time.Millisecond, func() { c2.Send(c2Bytes, 0) })
		eng.RunUntil(30 * time.Second)
		if err := chk2.Check(c2Bytes); err != nil {
			t.Fatalf("conn2 conservation (store=%v): %v", shareWithConn2, err)
		}
		return bytesOn(c2, "lte"), bytesOn(c2, "wifi")
	}

	lteShared, wifiShared := run(true)
	lteIsolated, _ := run(false)
	if lteIsolated == 0 {
		t.Fatalf("isolated jointFlow sent nothing on lte; experiment not exercising the path choice")
	}
	if wifiShared == 0 {
		t.Fatalf("store-attached jointFlow sent nothing at all on wifi")
	}
	// The shift: with the fleet's view, conn2 must send strictly less —
	// by at least 2x — on the path conn1 observed degrading.
	if lteShared*2 >= lteIsolated {
		t.Errorf("joint-flow shift too weak: lte bytes with store %d, without %d", lteShared, lteIsolated)
	}
}

// TestScheduleZeroAllocWithStore extends the steady-state zero-alloc
// contract to a store-attached connection: the scheduling pass now
// additionally loads the shared snapshot, seeds the global register
// file and fills the X-properties, and must still allocate nothing.
// (Store *writes* ride the ACK/loss paths, not this one.)
func TestScheduleZeroAllocWithStore(t *testing.T) {
	eng := netsim.NewEngine(3)
	st := xstate.NewStore()
	conn := NewConn(eng, Config{Store: st})
	for _, name := range []string{"a", "b"} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: name, Rate: netsim.ConstantRate(10e6), Delay: 20 * time.Millisecond,
		})
		if _, err := conn.AddSubflow(SubflowConfig{Name: name, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	s := core.MustLoad("jointFlow", schedlib.All["jointFlow"], core.BackendVM)
	s.SetSynchronousSpecialization(true)
	conn.SetScheduler(s)
	eng.RunUntil(10 * time.Millisecond)

	// Park the connection cwnd-exhausted (data queued, acks withheld)
	// with populated shared state, so every Kick is a real execution
	// reading the store snapshot.
	st.SetGlobal(0, 42)
	st.RecordRTT(st.DestID("a"), 12000)
	st.RecordLoss(st.DestID("b"), 3)
	conn.Send(1<<20, 0)
	for i := 0; i < 64; i++ { // warm pools, specialization, scratch
		conn.Kick()
	}
	if n := testing.AllocsPerRun(200, conn.Kick); n != 0 {
		t.Fatalf("store-attached scheduling pass allocates %.1f times per trigger, want 0", n)
	}
}

// TestGlobalsFlowAcrossConnections proves the cross-connection register
// channel end to end in the substrate: a scheduler GSET on one
// connection becomes visible to a scheduler G-read on another
// connection attached to the same store.
func TestGlobalsFlowAcrossConnections(t *testing.T) {
	eng := netsim.NewEngine(9)
	st := xstate.NewStore()

	// Writer: publishes its queue depth into G1 on every execution.
	writerSrc := `
IF (G1 == 0) {
    GSET(G1, 7);
}
VAR avail = SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY AND !avail.EMPTY) {
    avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}
`
	// Reader: mirrors G1 into its local R1 so the test can observe it.
	readerSrc := `
SET(R1, G1);
VAR avail = SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY AND !avail.EMPTY) {
    avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}
`
	c1 := twoPathConn(t, eng, st, 0)
	c1.SetScheduler(core.MustLoad("writer", writerSrc, core.BackendVM))
	c2 := twoPathConn(t, eng, st, 0)
	c2.SetScheduler(core.MustLoad("reader", readerSrc, core.BackendVM))
	eng.After(0, func() { c1.Send(64<<10, 0) })
	eng.After(50*time.Millisecond, func() { c2.Send(64<<10, 0) })
	eng.RunUntil(5 * time.Second)

	if got := st.Global(0); got != 7 {
		t.Fatalf("store G1 = %d, want 7 (writer's GSET not published)", got)
	}
	if got := c2.Register(0); got != 7 {
		t.Fatalf("reader R1 = %d, want 7 (shared global not seeded into conn2's environment)", got)
	}
}
