package mptcp

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// chaosSeeds is the fixed seed matrix the CI soak job runs; every
// scenario must conserve bytes for each of them.
var chaosSeeds = []int64{1, 42, 20240805}

// TestChaosMatrix runs every chaos scenario against the native MinRTT
// scheduler for each seed in the matrix: bytes delivered exactly once,
// in order, fully acknowledged within the horizon.
func TestChaosMatrix(t *testing.T) {
	for _, name := range ChaosScenarioNames() {
		sc := ChaosScenarios[name]
		for _, seed := range chaosSeeds {
			t.Run(sc.Name+"/"+itoa(seed), func(t *testing.T) {
				res, err := RunChaos(sc, seed, nil)
				if err != nil {
					t.Fatalf("chaos %s seed %d: %v (result %+v)", sc.Name, seed, err, res)
				}
				if res.FCT == 0 {
					t.Fatalf("chaos %s seed %d: no flow completion recorded", sc.Name, seed)
				}
			})
		}
	}
}

// TestChaosProgMPSchedulers runs the combined meltdown scenario under
// ProgMP programs from the corpus on the VM back-end — the programming
// model's isolation claim under the worst fault mix.
func TestChaosProgMPSchedulers(t *testing.T) {
	for _, name := range []string{"minRTT", "redundant", "roundRobin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := RunChaos(ChaosScenarios["meltdown"], 7, func() Scheduler {
				return core.MustLoad(name, schedlib.All[name], core.BackendVM)
			})
			if err != nil {
				t.Fatalf("meltdown under %s: %v (result %+v)", name, err, res)
			}
		})
	}
}

// TestChaosSubflowDeathUsesPathManager asserts the sbfdeath scenario
// actually exercises the fault: the path manager must tear down the
// blacked-out subflow and the revived subflow must carry data.
func TestChaosSubflowDeathUsesPathManager(t *testing.T) {
	res, err := RunChaos(ChaosScenarios["sbfdeath"], 3, nil)
	if err != nil {
		t.Fatalf("sbfdeath: %v", err)
	}
	if res.ClosedByManager == 0 {
		t.Errorf("path manager closed no subflows; blackout not detected")
	}
	if res.Promotions == 0 {
		t.Errorf("no backup promotion; survivor should have been promoted")
	}
}

// TestChaosInjectorsActive asserts the link-level injectors fire: a
// reorder-scenario run must actually duplicate and reorder packets
// (guards against a silently disabled fault).
func TestChaosInjectorsActive(t *testing.T) {
	eng := netsim.NewEngine(11)
	conn := NewConn(eng, Config{})
	var fwd []*netsim.Path
	for _, spec := range ChaosScenarios["reorder"].Paths() {
		link := netsim.NewLink(eng, spec.Path)
		fwd = append(fwd, link.Fwd)
		if _, err := conn.AddSubflow(SubflowConfig{Name: spec.Path.Name, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	conn.SetScheduler(core.MustLoad("roundRobin", schedlib.All["roundRobin"], core.BackendCompiled))
	chk := NewConservationChecker(conn)
	const total = 512 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(120 * time.Second)
	if err := chk.Check(total); err != nil {
		t.Fatal(err)
	}
	var dups, reorders int
	for _, p := range fwd {
		dups += p.DuplicatedCount
		reorders += p.ReorderedCount
	}
	if dups == 0 {
		t.Errorf("no packets duplicated on a DupProb=0.03 path")
	}
	if reorders == 0 {
		t.Errorf("no packets reordered on a ReorderProb=0.05 path")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
