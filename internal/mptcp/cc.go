package mptcp

// CongestionControl is the per-connection congestion-control block
// (§2.1). Window state lives on the subflows; the algorithm decides
// increase and decrease. Implementations receive the connection so
// coupled algorithms (LIA) can observe all subflows.
type CongestionControl interface {
	// Name identifies the algorithm.
	Name() string
	// OnAck is called for every newly acknowledged segment on sbf.
	OnAck(conn *Conn, sbf *Subflow)
	// OnLoss is called once per loss-recovery episode on sbf (fast
	// retransmit): multiplicative decrease.
	OnLoss(conn *Conn, sbf *Subflow)
	// OnRTO is called on a retransmission timeout on sbf.
	OnRTO(conn *Conn, sbf *Subflow)
}

// minCwnd is the floor for congestion windows in segments.
const minCwnd = 2

// cwndLimited implements congestion-window validation (RFC 2861): an
// application-limited sender whose window is far from full must not
// grow it further, or an idle-then-bursty flow would accumulate an
// arbitrarily large, never-validated window. It runs after the ACKed
// segment left the outstanding list, so that segment is counted back.
func cwndLimited(sbf *Subflow) bool {
	return float64(len(sbf.outstanding))+1 >= sbf.cwnd-1
}

// Reno is uncoupled per-subflow NewReno: each subflow behaves like an
// independent TCP connection.
type Reno struct{}

// Name returns "reno".
func (Reno) Name() string { return "reno" }

// OnAck grows the window: slow start below ssthresh, then congestion
// avoidance (+1 segment per window). Growth only happens while the
// window is actually used (cwnd validation).
func (Reno) OnAck(_ *Conn, sbf *Subflow) {
	if !cwndLimited(sbf) {
		return
	}
	if sbf.cwnd < sbf.ssthresh {
		sbf.cwnd++
	} else {
		sbf.cwnd += 1 / sbf.cwnd
	}
}

// OnLoss halves the window.
func (Reno) OnLoss(_ *Conn, sbf *Subflow) {
	sbf.ssthresh = sbf.cwnd / 2
	if sbf.ssthresh < minCwnd {
		sbf.ssthresh = minCwnd
	}
	sbf.cwnd = sbf.ssthresh
}

// OnRTO collapses the window to one segment.
func (Reno) OnRTO(_ *Conn, sbf *Subflow) {
	sbf.ssthresh = sbf.cwnd / 2
	if sbf.ssthresh < minCwnd {
		sbf.ssthresh = minCwnd
	}
	sbf.cwnd = 1
}

// LIA is the coupled Linked-Increases Algorithm of RFC 6356, the MPTCP
// default: the aggregate takes no more capacity on a shared bottleneck
// than a single TCP flow, while still using the best paths.
type LIA struct{}

// Name returns "lia".
func (LIA) Name() string { return "lia" }

// alpha computes the RFC 6356 aggressiveness factor:
//
//	alpha = cwnd_total * max_i(cwnd_i / rtt_i²) / (Σ_i cwnd_i / rtt_i)²
func (LIA) alpha(conn *Conn) float64 {
	var total, maxTerm, sumTerm float64
	for _, s := range conn.subflows {
		if !s.established || s.closed {
			continue
		}
		rtt := s.srtt.Seconds()
		if rtt <= 0 {
			rtt = 0.001
		}
		total += s.cwnd
		if t := s.cwnd / (rtt * rtt); t > maxTerm {
			maxTerm = t
		}
		sumTerm += s.cwnd / rtt
	}
	if sumTerm == 0 {
		return 1
	}
	return total * maxTerm / (sumTerm * sumTerm)
}

// OnAck applies slow start below ssthresh and the coupled increase
// min(alpha/cwnd_total, 1/cwnd_i) in congestion avoidance, gated by
// cwnd validation like Reno.
func (l LIA) OnAck(conn *Conn, sbf *Subflow) {
	if !cwndLimited(sbf) {
		return
	}
	if sbf.cwnd < sbf.ssthresh {
		sbf.cwnd++
		return
	}
	var total float64
	for _, s := range conn.subflows {
		if s.established && !s.closed {
			total += s.cwnd
		}
	}
	if total <= 0 {
		total = sbf.cwnd
	}
	inc := l.alpha(conn) / total
	if solo := 1 / sbf.cwnd; inc > solo {
		inc = solo
	}
	sbf.cwnd += inc
}

// OnLoss halves the subflow window (decrease is uncoupled in LIA).
func (LIA) OnLoss(conn *Conn, sbf *Subflow) { Reno{}.OnLoss(conn, sbf) }

// OnRTO collapses the subflow window.
func (LIA) OnRTO(conn *Conn, sbf *Subflow) { Reno{}.OnRTO(conn, sbf) }

// Compile-time interface checks.
var (
	_ CongestionControl = Reno{}
	_ CongestionControl = LIA{}
)
