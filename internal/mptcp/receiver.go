package mptcp

import (
	"time"

	"progmp/internal/obs"
)

// ReceiverMode selects the receiver-side packet-handling behaviour.
type ReceiverMode int

const (
	// ReceiverOptimized applies the §4.2 changes: every arriving
	// packet is considered for meta-level in-order delivery
	// immediately, regardless of subflow-level gaps.
	ReceiverOptimized ReceiverMode = iota
	// ReceiverLegacy reproduces the pre-paper kernel behaviour: only
	// in-subflow-order packets are pushed from the subflow to the meta
	// socket, so a subflow-level gap can delay meta-level in-order
	// data that has already arrived.
	ReceiverLegacy
)

// String names the mode.
func (m ReceiverMode) String() string {
	if m == ReceiverLegacy {
		return "legacy"
	}
	return "optimized"
}

// rxSeg is one received segment held in a reorder queue.
type rxSeg struct {
	metaSeq int64
	size    int
}

// sbfRx is per-subflow receive state.
type sbfRx struct {
	// nextExpected is the lowest sbfSeq not yet received.
	nextExpected int64
	// held buffers out-of-subflow-order segments (legacy mode only).
	held map[int64]rxSeg
	// receivedHigh tracks sbfSeqs >= nextExpected already seen, for
	// duplicate filtering in optimized mode.
	receivedHigh map[int64]bool
}

// Receiver models the MPTCP receiver: per-subflow receive queues, the
// meta-level out-of-order queue, in-order delivery to the application,
// cumulative DATA_ACK generation and receive-window accounting.
type Receiver struct {
	conn   *Conn
	mode   ReceiverMode
	rcvBuf int

	nextMetaSeq int64
	oooMeta     map[int64]rxSeg
	oooBytes    int

	perSbf []*sbfRx

	onDeliver func(seq int64, size int, at time.Duration)

	// Stats.
	DeliveredBytes    int64
	DeliveredSegments int64
	DuplicateSegments int64
	// HeldByLegacy counts segments buffered behind a subflow-level gap
	// by the legacy two-level queueing (§4.2); the optimized receiver
	// never holds such segments back from the meta socket.
	HeldByLegacy int64

	// Observability handles (nil-safe no-ops when uninstrumented).
	mDelivBytes *obs.Counter
	mDelivSegs  *obs.Counter
	mOOODepth   *obs.Histogram
}

func newReceiver(conn *Conn, mode ReceiverMode, rcvBuf int) *Receiver {
	return &Receiver{
		conn:    conn,
		mode:    mode,
		rcvBuf:  rcvBuf,
		oooMeta: make(map[int64]rxSeg),
	}
}

// Mode returns the configured receiver mode.
func (r *Receiver) Mode() ReceiverMode { return r.mode }

// instrument resolves the receiver's metric handles from reg.
func (r *Receiver) instrument(reg *obs.Registry) {
	r.mDelivBytes = reg.Counter("recv.delivered_bytes")
	r.mDelivSegs = reg.Counter("recv.delivered_segments")
	r.mOOODepth = reg.Histogram("recv.ooo_depth")
}

// OnDeliver registers the in-order delivery callback (the application
// read path), replacing any previous one. Use AddDeliveryHook to
// observe deliveries without claiming the slot.
func (r *Receiver) OnDeliver(fn func(seq int64, size int, at time.Duration)) {
	r.onDeliver = fn
}

// AddDeliveryHook chains fn onto the delivery callback: any previously
// registered callback (OnDeliver consumer or earlier hook) still runs,
// then fn. It lets observers — the fleet engine's latency probes, the
// ConservationChecker — coexist on the single delivery path without
// silently displacing each other.
func (r *Receiver) AddDeliveryHook(fn func(seq int64, size int, at time.Duration)) {
	if fn == nil {
		return
	}
	prev := r.onDeliver
	if prev == nil {
		r.onDeliver = fn
		return
	}
	r.onDeliver = func(seq int64, size int, at time.Duration) {
		prev(seq, size, at)
		fn(seq, size, at)
	}
}

// NextMetaSeq exposes the in-order delivery frontier.
func (r *Receiver) NextMetaSeq() int64 { return r.nextMetaSeq }

func (r *Receiver) addSubflow() {
	r.perSbf = append(r.perSbf, &sbfRx{
		held:         make(map[int64]rxSeg),
		receivedHigh: make(map[int64]bool),
	})
}

// rwnd is the advertised receive window: buffer minus bytes held in
// reorder queues (the in-order application consumes immediately).
func (r *Receiver) rwnd() int64 {
	held := r.oooBytes
	for _, srx := range r.perSbf {
		for _, seg := range srx.held {
			held += seg.size
		}
	}
	w := int64(r.rcvBuf - held)
	if w < 0 {
		w = 0
	}
	return w
}

// onData handles one segment arriving on subflow s and returns the
// acknowledgement through the reverse path.
func (r *Receiver) onData(s *Subflow, sbfSeq, metaSeq int64, size int) {
	srx := r.perSbf[s.id]
	duplicate := sbfSeq < srx.nextExpected || srx.receivedHigh[sbfSeq]
	if !duplicate {
		srx.receivedHigh[sbfSeq] = true
		switch r.mode {
		case ReceiverOptimized:
			r.metaProcess(metaSeq, size)
			r.advanceSbf(srx)
		case ReceiverLegacy:
			srx.held[sbfSeq] = rxSeg{metaSeq: metaSeq, size: size}
			if sbfSeq != srx.nextExpected {
				// A subflow-level gap keeps this segment in the
				// subflow out-of-order queue even though the meta
				// socket might already be able to use it.
				r.HeldByLegacy++
			}
			r.drainLegacy(srx)
		}
	} else {
		r.DuplicateSegments++
	}
	// Acknowledge with the (possibly advanced) cumulative DATA_ACK and
	// the current window.
	metaCumAck := r.nextMetaSeq
	rwnd := r.rwnd()
	s.link.Rev.Send(ackSize, func() {
		s.handleAck(sbfSeq, metaCumAck, rwnd)
	})
}

// advanceSbf advances the subflow contiguity pointer past received
// segments (bookkeeping shared by both modes).
func (r *Receiver) advanceSbf(srx *sbfRx) {
	for srx.receivedHigh[srx.nextExpected] {
		delete(srx.receivedHigh, srx.nextExpected)
		srx.nextExpected++
	}
}

// drainLegacy pushes in-subflow-order segments up to the meta socket.
func (r *Receiver) drainLegacy(srx *sbfRx) {
	for {
		seg, ok := srx.held[srx.nextExpected]
		if !ok {
			return
		}
		delete(srx.held, srx.nextExpected)
		delete(srx.receivedHigh, srx.nextExpected)
		srx.nextExpected++
		r.metaProcess(seg.metaSeq, seg.size)
	}
}

// metaProcess inserts one segment into the meta-level reorder state
// and delivers any newly in-order prefix to the application.
func (r *Receiver) metaProcess(metaSeq int64, size int) {
	if metaSeq < r.nextMetaSeq {
		r.DuplicateSegments++
		return
	}
	if _, dup := r.oooMeta[metaSeq]; dup {
		r.DuplicateSegments++
		return
	}
	if metaSeq == r.nextMetaSeq {
		r.deliver(metaSeq, size)
		r.nextMetaSeq++
		for {
			seg, ok := r.oooMeta[r.nextMetaSeq]
			if !ok {
				break
			}
			delete(r.oooMeta, r.nextMetaSeq)
			r.oooBytes -= seg.size
			r.deliver(seg.metaSeq, seg.size)
			r.nextMetaSeq++
		}
		return
	}
	r.oooMeta[metaSeq] = rxSeg{metaSeq: metaSeq, size: size}
	r.oooBytes += size
	r.mOOODepth.Observe(int64(len(r.oooMeta)))
}

func (r *Receiver) deliver(seq int64, size int) {
	r.DeliveredBytes += int64(size)
	r.DeliveredSegments++
	r.mDelivBytes.Add(int64(size))
	r.mDelivSegs.Add(1)
	r.conn.trace(obs.EvDeliver, -1, seq, int64(size), 0)
	if r.onDeliver != nil {
		r.onDeliver(seq, size, r.conn.eng.Now())
	}
}
