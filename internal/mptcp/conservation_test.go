package mptcp

// Randomized end-to-end conservation tests: for random networks,
// schedulers and workloads, the connection must deliver every byte
// exactly once, in order, and eventually acknowledge everything.
// These invariants hold for ANY scheduler by construction of the
// runtime (graceful action application, mandatory subflow
// retransmission, reinjection) — the property the paper's isolation
// story depends on: a bad scheduler may be slow, never incorrect.

import (
	"math/rand"
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

func corpusNames() []string {
	names := make([]string, 0, len(schedlib.All))
	for name := range schedlib.All {
		names = append(names, name)
	}
	return names
}

func TestRandomScenarioConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	names := corpusNames()
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		seed := rng.Int63()
		scheduler := names[rng.Intn(len(names))]
		nPaths := 1 + rng.Intn(3)
		backend := []core.Backend{core.BackendInterpreter, core.BackendCompiled, core.BackendVM}[rng.Intn(3)]
		ccs := []CongestionControl{LIA{}, Reno{}, OLIA{}}
		cc := ccs[rng.Intn(len(ccs))]

		eng := netsim.NewEngine(seed)
		conn := NewConn(eng, Config{CC: cc})
		for i := 0; i < nPaths; i++ {
			link := netsim.NewLink(eng, netsim.PathConfig{
				Name:   "p",
				Rate:   netsim.ConstantRate(float64(1+rng.Intn(8)) * 1e6),
				Delay:  time.Duration(1+rng.Intn(40)) * time.Millisecond,
				Jitter: time.Duration(rng.Intn(3)) * time.Millisecond,
				Loss:   netsim.BernoulliLoss{P: float64(rng.Intn(5)) / 100},
			})
			if _, err := conn.AddSubflow(SubflowConfig{
				Name:    "p",
				Link:    link,
				Backup:  i > 0 && rng.Intn(3) == 0,
				StartAt: time.Duration(rng.Intn(200)) * time.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
		}
		conn.SetScheduler(core.MustLoad(scheduler, schedlib.All[scheduler], backend))
		// Give the intent-driven schedulers plausible register values.
		conn.SetRegister(schedlib.RegTarget, int64(1+rng.Intn(8))<<20)
		conn.SetRegister(schedlib.RegCompRatio, 20)

		var total int64
		chk := &deliveryChecker{t: t}
		chk.attach(conn)
		bursts := 1 + rng.Intn(6)
		for b := 0; b < bursts; b++ {
			size := 1 + rng.Intn(128<<10)
			at := time.Duration(rng.Intn(3000)) * time.Millisecond
			total += int64(size)
			eng.At(at, func() { conn.Send(size, int64(rng.Intn(4))) })
		}
		// End-of-flow signal for the compensating family.
		eng.At(3500*time.Millisecond, func() { conn.SetRegister(schedlib.RegFlowEnd, 1) })
		eng.RunUntil(300 * time.Second)

		if chk.bytes != total {
			t.Fatalf("trial %d (%s on %s, %d paths, seed %d): delivered %d bytes, want exactly %d",
				trial, scheduler, backend, nPaths, seed, chk.bytes, total)
		}
		if !conn.AllAcked() {
			t.Fatalf("trial %d (%s on %s, %d paths, seed %d): not fully acked (Q=%d QU=%d RQ=%d)",
				trial, scheduler, backend, nPaths, seed,
				conn.QueuedSegments(), conn.UnackedSegments(), conn.reinjectQ.len())
		}
	}
}

// TestDeadSubflowNeverWedgesConnection injects a mid-transfer path
// death under every corpus scheduler and requires completion through
// the surviving subflow — the stale-reference/starvation resilience
// claim of §3.3 exercised end to end.
func TestDeadSubflowNeverWedgesConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for _, scheduler := range corpusNames() {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			eng := netsim.NewEngine(5)
			conn := NewConn(eng, Config{})
			dying := netsim.NewLink(eng, netsim.PathConfig{
				Name: "dying",
				Rate: netsim.SteppedRate(
					netsim.Step{From: 0, Rate: 3e6},
					netsim.Step{From: 300 * time.Millisecond, Rate: 0},
				),
				Delay: 5 * time.Millisecond,
			})
			healthy := netsim.NewLink(eng, netsim.PathConfig{
				Name:  "healthy",
				Rate:  netsim.ConstantRate(3e6),
				Delay: 15 * time.Millisecond,
			})
			if _, err := conn.AddSubflow(SubflowConfig{Name: "dying", Link: dying}); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.AddSubflow(SubflowConfig{Name: "healthy", Link: healthy}); err != nil {
				t.Fatal(err)
			}
			conn.SetScheduler(core.MustLoad(scheduler, schedlib.All[scheduler], core.BackendCompiled))
			conn.SetRegister(schedlib.RegTarget, 8<<20)
			chk := &deliveryChecker{t: t}
			chk.attach(conn)
			const total = 1 << 20
			eng.After(0, func() { conn.Send(total, 0) })
			// The path manager notices the dead subflow eventually.
			eng.At(2*time.Second, func() { conn.subflows[0].Close() })
			eng.RunUntil(120 * time.Second)
			if chk.bytes != total {
				t.Fatalf("%s wedged after subflow death: delivered %d of %d", scheduler, chk.bytes, total)
			}
		})
	}
}
