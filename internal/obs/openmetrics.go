package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// openMetricsPrefix namespaces every exposed metric.
const openMetricsPrefix = "progmp_"

// OpenMetricsContentType is the content type of the exposition format
// (served by the ctl HTTP listener).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// promName converts a registry metric name (dot-separated lower_snake,
// e.g. "conn.sched_execs") to an OpenMetrics metric name
// ("progmp_conn_sched_execs"). Characters outside [a-z0-9_] map to
// '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(openMetricsPrefix) + len(name))
	b.WriteString(openMetricsPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as {k="v",...}; "" for no labels.
// Label values are escaped per the exposition format.
func promLabels(pairs [][2]string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[1])
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// series is one exposed sample line: a label set and its value.
type series struct {
	labels string
	value  int64
}

// collectSeries groups one metric's per-source values by rendered
// label set (duplicate label sets merge so the exposition never emits
// the same series twice), in first-seen order.
func collectSeries(sources []LabeledSnapshot, pick func(Snapshot) (int64, bool), sum bool) []series {
	var order []string
	byLabel := map[string]int64{}
	for _, src := range sources {
		v, ok := pick(src.Snap)
		if !ok {
			continue
		}
		key := promLabels(src.Labels.pairs())
		if _, seen := byLabel[key]; !seen {
			order = append(order, key)
			byLabel[key] = v
		} else if sum {
			byLabel[key] += v
		} else {
			byLabel[key] = v // gauge semantics: last wins
		}
	}
	out := make([]series, 0, len(order))
	for _, key := range order {
		out = append(out, series{labels: key, value: byLabel[key]})
	}
	return out
}

// WriteOpenMetrics renders an aggregated snapshot in the OpenMetrics
// text exposition format (also accepted by Prometheus): counters and
// gauges as per-source labeled series (conn/scheduler/path labels),
// histograms as the cross-source bucket merge with cumulative le
// buckets. Output is deterministic: metric names sort, sources keep
// attach order.
func WriteOpenMetrics(w io.Writer, snap AggSnapshot) error {
	bw := bufio.NewWriter(w)

	for _, name := range snap.CounterNames() {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		ss := collectSeries(snap.Sources, func(s Snapshot) (int64, bool) {
			v, ok := s.Counters[name]
			return v, ok
		}, true)
		for _, s := range ss {
			fmt.Fprintf(bw, "%s_total%s %d\n", pn, s.labels, s.value)
		}
	}

	for _, name := range snap.GaugeNames() {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		ss := collectSeries(snap.Sources, func(s Snapshot) (int64, bool) {
			v, ok := s.Gauges[name]
			return v, ok
		}, false)
		for _, s := range ss {
			fmt.Fprintf(bw, "%s%s %d\n", pn, s.labels, s.value)
		}
	}

	for _, name := range snap.HistNames() {
		h := snap.Hists[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum int64
		for i := 0; i < NumHistBuckets; i++ {
			if h.Buckets[i] == 0 {
				continue
			}
			cum += h.Buckets[i]
			// Observations are integers, so the inclusive le bound of
			// bucket i ([2^(i-1), 2^i)) is 2^i - 1; bucket 0 (<= 0) is 0.
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, BucketUpperBound(i)-1, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}

	if _, err := fmt.Fprintln(bw, "# EOF"); err != nil {
		return err
	}
	return bw.Flush()
}

// RenderOpenMetrics is WriteOpenMetrics into a string (the ctl
// metrics-agg verb's payload).
func RenderOpenMetrics(snap AggSnapshot) string {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, snap); err != nil {
		return ""
	}
	return b.String()
}
