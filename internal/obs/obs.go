// Package obs is the unified observability layer: a fixed-size ring
// buffer of typed scheduler-decision events (the Tracer) and a registry
// of named counters/gauges/histograms (the Registry). It is the
// userspace analogue of the paper's "extensive proc-based interface
// with debugging and performance statistics" (§4.1), extended with
// per-decision event traces so that every transmitted packet's subflow
// choice is attributable to the scheduler execution — and the decision
// site inside the scheduler program — that produced it.
//
// Design constraints:
//
//   - Zero allocation on the hot path. Recording an event writes one
//     fixed-size Event into a preallocated ring; observing a metric is
//     one atomic add. When tracing is off, instrumented code pays a
//     single nil check (all obs types are nil-safe no-ops).
//   - Safe for concurrent use. Multiple connections may share a Tracer
//     or Registry; the ring is mutex-guarded, metrics are atomics.
//   - Bounded memory. The ring overwrites its oldest events; nothing
//     in this package grows with trace length.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind enumerates the typed trace events.
type EventKind uint8

// The event taxonomy (see docs/OBSERVABILITY.md).
const (
	EvNone      EventKind = iota
	EvExecStart           // scheduler execution begins (Exec = execution id, Aux = iteration within the trigger)
	EvExecEnd             // scheduler execution ends (Aux = number of recorded actions)
	EvPush                // packet transmitted (Seq, Sbf, Site; Aux = packet size)
	EvPop                 // packet popped from a queue (Seq, Site; Aux = queue id)
	EvDrop                // packet deliberately dropped (Seq, Site)
	EvEnqueue             // application enqueued data (Seq = first new seq, Aux = bytes)
	EvReinject            // packet became a reinjection candidate (Seq)
	EvAck                 // cumulative DATA_ACK processed (Sbf; Aux = meta cum-ack)
	EvLoss                // segment suspected lost (Seq, Sbf; Aux = subflow seq)
	EvRTO                 // retransmission timeout fired (Sbf, Seq; Aux = backoff count)
	EvSbfUp               // subflow established (Sbf)
	EvSbfDown             // subflow closed (Sbf)
	EvCwnd                // congestion window changed (Sbf; Aux = cwnd in milli-segments)
	EvDeliver             // receiver delivered in-order data (Seq; Aux = bytes)
	// Robustness events (package guard and the core fallback path).
	EvSchedFallback   // generic-VM fallback execution itself failed (actions discarded)
	EvGuardPanic      // supervised scheduler panicked (execution discarded)
	EvGuardBadAction  // supervisor stripped invalid actions (Aux = count)
	EvGuardStall      // stall strike: work available, no actions for K executions
	EvGuardQuarantine // user scheduler quarantined (Aux = probation backoff in µs, Site = analyzer warnings at admission)
	EvGuardProbe      // probation began: user scheduler on trial
	EvGuardRestore    // user scheduler re-promoted after clean trials
	// Control-plane events (package ctl and the hot-swap path).
	EvSchedSwap   // scheduler replaced on a live connection (Aux: 0 immediate, 1 deferred to the execution boundary, 2 supervisor retarget)
	EvCtlSubEvict // trace subscription evicted after too many consecutive drops (Aux = consecutive drops at eviction)
	// Fleet-quarantine events (package guard's Fleet tier).
	EvFleetBlock // program fleet-blocked: quarantined on >= K connections (Aux = connections blocked, Site = K)
	EvFleetLift  // fleet block lifted after a clean backoff window (Aux = connections on probation)
	numEventKinds
)

var eventKindNames = [...]string{
	EvNone:      "NONE",
	EvExecStart: "EXEC_START",
	EvExecEnd:   "EXEC_END",
	EvPush:      "PUSH",
	EvPop:       "POP",
	EvDrop:      "DROP",
	EvEnqueue:   "ENQUEUE",
	EvReinject:  "REINJECT",
	EvAck:       "ACK",
	EvLoss:      "LOSS",
	EvRTO:       "RTO",
	EvSbfUp:     "SBF_UP",
	EvSbfDown:   "SBF_DOWN",
	EvCwnd:      "CWND",
	EvDeliver:   "DELIVER",

	EvSchedFallback:   "SCHED_FALLBACK",
	EvGuardPanic:      "GUARD_PANIC",
	EvGuardBadAction:  "GUARD_BAD_ACTION",
	EvGuardStall:      "GUARD_STALL",
	EvGuardQuarantine: "GUARD_QUARANTINE",
	EvGuardProbe:      "GUARD_PROBE",
	EvGuardRestore:    "GUARD_RESTORE",

	EvSchedSwap:   "SCHED_SWAP",
	EvCtlSubEvict: "CTL_SUB_EVICT",
	EvFleetBlock:  "FLEET_BLOCK",
	EvFleetLift:   "FLEET_LIFT",
}

// String names the event kind as spelled in trace output.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// KindFromString resolves a trace-output spelling back to its kind; it
// returns EvNone, false for unknown names.
func KindFromString(s string) (EventKind, bool) {
	for k, name := range eventKindNames {
		if name == s && k != int(EvNone) {
			return EventKind(k), true
		}
	}
	return EvNone, false
}

// Event is one fixed-size trace record. Field meaning depends on Kind
// (see the kind constants); unused fields are -1 (Sbf, Seq) or 0.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Exec is the scheduler execution id the event belongs to
	// (0 outside any execution). Execution ids are unique per Tracer.
	Exec uint64
	// Seq is the packet meta sequence number, -1 when not applicable.
	Seq int64
	// Aux carries kind-specific payload (queue id, byte count, cwnd).
	Aux int64
	// Conn identifies the connection (assigned at attach time).
	Conn int32
	// Sbf is the subflow id, -1 when not applicable.
	Sbf int32
	// Site is the decision site inside the scheduler program that
	// recorded the action: the source line for the interpreter and
	// compiled back-ends, the bytecode pc for the VM, 0 for native
	// schedulers. Only PUSH/POP/DROP events carry a site, with one
	// reuse: GUARD_QUARANTINE carries the static analyzer's warning
	// count at admission (supervision events have no program counter).
	Site int32
	Kind EventKind
}

// Tracer records events into a fixed-size ring buffer. The zero value
// is not usable; construct with NewTracer. A nil *Tracer is a valid
// no-op sink: Record on nil returns immediately, so instrumented code
// needs no explicit enable flag.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf[total%len] is the next slot
	subs  []*Subscription

	execSeq atomic.Uint64
	connSeq atomic.Int32
}

// DefaultTracerCapacity is the ring size used when a non-positive
// capacity is requested (§4.1-style debugging wants history, not
// completeness).
const DefaultTracerCapacity = 1 << 16

// NewTracer allocates a tracer with capacity ring slots.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends ev to the ring, overwriting the oldest event when
// full. It is safe for concurrent use and allocates nothing. Live
// subscriptions receive a copy; a subscriber that cannot keep up loses
// events (counted per subscription) rather than slowing the data path,
// and one that loses EvictAfter events in a row without draining a
// single frame is evicted: its channel closes, and a CTL_SUB_EVICT
// event is recorded so the stall is attributable in the trace.
//
//progmp:hotpath
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.record(ev)
	t.mu.Unlock()
}

// record is Record under t.mu (eviction re-enters it for the evict
// event).
func (t *Tracer) record(ev Event) {
	t.buf[t.total%uint64(len(t.buf))] = ev
	t.total++
	for i := 0; i < len(t.subs); i++ {
		s := t.subs[i]
		select {
		case s.ch <- ev:
			s.consecDrops = 0
		default:
			s.dropped.Add(1)
			s.consecDrops++
			if s.evictAfter > 0 && s.consecDrops >= s.evictAfter {
				t.evictLocked(s, ev.At)
				i-- // t.subs shrank in place
			}
		}
	}
}

// evictLocked removes a permanently-stalled subscription under t.mu:
// close the channel (consumers see end-of-stream), mark it evicted, and
// record the eviction in the ring so the trace shows who fell behind.
func (t *Tracer) evictLocked(s *Subscription, at time.Duration) {
	if s.closed {
		return
	}
	s.closed = true
	s.evicted.Store(true)
	for i, sub := range t.subs {
		if sub == s {
			//progmp:ignore hotpath in-place shrink: len never grows past cap
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
	t.buf[t.total%uint64(len(t.buf))] = Event{
		At: at, Kind: EvCtlSubEvict, Conn: -1, Seq: -1, Sbf: -1,
		Aux: int64(s.consecDrops),
	}
	t.total++
}

// Subscription is a live feed of events recorded after Subscribe. It
// decouples consumers from the recording hot path: the tracer never
// blocks on a subscriber, it drops instead — and evicts subscribers
// that stop draining entirely (see Record).
type Subscription struct {
	t           *Tracer
	ch          chan Event
	dropped     atomic.Uint64
	evicted     atomic.Bool
	consecDrops int  // guarded by t.mu; reset by any successful send
	evictAfter  int  // immutable after Subscribe; 0 disables eviction
	closed      bool // guarded by t.mu
}

// DefaultSubscriptionBuffer is the channel depth used when Subscribe is
// asked for a non-positive buffer.
const DefaultSubscriptionBuffer = 4096

// DefaultSubscriptionEvictDrops is how many consecutive drops (with not
// a single frame delivered in between) evict a subscriber when
// SubscribeEvict is asked for a non-positive threshold. Combined with
// the buffer it means an evicted subscriber sat on a full queue for
// buffer+threshold events without consuming one — stalled, not slow.
// The threshold is deliberately large: a fast-forwarded simulation can
// record hundreds of thousands of events per wall millisecond, so a
// healthy consumer that merely loses the CPU for a moment must not
// trip it, while a truly stalled one (blocked on a dead socket) still
// does within a second or two of simulated traffic.
const DefaultSubscriptionEvictDrops = 1 << 20

// Subscribe attaches a live event feed with the given channel buffer
// (<= 0 selects DefaultSubscriptionBuffer) and the default eviction
// threshold. The caller must drain Events() promptly or accept drops,
// and must Close the subscription when done. Safe on nil (returns nil;
// a nil *Subscription is a no-op whose Events channel is nil).
func (t *Tracer) Subscribe(buf int) *Subscription {
	return t.SubscribeEvict(buf, 0)
}

// SubscribeEvict is Subscribe with an explicit eviction threshold:
// after evictAfter consecutive drops the subscription is closed by the
// tracer (<= 0 selects DefaultSubscriptionEvictDrops; a negative
// threshold of -1 disables eviction entirely for callers that prefer
// unbounded dropping).
func (t *Tracer) SubscribeEvict(buf, evictAfter int) *Subscription {
	if t == nil {
		return nil
	}
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	if evictAfter == 0 {
		evictAfter = DefaultSubscriptionEvictDrops
	} else if evictAfter < 0 {
		evictAfter = 0
	}
	s := &Subscription{t: t, ch: make(chan Event, buf), evictAfter: evictAfter}
	t.mu.Lock()
	t.subs = append(t.subs, s)
	t.mu.Unlock()
	return s
}

// Evicted reports whether the tracer closed this subscription for
// falling too far behind (see SubscribeEvict). Safe on nil.
func (s *Subscription) Evicted() bool {
	if s == nil {
		return false
	}
	return s.evicted.Load()
}

// Events returns the subscription's feed. The channel is closed by
// Close. Safe on nil (returns nil).
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events this subscription lost to a full
// buffer. Safe on nil.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close detaches the subscription and closes its channel. Idempotent
// and safe on nil. Closing under the tracer lock guarantees no Record
// is concurrently sending on the channel.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range s.t.subs {
		if sub == s {
			s.t.subs = append(s.t.subs[:i], s.t.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// NextExecID returns a fresh scheduler-execution id (ids start at 1;
// 0 means "outside any execution"). Safe on nil.
//
//progmp:hotpath
func (t *Tracer) NextExecID() uint64 {
	if t == nil {
		return 0
	}
	return t.execSeq.Add(1)
}

// RegisterConn returns a fresh connection id for event labelling.
// Safe on nil (returns 0).
func (t *Tracer) RegisterConn() int32 {
	if t == nil {
		return 0
	}
	return t.connSeq.Add(1)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns how many events were ever recorded, including ones the
// ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Events returns the retained events, oldest first. The result is a
// copy; the tracer may keep recording concurrently.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	cap64 := uint64(len(t.buf))
	if n <= cap64 {
		out := make([]Event, n)
		copy(out, t.buf[:n])
		return out
	}
	// Wrapped: oldest retained event is at total%cap.
	out := make([]Event, cap64)
	start := n % cap64
	copy(out, t.buf[start:])
	copy(out[cap64-start:], t.buf[:start])
	return out
}

// Reset discards all retained events (capacity is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total = 0
}
