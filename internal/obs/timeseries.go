package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTimeSeriesCapacity is the ring size NewTimeSeries selects for
// capacity <= 0: at a 100 ms sampling interval it holds ~7 minutes.
const DefaultTimeSeriesCapacity = 4096

// Sample is one time-series point: the aggregated fleet metrics at one
// instant. Histograms are carried as summaries (count/mean/quantiles),
// not raw buckets, so a dumped series stays compact enough to plot.
type Sample struct {
	AtUS     int64                   `json:"at_us"`
	Sources  int                     `json:"sources"`
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]GaugeAgg     `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// TimeSeries records aggregated metric samples into a fixed-size ring:
// the trajectory companion to the Aggregator's point-in-time merge.
// The caller drives sampling (typically on the simulation clock or a
// wall-clock ticker) so the recorder works under virtual and real
// time alike; the ring overwrites its oldest samples, so memory stays
// bounded no matter how long the run is.
type TimeSeries struct {
	agg *Aggregator

	mu      sync.Mutex
	ring    []Sample
	next    int
	size    int
	dropped uint64
}

// NewTimeSeries creates a recorder over agg with the given ring
// capacity (<= 0 selects DefaultTimeSeriesCapacity).
func NewTimeSeries(agg *Aggregator, capacity int) *TimeSeries {
	if capacity <= 0 {
		capacity = DefaultTimeSeriesCapacity
	}
	return &TimeSeries{agg: agg, ring: make([]Sample, capacity)}
}

// Sample aggregates the sources now and appends the sample, stamped
// with the given time. It returns the recorded sample.
func (ts *TimeSeries) Sample(at time.Duration) Sample {
	snap := ts.agg.Aggregate()
	s := Sample{
		AtUS:     at.Microseconds(),
		Sources:  snap.NumSources,
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	if len(snap.Hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(snap.Hists))
		for name, h := range snap.Hists {
			s.Hists[name] = HistSnapshot{
				Count: h.Count, Sum: h.Sum, Mean: h.Mean,
				P50: h.P50, P99: h.P99, P999: h.P999,
			}
		}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.size == len(ts.ring) {
		ts.dropped++
	} else {
		ts.size++
	}
	ts.ring[ts.next] = s
	ts.next = (ts.next + 1) % len(ts.ring)
	return s
}

// Samples returns the retained samples in chronological order.
func (ts *TimeSeries) Samples() []Sample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Sample, 0, ts.size)
	start := ts.next - ts.size
	if start < 0 {
		start += len(ts.ring)
	}
	for i := 0; i < ts.size; i++ {
		out = append(out, ts.ring[(start+i)%len(ts.ring)])
	}
	return out
}

// Len reports the number of retained samples.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.size
}

// Dropped reports how many samples were overwritten by ring wrap.
func (ts *TimeSeries) Dropped() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.dropped
}

// WriteJSONL streams the retained samples as one JSON object per line
// (the offline-plotting format of mpsim -metrics-out).
func (ts *TimeSeries) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range ts.Samples() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}
