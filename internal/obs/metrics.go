package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a
// valid no-op, so instrumented code can hold unconditionally-called
// pointers that are only non-nil when a registry is attached.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on nil.
//
//progmp:hotpath
//progmp:deterministic
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Safe on nil (returns 0).
//
//progmp:hotpath
//progmp:deterministic
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. A nil *Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on nil.
//
//progmp:hotpath
//progmp:deterministic
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last stored value. Safe on nil (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket
// 0 holds values <= 0, bucket i holds values in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets;
// enough resolution for latency (µs) and size (bytes) distributions
// without per-observation allocation. A nil *Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Safe on nil.
//
//progmp:hotpath
//progmp:deterministic
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations. Safe on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile approximates the q-quantile: the rank's bucket is located
// and the value is linearly interpolated between the bucket's bounds by
// the rank's position among the bucket's observations, so tight latency
// distributions are not quantized to the next power of two. q is
// clamped to [0, 1] (q <= 0 is the minimum, q >= 1 the maximum); an
// empty histogram reports 0. Safe on nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	var buckets [histBuckets]int64
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return quantileOf(&buckets, n, q)
}

// quantileOf computes the interpolated q-quantile of a bucket array
// with n total observations (shared by Histogram.Quantile and the
// aggregator's merged histograms). q outside [0, 1] is clamped: a
// negative q used to compute a negative rank (interpolating below the
// bucket floor) and q > 1 a rank past every bucket (reporting the
// 2^63-1 sentinel reserved for a corrupt bucket sum).
func quantileOf(buckets *[histBuckets]int64, n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Round the rank rather than truncate so high quantiles of small
	// populations (p999 of 3 observations) select the top sample.
	rank := int64(q*float64(n-1) + 0.5)
	var seen int64
	for i := 0; i < histBuckets; i++ {
		cnt := buckets[i]
		seen += cnt
		if seen <= rank {
			continue
		}
		if i == 0 {
			return 0
		}
		// Bucket i holds [2^(i-1), 2^i); place the rank within it.
		lo := float64(int64(1) << uint(i-1))
		hi := lo * 2
		if i >= 63 {
			hi = float64(1<<63 - 1)
		}
		before := seen - cnt
		frac := float64(rank-before) / float64(cnt)
		return int64(lo + (hi-lo)*frac)
	}
	return 1<<63 - 1
}

// Buckets copies the current bucket counts (bucket 0 holds values
// <= 0, bucket i holds [2^(i-1), 2^i)). Safe on nil (returns zeros).
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// NumHistBuckets exposes the histogram bucket count to consumers that
// merge or expose raw buckets (the aggregator, the OpenMetrics
// exporter).
const NumHistBuckets = histBuckets

// BucketUpperBound returns the exclusive upper bound of bucket i (the
// OpenMetrics "le" boundary is BucketUpperBound(i)-1, inclusive).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 1 // bucket 0 holds values <= 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// MetricKind discriminates the registry's metric types.
type MetricKind uint8

// The metric kinds, in Each visitation order.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the metric kind as spelled in Render output.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("MetricKind(%d)", int(k))
}

// Metric is the common interface of the registry's metric handles
// (*Counter, *Gauge, *Histogram), for consumers that visit a registry
// generically via Each.
type Metric interface {
	Kind() MetricKind
}

// Kind identifies a *Counter.
func (c *Counter) Kind() MetricKind { return KindCounter }

// Kind identifies a *Gauge.
func (g *Gauge) Kind() MetricKind { return KindGauge }

// Kind identifies a *Histogram.
func (h *Histogram) Kind() MetricKind { return KindHistogram }

// Registry holds named metrics. Metric handles are created on first
// use and stable thereafter, so hot paths resolve them once and then
// touch only atomics. The zero value is ready to use; a nil *Registry
// hands out nil handles, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it if needed. Safe on
// nil (returns a nil no-op handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Safe on nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Safe
// on nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Each visits every registered metric without copying the metric
// maps: counters, then gauges, then histograms, each in registration-
// independent map order. The registry lock is held for the duration,
// so fn must not create metrics on r (reads of other metrics and of
// the visited handles are fine — values are atomics). Safe on nil.
func (r *Registry) Each(fn func(name string, m Metric)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		fn(name, c)
	}
	for name, g := range r.gauges {
		fn(name, g)
	}
	for name, h := range r.hists {
		fn(name, h)
	}
}

// Snapshot is a point-in-time copy of the registry's values.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]int64        `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists"`
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// summarize condenses a histogram into its snapshot form.
func (h *Histogram) summarize() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// Snapshot copies the registry's current values. Safe on nil.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	r.Each(func(name string, m Metric) {
		switch m := m.(type) {
		case *Counter:
			snap.Counters[name] = m.Value()
		case *Gauge:
			snap.Gauges[name] = m.Value()
		case *Histogram:
			snap.Hists[name] = m.summarize()
		}
	})
	return snap
}

// Render formats the registry as an aligned proc-style text page,
// sorted by metric name within each section. Safe on nil.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	var b strings.Builder
	writeSection := func(kind string, names []string, line func(string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%-9s %-40s ", kind, name)
			line(name)
		}
	}
	counterNames := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		counterNames = append(counterNames, name)
	}
	writeSection("counter", counterNames, func(name string) {
		fmt.Fprintf(&b, "%d\n", snap.Counters[name])
	})
	gaugeNames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	writeSection("gauge", gaugeNames, func(name string) {
		fmt.Fprintf(&b, "%d\n", snap.Gauges[name])
	})
	histNames := make([]string, 0, len(snap.Hists))
	for name := range snap.Hists {
		histNames = append(histNames, name)
	}
	writeSection("histogram", histNames, func(name string) {
		h := snap.Hists[name]
		fmt.Fprintf(&b, "n=%d mean=%.1f p50=%d p99=%d p999=%d sum=%d\n",
			h.Count, h.Mean, h.P50, h.P99, h.P999, h.Sum)
	})
	return b.String()
}
