package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a
// valid no-op, so instrumented code can hold unconditionally-called
// pointers that are only non-nil when a registry is attached.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Safe on nil (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. A nil *Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last stored value. Safe on nil (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket
// 0 holds values <= 0, bucket i holds values in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets;
// enough resolution for latency (µs) and size (bytes) distributions
// without per-observation allocation. A nil *Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations. Safe on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile approximates the q-quantile (0..1) as the upper bound of
// the bucket containing it. Safe on nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return 1<<63 - 1
			}
			return 1 << uint(i)
		}
	}
	return 1<<63 - 1
}

// Registry holds named metrics. Metric handles are created on first
// use and stable thereafter, so hot paths resolve them once and then
// touch only atomics. The zero value is ready to use; a nil *Registry
// hands out nil handles, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it if needed. Safe on
// nil (returns a nil no-op handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Safe on nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Safe
// on nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of the registry's values.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count int64
	Sum   int64
	Mean  float64
	P50   int64
	P99   int64
}

// Snapshot copies the registry's current values. Safe on nil.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Hists[name] = HistSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		}
	}
	return snap
}

// Render formats the registry as an aligned proc-style text page,
// sorted by metric name within each section. Safe on nil.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	var b strings.Builder
	writeSection := func(kind string, names []string, line func(string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%-9s %-40s ", kind, name)
			line(name)
		}
	}
	counterNames := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		counterNames = append(counterNames, name)
	}
	writeSection("counter", counterNames, func(name string) {
		fmt.Fprintf(&b, "%d\n", snap.Counters[name])
	})
	gaugeNames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	writeSection("gauge", gaugeNames, func(name string) {
		fmt.Fprintf(&b, "%d\n", snap.Gauges[name])
	})
	histNames := make([]string, 0, len(snap.Hists))
	for name := range snap.Hists {
		histNames = append(histNames, name)
	}
	writeSection("histogram", histNames, func(name string) {
		h := snap.Hists[name]
		fmt.Fprintf(&b, "n=%d mean=%.1f p50<%d p99<%d sum=%d\n",
			h.Count, h.Mean, h.P50, h.P99, h.Sum)
	})
	return b.String()
}
