package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: EvPush, Seq: int64(i)})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first: seqs 6,7,8,9.
	for i, ev := range evs {
		if want := int64(6 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Record(Event{Kind: EvPop, Seq: int64(i)})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	tr.Reset()
	if got := len(tr.Events()); got != 0 {
		t.Fatalf("after Reset retained %d events, want 0", got)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: EvPush})
	if tr.NextExecID() != 0 || tr.RegisterConn() != 0 || tr.Cap() != 0 ||
		tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer methods must be no-ops")
	}
	tr.Reset()
}

func TestConcurrentRecord(t *testing.T) {
	tr := NewTracer(1 << 10)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn := tr.RegisterConn()
			for i := 0; i < per; i++ {
				exec := tr.NextExecID()
				tr.Record(Event{Kind: EvPush, Conn: conn, Exec: exec, Seq: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Total(); got != goroutines*per {
		t.Fatalf("Total = %d, want %d", got, goroutines*per)
	}
	if got := len(tr.Events()); got != 1<<10 {
		t.Fatalf("retained %d events, want full ring %d", got, 1<<10)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvExecStart; k < numEventKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "EventKind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("round trip of %q: got %v, %v", name, back, ok)
		}
	}
	if _, ok := KindFromString("NOT_A_KIND"); ok {
		t.Fatal("unknown name should not resolve")
	}
}

func TestWriteJSONLGolden(t *testing.T) {
	events := []Event{
		{At: 1500 * time.Microsecond, Kind: EvExecStart, Conn: 1, Exec: 7, Seq: -1, Sbf: -1},
		{At: 1500 * time.Microsecond, Kind: EvPush, Conn: 1, Exec: 7, Seq: 42, Sbf: 2, Site: 13, Aux: 1460},
		{At: 1501 * time.Microsecond, Kind: EvExecEnd, Conn: 1, Exec: 7, Seq: -1, Sbf: -1, Aux: 2},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	want := `{"at_us":1500,"ev":"EXEC_START","conn":1,"exec":7,"seq":-1,"sbf":-1,"site":0,"aux":0}
{"at_us":1500,"ev":"PUSH","conn":1,"exec":7,"seq":42,"sbf":2,"site":13,"aux":1460}
{"at_us":1501,"ev":"EXEC_END","conn":1,"exec":7,"seq":-1,"sbf":-1,"site":0,"aux":2}
`
	if buf.String() != want {
		t.Fatalf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i, ev := range parsed {
		if ev != toJSONL(events[i]) {
			t.Fatalf("event %d round trip mismatch: %+v", i, ev)
		}
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	events := []Event{
		{At: 10 * time.Microsecond, Kind: EvExecStart, Conn: 1, Exec: 3, Seq: -1, Sbf: -1},
		{At: 10 * time.Microsecond, Kind: EvPush, Conn: 1, Exec: 3, Seq: 5, Sbf: 0, Site: 2, Aux: 100},
		{At: 12 * time.Microsecond, Kind: EvExecEnd, Conn: 1, Exec: 3, Seq: -1, Sbf: -1, Aux: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[\n") || !strings.HasSuffix(out, "]\n") {
		t.Fatalf("not a JSON array:\n%s", out)
	}
	for _, want := range []string{
		`"name":"exec 3","ph":"B"`,
		`"name":"exec 3","ph":"E"`,
		`"name":"PUSH","ph":"i"`,
		`"pid":1,"tid":1,"s":"t"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace lacks %q:\n%s", want, out)
		}
	}
}

func TestRegistryAndRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	if c != reg.Counter("a.count") {
		t.Fatal("counter handle not stable")
	}
	c.Add(3)
	reg.Gauge("b.gauge").Set(-2)
	h := reg.Histogram("c.hist")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if snap.Counters["a.count"] != 3 || snap.Gauges["b.gauge"] != -2 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	if hs := snap.Hists["c.hist"]; hs.Count != 4 || hs.Sum != 106 {
		t.Fatalf("bad hist snapshot: %+v", hs)
	}
	out := reg.Render()
	for _, want := range []string{"counter", "a.count", "3", "gauge", "b.gauge", "-2", "histogram", "c.hist", "n=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(1)
	if got := reg.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if out := reg.Render(); out != "" {
		t.Fatalf("nil registry renders %q", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// Power-of-two buckets with linear interpolation inside the rank's
	// bucket: p50 of uniform 1..1000 comes out within a few counts of
	// the true median instead of being quantized to the bucket bound.
	if got := h.Quantile(0.5); got < 490 || got > 510 {
		t.Fatalf("p50 = %d, want ~500", got)
	}
	// p99 (true 990) lands in [512,1024); interpolation keeps it well
	// below the 1024 bound the pre-interpolation code reported.
	if got := h.Quantile(0.99); got < 900 || got >= 1024 {
		t.Fatalf("p99 = %d, want in [900,1024)", got)
	}
	if got := h.Mean(); got < 500 || got > 501 {
		t.Fatalf("mean = %f, want 500.5", got)
	}
}

func TestHistogramQuantileInterpolationTight(t *testing.T) {
	// A tight latency distribution entirely inside one bucket: 200
	// observations uniform over [520, 719] all land in [512, 1024).
	// Bucket-bound quantiles would report 1024 for every percentile;
	// interpolation must spread estimates across the bucket and order
	// them.
	h := &Histogram{}
	for i := int64(0); i < 200; i++ {
		h.Observe(520 + i)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %d >= p99 %d", p50, p99)
	}
	if p50 < 512 || p50 >= 1024 || p99 < 512 || p99 >= 1024 {
		t.Fatalf("quantiles escaped the bucket: p50=%d p99=%d", p50, p99)
	}
	// The true p50 is ~620; allow the bucket's linear model its error
	// but require it beats the 2x quantization of the bucket bound.
	if p50 > 900 {
		t.Fatalf("p50 = %d, interpolation not effective", p50)
	}
}

func TestRegistryEach(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(7)
	reg.Gauge("a.gauge").Set(-3)
	reg.Histogram("a.hist").Observe(9)
	seen := map[string]MetricKind{}
	reg.Each(func(name string, m Metric) {
		seen[name] = m.Kind()
	})
	want := map[string]MetricKind{
		"a.count": KindCounter,
		"a.gauge": KindGauge,
		"a.hist":  KindHistogram,
	}
	if len(seen) != len(want) {
		t.Fatalf("Each visited %v, want %v", seen, want)
	}
	for name, kind := range want {
		if seen[name] != kind {
			t.Fatalf("Each saw %q as %v, want %v", name, seen[name], kind)
		}
	}
	var nilReg *Registry
	nilReg.Each(func(string, Metric) { t.Fatal("nil registry visited a metric") })
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	qs := []float64{-0.1, 0, 0.5, 1, 1.1}

	// Empty histogram: every quantile (clamped or not) is 0, never an
	// index past the bucket array or the 2^63-1 sentinel.
	empty := &Histogram{}
	for _, q := range qs {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single observation: all quantiles collapse onto the one sample's
	// bucket. 100 lives in [64,128); q < 0 must not interpolate below
	// the bucket floor and q > 1 must not run past the bucket array.
	single := &Histogram{}
	single.Observe(100)
	for _, q := range qs {
		got := single.Quantile(q)
		if got < 64 || got >= 128 {
			t.Fatalf("single-obs Quantile(%v) = %d, want in [64,128)", q, got)
		}
	}
	// Out-of-range q clamps to the boundary quantile exactly.
	if single.Quantile(-0.1) != single.Quantile(0) {
		t.Fatalf("Quantile(-0.1) = %d, want Quantile(0) = %d",
			single.Quantile(-0.1), single.Quantile(0))
	}
	if single.Quantile(1.1) != single.Quantile(1) {
		t.Fatalf("Quantile(1.1) = %d, want Quantile(1) = %d",
			single.Quantile(1.1), single.Quantile(1))
	}
}
