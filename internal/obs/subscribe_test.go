package obs

import (
	"sync"
	"testing"
)

func TestSubscriptionReceivesEvents(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Kind: EvPush, Seq: 0}) // pre-subscribe: not delivered
	sub := tr.Subscribe(8)
	defer sub.Close()
	for i := 1; i <= 3; i++ {
		tr.Record(Event{Kind: EvPush, Seq: int64(i)})
	}
	for want := int64(1); want <= 3; want++ {
		ev := <-sub.Events()
		if ev.Seq != want {
			t.Fatalf("got seq %d, want %d", ev.Seq, want)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", sub.Dropped())
	}
}

func TestSubscriptionDropsWhenFull(t *testing.T) {
	tr := NewTracer(16)
	sub := tr.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: EvAck, Seq: int64(i)})
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("Dropped = %d, want 8", got)
	}
	// The retained events are the oldest two (drop-newest policy).
	if ev := <-sub.Events(); ev.Seq != 0 {
		t.Fatalf("first buffered seq = %d, want 0", ev.Seq)
	}
}

func TestSubscriptionCloseStopsDeliveryAndIsIdempotent(t *testing.T) {
	tr := NewTracer(16)
	sub := tr.Subscribe(4)
	tr.Record(Event{Kind: EvPush, Seq: 1})
	sub.Close()
	sub.Close() // idempotent
	tr.Record(Event{Kind: EvPush, Seq: 2})
	var got []Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("drained %v, want exactly the pre-close event", got)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("post-close records must not count as drops, got %d", sub.Dropped())
	}
}

func TestSubscriptionConcurrentRecordAndClose(t *testing.T) {
	tr := NewTracer(1 << 10)
	done := make(chan struct{})
	var producers sync.WaitGroup
	for g := 0; g < 4; g++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: EvPush, Seq: int64(i)})
			}
		}()
	}
	var subscribers sync.WaitGroup
	for s := 0; s < 4; s++ {
		subscribers.Add(1)
		go func() {
			defer subscribers.Done()
			sub := tr.Subscribe(16)
			defer sub.Close()
			for {
				select {
				case <-sub.Events():
				case <-done:
					return
				}
			}
		}()
	}
	producers.Wait()
	close(done)
	subscribers.Wait()
}

func TestNilSubscriptionIsNoOp(t *testing.T) {
	var tr *Tracer
	sub := tr.Subscribe(8)
	if sub != nil {
		t.Fatal("nil tracer must hand out a nil subscription")
	}
	if sub.Events() != nil || sub.Dropped() != 0 {
		t.Fatal("nil subscription methods must be no-ops")
	}
	sub.Close()
}

func TestSubscriptionEvictedAfterConsecutiveDrops(t *testing.T) {
	tr := NewTracer(64)
	sub := tr.SubscribeEvict(2, 5)
	// Fill the buffer (2 events), then drop 5 in a row: eviction.
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: EvPush, Seq: int64(i)})
	}
	if !sub.Evicted() {
		t.Fatalf("subscription not evicted after %d consecutive drops", sub.Dropped())
	}
	if got := sub.Dropped(); got != 5 {
		t.Fatalf("Dropped = %d, want 5", got)
	}
	// The channel is closed: the buffered events drain, then end-of-stream.
	var got []Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("drained %d buffered events, want 2", len(got))
	}
	// The eviction itself is in the trace, with the drop run in Aux.
	var evict *Event
	for _, ev := range tr.Events() {
		if ev.Kind == EvCtlSubEvict {
			ev := ev
			evict = &ev
		}
	}
	if evict == nil {
		t.Fatal("no CTL_SUB_EVICT event recorded")
	}
	if evict.Aux != 5 {
		t.Fatalf("CTL_SUB_EVICT Aux = %d, want 5", evict.Aux)
	}
	// Closing an evicted subscription is a harmless no-op.
	sub.Close()
	tr.Record(Event{Kind: EvPush, Seq: 99})
	if sub.Dropped() != 5 {
		t.Fatalf("post-evict records must not count as drops, got %d", sub.Dropped())
	}
}

func TestSubscriptionDrainResetsDropRun(t *testing.T) {
	tr := NewTracer(64)
	sub := tr.SubscribeEvict(1, 3)
	tr.Record(Event{Kind: EvPush, Seq: 0}) // fills the buffer
	tr.Record(Event{Kind: EvPush, Seq: 1}) // drop 1
	tr.Record(Event{Kind: EvPush, Seq: 2}) // drop 2
	<-sub.Events()                         // drain: the run resets
	tr.Record(Event{Kind: EvPush, Seq: 3}) // buffered again
	tr.Record(Event{Kind: EvPush, Seq: 4}) // drop 1 of a new run
	tr.Record(Event{Kind: EvPush, Seq: 5}) // drop 2
	if sub.Evicted() {
		t.Fatal("slow-but-draining subscriber must not be evicted")
	}
	if got := sub.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	sub.Close()
}

func TestSubscribeEvictDisabled(t *testing.T) {
	tr := NewTracer(64)
	sub := tr.SubscribeEvict(1, -1)
	defer sub.Close()
	for i := 0; i < DefaultSubscriptionEvictDrops+10; i++ {
		tr.Record(Event{Kind: EvPush, Seq: int64(i)})
	}
	if sub.Evicted() {
		t.Fatal("eviction-disabled subscription was evicted")
	}
}
