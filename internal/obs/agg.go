package obs

import (
	"sort"
	"sync"
)

// Labels identifies one metrics source within an Aggregator: the
// connection it belongs to, the scheduler it runs, and optionally the
// path/subflow it measures. Empty fields are omitted from exposition.
type Labels struct {
	Conn      string `json:"conn,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Path      string `json:"path,omitempty"`
}

// pairs returns the non-empty label pairs in canonical (sorted-key)
// order: conn, path, scheduler.
func (l Labels) pairs() [][2]string {
	var out [][2]string
	if l.Conn != "" {
		out = append(out, [2]string{"conn", l.Conn})
	}
	if l.Path != "" {
		out = append(out, [2]string{"path", l.Path})
	}
	if l.Scheduler != "" {
		out = append(out, [2]string{"scheduler", l.Scheduler})
	}
	return out
}

// Aggregator merges metric registries across connections and shards:
// the fleet tier of the observability layer. Each attached Registry is
// one labeled source (typically one per connection, plus an unlabeled
// engine/process registry); Aggregate reads every source and merges
// same-named metrics — counters sum, gauges keep last/min/max/sum,
// histograms merge bucket-by-bucket so quantiles of the union are
// exact to bucket resolution.
//
// Aggregation is lock-cheap by construction: sources register once
// (write lock), Aggregate takes a read lock on the source list and
// then touches only each registry's name->handle map lock plus atomic
// loads — the data-path writers never contend with it after handle
// resolution.
type Aggregator struct {
	mu      sync.RWMutex
	sources []Source
}

// Source is one attached registry with its identity labels.
type Source struct {
	Labels   Labels
	Registry *Registry
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Attach registers reg as a source under the given labels. Attaching
// the same registry twice double-counts it; use distinct registries
// per source. Safe on a nil *Aggregator (no-op).
func (a *Aggregator) Attach(labels Labels, reg *Registry) {
	if a == nil || reg == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Copy-on-write: Aggregate iterates a snapshot of this slice after
	// releasing the lock, so the backing array must never be mutated.
	next := make([]Source, len(a.sources)+1)
	copy(next, a.sources)
	next[len(a.sources)] = Source{Labels: labels, Registry: reg}
	a.sources = next
}

// Detach removes every source backed by reg (e.g. a closed
// connection). Safe on nil.
func (a *Aggregator) Detach(reg *Registry) { a.Remove(reg) }

// Remove deregisters every source backed by reg and reports whether
// any source was removed. Wire it into connection teardown: a finished
// connection whose registry stays attached keeps riding every fleet
// merge and OpenMetrics exposition forever — at fleet scale that is
// both a memory leak and a stale-series bug. Safe on nil. Concurrent
// Aggregate calls that already snapshotted the source list still merge
// the removed source once (copy-on-write semantics); every later call
// no longer sees it.
func (a *Aggregator) Remove(reg *Registry) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Copy-on-write like Attach: Aggregate iterates snapshots of this
	// slice after releasing the lock, so never mutate the backing array.
	kept := make([]Source, 0, len(a.sources))
	for _, s := range a.sources {
		if s.Registry != reg {
			kept = append(kept, s)
		}
	}
	removed := len(kept) != len(a.sources)
	a.sources = kept
	return removed
}

// NumSources reports the number of attached sources. Safe on nil.
func (a *Aggregator) NumSources() int {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.sources)
}

// GaugeAgg is the cross-source merge of one gauge: the value of the
// last source in attach order plus the min/max/sum over sources, so
// both "current" and "spread" readings survive aggregation.
type GaugeAgg struct {
	Last int64 `json:"last"`
	Min  int64 `json:"min"`
	Max  int64 `json:"max"`
	Sum  int64 `json:"sum"`
}

// HistAgg is the cross-source bucket merge of one histogram with its
// interpolated quantiles. Buckets stay exact under merging (bucket
// counts sum), so merged quantiles have the same bucket resolution as
// a single histogram's.
type HistAgg struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	// Buckets carries the merged power-of-two bucket counts for
	// exposition; it is omitted from JSON to keep snapshots compact.
	Buckets [histBuckets]int64 `json:"-"`
}

// quantiles fills the derived fields from Count/Sum/Buckets.
func (h *HistAgg) quantiles() {
	if h.Count == 0 {
		return
	}
	h.Mean = float64(h.Sum) / float64(h.Count)
	h.P50 = quantileOf(&h.Buckets, h.Count, 0.50)
	h.P99 = quantileOf(&h.Buckets, h.Count, 0.99)
	h.P999 = quantileOf(&h.Buckets, h.Count, 0.999)
}

// MergeHistogram folds one histogram's current state into the
// accumulator (bucket-by-bucket).
func (h *HistAgg) MergeHistogram(src *Histogram) {
	if src == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		h.Buckets[i] += src.buckets[i].Load()
	}
	h.Count += src.Count()
	h.Sum += src.Sum()
}

// LabeledSnapshot is one source's point-in-time values with its
// identity labels (the exposition layer's per-series view).
type LabeledSnapshot struct {
	Labels Labels   `json:"labels"`
	Snap   Snapshot `json:"snap"`
}

// AggSnapshot is a point-in-time merge across every attached source.
type AggSnapshot struct {
	// NumSources is the number of sources merged.
	NumSources int `json:"num_sources"`
	// Counters sum across sources.
	Counters map[string]int64 `json:"counters"`
	// Gauges keep last/min/max/sum across sources.
	Gauges map[string]GaugeAgg `json:"gauges"`
	// Hists merge bucket-by-bucket across sources.
	Hists map[string]HistAgg `json:"hists"`
	// Sources holds each source's own snapshot for labeled exposition.
	Sources []LabeledSnapshot `json:"sources,omitempty"`
}

// Aggregate merges a snapshot of every source. Safe on nil (returns an
// empty snapshot). Values are read with atomic loads while writers are
// live, so the result is a consistent-enough fleet view: each metric
// is internally consistent, cross-metric skew is bounded by the scan.
func (a *Aggregator) Aggregate() AggSnapshot {
	out := AggSnapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]GaugeAgg{},
		Hists:    map[string]HistAgg{},
	}
	if a == nil {
		return out
	}
	a.mu.RLock()
	sources := a.sources
	a.mu.RUnlock()
	out.NumSources = len(sources)
	for _, src := range sources {
		ls := LabeledSnapshot{Labels: src.Labels, Snap: Snapshot{
			Counters: map[string]int64{},
			Gauges:   map[string]int64{},
			Hists:    map[string]HistSnapshot{},
		}}
		// One pass per source through the registry's Each visitor: the
		// labeled per-source snapshot and the merged totals are built
		// together, without copying the metric maps.
		src.Registry.Each(func(name string, m Metric) {
			switch m := m.(type) {
			case *Counter:
				v := m.Value()
				ls.Snap.Counters[name] = v
				out.Counters[name] += v
			case *Gauge:
				v := m.Value()
				ls.Snap.Gauges[name] = v
				g, ok := out.Gauges[name]
				if !ok {
					g = GaugeAgg{Last: v, Min: v, Max: v, Sum: v}
				} else {
					g.Last = v
					if v < g.Min {
						g.Min = v
					}
					if v > g.Max {
						g.Max = v
					}
					g.Sum += v
				}
				out.Gauges[name] = g
			case *Histogram:
				ls.Snap.Hists[name] = m.summarize()
				h := out.Hists[name]
				h.MergeHistogram(m)
				out.Hists[name] = h
			}
		})
		out.Sources = append(out.Sources, ls)
	}
	for name, h := range out.Hists {
		h.quantiles()
		out.Hists[name] = h
	}
	return out
}

// CounterNames returns the sorted union of counter names across the
// merged sources (exposition order).
func (s *AggSnapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the sorted union of gauge names.
func (s *AggSnapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistNames returns the sorted union of histogram names.
func (s *AggSnapshot) HistNames() []string { return sortedKeys(s.Hists) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
