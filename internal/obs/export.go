package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLEvent is the wire form of one event in the JSONL export. Field
// order (struct order) is the serialization order, so output is
// deterministic and golden-testable.
type JSONLEvent struct {
	AtUS int64  `json:"at_us"`
	Ev   string `json:"ev"`
	Conn int32  `json:"conn"`
	Exec uint64 `json:"exec"`
	Seq  int64  `json:"seq"`
	Sbf  int32  `json:"sbf"`
	Site int32  `json:"site"`
	Aux  int64  `json:"aux"`
}

// ToJSONL returns ev in the JSONL wire form — the same encoding
// WriteJSONL streams — for consumers that forward single events (the
// ctl subscription stream).
func (ev Event) ToJSONL() JSONLEvent { return toJSONL(ev) }

// toJSONL converts an Event to its wire form.
func toJSONL(ev Event) JSONLEvent {
	return JSONLEvent{
		AtUS: ev.At.Microseconds(),
		Ev:   ev.Kind.String(),
		Conn: ev.Conn,
		Exec: ev.Exec,
		Seq:  ev.Seq,
		Sbf:  ev.Sbf,
		Site: ev.Site,
		Aux:  ev.Aux,
	}
}

// WriteJSONL streams events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toJSONL(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL decodes a JSONL event stream (the inverse of WriteJSONL),
// for tooling that filters or summarizes saved traces.
func ParseJSONL(r io.Reader) ([]JSONLEvent, error) {
	var out []JSONLEvent
	dec := json.NewDecoder(r)
	for {
		var ev JSONLEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// chromeEvent is one entry of the Chrome trace_event JSON array
// (the "JSON Array Format" consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events in Chrome trace_event format:
// scheduler executions become duration (B/E) slices on the
// connection's track, everything else becomes instant events on the
// subflow's track. Load the output in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ce)
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			TS:   float64(ev.At.Microseconds()),
			PID:  ev.Conn,
			TID:  ev.Sbf + 1, // track 0 is the connection itself
		}
		switch ev.Kind {
		case EvExecStart:
			ce.Name = fmt.Sprintf("exec %d", ev.Exec)
			ce.Ph = "B"
			ce.TID = 0
		case EvExecEnd:
			ce.Name = fmt.Sprintf("exec %d", ev.Exec)
			ce.Ph = "E"
			ce.TID = 0
		default:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"seq": ev.Seq, "exec": ev.Exec, "site": ev.Site, "aux": ev.Aux}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
