package obs

import (
	"strings"
	"testing"
)

// TestWriteOpenMetricsGolden locks the exposition format: TYPE lines,
// per-source labels, _total counter suffix, cumulative histogram
// buckets, and the # EOF terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	a := NewAggregator()
	r1, r2 := NewRegistry(), NewRegistry()
	a.Attach(Labels{Conn: "c1", Scheduler: "minRTT"}, r1)
	a.Attach(Labels{Conn: "c2", Scheduler: "redundant"}, r2)

	r1.Counter("conn.pushes").Add(10)
	r2.Counter("conn.pushes").Add(32)
	r1.Gauge("conn.cwnd").Set(4)
	r2.Gauge("conn.cwnd").Set(20)
	// Three observations: two in bucket [4,8) (le 7), one in [64,128)
	// (le 127).
	r1.Histogram("conn.lat").Observe(5)
	r1.Histogram("conn.lat").Observe(6)
	r2.Histogram("conn.lat").Observe(100)

	out := RenderOpenMetrics(a.Aggregate())
	want := `# TYPE progmp_conn_pushes counter
progmp_conn_pushes_total{conn="c1",scheduler="minRTT"} 10
progmp_conn_pushes_total{conn="c2",scheduler="redundant"} 32
# TYPE progmp_conn_cwnd gauge
progmp_conn_cwnd{conn="c1",scheduler="minRTT"} 4
progmp_conn_cwnd{conn="c2",scheduler="redundant"} 20
# TYPE progmp_conn_lat histogram
progmp_conn_lat_bucket{le="7"} 2
progmp_conn_lat_bucket{le="127"} 3
progmp_conn_lat_bucket{le="+Inf"} 3
progmp_conn_lat_sum 111
progmp_conn_lat_count 3
# EOF
`
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestWriteOpenMetricsEmpty(t *testing.T) {
	out := RenderOpenMetrics(NewAggregator().Aggregate())
	if out != "# EOF\n" {
		t.Fatalf("empty exposition = %q, want only # EOF", out)
	}
}

func TestWriteOpenMetricsDuplicateLabelSetsMerge(t *testing.T) {
	// Two unlabeled sources (e.g. two engine shards) must not emit the
	// same series twice: counters sum, gauges keep the last value.
	a := NewAggregator()
	r1, r2 := NewRegistry(), NewRegistry()
	a.Attach(Labels{}, r1)
	a.Attach(Labels{}, r2)
	r1.Counter("shard.ops").Add(3)
	r2.Counter("shard.ops").Add(4)
	r1.Gauge("shard.depth").Set(9)
	r2.Gauge("shard.depth").Set(2)

	out := RenderOpenMetrics(a.Aggregate())
	if got := strings.Count(out, "progmp_shard_ops_total"); got != 1 {
		t.Fatalf("counter series emitted %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, "progmp_shard_ops_total 7\n") {
		t.Fatalf("duplicate label sets did not sum:\n%s", out)
	}
	if !strings.Contains(out, "progmp_shard_depth 2\n") {
		t.Fatalf("gauge did not keep last value:\n%s", out)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"conn.sched_execs": "progmp_conn_sched_execs",
		"a.b-c":            "progmp_a_b_c",
		"x":                "progmp_x",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabelsEscapes(t *testing.T) {
	got := promLabels([][2]string{{"conn", `a"b\c`}})
	want := `{conn="a\"b\\c"}`
	if got != want {
		t.Fatalf("promLabels = %s, want %s", got, want)
	}
	if promLabels(nil) != "" {
		t.Fatal("empty pairs must render no braces")
	}
}
