package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAggregatorMergeSemantics(t *testing.T) {
	a := NewAggregator()
	r1, r2 := NewRegistry(), NewRegistry()
	a.Attach(Labels{Conn: "c1", Scheduler: "minRTT"}, r1)
	a.Attach(Labels{Conn: "c2", Scheduler: "redundant"}, r2)

	r1.Counter("conn.pushes").Add(10)
	r2.Counter("conn.pushes").Add(32)
	r2.Counter("conn.retrans").Add(5)

	r1.Gauge("conn.cwnd").Set(4)
	r2.Gauge("conn.cwnd").Set(20)

	r1.Histogram("conn.lat_ns").Observe(100)
	r1.Histogram("conn.lat_ns").Observe(100)
	r2.Histogram("conn.lat_ns").Observe(100000)

	snap := a.Aggregate()
	if snap.NumSources != 2 {
		t.Fatalf("NumSources = %d, want 2", snap.NumSources)
	}
	if got := snap.Counters["conn.pushes"]; got != 42 {
		t.Fatalf("merged counter = %d, want 42", got)
	}
	if got := snap.Counters["conn.retrans"]; got != 5 {
		t.Fatalf("one-sided counter = %d, want 5", got)
	}
	g := snap.Gauges["conn.cwnd"]
	if g.Last != 20 || g.Min != 4 || g.Max != 20 || g.Sum != 24 {
		t.Fatalf("gauge agg = %+v, want last=20 min=4 max=20 sum=24", g)
	}
	h := snap.Hists["conn.lat_ns"]
	if h.Count != 3 || h.Sum != 100200 {
		t.Fatalf("hist agg count/sum = %d/%d, want 3/100200", h.Count, h.Sum)
	}
	// 2 of 3 observations are 100, so p50 stays in 100's bucket [64,128)
	// and p999 in 100000's bucket [65536,131072).
	if h.P50 < 64 || h.P50 >= 128 {
		t.Fatalf("merged p50 = %d, want in [64,128)", h.P50)
	}
	if h.P999 < 65536 || h.P999 >= 131072 {
		t.Fatalf("merged p999 = %d, want in [65536,131072)", h.P999)
	}

	// Per-source labeled snapshots keep attach order and their own values.
	if len(snap.Sources) != 2 {
		t.Fatalf("Sources = %d entries, want 2", len(snap.Sources))
	}
	if snap.Sources[0].Labels.Conn != "c1" || snap.Sources[1].Labels.Conn != "c2" {
		t.Fatalf("source order/labels wrong: %+v", snap.Sources)
	}
	if snap.Sources[0].Snap.Counters["conn.pushes"] != 10 ||
		snap.Sources[1].Snap.Counters["conn.pushes"] != 32 {
		t.Fatalf("per-source counters wrong: %+v", snap.Sources)
	}

	a.Detach(r1)
	if got := a.NumSources(); got != 1 {
		t.Fatalf("after Detach NumSources = %d, want 1", got)
	}
	if got := a.Aggregate().Counters["conn.pushes"]; got != 32 {
		t.Fatalf("after Detach merged counter = %d, want 32", got)
	}
}

func TestAggregatorNilSafety(t *testing.T) {
	var a *Aggregator
	a.Attach(Labels{Conn: "x"}, NewRegistry())
	a.Detach(nil)
	if a.NumSources() != 0 {
		t.Fatal("nil aggregator has sources")
	}
	snap := a.Aggregate()
	if snap.NumSources != 0 || len(snap.Counters) != 0 {
		t.Fatalf("nil aggregate = %+v, want empty", snap)
	}
	b := NewAggregator()
	b.Attach(Labels{}, nil) // nil registry must be ignored
	if b.NumSources() != 0 {
		t.Fatal("nil registry attached")
	}
}

// TestAggregateWithLiveWriters exercises Aggregate concurrently with
// hot-path writers on every attached registry; run under -race this is
// the aggregation-vs-data-path safety test.
func TestAggregateWithLiveWriters(t *testing.T) {
	a := NewAggregator()
	const sources = 4
	regs := make([]*Registry, sources)
	for i := range regs {
		regs[i] = NewRegistry()
		a.Attach(Labels{Conn: string(rune('a' + i))}, regs[i])
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, reg := range regs {
		wg.Add(1)
		go func(reg *Registry) {
			defer wg.Done()
			c := reg.Counter("w.ops")
			g := reg.Gauge("w.depth")
			h := reg.Histogram("w.lat")
			// Work before checking stop so every writer records at
			// least one operation even if stop closes immediately.
			for i := int64(0); ; i++ {
				c.Add(1)
				g.Set(i % 100)
				h.Observe(i%1000 + 1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(reg)
	}
	// Concurrent attach/detach churn alongside aggregation.
	churn := NewRegistry()
	for i := 0; i < 50; i++ {
		a.Attach(Labels{Conn: "churn"}, churn)
		snap := a.Aggregate()
		if snap.NumSources < sources {
			t.Fatalf("aggregate saw %d sources, want >= %d", snap.NumSources, sources)
		}
		a.Detach(churn)
	}
	close(stop)
	wg.Wait()
	final := a.Aggregate()
	if final.Counters["w.ops"] <= 0 {
		t.Fatal("no writer progress observed")
	}
	var perSource int64
	for _, src := range final.Sources {
		perSource += src.Snap.Counters["w.ops"]
	}
	if perSource != final.Counters["w.ops"] {
		t.Fatalf("per-source sum %d != merged %d (writers stopped)", perSource, final.Counters["w.ops"])
	}
}

// TestHistogramBucketMergeGolden checks the bucket-merge against a
// hand-computed union: merged buckets must equal the element-wise sum
// and merged quantiles must match a single histogram fed the union.
func TestHistogramBucketMergeGolden(t *testing.T) {
	h1, h2, union := &Histogram{}, &Histogram{}, &Histogram{}
	for _, v := range []int64{1, 3, 3, 7, 100, 5000} {
		h1.Observe(v)
		union.Observe(v)
	}
	for _, v := range []int64{2, 7, 900, 900, 1 << 40} {
		h2.Observe(v)
		union.Observe(v)
	}
	var agg HistAgg
	agg.MergeHistogram(h1)
	agg.MergeHistogram(h2)
	agg.quantiles()

	if agg.Count != union.Count() || agg.Sum != union.Sum() {
		t.Fatalf("merge count/sum = %d/%d, want %d/%d",
			agg.Count, agg.Sum, union.Count(), union.Sum())
	}
	want := union.Buckets()
	for i := 0; i < NumHistBuckets; i++ {
		if agg.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, agg.Buckets[i], want[i])
		}
	}
	for _, q := range []struct {
		name string
		got  int64
		want int64
	}{
		{"p50", agg.P50, union.Quantile(0.50)},
		{"p99", agg.P99, union.Quantile(0.99)},
		{"p999", agg.P999, union.Quantile(0.999)},
	} {
		if q.got != q.want {
			t.Fatalf("merged %s = %d, want %d (same as union histogram)", q.name, q.got, q.want)
		}
	}
}

func TestTimeSeriesRingAndJSONL(t *testing.T) {
	a := NewAggregator()
	reg := NewRegistry()
	a.Attach(Labels{Conn: "c1"}, reg)
	c := reg.Counter("ts.ticks")
	h := reg.Histogram("ts.lat")

	ts := NewTimeSeries(a, 4)
	for i := 0; i < 10; i++ {
		c.Add(1)
		h.Observe(int64(i + 1))
		ts.Sample(time.Duration(i) * time.Millisecond)
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", ts.Len())
	}
	if ts.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", ts.Dropped())
	}
	samples := ts.Samples()
	for i, s := range samples {
		wantAt := int64((6 + i) * 1000) // ms -> us, oldest retained is tick 6
		if s.AtUS != wantAt {
			t.Fatalf("sample %d at %d us, want %d", i, s.AtUS, wantAt)
		}
		if s.Counters["ts.ticks"] != int64(6+i+1) {
			t.Fatalf("sample %d counter = %d, want %d", i, s.Counters["ts.ticks"], 6+i+1)
		}
		if s.Sources != 1 {
			t.Fatalf("sample %d sources = %d, want 1", i, s.Sources)
		}
	}
	var buf bytes.Buffer
	if err := ts.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"at_us":`) || !strings.Contains(line, `"ts.ticks"`) {
			t.Fatalf("bad JSONL line: %s", line)
		}
	}
}

func TestTimeSeriesDefaultCapacity(t *testing.T) {
	ts := NewTimeSeries(NewAggregator(), 0)
	if got := len(ts.ring); got != DefaultTimeSeriesCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTimeSeriesCapacity)
	}
}

func TestAggregatorRemove(t *testing.T) {
	a := NewAggregator()
	r1, r2 := NewRegistry(), NewRegistry()
	a.Attach(Labels{Conn: "c1"}, r1)
	a.Attach(Labels{Conn: "c2"}, r2)
	r1.Counter("conn.pushes").Add(10)
	r2.Counter("conn.pushes").Add(32)

	if !a.Remove(r2) {
		t.Fatal("Remove(r2) = false, want true")
	}
	if a.Remove(r2) {
		t.Fatal("second Remove(r2) = true, want false")
	}
	if n := a.NumSources(); n != 1 {
		t.Fatalf("NumSources = %d after Remove, want 1", n)
	}

	// The merge and the exposition both drop the removed source: its
	// labeled series is gone and its counters no longer contribute.
	snap := a.Aggregate()
	if got := snap.Counters["conn.pushes"]; got != 10 {
		t.Fatalf("merged counter = %d after Remove, want 10", got)
	}
	text := RenderOpenMetrics(snap)
	if strings.Contains(text, `conn="c2"`) {
		t.Fatalf("exposition still carries removed source:\n%s", text)
	}
	if !strings.Contains(text, `conn="c1"`) {
		t.Fatalf("exposition lost surviving source:\n%s", text)
	}

	// Removing a registry attached under several labels drops them all.
	a.Attach(Labels{Conn: "c1", Path: "wifi"}, r1)
	if !a.Remove(r1) {
		t.Fatal("Remove(r1) = false, want true")
	}
	if n := a.NumSources(); n != 0 {
		t.Fatalf("NumSources = %d, want 0", n)
	}

	var nilAgg *Aggregator
	if nilAgg.Remove(r1) {
		t.Fatal("nil Aggregator Remove = true, want false")
	}
}
