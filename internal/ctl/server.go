package ctl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"progmp"
	"progmp/internal/analysis"
	"progmp/internal/obs"
)

// maxLine bounds one request line (scheduler sources ride inline).
const maxLine = 4 << 20

// Options configures a Server. Network is required. Tracer enables the
// subscribe verb, Metrics the metrics verb; either may be nil. Agg
// enables the metrics-agg verb and the HTTP exposition endpoint: the
// fleet aggregator the embedder attaches its per-connection registries
// to. Sources is the scheduler corpus available by name to compile and
// swap (nil selects progmp.Schedulers, the paper's corpus).
type Options struct {
	Network *progmp.Network
	Tracer  *progmp.Tracer
	Metrics *progmp.Metrics
	Agg     *obs.Aggregator
	Sources map[string]string
}

type namedConn struct {
	name string
	conn *progmp.Conn
}

// Server answers control-plane requests for one simulated network.
// Register the connections it should expose, then Serve one or more
// listeners. All connection state is touched via Network.Do, so the
// server is safe to run alongside Network.RunLive.
type Server struct {
	opts Options

	// Control-plane self-metrics, resolved once from Options.Metrics
	// (nil handles are no-ops when no registry is attached): request
	// count and round-trip handling latency of every verb.
	mRequests  *obs.Counter
	mRequestNS *obs.Histogram

	mu       sync.Mutex
	conns    []namedConn
	lns      []net.Listener
	sessions map[*session]struct{}
	closed   bool
}

// NewServer creates a server; see Options for the knobs.
func NewServer(opts Options) *Server {
	if opts.Sources == nil {
		opts.Sources = progmp.Schedulers
	}
	return &Server{
		opts:       opts,
		mRequests:  opts.Metrics.Counter("ctl.requests"),
		mRequestNS: opts.Metrics.Histogram("ctl.request_ns"),
		sessions:   map[*session]struct{}{},
	}
}

// Register exposes conn under the given display name and returns its
// protocol id (1-based, in registration order).
func (s *Server) Register(name string, conn *progmp.Conn) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns = append(s.conns, namedConn{name: name, conn: conn})
	return len(s.conns)
}

// Serve accepts sessions on ln until the listener fails or the server
// is closed (which returns nil). Each session runs on its own
// goroutine; call Serve itself from a goroutine too.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("ctl: server closed")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess := &session{srv: s, conn: c, subs: map[uint64]*obs.Subscription{}}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		go sess.run()
	}
}

// Close stops all listeners and disconnects every session. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.lns
	var sessions []*session
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
}

func (s *Server) lookup(id int) (namedConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 1 || id > len(s.conns) {
		return namedConn{}, fmt.Errorf("unknown conn id %d (have 1..%d)", id, len(s.conns))
	}
	return s.conns[id-1], nil
}

// session is one accepted control connection.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serializes response and event frames

	smu  sync.Mutex // guards subs
	subs map[uint64]*obs.Subscription
}

func (se *session) run() {
	defer se.teardown()
	sc := bufio.NewScanner(se.conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			se.writeError(0, fmt.Errorf("malformed request: %v", err))
			continue
		}
		se.handle(req)
	}
}

func (se *session) teardown() {
	se.smu.Lock()
	subs := se.subs
	se.subs = nil
	se.smu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	se.conn.Close()
	se.srv.mu.Lock()
	delete(se.srv.sessions, se)
	se.srv.mu.Unlock()
}

func (se *session) write(resp Response) error {
	buf, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	se.wmu.Lock()
	defer se.wmu.Unlock()
	_, err = se.conn.Write(buf)
	return err
}

func (se *session) writeError(id uint64, err error) {
	se.write(Response{ID: id, Error: err.Error()})
}

func (se *session) writeResult(id uint64, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		se.writeError(id, err)
		return
	}
	se.write(Response{ID: id, OK: true, Result: raw})
}

// handle dispatches one request, feeding the server's self-metrics:
// ctl.requests counts verbs handled, ctl.request_ns times the handler
// (for subscribe, the acknowledgement; event frames stream on their own
// goroutine).
func (se *session) handle(req Request) {
	se.srv.mRequests.Add(1)
	if se.srv.mRequestNS != nil {
		t0 := time.Now()
		defer func() { se.srv.mRequestNS.Observe(int64(time.Since(t0))) }()
	}
	switch req.Verb {
	case VerbPing:
		se.ping(req)
	case VerbList:
		se.list(req)
	case VerbSchedulers:
		se.schedulers(req)
	case VerbCompile:
		se.compile(req)
	case VerbSwap:
		se.swap(req)
	case VerbGetReg:
		se.getReg(req)
	case VerbSetReg:
		se.setReg(req)
	case VerbSend:
		se.send(req)
	case VerbMetrics:
		se.metrics(req)
	case VerbMetricsAgg:
		se.metricsAgg(req)
	case VerbSubscribe:
		se.subscribe(req)
	case VerbUnsubscribe:
		se.unsubscribe(req)
	default:
		se.writeError(req.ID, fmt.Errorf("unknown verb %q", req.Verb))
	}
}

func (se *session) ping(req Request) {
	var now int64
	if err := se.srv.opts.Network.Do(func() {
		now = se.srv.opts.Network.Now().Microseconds()
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, PingResult{NowUS: now})
}

func (se *session) list(req Request) {
	se.srv.mu.Lock()
	conns := append([]namedConn(nil), se.srv.conns...)
	se.srv.mu.Unlock()
	var out ListResult
	if err := se.srv.opts.Network.Do(func() {
		for i, nc := range conns {
			out.Conns = append(out.Conns, connInfo(i+1, nc))
		}
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if out.Conns == nil {
		out.Conns = []ConnInfo{}
	}
	se.writeResult(req.ID, out)
}

// connInfo snapshots one connection; call on the simulation goroutine.
func connInfo(id int, nc namedConn) ConnInfo {
	c := nc.conn
	si := c.SchedulerInfo()
	info := ConnInfo{
		ID:          id,
		Name:        nc.name,
		Scheduler:   si.Name,
		Backend:     si.Backend,
		Supervised:  si.Supervised,
		GuardState:  si.GuardState,
		QueuedSegs:  c.Inner().QueuedSegments(),
		UnackedSegs: c.Inner().UnackedSegments(),
		AllAcked:    c.AllAcked(),
	}
	for i := progmp.R1; i <= progmp.R8; i++ {
		info.Registers = append(info.Registers, c.Register(i))
	}
	for _, sf := range c.Subflows() {
		info.Subflows = append(info.Subflows, SubflowInfo{
			Name:            sf.Name,
			Established:     sf.Established,
			Closed:          sf.Closed,
			Backup:          sf.Backup,
			SRTTUS:          sf.SRTT.Microseconds(),
			Cwnd:            sf.Cwnd,
			BytesSent:       sf.BytesSent,
			PktsSent:        sf.PktsSent,
			Retransmissions: sf.Retransmissions,
			ThroughputBps:   sf.ThroughputBps,
		})
	}
	return info
}

func (se *session) schedulers(req Request) {
	var names []string
	for name := range se.srv.opts.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	se.writeResult(req.ID, SchedulersResult{Names: names})
}

// resolveProgram turns a request's Src/Name/Backend fields into a
// compiled, verified scheduler. Pure CPU: safe off the sim goroutine.
// The resolved source text is returned alongside so handlers can run
// the analyzer for structured diagnostics when loading fails.
func (se *session) resolveProgram(req Request) (*progmp.Scheduler, string, error) {
	name, src := req.Name, req.Src
	if src == "" {
		if name == "" {
			return nil, "", fmt.Errorf("compile needs name or src")
		}
		var ok bool
		src, ok = se.srv.opts.Sources[name]
		if !ok {
			return nil, "", fmt.Errorf("unknown scheduler %q", name)
		}
	} else if name == "" {
		name = "adhoc"
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		return nil, src, err
	}
	prog, err := progmp.LoadSchedulerBackend(name, src, backend)
	return prog, src, err
}

// writeReject refuses a request with the analyzer's structured
// diagnostics attached to the error response.
func (se *session) writeReject(id uint64, err error, diags []analysis.Diagnostic) {
	se.write(Response{ID: id, Error: err.Error(), Diags: diags})
}

// rejectDiags extracts the diagnostics to attach to a failed
// compile/swap: the structured report when the front end or analyzer
// refused the source, nil for transport-level failures.
func rejectDiags(src string, err error) []analysis.Diagnostic {
	if src == "" || err == nil {
		return nil
	}
	rep := analysis.AnalyzeSource(src, analysis.Options{})
	if len(rep.Diagnostics) == 0 {
		return nil
	}
	return rep.Diagnostics
}

func parseBackend(s string) (progmp.Backend, error) {
	switch s {
	case "", "vm":
		return progmp.BackendVM, nil
	case "compiled":
		return progmp.BackendCompiled, nil
	case "interp", "interpreter":
		return progmp.BackendInterpreter, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (vm, compiled, interpreter)", s)
	}
}

func (se *session) compile(req Request) {
	prog, src, err := se.resolveProgram(req)
	if err != nil {
		se.writeReject(req.ID, err, rejectDiags(src, err))
		return
	}
	rep := prog.AnalysisReport()
	se.writeResult(req.ID, CompileResult{
		Name:           prog.Name(),
		Backend:        prog.Backend().String(),
		MemoryBytes:    prog.MemoryFootprint(),
		Diagnostics:    rep.Diagnostics,
		Warnings:       rep.Warnings(),
		StepBound:      rep.StepBound,
		StepBoundSteps: rep.StepBoundAt,
	})
}

func (se *session) swap(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	prog, src, err := se.resolveProgram(req)
	if err != nil {
		se.writeReject(req.ID, err, rejectDiags(src, err))
		return
	}
	// The admission gate: programs carrying analyzer warnings are not
	// installed on a live connection unless the caller forces it.
	if rep := prog.AnalysisReport(); !rep.Clean() && !req.Force {
		se.writeReject(req.ID,
			fmt.Errorf("scheduler %q refused by admission gate: %d analyzer warning(s); set force to install anyway",
				prog.Name(), rep.Warnings()),
			rep.Diagnostics)
		return
	}
	var res SwapResult
	if err := se.srv.opts.Network.Do(func() {
		var prev progmp.SchedulerInfo
		prev, err = nc.conn.HotSwap(prog)
		if err != nil {
			return
		}
		cur := nc.conn.SchedulerInfo()
		res = SwapResult{
			Conn:          req.Conn,
			Scheduler:     cur.Name,
			Backend:       cur.Backend,
			Supervised:    cur.Supervised,
			PrevScheduler: prev.Name,
		}
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, res)
}

func (se *session) lookupConn(req Request) (namedConn, error) {
	id := req.Conn
	if id == 0 {
		id = 1 // the common single-connection embedder
	}
	return se.srv.lookup(id)
}

func (se *session) getReg(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	var v int64
	if err := se.srv.opts.Network.Do(func() {
		v = nc.conn.Register(req.Reg)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, RegResult{Reg: req.Reg, Value: v})
}

func (se *session) setReg(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	var setErr error
	if err := se.srv.opts.Network.Do(func() {
		setErr = nc.conn.SetRegister(req.Reg, req.Value)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if setErr != nil {
		se.writeError(req.ID, setErr)
		return
	}
	se.writeResult(req.ID, RegResult{Reg: req.Reg, Value: req.Value})
}

func (se *session) send(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	if req.Bytes <= 0 {
		se.writeError(req.ID, fmt.Errorf("send needs bytes > 0"))
		return
	}
	if err := se.srv.opts.Network.Do(func() {
		nc.conn.SendWithIntent(req.Bytes, req.Prop)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, struct{}{})
}

func (se *session) metrics(req Request) {
	if se.srv.opts.Metrics == nil {
		se.writeError(req.ID, fmt.Errorf("metrics not attached"))
		return
	}
	se.writeResult(req.ID, se.srv.opts.Metrics.Snapshot())
}

func (se *session) metricsAgg(req Request) {
	agg := se.srv.opts.Agg
	if agg == nil {
		se.writeError(req.ID, fmt.Errorf("metrics aggregator not attached"))
		return
	}
	// Registries are read with atomic loads, so aggregation runs off the
	// simulation goroutine without a Network.Do round-trip.
	snap := agg.Aggregate()
	res := MetricsAggResult{NumSources: snap.NumSources}
	switch req.Format {
	case "", "json":
		res.Snapshot = &snap
	case "text":
		res.Text = obs.RenderOpenMetrics(snap)
	default:
		se.writeError(req.ID, fmt.Errorf("unknown metrics format %q (json, text)", req.Format))
		return
	}
	se.writeResult(req.ID, res)
}

func (se *session) subscribe(req Request) {
	if se.srv.opts.Tracer == nil {
		se.writeError(req.ID, fmt.Errorf("tracing not attached"))
		return
	}
	var kinds map[obs.EventKind]bool
	if len(req.Kinds) > 0 {
		kinds = map[obs.EventKind]bool{}
		for _, name := range req.Kinds {
			k, ok := obs.KindFromString(name)
			if !ok {
				se.writeError(req.ID, fmt.Errorf("unknown event kind %q", name))
				return
			}
			kinds[k] = true
		}
	}
	connFilter := int32(-1)
	if req.Conn != 0 {
		nc, err := se.srv.lookup(req.Conn)
		if err != nil {
			se.writeError(req.ID, err)
			return
		}
		connFilter = nc.conn.Inner().TraceConnID()
	}
	sub := se.srv.opts.Tracer.Subscribe(req.Buf)
	se.smu.Lock()
	if se.subs == nil { // session tearing down
		se.smu.Unlock()
		sub.Close()
		se.writeError(req.ID, fmt.Errorf("session closing"))
		return
	}
	if _, dup := se.subs[req.ID]; dup {
		se.smu.Unlock()
		sub.Close()
		se.writeError(req.ID, fmt.Errorf("subscription %d already active", req.ID))
		return
	}
	se.subs[req.ID] = sub
	se.smu.Unlock()
	// Ack before the first frame so the client sees them in order.
	se.writeResult(req.ID, SubscribeResult{Sub: req.ID})
	go func() {
		for ev := range sub.Events() {
			if kinds != nil && !kinds[ev.Kind] {
				continue
			}
			if connFilter >= 0 && ev.Conn != connFilter {
				continue
			}
			frame := ev.ToJSONL()
			if err := se.write(Response{ID: req.ID, OK: true, Event: &frame}); err != nil {
				sub.Close()
				return
			}
		}
	}()
}

func (se *session) unsubscribe(req Request) {
	se.smu.Lock()
	sub, ok := se.subs[req.Sub]
	if ok {
		delete(se.subs, req.Sub)
	}
	se.smu.Unlock()
	if !ok {
		se.writeError(req.ID, fmt.Errorf("no subscription %d", req.Sub))
		return
	}
	sub.Close()
	se.writeResult(req.ID, struct{}{})
}
