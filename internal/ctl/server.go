package ctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"progmp"
	"progmp/internal/analysis"
	"progmp/internal/obs"
)

// maxLine bounds one request line (scheduler sources ride inline).
const maxLine = 4 << 20

// The robustness defaults; see Options. Negative option values disable
// the corresponding limit.
const (
	DefaultReadIdleTimeout = 2 * time.Minute
	DefaultWriteTimeout    = 10 * time.Second
	DefaultMaxInflight     = 64
	DefaultDrainTimeout    = 5 * time.Second
)

// Options configures a Server. Network is required. Tracer enables the
// subscribe verb, Metrics the metrics verb; either may be nil. Agg
// enables the metrics-agg verb and the HTTP exposition endpoint: the
// fleet aggregator the embedder attaches its per-connection registries
// to. Sources is the scheduler corpus available by name to compile and
// swap (nil selects progmp.Schedulers, the paper's corpus).
//
// The remaining knobs harden the server against slow, dead or hostile
// peers; zero values select the defaults above, negative values disable
// the limit.
type Options struct {
	Network *progmp.Network
	Tracer  *progmp.Tracer
	Metrics *progmp.Metrics
	Agg     *obs.Aggregator
	Sources map[string]string

	// Fleet, when set, gates compile and swap: programs currently
	// fleet-blocked (quarantined on too many connections) are refused
	// unless the request forces installation.
	Fleet *progmp.Fleet

	// Store, when set, enables the shared-state verbs (gget, gset,
	// deststats) against the cross-connection store the embedder
	// attached its connections to. The store is internally
	// synchronized — reads are one atomic snapshot load — so these
	// verbs never round-trip through Network.Do.
	Store *progmp.SharedStore

	// ReadIdleTimeout disconnects a session that sends nothing for this
	// long. Sessions with an active subscription are exempt — a watch
	// client legitimately never writes again.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds every response or event-frame write; a peer
	// that stops reading is disconnected rather than wedging a handler
	// or pump goroutine forever.
	WriteTimeout time.Duration
	// MaxInflight bounds concurrently handled requests across all
	// sessions; beyond it requests are refused with an overload error
	// (counted as ctl.overloads) instead of queueing without bound.
	MaxInflight int
	// MaxRequestBytes caps one request line (default 4 MiB — scheduler
	// sources ride inline).
	MaxRequestBytes int
	// SubEvictDrops is the consecutive-drop budget before a stalled
	// subscriber is evicted from the tracer (default
	// obs.DefaultSubscriptionEvictDrops).
	SubEvictDrops int
	// DrainTimeout bounds how long Drain waits for inflight requests
	// (used by the drain verb).
	DrainTimeout time.Duration
}

func (o *Options) applyDefaults() {
	if o.Sources == nil {
		o.Sources = progmp.Schedulers
	}
	if o.ReadIdleTimeout == 0 {
		o.ReadIdleTimeout = DefaultReadIdleTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = maxLine
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
}

type namedConn struct {
	name string
	conn *progmp.Conn
}

// Server answers control-plane requests for one simulated network.
// Register the connections it should expose, then Serve one or more
// listeners. All connection state is touched via Network.Do, so the
// server is safe to run alongside Network.RunLive.
type Server struct {
	opts Options

	// Control-plane self-metrics, resolved once from Options.Metrics
	// (nil handles are no-ops when no registry is attached): request
	// count and round-trip handling latency of every verb, plus the
	// robustness counters — recovered handler panics, overload
	// refusals, fleet-gate refusals — and the draining gauge.
	mRequests     *obs.Counter
	mRequestNS    *obs.Histogram
	mPanics       *obs.Counter
	mOverloads    *obs.Counter
	mFleetRejects *obs.Counter
	gDraining     *obs.Gauge

	// inflight counts requests currently being handled (all sessions);
	// it backs both the MaxInflight refusal and the Drain wait.
	inflight atomic.Int64

	mu       sync.Mutex
	conns    []namedConn
	lns      []net.Listener
	sessions map[*session]struct{}
	draining bool
	closed   bool
}

// NewServer creates a server; see Options for the knobs.
func NewServer(opts Options) *Server {
	opts.applyDefaults()
	return &Server{
		opts:          opts,
		mRequests:     opts.Metrics.Counter("ctl.requests"),
		mRequestNS:    opts.Metrics.Histogram("ctl.request_ns"),
		mPanics:       opts.Metrics.Counter("ctl.panics"),
		mOverloads:    opts.Metrics.Counter("ctl.overloads"),
		mFleetRejects: opts.Metrics.Counter("ctl.fleet_rejects"),
		gDraining:     opts.Metrics.Gauge("ctl.draining"),
		sessions:      map[*session]struct{}{},
	}
}

// Register exposes conn under the given display name and returns its
// protocol id (1-based, in registration order).
func (s *Server) Register(name string, conn *progmp.Conn) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns = append(s.conns, namedConn{name: name, conn: conn})
	return len(s.conns)
}

// Serve accepts sessions on ln until the listener fails or the server
// is closed (which returns nil). Each session runs on its own
// goroutine; call Serve itself from a goroutine too.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("ctl: server closed")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess := &session{srv: s, conn: c, subs: map[uint64]*obs.Subscription{}}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		go sess.run()
	}
}

// Drain shuts the server down gracefully: stop accepting new sessions,
// refuse new requests (ping, unsubscribe and drain stay answerable),
// wait until inflight handlers finish — at most
// Options.DrainTimeout when timeout is 0 — then close every
// subscription so pump goroutines end and streaming clients see
// end-of-stream, take a final fleet-metrics snapshot while the sockets
// are still up, and Close. Idempotent: concurrent and repeated calls
// join the same drain.
func (s *Server) Drain(timeout time.Duration) {
	if timeout <= 0 {
		timeout = s.opts.DrainTimeout
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	lns := append([]net.Listener(nil), s.lns...)
	s.mu.Unlock()
	s.gDraining.Set(1)
	for _, ln := range lns {
		ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	var sessions []*session
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.closeSubs()
	}
	// Flush the self-metrics into the fleet view before the transport
	// disappears: the aggregator's sources read atomically, so one last
	// Aggregate publishes a consistent final snapshot to any scraper
	// holding the HTTP handler.
	if s.opts.Agg != nil {
		s.opts.Agg.Aggregate()
	}
	s.Close()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops all listeners and disconnects every session. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.lns
	var sessions []*session
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
}

func (s *Server) lookup(id int) (namedConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 1 || id > len(s.conns) {
		return namedConn{}, fmt.Errorf("unknown conn id %d (have 1..%d)", id, len(s.conns))
	}
	return s.conns[id-1], nil
}

// session is one accepted control connection.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serializes response and event frames

	smu  sync.Mutex // guards subs
	subs map[uint64]*obs.Subscription
}

func (se *session) run() {
	defer se.teardown()
	sc := bufio.NewScanner(se.conn)
	sc.Buffer(make([]byte, 64<<10), se.srv.opts.MaxRequestBytes)
	for {
		se.armReadDeadline()
		if !sc.Scan() {
			// A request over the size cap gets told why before the
			// session dies; idle timeouts and disconnects just end it.
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				se.writeError(0, fmt.Errorf("request exceeds %d byte cap", se.srv.opts.MaxRequestBytes))
			}
			return
		}
		line := sc.Bytes()
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			se.writeError(0, fmt.Errorf("malformed request: %v", err))
			continue
		}
		se.handle(req)
	}
}

// armReadDeadline applies the idle read deadline before each request.
// Sessions with a live subscription are exempt: a watch client
// legitimately goes quiet forever while event frames stream out.
func (se *session) armReadDeadline() {
	d := se.srv.opts.ReadIdleTimeout
	if d <= 0 {
		return
	}
	se.smu.Lock()
	streaming := len(se.subs) > 0
	se.smu.Unlock()
	if streaming {
		se.conn.SetReadDeadline(time.Time{})
	} else {
		se.conn.SetReadDeadline(time.Now().Add(d))
	}
}

// closeSubs ends every subscription but leaves the session connected —
// the drain path, where remaining responses should still be written.
func (se *session) closeSubs() {
	se.smu.Lock()
	subs := se.subs
	if subs != nil {
		se.subs = map[uint64]*obs.Subscription{}
	}
	se.smu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

func (se *session) teardown() {
	se.smu.Lock()
	subs := se.subs
	se.subs = nil
	se.smu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	se.conn.Close()
	se.srv.mu.Lock()
	delete(se.srv.sessions, se)
	se.srv.mu.Unlock()
}

func (se *session) write(resp Response) error {
	buf, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	se.wmu.Lock()
	defer se.wmu.Unlock()
	if d := se.srv.opts.WriteTimeout; d > 0 {
		se.conn.SetWriteDeadline(time.Now().Add(d))
	}
	_, err = se.conn.Write(buf)
	return err
}

func (se *session) writeError(id uint64, err error) {
	se.write(Response{ID: id, Error: err.Error()})
}

func (se *session) writeResult(id uint64, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		se.writeError(id, err)
		return
	}
	se.write(Response{ID: id, OK: true, Result: raw})
}

// handle dispatches one request, feeding the server's self-metrics:
// ctl.requests counts verbs handled, ctl.request_ns times the handler
// (for subscribe, the acknowledgement; event frames stream on their own
// goroutine). Three layers of hardening wrap the dispatch: a panic in
// any handler is recovered and answered as an internal error (counted
// as ctl.panics) instead of killing the process; requests beyond
// MaxInflight are refused with an overload error (ctl.overloads); and
// once Drain has begun, only ping, unsubscribe and drain itself are
// still answerable.
func (se *session) handle(req Request) {
	srv := se.srv
	srv.mRequests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			srv.mPanics.Add(1)
			se.writeError(req.ID, fmt.Errorf("internal error: %s handler panicked: %v", req.Verb, r))
		}
	}()
	if srv.mRequestNS != nil {
		t0 := time.Now()
		defer func() { srv.mRequestNS.Observe(int64(time.Since(t0))) }()
	}
	switch req.Verb {
	case VerbPing, VerbUnsubscribe, VerbDrain:
		// Always answerable: liveness, cleanup, and the drain trigger
		// itself bypass both the draining refusal and the inflight cap.
	default:
		if srv.Draining() {
			se.writeError(req.ID, fmt.Errorf("server draining"))
			return
		}
		if max := srv.opts.MaxInflight; max > 0 && srv.inflight.Load() >= int64(max) {
			srv.mOverloads.Add(1)
			se.writeError(req.ID, fmt.Errorf("server overloaded: %d requests inflight", max))
			return
		}
	}
	srv.inflight.Add(1)
	defer srv.inflight.Add(-1)
	switch req.Verb {
	case VerbPing:
		se.ping(req)
	case VerbList:
		se.list(req)
	case VerbSchedulers:
		se.schedulers(req)
	case VerbCompile:
		se.compile(req)
	case VerbSwap:
		se.swap(req)
	case VerbGetReg:
		se.getReg(req)
	case VerbSetReg:
		se.setReg(req)
	case VerbSend:
		se.send(req)
	case VerbMetrics:
		se.metrics(req)
	case VerbMetricsAgg:
		se.metricsAgg(req)
	case VerbGGet:
		se.gget(req)
	case VerbGSet:
		se.gset(req)
	case VerbDestStats:
		se.destStats(req)
	case VerbSubscribe:
		se.subscribe(req)
	case VerbUnsubscribe:
		se.unsubscribe(req)
	case VerbDrain:
		se.drain(req)
	default:
		se.writeError(req.ID, fmt.Errorf("unknown verb %q", req.Verb))
	}
}

// drain acknowledges first — the drain will tear this session down, so
// the acknowledgement must be on the wire before it starts — then runs
// the server drain off this goroutine (the drain waits for inflight
// handlers; this handler is one of them).
func (se *session) drain(req Request) {
	se.writeResult(req.ID, DrainResult{Draining: true})
	go se.srv.Drain(0)
}

func (se *session) ping(req Request) {
	var now int64
	if err := se.srv.opts.Network.Do(func() {
		now = se.srv.opts.Network.Now().Microseconds()
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, PingResult{NowUS: now})
}

func (se *session) list(req Request) {
	se.srv.mu.Lock()
	conns := append([]namedConn(nil), se.srv.conns...)
	se.srv.mu.Unlock()
	var out ListResult
	if err := se.srv.opts.Network.Do(func() {
		for i, nc := range conns {
			out.Conns = append(out.Conns, connInfo(i+1, nc))
		}
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if out.Conns == nil {
		out.Conns = []ConnInfo{}
	}
	se.writeResult(req.ID, out)
}

// connInfo snapshots one connection; call on the simulation goroutine.
func connInfo(id int, nc namedConn) ConnInfo {
	c := nc.conn
	si := c.SchedulerInfo()
	info := ConnInfo{
		ID:          id,
		Name:        nc.name,
		Scheduler:   si.Name,
		Backend:     si.Backend,
		Supervised:  si.Supervised,
		GuardState:  si.GuardState,
		QueuedSegs:  c.Inner().QueuedSegments(),
		UnackedSegs: c.Inner().UnackedSegments(),
		AllAcked:    c.AllAcked(),
	}
	for i := progmp.R1; i <= progmp.R8; i++ {
		info.Registers = append(info.Registers, c.Register(i))
	}
	for _, sf := range c.Subflows() {
		info.Subflows = append(info.Subflows, SubflowInfo{
			Name:            sf.Name,
			Established:     sf.Established,
			Closed:          sf.Closed,
			Backup:          sf.Backup,
			SRTTUS:          sf.SRTT.Microseconds(),
			Cwnd:            sf.Cwnd,
			BytesSent:       sf.BytesSent,
			PktsSent:        sf.PktsSent,
			Retransmissions: sf.Retransmissions,
			ThroughputBps:   sf.ThroughputBps,
		})
	}
	return info
}

func (se *session) schedulers(req Request) {
	var names []string
	for name := range se.srv.opts.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	se.writeResult(req.ID, SchedulersResult{Names: names})
}

// resolveProgram turns a request's Src/Name/Backend fields into a
// compiled, verified scheduler. Pure CPU: safe off the sim goroutine.
// The resolved source text is returned alongside so handlers can run
// the analyzer for structured diagnostics when loading fails.
func (se *session) resolveProgram(req Request) (*progmp.Scheduler, string, error) {
	name, src := req.Name, req.Src
	if src == "" {
		if name == "" {
			return nil, "", fmt.Errorf("compile needs name or src")
		}
		var ok bool
		src, ok = se.srv.opts.Sources[name]
		if !ok {
			return nil, "", fmt.Errorf("unknown scheduler %q", name)
		}
	} else if name == "" {
		name = "adhoc"
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		return nil, src, err
	}
	prog, err := progmp.LoadSchedulerBackend(name, src, backend)
	return prog, src, err
}

// writeReject refuses a request with the analyzer's structured
// diagnostics attached to the error response.
func (se *session) writeReject(id uint64, err error, diags []analysis.Diagnostic) {
	se.write(Response{ID: id, Error: err.Error(), Diags: diags})
}

// rejectDiags extracts the diagnostics to attach to a failed
// compile/swap: the structured report when the front end or analyzer
// refused the source, nil for transport-level failures.
func rejectDiags(src string, err error) []analysis.Diagnostic {
	if src == "" || err == nil {
		return nil
	}
	rep := analysis.AnalyzeSource(src, analysis.Options{})
	if len(rep.Diagnostics) == 0 {
		return nil
	}
	return rep.Diagnostics
}

func parseBackend(s string) (progmp.Backend, error) {
	switch s {
	case "", "vm":
		return progmp.BackendVM, nil
	case "compiled":
		return progmp.BackendCompiled, nil
	case "interp", "interpreter":
		return progmp.BackendInterpreter, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (vm, compiled, interpreter)", s)
	}
}

// fleetRefusal returns the refusal error when the resolved program is
// currently fleet-blocked and the request does not force past the gate
// (nil otherwise). Forcing is honoured because the block is a
// protective default, not a policy decision the operator cannot
// override — the same contract as the analyzer admission gate.
func (se *session) fleetRefusal(prog *progmp.Scheduler, force bool) error {
	f := se.srv.opts.Fleet
	if f == nil || force || !f.Blocked(prog.Name()) {
		return nil
	}
	se.srv.mFleetRejects.Add(1)
	return fmt.Errorf("scheduler %q is fleet-blocked: it quarantined on too many connections; set force to install anyway",
		prog.Name())
}

func (se *session) compile(req Request) {
	prog, src, err := se.resolveProgram(req)
	if err != nil {
		se.writeReject(req.ID, err, rejectDiags(src, err))
		return
	}
	if err := se.fleetRefusal(prog, req.Force); err != nil {
		se.writeError(req.ID, err)
		return
	}
	rep := prog.AnalysisReport()
	se.writeResult(req.ID, CompileResult{
		Name:           prog.Name(),
		Backend:        prog.Backend().String(),
		MemoryBytes:    prog.MemoryFootprint(),
		Diagnostics:    rep.Diagnostics,
		Warnings:       rep.Warnings(),
		StepBound:      rep.StepBound,
		StepBoundSteps: rep.StepBoundAt,
	})
}

func (se *session) swap(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	prog, src, err := se.resolveProgram(req)
	if err != nil {
		se.writeReject(req.ID, err, rejectDiags(src, err))
		return
	}
	if err := se.fleetRefusal(prog, req.Force); err != nil {
		se.writeError(req.ID, err)
		return
	}
	// The admission gate: programs carrying analyzer warnings are not
	// installed on a live connection unless the caller forces it.
	if rep := prog.AnalysisReport(); !rep.Clean() && !req.Force {
		se.writeReject(req.ID,
			fmt.Errorf("scheduler %q refused by admission gate: %d analyzer warning(s); set force to install anyway",
				prog.Name(), rep.Warnings()),
			rep.Diagnostics)
		return
	}
	var res SwapResult
	if err := se.srv.opts.Network.Do(func() {
		var prev progmp.SchedulerInfo
		prev, err = nc.conn.HotSwap(prog)
		if err != nil {
			return
		}
		cur := nc.conn.SchedulerInfo()
		res = SwapResult{
			Conn:          req.Conn,
			Scheduler:     cur.Name,
			Backend:       cur.Backend,
			Supervised:    cur.Supervised,
			PrevScheduler: prev.Name,
		}
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, res)
}

func (se *session) lookupConn(req Request) (namedConn, error) {
	id := req.Conn
	if id == 0 {
		id = 1 // the common single-connection embedder
	}
	return se.srv.lookup(id)
}

func (se *session) getReg(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	var v int64
	if err := se.srv.opts.Network.Do(func() {
		v = nc.conn.Register(req.Reg)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, RegResult{Reg: req.Reg, Value: v})
}

func (se *session) setReg(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	var setErr error
	if err := se.srv.opts.Network.Do(func() {
		setErr = nc.conn.SetRegister(req.Reg, req.Value)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	if setErr != nil {
		se.writeError(req.ID, setErr)
		return
	}
	se.writeResult(req.ID, RegResult{Reg: req.Reg, Value: req.Value})
}

func (se *session) send(req Request) {
	nc, err := se.lookupConn(req)
	if err != nil {
		se.writeError(req.ID, err)
		return
	}
	if req.Bytes <= 0 {
		se.writeError(req.ID, fmt.Errorf("send needs bytes > 0"))
		return
	}
	if err := se.srv.opts.Network.Do(func() {
		nc.conn.SendWithIntent(req.Bytes, req.Prop)
	}); err != nil {
		se.writeError(req.ID, err)
		return
	}
	se.writeResult(req.ID, struct{}{})
}

func (se *session) metrics(req Request) {
	if se.srv.opts.Metrics == nil {
		se.writeError(req.ID, fmt.Errorf("metrics not attached"))
		return
	}
	se.writeResult(req.ID, se.srv.opts.Metrics.Snapshot())
}

func (se *session) metricsAgg(req Request) {
	agg := se.srv.opts.Agg
	if agg == nil {
		se.writeError(req.ID, fmt.Errorf("metrics aggregator not attached"))
		return
	}
	// Registries are read with atomic loads, so aggregation runs off the
	// simulation goroutine without a Network.Do round-trip.
	snap := agg.Aggregate()
	res := MetricsAggResult{NumSources: snap.NumSources}
	switch req.Format {
	case "", "json":
		res.Snapshot = &snap
	case "text":
		res.Text = obs.RenderOpenMetrics(snap)
	default:
		se.writeError(req.ID, fmt.Errorf("unknown metrics format %q (json, text)", req.Format))
		return
	}
	se.writeResult(req.ID, res)
}

// sharedStore resolves the attached store for the shared-state verbs.
func (se *session) sharedStore(id uint64) *progmp.SharedStore {
	st := se.srv.opts.Store
	if st == nil {
		se.writeError(id, fmt.Errorf("shared-state store not attached"))
	}
	return st
}

// gget reads one shared global register. The store snapshot is one
// atomic load, so the value and the epoch it belongs to are coherent
// without touching the simulation goroutine.
func (se *session) gget(req Request) {
	st := se.sharedStore(req.ID)
	if st == nil {
		return
	}
	if req.Reg < 0 || req.Reg >= progmp.NumSharedGlobals {
		se.writeError(req.ID, fmt.Errorf("global register %d out of range (have 0..%d)", req.Reg, progmp.NumSharedGlobals-1))
		return
	}
	snap := st.Load()
	se.writeResult(req.ID, GlobalResult{Reg: req.Reg, Value: snap.Globals[req.Reg], Epoch: snap.Epoch})
}

// gset writes one shared global register and reports the epoch the
// write published, so a client can watch its own write become visible
// to every store-attached scheduler.
func (se *session) gset(req Request) {
	st := se.sharedStore(req.ID)
	if st == nil {
		return
	}
	if req.Reg < 0 || req.Reg >= progmp.NumSharedGlobals {
		se.writeError(req.ID, fmt.Errorf("global register %d out of range (have 0..%d)", req.Reg, progmp.NumSharedGlobals-1))
		return
	}
	st.SetGlobal(req.Reg, req.Value)
	se.writeResult(req.ID, GlobalResult{Reg: req.Reg, Value: req.Value, Epoch: st.Epoch()})
}

// destStats dumps the per-destination path statistics of one store
// epoch, name-sorted for stable presentation.
func (se *session) destStats(req Request) {
	st := se.sharedStore(req.ID)
	if st == nil {
		return
	}
	snap := st.Load()
	dests := append([]progmp.DestStats(nil), snap.Dests...)
	sort.Slice(dests, func(i, j int) bool { return dests[i].Name < dests[j].Name })
	if dests == nil {
		dests = []progmp.DestStats{}
	}
	se.writeResult(req.ID, DestStatsResult{Epoch: snap.Epoch, Dests: dests})
}

func (se *session) subscribe(req Request) {
	if se.srv.opts.Tracer == nil {
		se.writeError(req.ID, fmt.Errorf("tracing not attached"))
		return
	}
	var kinds map[obs.EventKind]bool
	if len(req.Kinds) > 0 {
		kinds = map[obs.EventKind]bool{}
		for _, name := range req.Kinds {
			k, ok := obs.KindFromString(name)
			if !ok {
				se.writeError(req.ID, fmt.Errorf("unknown event kind %q", name))
				return
			}
			kinds[k] = true
		}
	}
	connFilter := int32(-1)
	if req.Conn != 0 {
		nc, err := se.srv.lookup(req.Conn)
		if err != nil {
			se.writeError(req.ID, err)
			return
		}
		connFilter = nc.conn.Inner().TraceConnID()
	}
	sub := se.srv.opts.Tracer.SubscribeEvict(req.Buf, se.srv.opts.SubEvictDrops)
	se.smu.Lock()
	if se.subs == nil { // session tearing down
		se.smu.Unlock()
		sub.Close()
		se.writeError(req.ID, fmt.Errorf("session closing"))
		return
	}
	if _, dup := se.subs[req.ID]; dup {
		se.smu.Unlock()
		sub.Close()
		se.writeError(req.ID, fmt.Errorf("subscription %d already active", req.ID))
		return
	}
	se.subs[req.ID] = sub
	se.smu.Unlock()
	// Ack before the first frame so the client sees them in order.
	se.writeResult(req.ID, SubscribeResult{Sub: req.ID})
	go func() {
		for ev := range sub.Events() {
			if kinds != nil && !kinds[ev.Kind] {
				continue
			}
			if connFilter >= 0 && ev.Conn != connFilter {
				continue
			}
			frame := ev.ToJSONL()
			if err := se.write(Response{ID: req.ID, OK: true, Event: &frame}); err != nil {
				// The peer stopped reading (or the write deadline hit):
				// the stream is poisoned mid-frame, so end the
				// subscription and drain the channel.
				sub.Close()
				break
			}
		}
		// Stream over. Deregister, and if the tracer evicted us for
		// falling too far behind, tell the client with a terminal error
		// frame under the subscription id.
		se.smu.Lock()
		_, active := se.subs[req.ID]
		delete(se.subs, req.ID)
		se.smu.Unlock()
		if active && sub.Evicted() {
			se.writeError(req.ID, fmt.Errorf("subscription evicted: subscriber fell %d events behind", sub.Dropped()))
		}
	}()
}

func (se *session) unsubscribe(req Request) {
	se.smu.Lock()
	sub, ok := se.subs[req.Sub]
	if ok {
		delete(se.subs, req.Sub)
	}
	se.smu.Unlock()
	if !ok {
		se.writeError(req.ID, fmt.Errorf("no subscription %d", req.Sub))
		return
	}
	sub.Close()
	se.writeResult(req.ID, struct{}{})
}
