package ctl_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"progmp"
	"progmp/internal/ctl"
	"progmp/internal/mptcp"
)

// pace runs simulations 500x faster than the wall clock: fast enough
// that transfers finish in milliseconds, alive long enough that the
// control plane can steer them.
const pace = 500

// harness is one live simulation with a ctl server on a Unix socket.
type harness struct {
	t       *testing.T
	nw      *progmp.Network
	conn    *progmp.Conn
	tracer  *progmp.Tracer
	checker *mptcp.ConservationChecker
	client  *ctl.Client
	sock    string
}

func startHarness(t *testing.T, supervised bool) *harness {
	t.Helper()
	nw := progmp.NewNetwork(11)
	conn, err := nw.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 4e6, OneWayDelay: 8 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 2e6, OneWayDelay: 25 * time.Millisecond, Backup: true},
	)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	tracer := progmp.NewTracer(0)
	metrics := progmp.NewMetrics()
	conn.Instrument(tracer, metrics)
	checker := mptcp.NewConservationChecker(conn.Inner())
	sched, err := progmp.LoadScheduler("minRTT", progmp.Schedulers["minRTT"])
	if err != nil {
		t.Fatalf("LoadScheduler: %v", err)
	}
	if supervised {
		conn.Supervise(sched, progmp.SupervisorConfig{})
	} else {
		conn.SetScheduler(sched)
	}

	srv := ctl.NewServer(ctl.Options{Network: nw, Tracer: tracer, Metrics: metrics})
	if id := srv.Register("c1", conn); id != 1 {
		t.Fatalf("Register returned id %d, want 1", id)
	}
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	done := make(chan struct{})
	go func() {
		nw.RunLive(time.Hour, pace)
		close(done)
	}()
	client, err := ctl.Dial("unix", sock)
	if err != nil {
		t.Fatalf("ctl.Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		nw.StopLive()
		srv.Close()
		<-done
	})
	return &harness{t: t, nw: nw, conn: conn, tracer: tracer, checker: checker, client: client, sock: sock}
}

// waitAllAcked polls the control plane until the transfer completes.
func (h *harness) waitAllAcked() {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		res, err := h.client.List()
		if err != nil {
			h.t.Fatalf("List: %v", err)
		}
		if len(res.Conns) == 1 && res.Conns[0].AllAcked {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("transfer did not complete within the deadline")
}

func TestClientServerRoundTrip(t *testing.T) {
	h := startHarness(t, false)
	c := h.client

	if _, err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	names, err := c.Schedulers()
	if err != nil {
		t.Fatalf("Schedulers: %v", err)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have["minRTT"] || !have["redundant"] {
		t.Fatalf("scheduler corpus missing expected names: %v", names)
	}

	list, err := c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list.Conns) != 1 {
		t.Fatalf("List returned %d conns, want 1", len(list.Conns))
	}
	ci := list.Conns[0]
	if ci.ID != 1 || ci.Name != "c1" || ci.Scheduler != "minRTT" || ci.Backend != "vm" {
		t.Fatalf("unexpected conn info: %+v", ci)
	}
	if len(ci.Registers) != 8 {
		t.Fatalf("got %d registers, want 8", len(ci.Registers))
	}
	if len(ci.Subflows) != 2 || ci.Subflows[0].Name != "wifi" || ci.Subflows[1].Name != "lte" {
		t.Fatalf("unexpected subflows: %+v", ci.Subflows)
	}
	if !ci.Subflows[1].Backup {
		t.Fatalf("lte subflow should report Backup")
	}

	if err := c.SetReg(1, progmp.R2, 4_000_000); err != nil {
		t.Fatalf("SetReg: %v", err)
	}
	if v, err := c.GetReg(1, progmp.R2); err != nil || v != 4_000_000 {
		t.Fatalf("GetReg = %d, %v; want 4000000, nil", v, err)
	}
	if err := c.SetReg(1, 99, 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("SetReg(99) error = %v, want out-of-range", err)
	}

	cr, err := c.Compile("redundant", "", "")
	if err != nil {
		t.Fatalf("Compile(redundant): %v", err)
	}
	if cr.Name != "redundant" || cr.Backend != "vm" || cr.MemoryBytes <= 0 {
		t.Fatalf("unexpected compile result: %+v", cr)
	}
	if _, err := c.Compile("", "SCHEDULER broken; garbage(", ""); err == nil {
		t.Fatalf("compiling garbage should fail")
	}
	if _, err := c.Compile("noSuchSched", "", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("Compile(noSuchSched) error = %v, want unknown scheduler", err)
	}

	// Start a transfer, then hot-swap mid-flight and watch the
	// SCHED_SWAP event arrive on a live subscription.
	const payload = 2_000_000
	stream, err := c.Subscribe(1, []string{"SCHED_SWAP"}, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := c.Send(1, payload, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sw, err := c.Swap(1, "redundant", "", "")
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if sw.Scheduler != "redundant" || sw.PrevScheduler != "minRTT" || sw.Supervised {
		t.Fatalf("unexpected swap result: %+v", sw)
	}
	select {
	case ev, ok := <-stream.Events():
		if !ok {
			t.Fatalf("stream closed before SCHED_SWAP arrived")
		}
		if ev.Ev != "SCHED_SWAP" {
			t.Fatalf("streamed event %q, want SCHED_SWAP", ev.Ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no SCHED_SWAP frame within 10s")
	}
	if err := stream.Close(); err != nil {
		t.Fatalf("stream.Close: %v", err)
	}

	h.waitAllAcked()
	var consErr error
	if err := h.nw.Do(func() { consErr = h.checker.Check(payload) }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if consErr != nil {
		t.Fatalf("conservation after hot-swap: %v", consErr)
	}

	list, err = c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if list.Conns[0].Scheduler != "redundant" {
		t.Fatalf("scheduler after swap = %q, want redundant", list.Conns[0].Scheduler)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatalf("metrics snapshot has no counters")
	}
}

func TestSwapOnSupervisedConnection(t *testing.T) {
	h := startHarness(t, true)
	c := h.client

	list, err := c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	ci := list.Conns[0]
	if !ci.Supervised || ci.GuardState != "active" {
		t.Fatalf("supervised conn info = %+v", ci)
	}

	if err := c.Send(1, 1_000_000, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sw, err := c.Swap(1, "roundRobin", "", "")
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if !sw.Supervised || sw.Scheduler != "roundRobin" || sw.PrevScheduler != "minRTT" {
		t.Fatalf("unexpected supervised swap result: %+v", sw)
	}
	h.waitAllAcked()
	var consErr error
	if err := h.nw.Do(func() { consErr = h.checker.Check(1_000_000) }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if consErr != nil {
		t.Fatalf("conservation after supervised swap: %v", consErr)
	}
}

func TestMalformedAndUnknownRequests(t *testing.T) {
	h := startHarness(t, false)

	raw, err := net.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	rd := bufio.NewReader(raw)
	roundTrip := func(line string) ctl.Response {
		t.Helper()
		if _, err := fmt.Fprintf(raw, "%s\n", line); err != nil {
			t.Fatalf("write: %v", err)
		}
		out, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		var resp ctl.Response
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatalf("response not JSON: %v (%q)", err, out)
		}
		return resp
	}

	if resp := roundTrip("this is not json"); resp.OK || !strings.Contains(resp.Error, "malformed") {
		t.Fatalf("malformed line response: %+v", resp)
	}
	if resp := roundTrip(`{"id":7,"verb":"frobnicate"}`); resp.OK || resp.ID != 7 ||
		!strings.Contains(resp.Error, "unknown verb") {
		t.Fatalf("unknown verb response: %+v", resp)
	}
	if resp := roundTrip(`{"id":8,"verb":"getreg","conn":99}`); resp.OK ||
		!strings.Contains(resp.Error, "unknown conn id") {
		t.Fatalf("unknown conn response: %+v", resp)
	}
	// The session survives all of the above.
	if resp := roundTrip(`{"id":9,"verb":"ping"}`); !resp.OK {
		t.Fatalf("ping after errors: %+v", resp)
	}

	if err := h.client.SetReg(99, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown conn id") {
		t.Fatalf("client SetReg(conn 99) error = %v, want unknown conn id", err)
	}
	if _, err := h.client.Subscribe(1, []string{"NOT_A_KIND"}, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown event kind") {
		t.Fatalf("Subscribe(NOT_A_KIND) error = %v, want unknown event kind", err)
	}
}

// TestConcurrentSubscribersDuringTransfer exercises subscription fan-out
// and control calls racing a live transfer; run with -race.
func TestConcurrentSubscribersDuringTransfer(t *testing.T) {
	h := startHarness(t, false)
	c := h.client

	const subscribers = 4
	var wg sync.WaitGroup
	counts := make([]int, subscribers)
	streams := make([]*ctl.Stream, subscribers)
	for i := 0; i < subscribers; i++ {
		st, err := c.Subscribe(1, nil, 1024)
		if err != nil {
			t.Fatalf("Subscribe %d: %v", i, err)
		}
		streams[i] = st
		wg.Add(1)
		go func(i int, st *ctl.Stream) {
			defer wg.Done()
			for range st.Events() {
				counts[i]++
			}
		}(i, st)
	}

	if err := c.Send(1, 1_500_000, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, name := range []string{"roundRobin", "redundant", "minRTT"} {
		if _, err := c.Swap(1, name, "", ""); err != nil {
			t.Fatalf("Swap(%s): %v", name, err)
		}
		if err := c.SetReg(1, progmp.R1, 1_000_000); err != nil {
			t.Fatalf("SetReg: %v", err)
		}
	}
	h.waitAllAcked()

	for _, st := range streams {
		if err := st.Close(); err != nil {
			t.Fatalf("stream.Close: %v", err)
		}
	}
	wg.Wait()
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("subscriber %d received no events", i)
		}
	}
}

func TestUnsubscribeUnknown(t *testing.T) {
	h := startHarness(t, false)
	raw, err := net.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	rd := bufio.NewReader(raw)
	if _, err := fmt.Fprintln(raw, `{"id":3,"verb":"unsubscribe","sub":42}`); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var resp ctl.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "no subscription") {
		t.Fatalf("unsubscribe(42) response: %+v", resp)
	}
}

// The static-analysis admission gate: compile reports structured
// diagnostics, swap refuses warning-carrying programs unless forced.
func TestAnalysisAdmissionGate(t *testing.T) {
	h := startHarness(t, false)
	c := h.client

	// A clean corpus scheduler compiles with a step bound and no
	// warnings.
	cr, err := c.Compile("minRTT", "", "")
	if err != nil {
		t.Fatalf("Compile(minRTT): %v", err)
	}
	if cr.Warnings != 0 {
		t.Fatalf("minRTT compiled with %d warnings: %+v", cr.Warnings, cr.Diagnostics)
	}
	if cr.StepBound == "" || cr.StepBoundSteps <= 0 {
		t.Fatalf("compile result missing step bound: %+v", cr)
	}

	// A rejected program returns structured diagnostics, not just a
	// flat error string.
	_, err = c.Compile("", "missing.PUSH(Q.TOP);", "")
	if err == nil {
		t.Fatal("compiling an undeclared-identifier program should fail")
	}
	var de *ctl.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("Compile error is %T (%v), want *ctl.DiagError", err, err)
	}
	found := false
	for _, d := range de.Diags {
		if d.Rule == "use-before-def" && d.Severity.String() == "error" && d.Line == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no use-before-def error diagnostic in %+v", de.Diags)
	}

	// A program that type-checks but carries warnings (never pushes)
	// compiles with the diagnostics attached...
	noPush := "SET(R1, R1 + 1);"
	cr, err = c.Compile("", noPush, "")
	if err != nil {
		t.Fatalf("Compile(no-push): %v", err)
	}
	if cr.Warnings == 0 {
		t.Fatalf("no-push program compiled without warnings: %+v", cr)
	}

	// ...but swap refuses it, with the same structured findings.
	_, err = c.Swap(1, "", noPush, "")
	if err == nil {
		t.Fatal("swap of a warning-carrying program should be refused")
	}
	if !errors.As(err, &de) {
		t.Fatalf("Swap error is %T (%v), want *ctl.DiagError", err, err)
	}
	hasNoPush := false
	for _, d := range de.Diags {
		if d.Rule == "no-push" {
			hasNoPush = true
		}
	}
	if !hasNoPush {
		t.Fatalf("refusal diagnostics missing no-push: %+v", de.Diags)
	}
	if got, err := c.List(); err != nil || got.Conns[0].Scheduler != "minRTT" {
		t.Fatalf("refused swap must not install: scheduler=%q err=%v", got.Conns[0].Scheduler, err)
	}

	// Force overrides warnings (never errors).
	sw, err := c.SwapForce(1, "", noPush, "")
	if err != nil {
		t.Fatalf("SwapForce: %v", err)
	}
	if sw.Scheduler != "adhoc" {
		t.Fatalf("forced swap installed %q, want adhoc", sw.Scheduler)
	}
	if _, err := c.SwapForce(1, "", "missing.PUSH(Q.TOP);", ""); err == nil {
		t.Fatal("force must not override error-severity findings")
	}
}
