package ctl_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"progmp"
	"progmp/internal/ctl"
	"progmp/internal/guard"
	"progmp/internal/mptcp"
)

// robustHarness is like harness but exposes the server and lets tests
// tune the hardening knobs; lifecycle is managed by the test body (not
// t.Cleanup) so goroutine-leak checks can run after teardown.
type robustHarness struct {
	t       *testing.T
	nw      *progmp.Network
	conn    *progmp.Conn
	tracer  *progmp.Tracer
	metrics *progmp.Metrics
	checker *mptcp.ConservationChecker
	srv     *ctl.Server
	sock    string
	done    chan struct{}
}

func startRobustHarness(t *testing.T, seed int64, mutate func(*ctl.Options)) *robustHarness {
	t.Helper()
	nw := progmp.NewNetwork(seed)
	conn, err := nw.Dial(progmp.ConnConfig{},
		progmp.Path{Name: "wifi", RateBps: 4e6, OneWayDelay: 8 * time.Millisecond},
		progmp.Path{Name: "lte", RateBps: 2e6, OneWayDelay: 25 * time.Millisecond, Backup: true},
	)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	tracer := progmp.NewTracer(0)
	metrics := progmp.NewMetrics()
	conn.Instrument(tracer, metrics)
	checker := mptcp.NewConservationChecker(conn.Inner())
	sched, err := progmp.LoadScheduler("minRTT", progmp.Schedulers["minRTT"])
	if err != nil {
		t.Fatalf("LoadScheduler: %v", err)
	}
	conn.SetScheduler(sched)

	opts := ctl.Options{Network: nw, Tracer: tracer, Metrics: metrics}
	if mutate != nil {
		mutate(&opts)
	}
	srv := ctl.NewServer(opts)
	srv.Register("c1", conn)
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	done := make(chan struct{})
	go func() {
		nw.RunLive(time.Hour, pace)
		close(done)
	}()
	return &robustHarness{
		t: t, nw: nw, conn: conn, tracer: tracer, metrics: metrics,
		checker: checker, srv: srv, sock: sock, done: done,
	}
}

func (h *robustHarness) teardown() {
	h.srv.Close()
	h.nw.StopLive()
	<-h.done
}

// A handler panic (here: the nil Network dereference in ping) is
// answered as an internal error, counted, and does not kill the session
// or the process.
func TestHandlerPanicRecovered(t *testing.T) {
	metrics := progmp.NewMetrics()
	srv := ctl.NewServer(ctl.Options{Metrics: metrics})
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := ctl.Dial("unix", sock)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Ping(); err == nil || !strings.Contains(err.Error(), "handler panicked") {
		t.Fatalf("Ping error = %v, want handler panicked", err)
	}
	// The session survives: a verb that does not touch the network still
	// answers on the same connection.
	if names, err := c.Schedulers(); err != nil || len(names) == 0 {
		t.Fatalf("Schedulers after panic = %v, %v", names, err)
	}
	if got := metrics.Counter("ctl.panics").Value(); got != 1 {
		t.Fatalf("ctl.panics = %d, want 1", got)
	}
}

// With MaxInflight 1 and the simulation loop not yet running, the first
// request parks inside Network.Do and the second is refused immediately
// with an overload error instead of queueing behind it.
func TestOverloadRefusal(t *testing.T) {
	nw := progmp.NewNetwork(1) // RunLive never starts: Network.Do blocks
	metrics := progmp.NewMetrics()
	srv := ctl.NewServer(ctl.Options{Network: nw, Metrics: metrics, MaxInflight: 1})
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	dialRaw := func() (net.Conn, *bufio.Reader) {
		t.Helper()
		raw, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatalf("raw dial: %v", err)
		}
		return raw, bufio.NewReader(raw)
	}
	connA, rdA := dialRaw()
	defer connA.Close()
	connB, rdB := dialRaw()
	defer connB.Close()

	if _, err := fmt.Fprintln(connA, `{"id":1,"verb":"list"}`); err != nil {
		t.Fatalf("write A: %v", err)
	}
	// Wait until A's handler is inflight (it blocks in Network.Do).
	deadline := time.Now().Add(5 * time.Second)
	for metrics.Counter("ctl.requests").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("request A never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let A advance from dispatch into Do

	if _, err := fmt.Fprintln(connB, `{"id":1,"verb":"list"}`); err != nil {
		t.Fatalf("write B: %v", err)
	}
	lineB, err := rdB.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read B: %v", err)
	}
	var respB ctl.Response
	if err := json.Unmarshal(lineB, &respB); err != nil {
		t.Fatalf("response B not JSON: %v", err)
	}
	if respB.OK || !strings.Contains(respB.Error, "overloaded") {
		t.Fatalf("second request response = %+v, want overload refusal", respB)
	}
	if got := metrics.Counter("ctl.overloads").Value(); got != 1 {
		t.Fatalf("ctl.overloads = %d, want 1", got)
	}

	// Release A: closing the inbox fails the parked closure, and the
	// handler answers with the injection error rather than wedging.
	nw.StopLive()
	lineA, err := rdA.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read A: %v", err)
	}
	var respA ctl.Response
	if err := json.Unmarshal(lineA, &respA); err != nil {
		t.Fatalf("response A not JSON: %v", err)
	}
	if respA.OK || !strings.Contains(respA.Error, "inbox closed") {
		t.Fatalf("first request response = %+v, want inbox closed", respA)
	}
}

// Drain: the ack arrives first, live streams end, later calls fail with
// ErrDisconnected, and new connections are refused.
func TestDrainGraceful(t *testing.T) {
	h := startRobustHarness(t, 11, nil)
	defer h.teardown()

	c, err := ctl.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	st, err := c.Subscribe(0, nil, 256)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	res, err := c.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !res.Draining {
		t.Fatalf("DrainResult = %+v, want Draining", res)
	}

	// The stream ends (closed subscription or closed connection).
	timeout := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-st.Events():
			open = ok
		case <-timeout:
			t.Fatalf("stream still open after drain")
		}
	}

	// Calls on the old connection eventually report a typed disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := c.Ping()
		if err != nil && errors.Is(err, ctl.ErrDisconnected) {
			break
		}
		if err != nil && !errors.Is(err, ctl.ErrDisconnected) &&
			!strings.Contains(err.Error(), "draining") {
			t.Fatalf("Ping after drain = %v, want ErrDisconnected or draining refusal", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("connection never reported ErrDisconnected after drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the listener is gone: fresh dials are refused.
	if raw, err := net.Dial("unix", h.sock); err == nil {
		raw.Close()
		// A unix listener unlinks its socket on Close; a successful dial
		// here means the listener is still accepting.
		t.Fatalf("dial after drain succeeded, want refusal")
	}
	if !h.srv.Draining() {
		t.Fatalf("server does not report draining")
	}
}

// A stalled subscriber (never reads) is evicted by the tracer's
// consecutive-drop budget and the eviction is visible as a CTL_SUB_EVICT
// trace event.
func TestSubscriberEvictionEndToEnd(t *testing.T) {
	h := startRobustHarness(t, 17, func(o *ctl.Options) {
		o.SubEvictDrops = 64
		o.WriteTimeout = 250 * time.Millisecond
	})
	defer h.teardown()

	raw, err := net.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	rd := bufio.NewReader(raw)
	// Subscribe with a tiny server-side buffer, read the ack, then stop
	// reading forever.
	if _, err := fmt.Fprintln(raw, `{"id":1,"verb":"subscribe","buf":1}`); err != nil {
		t.Fatalf("subscribe write: %v", err)
	}
	if _, err := rd.ReadBytes('\n'); err != nil {
		t.Fatalf("subscribe ack: %v", err)
	}

	// Generate a flood of trace events.
	c, err := ctl.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(1, 2_000_000, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		evicted := false
		for _, ev := range h.tracer.Events() {
			if ev.Kind.String() == "CTL_SUB_EVICT" {
				evicted = true
			}
		}
		if evicted {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no CTL_SUB_EVICT event recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A fleet-blocked program is refused by both compile and swap over the
// control plane, counted, and installable only with force — the same
// override contract as the analyzer admission gate.
func TestFleetRefusalOverCtl(t *testing.T) {
	// No After hook: an operator block stays in force for the whole test.
	fleet := guard.NewFleet(progmp.FleetConfig{CleanWindow: time.Hour})
	h := startRobustHarness(t, 11, func(o *ctl.Options) { o.Fleet = fleet })
	defer h.teardown()

	c, err := ctl.Dial("unix", h.sock)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	fleet.Block("redundant")

	if _, err := c.Swap(1, "redundant", "", ""); err == nil || !strings.Contains(err.Error(), "fleet-blocked") {
		t.Fatalf("Swap of blocked program = %v, want fleet-blocked refusal", err)
	}
	if _, err := c.Compile("redundant", "", ""); err == nil || !strings.Contains(err.Error(), "fleet-blocked") {
		t.Fatalf("Compile of blocked program = %v, want fleet-blocked refusal", err)
	}
	if got := h.metrics.Counter("ctl.fleet_rejects").Value(); got != 2 {
		t.Fatalf("ctl.fleet_rejects = %d, want 2", got)
	}
	res, err := c.SwapForce(1, "redundant", "", "")
	if err != nil {
		t.Fatalf("SwapForce past fleet block: %v", err)
	}
	if res.Scheduler != "redundant" {
		t.Fatalf("forced swap installed %q, want redundant", res.Scheduler)
	}
	// An unblocked program is unaffected by the gate.
	if _, err := c.Swap(1, "minRTT", "", ""); err != nil {
		t.Fatalf("Swap of unblocked program: %v", err)
	}
}

// The circuit breaker: consecutive dial failures open it, calls then
// fail fast with ErrCircuitOpen, and a server appearing after the
// cooldown closes it again.
func TestReClientBreaker(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	metrics := progmp.NewMetrics()
	rc := ctl.DialRetry(ctl.RetryOptions{
		Network: "unix", Addr: sock,
		MaxAttempts:     1, // count failures call by call
		BreakerFails:    2,
		BreakerCooldown: 200 * time.Millisecond,
		Metrics:         metrics,
		Seed:            7,
	})
	defer rc.Close()

	for i := 0; i < 2; i++ {
		if _, err := rc.Ping(); err == nil || !errors.Is(err, ctl.ErrDisconnected) {
			t.Fatalf("Ping %d with no server = %v, want ErrDisconnected", i, err)
		}
	}
	if !rc.BreakerOpen() {
		t.Fatalf("breaker not open after %d consecutive failures", 2)
	}
	if _, err := rc.Ping(); err == nil || !errors.Is(err, ctl.ErrCircuitOpen) {
		t.Fatalf("Ping with open breaker = %v, want ErrCircuitOpen", err)
	}
	if got := metrics.Counter("ctl.client.breaker_opens").Value(); got != 1 {
		t.Fatalf("ctl.client.breaker_opens = %d, want 1", got)
	}

	// Bring a server up; once the cooldown elapses the half-open probe
	// reconnects and the breaker closes.
	h := startRobustHarnessAt(t, 3, sock)
	defer h.teardown()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rc.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after the server came up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rc.BreakerOpen() || rc.ConsecFails() != 0 {
		t.Fatalf("breaker open=%v fails=%d after recovery, want closed and 0", rc.BreakerOpen(), rc.ConsecFails())
	}
}

// startRobustHarnessAt is startRobustHarness bound to a caller-chosen
// socket path (for restart-on-the-same-address tests).
func startRobustHarnessAt(t *testing.T, seed int64, sock string) *robustHarness {
	t.Helper()
	h := startRobustHarness(t, seed, nil)
	// Re-point: serve an extra listener on the requested path.
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen(%s): %v", sock, err)
	}
	go h.srv.Serve(ln)
	return h
}

// A ReClient survives its server restarting: calls fail while it is
// down, and the next call after it returns dials fresh and succeeds,
// counted as a reconnect.
func TestReClientReconnect(t *testing.T) {
	h1 := startRobustHarness(t, 5, nil)
	metrics := progmp.NewMetrics()
	rc := ctl.DialRetry(ctl.RetryOptions{
		Network: "unix", Addr: h1.sock,
		MaxAttempts:  4,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BreakerFails: 1000, // keep the breaker out of this test
		Metrics:      metrics,
		Seed:         9,
	})
	defer rc.Close()

	if _, err := rc.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	// Kill the server. The unix listener unlinks its socket on Close, so
	// the path is free for the restart.
	h1.teardown()
	if _, err := rc.Ping(); err == nil {
		t.Fatalf("Ping with server down succeeded")
	}

	h2 := startRobustHarnessAt(t, 6, h1.sock)
	defer h2.teardown()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rc.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ReClient never recovered after server restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metrics.Counter("ctl.client.reconnects").Value(); got < 1 {
		t.Fatalf("ctl.client.reconnects = %d, want >= 1", got)
	}
	if got := metrics.Counter("ctl.client.retries").Value(); got < 1 {
		t.Fatalf("ctl.client.retries = %d, want >= 1", got)
	}
}

// waitGoroutines polls until the goroutine count returns to (or below)
// want+slack, dumping stacks on timeout.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d, want <= %d\n%s", n, want+slack, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCtlChaosSoak composes the data-plane simulation with control-plane
// chaos: a seeded proxy drops, stalls and slow-reads control
// connections while ReClient workers hammer idempotent verbs, subscriber
// churn opens and abandons streams, and a live transfer runs
// underneath. After teardown the test asserts byte-exact conservation
// and zero leaked goroutines. Run with -race.
func TestCtlChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			h := startRobustHarness(t, seed, func(o *ctl.Options) {
				o.ReadIdleTimeout = 1 * time.Second
				o.WriteTimeout = 500 * time.Millisecond
				o.SubEvictDrops = 1024
			})
			proxy, err := ctl.NewChaosProxy("unix", h.sock, ctl.ChaosConfig{
				Seed:            seed,
				DropProb:        0.25,
				StallProb:       0.15,
				SlowProb:        0.15,
				MinLife:         5 * time.Millisecond,
				MaxLife:         60 * time.Millisecond,
				SlowBytesPerSec: 64 << 10,
			})
			if err != nil {
				t.Fatalf("NewChaosProxy: %v", err)
			}

			// The control client rides the clean socket: it drives the
			// transfer and the completion check.
			direct, err := ctl.Dial("unix", h.sock)
			if err != nil {
				t.Fatalf("Dial(direct): %v", err)
			}
			const payload = 3_000_000
			for i := 0; i < 3; i++ {
				if err := direct.Send(1, payload/3, 0); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}

			cmetrics := progmp.NewMetrics()
			var calls, callFails atomic.Int64
			var wg sync.WaitGroup
			// ReClient workers: every idempotent request must eventually
			// complete through the chaos (reconnecting as needed).
			for w := 0; w < 3; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rc := ctl.DialRetry(ctl.RetryOptions{
						Network: "unix", Addr: proxy.Addr(),
						CallTimeout: 500 * time.Millisecond,
						VerbTimeouts: map[string]time.Duration{
							ctl.VerbPing: 500 * time.Millisecond,
							ctl.VerbList: 500 * time.Millisecond,
						},
						MaxAttempts:  4,
						BackoffBase:  2 * time.Millisecond,
						BackoffMax:   20 * time.Millisecond,
						BreakerFails: 1 << 30, // completion, not fail-fast, is under test
						Metrics:      cmetrics,
						Seed:         seed*10 + int64(w),
					})
					defer rc.Close()
					for i := 0; i < 20; i++ {
						verb := ctl.VerbPing
						if i%2 == 1 {
							verb = ctl.VerbList
						}
						// Outer loop: chaos can defeat one Do's attempt
						// budget; the request itself must still complete.
						deadline := time.Now().Add(15 * time.Second)
						for {
							_, err := rc.Do(ctl.Request{Verb: verb})
							if err == nil {
								calls.Add(1)
								break
							}
							callFails.Add(1)
							if time.Now().After(deadline) {
								t.Errorf("worker %d: %s never completed: %v", w, verb, err)
								return
							}
						}
					}
				}()
			}
			// Subscriber churn: streams opened through the chaos proxy,
			// half abandoned without Close, connections dropped under
			// them.
			for s := 0; s < 3; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 6; i++ {
						cl, err := ctl.Dial("unix", proxy.Addr())
						if err != nil {
							continue // proxy may have been told to refuse us
						}
						ctx, cancel := context.WithTimeout(context.Background(), time.Second)
						st, err := cl.SubscribeCtx(ctx, 0, nil, 64)
						cancel()
						if err == nil {
							// Read briefly, then abandon or close.
							drainUntil := time.After(10 * time.Millisecond)
						drain:
							for {
								select {
								case _, ok := <-st.Events():
									if !ok {
										break drain
									}
								case <-drainUntil:
									break drain
								}
							}
							if (i+s)%2 == 0 {
								st.Close()
							}
						}
						cl.Close()
					}
				}()
			}

			wg.Wait()
			if calls.Load() != 60 {
				t.Fatalf("completed %d idempotent calls, want 60 (%d individual failures along the way)",
					calls.Load(), callFails.Load())
			}

			// The transfer underneath must have survived untouched. The
			// original direct session was idle throughout the soak, so
			// the server's read-idle deadline has reaped it by now —
			// check through a fresh connection.
			direct.Close()
			direct, err = ctl.Dial("unix", h.sock)
			if err != nil {
				t.Fatalf("Dial(direct, post-soak): %v", err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				res, err := direct.List()
				if err != nil {
					t.Fatalf("List: %v", err)
				}
				if len(res.Conns) == 1 && res.Conns[0].AllAcked {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("transfer did not complete")
				}
				time.Sleep(2 * time.Millisecond)
			}
			var consErr error
			if err := h.nw.Do(func() { consErr = h.checker.Check(payload) }); err != nil {
				t.Fatalf("Do: %v", err)
			}
			if consErr != nil {
				t.Fatalf("conservation under ctl chaos (seed %d): %v", seed, consErr)
			}

			t.Logf("seed %d: proxy accepts=%d drops=%d stalls=%d slows=%d; reconnects=%d retries=%d callFails=%d",
				seed, proxy.Accepts.Load(), proxy.Drops.Load(), proxy.Stalls.Load(), proxy.Slows.Load(),
				cmetrics.Counter("ctl.client.reconnects").Value(),
				cmetrics.Counter("ctl.client.retries").Value(), callFails.Load())

			direct.Close()
			proxy.Close()
			h.teardown()
			waitGoroutines(t, baseline)
		})
	}
}
