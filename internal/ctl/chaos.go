package ctl

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig tunes a ChaosProxy: seeded, wire-level fault injection
// for the control plane, the ctl analogue of netsim.ChaosSpec for the
// data plane. Each accepted connection rolls a fate from the seeded
// stream — pass through clean, die abruptly after a random life, stall
// (the proxy keeps the sockets open but stops forwarding, the shape of
// a peer that wedges without closing), or forward server→client
// traffic at a crawl (a subscriber that cannot keep up). Probabilities
// are evaluated in order (drop, stall, slow); whatever is left is a
// clean connection.
type ChaosConfig struct {
	Seed int64

	// DropProb is the probability a connection is killed (both sides
	// closed) after a uniform [MinLife, MaxLife) delay.
	DropProb float64
	// StallProb is the probability a connection stalls after a uniform
	// [MinLife, MaxLife) delay: forwarding stops in both directions but
	// the sockets stay open, so only deadlines can free the peers.
	StallProb float64
	// SlowProb is the probability a connection's server→client leg is
	// throttled to SlowBytesPerSec from the start.
	SlowProb float64

	// MinLife/MaxLife bound the delay before a drop or stall fires
	// (defaults 10 ms / 200 ms).
	MinLife time.Duration
	MaxLife time.Duration
	// SlowBytesPerSec is the slow-leg throughput (default 4096).
	SlowBytesPerSec int
}

func (c *ChaosConfig) applyDefaults() {
	if c.MinLife == 0 {
		c.MinLife = 10 * time.Millisecond
	}
	if c.MaxLife == 0 {
		c.MaxLife = 200 * time.Millisecond
	}
	if c.SlowBytesPerSec == 0 {
		c.SlowBytesPerSec = 4096
	}
}

// ChaosProxy sits between control-plane clients and a Server, injecting
// the faults described by ChaosConfig. It listens on its own address;
// point clients at Addr() and the proxy at the real server. Fates are
// drawn from a seeded generator in accept order, so a single-client
// test sequence is reproducible for a given seed.
type ChaosProxy struct {
	network string
	target  string
	ln      net.Listener
	cfg     ChaosConfig

	// Fault counts, for assertions and logs.
	Drops   atomic.Int64
	Stalls  atomic.Int64
	Slows   atomic.Int64
	Accepts atomic.Int64

	rmu sync.Mutex
	rng *rand.Rand

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewChaosProxy starts a proxy in front of the server at network/target
// (the same network/addr pair Dial takes), listening on an address of
// the same network family. Close it to stop the listener and every
// proxied connection.
func NewChaosProxy(network, target string, cfg ChaosConfig) (*ChaosProxy, error) {
	cfg.applyDefaults()
	var laddr string
	switch network {
	case "unix":
		laddr = target + ".chaos"
	case "tcp":
		laddr = "127.0.0.1:0"
	default:
		return nil, fmt.Errorf("ctl: chaos proxy: unsupported network %q", network)
	}
	ln, err := net.Listen(network, laddr)
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		network: network,
		target:  target,
		ln:      ln,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		conns:   map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Close stops the listener and tears down every proxied connection;
// it returns once all pump goroutines have exited.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *ChaosProxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.Accepts.Add(1)
		server, err := net.Dial(p.network, p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client, server) {
			return
		}
		p.wg.Add(1)
		go p.pump(client, server)
	}
}

// track registers both legs for Close; false when the proxy is already
// closed (the legs are closed instead).
func (p *ChaosProxy) track(client, server net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		client.Close()
		server.Close()
		return false
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(client, server net.Conn) {
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}

func (p *ChaosProxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// fate rolls this connection's fault from the seeded stream.
func (p *ChaosProxy) fate() (drop, stall, slow bool, life time.Duration) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	roll := p.rng.Float64()
	span := p.cfg.MaxLife - p.cfg.MinLife
	life = p.cfg.MinLife
	if span > 0 {
		life += time.Duration(p.rng.Int63n(int64(span)))
	}
	switch {
	case roll < p.cfg.DropProb:
		return true, false, false, life
	case roll < p.cfg.DropProb+p.cfg.StallProb:
		return false, true, false, life
	case roll < p.cfg.DropProb+p.cfg.StallProb+p.cfg.SlowProb:
		return false, false, true, life
	}
	return false, false, false, life
}

// pump forwards both directions until a leg fails, applying the rolled
// fault.
func (p *ChaosProxy) pump(client, server net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client, server)
	defer client.Close()
	defer server.Close()

	drop, stall, slow, life := p.fate()
	var stalled atomic.Bool
	switch {
	case drop:
		p.Drops.Add(1)
		timer := time.AfterFunc(life, func() {
			client.Close()
			server.Close()
		})
		defer timer.Stop()
	case stall:
		p.Stalls.Add(1)
		timer := time.AfterFunc(life, func() { stalled.Store(true) })
		defer timer.Stop()
	case slow:
		p.Slows.Add(1)
	}

	var legs sync.WaitGroup
	legs.Add(2)
	copyLeg := func(dst, src net.Conn, throttle int) {
		defer legs.Done()
		// Half-close the other direction when this one ends, so a
		// clean server shutdown propagates to the client promptly.
		defer dst.Close()
		defer src.Close()
		buf := make([]byte, 4<<10)
		for {
			if stalled.Load() {
				// Wedge: keep the sockets open, forward nothing. The
				// deadline machinery on either side must break the tie;
				// poll so proxy Close still releases us.
				if p.isClosed() {
					return
				}
				time.Sleep(5 * time.Millisecond)
				continue
			}
			n, err := src.Read(buf)
			if n > 0 {
				if throttle > 0 {
					// Pace the payload at roughly throttle bytes/sec.
					time.Sleep(time.Duration(n) * time.Second / time.Duration(throttle))
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	throttleDown := 0
	if slow {
		throttleDown = p.cfg.SlowBytesPerSec
	}
	go copyLeg(client, server, throttleDown) // server→client leg
	copyLeg(server, client, 0)               // client→server leg
	legs.Wait()
}
