package ctl_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"progmp"
	"progmp/internal/ctl"
)

// startFleetHarness runs two instrumented connections whose registries
// feed one aggregator, with both the NDJSON ctl endpoint and the HTTP
// exposition endpoint live.
func startFleetHarness(t *testing.T) (*ctl.Client, *progmp.MetricsAggregator, string) {
	t.Helper()
	nw := progmp.NewNetwork(23)
	agg := progmp.NewMetricsAggregator()
	ctlReg := progmp.NewMetrics() // server self-metrics
	agg.Attach(progmp.MetricsLabels{}, ctlReg)

	srv := ctl.NewServer(ctl.Options{Network: nw, Metrics: ctlReg, Agg: agg})
	for i := 1; i <= 2; i++ {
		conn, err := nw.Dial(progmp.ConnConfig{},
			progmp.Path{Name: "wifi", RateBps: 4e6, OneWayDelay: 8 * time.Millisecond},
			progmp.Path{Name: "lte", RateBps: 2e6, OneWayDelay: 25 * time.Millisecond},
		)
		if err != nil {
			t.Fatalf("Dial conn %d: %v", i, err)
		}
		reg := progmp.NewMetrics()
		conn.Instrument(nil, reg)
		name := fmt.Sprintf("c%d", i)
		agg.Attach(progmp.MetricsLabels{Conn: name, Scheduler: "minRTT"}, reg)
		sched, err := progmp.LoadScheduler("minRTT", progmp.Schedulers["minRTT"])
		if err != nil {
			t.Fatalf("LoadScheduler: %v", err)
		}
		conn.SetScheduler(sched)
		srv.Register(name, conn)
		conn.Send(64 << 10)
	}

	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen http: %v", err)
	}
	go srv.ServeMetricsHTTP(hln)

	done := make(chan struct{})
	go func() {
		nw.RunLive(time.Hour, pace)
		close(done)
	}()
	client, err := ctl.Dial("unix", sock)
	if err != nil {
		t.Fatalf("ctl.Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		nw.StopLive()
		srv.Close()
		<-done
	})
	return client, agg, "http://" + hln.Addr().String()
}

// waitForExecs polls until both connections' schedulers have executed,
// so aggregated metrics have real data behind them.
func waitForExecs(t *testing.T, client *ctl.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		res, err := client.MetricsAgg("")
		if err != nil {
			t.Fatalf("MetricsAgg: %v", err)
		}
		ready := 0
		for _, src := range res.Snapshot.Sources {
			if src.Labels.Conn != "" && src.Snap.Counters["conn.sched_execs"] > 0 {
				ready++
			}
		}
		if ready >= 2 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("connections never executed their schedulers")
}

func TestMetricsAggVerb(t *testing.T) {
	client, _, _ := startFleetHarness(t)
	waitForExecs(t, client)

	res, err := client.MetricsAgg("json")
	if err != nil {
		t.Fatalf("MetricsAgg json: %v", err)
	}
	if res.NumSources != 3 { // ctl registry + two connections
		t.Fatalf("NumSources = %d, want 3", res.NumSources)
	}
	if res.Snapshot == nil || res.Text != "" {
		t.Fatalf("json format filled wrong fields: %+v", res)
	}
	var perConn int64
	for _, src := range res.Snapshot.Sources {
		if src.Labels.Conn != "" {
			perConn += src.Snap.Counters["conn.sched_execs"]
		}
	}
	if merged := res.Snapshot.Counters["conn.sched_execs"]; perConn == 0 || merged < perConn {
		t.Fatalf("merged execs %d < per-conn sum %d", merged, perConn)
	}
	// The server's own request metrics aggregate in too (this very
	// request sequence produced them).
	if res.Snapshot.Counters["ctl.requests"] == 0 {
		t.Fatal("ctl.requests missing from aggregate")
	}
	if res.Snapshot.Hists["ctl.request_ns"].Count == 0 {
		t.Fatal("ctl.request_ns histogram empty")
	}
	// Hot-path latency histograms flow through aggregation.
	if res.Snapshot.Hists["conn.sched_exec_ns"].P50 <= 0 {
		t.Fatalf("aggregated conn.sched_exec_ns p50 = %d, want > 0",
			res.Snapshot.Hists["conn.sched_exec_ns"].P50)
	}

	text, err := client.MetricsAgg("text")
	if err != nil {
		t.Fatalf("MetricsAgg text: %v", err)
	}
	if text.Snapshot != nil || text.Text == "" {
		t.Fatalf("text format filled wrong fields: %+v", text)
	}
	for _, want := range []string{
		`progmp_conn_sched_execs_total{conn="c1",scheduler="minRTT"}`,
		`progmp_conn_sched_execs_total{conn="c2",scheduler="minRTT"}`,
		"# TYPE progmp_conn_sched_exec_ns histogram",
		"# EOF\n",
	} {
		if !strings.Contains(text.Text, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, text.Text)
		}
	}

	if _, err := client.MetricsAgg("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestMetricsHTTPEndpoint(t *testing.T) {
	client, _, base := startFleetHarness(t)
	waitForExecs(t, client)

	for _, path := range []string{"/metrics", "/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
			t.Fatalf("GET %s: content type %q", path, ct)
		}
		text := string(body)
		for _, want := range []string{
			`progmp_conn_sched_execs_total{conn="c1",scheduler="minRTT"}`,
			`progmp_conn_sched_execs_total{conn="c2",scheduler="minRTT"}`,
			"# EOF\n",
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("GET %s lacks %q:\n%s", path, want, text)
			}
		}
		if !strings.HasSuffix(text, "# EOF\n") {
			t.Fatalf("GET %s does not end with # EOF", path)
		}
	}

	resp, err := http.Post(base+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsAggNotAttached(t *testing.T) {
	h := startHarness(t, false)
	if _, err := h.client.MetricsAgg(""); err == nil {
		t.Fatal("metrics-agg without aggregator should fail")
	}
}
