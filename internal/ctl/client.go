package ctl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progmp/internal/obs"
)

// ErrDisconnected reports that the transport to the server ended —
// cleanly (server drained or closed) or not (crash, network failure) —
// as opposed to the server answering with a protocol error. Errors
// returned by Client calls wrap it, so callers and the retry layer can
// test with errors.Is(err, ErrDisconnected) and treat the condition as
// retryable on a fresh connection.
var ErrDisconnected = errors.New("ctl: disconnected")

// Client speaks the control-plane protocol to a Server. It is safe for
// concurrent use; calls may be issued from any goroutine and are
// demultiplexed by request id.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes request lines

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan Response
	subs    map[uint64]*Stream
	readErr error
	done    chan struct{}
}

// Dial connects to a control-plane server ("unix" + socket path, or
// "tcp" + host:port).
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan Response{},
		subs:    map[uint64]*Stream{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close disconnects; in-flight calls fail and streams end.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	var readErr error
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			readErr = fmt.Errorf("ctl: malformed response: %v", err)
			break
		}
		c.route(resp)
	}
	if readErr == nil {
		if err := sc.Err(); err != nil {
			readErr = fmt.Errorf("ctl: connection lost: %v: %w", err, ErrDisconnected)
		} else {
			readErr = fmt.Errorf("ctl: connection closed: %w", ErrDisconnected)
		}
	}
	c.mu.Lock()
	c.readErr = readErr
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	for id, st := range c.subs {
		delete(c.subs, id)
		close(st.ch)
	}
	c.mu.Unlock()
	close(c.done)
}

func (c *Client) route(resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if resp.Event != nil {
		if st, ok := c.subs[resp.ID]; ok {
			select {
			case st.ch <- *resp.Event:
			default:
				st.dropped.Add(1)
			}
		}
		return
	}
	if ch, ok := c.pending[resp.ID]; ok {
		delete(c.pending, resp.ID)
		ch <- resp
		return
	}
	// An error response under a live subscription id with no pending
	// call is the server ending the stream (e.g. the subscriber was
	// evicted for falling behind): close the stream and surface why.
	if st, ok := c.subs[resp.ID]; ok && !resp.OK {
		delete(c.subs, resp.ID)
		st.endErr.Store(fmt.Errorf("ctl: %s", resp.Error))
		close(st.ch)
	}
}

// Call sends req (its ID is assigned here) and waits for the matching
// response, returning the raw result or the server's error.
func (c *Client) Call(req Request) (json.RawMessage, error) {
	return c.CallCtx(context.Background(), req)
}

// CallCtx is Call bounded by a context: when ctx ends before the
// response arrives, the call returns ctx's error immediately and the
// eventual response is discarded by the read loop. A context timeout
// does NOT disturb the connection — the protocol is pipelined by
// request id — but the caller no longer knows whether the request took
// effect, so only idempotent verbs should be retried after one (the
// retry layer enforces exactly that).
func (c *Client) CallCtx(ctx context.Context, req Request) (json.RawMessage, error) {
	req.ID = c.nextID.Add(1)
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()
	if err := c.writeRequest(req); err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("ctl: write failed: %v: %w", err, ErrDisconnected)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, err
		}
		if !resp.OK {
			if len(resp.Diags) > 0 {
				return nil, &DiagError{Msg: "ctl: " + resp.Error, Diags: resp.Diags}
			}
			return nil, fmt.Errorf("ctl: %s", resp.Error)
		}
		return resp.Result, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("ctl: %s: %w", req.Verb, ctx.Err())
	}
}

// CallTimeout is CallCtx with a fresh deadline of d (no bound when
// d <= 0).
func (c *Client) CallTimeout(req Request, d time.Duration) (json.RawMessage, error) {
	if d <= 0 {
		return c.Call(req)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.CallCtx(ctx, req)
}

func (c *Client) writeRequest(req Request) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err = c.conn.Write(buf)
	return err
}

func (c *Client) call(req Request, out any) error {
	raw, err := c.Call(req)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Ping returns the server's virtual clock.
func (c *Client) Ping() (PingResult, error) {
	var out PingResult
	err := c.call(Request{Verb: VerbPing}, &out)
	return out, err
}

// List returns the registered connections with their scheduler,
// registers, and subflow stats.
func (c *Client) List() (ListResult, error) {
	var out ListResult
	err := c.call(Request{Verb: VerbList}, &out)
	return out, err
}

// Schedulers returns the names compile and swap accept.
func (c *Client) Schedulers() ([]string, error) {
	var out SchedulersResult
	err := c.call(Request{Verb: VerbSchedulers}, &out)
	return out.Names, err
}

// Compile verifies and compiles a scheduler without installing it.
// Either name (corpus lookup) or src (inline program) must be set.
func (c *Client) Compile(name, src, backend string) (CompileResult, error) {
	var out CompileResult
	err := c.call(Request{Verb: VerbCompile, Name: name, Src: src, Backend: backend}, &out)
	return out, err
}

// Swap hot-swaps the scheduler of connection conn (0 = first). The
// server refuses programs carrying analyzer warnings; the returned
// error is a *DiagError with the structured findings. Use SwapForce to
// override.
func (c *Client) Swap(conn int, name, src, backend string) (SwapResult, error) {
	var out SwapResult
	err := c.call(Request{Verb: VerbSwap, Conn: conn, Name: name, Src: src, Backend: backend}, &out)
	return out, err
}

// SwapForce is Swap with the static-analysis admission gate overridden
// for warning-level findings. Errors still refuse.
func (c *Client) SwapForce(conn int, name, src, backend string) (SwapResult, error) {
	var out SwapResult
	err := c.call(Request{Verb: VerbSwap, Conn: conn, Name: name, Src: src, Backend: backend, Force: true}, &out)
	return out, err
}

// GetReg reads scheduler register reg of connection conn.
func (c *Client) GetReg(conn, reg int) (int64, error) {
	var out RegResult
	err := c.call(Request{Verb: VerbGetReg, Conn: conn, Reg: reg}, &out)
	return out.Value, err
}

// SetReg writes scheduler register reg of connection conn.
func (c *Client) SetReg(conn, reg int, value int64) error {
	return c.call(Request{Verb: VerbSetReg, Conn: conn, Reg: reg, Value: value}, nil)
}

// Send enqueues bytes on connection conn with scheduling intent prop.
func (c *Client) Send(conn, bytes int, prop int64) error {
	return c.call(Request{Verb: VerbSend, Conn: conn, Bytes: bytes, Prop: prop}, nil)
}

// GGet reads shared-store global register reg (0-based) and the store
// epoch the value belongs to.
func (c *Client) GGet(reg int) (GlobalResult, error) {
	var out GlobalResult
	err := c.call(Request{Verb: VerbGGet, Reg: reg}, &out)
	return out, err
}

// GSet writes shared-store global register reg (0-based); the result
// reports the epoch the write published.
func (c *Client) GSet(reg int, value int64) (GlobalResult, error) {
	var out GlobalResult
	err := c.call(Request{Verb: VerbGSet, Reg: reg, Value: value}, &out)
	return out, err
}

// DestStats dumps the shared store's per-destination path statistics,
// name-sorted, all from the single epoch reported.
func (c *Client) DestStats() (DestStatsResult, error) {
	var out DestStatsResult
	err := c.call(Request{Verb: VerbDestStats}, &out)
	return out, err
}

// Metrics snapshots the server's metrics registry.
func (c *Client) Metrics() (MetricsResult, error) {
	var out MetricsResult
	err := c.call(Request{Verb: VerbMetrics}, &out)
	return out, err
}

// MetricsAgg fetches the fleet-wide aggregated metrics. Format "json"
// (or "") returns the structured snapshot, "text" the OpenMetrics
// exposition.
func (c *Client) MetricsAgg(format string) (MetricsAggResult, error) {
	var out MetricsAggResult
	err := c.call(Request{Verb: VerbMetricsAgg, Format: format}, &out)
	return out, err
}

// Drain asks the server to shut down gracefully: stop accepting,
// finish inflight requests, close subscriptions, then close. The
// acknowledgement arrives before the drain begins; expect the
// connection to end shortly after.
func (c *Client) Drain() (DrainResult, error) {
	var out DrainResult
	err := c.call(Request{Verb: VerbDrain}, &out)
	return out, err
}

// Stream is a live trace-event subscription. Drain Events promptly:
// frames arriving while the local buffer is full are dropped (counted
// by Dropped), independent of the server-side subscription buffer.
type Stream struct {
	c       *Client
	id      uint64
	ch      chan obs.JSONLEvent
	dropped atomic.Uint64
	endErr  atomic.Value // error: why the server ended the stream
	closed  sync.Once
}

// Events is the stream of trace frames; it closes when the stream or
// the client shuts down.
func (s *Stream) Events() <-chan obs.JSONLEvent { return s.ch }

// Dropped counts frames discarded client-side because Events was not
// drained fast enough.
func (s *Stream) Dropped() uint64 { return s.dropped.Load() }

// Err reports why the server ended the stream (e.g. the subscriber was
// evicted for falling behind); nil while live or after a local Close.
func (s *Stream) Err() error {
	if err, ok := s.endErr.Load().(error); ok {
		return err
	}
	return nil
}

// unsubscribeTimeout bounds the unsubscribe round-trip issued by
// Stream.Close: against a stalled server the local stream must still
// close promptly rather than wedging the caller.
const unsubscribeTimeout = 2 * time.Second

// Close ends the subscription. The local stream is torn down
// immediately; the server-side unsubscribe is bounded by
// unsubscribeTimeout, and a server that cannot answer (stalled, gone)
// surfaces as the returned error while the stream stays closed.
func (s *Stream) Close() error {
	var err error
	s.closed.Do(func() {
		s.c.mu.Lock()
		_, live := s.c.subs[s.id]
		if live {
			delete(s.c.subs, s.id)
			close(s.ch)
		}
		s.c.mu.Unlock()
		if live {
			_, err = s.c.CallTimeout(Request{Verb: VerbUnsubscribe, Sub: s.id}, unsubscribeTimeout)
			// The server may have ended the subscription on its side
			// (eviction) in the instant before our unsubscribe landed;
			// the stream is down either way, so that race is not an
			// error.
			if err != nil && strings.Contains(err.Error(), "no subscription") {
				err = nil
			}
		}
	})
	return err
}

// Subscribe opens a live trace-event stream. conn filters to one
// connection (0 = all), kinds filters by event name as spelled in
// trace output (nil = all), buf sizes both the server-side and local
// buffers (<= 0 selects the default). The wait for the server's
// acknowledgement is unbounded; against a server that may stall, use
// SubscribeCtx.
func (c *Client) Subscribe(conn int, kinds []string, buf int) (*Stream, error) {
	return c.SubscribeCtx(context.Background(), conn, kinds, buf)
}

// SubscribeCtx is Subscribe bounded by a context: if ctx ends before
// the server acknowledges the subscription, the stream is torn down
// locally and ctx's error returned. The eventual acknowledgement or
// refusal is discarded by the read loop.
func (c *Client) SubscribeCtx(ctx context.Context, conn int, kinds []string, buf int) (*Stream, error) {
	if buf <= 0 {
		buf = obs.DefaultSubscriptionBuffer
	}
	req := Request{Verb: VerbSubscribe, Conn: conn, Kinds: kinds, Buf: buf}
	req.ID = c.nextID.Add(1)
	st := &Stream{c: c, id: req.ID, ch: make(chan obs.JSONLEvent, buf)}
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	// Register the stream before sending so no frame between the ack
	// and our return is lost.
	c.subs[req.ID] = st
	c.mu.Unlock()
	fail := func() {
		c.mu.Lock()
		delete(c.pending, req.ID)
		if _, live := c.subs[req.ID]; live {
			delete(c.subs, req.ID)
			close(st.ch)
		}
		c.mu.Unlock()
	}
	if err := c.writeRequest(req); err != nil {
		fail()
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, err
		}
		if !resp.OK {
			fail()
			return nil, fmt.Errorf("ctl: %s", resp.Error)
		}
		return st, nil
	case <-ctx.Done():
		fail()
		return nil, fmt.Errorf("ctl: subscribe: %w", ctx.Err())
	}
}
