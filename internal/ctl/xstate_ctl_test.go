package ctl_test

import (
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"progmp"
	"progmp/internal/ctl"
)

// startSharedHarness is a live simulation with two connections attached
// to one shared-state store and a ctl server exposing that store on a
// Unix socket.
func startSharedHarness(t *testing.T) (*ctl.Client, *progmp.SharedStore, string) {
	t.Helper()
	nw := progmp.NewNetwork(17)
	st := progmp.NewSharedStore()
	paths := []progmp.Path{
		{Name: "wifi", RateBps: 4e6, OneWayDelay: 8 * time.Millisecond},
		{Name: "lte", RateBps: 2e6, OneWayDelay: 25 * time.Millisecond},
	}
	srv := ctl.NewServer(ctl.Options{Network: nw, Store: st})
	for i, name := range []string{"c1", "c2"} {
		conn, err := nw.Dial(progmp.ConnConfig{Store: st}, paths...)
		if err != nil {
			t.Fatalf("Dial %s: %v", name, err)
		}
		sched, err := progmp.LoadScheduler("jointFlow", progmp.Schedulers["jointFlow"])
		if err != nil {
			t.Fatalf("LoadScheduler: %v", err)
		}
		conn.SetScheduler(sched)
		if id := srv.Register(name, conn); id != i+1 {
			t.Fatalf("Register %s returned id %d, want %d", name, id, i+1)
		}
	}
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	done := make(chan struct{})
	go func() {
		nw.RunLive(time.Hour, pace)
		close(done)
	}()
	client, err := ctl.Dial("unix", sock)
	if err != nil {
		t.Fatalf("ctl.Dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		nw.StopLive()
		srv.Close()
		<-done
	})
	return client, st, sock
}

// The shared-state verbs end to end over a Unix socket: gset publishes
// an epoch every store-attached scheduler sees, gget reads it back with
// a coherent epoch, and deststats dumps the path statistics the fleet's
// transfers fed into the store.
func TestSharedStateVerbs(t *testing.T) {
	c, st, _ := startSharedHarness(t)

	set, err := c.GSet(0, 99)
	if err != nil {
		t.Fatalf("GSet: %v", err)
	}
	if set.Reg != 0 || set.Value != 99 || set.Epoch == 0 {
		t.Fatalf("GSet result %+v, want reg 0 value 99 epoch > 0", set)
	}
	got, err := c.GGet(0)
	if err != nil {
		t.Fatalf("GGet: %v", err)
	}
	if got.Value != 99 || got.Epoch < set.Epoch {
		t.Fatalf("GGet = %+v, want value 99 at epoch >= %d", got, set.Epoch)
	}
	if v := st.Global(0); v != 99 {
		t.Fatalf("store global 0 = %d after ctl gset, want 99", v)
	}

	// Range validation: G-registers are 0..NumSharedGlobals-1.
	if _, err := c.GGet(progmp.NumSharedGlobals); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("GGet(%d) = %v, want out-of-range refusal", progmp.NumSharedGlobals, err)
	}
	if _, err := c.GSet(-1, 5); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("GSet(-1) = %v, want out-of-range refusal", err)
	}

	// Drive traffic on both connections so ACKs feed the store, then
	// watch the statistics surface through deststats.
	for conn := 1; conn <= 2; conn++ {
		if err := c.Send(conn, 64<<10, 0); err != nil {
			t.Fatalf("Send conn %d: %v", conn, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := c.DestStats()
		if err != nil {
			t.Fatalf("DestStats: %v", err)
		}
		bySamples := map[string]int64{}
		for _, d := range res.Dests {
			bySamples[d.Name] = d.Samples
		}
		if res.Epoch > 0 && bySamples["wifi"] > 0 && bySamples["lte"] > 0 {
			for i := 1; i < len(res.Dests); i++ {
				if res.Dests[i-1].Name >= res.Dests[i].Name {
					t.Fatalf("deststats not name-sorted: %+v", res.Dests)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deststats never showed samples on both paths: %+v", res.Dests)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A server without a store refuses the shared-state verbs with a clear
// error instead of panicking or answering garbage.
func TestSharedStateVerbsWithoutStore(t *testing.T) {
	h := startHarness(t, false)
	for _, call := range []func() error{
		func() error { _, err := h.client.GGet(0); return err },
		func() error { _, err := h.client.GSet(0, 1); return err },
		func() error { _, err := h.client.DestStats(); return err },
	} {
		if err := call(); err == nil || !strings.Contains(err.Error(), "store not attached") {
			t.Fatalf("shared-state verb without store = %v, want store-not-attached refusal", err)
		}
	}
}

// The ReClient retry path: a gget issued while the server is still
// coming up retries across dial failures and lands once the socket
// exists; gset and deststats then work through the same reconnecting
// client.
func TestSharedStateVerbsOverReClient(t *testing.T) {
	// Harness on its own socket; the ReClient dials lazily, so creating
	// it first exercises the dial-retry path when the first verbs land.
	_, st, sock := startSharedHarness(t)
	st.SetGlobal(2, 1234)

	rc := ctl.DialRetry(ctl.RetryOptions{
		Network: "unix", Addr: sock,
		BackoffBase: 5 * time.Millisecond,
		Seed:        21,
	})
	defer rc.Close()

	got, err := rc.GGet(2)
	if err != nil {
		t.Fatalf("ReClient GGet: %v", err)
	}
	if got.Value != 1234 {
		t.Fatalf("ReClient GGet = %+v, want 1234", got)
	}
	if !ctl.IdempotentVerb(ctl.VerbGGet) || !ctl.IdempotentVerb(ctl.VerbDestStats) {
		t.Fatalf("gget and deststats must be idempotent (retried across reconnects)")
	}
	if ctl.IdempotentVerb(ctl.VerbGSet) {
		t.Fatalf("gset must not be idempotent: a blind replay could clobber a concurrent scheduler GSET")
	}
	if _, err := rc.GSet(3, 7); err != nil {
		t.Fatalf("ReClient GSet: %v", err)
	}
	if v := st.Global(3); v != 7 {
		t.Fatalf("store global 3 = %d after ReClient gset, want 7", v)
	}
	if _, err := rc.DestStats(); err != nil {
		t.Fatalf("ReClient DestStats: %v", err)
	}
}
