package ctl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"progmp"
	"progmp/internal/obs"
)

// ErrCircuitOpen reports that the retry layer is failing fast: the
// server failed too many consecutive times, so calls return immediately
// without touching the network until the breaker cooldown elapses and a
// probe is allowed through.
var ErrCircuitOpen = errors.New("ctl: circuit open")

// IdempotentVerb reports whether verb is read-only and therefore safe
// to retry on a fresh connection after a transport failure or timeout —
// the request may or may not have reached the server, but replaying it
// cannot change state either way. Compile counts: it verifies and
// compiles without installing.
func IdempotentVerb(verb string) bool {
	switch verb {
	case VerbPing, VerbList, VerbSchedulers, VerbGetReg, VerbMetrics, VerbMetricsAgg, VerbCompile,
		VerbGGet, VerbDestStats:
		return true
	}
	return false
}

// The retry-layer defaults; see RetryOptions.
const (
	DefaultCallTimeout     = 5 * time.Second
	DefaultMaxAttempts     = 4
	DefaultBackoffBase     = 50 * time.Millisecond
	DefaultBackoffMax      = 2 * time.Second
	DefaultBreakerFails    = 5
	DefaultBreakerCooldown = 2 * time.Second
)

// defaultVerbTimeouts is the per-verb call deadline table: cheap reads
// answer fast or not at all; compile and swap run the analyzer and the
// code generator, so they get room.
var defaultVerbTimeouts = map[string]time.Duration{
	VerbPing:       2 * time.Second,
	VerbList:       2 * time.Second,
	VerbSchedulers: 2 * time.Second,
	VerbGetReg:     2 * time.Second,
	VerbSetReg:     2 * time.Second,
	VerbSend:       5 * time.Second,
	VerbMetrics:    5 * time.Second,
	VerbMetricsAgg: 5 * time.Second,
	VerbCompile:    10 * time.Second,
	VerbSwap:       10 * time.Second,
	VerbDrain:      5 * time.Second,
	VerbGGet:       2 * time.Second,
	VerbGSet:       2 * time.Second,
	VerbDestStats:  2 * time.Second,
}

// RetryOptions tunes a ReClient. Network and Addr are required; zero
// values elsewhere select the defaults above.
type RetryOptions struct {
	// Network and Addr locate the server, as in Dial.
	Network string
	Addr    string

	// CallTimeout bounds one call attempt when the verb has no entry in
	// VerbTimeouts or the default table (<= -1 disables deadlines).
	CallTimeout time.Duration
	// VerbTimeouts overrides the per-verb deadline table.
	VerbTimeouts map[string]time.Duration
	// MaxAttempts is how many times an idempotent call is attempted in
	// total across reconnects (non-idempotent verbs always get exactly
	// one attempt).
	MaxAttempts int
	// BackoffBase is the delay before the second attempt; it doubles
	// per attempt up to BackoffMax, each delay jittered uniformly in
	// [d/2, 3d/2) so a fleet of clients does not reconnect in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerFails consecutive transport failures open the circuit:
	// calls fail fast with ErrCircuitOpen for BreakerCooldown, after
	// which one dial probes the server again (half-open).
	BreakerFails    int
	BreakerCooldown time.Duration

	// Metrics receives the ctl.client.* self-metrics (nil: none).
	Metrics *progmp.Metrics
	// Seed makes the backoff jitter reproducible (0: time-seeded).
	Seed int64
}

func (o *RetryOptions) applyDefaults() {
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BreakerFails == 0 {
		o.BreakerFails = DefaultBreakerFails
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
}

// ReClient is a self-healing control-plane client: it dials lazily,
// reconnects with jittered exponential backoff when the server goes
// away, retries idempotent (read-only) verbs across reconnects, and
// opens a circuit breaker — failing fast instead of hammering a dead
// server — after repeated consecutive failures. Safe for concurrent
// use. Non-idempotent verbs (swap, setreg, send, drain) are never
// replayed: a transport failure mid-call leaves it unknown whether they
// took effect, and that judgement belongs to the caller.
type ReClient struct {
	opts RetryOptions

	mu          sync.Mutex
	cl          *Client
	consecFails int
	openUntil   time.Time
	rng         *rand.Rand

	mDials        *obs.Counter
	mDialFails    *obs.Counter
	mReconnects   *obs.Counter
	mCalls        *obs.Counter
	mCallFails    *obs.Counter
	mRetries      *obs.Counter
	mBreakerOpens *obs.Counter
	gBreakerOpen  *obs.Gauge
}

// DialRetry creates a reconnecting client. It does not touch the
// network: the first call dials, and a dead server surfaces there.
func DialRetry(opts RetryOptions) *ReClient {
	opts.applyDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ReClient{
		opts:          opts,
		rng:           rand.New(rand.NewSource(seed)),
		mDials:        opts.Metrics.Counter("ctl.client.dials"),
		mDialFails:    opts.Metrics.Counter("ctl.client.dial_fails"),
		mReconnects:   opts.Metrics.Counter("ctl.client.reconnects"),
		mCalls:        opts.Metrics.Counter("ctl.client.calls"),
		mCallFails:    opts.Metrics.Counter("ctl.client.call_fails"),
		mRetries:      opts.Metrics.Counter("ctl.client.retries"),
		mBreakerOpens: opts.Metrics.Counter("ctl.client.breaker_opens"),
		gBreakerOpen:  opts.Metrics.Gauge("ctl.client.breaker_open"),
	}
}

// Close disconnects the current connection, if any. The ReClient stays
// usable: the next call reconnects.
func (r *ReClient) Close() error {
	r.mu.Lock()
	cl := r.cl
	r.cl = nil
	r.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}

// ConsecFails returns the current consecutive transport-failure count
// (zero after any success).
func (r *ReClient) ConsecFails() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consecFails
}

// BreakerOpen reports whether calls are currently failing fast.
func (r *ReClient) BreakerOpen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Now().Before(r.openUntil)
}

// timeoutFor resolves the deadline for one attempt of verb.
func (r *ReClient) timeoutFor(verb string) time.Duration {
	if d, ok := r.opts.VerbTimeouts[verb]; ok {
		return d
	}
	if d, ok := defaultVerbTimeouts[verb]; ok && r.opts.CallTimeout == DefaultCallTimeout {
		return d
	}
	return r.opts.CallTimeout
}

// transportFailure classifies an error as "the request may not have
// reached the server / the response may never come": disconnects and
// attempt deadlines. Protocol errors — the server answered and said no
// — are not transport failures.
func transportFailure(err error) bool {
	return errors.Is(err, ErrDisconnected) || errors.Is(err, context.DeadlineExceeded)
}

// Do performs one request through the retry machinery and returns the
// raw result. Idempotent verbs are attempted up to MaxAttempts times
// across reconnects; everything else gets one attempt.
func (r *ReClient) Do(req Request) (json.RawMessage, error) {
	attempts := 1
	if IdempotentVerb(req.Verb) {
		attempts = r.opts.MaxAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			r.mRetries.Add(1)
			time.Sleep(r.backoff(i))
		}
		cl, err := r.client()
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrCircuitOpen) {
				// Fail fast: looping against an open breaker only
				// burns the caller's time.
				return nil, err
			}
			continue
		}
		raw, err := cl.CallTimeout(req, r.timeoutFor(req.Verb))
		if err == nil {
			r.noteSuccess()
			r.mCalls.Add(1)
			return raw, nil
		}
		if transportFailure(err) {
			r.mCallFails.Add(1)
			r.noteFailure(cl)
			lastErr = err
			continue
		}
		// The server answered with a protocol error: the connection is
		// healthy and retrying would repeat the same refusal.
		r.noteSuccess()
		r.mCalls.Add(1)
		return nil, err
	}
	return nil, lastErr
}

// client returns the live connection, dialing if necessary, honouring
// the circuit breaker.
func (r *ReClient) client() (*Client, error) {
	r.mu.Lock()
	if r.cl != nil {
		cl := r.cl
		r.mu.Unlock()
		return cl, nil
	}
	if time.Now().Before(r.openUntil) {
		r.mu.Unlock()
		return nil, fmt.Errorf("server marked down after %d consecutive failures: %w", r.consecFails, ErrCircuitOpen)
	}
	reconnect := r.consecFails > 0
	r.mu.Unlock()

	r.mDials.Add(1)
	cl, err := Dial(r.opts.Network, r.opts.Addr)
	if err != nil {
		r.mDialFails.Add(1)
		r.recordFailure()
		return nil, fmt.Errorf("ctl: dial %s: %v: %w", r.opts.Addr, err, ErrDisconnected)
	}
	if reconnect {
		r.mReconnects.Add(1)
	}
	r.mu.Lock()
	if r.cl != nil {
		// Another goroutine connected concurrently; keep theirs.
		existing := r.cl
		r.mu.Unlock()
		cl.Close()
		return existing, nil
	}
	r.cl = cl
	r.mu.Unlock()
	return cl, nil
}

// noteSuccess resets the failure streak and closes the breaker.
func (r *ReClient) noteSuccess() {
	r.mu.Lock()
	r.consecFails = 0
	r.openUntil = time.Time{}
	r.mu.Unlock()
	r.gBreakerOpen.Set(0)
}

// noteFailure drops the failed connection and records the failure.
func (r *ReClient) noteFailure(failed *Client) {
	r.mu.Lock()
	if r.cl == failed {
		r.cl = nil
	}
	r.mu.Unlock()
	if failed != nil {
		failed.Close()
	}
	r.recordFailure()
}

// recordFailure advances the streak and opens the breaker at the
// threshold.
func (r *ReClient) recordFailure() {
	r.mu.Lock()
	r.consecFails++
	opened := false
	if r.consecFails >= r.opts.BreakerFails && !time.Now().Before(r.openUntil) {
		r.openUntil = time.Now().Add(r.opts.BreakerCooldown)
		opened = true
	}
	r.mu.Unlock()
	if opened {
		r.mBreakerOpens.Add(1)
		r.gBreakerOpen.Set(1)
	}
}

// backoff returns the jittered exponential delay before attempt i
// (i >= 1): base·2^(i-1) capped at BackoffMax, jittered uniformly in
// [d/2, 3d/2).
func (r *ReClient) backoff(i int) time.Duration {
	d := r.opts.BackoffBase << (i - 1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.mu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(d)))
	r.mu.Unlock()
	return d/2 + jitter
}

func (r *ReClient) do(req Request, out any) error {
	raw, err := r.Do(req)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// ---- Typed verbs, mirroring Client ----

// Ping returns the server's virtual clock.
func (r *ReClient) Ping() (PingResult, error) {
	var out PingResult
	err := r.do(Request{Verb: VerbPing}, &out)
	return out, err
}

// List returns the registered connections.
func (r *ReClient) List() (ListResult, error) {
	var out ListResult
	err := r.do(Request{Verb: VerbList}, &out)
	return out, err
}

// Schedulers returns the names compile and swap accept.
func (r *ReClient) Schedulers() ([]string, error) {
	var out SchedulersResult
	err := r.do(Request{Verb: VerbSchedulers}, &out)
	return out.Names, err
}

// Compile verifies and compiles a scheduler without installing it.
func (r *ReClient) Compile(name, src, backend string) (CompileResult, error) {
	var out CompileResult
	err := r.do(Request{Verb: VerbCompile, Name: name, Src: src, Backend: backend}, &out)
	return out, err
}

// Swap hot-swaps the scheduler of connection conn; force overrides the
// admission and fleet gates.
func (r *ReClient) Swap(conn int, name, src, backend string, force bool) (SwapResult, error) {
	var out SwapResult
	err := r.do(Request{Verb: VerbSwap, Conn: conn, Name: name, Src: src, Backend: backend, Force: force}, &out)
	return out, err
}

// GetReg reads scheduler register reg of connection conn.
func (r *ReClient) GetReg(conn, reg int) (int64, error) {
	var out RegResult
	err := r.do(Request{Verb: VerbGetReg, Conn: conn, Reg: reg}, &out)
	return out.Value, err
}

// SetReg writes scheduler register reg of connection conn.
func (r *ReClient) SetReg(conn, reg int, value int64) error {
	return r.do(Request{Verb: VerbSetReg, Conn: conn, Reg: reg, Value: value}, nil)
}

// Send enqueues bytes on connection conn with scheduling intent prop.
func (r *ReClient) Send(conn, bytes int, prop int64) error {
	return r.do(Request{Verb: VerbSend, Conn: conn, Bytes: bytes, Prop: prop}, nil)
}

// GGet reads shared-store global register reg (retried: read-only).
func (r *ReClient) GGet(reg int) (GlobalResult, error) {
	var out GlobalResult
	err := r.do(Request{Verb: VerbGGet, Reg: reg}, &out)
	return out, err
}

// GSet writes shared-store global register reg. Not replayed on
// transport failure: a lost response leaves it unknown whether the
// write published, and a blind replay could clobber a concurrent
// scheduler GSET with a stale value.
func (r *ReClient) GSet(reg int, value int64) (GlobalResult, error) {
	var out GlobalResult
	err := r.do(Request{Verb: VerbGSet, Reg: reg, Value: value}, &out)
	return out, err
}

// DestStats dumps the shared store's per-destination path statistics
// (retried: read-only).
func (r *ReClient) DestStats() (DestStatsResult, error) {
	var out DestStatsResult
	err := r.do(Request{Verb: VerbDestStats}, &out)
	return out, err
}

// Metrics snapshots the server's metrics registry.
func (r *ReClient) Metrics() (MetricsResult, error) {
	var out MetricsResult
	err := r.do(Request{Verb: VerbMetrics}, &out)
	return out, err
}

// MetricsAgg fetches the fleet-wide aggregated metrics.
func (r *ReClient) MetricsAgg(format string) (MetricsAggResult, error) {
	var out MetricsAggResult
	err := r.do(Request{Verb: VerbMetricsAgg, Format: format}, &out)
	return out, err
}

// Drain asks the server to shut down gracefully.
func (r *ReClient) Drain() (DrainResult, error) {
	var out DrainResult
	err := r.do(Request{Verb: VerbDrain}, &out)
	return out, err
}

// Client exposes the live underlying connection for streaming use
// (Subscribe), dialing if necessary. The stream belongs to that
// connection: if it dies, resubscribe through a fresh Client().
func (r *ReClient) Client() (*Client, error) {
	return r.client()
}
