// Package ctl is the out-of-process control plane for the extended
// scheduling API (§3.2, §5 of the paper): a newline-delimited-JSON RPC
// protocol served over a Unix or TCP socket by any process embedding
// the progmp library, a Go client, and — in cmd/progmpctl — a CLI
// playing the role of the paper's Python userspace library. It turns
// the in-process API (pick a scheduler per connection, set registers,
// attach per-packet properties) into a runtime channel a separate
// process can drive: list live connections, compile and verify
// scheduler programs, hot-swap the scheduler of a running transfer,
// read and write registers, trigger sends, snapshot metrics, and
// subscribe to the live decision-trace stream.
//
// Wire format: one JSON object per line in each direction. Requests
// carry a caller-chosen id; every response echoes it, so requests may
// be pipelined. A subscription (verb "subscribe") acknowledges like
// any call and then streams event frames — responses whose "event"
// field is set — under the same id until "unsubscribe" or disconnect.
//
// Threading: the simulated network is single-threaded, so every
// operation that touches connection state executes as a closure
// injected into the live simulation loop (progmp.Network.Do); the
// protocol layer never reaches into the data path concurrently.
package ctl

import (
	"encoding/json"

	"progmp"
	"progmp/internal/analysis"
	"progmp/internal/obs"
)

// The protocol verbs.
const (
	VerbPing        = "ping"        // liveness + virtual clock
	VerbList        = "list"        // connections with scheduler, registers, subflow stats
	VerbSchedulers  = "schedulers"  // named scheduler corpus available to compile/swap
	VerbCompile     = "compile"     // parse + type-check + compile, without installing
	VerbSwap        = "swap"        // hot-swap a verified scheduler on a live connection
	VerbGetReg      = "getreg"      // read a scheduler register
	VerbSetReg      = "setreg"      // write a scheduler register
	VerbSend        = "send"        // enqueue bytes, optionally with a scheduling intent
	VerbMetrics     = "metrics"     // snapshot a connection's metrics registry
	VerbMetricsAgg  = "metrics-agg" // fleet-wide aggregated metrics (JSON or OpenMetrics text)
	VerbSubscribe   = "subscribe"   // stream live trace events
	VerbUnsubscribe = "unsubscribe" // end a subscription
	VerbDrain       = "drain"       // graceful server shutdown
	VerbGGet        = "gget"        // read a shared-store global register
	VerbGSet        = "gset"        // write a shared-store global register
	VerbDestStats   = "deststats"   // dump per-destination shared path statistics
)

// Request is one client→server line. Verbs read only the fields they
// need: Conn names a registered connection (list order, 1-based);
// Name/Src/Backend select and compile a scheduler program (Src wins
// over Name; Backend defaults to "vm"); Reg/Value address a register;
// Bytes/Prop describe a send; Sub names the subscription to cancel;
// Kinds/Buf tune a subscription (event-kind filter as spelled in trace
// output, and the server-side buffer in events).
type Request struct {
	ID      uint64   `json:"id"`
	Verb    string   `json:"verb"`
	Conn    int      `json:"conn,omitempty"`
	Name    string   `json:"name,omitempty"`
	Src     string   `json:"src,omitempty"`
	Backend string   `json:"backend,omitempty"`
	Reg     int      `json:"reg,omitempty"`
	Value   int64    `json:"value,omitempty"`
	Bytes   int      `json:"bytes,omitempty"`
	Prop    int64    `json:"prop,omitempty"`
	Sub     uint64   `json:"sub,omitempty"`
	Kinds   []string `json:"kinds,omitempty"`
	Buf     int      `json:"buf,omitempty"`
	// Force overrides the static-analysis admission gate on swap:
	// programs carrying analyzer warnings are installed anyway. Errors
	// are never forceable.
	Force bool `json:"force,omitempty"`
	// Format selects the metrics-agg payload: "json" (structured
	// snapshot, the default) or "text" (OpenMetrics exposition).
	Format string `json:"format,omitempty"`
}

// Response is one server→client line: a call result (Result set on
// success, Error on failure) or a subscription event frame (Event
// set), both echoing the request id.
type Response struct {
	ID     uint64          `json:"id"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Event  *obs.JSONLEvent `json:"event,omitempty"`
	// Diags carries the static analyzer's structured findings
	// (rule id, severity, position) when a compile or swap is refused,
	// so clients can render more than a flat error string.
	Diags []analysis.Diagnostic `json:"diags,omitempty"`
}

// DiagError is the client-side form of a refusal that carried
// structured diagnostics.
type DiagError struct {
	Msg   string
	Diags []analysis.Diagnostic
}

// Error returns the server's message.
func (e *DiagError) Error() string { return e.Msg }

// PingResult answers VerbPing.
type PingResult struct {
	NowUS int64 `json:"now_us"` // virtual time of the simulation
}

// SubflowInfo is one subflow's monitoring snapshot.
type SubflowInfo struct {
	Name            string  `json:"name"`
	Established     bool    `json:"established"`
	Closed          bool    `json:"closed"`
	Backup          bool    `json:"backup"`
	SRTTUS          int64   `json:"srtt_us"`
	Cwnd            float64 `json:"cwnd"`
	BytesSent       int64   `json:"bytes_sent"`
	PktsSent        int64   `json:"pkts_sent"`
	Retransmissions int64   `json:"retransmissions"`
	ThroughputBps   int64   `json:"throughput_bps"`
}

// ConnInfo is one connection's monitoring snapshot.
type ConnInfo struct {
	ID          int           `json:"id"`
	Name        string        `json:"name"`
	Scheduler   string        `json:"scheduler"`
	Backend     string        `json:"backend,omitempty"`
	Supervised  bool          `json:"supervised"`
	GuardState  string        `json:"guard_state,omitempty"`
	Registers   []int64       `json:"registers"`
	QueuedSegs  int           `json:"queued_segments"`
	UnackedSegs int           `json:"unacked_segments"`
	AllAcked    bool          `json:"all_acked"`
	Subflows    []SubflowInfo `json:"subflows"`
}

// ListResult answers VerbList.
type ListResult struct {
	Conns []ConnInfo `json:"conns"`
}

// SchedulersResult answers VerbSchedulers.
type SchedulersResult struct {
	Names []string `json:"names"`
}

// CompileResult answers VerbCompile (and rides inside SwapResult).
type CompileResult struct {
	Name        string `json:"name"`
	Backend     string `json:"backend"`
	MemoryBytes int    `json:"memory_bytes"`
	// Diagnostics are the analyzer's non-fatal findings (warnings and
	// infos) recorded at admission.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	// Warnings counts the warning-severity diagnostics; a non-zero
	// count means swap will refuse this program without Force.
	Warnings int `json:"warnings,omitempty"`
	// StepBound is the static worst-case step count as a polynomial in
	// S (subflows) and N (queue depth); StepBoundSteps is its value at
	// the reference environment size.
	StepBound      string `json:"step_bound,omitempty"`
	StepBoundSteps int64  `json:"step_bound_steps,omitempty"`
}

// SwapResult answers VerbSwap.
type SwapResult struct {
	Conn          int    `json:"conn"`
	Scheduler     string `json:"scheduler"`
	Backend       string `json:"backend"`
	Supervised    bool   `json:"supervised"`
	PrevScheduler string `json:"prev_scheduler"`
}

// RegResult answers VerbGetReg and VerbSetReg.
type RegResult struct {
	Reg   int   `json:"reg"`
	Value int64 `json:"value"`
}

// GlobalResult answers VerbGGet and VerbGSet: one shared-store global
// register alongside the store epoch the value was read at (for gset,
// the epoch the write published).
type GlobalResult struct {
	Reg   int    `json:"reg"`
	Value int64  `json:"value"`
	Epoch uint64 `json:"epoch"`
}

// DestStatsResult answers VerbDestStats: the store's per-destination
// path statistics, name-sorted, all from the single epoch reported.
type DestStatsResult struct {
	Epoch uint64             `json:"epoch"`
	Dests []progmp.DestStats `json:"dests"`
}

// SubscribeResult acknowledges VerbSubscribe; Sub is the id to pass to
// VerbUnsubscribe (the subscribe request's own id).
type SubscribeResult struct {
	Sub uint64 `json:"sub"`
}

// MetricsResult answers VerbMetrics.
type MetricsResult = obs.Snapshot

// MetricsAggResult answers VerbMetricsAgg: exactly one of Snapshot
// (format "json") or Text (format "text", the OpenMetrics exposition)
// is populated.
type MetricsAggResult struct {
	NumSources int              `json:"num_sources"`
	Snapshot   *obs.AggSnapshot `json:"snapshot,omitempty"`
	Text       string           `json:"text,omitempty"`
}

// DrainResult acknowledges VerbDrain: the server stops accepting,
// finishes inflight requests, closes subscriptions and shuts down. The
// acknowledgement is written before the drain begins, so it is usually
// the last response this session sees.
type DrainResult struct {
	Draining bool `json:"draining"`
}
