package ctl

import (
	"fmt"
	"net"
	"net/http"

	"progmp/internal/obs"
)

// NewMetricsHandler returns an http.Handler serving the aggregator's
// current state in the OpenMetrics text exposition format (scrapeable
// by Prometheus). Aggregation happens per request; registries are read
// with atomic loads, so scrapes never block the data path.
func NewMetricsHandler(agg *obs.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		if r.Method == http.MethodHead {
			return
		}
		// Errors past the header are client disconnects; nothing to do.
		_ = obs.WriteOpenMetrics(w, agg.Aggregate())
	})
}

// ServeMetricsHTTP serves the /metrics exposition endpoint on ln until
// the listener fails or the server is closed (which returns nil). The
// root path answers like /metrics for curl convenience. Requires
// Options.Agg; call from a goroutine, like Serve.
func (s *Server) ServeMetricsHTTP(ln net.Listener) error {
	if s.opts.Agg == nil {
		ln.Close()
		return fmt.Errorf("ctl: metrics HTTP endpoint needs Options.Agg")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("ctl: server closed")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()

	mux := http.NewServeMux()
	h := NewMetricsHandler(s.opts.Agg)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	err := http.Serve(ln, mux)
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil
	}
	return err
}
