// Package xstate is the cross-connection shared-state store: a small
// in-memory database that MPTCP connections on the same host consult
// and feed while scheduling. It holds two kinds of state:
//
//   - global registers G1..G8, shared by every attached connection —
//     the cross-connection analogue of the per-connection registers
//     R1..R8 (§3.3 of the paper), addressable from scheduler programs
//     (GSET / G1..G8) and over the control plane;
//   - per-destination path statistics — smoothed RTT, loss events,
//     delivered bytes, and quarantine signals — keyed by path identity
//     (the subflow/link name), so a connection can steer around a path
//     that *other* connections have observed degrading ("More Than The
//     Sum Of Its Parts": sharing path state across MPTCP connections).
//
// Concurrency model: RCU-style epoch snapshots. All state lives in an
// immutable Snapshot published through an atomic pointer. Writers
// serialize on a mutex, clone the current snapshot, mutate the clone,
// bump the epoch, and publish with a single atomic store. Readers —
// the scheduler hot path among them — perform one atomic load and then
// read plain memory: wait-free, zero allocations, and torn reads are
// structurally impossible because a snapshot is never mutated after
// publication. Within one snapshot every value belongs to the same
// epoch, so a scheduler execution sees a coherent cross-connection
// view, exactly like its per-connection environment snapshot.
//
// Destination names are interned to dense indices at subflow-establish
// time (DestID); the hot path addresses statistics by index, never by
// string, so feeding the environment costs array reads only.
package xstate

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"progmp/internal/obs"
	"progmp/internal/runtime"
)

// rttAlpha is the EWMA weight (1/8, RFC 6298 style) used when merging
// RTT samples from different connections into the shared estimate.
const rttAlpha = 8

// DestStats is the per-destination statistic record inside a snapshot.
// Fields are plain values: a published snapshot is immutable, so they
// may be read without synchronization.
//
//progmp:epochshared
type DestStats struct {
	// Name is the interned path identity (subflow/link name).
	Name string `json:"name"`
	// SRTTUS is the cross-connection smoothed RTT in microseconds;
	// 0 until the first sample arrives.
	SRTTUS int64 `json:"srtt_us"`
	// Lost counts loss events observed on this destination.
	Lost int64 `json:"lost"`
	// Delivered is the cumulative delivered byte count.
	Delivered int64 `json:"delivered"`
	// Quarantines counts guard quarantine signals attributed to
	// connections while scheduling over this destination.
	Quarantines int64 `json:"quarantines"`
	// Samples counts RTT samples merged into SRTTUS.
	Samples int64 `json:"samples"`
}

// Snapshot is one immutable epoch of the store. Readers obtained it
// from Store.Load and may read any field freely; they must never write.
//
//progmp:epochshared
type Snapshot struct {
	// Epoch increments on every published write. Two loads returning
	// the same epoch are the identical snapshot.
	Epoch uint64
	// Globals is the shared global register file G1..G8.
	Globals [runtime.NumGlobals]int64
	// Dests holds per-destination statistics, indexed by the dense ids
	// DestID hands out. Evicted slots are zeroed (Name == "") and
	// reused by later registrations, so the slice length tracks the
	// peak live destination count rather than the cumulative churn.
	Dests []DestStats
}

// Stats returns the statistics for destination id, or nil when the id
// is unknown to this epoch (registered after the snapshot published).
//
//progmp:hotpath
//progmp:deterministic
func (s *Snapshot) Stats(id int) *DestStats {
	if s == nil || id < 0 || id >= len(s.Dests) {
		return nil
	}
	return &s.Dests[id]
}

// Store is the shared-state store. The zero value is not ready; use
// NewStore.
type Store struct {
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
	ids  map[string]int // destination name → dense index

	// Eviction bookkeeping, indexed like Snapshot.Dests. refs counts
	// live DestID acquisitions (released by ReleaseDest); lastUse is
	// the epoch of the most recent acquire/release/feed; free lists
	// evicted slots available for reuse.
	refs    []int32
	lastUse []uint64
	free    []int

	// Optional metrics, set by Instrument; nil-safe handles.
	mEpochs *obs.Counter
	mGSets  *obs.Counter
	mDests  *obs.Gauge
}

// NewStore creates an empty store at epoch 0.
func NewStore() *Store {
	s := &Store{ids: make(map[string]int)}
	s.snap.Store(&Snapshot{})
	return s
}

// Instrument registers the store's metrics with reg (nil-safe):
// xstate.epochs (published writes), xstate.gsets (global-register
// writes), xstate.dests (destinations tracked).
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mEpochs = reg.Counter("xstate.epochs")
	s.mGSets = reg.Counter("xstate.gsets")
	s.mDests = reg.Gauge("xstate.dests")
	s.mDests.Set(int64(len(s.ids)))
}

// Load returns the current snapshot: one atomic load, safe from any
// goroutine, never nil. The caller must treat it as read-only.
//
//progmp:hotpath
//progmp:deterministic
func (s *Store) Load() *Snapshot {
	return s.snap.Load()
}

// Epoch returns the current epoch.
func (s *Store) Epoch() uint64 { return s.Load().Epoch }

// publish installs next as the new snapshot. Callers hold s.mu and
// must have fully initialized next (no further writes after this).
//
//progmp:publish
func (s *Store) publish(next *Snapshot) {
	next.Epoch = s.snap.Load().Epoch + 1
	s.snap.Store(next)
	s.mEpochs.Add(1)
}

// clone copies the current snapshot into a fresh one the caller may
// mutate before publish. Callers hold s.mu.
//
//progmp:publish
func (s *Store) clone() *Snapshot {
	cur := s.snap.Load()
	next := &Snapshot{Globals: cur.Globals}
	if len(cur.Dests) > 0 {
		next.Dests = make([]DestStats, len(cur.Dests))
		copy(next.Dests, cur.Dests)
	}
	return next
}

// cloneGlobalsOnly copies the current snapshot for a write that only
// touches the global register file. Dests is aliased, not copied:
// published snapshots are immutable, so an epoch that leaves every
// destination record untouched may share the previous epoch's backing
// array. This keeps the per-GSET publish cost independent of the number
// of tracked destinations. Callers hold s.mu and must not write through
// next.Dests.
//
//progmp:publish
func (s *Store) cloneGlobalsOnly() *Snapshot {
	cur := s.snap.Load()
	return &Snapshot{Globals: cur.Globals, Dests: cur.Dests}
}

// ---- Global registers ----

// Global reads global register i (0-based); out of range reads 0.
func (s *Store) Global(i int) int64 {
	if i < 0 || i >= runtime.NumGlobals {
		return 0
	}
	return s.Load().Globals[i]
}

// Globals returns the whole global register file of the current epoch.
func (s *Store) Globals() [runtime.NumGlobals]int64 {
	return s.Load().Globals
}

// SetGlobal writes global register i (0-based) and publishes a new
// epoch. Out-of-range writes are graceful no-ops (no exceptions by
// design, matching the register semantics of the model).
//
//progmp:publish
func (s *Store) SetGlobal(i int, v int64) {
	if i < 0 || i >= runtime.NumGlobals {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.cloneGlobalsOnly()
	next.Globals[i] = v
	s.publish(next)
	s.mGSets.Add(1)
}

// SetGlobals applies every write marked in the dirty bitmask (bit i ↔
// register i) from vals in one published epoch. It is the batched form
// the substrate uses to publish a scheduler execution's GSETs.
//
//progmp:publish
func (s *Store) SetGlobals(dirty uint32, vals *[runtime.NumGlobals]int64) {
	if dirty == 0 || vals == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.cloneGlobalsOnly()
	n := 0
	for i := 0; i < runtime.NumGlobals; i++ {
		if dirty&(1<<uint(i)) != 0 {
			next.Globals[i] = vals[i]
			n++
		}
	}
	s.publish(next)
	s.mGSets.Add(int64(n))
}

// ---- Destination registry ----

// DestID interns a destination name, returning its dense index. The
// first caller for a name registers it (publishing a new epoch with a
// zero record); later callers get the same index. Each call acquires
// one reference; pair it with ReleaseDest at teardown or the record is
// pinned forever and EvictIdle can never reclaim it. Indices are
// stable while referenced; an evicted slot may be reassigned to a
// different name by a later registration.
//
//progmp:publish
func (s *Store) DestID(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		s.refs[id]++
		s.lastUse[id] = s.snap.Load().Epoch
		return id
	}
	next := s.clone()
	var id int
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		next.Dests[id] = DestStats{Name: name}
	} else {
		id = len(next.Dests)
		next.Dests = append(next.Dests, DestStats{Name: name})
		s.refs = append(s.refs, 0)
		s.lastUse = append(s.lastUse, 0)
	}
	s.ids[name] = id
	s.refs[id] = 1
	s.publish(next)
	s.lastUse[id] = next.Epoch
	s.mDests.Set(int64(len(s.ids)))
	return id
}

// ReleaseDest drops one reference to destination id (acquired by
// DestID). The record and its statistics stay readable until EvictIdle
// reclaims it, so short-lived reconnects to the same destination still
// find the shared history. Unknown ids are ignored.
//
//progmp:deterministic
func (s *Store) ReleaseDest(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.refs) {
		return
	}
	if s.refs[id] > 0 {
		s.refs[id]--
	}
	s.lastUse[id] = s.snap.Load().Epoch
}

// EvictIdle reclaims every unreferenced destination whose last use is
// at least idleEpochs epochs old, returning the number evicted. One
// epoch publishes for the whole sweep (none when nothing qualifies).
// Evicted slots are zeroed in the snapshot and queued for reuse by the
// next registration, bounding fleet-scale memory under destination
// churn: without eviction every interned name lives for the store's
// lifetime. Victims are processed in index order so churn workloads
// reuse slots deterministically.
//
//progmp:publish
//progmp:deterministic
func (s *Store) EvictIdle(idleEpochs uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load().Epoch
	var victims []int
	//progmp:ignore deterministic iteration order is invisible: victims are sorted before any effect
	for name, id := range s.ids {
		if s.refs[id] == 0 && cur-s.lastUse[id] >= idleEpochs {
			victims = append(victims, id)
			delete(s.ids, name)
		}
	}
	if len(victims) == 0 {
		return 0
	}
	sort.Ints(victims)
	next := s.clone()
	for _, id := range victims {
		next.Dests[id] = DestStats{}
		s.free = append(s.free, id)
	}
	s.publish(next)
	s.mDests.Set(int64(len(s.ids)))
	return len(victims)
}

// LookupDest returns the dense index for name without registering it;
// ok is false when the name is unknown.
func (s *Store) LookupDest(name string) (id int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok = s.ids[name]
	return id, ok
}

// NumDests returns the number of registered destinations.
func (s *Store) NumDests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// ---- Statistics feeds ----

// mutateDest clones, applies fn to destination id's record, and
// publishes. Unknown ids are ignored.
//
//progmp:publish
func (s *Store) mutateDest(id int, fn func(*DestStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.clone()
	if id < 0 || id >= len(next.Dests) {
		return
	}
	fn(&next.Dests[id])
	s.publish(next)
	s.lastUse[id] = next.Epoch
}

// RecordRTT merges one RTT sample (µs) into destination id's shared
// smoothed estimate: the first sample seeds it, later samples blend in
// with weight 1/8 (RFC 6298 style), so estimates from many connections
// converge without any one dominating.
//
//progmp:publish
func (s *Store) RecordRTT(id int, rttUS int64) {
	if rttUS <= 0 {
		return
	}
	s.mutateDest(id, func(d *DestStats) {
		if d.Samples == 0 {
			d.SRTTUS = rttUS
		} else {
			d.SRTTUS += (rttUS - d.SRTTUS) / rttAlpha
		}
		d.Samples++
	})
}

// RecordLoss counts n loss events on destination id.
//
//progmp:publish
func (s *Store) RecordLoss(id int, n int64) {
	if n <= 0 {
		return
	}
	s.mutateDest(id, func(d *DestStats) { d.Lost += n })
}

// RecordDelivered adds bytes to destination id's delivered counter.
//
//progmp:publish
func (s *Store) RecordDelivered(id int, bytes int64) {
	if bytes <= 0 {
		return
	}
	s.mutateDest(id, func(d *DestStats) { d.Delivered += bytes })
}

// RecordQuarantine counts one quarantine signal on destination id.
//
//progmp:publish
func (s *Store) RecordQuarantine(id int) {
	s.mutateDest(id, func(d *DestStats) { d.Quarantines++ })
}

// ---- Inspection ----

// All returns a copy of every live destination record of the current
// epoch (evicted slots are skipped), sorted by name for stable output.
// Intended for the control plane and tests, not the hot path.
func (s *Store) All() []DestStats {
	snap := s.Load()
	out := make([]DestStats, 0, len(snap.Dests))
	for _, d := range snap.Dests {
		if d.Name != "" {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String summarizes the store for diagnostics.
func (s *Store) String() string {
	snap := s.Load()
	return fmt.Sprintf("xstate{epoch %d, %d dests}", snap.Epoch, len(snap.Dests))
}
