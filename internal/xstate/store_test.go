package xstate

import (
	"strconv"
	"sync"
	"testing"

	"progmp/internal/obs"
	"progmp/internal/runtime"
)

func TestGlobals(t *testing.T) {
	s := NewStore()
	if got := s.Global(0); got != 0 {
		t.Fatalf("fresh global = %d, want 0", got)
	}
	s.SetGlobal(0, 42)
	s.SetGlobal(7, -7)
	if got := s.Global(0); got != 42 {
		t.Fatalf("G1 = %d, want 42", got)
	}
	if got := s.Global(7); got != -7 {
		t.Fatalf("G8 = %d, want -7", got)
	}
	// Out-of-range access is a graceful no-op / zero.
	s.SetGlobal(-1, 9)
	s.SetGlobal(runtime.NumGlobals, 9)
	if got := s.Global(runtime.NumGlobals); got != 0 {
		t.Fatalf("out-of-range global = %d, want 0", got)
	}
	if e := s.Epoch(); e != 2 {
		t.Fatalf("epoch = %d, want 2 (out-of-range writes must not publish)", e)
	}
}

func TestSetGlobalsBatch(t *testing.T) {
	s := NewStore()
	vals := [runtime.NumGlobals]int64{10, 20, 30, 40, 50, 60, 70, 80}
	s.SetGlobals(0b101, &vals) // G1 and G3
	snap := s.Load()
	if snap.Globals[0] != 10 || snap.Globals[2] != 30 {
		t.Fatalf("batched globals = %v", snap.Globals)
	}
	if snap.Globals[1] != 0 {
		t.Fatalf("G2 written despite clean bit: %d", snap.Globals[1])
	}
	if snap.Epoch != 1 {
		t.Fatalf("batch must publish exactly one epoch, got %d", snap.Epoch)
	}
	s.SetGlobals(0, &vals) // empty mask: no publish
	if s.Epoch() != 1 {
		t.Fatalf("empty batch published an epoch")
	}
}

func TestDestRegistryAndStats(t *testing.T) {
	s := NewStore()
	wifi := s.DestID("wifi")
	lte := s.DestID("lte")
	if wifi == lte {
		t.Fatalf("distinct names interned to the same id")
	}
	if again := s.DestID("wifi"); again != wifi {
		t.Fatalf("re-interning changed the id: %d != %d", again, wifi)
	}
	if id, ok := s.LookupDest("lte"); !ok || id != lte {
		t.Fatalf("LookupDest(lte) = %d,%v", id, ok)
	}
	if _, ok := s.LookupDest("dsl"); ok {
		t.Fatalf("LookupDest invented a destination")
	}
	if n := s.NumDests(); n != 2 {
		t.Fatalf("NumDests = %d, want 2", n)
	}

	s.RecordRTT(wifi, 20000)
	if d := s.Load().Stats(wifi); d.SRTTUS != 20000 || d.Samples != 1 {
		t.Fatalf("first sample must seed srtt: %+v", d)
	}
	s.RecordRTT(wifi, 28000) // 20000 + (28000-20000)/8 = 21000
	if d := s.Load().Stats(wifi); d.SRTTUS != 21000 {
		t.Fatalf("ewma srtt = %d, want 21000", d.SRTTUS)
	}
	s.RecordRTT(wifi, 0) // non-positive samples ignored
	if d := s.Load().Stats(wifi); d.Samples != 2 {
		t.Fatalf("zero rtt sample was counted: %+v", d)
	}

	s.RecordLoss(lte, 3)
	s.RecordDelivered(lte, 1500)
	s.RecordQuarantine(lte)
	d := s.Load().Stats(lte)
	if d.Lost != 3 || d.Delivered != 1500 || d.Quarantines != 1 {
		t.Fatalf("lte stats = %+v", d)
	}

	// Unknown ids are ignored, not fatal.
	s.RecordLoss(99, 1)
	s.RecordRTT(-1, 1000)

	all := s.All()
	if len(all) != 2 || all[0].Name != "lte" || all[1].Name != "wifi" {
		t.Fatalf("All() = %+v", all)
	}
}

// TestSnapshotImmutable asserts a loaded snapshot never changes under
// later writes — the property the scheduler hot path relies on.
func TestSnapshotImmutable(t *testing.T) {
	s := NewStore()
	id := s.DestID("wifi")
	s.RecordRTT(id, 10000)
	s.SetGlobal(0, 1)
	old := s.Load()
	oldEpoch, oldRTT, oldG := old.Epoch, old.Stats(id).SRTTUS, old.Globals[0]

	s.RecordRTT(id, 90000)
	s.SetGlobal(0, 2)

	if old.Epoch != oldEpoch || old.Stats(id).SRTTUS != oldRTT || old.Globals[0] != oldG {
		t.Fatalf("published snapshot mutated under later writes")
	}
	if cur := s.Load(); cur.Epoch <= oldEpoch {
		t.Fatalf("writes did not advance the epoch: %d <= %d", cur.Epoch, oldEpoch)
	}
}

// TestEpochConsistencyStress hammers the store with concurrent writers
// while readers assert snapshot coherence: within one loaded snapshot
// the two globals written together must always agree, and per-dest
// statistics must be monotone across loads. Run under -race this is
// the torn-snapshot detector demanded by the epoch model.
func TestEpochConsistencyStress(t *testing.T) {
	s := NewStore()
	id := s.DestID("wifi")
	const (
		writers    = 4
		readers    = 4
		iterations = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var vals [runtime.NumGlobals]int64
			for i := 0; i < iterations; i++ {
				// Invariant under test: G1 and G2 are always published
				// together with G2 == -G1.
				v := int64(w*iterations + i + 1)
				vals[0], vals[1] = v, -v
				s.SetGlobals(0b11, &vals)
				s.RecordRTT(id, 1000+int64(i%100))
				s.RecordDelivered(id, 100)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var lastDelivered int64
			for i := 0; i < iterations*writers; i++ {
				snap := s.Load()
				if snap.Globals[0] != -snap.Globals[1] {
					t.Errorf("torn snapshot: G1=%d G2=%d in epoch %d",
						snap.Globals[0], snap.Globals[1], snap.Epoch)
					return
				}
				if snap.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				d := snap.Stats(id)
				if d == nil {
					t.Errorf("registered destination vanished")
					return
				}
				if d.Delivered < lastDelivered {
					t.Errorf("delivered went backwards: %d after %d", d.Delivered, lastDelivered)
					return
				}
				lastDelivered = d.Delivered
			}
		}()
	}
	wg.Wait()
}

// TestLoadZeroAlloc proves the reader side — what the scheduler hot
// path does every execution — allocates nothing.
func TestLoadZeroAlloc(t *testing.T) {
	s := NewStore()
	id := s.DestID("wifi")
	s.RecordRTT(id, 12345)
	s.SetGlobal(2, 7)
	var sink int64
	allocs := testing.AllocsPerRun(1000, func() {
		snap := s.Load()
		sink += snap.Globals[2]
		if d := snap.Stats(id); d != nil {
			sink += d.SRTTUS + d.Lost + d.Delivered + d.Quarantines
		}
	})
	if allocs != 0 {
		t.Fatalf("store read path allocates: %v allocs/op", allocs)
	}
	_ = sink
}

func TestInstrument(t *testing.T) {
	s := NewStore()
	reg := &obs.Registry{}
	s.Instrument(reg)
	s.SetGlobal(0, 1)
	s.DestID("wifi")
	if v := reg.Counter("xstate.epochs").Value(); v != 2 {
		t.Fatalf("xstate.epochs = %d, want 2", v)
	}
	if v := reg.Counter("xstate.gsets").Value(); v != 1 {
		t.Fatalf("xstate.gsets = %d, want 1", v)
	}
	if v := reg.Gauge("xstate.dests").Value(); v != 1 {
		t.Fatalf("xstate.dests = %d, want 1", v)
	}
	// Instrumenting with nil must be harmless.
	s2 := NewStore()
	s2.Instrument(nil)
	s2.SetGlobal(0, 1)
}

func TestDestEvictionUnderChurn(t *testing.T) {
	s := NewStore()

	// A referenced destination survives eviction no matter how idle.
	pinned := s.DestID("pinned")
	s.RecordRTT(pinned, 10000)
	for i := 0; i < 64; i++ {
		s.SetGlobal(0, int64(i)) // advance epochs
	}
	if n := s.EvictIdle(1); n != 0 {
		t.Fatalf("evicted %d referenced dests, want 0", n)
	}

	// Released + idle long enough → evicted; the record disappears
	// from the registry, the inspection view, and the snapshot slot.
	s.ReleaseDest(pinned)
	if n := s.EvictIdle(1000); n != 0 {
		t.Fatalf("evicted %d not-yet-idle dests, want 0", n)
	}
	for i := 0; i < 8; i++ {
		s.SetGlobal(0, int64(i))
	}
	if n := s.EvictIdle(8); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok := s.LookupDest("pinned"); ok {
		t.Fatal("evicted dest still interned")
	}
	if all := s.All(); len(all) != 0 {
		t.Fatalf("All() still lists evicted dest: %+v", all)
	}
	if d := s.Load().Stats(pinned); d == nil || d.Name != "" || d.SRTTUS != 0 {
		t.Fatalf("evicted slot not zeroed: %+v", d)
	}

	// Churn: connections come and go across many distinct destinations,
	// each released after use and swept periodically. Steady-state dest
	// count — and the snapshot's backing slice — must stay bounded by
	// the live set plus the idle window, not grow with total churn.
	const churn = 500
	for i := 0; i < churn; i++ {
		id := s.DestID(destName(i))
		s.RecordRTT(id, int64(1000+i))
		s.ReleaseDest(id)
		if i%4 == 3 {
			s.EvictIdle(8)
		}
	}
	s.EvictIdle(0)
	if n := s.NumDests(); n != 0 {
		t.Fatalf("steady-state dests = %d after full sweep, want 0", n)
	}
	if got := len(s.Load().Dests); got > 16 {
		t.Fatalf("snapshot slice grew to %d slots under churn of %d, want <= 16 (slot reuse)", got, churn)
	}

	// Re-registering after eviction reuses a freed slot and starts from
	// zero statistics.
	id := s.DestID("fresh")
	if id >= 16 {
		t.Fatalf("re-registration did not reuse a freed slot: id %d", id)
	}
	if d := s.Load().Stats(id); d.Name != "fresh" || d.Samples != 0 {
		t.Fatalf("reused slot carries stale stats: %+v", d)
	}
}

func destName(i int) string { return "churn-" + strconv.Itoa(i) }

// TestGlobalsOnlyPublishAliasesDests pins the globals-fast-path
// representation choice: an epoch that only writes the register file
// shares the previous epoch's Dests backing array (snapshots are
// immutable, so aliasing is safe), while a destination write still
// clones. Regression: SetGlobal/SetGlobals used to copy every record,
// making a GSET publish O(destinations).
func TestGlobalsOnlyPublishAliasesDests(t *testing.T) {
	s := NewStore()
	for i := 0; i < 64; i++ {
		s.DestID("dest" + strconv.Itoa(i))
	}
	before := s.Load()
	s.SetGlobal(0, 1)
	after := s.Load()
	if len(after.Dests) == 0 || &after.Dests[0] != &before.Dests[0] {
		t.Fatalf("globals-only publish cloned Dests (epoch %d -> %d)", before.Epoch, after.Epoch)
	}
	var vals [runtime.NumGlobals]int64
	vals[3] = 9
	s.SetGlobals(1<<3, &vals)
	if got := s.Load(); &got.Dests[0] != &before.Dests[0] {
		t.Fatalf("batched globals publish cloned Dests")
	}
	// A destination write must still clone: the new epoch's records
	// change, and the already-published snapshot must not see that.
	id, _ := s.LookupDest("dest0")
	s.RecordRTT(id, 5000)
	cur := s.Load()
	if &cur.Dests[0] == &before.Dests[0] {
		t.Fatalf("destination write aliased the published snapshot's Dests")
	}
	if before.Stats(id).SRTTUS != 0 {
		t.Fatalf("published snapshot mutated by a later destination write")
	}

	// The publish cost is a snapshot header, independent of how many
	// destinations the store tracks.
	allocs := testing.AllocsPerRun(100, func() { s.SetGlobal(1, 2) })
	if allocs > 2 {
		t.Fatalf("globals-only publish costs %.0f allocs/op with 64 dests, want <= 2", allocs)
	}
}
