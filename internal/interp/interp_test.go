package interp

import (
	"math/rand"
	"testing"

	"progmp/internal/envtest"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

func run(t *testing.T, src string, env *runtime.Env) *runtime.Env {
	t.Helper()
	info, err := types.Check(parseHelper(t, src))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	New(info).Exec(env)
	return env
}

func parseHelper(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func parseNoFatal(src string) (*lang.Program, error) {
	return lang.Parse(src)
}

func TestMinRTTPushesOnFastSubflow(t *testing.T) {
	env := envtest.TwoSubflowEnv(3)
	run(t, `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
		SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
	}`, env)
	if len(env.Actions) != 2 {
		t.Fatalf("got %d actions, want 2 (pop+push): %v", len(env.Actions), env.Actions)
	}
	if env.Actions[0].Kind != runtime.ActionPop || env.Actions[0].Queue != runtime.QueueSend {
		t.Errorf("first action = %+v, want POP from Q", env.Actions[0])
	}
	push := env.Actions[1]
	if push.Kind != runtime.ActionPush {
		t.Fatalf("second action = %+v, want PUSH", push)
	}
	if push.Subflow != env.SubflowViews[0].Handle {
		t.Errorf("pushed on subflow handle %d, want fast subflow %d", push.Subflow, env.SubflowViews[0].Handle)
	}
	if push.Packet != runtime.PacketHandle(10000) {
		t.Errorf("pushed packet %d, want first packet", push.Packet)
	}
}

func TestEmptyQueueNoActions(t *testing.T) {
	env := envtest.TwoSubflowEnv(0)
	run(t, `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
		SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
	}`, env)
	if len(env.Actions) != 0 {
		t.Errorf("got %d actions on empty queue, want 0", len(env.Actions))
	}
}

func TestRedundantPushesOnAllSubflows(t *testing.T) {
	env := envtest.TwoSubflowEnv(2)
	run(t, `IF (!Q.EMPTY) {
		VAR skb = Q.POP();
		FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }
	}`, env)
	var pushes []runtime.Action
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush {
			pushes = append(pushes, a)
		}
	}
	if len(pushes) != 2 {
		t.Fatalf("got %d pushes, want 2", len(pushes))
	}
	if pushes[0].Packet != pushes[1].Packet {
		t.Errorf("redundant pushes must carry the same packet")
	}
	if pushes[0].Subflow == pushes[1].Subflow {
		t.Errorf("redundant pushes must target distinct subflows")
	}
}

func TestRoundRobinRegisterState(t *testing.T) {
	src := `VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
IF (!Q.EMPTY) {
	VAR sbf = sbfs.GET(R1);
	IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
		sbf.PUSH(Q.POP());
	}
	SET(R1, R1 + 1);
}`
	env := envtest.TwoSubflowEnv(4)
	info, err := types.Check(parseHelper(t, src))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	it := New(info)
	var firstTargets []runtime.SubflowHandle
	// Three consecutive executions against fresh snapshots but shared
	// registers must cycle through the subflows.
	regs := env.Regs
	for i := 0; i < 3; i++ {
		e := envtest.TwoSubflowEnv(4)
		e.Regs = regs
		it.Exec(e)
		for _, a := range e.Actions {
			if a.Kind == runtime.ActionPush {
				firstTargets = append(firstTargets, a.Subflow)
			}
		}
	}
	if len(firstTargets) != 3 {
		t.Fatalf("got %d pushes over 3 executions, want 3", len(firstTargets))
	}
	if firstTargets[0] == firstTargets[1] {
		t.Errorf("round robin did not alternate: %v", firstTargets)
	}
	if firstTargets[0] != firstTargets[2] {
		t.Errorf("round robin should wrap around: %v", firstTargets)
	}
}

func TestPopVisibilityWithinExecution(t *testing.T) {
	// After POP, TOP must see the next packet.
	env := envtest.TwoSubflowEnv(3)
	run(t, `VAR first = Q.POP();
VAR second = Q.POP();
SUBFLOWS.GET(0).PUSH(first);
SUBFLOWS.GET(1).PUSH(second);`, env)
	var pushes []runtime.Action
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush {
			pushes = append(pushes, a)
		}
	}
	if len(pushes) != 2 {
		t.Fatalf("want 2 pushes, got %d", len(pushes))
	}
	if pushes[0].Packet == pushes[1].Packet {
		t.Errorf("two POPs returned the same packet")
	}
}

func TestFilteredQueueTopAndCount(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10, Cwnd: 10}},
		QU: []envtest.PktSpec{
			{Seq: 1, Size: 100, SentOn: []int{0}},
			{Seq: 2, Size: 200},
			{Seq: 3, Size: 300},
		},
	}.Build()
	run(t, `VAR sbf = SUBFLOWS.GET(0);
VAR unsent = QU.FILTER(s => !s.SENT_ON(sbf));
SET(R1, unsent.COUNT);
VAR skb = unsent.TOP;
SET(R2, skb.SEQ);
sbf.PUSH(skb);`, env)
	if env.Reg(0) != 2 {
		t.Errorf("filtered count = %d, want 2", env.Reg(0))
	}
	if env.Reg(1) != 2 {
		t.Errorf("TOP of filtered queue has seq %d, want 2", env.Reg(1))
	}
}

func TestMinMaxTiesAndEmpty(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 50}, {ID: 1, RTT: 50}, {ID: 2, RTT: 70},
		},
	}.Build()
	run(t, `SET(R1, SUBFLOWS.MIN(s => s.RTT).ID);
SET(R2, SUBFLOWS.MAX(s => s.RTT).ID);
VAR none = SUBFLOWS.FILTER(s => s.RTT > 1000).MIN(s => s.RTT);
IF (none == NULL) { SET(R3, 1); }
SET(R4, none.RTT);`, env)
	if env.Reg(0) != 0 {
		t.Errorf("MIN tie should pick first element, got ID %d", env.Reg(0))
	}
	if env.Reg(1) != 2 {
		t.Errorf("MAX ID = %d, want 2", env.Reg(1))
	}
	if env.Reg(2) != 1 {
		t.Errorf("empty MIN should be NULL")
	}
	if env.Reg(3) != 0 {
		t.Errorf("property of NULL subflow = %d, want graceful 0", env.Reg(3))
	}
}

func TestGetWrapsAndHandlesEmpty(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 1}, {ID: 1, RTT: 2}, {ID: 2, RTT: 3}},
	}.Build()
	run(t, `SET(R1, SUBFLOWS.GET(4).ID);
SET(R2, SUBFLOWS.GET(-1).ID);
VAR none = SUBFLOWS.FILTER(s => FALSE).GET(0);
IF (none == NULL) { SET(R3, 1); }`, env)
	if env.Reg(0) != 1 {
		t.Errorf("GET(4) of 3 subflows = ID %d, want 1 (wraps)", env.Reg(0))
	}
	if env.Reg(1) != 2 {
		t.Errorf("GET(-1) = ID %d, want 2 (wraps)", env.Reg(1))
	}
	if env.Reg(2) != 1 {
		t.Errorf("GET on empty list should be NULL")
	}
}

func TestArithmeticGracefulDivZero(t *testing.T) {
	env := envtest.TwoSubflowEnv(0)
	run(t, `SET(R1, 7 / 0);
SET(R2, 7 % 0);
SET(R3, 17 / 5);
SET(R4, 17 % 5);
SET(R5, 0 - 3);`, env)
	want := []int64{0, 0, 3, 2, -3}
	for i, w := range want {
		if env.Reg(i) != w {
			t.Errorf("R%d = %d, want %d", i+1, env.Reg(i), w)
		}
	}
}

func TestShortCircuitPreventsNullDeref(t *testing.T) {
	// AND/OR short-circuit like the kernel runtime; since property access
	// on NULL is graceful anyway, this test asserts value semantics.
	env := envtest.EnvSpec{}.Build() // no subflows at all
	run(t, `VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL AND sbf.RTT < 100) { SET(R1, 1); } ELSE { SET(R1, 2); }
IF (sbf == NULL OR sbf.CWND == 0) { SET(R2, 1); }`, env)
	if env.Reg(0) != 2 {
		t.Errorf("R1 = %d, want 2 (NULL guard)", env.Reg(0))
	}
	if env.Reg(1) != 1 {
		t.Errorf("R2 = %d, want 1", env.Reg(1))
	}
}

func TestReturnStopsExecution(t *testing.T) {
	env := envtest.TwoSubflowEnv(1)
	run(t, `SET(R1, 1);
IF (TRUE) { RETURN; }
SET(R2, 1);`, env)
	if env.Reg(0) != 1 || env.Reg(1) != 0 {
		t.Errorf("R1=%d R2=%d, want 1 and 0 (RETURN must stop execution)", env.Reg(0), env.Reg(1))
	}
}

func TestReturnInsideForeach(t *testing.T) {
	env := envtest.TwoSubflowEnv(0)
	run(t, `FOREACH (VAR s IN SUBFLOWS) {
	SET(R1, R1 + 1);
	IF (R1 == 1) { RETURN; }
}
SET(R2, 99);`, env)
	if env.Reg(0) != 1 {
		t.Errorf("loop ran %d iterations, want 1", env.Reg(0))
	}
	if env.Reg(1) != 0 {
		t.Errorf("statements after RETURN executed")
	}
}

func TestPushToNullSubflowIsNoop(t *testing.T) {
	env := envtest.TwoSubflowEnv(1)
	run(t, `VAR none = SUBFLOWS.FILTER(s => FALSE).MIN(s => s.RTT);
none.PUSH(Q.POP());`, env)
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush {
			t.Errorf("PUSH to NULL subflow must be a no-op, got %+v", a)
		}
	}
}

func TestDropRecordsAction(t *testing.T) {
	env := envtest.TwoSubflowEnv(2)
	run(t, `DROP(Q.POP());`, env)
	if len(env.Actions) != 2 {
		t.Fatalf("got %d actions, want pop+drop", len(env.Actions))
	}
	if env.Actions[1].Kind != runtime.ActionDrop {
		t.Errorf("action = %+v, want DROP", env.Actions[1])
	}
}

func TestHasWindowFor(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10, RWndFree: 500}},
		Q:        []envtest.PktSpec{{Seq: 0, Size: 400}, {Seq: 1, Size: 600}},
	}.Build()
	run(t, `VAR sbf = SUBFLOWS.GET(0);
IF (sbf.HAS_WINDOW_FOR(Q.TOP)) { SET(R1, 1); }
IF (!sbf.HAS_WINDOW_FOR(Q.FILTER(p => p.SEQ == 1).TOP)) { SET(R2, 1); }`, env)
	if env.Reg(0) != 1 {
		t.Errorf("400-byte packet should fit in 500-byte window")
	}
	if env.Reg(1) != 1 {
		t.Errorf("600-byte packet should not fit in 500-byte window")
	}
}

func TestBackupFilterSemantics(t *testing.T) {
	env := envtest.TwoSubflowEnv(1) // subflow 1 is backup
	run(t, `VAR nonBackup = SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP);
IF (!nonBackup.EMPTY) {
	nonBackup.MIN(sbf => sbf.RTT).PUSH(Q.POP());
} ELSE {
	SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}`, env)
	for _, a := range env.Actions {
		if a.Kind == runtime.ActionPush && a.Subflow != env.SubflowViews[0].Handle {
			t.Errorf("pushed on backup subflow while non-backup available")
		}
	}
}

func TestSentCountAndAgeProperties(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0}},
		QU:       []envtest.PktSpec{{Seq: 5, SentCount: 2, AgeUS: 1234, Prop: 7}},
	}.Build()
	run(t, `VAR p = QU.TOP;
SET(R1, p.SENT_COUNT);
SET(R2, p.AGE_US);
SET(R3, p.PROP);
SET(R4, p.SEQ);`, env)
	for i, want := range []int64{2, 1234, 7, 5} {
		if env.Reg(i) != want {
			t.Errorf("R%d = %d, want %d", i+1, env.Reg(i), want)
		}
	}
}

func TestRandomProgramsDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		src := envtest.GenProgram(rng)
		prog, err := parseNoFatal(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("generated program does not check: %v\n%s", err, src)
		}
		env := envtest.RandomEnv(rng)
		New(info).Exec(env) // must not panic
	}
}
