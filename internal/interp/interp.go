// Package interp is the tree-walking interpreter back-end for ProgMP
// scheduler programs — the reference semantics ("alternative 1" in §4.1
// of the paper). It is the baseline the compiled back-ends are verified
// against.
package interp

import (
	"fmt"
	"sync"

	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

// Interpreter executes a checked program directly over its AST. It is
// safe for concurrent use with distinct environments; execution frames
// are pooled so a steady-state execution does not allocate.
type Interpreter struct {
	info   *types.Info
	frames sync.Pool
}

// New builds an interpreter for a checked program.
func New(info *types.Info) *Interpreter {
	it := &Interpreter{info: info}
	it.frames.New = func() any {
		return &frame{info: info, slots: make([]value, info.NumSlots)}
	}
	return it
}

// Exec runs one scheduler execution against env.
//
//progmp:hotpath
//progmp:deterministic
func (it *Interpreter) Exec(env *runtime.Env) {
	f := it.frames.Get().(*frame)
	f.env = env
	for _, s := range it.info.Prog.Stmts {
		if f.execStmt(s) {
			break
		}
	}
	f.env = nil
	for i := range f.slots {
		f.slots[i] = value{}
	}
	f.preds = f.preds[:0]
	f.sbfLists = f.sbfLists[:0]
	it.frames.Put(f)
}

// value is the interpreter's dynamic value. Exactly one representation
// is active, chosen by the static type of the producing expression.
type value struct {
	i    int64
	b    bool
	pkt  *runtime.PacketView
	sbf  *runtime.SubflowView
	list []*runtime.SubflowView
	q    queueRef
}

// queueRef is a (possibly filtered) packet-queue value. Filters are
// kept as (lambda, slot) pairs and applied lazily (late
// materialization, §4.1); the pairs live in the frame's predicate
// arena, so building a filtered queue value never allocates.
type queueRef struct {
	base  *runtime.Queue
	preds []predEntry
}

// predEntry is one deferred FILTER predicate: evaluate lam.Body with
// the candidate packet bound to slot.
type predEntry struct {
	lam  *lang.Lambda
	slot int
}

// qEach visits visible, predicate-matching packets in queue order until
// fn returns false.
func (f *frame) qEach(qr queueRef, fn func(*runtime.PacketView) bool) {
	qr.base.All(func(p *runtime.PacketView) bool {
		for _, pe := range qr.preds {
			f.slots[pe.slot] = value{pkt: p}
			if !f.eval(pe.lam.Body).b {
				return true // skip, continue walking
			}
		}
		//progmp:ignore hotpath callback literal is checked inline at each call site
		return fn(p)
	})
}

// qTop returns the first matching packet or nil.
func (f *frame) qTop(qr queueRef) *runtime.PacketView {
	var res *runtime.PacketView
	f.qEach(qr, func(p *runtime.PacketView) bool {
		res = p
		return false
	})
	return res
}

// qCount returns the number of matching packets.
func (f *frame) qCount(qr queueRef) int64 {
	var n int64
	f.qEach(qr, func(*runtime.PacketView) bool {
		n++
		return true
	})
	return n
}

// qBytes sums the payload sizes of matching packets (queue.BYTES).
func (f *frame) qBytes(qr queueRef) int64 {
	var n int64
	f.qEach(qr, func(p *runtime.PacketView) bool {
		n += p.Ints[runtime.PktSize]
		return true
	})
	return n
}

type frame struct {
	info  *types.Info
	env   *runtime.Env
	slots []value
	// preds and sbfLists are per-execution arenas for filter chains and
	// materialized subflow lists. Values produced during an execution
	// hold capacity-capped sub-slices; entries are write-once, so a
	// later arena growth (which copies) cannot invalidate them. Both
	// reset to length zero between executions, keeping their capacity —
	// in steady state no execution allocates.
	preds    []predEntry
	sbfLists []*runtime.SubflowView
}

// execStmt executes s; it returns true when a RETURN unwinds.
func (f *frame) execStmt(s lang.Stmt) bool {
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, inner := range s.Stmts {
			if f.execStmt(inner) {
				return true
			}
		}
	case *lang.IfStmt:
		if f.eval(s.Cond).b {
			for _, inner := range s.Then.Stmts {
				if f.execStmt(inner) {
					return true
				}
			}
		} else if s.Else != nil {
			return f.execStmt(s.Else)
		}
	case *lang.VarDecl:
		sym := f.info.Defs[s]
		f.slots[sym.Slot] = f.eval(s.Init)
	case *lang.ForeachStmt:
		list := f.eval(s.Iter).list
		sym := f.info.Defs[s]
		for _, sbf := range list {
			f.slots[sym.Slot] = value{sbf: sbf}
			for _, inner := range s.Body.Stmts {
				if f.execStmt(inner) {
					return true
				}
			}
		}
	case *lang.SetStmt:
		f.env.SetReg(s.Reg, f.eval(s.Value).i)
	case *lang.GSetStmt:
		f.env.SetGlobal(s.Reg, f.eval(s.Value).i)
	case *lang.PushStmt:
		target := f.eval(s.Target).sbf
		pkt := f.eval(s.Arg).pkt
		f.env.Site = int32(s.PushAt.Line)
		f.env.Push(target, pkt)
	case *lang.DropStmt:
		pkt := f.eval(s.Arg).pkt
		f.env.Site = int32(s.DropPos.Line)
		f.env.Drop(pkt)
	case *lang.ReturnStmt:
		return true
	}
	return false
}

func (f *frame) eval(e lang.Expr) value {
	switch e := e.(type) {
	case *lang.NumberLit:
		return value{i: e.Val}
	case *lang.BoolLit:
		return value{b: e.Val}
	case *lang.NullLit:
		return value{} // nil packet and nil subflow alike
	case *lang.RegExpr:
		return value{i: f.env.Reg(e.Index)}
	case *lang.GlobalExpr:
		return value{i: f.env.Global(e.Index)}
	case *lang.Ident:
		return f.slots[f.info.Uses[e].Slot]
	case *lang.EntityExpr:
		switch e.Kind {
		case lang.EntitySubflows:
			return value{list: f.env.SubflowViews}
		case lang.EntityQ:
			return value{q: queueRef{base: f.env.SendQ}}
		case lang.EntityQU:
			return value{q: queueRef{base: f.env.UnackedQ}}
		case lang.EntityRQ:
			return value{q: queueRef{base: f.env.ReinjectQ}}
		}
	case *lang.UnaryExpr:
		x := f.eval(e.X)
		if e.Op == lang.NOT {
			return value{b: !x.b}
		}
		return value{i: -x.i}
	case *lang.BinaryExpr:
		return f.evalBinary(e)
	case *lang.MemberExpr:
		return f.evalMember(e)
	}
	//progmp:ignore hotpath cold panic: admitted programs have no unhandled expressions
	panic(fmt.Sprintf("interp: unhandled expression %T", e))
}

func (f *frame) evalBinary(e *lang.BinaryExpr) value {
	// Short-circuit boolean operators.
	switch e.Op {
	case lang.AND:
		if !f.eval(e.X).b {
			return value{b: false}
		}
		return value{b: f.eval(e.Y).b}
	case lang.OR:
		if f.eval(e.X).b {
			return value{b: true}
		}
		return value{b: f.eval(e.Y).b}
	}
	x := f.eval(e.X)
	y := f.eval(e.Y)
	switch e.Op {
	case lang.PLUS:
		return value{i: x.i + y.i}
	case lang.MINUS:
		return value{i: x.i - y.i}
	case lang.STAR:
		return value{i: x.i * y.i}
	case lang.SLASH:
		// Division by zero yields 0: no exceptions by design (§3.3).
		if y.i == 0 {
			return value{i: 0}
		}
		return value{i: x.i / y.i}
	case lang.PERCENT:
		if y.i == 0 {
			return value{i: 0}
		}
		return value{i: x.i % y.i}
	case lang.LT:
		return value{b: x.i < y.i}
	case lang.LTE:
		return value{b: x.i <= y.i}
	case lang.GT:
		return value{b: x.i > y.i}
	case lang.GTE:
		return value{b: x.i >= y.i}
	case lang.EQ, lang.NEQ:
		eq := f.valuesEqual(e, x, y)
		if e.Op == lang.NEQ {
			eq = !eq
		}
		return value{b: eq}
	}
	//progmp:ignore hotpath cold panic: admitted programs have no unhandled operators
	panic(fmt.Sprintf("interp: unhandled binary op %s", e.Op))
}

func (f *frame) valuesEqual(e *lang.BinaryExpr, x, y value) bool {
	switch f.info.TypeOf(e.X) {
	case types.Packet:
		return x.pkt == y.pkt
	case types.Subflow:
		return x.sbf == y.sbf
	case types.Bool:
		return x.b == y.b
	default:
		return x.i == y.i
	}
}

func (f *frame) evalMember(e *lang.MemberExpr) value {
	m := f.info.Members[e]
	recv := f.eval(e.Recv)
	switch m.Kind {
	case types.MemberSbfInt:
		if recv.sbf == nil {
			return value{} // graceful NULL handling
		}
		return value{i: recv.sbf.Ints[m.SbfInt]}
	case types.MemberSbfBool:
		if recv.sbf == nil {
			return value{}
		}
		return value{b: recv.sbf.Bools[m.SbfBool]}
	case types.MemberHasWindowFor:
		arg := f.eval(e.Args[0])
		return value{b: recv.sbf.HasWindowFor(arg.pkt)}
	case types.MemberPktInt:
		if recv.pkt == nil {
			return value{}
		}
		return value{i: recv.pkt.Ints[m.PktInt]}
	case types.MemberSentOn:
		arg := f.eval(e.Args[0])
		return value{b: recv.pkt.SentOn(arg.sbf)}
	case types.MemberFilter:
		lam := e.Args[0].(*lang.Lambda)
		sym := f.info.Defs[lam]
		if m.RecvType == types.SubflowList {
			start := len(f.sbfLists)
			for _, sbf := range recv.list {
				f.slots[sym.Slot] = value{sbf: sbf}
				if f.eval(lam.Body).b {
					//progmp:ignore hotpath amortized: pooled frame retains arena capacity
					f.sbfLists = append(f.sbfLists, sbf)
				}
			}
			return value{list: f.sbfLists[start:len(f.sbfLists):len(f.sbfLists)]}
		}
		// Extend the chain at the arena tail: the receiver's pairs are
		// copied so chains through queue variables stay intact.
		qr := recv.q
		start := len(f.preds)
		//progmp:ignore hotpath amortized: pooled frame retains arena capacity
		f.preds = append(f.preds, qr.preds...)
		//progmp:ignore hotpath amortized: pooled frame retains arena capacity
		f.preds = append(f.preds, predEntry{lam: lam, slot: sym.Slot})
		return value{q: queueRef{base: qr.base, preds: f.preds[start:len(f.preds):len(f.preds)]}}
	case types.MemberMin, types.MemberMax:
		return f.evalMinMax(e, m, recv)
	case types.MemberTop:
		return value{pkt: f.qTop(recv.q)}
	case types.MemberPop:
		p := f.qTop(recv.q)
		if p != nil {
			f.env.Site = int32(e.Position().Line)
			f.env.Pop(recv.q.base.ID(), p)
		}
		return value{pkt: p}
	case types.MemberEmpty:
		if m.RecvType == types.SubflowList {
			return value{b: len(recv.list) == 0}
		}
		return value{b: f.qTop(recv.q) == nil}
	case types.MemberCount:
		if m.RecvType == types.SubflowList {
			return value{i: int64(len(recv.list))}
		}
		return value{i: f.qCount(recv.q)}
	case types.MemberBytes:
		return value{i: f.qBytes(recv.q)}
	case types.MemberGet:
		idx := f.eval(e.Args[0]).i
		n := int64(len(recv.list))
		if n == 0 {
			return value{}
		}
		// Out-of-range indices wrap: graceful by design.
		idx = ((idx % n) + n) % n
		return value{sbf: recv.list[idx]}
	}
	//progmp:ignore hotpath cold panic: admitted programs have no unhandled members
	panic(fmt.Sprintf("interp: unhandled member %s", e.Name))
}

// evalMinMax selects the element with minimal (or maximal) key; ties
// resolve to the earliest element, and empty collections yield NULL.
func (f *frame) evalMinMax(e *lang.MemberExpr, m *types.Member, recv value) value {
	lam := e.Args[0].(*lang.Lambda)
	sym := f.info.Defs[lam]
	max := m.Kind == types.MemberMax
	if m.RecvType == types.SubflowList {
		var best *runtime.SubflowView
		var bestKey int64
		for _, sbf := range recv.list {
			f.slots[sym.Slot] = value{sbf: sbf}
			key := f.eval(lam.Body).i
			if best == nil || (max && key > bestKey) || (!max && key < bestKey) {
				best, bestKey = sbf, key
			}
		}
		return value{sbf: best}
	}
	var best *runtime.PacketView
	var bestKey int64
	f.qEach(recv.q, func(p *runtime.PacketView) bool {
		f.slots[sym.Slot] = value{pkt: p}
		key := f.eval(lam.Body).i
		if best == nil || (max && key > bestKey) || (!max && key < bestKey) {
			best, bestKey = p, key
		}
		return true
	})
	return value{pkt: best}
}
