package netsim

import (
	"testing"
	"time"
)

func TestFlapSchedule(t *testing.T) {
	f := Flap{FirstDownAt: time.Second, DownFor: 200 * time.Millisecond, UpFor: 800 * time.Millisecond}
	rate := FlapRate(ConstantRate(1e6), f)
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{0, false},
		{999 * time.Millisecond, false},
		{time.Second, true},
		{1100 * time.Millisecond, true},
		{1200 * time.Millisecond, false}, // outage over (exclusive)
		{1900 * time.Millisecond, false},
		{2 * time.Second, true}, // next cycle
		{2300 * time.Millisecond, false},
	}
	for _, c := range cases {
		r := rate(c.at)
		if c.down && r != 0 {
			t.Errorf("at %v: rate %v, want 0 (down window)", c.at, r)
		}
		if !c.down && r != 1e6 {
			t.Errorf("at %v: rate %v, want 1e6 (up window)", c.at, r)
		}
	}
}

func TestFlapDownForeverWithoutUp(t *testing.T) {
	f := Flap{FirstDownAt: time.Second, DownFor: 200 * time.Millisecond}
	if f.down(500 * time.Millisecond) {
		t.Error("down before FirstDownAt")
	}
	if !f.down(time.Hour) {
		t.Error("UpFor=0 must mean the link never recovers")
	}
}

func TestFlapTailDropsDuringOutage(t *testing.T) {
	eng := NewEngine(1)
	cfg := ChaosSpec{Flap: &Flap{FirstDownAt: 10 * time.Millisecond, DownFor: 10 * time.Millisecond}}.
		Apply(PathConfig{Rate: ConstantRate(1e6), Delay: time.Millisecond})
	p := NewPath(eng, cfg)
	if !p.Send(100, func() {}) {
		t.Fatal("send before outage must be accepted")
	}
	eng.RunUntil(15 * time.Millisecond)
	if p.Send(100, func() {}) {
		t.Fatal("send during outage must be tail-dropped")
	}
	if p.DroppedQueue != 1 {
		t.Errorf("DroppedQueue = %d, want 1", p.DroppedQueue)
	}
}

func TestBlackoutLossUntil(t *testing.T) {
	eng := NewEngine(1)
	b := BlackoutLoss{From: 10 * time.Millisecond, Until: 20 * time.Millisecond}
	check := func(at time.Duration, want bool) {
		eng.At(at, func() {
			if got := b.Lost(eng); got != want {
				t.Errorf("at %v: Lost = %v, want %v", at, got, want)
			}
		})
	}
	check(5*time.Millisecond, false)
	check(10*time.Millisecond, true)
	check(19*time.Millisecond, true)
	check(20*time.Millisecond, false)
	eng.Run()
}

func TestDuplicationDeliversTwice(t *testing.T) {
	eng := NewEngine(3)
	p := NewPath(eng, PathConfig{
		Rate:    ConstantRate(1e6),
		Delay:   time.Millisecond,
		DupProb: 1.0,
	})
	deliveries := 0
	p.Send(100, func() { deliveries++ })
	eng.Run()
	if deliveries != 2 {
		t.Fatalf("DupProb=1: delivered %d times, want 2", deliveries)
	}
	if p.DuplicatedCount != 1 {
		t.Errorf("DuplicatedCount = %d, want 1", p.DuplicatedCount)
	}
}

func TestReorderingOvertakes(t *testing.T) {
	eng := NewEngine(4)
	// Deterministic check: a path that reorders every packet by 10 ms
	// must deliver a later clean packet first.
	rp := NewPath(eng, PathConfig{
		Rate:        ConstantRate(1e9),
		Delay:       time.Millisecond,
		ReorderProb: 1.0,
		ReorderBy:   10 * time.Millisecond,
	})
	var order []int
	rp.Send(100, func() { order = append(order, 1) })
	// Second packet sent shortly after on a clean path with the same
	// delay arrives first because the first was held back.
	clean := NewPath(eng, PathConfig{Rate: ConstantRate(1e9), Delay: time.Millisecond})
	eng.After(100*time.Microsecond, func() {
		clean.Send(100, func() { order = append(order, 2) })
	})
	eng.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("delivery order %v, want [2 1] (reordered packet overtaken)", order)
	}
	if rp.ReorderedCount != 1 {
		t.Errorf("ReorderedCount = %d, want 1", rp.ReorderedCount)
	}
}

func TestAnyLossAdvancesAllModels(t *testing.T) {
	eng := NewEngine(5)
	ge := &GilbertElliott{PGood: 0, PBad: 1, PGoodToBad: 1, PBadToGood: 0}
	m := AnyLoss(BernoulliLoss{P: 0}, ge)
	// First packet: chain transitions good→bad and drops with PBad=1.
	lost := 0
	for i := 0; i < 5; i++ {
		if m.Lost(eng) {
			lost++
		}
	}
	if lost != 5 {
		t.Errorf("AnyLoss lost %d of 5, want 5 (GE stuck in bad state)", lost)
	}
}

func TestChaosSpecApplyComposes(t *testing.T) {
	base := PathConfig{Rate: ConstantRate(1e6), Delay: time.Millisecond, Loss: BernoulliLoss{P: 0.5}}
	spec := ChaosSpec{
		Burst:       &GilbertElliott{PBad: 1},
		Blackout:    &BlackoutLoss{From: time.Second},
		Flap:        &Flap{FirstDownAt: time.Second, DownFor: time.Second},
		DupProb:     0.1,
		ReorderProb: 0.2,
		ReorderBy:   3 * time.Millisecond,
		Jitter:      time.Millisecond,
	}
	cfg := spec.Apply(base)
	if _, ok := cfg.Loss.(anyLoss); !ok {
		t.Errorf("composed loss is %T, want anyLoss", cfg.Loss)
	}
	if cfg.Rate(1500*time.Millisecond) != 0 {
		t.Error("flap not applied to rate")
	}
	if cfg.DupProb != 0.1 || cfg.ReorderProb != 0.2 || cfg.ReorderBy != 3*time.Millisecond {
		t.Error("dup/reorder fields not applied")
	}
	if cfg.Jitter != time.Millisecond {
		t.Error("jitter not applied")
	}
	// Zero spec leaves the base untouched.
	clean := ChaosSpec{}.Apply(base)
	if clean.DupProb != 0 || clean.Loss == nil {
		t.Error("zero ChaosSpec must be a no-op")
	}
}
