package netsim

import (
	"math/rand"
	"time"
)

// ReplayRate builds a capacity function from a recorded trace of
// (time, bytes/s) samples — the stand-in for the production capacity
// traces the paper's "in the wild" experiments ran against. Samples
// must be sorted by time; the rate holds between samples (step
// interpolation). With loop set, the trace repeats with its last
// sample's timestamp as the period; otherwise the final rate holds
// forever.
func ReplayRate(samples []Sample, loop bool) RateFunc {
	if len(samples) == 0 {
		return ConstantRate(0)
	}
	period := samples[len(samples)-1].At
	return func(at time.Duration) float64 {
		if loop && period > 0 {
			at = at % period
		}
		rate := samples[0].Value
		for _, s := range samples {
			if at < s.At {
				break
			}
			rate = s.Value
		}
		return rate
	}
}

// SyntheticCellularTrace generates a reproducible drive-test-like
// capacity trace: a bounded random walk around mean with the given
// per-step deviation, plus occasional deep fades (a few seconds at a
// small fraction of the mean), the signature shape of cellular
// throughput traces.
func SyntheticCellularTrace(seed int64, duration, step time.Duration, mean, dev float64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	rate := mean
	fadeLeft := 0
	for at := time.Duration(0); at <= duration; at += step {
		if fadeLeft > 0 {
			fadeLeft--
			out = append(out, Sample{At: at, Value: mean * 0.1})
			continue
		}
		if rng.Float64() < 0.02 {
			// Enter a fade lasting 1–3 seconds.
			fadeLeft = int(time.Duration(1+rng.Intn(3)) * time.Second / step)
		}
		rate += rng.NormFloat64() * dev
		if rate < mean*0.2 {
			rate = mean * 0.2
		}
		if rate > mean*1.8 {
			rate = mean * 1.8
		}
		out = append(out, Sample{At: at, Value: rate})
	}
	return out
}
