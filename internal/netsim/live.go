package netsim

import (
	"errors"
	"sync"
	"time"
)

// ErrInboxClosed reports an injection into an inbox whose simulation
// run has ended.
var ErrInboxClosed = errors.New("netsim: inbox closed")

// inboxEntry is one queued closure with its completion signal.
type inboxEntry struct {
	fn   func()
	done chan error
}

// Inbox is a thread-safe queue of closures injected into a live
// simulation run from other goroutines (e.g. a control-plane server).
// The engine is single-threaded by design; the inbox is the one door
// through which foreign goroutines may touch simulation state: queued
// closures execute on the simulation goroutine between event slices,
// so they need no further synchronization.
type Inbox struct {
	mu      sync.Mutex
	entries []inboxEntry
	closed  bool
	wake    chan struct{}
}

// NewInbox returns an empty inbox.
func NewInbox() *Inbox {
	return &Inbox{wake: make(chan struct{}, 1)}
}

// Do runs fn on the simulation goroutine at the next injection point
// and blocks until it has executed. It returns ErrInboxClosed when the
// live run has ended (fn then did not run). Calling Do from the
// simulation goroutine itself deadlocks — it is for foreign goroutines
// only.
func (b *Inbox) Do(fn func()) error {
	done := make(chan error, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrInboxClosed
	}
	b.entries = append(b.entries, inboxEntry{fn: fn, done: done})
	b.mu.Unlock()
	b.notify()
	return <-done
}

// Drain executes every queued closure on the calling goroutine. The
// simulation loop calls it between event slices.
func (b *Inbox) Drain() {
	for {
		b.mu.Lock()
		entries := b.entries
		b.entries = nil
		b.mu.Unlock()
		if len(entries) == 0 {
			return
		}
		for _, e := range entries {
			e.fn()
			e.done <- nil
		}
	}
}

// Close ends the live run: pending Do calls fail with ErrInboxClosed
// without executing, as do all future ones, and a running RunLiveUntil
// returns at its next slice boundary. Safe to call from any goroutine
// and idempotent.
func (b *Inbox) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	entries := b.entries
	b.entries = nil
	b.mu.Unlock()
	for _, e := range entries {
		e.done <- ErrInboxClosed
	}
	b.notify()
}

// isClosed reports whether Close was called.
func (b *Inbox) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// notify wakes a sleeping RunLiveUntil (non-blocking).
func (b *Inbox) notify() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// liveSlice is the virtual-time granularity of injection points during
// a live run: between consecutive slices the loop drains the inbox, so
// control-plane commands observe the simulation at most one slice
// stale.
const liveSlice = time.Millisecond

// RunLiveUntil advances the simulation to deadline like RunUntil, but
// paced against the wall clock and interleaved with inbox draining so
// foreign goroutines can inspect and steer the run while it progresses.
// pace is virtual seconds per wall second: 1 runs in real time, 10 runs
// ten times faster than real time, <= 0 disables pacing (the loop still
// drains the inbox between slices, but never sleeps). The run ends
// early when the inbox is closed.
func (e *Engine) RunLiveUntil(deadline time.Duration, pace float64, inbox *Inbox) {
	if inbox == nil {
		e.RunUntil(deadline)
		return
	}
	start := time.Now()
	base := e.now
	for e.now < deadline && !inbox.isClosed() {
		inbox.Drain()
		next := e.now + liveSlice
		if next > deadline {
			next = deadline
		}
		e.RunUntil(next)
		if pace <= 0 {
			continue
		}
		wallTarget := start.Add(time.Duration(float64(e.now-base) / pace))
		for !inbox.isClosed() {
			d := time.Until(wallTarget)
			if d <= 0 {
				break
			}
			timer := time.NewTimer(d)
			select {
			case <-inbox.wake:
				timer.Stop()
				inbox.Drain()
			case <-timer.C:
			}
		}
	}
	if !inbox.isClosed() {
		inbox.Drain()
	}
}
