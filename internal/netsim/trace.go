package netsim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sample is one recorded measurement.
type Sample struct {
	At    time.Duration
	Value float64
}

// Recorder collects named time series during a simulation (the
// measurement half of the experiment harness).
type Recorder struct {
	series map[string][]Sample
	// names caches the sorted series names; recording a new series
	// invalidates it, so hot Record calls on existing series stay
	// append-only and Names is O(1) between series additions.
	names []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string][]Sample)}
}

// Record appends a sample to the named series.
func (r *Recorder) Record(name string, at time.Duration, value float64) {
	if _, ok := r.series[name]; !ok {
		r.names = nil
	}
	r.series[name] = append(r.series[name], Sample{At: at, Value: value})
}

// Series returns the samples of one series (in recording order).
func (r *Recorder) Series(name string) []Sample { return r.series[name] }

// Names lists recorded series, sorted. The list is cached until a new
// series appears (callers must not mutate it).
func (r *Recorder) Names() []string {
	if r.names == nil && len(r.series) > 0 {
		names := make([]string, 0, len(r.series))
		for n := range r.series {
			names = append(names, n)
		}
		sort.Strings(names)
		r.names = names
	}
	return r.names
}

// Sum totals a series' values.
func (r *Recorder) Sum(name string) float64 {
	var s float64
	for _, sample := range r.series[name] {
		s += sample.Value
	}
	return s
}

// Mean averages a series; it returns 0 for an empty series.
func (r *Recorder) Mean(name string) float64 {
	ss := r.series[name]
	if len(ss) == 0 {
		return 0
	}
	return r.Sum(name) / float64(len(ss))
}

// Bucket aggregates a series into fixed-width time buckets, summing
// values per bucket — e.g. bytes per interval for throughput plots.
// The result has one entry per bucket from 0 through the last sample.
func (r *Recorder) Bucket(name string, width time.Duration) []float64 {
	ss := r.series[name]
	if len(ss) == 0 || width <= 0 {
		return nil
	}
	maxAt := time.Duration(0)
	for _, s := range ss {
		if s.At > maxAt {
			maxAt = s.At
		}
	}
	out := make([]float64, int(maxAt/width)+1)
	for _, s := range ss {
		out[int(s.At/width)] += s.Value
	}
	return out
}

// Percentile returns the p-quantile (0..1) of a series' values.
func (r *Recorder) Percentile(name string, p float64) float64 {
	ss := r.series[name]
	if len(ss) == 0 {
		return 0
	}
	vals := make([]float64, len(ss))
	for i, s := range ss {
		vals[i] = s.Value
	}
	sort.Float64s(vals)
	idx := int(p * float64(len(vals)-1))
	return vals[idx]
}

// Table renders series as an aligned text table of (name, count, mean,
// sum) rows — the progmp-bench summary format.
func (r *Recorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %8s %14s %14s\n", "series", "n", "mean", "sum")
	for _, name := range r.Names() {
		fmt.Fprintf(&b, "%-32s %8d %14.2f %14.2f\n", name, len(r.series[name]), r.Mean(name), r.Sum(name))
	}
	return b.String()
}
