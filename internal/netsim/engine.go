// Package netsim is a deterministic discrete-event network simulator:
// virtual time, an event loop, and path models with serialization
// delay, propagation delay, jitter, drop-tail queueing, time-varying
// capacity and configurable loss processes. It substitutes for the
// paper's Mininet emulations and "in the wild" WiFi/LTE measurements
// (see DESIGN.md for the substitution rationale).
package netsim

import (
	"container/heap"
	"math/rand"
	"time"

	"progmp/internal/obs"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker for stable ordering
	fn  func()
	// cancelled events stay in the heap but do not fire.
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer handles a scheduled event and allows cancellation.
type Timer struct{ ev *event }

// Stop cancels the timer; firing a stopped timer is a no-op. Stop is
// idempotent and safe on an already-fired timer.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Engine is a single-threaded discrete-event loop over virtual time.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now time.Duration
	seq uint64
	pq  eventHeap
	rng *rand.Rand

	// Observability handles (nil-safe no-ops when uninstrumented).
	mEvents  *obs.Counter
	mPending *obs.Gauge
}

// NewEngine returns an engine whose randomness is seeded for
// reproducible runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Instrument resolves engine metric handles from reg: engine.events
// counts fired events, engine.pending gauges the heap size.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.mEvents = reg.Counter("engine.events")
	e.mPending = reg.Gauge("engine.pending")
}

// Rand exposes the engine's deterministic randomness source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return &Timer{ev: ev}
}

// After schedules fn d after the current time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Step fires the next event; it reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.mEvents.Add(1)
		e.mPending.Set(int64(len(e.pq)))
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances
// the clock to the deadline.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		// Peek for the next non-cancelled event.
		for len(e.pq) > 0 && e.pq[0].cancelled {
			heap.Pop(&e.pq)
		}
		if len(e.pq) == 0 || e.pq[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
