// Package netsim is a deterministic discrete-event network simulator:
// virtual time, an event loop, and path models with serialization
// delay, propagation delay, jitter, drop-tail queueing, time-varying
// capacity and configurable loss processes. It substitutes for the
// paper's Mininet emulations and "in the wild" WiFi/LTE measurements
// (see DESIGN.md for the substitution rationale).
package netsim

import (
	"container/heap"
	"math/rand"
	"time"

	"progmp/internal/obs"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker for stable ordering
	fn  func()
	// cancelled events stay in the heap but do not fire.
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer handles a scheduled event and allows cancellation.
type Timer struct{ ev *event }

// Stop cancels the timer; firing a stopped timer is a no-op. Stop is
// idempotent and safe on an already-fired timer.
//
//progmp:deterministic
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Engine is a single-threaded discrete-event loop over virtual time.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now time.Duration
	seq uint64
	pq  eventHeap
	rng *rand.Rand

	// Observability handles (nil-safe no-ops when uninstrumented).
	mEvents  *obs.Counter
	mPending *obs.Gauge
}

// NewEngine returns an engine whose randomness is seeded for
// reproducible runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// NewEngineCompact returns an engine backed by a splitmix64 randomness
// source instead of math/rand's default ~5KB state table. Fleet runs
// host one engine per connection, so at 100k connections the default
// source alone costs ~500MB; splitmix64 is 8 bytes of state with
// distribution quality more than sufficient for loss/jitter draws.
// Determinism contract is per-constructor: a compact engine's draw
// sequence differs from NewEngine's for the same seed, but is itself
// fully reproducible.
func NewEngineCompact(seed int64) *Engine {
	return &Engine{rng: rand.New(&splitmix64{state: uint64(seed)})}
}

// splitmix64 is the 8-byte-state generator from Steele et al.'s
// "Fast splittable pseudorandom number generators"; it implements
// rand.Source64 so rand.Rand uses Uint64 directly.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// Mix64 advances one splitmix64 step from seed: a cheap, well-mixed
// way to derive independent per-connection seeds from a fleet seed.
//
//progmp:deterministic
func Mix64(seed uint64) uint64 {
	s := splitmix64{state: seed}
	return s.Uint64()
}

// Now returns the current virtual time.
//
//progmp:hotpath
//progmp:deterministic
func (e *Engine) Now() time.Duration { return e.now }

// Instrument resolves engine metric handles from reg: engine.events
// counts fired events, engine.pending gauges the heap size.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.mEvents = reg.Counter("engine.events")
	e.mPending = reg.Gauge("engine.pending")
}

// Rand exposes the engine's deterministic randomness source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (clamped to now).
//
//progmp:deterministic
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return &Timer{ev: ev}
}

// After schedules fn d after the current time.
//
//progmp:deterministic
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Step fires the next event; it reports false when no events remain.
//
//progmp:deterministic
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.mEvents.Add(1)
		e.mPending.Set(int64(len(e.pq)))
		ev.fn()
		return true
	}
	return false
}

// NextEventAt peeks the timestamp of the next live event without
// firing it, discarding cancelled heap heads on the way; ok is false
// when no events remain. Batched drivers (the fleet shard loop) use it
// to park a connection's engine until its next wakeup instead of
// polling.
//
//progmp:deterministic
func (e *Engine) NextEventAt() (at time.Duration, ok bool) {
	for len(e.pq) > 0 && e.pq[0].cancelled {
		heap.Pop(&e.pq)
	}
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// Run fires events until the queue drains.
//
//progmp:deterministic
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances
// the clock to the deadline.
//
//progmp:deterministic
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		// Peek for the next non-cancelled event.
		for len(e.pq) > 0 && e.pq[0].cancelled {
			heap.Pop(&e.pq)
		}
		if len(e.pq) == 0 || e.pq[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
