package netsim

import "time"

// This file is the link-level half of the chaos fault-injection
// harness: composable injectors — scheduled link flaps, bursty loss,
// duplication, reordering, blackouts — that turn a clean PathConfig
// into a hostile one. Everything draws randomness from the engine's
// seeded RNG, so a chaos run is exactly reproducible from its seed.
// The connection-level half (scenario drivers, the conservation
// checker) lives in package mptcp, which owns the MPTCP model.

// Flap is a scheduled down/up cycle: the link dies (rate 0, tail drop)
// for DownFor, recovers for UpFor, and repeats. The first outage starts
// at FirstDownAt.
type Flap struct {
	FirstDownAt time.Duration
	DownFor     time.Duration
	UpFor       time.Duration
}

// down reports whether the link is inside an outage window at the
// given virtual time.
func (f Flap) down(at time.Duration) bool {
	if f.DownFor <= 0 || at < f.FirstDownAt {
		return false
	}
	cycle := f.DownFor + f.UpFor
	if cycle <= 0 {
		return true // DownFor > 0, UpFor <= 0: down forever
	}
	return (at-f.FirstDownAt)%cycle < f.DownFor
}

// FlapRate wraps a rate function with the flap schedule: during an
// outage the rate is 0 (the Path treats non-positive rates as a dead
// link and tail-drops).
func FlapRate(inner RateFunc, f Flap) RateFunc {
	return func(at time.Duration) float64 {
		if f.down(at) {
			return 0
		}
		return inner(at)
	}
}

// AnyLoss combines loss models: a packet is lost when any component
// reports loss. Every component's Lost is evaluated on every packet so
// stateful models (Gilbert-Elliott) advance consistently.
func AnyLoss(models ...LossModel) LossModel { return anyLoss(models) }

type anyLoss []LossModel

func (a anyLoss) Lost(eng *Engine) bool {
	lost := false
	for _, m := range a {
		if m.Lost(eng) {
			lost = true
		}
	}
	return lost
}

// ChaosSpec bundles the composable fault injectors for one path. The
// zero value injects nothing; Apply layers the configured faults onto a
// base PathConfig. Loss-model fields hold fresh state, so build a new
// spec (or at least new model values) per run.
type ChaosSpec struct {
	// Burst adds Gilbert-Elliott bursty loss.
	Burst *GilbertElliott
	// Blackout adds a total loss window (the link keeps serializing).
	Blackout *BlackoutLoss
	// Flap schedules hard link outages (rate 0, tail drop).
	Flap *Flap
	// DupProb duplicates surviving packets with this probability.
	DupProb float64
	// ReorderProb delays surviving packets by ReorderBy with this
	// probability, letting later packets overtake them.
	ReorderProb float64
	ReorderBy   time.Duration
	// Jitter adds uniform random delivery delay.
	Jitter time.Duration
}

// Apply layers the spec's faults onto cfg and returns the result.
func (s ChaosSpec) Apply(cfg PathConfig) PathConfig {
	var losses []LossModel
	if cfg.Loss != nil {
		losses = append(losses, cfg.Loss)
	}
	if s.Burst != nil {
		losses = append(losses, s.Burst)
	}
	if s.Blackout != nil {
		losses = append(losses, *s.Blackout)
	}
	switch len(losses) {
	case 0:
	case 1:
		cfg.Loss = losses[0]
	default:
		cfg.Loss = AnyLoss(losses...)
	}
	if s.Flap != nil && cfg.Rate != nil {
		cfg.Rate = FlapRate(cfg.Rate, *s.Flap)
	}
	if s.DupProb > 0 {
		cfg.DupProb = s.DupProb
	}
	if s.ReorderProb > 0 {
		cfg.ReorderProb = s.ReorderProb
		cfg.ReorderBy = s.ReorderBy
	}
	if s.Jitter > 0 {
		cfg.Jitter = s.Jitter
	}
	return cfg
}
