package netsim

import (
	"testing"
	"time"
)

func TestRunLiveDrainsInjectedClosures(t *testing.T) {
	eng := NewEngine(1)
	inbox := NewInbox()
	fired := 0
	eng.At(5*time.Millisecond, func() { fired++ })

	done := make(chan struct{})
	var sawTime time.Duration
	go func() {
		defer close(done)
		// Unpaced: the loop spins through slices but still drains.
		if err := inbox.Do(func() { sawTime = eng.Now() }); err != nil {
			t.Errorf("Do: %v", err)
		}
	}()
	// Wait until the closure is queued: an unpaced run can outrun the
	// injecting goroutine, and a closure queued after the run ends would
	// wait forever (real embedders Close the inbox when the run ends).
	for {
		inbox.mu.Lock()
		n := len(inbox.entries)
		inbox.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	eng.RunLiveUntil(20*time.Millisecond, 0, inbox)
	<-done
	if fired != 1 {
		t.Fatalf("scheduled event fired %d times, want 1", fired)
	}
	if eng.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v, want 20ms", eng.Now())
	}
	if sawTime > 20*time.Millisecond {
		t.Fatalf("injected closure saw time %v beyond the deadline", sawTime)
	}
}

func TestInboxCloseFailsPendingAndFutureDo(t *testing.T) {
	inbox := NewInbox()
	errs := make(chan error, 1)
	go func() { errs <- inbox.Do(func() { t.Error("closure must not run after Close") }) }()
	// Wait until the entry is queued so Close sees it as pending.
	for {
		inbox.mu.Lock()
		n := len(inbox.entries)
		inbox.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	inbox.Close()
	if err := <-errs; err != ErrInboxClosed {
		t.Fatalf("pending Do: got %v, want ErrInboxClosed", err)
	}
	if err := inbox.Do(func() {}); err != ErrInboxClosed {
		t.Fatalf("future Do: got %v, want ErrInboxClosed", err)
	}
	inbox.Close() // idempotent
}

func TestRunLiveStopsWhenInboxCloses(t *testing.T) {
	eng := NewEngine(1)
	inbox := NewInbox()
	returned := make(chan struct{})
	go func() {
		// Paced at real time the full run would take ~10 wall seconds;
		// closing the inbox must end it at a slice boundary instead.
		eng.RunLiveUntil(10*time.Second, 1, inbox)
		close(returned)
	}()
	if err := inbox.Do(func() {}); err != nil {
		t.Fatalf("Do during live run: %v", err)
	}
	inbox.Close()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("RunLiveUntil did not return after inbox close")
	}
	if eng.Now() >= 10*time.Second {
		t.Fatalf("run completed to the deadline (%v) despite close", eng.Now())
	}
}

func TestRunLivePacingRoughlyTracksWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test")
	}
	eng := NewEngine(1)
	inbox := NewInbox()
	start := time.Now()
	// 100 ms of virtual time at 2x speed ≈ 50 ms of wall time.
	eng.RunLiveUntil(100*time.Millisecond, 2, inbox)
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Fatalf("paced run finished in %v, expected ≥ 25ms", elapsed)
	}
}
