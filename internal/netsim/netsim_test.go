package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	eng.At(30*time.Millisecond, func() { order = append(order, 3) })
	eng.At(10*time.Millisecond, func() { order = append(order, 1) })
	eng.At(20*time.Millisecond, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", order)
	}
	if eng.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.At(time.Millisecond, func() {
		eng.After(time.Millisecond, func() { fired++ })
	})
	eng.Run()
	if fired != 1 {
		t.Errorf("nested event did not fire")
	}
	if eng.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v, want 2ms", eng.Now())
	}
}

func TestTimerStop(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	tm := eng.At(time.Millisecond, func() { fired = true })
	tm.Stop()
	tm.Stop() // idempotent
	eng.Run()
	if fired {
		t.Errorf("stopped timer fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	eng.At(50*time.Millisecond, func() { fired = true })
	eng.RunUntil(10 * time.Millisecond)
	if fired {
		t.Errorf("future event fired early")
	}
	if eng.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms", eng.Now())
	}
	eng.RunUntil(100 * time.Millisecond)
	if !fired {
		t.Errorf("event did not fire by deadline")
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	eng := NewEngine(1)
	eng.RunUntil(10 * time.Millisecond)
	fired := time.Duration(-1)
	eng.At(time.Millisecond, func() { fired = eng.Now() })
	eng.Run()
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestPathSerializationAndPropagation(t *testing.T) {
	eng := NewEngine(1)
	p := NewPath(eng, PathConfig{
		Name:  "test",
		Rate:  ConstantRate(1e6), // 1 MB/s
		Delay: 10 * time.Millisecond,
	})
	var arrivals []time.Duration
	// Two back-to-back 1000-byte packets: 1 ms serialization each.
	p.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	p.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	want0 := 11 * time.Millisecond
	want1 := 12 * time.Millisecond
	if arrivals[0] != want0 || arrivals[1] != want1 {
		t.Errorf("arrivals = %v, want [%v %v] (serialization must queue)", arrivals, want0, want1)
	}
}

func TestPathDropTail(t *testing.T) {
	eng := NewEngine(1)
	p := NewPath(eng, PathConfig{
		Rate:       ConstantRate(1e5),
		Delay:      time.Millisecond,
		QueueBytes: 3000,
	})
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Send(1000, func() {}) {
			accepted++
		}
	}
	if accepted >= 10 {
		t.Errorf("drop-tail queue never dropped")
	}
	if p.DroppedQueue == 0 {
		t.Errorf("DroppedQueue = 0, want > 0")
	}
	if accepted+p.DroppedQueue != 10 {
		t.Errorf("accepted %d + dropped %d != 10", accepted, p.DroppedQueue)
	}
}

func TestPathLoss(t *testing.T) {
	eng := NewEngine(42)
	p := NewPath(eng, PathConfig{
		Rate:  ConstantRate(1e9),
		Delay: time.Millisecond,
		Loss:  BernoulliLoss{P: 0.5},
	})
	delivered := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p.Send(100, func() { delivered++ })
	}
	eng.Run()
	ratio := float64(delivered) / n
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("delivery ratio = %.3f, want ≈ 0.5", ratio)
	}
	if p.DroppedLoss != n-delivered {
		t.Errorf("DroppedLoss = %d, want %d", p.DroppedLoss, n-delivered)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	eng := NewEngine(7)
	ge := &GilbertElliott{PGood: 0.001, PBad: 0.5, PGoodToBad: 0.01, PBadToGood: 0.2}
	losses := make([]bool, 0, 20000)
	for i := 0; i < 20000; i++ {
		losses = append(losses, ge.Lost(eng))
	}
	// Burstiness: probability of loss right after a loss must exceed
	// the marginal loss rate.
	total, lost, lostAfterLost, lostPrev := 0, 0, 0, 0
	for i := 1; i < len(losses); i++ {
		total++
		if losses[i] {
			lost++
		}
		if losses[i-1] {
			lostPrev++
			if losses[i] {
				lostAfterLost++
			}
		}
	}
	marginal := float64(lost) / float64(total)
	conditional := float64(lostAfterLost) / float64(lostPrev)
	if conditional <= marginal*1.5 {
		t.Errorf("Gilbert-Elliott not bursty: P(loss|loss)=%.3f vs P(loss)=%.3f", conditional, marginal)
	}
}

func TestSteppedRate(t *testing.T) {
	r := SteppedRate(Step{From: 0, Rate: 100}, Step{From: time.Second, Rate: 200})
	if got := r(500 * time.Millisecond); got != 100 {
		t.Errorf("rate at 0.5s = %v, want 100", got)
	}
	if got := r(time.Second); got != 200 {
		t.Errorf("rate at 1s = %v, want 200", got)
	}
	if got := r(2 * time.Second); got != 200 {
		t.Errorf("rate at 2s = %v, want 200", got)
	}
}

func TestFluctuatingRateBounds(t *testing.T) {
	r := FluctuatingRate(3e6, 1e6, time.Second, 1e6)
	for at := time.Duration(0); at < 3*time.Second; at += 37 * time.Millisecond {
		v := r(at)
		if v < 1e6 || v > 4e6+1 {
			t.Fatalf("rate %v at %v out of [floor, base+amp]", v, at)
		}
	}
}

func TestDeadPathDropsEverything(t *testing.T) {
	eng := NewEngine(1)
	p := NewPath(eng, PathConfig{Rate: ConstantRate(0), Delay: time.Millisecond})
	if p.Send(100, func() { t.Error("delivered on dead path") }) {
		t.Errorf("Send on dead path returned true")
	}
	eng.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		eng := NewEngine(seed)
		p := NewPath(eng, PathConfig{
			Rate:   ConstantRate(1e6),
			Delay:  5 * time.Millisecond,
			Jitter: 2 * time.Millisecond,
			Loss:   BernoulliLoss{P: 0.1},
		})
		var arrivals []time.Duration
		for i := 0; i < 100; i++ {
			p.Send(500, func() { arrivals = append(arrivals, eng.Now()) })
		}
		eng.Run()
		return arrivals
	}
	a := run(123)
	b := run(123)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record("x", 0, 1)
	r.Record("x", 600*time.Millisecond, 2)
	r.Record("x", 1100*time.Millisecond, 3)
	r.Record("y", 0, 10)
	if got := r.Sum("x"); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := r.Mean("x"); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	buckets := r.Bucket("x", 500*time.Millisecond)
	want := []float64{1, 2, 3}
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, buckets[i], want[i])
		}
	}
	if names := r.Names(); len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	if p := r.Percentile("x", 1.0); p != 3 {
		t.Errorf("P100 = %v, want 3", p)
	}
	if p := r.Percentile("x", 0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
	if r.Table() == "" {
		t.Errorf("Table must render")
	}
}

// Property: for any sequence of sends on a lossless constant-rate path,
// arrivals preserve FIFO order and spacing of at least size/rate.
func TestPathFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 50 {
			sizes = sizes[:50]
		}
		eng := NewEngine(5)
		p := NewPath(eng, PathConfig{
			Rate: ConstantRate(1e6), Delay: 3 * time.Millisecond, QueueBytes: 1 << 30,
		})
		var arrivals []time.Duration
		for _, s := range sizes {
			size := int(s)%1400 + 1
			p.Send(size, func() { arrivals = append(arrivals, eng.Now()) })
		}
		eng.Run()
		if len(arrivals) != len(sizes) {
			return false
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRateStepsAndLoops(t *testing.T) {
	samples := []Sample{
		{At: 0, Value: 100},
		{At: time.Second, Value: 200},
		{At: 2 * time.Second, Value: 300},
	}
	r := ReplayRate(samples, false)
	if got := r(500 * time.Millisecond); got != 100 {
		t.Errorf("rate at 0.5s = %v, want 100", got)
	}
	if got := r(1500 * time.Millisecond); got != 200 {
		t.Errorf("rate at 1.5s = %v, want 200", got)
	}
	if got := r(10 * time.Second); got != 300 {
		t.Errorf("non-looping trace must hold the final rate, got %v", got)
	}
	looped := ReplayRate(samples, true)
	if got := looped(2500 * time.Millisecond); got != 100 {
		t.Errorf("looped rate at 2.5s = %v, want 100 (wrapped to 0.5s)", got)
	}
	if got := ReplayRate(nil, false)(0); got != 0 {
		t.Errorf("empty trace rate = %v, want 0", got)
	}
}

func TestSyntheticCellularTrace(t *testing.T) {
	const mean = 4e6
	trace := SyntheticCellularTrace(7, 60*time.Second, 100*time.Millisecond, mean, 0.3e6)
	if len(trace) < 500 {
		t.Fatalf("trace too short: %d samples", len(trace))
	}
	fades := 0
	for i, s := range trace {
		if s.Value < mean*0.05 {
			t.Fatalf("sample %d below the floor: %v", i, s.Value)
		}
		if s.Value > mean*1.9 {
			t.Fatalf("sample %d above the cap: %v", i, s.Value)
		}
		if s.Value <= mean*0.11 {
			fades++
		}
	}
	if fades == 0 {
		t.Errorf("60s cellular trace produced no deep fades")
	}
	// Determinism.
	again := SyntheticCellularTrace(7, 60*time.Second, 100*time.Millisecond, mean, 0.3e6)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatalf("trace not reproducible at sample %d", i)
		}
	}
}

func TestReplayRateDrivesTransfer(t *testing.T) {
	// A transfer over a trace-driven path completes and respects the
	// fades (longer than a constant-rate path of the same mean).
	run := func(rate RateFunc) time.Duration {
		eng := NewEngine(1)
		p := NewPath(eng, PathConfig{Rate: rate, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30})
		var last time.Duration
		for i := 0; i < 2000; i++ {
			p.Send(1460, func() { last = eng.Now() })
		}
		eng.Run()
		return last
	}
	trace := SyntheticCellularTrace(7, 120*time.Second, 100*time.Millisecond, 1e6, 0.2e6)
	traced := run(ReplayRate(trace, true))
	constant := run(ConstantRate(1e6))
	if traced == 0 || constant == 0 {
		t.Fatal("transfer did not complete")
	}
	if traced < constant/2 || traced > constant*4 {
		t.Errorf("traced completion %v implausible vs constant %v", traced, constant)
	}
}

func TestPathAccessorsAndBacklogClearAt(t *testing.T) {
	eng := NewEngine(1)
	p := NewPath(eng, PathConfig{Name: "acc", Rate: ConstantRate(1e6), Delay: time.Millisecond})
	if p.Name() != "acc" || p.Config().Delay != time.Millisecond {
		t.Errorf("accessors wrong: %q %v", p.Name(), p.Config().Delay)
	}
	if got := p.BacklogClearAt(0); got != eng.Now() {
		t.Errorf("empty backlog clears now, got %v", got)
	}
	for i := 0; i < 10; i++ {
		p.Send(1000, func() {})
	}
	// ~10 KB backlog at 1 MB/s: clearing to 2 KB takes ≈ 8 ms.
	at := p.BacklogClearAt(2000)
	if at < 6*time.Millisecond || at > 10*time.Millisecond {
		t.Errorf("BacklogClearAt = %v, want ≈ 8 ms", at)
	}
	// A path that dies with a backlog never drains it.
	eng2 := NewEngine(2)
	dying := NewPath(eng2, PathConfig{
		Rate:  SteppedRate(Step{From: 0, Rate: 1e6}, Step{From: 5 * time.Millisecond, Rate: 0}),
		Delay: time.Millisecond,
	})
	for i := 0; i < 20; i++ {
		dying.Send(1000, func() {})
	}
	eng2.RunUntil(6 * time.Millisecond)
	if got := dying.BacklogClearAt(0); got < eng2.Now()+time.Minute {
		t.Errorf("dead path with backlog must report a distant drain deadline, got %v", got)
	}
}

func TestBlackoutLoss(t *testing.T) {
	eng := NewEngine(1)
	b := BlackoutLoss{From: time.Second}
	if b.Lost(eng) {
		t.Errorf("blackout before From")
	}
	eng.RunUntil(2 * time.Second)
	if !b.Lost(eng) {
		t.Errorf("no blackout after From")
	}
	if (NoLoss{}).Lost(eng) {
		t.Errorf("NoLoss lost a packet")
	}
}

func TestNewLinkReverseIsFastAndLossless(t *testing.T) {
	eng := NewEngine(3)
	l := NewLink(eng, PathConfig{Name: "x", Rate: ConstantRate(1e6), Delay: 5 * time.Millisecond, Loss: BernoulliLoss{P: 0.5}})
	delivered := 0
	for i := 0; i < 100; i++ {
		l.Rev.Send(40, func() { delivered++ })
	}
	eng.Run()
	if delivered != 100 {
		t.Errorf("reverse path dropped ACKs: %d/100", delivered)
	}
	if l.Rev.Name() != "x-rev" {
		t.Errorf("reverse path name = %q", l.Rev.Name())
	}
}

func TestChainedPathsCompose(t *testing.T) {
	eng := NewEngine(1)
	bottleneck := NewPath(eng, PathConfig{Name: "bn", Rate: ConstantRate(1e5), Delay: 10 * time.Millisecond})
	access := NewPath(eng, PathConfig{Name: "acc", Rate: ConstantRate(1e8), Delay: time.Millisecond, Next: bottleneck})
	var arrivals []time.Duration
	access.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	access.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("chained delivery count = %d", len(arrivals))
	}
	// Access hop ≈ 1 ms, bottleneck serialization 10 ms each + 10 ms
	// propagation: first ≈ 21 ms, second ≈ 31 ms (queued behind it).
	if arrivals[0] < 20*time.Millisecond || arrivals[0] > 23*time.Millisecond {
		t.Errorf("first chained arrival %v, want ≈ 21 ms", arrivals[0])
	}
	if arrivals[1]-arrivals[0] < 9*time.Millisecond {
		t.Errorf("bottleneck serialization not applied: gap %v", arrivals[1]-arrivals[0])
	}
}

func TestREDDropsEarly(t *testing.T) {
	eng := NewEngine(5)
	p := NewPath(eng, PathConfig{
		Rate:       ConstantRate(1e5),
		Delay:      time.Millisecond,
		QueueBytes: 64 << 10,
		RED:        &REDConfig{MinBytes: 4 << 10, MaxBytes: 32 << 10, MaxP: 1.0},
	})
	accepted := 0
	for i := 0; i < 64; i++ {
		if p.Send(1000, func() {}) {
			accepted++
		}
	}
	if p.DroppedQueue == 0 {
		t.Errorf("RED never dropped despite backlog past MinBytes")
	}
	if accepted < 4 {
		t.Errorf("RED dropped below MinBytes: only %d accepted", accepted)
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Microsecond, func() {})
		eng.Step()
	}
}

func BenchmarkPathSend(b *testing.B) {
	eng := NewEngine(1)
	p := NewPath(eng, PathConfig{Rate: ConstantRate(1e9), Delay: time.Millisecond, QueueBytes: 1 << 30})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(1460, func() {})
		if i%64 == 0 {
			eng.Run() // drain periodically so the heap stays small
		}
	}
}
