package netsim

import (
	"math"
	"time"
)

// RateFunc yields the path capacity in bytes per second at a virtual
// time. Rates must be positive; Path treats non-positive rates as a
// dead path (infinite serialization delay → tail drop).
type RateFunc func(at time.Duration) float64

// ConstantRate returns a fixed-capacity rate function.
func ConstantRate(bytesPerSec float64) RateFunc {
	return func(time.Duration) float64 { return bytesPerSec }
}

// Step is one segment of a piecewise-constant rate trace.
type Step struct {
	From time.Duration
	Rate float64 // bytes/s from From (inclusive) onward
}

// SteppedRate returns a piecewise-constant rate. Steps must be sorted
// by From; times before the first step use the first step's rate.
func SteppedRate(steps ...Step) RateFunc {
	return func(at time.Duration) float64 {
		if len(steps) == 0 {
			return 0
		}
		rate := steps[0].Rate
		for _, s := range steps {
			if at < s.From {
				break
			}
			rate = s.Rate
		}
		return rate
	}
}

// FluctuatingRate models WiFi-like capacity fluctuation: a sinusoid of
// the given amplitude and period around base, never below floor.
func FluctuatingRate(base, amplitude float64, period time.Duration, floor float64) RateFunc {
	return func(at time.Duration) float64 {
		phase := 2 * math.Pi * float64(at) / float64(period)
		r := base + amplitude*math.Sin(phase)
		if r < floor {
			r = floor
		}
		return r
	}
}

// LossModel decides per-packet loss. Implementations may keep state
// (e.g. Gilbert-Elliott); Lost is called once per transmitted packet in
// transmission order.
type LossModel interface {
	Lost(eng *Engine) bool
}

// NoLoss never drops packets.
type NoLoss struct{}

// Lost always reports false.
func (NoLoss) Lost(*Engine) bool { return false }

// BernoulliLoss drops each packet independently with probability P.
type BernoulliLoss struct{ P float64 }

// Lost samples the Bernoulli process.
func (b BernoulliLoss) Lost(eng *Engine) bool { return eng.Rand().Float64() < b.P }

// BlackoutLoss models a silent link death: from From onward every
// packet is lost while the link still accepts and serializes traffic —
// the "WiFi association silently gone" failure a path manager must
// detect from missing acknowledgements. A nonzero Until ends the
// blackout (exclusive), modelling a radio outage that recovers.
type BlackoutLoss struct {
	From  time.Duration
	Until time.Duration // 0 = the blackout never ends
}

// Lost drops everything while the blackout lasts.
func (b BlackoutLoss) Lost(eng *Engine) bool {
	now := eng.Now()
	return now >= b.From && (b.Until == 0 || now < b.Until)
}

// GilbertElliott is the classic two-state bursty loss model: in the
// Good state packets drop with probability PGood, in the Bad state with
// PBad; the chain switches states with the given probabilities per
// packet.
type GilbertElliott struct {
	PGood, PBad            float64
	PGoodToBad, PBadToGood float64
	bad                    bool
}

// Lost advances the chain one packet and samples loss.
func (g *GilbertElliott) Lost(eng *Engine) bool {
	rng := eng.Rand()
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if rng.Float64() < g.PGoodToBad {
		g.bad = true
	}
	p := g.PGood
	if g.bad {
		p = g.PBad
	}
	return rng.Float64() < p
}

// PathConfig describes one unidirectional path.
type PathConfig struct {
	Name string
	// Rate is the link capacity; required.
	Rate RateFunc
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// DelayFn, when set, overrides Delay with a time-varying
	// propagation delay (e.g. WiFi RTT spikes).
	DelayFn func(at time.Duration) time.Duration
	// Jitter adds uniform random [0, Jitter) to each delivery.
	Jitter time.Duration
	// Loss drops packets after serialization (nil = no loss).
	Loss LossModel
	// QueueBytes bounds the drop-tail buffer ahead of the link
	// (0 = a generous default of 256 KiB).
	QueueBytes int
	// Next, when set, chains this path into another: packets that
	// survive this hop are re-sent on Next instead of being delivered.
	// Use it to model a fast access link feeding a shared network
	// bottleneck the sender's queue accounting cannot observe.
	Next *Path
	// RED, when set, applies Random Early Detection ahead of the
	// drop-tail limit: packets drop with a probability ramping from 0
	// at MinBytes of backlog to MaxP at MaxBytes. RED de-synchronizes
	// losses across competing flows, the regime coupled congestion
	// control is analysed in.
	RED *REDConfig
	// DupProb delivers each surviving packet a second time, DupDelay
	// after the first copy (chaos: middlebox or retransmission-race
	// duplication the receiver must suppress).
	DupProb  float64
	DupDelay time.Duration // default 2 ms
	// ReorderProb delays a surviving packet by an extra ReorderBy, so
	// later packets overtake it (chaos: severe reordering beyond what
	// uniform Jitter produces).
	ReorderProb float64
	ReorderBy   time.Duration // default 4x the propagation delay
}

// REDConfig parameterizes Random Early Detection.
type REDConfig struct {
	MinBytes int
	MaxBytes int
	MaxP     float64
}

// Path is a unidirectional link with serialization, queueing,
// propagation, jitter and loss. Concurrent sends serialize FIFO.
type Path struct {
	eng *Engine
	cfg PathConfig
	// busyUntil is when the transmitter finishes its current backlog.
	busyUntil time.Duration

	// Stats.
	SentPackets     int
	SentBytes       int64
	DroppedQueue    int
	DroppedLoss     int
	DeliveredCount  int
	DuplicatedCount int
	ReorderedCount  int
}

// NewPath builds a path on the engine.
func NewPath(eng *Engine, cfg PathConfig) *Path {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 256 << 10
	}
	if cfg.Loss == nil {
		cfg.Loss = NoLoss{}
	}
	return &Path{eng: eng, cfg: cfg}
}

// Name returns the configured path name.
func (p *Path) Name() string { return p.cfg.Name }

// Config returns the path configuration.
func (p *Path) Config() PathConfig { return p.cfg }

// QueuedBytes reports the transmit backlog in bytes at the current
// rate (an approximation during rate changes).
//
//progmp:hotpath
//progmp:deterministic
func (p *Path) QueuedBytes() int {
	now := p.eng.Now()
	if p.busyUntil <= now {
		return 0
	}
	//progmp:ignore hotpath rate curves are pure arithmetic closures captured at path construction
	rate := p.cfg.Rate(now)
	if rate <= 0 {
		return p.cfg.QueueBytes
	}
	return int(float64(p.busyUntil-now) / float64(time.Second) * rate)
}

// BacklogClearAt estimates the virtual time when the transmit backlog
// will have drained to at most targetBytes (now when already below).
func (p *Path) BacklogClearAt(targetBytes int) time.Duration {
	now := p.eng.Now()
	excess := p.QueuedBytes() - targetBytes
	if excess <= 0 {
		return now
	}
	rate := p.cfg.Rate(now)
	if rate <= 0 {
		// A dead link never drains; report a distant deadline.
		return now + time.Hour
	}
	return now + time.Duration(float64(excess)/rate*float64(time.Second))
}

// Send transmits size bytes and calls deliver at the receiver when the
// packet survives queueing and loss. It returns false when the packet
// was tail-dropped at the local queue (the caller observes that only
// through missing ACKs, like a real stack).
func (p *Path) Send(size int, deliver func()) bool {
	return p.SendTracked(size, deliver, nil)
}

// SendTracked is Send with an additional serialized callback fired when
// the packet finishes serializing onto the wire (regardless of loss).
// Senders use it for per-flow qdisc accounting — the basis of the
// TCP-small-queues condition, which counts only the flow's own bytes
// even on shared links.
func (p *Path) SendTracked(size int, deliver, serialized func()) bool {
	now := p.eng.Now()
	rate := p.cfg.Rate(now)
	if rate <= 0 {
		p.DroppedQueue++
		return false
	}
	backlog := p.QueuedBytes()
	if backlog+size > p.cfg.QueueBytes {
		p.DroppedQueue++
		return false
	}
	if red := p.cfg.RED; red != nil && backlog > red.MinBytes {
		prob := red.MaxP
		if backlog < red.MaxBytes {
			prob = red.MaxP * float64(backlog-red.MinBytes) / float64(red.MaxBytes-red.MinBytes)
		}
		if p.eng.Rand().Float64() < prob {
			p.DroppedQueue++
			return false
		}
	}
	start := p.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(size) / rate * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	p.busyUntil = start + txTime
	p.SentPackets++
	p.SentBytes += int64(size)
	if serialized != nil {
		p.eng.At(p.busyUntil, serialized)
	}
	if p.cfg.Loss.Lost(p.eng) {
		p.DroppedLoss++
		return true // consumed link time, but never arrives
	}
	delay := p.cfg.Delay
	if p.cfg.DelayFn != nil {
		delay = p.cfg.DelayFn(now)
	}
	arrival := p.busyUntil + delay
	if p.cfg.Jitter > 0 {
		arrival += time.Duration(p.eng.Rand().Int63n(int64(p.cfg.Jitter)))
	}
	if p.cfg.ReorderProb > 0 && p.eng.Rand().Float64() < p.cfg.ReorderProb {
		extra := p.cfg.ReorderBy
		if extra <= 0 {
			extra = 4 * delay
		}
		arrival += extra
		p.ReorderedCount++
	}
	arrive := func() {
		p.DeliveredCount++
		if p.cfg.Next != nil {
			p.cfg.Next.Send(size, deliver)
			return
		}
		deliver()
	}
	p.eng.At(arrival, arrive)
	if p.cfg.DupProb > 0 && p.eng.Rand().Float64() < p.cfg.DupProb {
		dupDelay := p.cfg.DupDelay
		if dupDelay <= 0 {
			dupDelay = 2 * time.Millisecond
		}
		p.DuplicatedCount++
		p.eng.At(arrival+dupDelay, arrive)
	}
	return true
}

// Link couples a forward (data) and reverse (ACK) path.
type Link struct {
	Fwd *Path
	Rev *Path
}

// NewLink builds a symmetric-delay link with the forward config and a
// high-capacity reverse path for ACK traffic.
func NewLink(eng *Engine, cfg PathConfig) *Link {
	rev := cfg
	rev.Name = cfg.Name + "-rev"
	rev.Loss = nil                 // ACK loss is modelled only when configured explicitly
	rev.Rate = ConstantRate(125e6) // 1 Gb/s ACK path
	return &Link{Fwd: NewPath(eng, cfg), Rev: NewPath(eng, rev)}
}
