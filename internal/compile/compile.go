// Package compile is the ahead-of-time compilation back-end for ProgMP
// scheduler programs ("alternative 2" in §4.1 of the paper, which
// generates and compiles C functions). The Go analogue compiles the
// checked AST once into a tree of typed closures, so executions pay no
// AST dispatch, no name resolution, and no intermediate allocations:
// FILTER chains compile to fused iterators (late materialization), and
// FILTER→MIN/MAX collapses into a single loop.
package compile

import (
	"fmt"
	"sync"

	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

// Compiled is a compiled scheduler program. It is safe for concurrent
// use with distinct environments; execution frames are pooled so a
// steady-state execution does not allocate.
type Compiled struct {
	stmts    []stmtFn
	numSlots int
	frames   sync.Pool
}

// New compiles a checked program.
func New(info *types.Info) *Compiled {
	c := &compiler{info: info}
	stmts := make([]stmtFn, len(info.Prog.Stmts))
	for i, s := range info.Prog.Stmts {
		stmts[i] = c.compileStmt(s)
	}
	cp := &Compiled{stmts: stmts, numSlots: info.NumSlots}
	cp.frames.New = func() any {
		return &state{slots: make([]value, cp.numSlots)}
	}
	return cp
}

// Exec runs one scheduler execution against env.
//
//progmp:hotpath
//progmp:deterministic
func (cp *Compiled) Exec(env *runtime.Env) {
	st := cp.frames.Get().(*state)
	st.env = env
	for _, s := range cp.stmts {
		//progmp:ignore hotpath statement closures are compiled cold; bodies use the checked Env API and are covered by TestExecZeroAllocSteadyState
		if s(st) {
			break
		}
	}
	st.env = nil
	for i := range st.slots {
		st.slots[i] = value{}
	}
	for i := range st.arena {
		st.arena[i] = nil
	}
	st.arena = st.arena[:0]
	cp.frames.Put(st)
}

// value is a slot value; exactly one field is active per static type.
type value struct {
	i    int64
	b    bool
	pkt  *runtime.PacketView
	sbf  *runtime.SubflowView
	list []*runtime.SubflowView
	q    queueVal
}

// queueVal is a (possibly filtered) queue value.
type queueVal struct {
	base  *runtime.Queue
	preds []predFn
}

type (
	state struct {
		env   *runtime.Env
		slots []value
		// arena backs materialized subflow-list variables; it is
		// truncated (not freed) between executions so steady-state
		// list materialization does not allocate. Slices handed out
		// before a growth keep their old backing array, so growth is
		// safe mid-execution.
		arena []*runtime.SubflowView
	}
	stmtFn  func(*state) bool // true = RETURN unwinding
	intFn   func(*state) int64
	boolFn  func(*state) bool
	pktFn   func(*state) *runtime.PacketView
	sbfFn   func(*state) *runtime.SubflowView
	queueFn func(*state) queueVal
	predFn  func(*state, *runtime.PacketView) bool
	// listFn yields a subflow list, materialized into the state arena.
	// Lists are eager (matching the interpreter's FILTER semantics);
	// consumers loop over the returned slice directly, so no
	// per-execution closures are created — a closure passed through an
	// indirect function value is what the escape analysis cannot keep
	// off the heap.
	listFn func(*state) []*runtime.SubflowView
)

func (q queueVal) each(st *state, yield func(*runtime.PacketView) bool) {
	q.base.All(func(p *runtime.PacketView) bool {
		for _, pred := range q.preds {
			if !pred(st, p) {
				return true
			}
		}
		return yield(p)
	})
}

func (q queueVal) top(st *state) *runtime.PacketView {
	var res *runtime.PacketView
	q.each(st, func(p *runtime.PacketView) bool {
		res = p
		return false
	})
	return res
}

type compiler struct {
	info *types.Info
}

// ---- Statements ----

func (c *compiler) compileStmt(s lang.Stmt) stmtFn {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return c.compileBlock(s.Stmts)
	case *lang.IfStmt:
		cond := c.compileBool(s.Cond)
		then := c.compileBlock(s.Then.Stmts)
		if s.Else == nil {
			return func(st *state) bool {
				if cond(st) {
					return then(st)
				}
				return false
			}
		}
		els := c.compileStmt(s.Else)
		return func(st *state) bool {
			if cond(st) {
				return then(st)
			}
			return els(st)
		}
	case *lang.VarDecl:
		sym := c.info.Defs[s]
		slot := sym.Slot
		switch sym.Type {
		case types.Int:
			f := c.compileInt(s.Init)
			return func(st *state) bool { st.slots[slot] = value{i: f(st)}; return false }
		case types.Bool:
			f := c.compileBool(s.Init)
			return func(st *state) bool { st.slots[slot] = value{b: f(st)}; return false }
		case types.Packet:
			f := c.compilePkt(s.Init)
			return func(st *state) bool { st.slots[slot] = value{pkt: f(st)}; return false }
		case types.Subflow:
			f := c.compileSbf(s.Init)
			return func(st *state) bool { st.slots[slot] = value{sbf: f(st)}; return false }
		case types.SubflowList:
			it := c.compileList(s.Init)
			return func(st *state) bool {
				st.slots[slot] = value{list: it(st)}
				return false
			}
		case types.PacketQueue:
			f := c.compileQueue(s.Init)
			return func(st *state) bool { st.slots[slot] = value{q: f(st)}; return false }
		}
		panic(fmt.Sprintf("compile: VAR of type %s", sym.Type))
	case *lang.ForeachStmt:
		sym := c.info.Defs[s]
		slot := sym.Slot
		iter := c.compileList(s.Iter)
		body := c.compileBlock(s.Body.Stmts)
		return func(st *state) bool {
			for _, sbf := range iter(st) {
				st.slots[slot] = value{sbf: sbf}
				if body(st) {
					return true
				}
			}
			return false
		}
	case *lang.SetStmt:
		reg := s.Reg
		f := c.compileInt(s.Value)
		return func(st *state) bool { st.env.SetReg(reg, f(st)); return false }
	case *lang.GSetStmt:
		reg := s.Reg
		f := c.compileInt(s.Value)
		return func(st *state) bool { st.env.SetGlobal(reg, f(st)); return false }
	case *lang.PushStmt:
		target := c.compileSbf(s.Target)
		arg := c.compilePkt(s.Arg)
		site := int32(s.PushAt.Line)
		return func(st *state) bool {
			t, p := target(st), arg(st)
			st.env.Site = site
			st.env.Push(t, p)
			return false
		}
	case *lang.DropStmt:
		arg := c.compilePkt(s.Arg)
		site := int32(s.DropPos.Line)
		return func(st *state) bool {
			p := arg(st)
			st.env.Site = site
			st.env.Drop(p)
			return false
		}
	case *lang.ReturnStmt:
		return func(*state) bool { return true }
	}
	panic(fmt.Sprintf("compile: unhandled statement %T", s))
}

func (c *compiler) compileBlock(stmts []lang.Stmt) stmtFn {
	fns := make([]stmtFn, len(stmts))
	for i, s := range stmts {
		fns[i] = c.compileStmt(s)
	}
	return func(st *state) bool {
		for _, f := range fns {
			if f(st) {
				return true
			}
		}
		return false
	}
}

// ---- Int expressions ----

func (c *compiler) compileInt(e lang.Expr) intFn {
	switch e := e.(type) {
	case *lang.NumberLit:
		v := e.Val
		return func(*state) int64 { return v }
	case *lang.RegExpr:
		idx := e.Index
		return func(st *state) int64 { return st.env.Reg(idx) }
	case *lang.GlobalExpr:
		idx := e.Index
		return func(st *state) int64 { return st.env.Global(idx) }
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) int64 { return st.slots[slot].i }
	case *lang.UnaryExpr:
		x := c.compileInt(e.X)
		return func(st *state) int64 { return -x(st) }
	case *lang.BinaryExpr:
		x := c.compileInt(e.X)
		y := c.compileInt(e.Y)
		switch e.Op {
		case lang.PLUS:
			return func(st *state) int64 { return x(st) + y(st) }
		case lang.MINUS:
			return func(st *state) int64 { return x(st) - y(st) }
		case lang.STAR:
			return func(st *state) int64 { return x(st) * y(st) }
		case lang.SLASH:
			return func(st *state) int64 {
				d := y(st)
				if d == 0 {
					return 0
				}
				return x(st) / d
			}
		case lang.PERCENT:
			return func(st *state) int64 {
				d := y(st)
				if d == 0 {
					return 0
				}
				return x(st) % d
			}
		}
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberSbfInt:
			recv := c.compileSbf(e.Recv)
			prop := m.SbfInt
			return func(st *state) int64 {
				sbf := recv(st)
				if sbf == nil {
					return 0
				}
				return sbf.Ints[prop]
			}
		case types.MemberPktInt:
			recv := c.compilePkt(e.Recv)
			prop := m.PktInt
			return func(st *state) int64 {
				p := recv(st)
				if p == nil {
					return 0
				}
				return p.Ints[prop]
			}
		case types.MemberCount:
			if m.RecvType == types.SubflowList {
				iter := c.compileList(e.Recv)
				return func(st *state) int64 {
					return int64(len(iter(st)))
				}
			}
			q := c.compileQueue(e.Recv)
			return func(st *state) int64 {
				var n int64
				q(st).each(st, func(*runtime.PacketView) bool { n++; return true })
				return n
			}
		case types.MemberBytes:
			q := c.compileQueue(e.Recv)
			return func(st *state) int64 {
				var n int64
				q(st).each(st, func(p *runtime.PacketView) bool { n += p.Ints[runtime.PktSize]; return true })
				return n
			}
		}
	}
	panic(fmt.Sprintf("compile: unhandled int expression %T (%s)", e, lang.FormatExpr(e)))
}

// ---- Bool expressions ----

func (c *compiler) compileBool(e lang.Expr) boolFn {
	switch e := e.(type) {
	case *lang.BoolLit:
		v := e.Val
		return func(*state) bool { return v }
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) bool { return st.slots[slot].b }
	case *lang.UnaryExpr:
		x := c.compileBool(e.X)
		return func(st *state) bool { return !x(st) }
	case *lang.BinaryExpr:
		return c.compileBoolBinary(e)
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberSbfBool:
			recv := c.compileSbf(e.Recv)
			prop := m.SbfBool
			return func(st *state) bool {
				sbf := recv(st)
				if sbf == nil {
					return false
				}
				return sbf.Bools[prop]
			}
		case types.MemberHasWindowFor:
			recv := c.compileSbf(e.Recv)
			arg := c.compilePkt(e.Args[0])
			return func(st *state) bool { return recv(st).HasWindowFor(arg(st)) }
		case types.MemberSentOn:
			recv := c.compilePkt(e.Recv)
			arg := c.compileSbf(e.Args[0])
			return func(st *state) bool { return recv(st).SentOn(arg(st)) }
		case types.MemberEmpty:
			if m.RecvType == types.SubflowList {
				iter := c.compileList(e.Recv)
				return func(st *state) bool {
					return len(iter(st)) == 0
				}
			}
			q := c.compileQueue(e.Recv)
			return func(st *state) bool { return q(st).top(st) == nil }
		}
	}
	panic(fmt.Sprintf("compile: unhandled bool expression %T (%s)", e, lang.FormatExpr(e)))
}

func (c *compiler) compileBoolBinary(e *lang.BinaryExpr) boolFn {
	switch e.Op {
	case lang.AND:
		x := c.compileBool(e.X)
		y := c.compileBool(e.Y)
		return func(st *state) bool { return x(st) && y(st) }
	case lang.OR:
		x := c.compileBool(e.X)
		y := c.compileBool(e.Y)
		return func(st *state) bool { return x(st) || y(st) }
	case lang.LT, lang.LTE, lang.GT, lang.GTE:
		x := c.compileInt(e.X)
		y := c.compileInt(e.Y)
		switch e.Op {
		case lang.LT:
			return func(st *state) bool { return x(st) < y(st) }
		case lang.LTE:
			return func(st *state) bool { return x(st) <= y(st) }
		case lang.GT:
			return func(st *state) bool { return x(st) > y(st) }
		default:
			return func(st *state) bool { return x(st) >= y(st) }
		}
	case lang.EQ, lang.NEQ:
		eq := c.compileEq(e)
		if e.Op == lang.EQ {
			return eq
		}
		return func(st *state) bool { return !eq(st) }
	}
	panic(fmt.Sprintf("compile: unhandled bool binary %s", e.Op))
}

func (c *compiler) compileEq(e *lang.BinaryExpr) boolFn {
	// Operand type drives the comparison. NULL literals were typed by
	// the checker to match the other side.
	t := c.info.TypeOf(e.X)
	if t == types.Invalid {
		t = c.info.TypeOf(e.Y)
	}
	switch t {
	case types.Packet:
		x := c.compilePkt(e.X)
		y := c.compilePkt(e.Y)
		return func(st *state) bool { return x(st) == y(st) }
	case types.Subflow:
		x := c.compileSbf(e.X)
		y := c.compileSbf(e.Y)
		return func(st *state) bool { return x(st) == y(st) }
	case types.Bool:
		x := c.compileBool(e.X)
		y := c.compileBool(e.Y)
		return func(st *state) bool { return x(st) == y(st) }
	default:
		x := c.compileInt(e.X)
		y := c.compileInt(e.Y)
		return func(st *state) bool { return x(st) == y(st) }
	}
}

// ---- Packet expressions ----

func (c *compiler) compilePkt(e lang.Expr) pktFn {
	switch e := e.(type) {
	case *lang.NullLit:
		return func(*state) *runtime.PacketView { return nil }
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) *runtime.PacketView { return st.slots[slot].pkt }
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberTop:
			q := c.compileQueue(e.Recv)
			return func(st *state) *runtime.PacketView { return q(st).top(st) }
		case types.MemberPop:
			q := c.compileQueue(e.Recv)
			site := int32(e.Position().Line)
			return func(st *state) *runtime.PacketView {
				qv := q(st)
				p := qv.top(st)
				if p != nil {
					st.env.Site = site
					st.env.Pop(qv.base.ID(), p)
				}
				return p
			}
		case types.MemberMin, types.MemberMax:
			q := c.compileQueue(e.Recv)
			lam := e.Args[0].(*lang.Lambda)
			slot := c.info.Defs[lam].Slot
			key := c.compileInt(lam.Body)
			max := m.Kind == types.MemberMax
			return func(st *state) *runtime.PacketView {
				var best *runtime.PacketView
				var bestKey int64
				q(st).each(st, func(p *runtime.PacketView) bool {
					st.slots[slot] = value{pkt: p}
					k := key(st)
					if best == nil || (max && k > bestKey) || (!max && k < bestKey) {
						best, bestKey = p, k
					}
					return true
				})
				return best
			}
		}
	}
	panic(fmt.Sprintf("compile: unhandled packet expression %T (%s)", e, lang.FormatExpr(e)))
}

// ---- Subflow expressions ----

func (c *compiler) compileSbf(e lang.Expr) sbfFn {
	switch e := e.(type) {
	case *lang.NullLit:
		return func(*state) *runtime.SubflowView { return nil }
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) *runtime.SubflowView { return st.slots[slot].sbf }
	case *lang.MemberExpr:
		m := c.info.Members[e]
		switch m.Kind {
		case types.MemberMin, types.MemberMax:
			iter := c.compileList(e.Recv)
			lam := e.Args[0].(*lang.Lambda)
			slot := c.info.Defs[lam].Slot
			key := c.compileInt(lam.Body)
			max := m.Kind == types.MemberMax
			return func(st *state) *runtime.SubflowView {
				var best *runtime.SubflowView
				var bestKey int64
				for _, sbf := range iter(st) {
					st.slots[slot] = value{sbf: sbf}
					k := key(st)
					if best == nil || (max && k > bestKey) || (!max && k < bestKey) {
						best, bestKey = sbf, k
					}
				}
				return best
			}
		case types.MemberGet:
			iter := c.compileList(e.Recv)
			idx := c.compileInt(e.Args[0])
			return func(st *state) *runtime.SubflowView {
				list := iter(st)
				n := int64(len(list))
				if n == 0 {
					return nil
				}
				// GET wraps out-of-range indices: graceful by design.
				i := ((idx(st) % n) + n) % n
				return list[i]
			}
		}
	}
	panic(fmt.Sprintf("compile: unhandled subflow expression %T (%s)", e, lang.FormatExpr(e)))
}

// ---- Subflow lists ----

func (c *compiler) compileList(e lang.Expr) listFn {
	switch e := e.(type) {
	case *lang.EntityExpr:
		return func(st *state) []*runtime.SubflowView {
			return st.env.SubflowViews
		}
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) []*runtime.SubflowView {
			return st.slots[slot].list
		}
	case *lang.MemberExpr:
		m := c.info.Members[e]
		if m.Kind == types.MemberFilter {
			inner := c.compileList(e.Recv)
			lam := e.Args[0].(*lang.Lambda)
			slot := c.info.Defs[lam].Slot
			pred := c.compileBool(lam.Body)
			return func(st *state) []*runtime.SubflowView {
				src := inner(st)
				start := len(st.arena)
				for _, sbf := range src {
					st.slots[slot] = value{sbf: sbf}
					if pred(st) {
						st.arena = append(st.arena, sbf)
					}
				}
				return st.arena[start:len(st.arena):len(st.arena)]
			}
		}
	}
	panic(fmt.Sprintf("compile: unhandled subflow list expression %T (%s)", e, lang.FormatExpr(e)))
}

// ---- Queue expressions ----

func (c *compiler) compileQueue(e lang.Expr) queueFn {
	switch e := e.(type) {
	case *lang.EntityExpr:
		id := e.Kind
		return func(st *state) queueVal {
			switch id {
			case lang.EntityQ:
				return queueVal{base: st.env.SendQ}
			case lang.EntityQU:
				return queueVal{base: st.env.UnackedQ}
			default:
				return queueVal{base: st.env.ReinjectQ}
			}
		}
	case *lang.Ident:
		slot := c.info.Uses[e].Slot
		return func(st *state) queueVal { return st.slots[slot].q }
	case *lang.MemberExpr:
		m := c.info.Members[e]
		if m.Kind == types.MemberFilter {
			inner := c.compileQueue(e.Recv)
			lam := e.Args[0].(*lang.Lambda)
			slot := c.info.Defs[lam].Slot
			body := c.compileBool(lam.Body)
			pred := func(st *state, p *runtime.PacketView) bool {
				st.slots[slot] = value{pkt: p}
				return body(st)
			}
			if staticChainPreds(c.info, e.Recv) {
				// The receiver chain is statically known (entities and
				// nested filters only), so the predicate slice can be
				// composed once at compile time: zero per-execution
				// allocations.
				preds := c.staticPreds(e)
				return func(st *state) queueVal {
					qv := inner(st)
					return queueVal{base: qv.base, preds: preds}
				}
			}
			return func(st *state) queueVal {
				qv := inner(st)
				preds := make([]predFn, 0, len(qv.preds)+1)
				preds = append(preds, qv.preds...)
				preds = append(preds, pred)
				return queueVal{base: qv.base, preds: preds}
			}
		}
	}
	panic(fmt.Sprintf("compile: unhandled queue expression %T (%s)", e, lang.FormatExpr(e)))
}

// staticChainPreds reports whether a queue expression's filter chain is
// statically known (entities and nested filters, no variables).
func staticChainPreds(info *types.Info, e lang.Expr) bool {
	switch e := e.(type) {
	case *lang.EntityExpr:
		return true
	case *lang.MemberExpr:
		if info.Members[e].Kind == types.MemberFilter {
			return staticChainPreds(info, e.Recv)
		}
	}
	return false
}

// staticPreds compiles a statically-known filter chain into one shared
// predicate slice (outermost last). Each lambda is compiled exactly
// once; the returned slice is immutable and shared by all executions.
func (c *compiler) staticPreds(e lang.Expr) []predFn {
	m, ok := e.(*lang.MemberExpr)
	if !ok {
		return nil
	}
	inner := c.staticPreds(m.Recv)
	lam := m.Args[0].(*lang.Lambda)
	slot := c.info.Defs[lam].Slot
	body := c.compileBool(lam.Body)
	pred := func(st *state, p *runtime.PacketView) bool {
		st.slots[slot] = value{pkt: p}
		return body(st)
	}
	out := make([]predFn, 0, len(inner)+1)
	out = append(out, inner...)
	out = append(out, pred)
	return out
}
