package compile

import (
	"math/rand"
	"reflect"
	"testing"

	"progmp/internal/envtest"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

func mustInfo(t *testing.T, src string) *types.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return info
}

func TestCompiledMinRTT(t *testing.T) {
	env := envtest.TwoSubflowEnv(2)
	New(mustInfo(t, `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
		SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
	}`)).Exec(env)
	if n := env.PushCount(); n != 1 {
		t.Fatalf("push count = %d, want 1", n)
	}
	if env.Actions[1].Subflow != env.SubflowViews[0].Handle {
		t.Errorf("pushed on wrong subflow")
	}
}

func TestCompiledFusedFilterMin(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{
			{ID: 0, RTT: 10, Lossy: true},
			{ID: 1, RTT: 20},
			{ID: 2, RTT: 30},
		},
		Q: []envtest.PktSpec{{Seq: 0}},
	}.Build()
	New(mustInfo(t, `SUBFLOWS.FILTER(s => !s.LOSSY).MIN(s => s.RTT).PUSH(Q.POP());`)).Exec(env)
	push := env.Actions[1]
	if push.Subflow != env.SubflowViews[1].Handle {
		t.Errorf("fused FILTER.MIN picked subflow %d, want the non-lossy RTT-20 one", push.Subflow)
	}
}

func TestCompiledQueueVarAndPop(t *testing.T) {
	env := envtest.EnvSpec{
		Subflows: []envtest.SbfSpec{{ID: 0}},
		Q: []envtest.PktSpec{
			{Seq: 0, Size: 50}, {Seq: 1, Size: 2000}, {Seq: 2, Size: 60},
		},
	}.Build()
	New(mustInfo(t, `VAR small = Q.FILTER(p => p.SIZE < 100);
SET(R1, small.COUNT);
SUBFLOWS.GET(0).PUSH(small.POP());
SET(R2, small.COUNT);
SET(R3, small.TOP.SEQ);`)).Exec(env)
	if env.Reg(0) != 2 {
		t.Errorf("R1 = %d, want 2", env.Reg(0))
	}
	if env.Reg(1) != 1 {
		t.Errorf("R2 = %d, want 1 (POP through filtered view must hide the packet)", env.Reg(1))
	}
	if env.Reg(2) != 2 {
		t.Errorf("R3 = %d, want seq 2", env.Reg(2))
	}
}

// diffEnvPair builds two identical environments from the same seed so
// both back-ends see the same snapshot with independent action state.
func diffEnvPair(seed int64) (*runtime.Env, *runtime.Env) {
	return envtest.RandomEnv(rand.New(rand.NewSource(seed))),
		envtest.RandomEnv(rand.New(rand.NewSource(seed)))
}

// TestDifferentialInterpVsCompiled drives random well-typed programs
// through the interpreter and the compiled back-end and requires
// identical observable behaviour: the action queue and final registers.
func TestDifferentialInterpVsCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		src := envtest.GenProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("generated program does not check: %v\n%s", err, src)
		}
		envSeed := rng.Int63()
		envA, envB := diffEnvPair(envSeed)
		interp.New(info).Exec(envA)
		New(info).Exec(envB)
		if !reflect.DeepEqual(envA.Actions, envB.Actions) {
			t.Fatalf("action divergence on program:\n%s\ninterp:   %v\ncompiled: %v", src, envA.Actions, envB.Actions)
		}
		if *envA.Regs != *envB.Regs {
			t.Fatalf("register divergence on program:\n%s\ninterp:   %v\ncompiled: %v", src, *envA.Regs, *envB.Regs)
		}
	}
}

func TestDifferentialPaperSchedulers(t *testing.T) {
	schedulers := map[string]string{
		"minRTT": `IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
			SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.QUEUED + sbf.SKBS_IN_FLIGHT).MIN(sbf => sbf.RTT).PUSH(Q.POP());
		}`,
		"roundRobin": `VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
		IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
		IF (!Q.EMPTY) {
			VAR sbf = sbfs.GET(R1);
			IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) { sbf.PUSH(Q.POP()); }
			SET(R1, R1 + 1);
		}`,
		"redundant": `IF (!Q.EMPTY) {
			VAR skb = Q.POP();
			FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }
		}`,
		"opportunisticRedundant": `VAR sbfCandidates = SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
		FOREACH (VAR sbf IN sbfCandidates) {
			VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
			IF (skb != NULL) { sbf.PUSH(skb); } ELSE { sbf.PUSH(Q.POP()); }
		}`,
	}
	for name, src := range schedulers {
		t.Run(name, func(t *testing.T) {
			info := mustInfo(t, src)
			for seed := int64(0); seed < 50; seed++ {
				envA, envB := diffEnvPair(seed)
				interp.New(info).Exec(envA)
				New(info).Exec(envB)
				if !reflect.DeepEqual(envA.Actions, envB.Actions) {
					t.Fatalf("seed %d: actions diverge\ninterp:   %v\ncompiled: %v", seed, envA.Actions, envB.Actions)
				}
				if *envA.Regs != *envB.Regs {
					t.Fatalf("seed %d: registers diverge", seed)
				}
			}
		})
	}
}
