package experiments

import (
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// TargetRTTResult summarizes the §5.4 target-RTT scenario.
type TargetRTTResult struct {
	Scheduler string
	// MeanResponse and P95Response are request/response latencies.
	MeanResponse time.Duration
	P95Response  time.Duration
	// LTEBytes is the non-preferred subflow usage.
	LTEBytes int64
	// Responses completed.
	Responses int
}

// TargetRTT reproduces the §5.4 target-RTT evaluation: interactive
// request/response traffic (a voice-assistant pattern) over WiFi whose
// RTT spikes far above the tolerable bound for a period — the
// situation the [13] measurement study found in ~15% of samples. The
// TargetRTT scheduler (bound in R1) keeps latency low by selectively
// using the non-preferred LTE subflow during the spike; the default
// scheduler with LTE in backup mode rides out the spike on WiFi.
func TargetRTT(scheduler string, backend core.Backend, seed int64) (TargetRTTResult, error) {
	// WiFi RTT: 20 ms normally, 200 ms during [2 s, 6 s).
	wifiDelay := func(at time.Duration) time.Duration {
		if at >= 2*time.Second && at < 6*time.Second {
			return 100 * time.Millisecond
		}
		return 10 * time.Millisecond
	}
	paths := []PathSpec{
		{Name: "wifi", Rate: netsim.ConstantRate(3e6), DelayFn: wifiDelay},
		{Name: "lte", Rate: netsim.ConstantRate(6e6), Delay: 20 * time.Millisecond, Backup: true},
	}
	s, err := NewScenario(seed, mptcp.Config{}, backend, scheduler, paths...)
	if err != nil {
		return TargetRTTResult{}, err
	}
	s.Conn.SetRegister(schedlib.RegTarget, 50000) // 50 ms tolerable RTT

	rec := netsim.NewRecorder()
	const reqSize = 8 << 10
	var delivered int64
	type pending struct {
		end     int64
		started time.Duration
	}
	var reqs []pending
	s.Conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		for len(reqs) > 0 && delivered >= reqs[0].end {
			rec.Record("response", at, (at-reqs[0].started).Seconds()*1e6)
			reqs = reqs[1:]
		}
	})
	var sent int64
	for at := 100 * time.Millisecond; at < 8*time.Second; at += 200 * time.Millisecond {
		at := at
		s.Eng.At(at, func() {
			sent += reqSize
			reqs = append(reqs, pending{end: sent, started: at})
			s.Conn.Send(reqSize, 0)
		})
	}
	s.Eng.RunUntil(30 * time.Second)
	res := TargetRTTResult{
		Scheduler:    scheduler,
		MeanResponse: time.Duration(rec.Mean("response")) * time.Microsecond,
		P95Response:  time.Duration(rec.Percentile("response", 0.95)) * time.Microsecond,
		LTEBytes:     s.Conn.Subflows()[1].BytesSent,
		Responses:    len(rec.Series("response")),
	}
	return res, nil
}
