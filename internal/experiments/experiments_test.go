package experiments

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
)

// TestStreamingShapes asserts the Fig. 1 / Fig. 13 relations:
//   - the default scheduler leaks a substantial share of the 1 MB/s
//     phase onto LTE (paper: ~30%);
//   - the backup variant starves in the 4 MB/s phase (WiFi alone
//     cannot sustain it);
//   - TAP keeps the LTE share minimal in the low phase while
//     sustaining the high phase.
func TestStreamingShapes(t *testing.T) {
	def, err := Streaming(StreamingDefault, core.BackendCompiled, 3)
	if err != nil {
		t.Fatal(err)
	}
	bak, err := Streaming(StreamingBackup, core.BackendCompiled, 3)
	if err != nil {
		t.Fatal(err)
	}
	tap, err := Streaming(StreamingTAP, core.BackendCompiled, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatStreaming([]StreamingResult{def, bak, tap}))

	if def.LowPhaseLTEShare < 0.10 {
		t.Errorf("default scheduler LTE share in the 1MB/s phase = %.1f%%, want a substantial leak (paper ≈30%%)",
			def.LowPhaseLTEShare*100)
	}
	if bak.LowPhaseLTEShare > 0.02 {
		t.Errorf("backup mode should not use LTE in the low phase, got %.1f%%", bak.LowPhaseLTEShare*100)
	}
	if bak.HighPhaseGoodput > 3.4e6 {
		t.Errorf("backup mode sustained %.2f MB/s in the 4MB/s phase; WiFi alone must fall short", bak.HighPhaseGoodput/1e6)
	}
	if tap.LowPhaseLTEShare > def.LowPhaseLTEShare/2 {
		t.Errorf("TAP low-phase LTE share %.1f%% should be far below default %.1f%%",
			tap.LowPhaseLTEShare*100, def.LowPhaseLTEShare*100)
	}
	if tap.HighPhaseGoodput < 3.5e6 {
		t.Errorf("TAP failed to sustain the 4MB/s phase: %.2f MB/s", tap.HighPhaseGoodput/1e6)
	}
	if tap.LTEBytes >= def.LTEBytes {
		t.Errorf("TAP total LTE usage (%d) should undercut default (%d)", tap.LTEBytes, def.LTEBytes)
	}
}

// TestRedundancyFCTShapes asserts the Fig. 10b ranking for short flows
// under 2% loss: every redundancy flavor beats the default scheduler,
// and RedundantIfNoQ is best overall.
func TestRedundancyFCTShapes(t *testing.T) {
	points, err := RedundancyFCT(core.BackendCompiled, []int{16, 64, 256}, RedundancySchedulers, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFCT(points, RedundancySchedulers))
	mean := map[string]map[int]time.Duration{}
	for _, p := range points {
		if mean[p.Scheduler] == nil {
			mean[p.Scheduler] = map[int]time.Duration{}
		}
		mean[p.Scheduler][p.FlowKB] = p.MeanFCT
	}
	// "All redundant schedulers outperform the default scheduler for
	// small flows."
	for _, red := range []string{"redundant", "opportunisticRedundant", "redundantIfNoQ"} {
		if mean[red][16] >= mean["minRTT"][16] {
			t.Errorf("%s (%v) should beat minRTT (%v) at 16 KB under loss",
				red, mean[red][16], mean["minRTT"][16])
		}
	}
	// "For increasing flow sizes, the OpportunisticRedundant scheduler
	// beats the existing redundant scheduler as full redundancy
	// becomes more expensive."
	if mean["opportunisticRedundant"][256] >= mean["redundant"][256] {
		t.Errorf("opportunisticRedundant (%v) should beat redundant (%v) at 256 KB",
			mean["opportunisticRedundant"][256], mean["redundant"][256])
	}
	// "Our RedundantIfNoQ scheduler ... outperforms all depicted
	// schedulers" for the short-flow range.
	for _, kb := range []int{16, 64} {
		for _, other := range []string{"minRTT", "redundant", "opportunisticRedundant"} {
			if mean["redundantIfNoQ"][kb] >= mean[other][kb] {
				t.Errorf("redundantIfNoQ (%v) should outperform %s (%v) at %d KB",
					mean["redundantIfNoQ"][kb], other, mean[other][kb], kb)
			}
		}
	}
	// RedundantIfNoQ outperforms the full redundant scheduler overall.
	var ifNoQ, full time.Duration
	for _, kb := range []int{16, 64, 256} {
		ifNoQ += mean["redundantIfNoQ"][kb]
		full += mean["redundant"][kb]
	}
	if ifNoQ >= full {
		t.Errorf("redundantIfNoQ (%v total) should outperform redundant (%v total)", ifNoQ, full)
	}
}

// TestRedundancyThroughputShapes asserts Fig. 10c: the new schedulers
// achieve near-maximum bulk throughput while the full redundant
// scheduler is bounded by a single path.
func TestRedundancyThroughputShapes(t *testing.T) {
	points, err := RedundancyThroughput(core.BackendCompiled, RedundancySchedulers, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatThroughput(points))
	get := func(sched, wl string) float64 {
		for _, p := range points {
			if p.Scheduler == sched && p.Workload == wl {
				return p.Normalized
			}
		}
		t.Fatalf("missing %s/%s", sched, wl)
		return 0
	}
	if get("minRTT", "bulk") < 1.4 {
		t.Errorf("default bulk throughput %.2fx single path, want clear aggregation", get("minRTT", "bulk"))
	}
	if get("redundant", "bulk") > 1.3 {
		t.Errorf("full redundancy bulk throughput %.2fx, want bounded near a single path", get("redundant", "bulk"))
	}
	for _, sched := range []string{"opportunisticRedundant", "redundantIfNoQ"} {
		if get(sched, "bulk") < 1.5 {
			t.Errorf("%s bulk throughput %.2fx, want near the maximum (paper: 'nearly the maximum achievable throughput')",
				sched, get(sched, "bulk"))
		}
	}
}

// TestCompensationShapes asserts Fig. 12: the default's FCT grows with
// the RTT ratio, Compensating stays nearly flat (at overhead cost),
// and SelectiveCompensation switches behaviour around ratio 2.
func TestCompensationShapes(t *testing.T) {
	ratios := []float64{1, 2, 4, 6}
	points, err := CompensationSweep(core.BackendCompiled, ratios, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatCompensation(points))
	get := func(sched string, ratio float64) CompensationPoint {
		for _, p := range points {
			if p.Scheduler == sched && p.RTTRatio == ratio {
				return p
			}
		}
		t.Fatalf("missing %s/%v", sched, ratio)
		return CompensationPoint{}
	}
	defGrowth := float64(get("minRTT", 6).MeanFCT) / float64(get("minRTT", 1).MeanFCT)
	compGrowth := float64(get("compensating", 6).MeanFCT) / float64(get("compensating", 1).MeanFCT)
	if defGrowth < 1.5 {
		t.Errorf("default FCT grew only %.2fx from ratio 1 to 6; scenario too easy", defGrowth)
	}
	if compGrowth > defGrowth*0.75 {
		t.Errorf("compensating FCT growth %.2fx should stay well below default %.2fx", compGrowth, defGrowth)
	}
	if get("compensating", 6).MeanFCT >= get("minRTT", 6).MeanFCT {
		t.Errorf("compensating must beat default at high RTT ratio")
	}
	// Overhead: compensating costs extra wire bytes, and the extra
	// cost shrinks as the ratio grows (Fig. 12 middle).
	if get("compensating", 1).OverheadVsDefault <= 1.0 {
		t.Errorf("compensating at ratio 1 should cost overhead, got %.2fx", get("compensating", 1).OverheadVsDefault)
	}
	if get("compensating", 6).OverheadVsDefault >= get("compensating", 1).OverheadVsDefault {
		t.Errorf("compensation overhead should decrease with the RTT ratio: %.2fx at 1 vs %.2fx at 6",
			get("compensating", 1).OverheadVsDefault, get("compensating", 6).OverheadVsDefault)
	}
	// Selective ≈ default below the threshold, ≈ compensating above.
	selLow := get("selectiveCompensation", 1)
	if selLow.OverheadVsDefault > 1.15 {
		t.Errorf("selective compensation at ratio 1 should track default overhead, got %.2fx", selLow.OverheadVsDefault)
	}
	selHigh := get("selectiveCompensation", 6)
	if float64(selHigh.MeanFCT) > float64(get("minRTT", 6).MeanFCT)*0.9 {
		t.Errorf("selective compensation at ratio 6 should gain most of the FCT benefit")
	}
}

// TestHTTP2Shapes asserts Fig. 14: the HTTP/2-aware scheduler keeps
// the dependency retrieval time low as the WiFi delay grows and uses
// far less of the metered LTE subflow.
func TestHTTP2Shapes(t *testing.T) {
	delays := []time.Duration{0, 40 * time.Millisecond, 80 * time.Millisecond}
	points, err := HTTP2Sweep(core.BackendCompiled, delays, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatHTTP2(points))
	get := func(sched string, extra time.Duration) HTTP2Point {
		for _, p := range points {
			if p.Scheduler == sched && p.WiFiExtraDelay == extra {
				return p
			}
		}
		t.Fatalf("missing %s/%v", sched, extra)
		return HTTP2Point{}
	}
	for _, d := range delays {
		def, aware := get("minRTT", d), get("http2Aware", d)
		// Within 5%: at moderate delays both route dependencies over
		// the same fast path and only the tail packet's placement
		// jitters.
		if float64(aware.DependencyRetrieved) > float64(def.DependencyRetrieved)*1.05 {
			t.Errorf("+%v: aware dependency retrieval %v should not exceed default %v",
				d, aware.DependencyRetrieved, def.DependencyRetrieved)
		}
		if aware.LTEBytes >= def.LTEBytes/2 {
			t.Errorf("+%v: aware LTE bytes %d should be far below default %d", d, aware.LTEBytes, def.LTEBytes)
		}
	}
	// At the highest WiFi delay the aware scheduler must avoid the
	// slow path for the initial packets and keep dependency retrieval
	// substantially faster (the Fig. 14 headline).
	worst := delays[len(delays)-1]
	if def, aware := get("minRTT", worst), get("http2Aware", worst); float64(aware.DependencyRetrieved) > 0.7*float64(def.DependencyRetrieved) {
		t.Errorf("+%v: aware dependency retrieval %v should be well below default %v",
			worst, aware.DependencyRetrieved, def.DependencyRetrieved)
	}
	// The aware scheduler's full load time must stay in the same
	// ballpark (preference-awareness must not wreck the load).
	for _, d := range delays {
		def, aware := get("minRTT", d), get("http2Aware", d)
		if aware.FullLoad > def.FullLoad*3 {
			t.Errorf("+%v: aware full load %v degraded too much vs default %v", d, aware.FullLoad, def.FullLoad)
		}
	}
}

// TestHandoverShapes asserts §5.2: the handover-aware scheduler
// shortens the delivery interruption after a WiFi collapse.
func TestHandoverShapes(t *testing.T) {
	def, err := Handover("minRTT", core.BackendCompiled, 9)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Handover("handoverAware", core.BackendCompiled, 9)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default: interruption=%v fct=%v; aware: interruption=%v fct=%v",
		def.Interruption, def.FCT, aware.Interruption, aware.FCT)
	if !def.Completed || !aware.Completed {
		t.Fatalf("handover transfers must complete (default %v, aware %v)", def.Completed, aware.Completed)
	}
	if aware.Interruption > def.Interruption {
		t.Errorf("handover-aware interruption %v should not exceed default %v", aware.Interruption, def.Interruption)
	}
}

// TestTargetRTTShapes asserts §5.4: under WiFi RTT spikes, the
// TargetRTT scheduler keeps tail latency below the default-with-backup
// configuration while still preserving preferences outside the spike.
func TestTargetRTTShapes(t *testing.T) {
	def, err := TargetRTT("minRTT", core.BackendCompiled, 13)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := TargetRTT("targetRTT", core.BackendCompiled, 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default: mean=%v p95=%v lte=%d; targetRTT: mean=%v p95=%v lte=%d",
		def.MeanResponse, def.P95Response, def.LTEBytes,
		aware.MeanResponse, aware.P95Response, aware.LTEBytes)
	if def.Responses == 0 || aware.Responses == 0 {
		t.Fatal("no responses measured")
	}
	if aware.P95Response >= def.P95Response {
		t.Errorf("targetRTT p95 %v should beat default-with-backup %v during RTT spikes",
			aware.P95Response, def.P95Response)
	}
	if aware.LTEBytes == 0 {
		t.Errorf("targetRTT never engaged LTE during the spike")
	}
}

// TestReceiverComparisonShapes asserts §4.2: the optimized receiver
// delivers no later and holds nothing at the subflow level.
func TestReceiverComparisonShapes(t *testing.T) {
	results, err := ReceiverComparison(core.BackendCompiled, 17)
	if err != nil {
		t.Fatal(err)
	}
	var legacy, opt ReceiverResult
	for _, r := range results {
		if r.Mode == mptcp.ReceiverLegacy {
			legacy = r
		} else {
			opt = r
		}
	}
	t.Logf("legacy: mean=%v fct=%v held=%d; optimized: mean=%v fct=%v",
		legacy.MeanDeliveryLatency, legacy.FCT, legacy.HeldSegments,
		opt.MeanDeliveryLatency, opt.FCT)
	if legacy.HeldSegments == 0 {
		t.Errorf("legacy receiver held no segments; scenario generated no subflow gaps")
	}
	if opt.HeldSegments != 0 {
		t.Errorf("optimized receiver must not hold segments at the subflow level")
	}
	if opt.MeanDeliveryLatency > legacy.MeanDeliveryLatency {
		t.Errorf("optimized mean delivery latency %v exceeds legacy %v",
			opt.MeanDeliveryLatency, legacy.MeanDeliveryLatency)
	}
}

// TestOverheadShapes asserts Fig. 9 top: all programmable back-ends
// cost more than native, the interpreter is the slowest, and the
// compiled back-ends narrow the gap.
func TestOverheadShapes(t *testing.T) {
	results, err := ExecutionOverhead(20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatOverhead(results))
	byKey := map[string]OverheadResult{}
	for _, r := range results {
		byKey[r.Backend+"/"+itoa(r.Subflows)] = r
	}
	for _, n := range []string{"2", "4"} {
		interp := byKey["interpreter/"+n]
		compiled := byKey["compiled/"+n]
		if interp.RelativeToNative < 1.0 {
			t.Errorf("%s subflows: interpreter (%.0f%%) should cost more than native", n, interp.RelativeToNative*100)
		}
		if compiled.NsPerOp > interp.NsPerOp {
			t.Errorf("%s subflows: compiled (%.0fns) should beat the interpreter (%.0fns)",
				n, compiled.NsPerOp, interp.NsPerOp)
		}
	}
}

func itoa(n int) string {
	if n == 2 {
		return "2"
	}
	return "4"
}

// TestThroughputParityShapes asserts Fig. 9 bottom: goodput unchanged
// across back-ends (within 2%).
func TestThroughputParityShapes(t *testing.T) {
	results, err := ThroughputParity(23)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatParity(results))
	base := results[0].GoodputBps
	for _, r := range results {
		diff := r.GoodputBps/base - 1
		if diff < -0.02 || diff > 0.02 {
			t.Errorf("backend %s goodput %.2f MB/s deviates from native %.2f MB/s",
				r.Backend, r.GoodputBps/1e6, base/1e6)
		}
	}
}

// TestUpcallOverheadShape asserts §4.1: the up-call architecture costs
// several times a direct in-stack execution.
func TestUpcallOverheadShape(t *testing.T) {
	res, err := UpcallOverhead(20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("direct %.0f ns, upcall %.0f ns, factor %.1fx", res.DirectNsPerOp, res.UpcallNsPerOp, res.Factor)
	if res.Factor < 2 {
		t.Errorf("up-call factor %.1fx, want the architectural gap the paper reports (≈12x in kernel terms)", res.Factor)
	}
}

// TestMemoryFootprints asserts §4.3: footprints stay in the low
// kilobytes per program and a few hundred bytes per instance.
func TestMemoryFootprints(t *testing.T) {
	results, err := MemoryFootprints()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-12s program %6d B, instance %4d B", r.Scheduler, r.ProgramBytes, r.InstanceBytes)
		if r.ProgramBytes <= 0 || r.ProgramBytes > 64<<10 {
			t.Errorf("%s program footprint %d out of plausible range", r.Scheduler, r.ProgramBytes)
		}
		if r.InstanceBytes <= 0 || r.InstanceBytes > 1024 {
			t.Errorf("instance footprint %d out of plausible range", r.InstanceBytes)
		}
	}
}

// TestProbingShapes asserts the Table 2 probing row: when an idle
// path silently becomes the better one under a thin flow, only the
// probing scheduler notices and migrates.
func TestProbingShapes(t *testing.T) {
	def, err := Probing("minRTT", core.BackendCompiled, 19)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := Probing("probingMinRTT", core.BackendCompiled, 19)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default: mean=%v fast-path-share=%.0f%%; probing: mean=%v fast-path-share=%.0f%%",
		def.MeanResponse, def.FastPathShare*100, probe.MeanResponse, probe.FastPathShare*100)
	if def.Responses == 0 || probe.Responses == 0 {
		t.Fatal("no measured responses")
	}
	if def.FastPathShare > 0.2 {
		t.Errorf("default migrated to the idle path (%.0f%%) despite a stale estimate; scenario broken",
			def.FastPathShare*100)
	}
	if probe.FastPathShare < 0.5 {
		t.Errorf("probing scheduler failed to migrate (fast-path share %.0f%%)", probe.FastPathShare*100)
	}
	if probe.MeanResponse >= def.MeanResponse {
		t.Errorf("probing mean response %v should beat default %v once the idle path improved",
			probe.MeanResponse, def.MeanResponse)
	}
}

// TestOpportunisticRetransmissionShape asserts §3.4's feature: under a
// tight receive window and strongly heterogeneous RTTs, the default
// scheduler extended with opportunistic retransmission completes a
// bulk transfer faster than the plain default, by re-sending
// window-blocking slow-path packets on the fast subflow.
func TestOpportunisticRetransmissionShape(t *testing.T) {
	plain, err := Opportunistic("minRTT", core.BackendCompiled, 33)
	if err != nil {
		t.Fatal(err)
	}
	opp, err := Opportunistic("minRTTOpportunistic", core.BackendCompiled, 33)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain: fct=%v %.2f MB/s; opportunistic: fct=%v %.2f MB/s",
		plain.FCT, plain.Goodput/1e6, opp.FCT, opp.Goodput/1e6)
	if !plain.Completed || !opp.Completed {
		t.Fatalf("transfers incomplete (plain %v, opportunistic %v)", plain.Completed, opp.Completed)
	}
	if opp.FCT >= plain.FCT {
		t.Errorf("opportunistic retransmission (%v) should beat the plain default (%v) under window blocking",
			opp.FCT, plain.FCT)
	}
}
