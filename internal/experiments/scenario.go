// Package experiments contains the per-figure harnesses that
// regenerate the paper's evaluation: workload generators, parameter
// sweeps, baselines, and result tables. Each experiment is a pure
// function of its parameters and a seed, so runs are reproducible.
// The mapping from figures/tables to functions is indexed in
// DESIGN.md; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// PathSpec describes one simulated path of a scenario.
type PathSpec struct {
	Name    string
	Rate    netsim.RateFunc
	Delay   time.Duration
	DelayFn func(time.Duration) time.Duration
	Loss    float64
	Backup  bool
}

// Scenario wires an engine, a connection and its subflows.
type Scenario struct {
	Eng   *netsim.Engine
	Conn  *mptcp.Conn
	Links []*netsim.Link
}

// NewScenario builds a connection over the given paths with the named
// schedlib scheduler.
func NewScenario(seed int64, cfg mptcp.Config, backend core.Backend, scheduler string, paths ...PathSpec) (*Scenario, error) {
	src, ok := schedlib.All[scheduler]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scheduler %q", scheduler)
	}
	sched, err := core.Load(scheduler, src, backend)
	if err != nil {
		return nil, err
	}
	return NewScenarioWith(seed, cfg, sched, paths...)
}

// NewScenarioWith builds a scenario around an already-loaded scheduler
// (any mptcp.Scheduler, including native ones).
func NewScenarioWith(seed int64, cfg mptcp.Config, sched mptcp.Scheduler, paths ...PathSpec) (*Scenario, error) {
	eng := netsim.NewEngine(seed)
	conn := mptcp.NewConn(eng, cfg)
	s := &Scenario{Eng: eng, Conn: conn}
	for _, p := range paths {
		var loss netsim.LossModel
		if p.Loss > 0 {
			loss = netsim.BernoulliLoss{P: p.Loss}
		}
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name:    p.Name,
			Rate:    p.Rate,
			Delay:   p.Delay,
			DelayFn: p.DelayFn,
			Loss:    loss,
		})
		s.Links = append(s.Links, link)
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: p.Name, Link: link, Backup: p.Backup}); err != nil {
			return nil, err
		}
	}
	conn.SetScheduler(sched)
	return s, nil
}

// WiFi returns the canonical WiFi path of the motivation setup
// (Fig. 1): ~3 MB/s fluctuating capacity, 5 ms one-way (≈10 ms RTT).
func WiFi() PathSpec {
	return PathSpec{
		Name:  "wifi",
		Rate:  netsim.FluctuatingRate(3e6, 0.7e6, 2*time.Second, 1.2e6),
		Delay: 5 * time.Millisecond,
	}
}

// LTE returns the canonical LTE path: 8 MB/s, 20 ms one-way
// (≈40 ms RTT). The backup flag marks it non-preferred (metered).
func LTE(backup bool) PathSpec {
	return PathSpec{
		Name:   "lte",
		Rate:   netsim.ConstantRate(8e6),
		Delay:  20 * time.Millisecond,
		Backup: backup,
	}
}

// flowWarmup lets both handshakes complete before a short flow starts,
// so flows actually see a multipath connection (as in the paper's
// testbeds, where connections exist before the measured flows).
const flowWarmup = 500 * time.Millisecond

// runFlow sends size bytes after the warm-up and returns the flow
// completion time (receiver side, last byte in order, relative to the
// send time) and the total bytes put on the wire (for overhead
// accounting). signalFlowEnd sets the Compensating-family end-of-flow
// register once the data is enqueued. A zero FCT means the flow did
// not complete within maxTime.
func runFlow(s *Scenario, size int, signalFlowEnd bool, maxTime time.Duration) (fct time.Duration, wireBytes int64) {
	var done time.Duration
	received := int64(0)
	s.Conn.Receiver().OnDeliver(func(_ int64, sz int, at time.Duration) {
		received += int64(sz)
		if received >= int64(size) && done == 0 {
			done = at - flowWarmup
		}
	})
	var wireBase int64
	s.Eng.At(flowWarmup, func() {
		for _, sbf := range s.Conn.Subflows() {
			wireBase += sbf.BytesSent
		}
		s.Conn.Send(size, 0)
		if signalFlowEnd {
			s.Conn.SetRegister(schedlib.RegFlowEnd, 1)
		}
	})
	s.Eng.RunUntil(flowWarmup + maxTime)
	for _, sbf := range s.Conn.Subflows() {
		wireBytes += sbf.BytesSent
	}
	wireBytes -= wireBase
	return done, wireBytes
}
