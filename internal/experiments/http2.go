package experiments

import (
	"fmt"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/http2sim"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
)

// HTTP2Point is one cell of the Fig. 14 sweep.
type HTTP2Point struct {
	Scheduler string
	// WiFiExtraDelay is the systematic delay added to the WiFi path
	// ("to evaluate the impact of the RTT ratio, we systematically
	// increased packet delays for the WiFi interface").
	WiFiExtraDelay time.Duration
	// DependencyRetrieved, InitialPage, FullLoad per http2sim.Metrics.
	DependencyRetrieved time.Duration
	InitialPage         time.Duration
	FullLoad            time.Duration
	// LTEBytes is the metered-subflow usage.
	LTEBytes int64
}

// HTTP2Schedulers are the two configurations of Fig. 14: today's
// default scheduler and the HTTP/2-aware scheduler.
var HTTP2Schedulers = []string{"minRTT", "http2Aware"}

// HTTP2Sweep reproduces Fig. 14: a page load over WiFi+LTE while the
// WiFi delay is swept, comparing the default scheduler against the
// HTTP/2-aware scheduler for dependency retrieval time, initial page
// time and metered LTE usage.
func HTTP2Sweep(backend core.Backend, extraDelays []time.Duration, seed int64) ([]HTTP2Point, error) {
	var out []HTTP2Point
	page := http2sim.DefaultPage()
	for _, scheduler := range HTTP2Schedulers {
		for _, extra := range extraDelays {
			paths := []PathSpec{
				{Name: "wifi", Rate: netsim.ConstantRate(3e6), Delay: 5*time.Millisecond + extra/2},
				// The preference flag is consumed only by the
				// preference-aware scheduler; the default baseline
				// runs with both subflows active.
				{Name: "lte", Rate: netsim.ConstantRate(6e6), Delay: 20 * time.Millisecond, Backup: scheduler != "minRTT"},
			}
			s, err := NewScenario(seed, mptcp.Config{}, backend, scheduler, paths...)
			if err != nil {
				return nil, err
			}
			browser := http2sim.NewBrowser(s.Conn, page)
			// The request goes out on a warm connection (both
			// handshakes done); load times are relative to it.
			s.Eng.At(flowWarmup, func() { http2sim.Server{Page: page}.Respond(s.Conn) })
			s.Eng.RunUntil(flowWarmup + 60*time.Second)
			m := browser.Metrics()
			if !m.Complete {
				return nil, fmt.Errorf("experiments: %s at +%v did not finish the page load", scheduler, extra)
			}
			out = append(out, HTTP2Point{
				Scheduler:           scheduler,
				WiFiExtraDelay:      extra,
				DependencyRetrieved: m.DependencyRetrieved - flowWarmup,
				InitialPage:         m.InitialPage - flowWarmup,
				FullLoad:            m.FullLoad - flowWarmup,
				LTEBytes:            s.Conn.Subflows()[1].BytesSent,
			})
		}
	}
	return out, nil
}

// FormatHTTP2 renders Fig. 14.
func FormatHTTP2(points []HTTP2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %14s %14s %12s %12s\n",
		"scheduler", "wifi +delay", "deps ms", "initial ms", "full ms", "lte KB")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %12v %14.1f %14.1f %12.1f %12.1f\n",
			p.Scheduler, p.WiFiExtraDelay,
			float64(p.DependencyRetrieved.Microseconds())/1000,
			float64(p.InitialPage.Microseconds())/1000,
			float64(p.FullLoad.Microseconds())/1000,
			float64(p.LTEBytes)/1024)
	}
	return b.String()
}
