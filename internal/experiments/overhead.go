package experiments

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/envtest"
	"progmp/internal/mptcp"
	"progmp/internal/mptcp/sched"
	"progmp/internal/netsim"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

// OverheadBackends are the rows of Fig. 9 top: the native reference
// implementation ("C-based default scheduler") and the three runtime
// back-ends for the semantically equivalent specification.
var OverheadBackends = []string{"native", "interpreter", "compiled", "vm"}

// OverheadResult is one cell of the Fig. 9 execution-time comparison.
type OverheadResult struct {
	Backend  string
	Subflows int
	NsPerOp  float64
	// RelativeToNative is NsPerOp / native NsPerOp at the same subflow
	// count (the paper reports ~144% interpreter, ~125% eBPF).
	RelativeToNative float64
}

// overheadEnv builds the measurement environment: a filled send queue
// and saturated-but-available subflows, so the default scheduler does
// real selection work on every execution.
func overheadEnv(subflows int) *runtime.Env {
	spec := envtest.EnvSpec{}
	for i := 0; i < subflows; i++ {
		spec.Subflows = append(spec.Subflows, envtest.SbfSpec{
			ID: i, RTT: int64(10000 + i*7000), RTTVar: 500, Cwnd: 64, InFlight: int64(i % 3),
		})
	}
	for i := 0; i < 4; i++ {
		spec.Q = append(spec.Q, envtest.PktSpec{Seq: int64(i)})
	}
	for i := 4; i < 6; i++ {
		spec.QU = append(spec.QU, envtest.PktSpec{Seq: int64(i), SentOn: []int{0}})
	}
	return spec.Build()
}

// schedulerFor returns the default scheduler on the requested back-end.
func schedulerFor(backend string) (mptcp.Scheduler, error) {
	switch backend {
	case "native":
		return sched.MinRTT{}, nil
	case "interpreter":
		return core.Load("minRTT", schedlib.MinRTT, core.BackendInterpreter)
	case "compiled":
		return core.Load("minRTT", schedlib.MinRTT, core.BackendCompiled)
	case "vm":
		s, err := core.Load("minRTT", schedlib.MinRTT, core.BackendVM)
		if err != nil {
			return nil, err
		}
		s.SetSynchronousSpecialization(true)
		return s, nil
	}
	return nil, fmt.Errorf("experiments: unknown backend %q", backend)
}

// ExecutionOverhead reproduces Fig. 9 top: per-execution times of the
// default scheduler across back-ends with 2 and 4 subflows.
func ExecutionOverhead(iters int) ([]OverheadResult, error) {
	var out []OverheadResult
	for _, subflows := range []int{2, 4} {
		nativeNs := 0.0
		for _, backend := range OverheadBackends {
			s, err := schedulerFor(backend)
			if err != nil {
				return nil, err
			}
			env := overheadEnv(subflows)
			// Warm-up (triggers VM specialization).
			for i := 0; i < 100; i++ {
				env.Reset()
				s.Exec(env)
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				env.Reset()
				s.Exec(env)
			}
			elapsed := time.Since(start)
			// The per-iteration cost includes the (identical, small)
			// snapshot reset; it cancels in the relative comparison.
			ns := float64(elapsed.Nanoseconds()) / float64(iters)
			if backend == "native" {
				nativeNs = ns
			}
			rel := 0.0
			if nativeNs > 0 {
				rel = ns / nativeNs
			}
			out = append(out, OverheadResult{
				Backend:          backend,
				Subflows:         subflows,
				NsPerOp:          ns,
				RelativeToNative: rel,
			})
		}
	}
	return out, nil
}

// FormatOverhead renders Fig. 9 top.
func FormatOverhead(rs []OverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %12s\n", "backend", "subflows", "ns/exec", "vs native")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-14s %10d %12.1f %11.0f%%\n", r.Backend, r.Subflows, r.NsPerOp, r.RelativeToNative*100)
	}
	return b.String()
}

// ThroughputParityResult is one bar of Fig. 9 bottom.
type ThroughputParityResult struct {
	Backend    string
	GoodputBps float64
}

// ThroughputParity reproduces Fig. 9 bottom: the end-to-end throughput
// of a saturated transfer must be unchanged across back-ends ("the
// total throughput remains unchanged throughout all schedulers").
func ThroughputParity(seed int64) ([]ThroughputParityResult, error) {
	var out []ThroughputParityResult
	for _, backend := range OverheadBackends {
		s, err := schedulerFor(backend)
		if err != nil {
			return nil, err
		}
		scn, err := NewScenarioWith(seed, mptcp.Config{}, s,
			PathSpec{Name: "p1", Rate: netsim.ConstantRate(4e6), Delay: 10 * time.Millisecond},
			PathSpec{Name: "p2", Rate: netsim.ConstantRate(4e6), Delay: 15 * time.Millisecond},
		)
		if err != nil {
			return nil, err
		}
		var delivered int64
		scn.Conn.Receiver().OnDeliver(func(_ int64, size int, _ time.Duration) {
			delivered += int64(size)
		})
		const duration = 10 * time.Second
		for at := time.Duration(0); at < duration; at += 50 * time.Millisecond {
			scn.Eng.At(at, func() {
				if scn.Conn.QueuedSegments() < 512 {
					scn.Conn.Send(512<<10, 0)
				}
			})
		}
		scn.Eng.RunUntil(duration)
		out = append(out, ThroughputParityResult{
			Backend:    backend,
			GoodputBps: float64(delivered) / duration.Seconds(),
		})
	}
	return out, nil
}

// FormatParity renders Fig. 9 bottom.
func FormatParity(rs []ThroughputParityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s\n", "backend", "goodput MB/s")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-14s %14.2f\n", r.Backend, r.GoodputBps/1e6)
	}
	return b.String()
}

// UpcallResult compares in-stack scheduling with a userspace-up-call
// architecture (§4.1: 0.2 µs in kernel vs 2.4 µs netlink up-call).
type UpcallResult struct {
	DirectNsPerOp float64
	UpcallNsPerOp float64
	Factor        float64
}

// UpcallOverhead measures one scheduling decision executed directly
// versus delegated across a real OS boundary — a pipe round-trip, the
// userspace analogue of the paper's netlink up-call prototype (§4.1:
// 2.4 µs per up-call vs 0.2 µs in-kernel). The up-call architecture of
// [35] pays this on every decision; the in-stack runtime does not.
func UpcallOverhead(iters int) (UpcallResult, error) {
	s, err := core.Load("minRTT", schedlib.MinRTT, core.BackendCompiled)
	if err != nil {
		return UpcallResult{}, err
	}
	env := overheadEnv(2)

	start := time.Now()
	for i := 0; i < iters; i++ {
		env.Reset()
		s.Exec(env)
	}
	direct := float64(time.Since(start).Nanoseconds()) / float64(iters)

	// Up-call path: request and response cross pipe file descriptors,
	// costing the syscalls and wake-ups a netlink round-trip costs.
	reqR, reqW, err := os.Pipe()
	if err != nil {
		return UpcallResult{}, err
	}
	respR, respW, err := os.Pipe()
	if err != nil {
		return UpcallResult{}, err
	}
	defer reqW.Close()
	defer respR.Close()
	go func() {
		defer reqR.Close()
		defer respW.Close()
		buf := make([]byte, 1)
		for {
			if _, err := io.ReadFull(reqR, buf); err != nil {
				return
			}
			s.Exec(env)
			if _, err := respW.Write(buf); err != nil {
				return
			}
		}
	}()
	one := []byte{1}
	buf := make([]byte, 1)
	start = time.Now()
	for i := 0; i < iters; i++ {
		env.Reset()
		if _, err := reqW.Write(one); err != nil {
			return UpcallResult{}, err
		}
		if _, err := io.ReadFull(respR, buf); err != nil {
			return UpcallResult{}, err
		}
	}
	upcall := float64(time.Since(start).Nanoseconds()) / float64(iters)

	res := UpcallResult{DirectNsPerOp: direct, UpcallNsPerOp: upcall}
	if direct > 0 {
		res.Factor = upcall / direct
	}
	return res, nil
}

// MemoryResult is the §4.3 memory accounting.
type MemoryResult struct {
	Scheduler     string
	ProgramBytes  int
	InstanceBytes int
}

// MemoryFootprints reports program and per-instantiation footprints
// for the corpus (the paper: 3048 B for round-robin, 328 B per
// instantiation).
func MemoryFootprints() ([]MemoryResult, error) {
	var out []MemoryResult
	for _, name := range []string{"roundRobin", "minRTT", "redundant", "tap", "http2Aware"} {
		s, err := core.Load(name, schedlib.All[name], core.BackendVM)
		if err != nil {
			return nil, err
		}
		out = append(out, MemoryResult{
			Scheduler:     name,
			ProgramBytes:  s.MemoryFootprint(),
			InstanceBytes: core.InstanceFootprint(),
		})
	}
	return out, nil
}
