package experiments

import (
	"testing"

	"progmp/internal/core"
)

// TestFairnessShapes asserts the coupled-congestion-control story
// (§2.1, RFC 6356): on a shared bottleneck, uncoupled Reno's two
// subflows take roughly two fair shares, while coupled LIA keeps the
// MPTCP aggregate near one.
func TestFairnessShapes(t *testing.T) {
	results := map[string]FairnessResult{}
	for _, cc := range []string{"reno", "lia", "olia"} {
		r, err := Fairness(cc, core.BackendCompiled, 29)
		if err != nil {
			t.Fatal(err)
		}
		results[cc] = r
		t.Logf("%-5s mptcp %.2f MB/s vs tcp %.2f MB/s (ratio %.2f)",
			cc, r.MPTCPGoodput/1e6, r.TCPGoodput/1e6, r.Ratio)
	}
	reno, lia, olia := results["reno"], results["lia"], results["olia"]
	// The link must be reasonably utilized in every run (RED trades a
	// little utilization for loss desynchronization).
	for cc, r := range results {
		total := r.MPTCPGoodput + r.TCPGoodput
		if total < 1.2e6 {
			t.Errorf("%s: bottleneck underutilized (%.2f MB/s total)", cc, total/1e6)
		}
	}
	if reno.Ratio < 1.4 {
		t.Errorf("uncoupled Reno ratio %.2f, want ≈2 (two unfair shares)", reno.Ratio)
	}
	if lia.Ratio > reno.Ratio*0.8 {
		t.Errorf("LIA ratio %.2f should be well below Reno's %.2f", lia.Ratio, reno.Ratio)
	}
	if lia.Ratio > 1.5 {
		t.Errorf("LIA ratio %.2f, want near-fair (≤1.5)", lia.Ratio)
	}
	if olia.Ratio > reno.Ratio*0.9 {
		t.Errorf("OLIA ratio %.2f should undercut uncoupled Reno %.2f", olia.Ratio, reno.Ratio)
	}
}
