package experiments

import (
	"fmt"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// FairnessResult measures the shared-bottleneck scenario that motivates
// coupled congestion control (§2.1 of the paper; RFC 6356): an MPTCP
// connection whose two subflows traverse the same bottleneck competes
// with a regular single-path TCP connection.
type FairnessResult struct {
	CC string
	// MPTCPGoodput and TCPGoodput in bytes/s over the measurement
	// window.
	MPTCPGoodput float64
	TCPGoodput   float64
	// Ratio is MPTCP/TCP: ≈1 is fair; uncoupled Reno trends to ≈2
	// (two subflows, two shares).
	Ratio float64
}

// Fairness runs the shared-bottleneck experiment for one
// congestion-control algorithm.
func Fairness(ccName string, backend core.Backend, seed int64) (FairnessResult, error) {
	var cc mptcp.CongestionControl
	switch ccName {
	case "lia":
		cc = mptcp.LIA{}
	case "olia":
		cc = mptcp.OLIA{}
	case "reno":
		cc = mptcp.Reno{}
	default:
		return FairnessResult{}, fmt.Errorf("experiments: unknown congestion control %q", ccName)
	}
	eng := netsim.NewEngine(seed)
	// The shared NETWORK bottleneck: 2 MB/s, 10 ms one-way, a small
	// drop-tail buffer, so congestion manifests as loss — the coupling
	// signal LIA is designed around. Each subflow reaches it through
	// its own fast access link (the host NIC); the sender's
	// small-queue accounting sees only that access link, like a real
	// host that cannot observe the remote bottleneck queue.
	bottleneck := netsim.NewPath(eng, netsim.PathConfig{
		Name:       "bottleneck",
		Rate:       netsim.ConstantRate(2e6),
		Delay:      10 * time.Millisecond,
		QueueBytes: 64 << 10,
		// RED keeps the drop probability equal across the competing
		// flows — the loss-signal regime RFC 6356's fairness argument
		// assumes; pure drop-tail would synchronize on the fastest
		// grower instead.
		RED: &netsim.REDConfig{MinBytes: 12 << 10, MaxBytes: 56 << 10, MaxP: 0.15},
	})
	accessLink := func(name string) *netsim.Link {
		return netsim.NewLink(eng, netsim.PathConfig{
			Name:  name,
			Rate:  netsim.ConstantRate(125e6),
			Delay: time.Millisecond,
			Next:  bottleneck,
		})
	}
	sched := func() (mptcp.Scheduler, error) {
		return core.Load("minRTT", schedlib.MinRTT, backend)
	}

	mp := mptcp.NewConn(eng, mptcp.Config{CC: cc})
	for i := 0; i < 2; i++ {
		if _, err := mp.AddSubflow(mptcp.SubflowConfig{
			Name: fmt.Sprintf("mp%d", i), Link: accessLink(fmt.Sprintf("mp%d", i)),
		}); err != nil {
			return FairnessResult{}, err
		}
	}
	mpSched, err := sched()
	if err != nil {
		return FairnessResult{}, err
	}
	mp.SetScheduler(mpSched)

	tcp := mptcp.NewConn(eng, mptcp.Config{CC: mptcp.Reno{}})
	if _, err := tcp.AddSubflow(mptcp.SubflowConfig{Name: "tcp", Link: accessLink("tcp")}); err != nil {
		return FairnessResult{}, err
	}
	tcpSched, err := sched()
	if err != nil {
		return FairnessResult{}, err
	}
	tcp.SetScheduler(tcpSched)

	var mpBytes, tcpBytes int64
	const warmup = 5 * time.Second
	const duration = 35 * time.Second
	mp.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		if at >= warmup {
			mpBytes += int64(size)
		}
	})
	tcp.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		if at >= warmup {
			tcpBytes += int64(size)
		}
	})
	// Backlogged sources.
	for at := time.Duration(0); at < duration; at += 100 * time.Millisecond {
		eng.At(at, func() {
			if mp.QueuedSegments() < 256 {
				mp.Send(256<<10, 0)
			}
			if tcp.QueuedSegments() < 256 {
				tcp.Send(256<<10, 0)
			}
		})
	}
	eng.RunUntil(duration)

	window := (duration - warmup).Seconds()
	res := FairnessResult{
		CC:           ccName,
		MPTCPGoodput: float64(mpBytes) / window,
		TCPGoodput:   float64(tcpBytes) / window,
	}
	if res.TCPGoodput > 0 {
		res.Ratio = res.MPTCPGoodput / res.TCPGoodput
	}
	return res, nil
}
