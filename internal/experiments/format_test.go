package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFormatHelpers(t *testing.T) {
	fct := FormatFCT([]FCTPoint{
		{Scheduler: "minRTT", FlowKB: 16, MeanFCT: 12 * time.Millisecond},
		{Scheduler: "redundant", FlowKB: 16, MeanFCT: 8 * time.Millisecond},
	}, []string{"minRTT", "redundant"})
	if !strings.Contains(fct, "16") || !strings.Contains(fct, "12.0 ms") {
		t.Errorf("FormatFCT output wrong:\n%s", fct)
	}
	thr := FormatThroughput([]ThroughputPoint{{Scheduler: "x", Workload: "bulk", Normalized: 1.5, GoodputBps: 2e6}})
	if !strings.Contains(thr, "1.50") || !strings.Contains(thr, "2.00") {
		t.Errorf("FormatThroughput output wrong:\n%s", thr)
	}
	comp := FormatCompensation([]CompensationPoint{
		{Scheduler: "minRTT", RTTRatio: 2, MeanFCT: 20 * time.Millisecond, OverheadVsDefault: 1},
		{Scheduler: "compensating", RTTRatio: 2, MeanFCT: 15 * time.Millisecond, OverheadVsDefault: 1.5},
		{Scheduler: "selectiveCompensation", RTTRatio: 2, MeanFCT: 20 * time.Millisecond, OverheadVsDefault: 1},
	})
	if !strings.Contains(comp, "2.0") || !strings.Contains(comp, "1.50x") {
		t.Errorf("FormatCompensation output wrong:\n%s", comp)
	}
	http2 := FormatHTTP2([]HTTP2Point{{
		Scheduler: "minRTT", WiFiExtraDelay: 40 * time.Millisecond,
		DependencyRetrieved: 30 * time.Millisecond, InitialPage: 100 * time.Millisecond,
		FullLoad: 200 * time.Millisecond, LTEBytes: 2048,
	}})
	if !strings.Contains(http2, "40ms") || !strings.Contains(http2, "2.0") {
		t.Errorf("FormatHTTP2 output wrong:\n%s", http2)
	}
	stream := FormatStreaming([]StreamingResult{{
		Variant: StreamingTAP, WiFiBytes: 2e6, LTEBytes: 1e6,
		LowPhaseLTEShare: 0.05, HighPhaseGoodput: 4e6,
	}})
	if !strings.Contains(stream, "tap") || !strings.Contains(stream, "5.0%") {
		t.Errorf("FormatStreaming output wrong:\n%s", stream)
	}
	ov := FormatOverhead([]OverheadResult{{Backend: "vm", Subflows: 2, NsPerOp: 300, RelativeToNative: 3}})
	if !strings.Contains(ov, "vm") || !strings.Contains(ov, "300") {
		t.Errorf("FormatOverhead output wrong:\n%s", ov)
	}
	par := FormatParity([]ThroughputParityResult{{Backend: "native", GoodputBps: 5e6}})
	if !strings.Contains(par, "native") || !strings.Contains(par, "5.00") {
		t.Errorf("FormatParity output wrong:\n%s", par)
	}
}
