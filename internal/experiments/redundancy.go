package experiments

import (
	"fmt"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
)

// RedundancySchedulers are the four schedulers compared in Fig. 10.
var RedundancySchedulers = []string{
	"minRTT", "redundant", "opportunisticRedundant", "redundantIfNoQ",
}

// lossyPaths reproduces the Fig. 10b Mininet setup: two subflows with
// 2% loss each, moderately heterogeneous RTTs.
func lossyPaths(lossPct float64) []PathSpec {
	return []PathSpec{
		{Name: "p1", Rate: netsim.ConstantRate(2e6), Delay: 10 * time.Millisecond, Loss: lossPct},
		{Name: "p2", Rate: netsim.ConstantRate(2e6), Delay: 20 * time.Millisecond, Loss: lossPct},
	}
}

// FCTPoint is one cell of the Fig. 10b series.
type FCTPoint struct {
	Scheduler string
	FlowKB    int
	MeanFCT   time.Duration
	// Overhead is wire bytes divided by flow bytes (≥ 1).
	Overhead float64
	Runs     int
}

// RedundancyFCT reproduces Fig. 10b: average flow completion time vs
// flow size under 2% loss for the default and the three redundant
// schedulers, averaged over runs seeds.
func RedundancyFCT(backend core.Backend, flowKBs []int, schedulers []string, runs int) ([]FCTPoint, error) {
	var out []FCTPoint
	for _, scheduler := range schedulers {
		for _, kb := range flowKBs {
			var sumFCT time.Duration
			var sumOverhead float64
			completed := 0
			for run := 0; run < runs; run++ {
				// Uncoupled Reno isolates the scheduling effects: the
				// coupled LIA default would deliberately cap the
				// aggregate at one TCP's throughput on these equal
				// disjoint paths (RFC 6356 goal), drowning the
				// scheduler comparison.
				s, err := NewScenario(int64(run*101+7), mptcp.Config{CC: mptcp.Reno{}}, backend, scheduler, lossyPaths(0.02)...)
				if err != nil {
					return nil, err
				}
				fct, wire := runFlow(s, kb<<10, false, 120*time.Second)
				if fct == 0 {
					continue
				}
				completed++
				sumFCT += fct
				sumOverhead += float64(wire) / float64(kb<<10)
			}
			if completed == 0 {
				return nil, fmt.Errorf("experiments: %s/%dKB never completed", scheduler, kb)
			}
			out = append(out, FCTPoint{
				Scheduler: scheduler,
				FlowKB:    kb,
				MeanFCT:   sumFCT / time.Duration(completed),
				Overhead:  sumOverhead / float64(completed),
				Runs:      completed,
			})
		}
	}
	return out, nil
}

// FormatFCT renders Fig. 10b as a table: rows = flow size, columns =
// scheduler.
func FormatFCT(points []FCTPoint, schedulers []string) string {
	sizes := []int{}
	seen := map[int]bool{}
	byKey := map[string]FCTPoint{}
	for _, p := range points {
		if !seen[p.FlowKB] {
			seen[p.FlowKB] = true
			sizes = append(sizes, p.FlowKB)
		}
		byKey[fmt.Sprintf("%s/%d", p.Scheduler, p.FlowKB)] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "flow KB")
	for _, s := range schedulers {
		fmt.Fprintf(&b, " %22s", s)
	}
	b.WriteString("\n")
	for _, kb := range sizes {
		fmt.Fprintf(&b, "%-10d", kb)
		for _, s := range schedulers {
			p := byKey[fmt.Sprintf("%s/%d", s, kb)]
			fmt.Fprintf(&b, " %18.1f ms ", float64(p.MeanFCT.Microseconds())/1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ThroughputPoint is one bar of Fig. 10c: goodput normalized to
// single-path TCP on the best path.
type ThroughputPoint struct {
	Scheduler  string
	Workload   string // "bulk" (iPerf) or "bursty"
	Normalized float64
	GoodputBps float64
}

// RedundancyThroughput reproduces Fig. 10c: maximum achievable
// throughput of the redundancy flavors, normalized to single-path TCP,
// for a constantly-backlogged bulk transfer and a bursty flow. The
// environment matches the Fig. 10b Mininet setup (2 subflows, 2%
// loss); the loss keeps congestion windows near the BDP, which is what
// lets OpportunisticRedundant favour fresh packets under backlog.
func RedundancyThroughput(backend core.Backend, schedulers []string, seed int64) ([]ThroughputPoint, error) {
	paths := lossyPaths(0.02)
	const duration = 10 * time.Second

	goodput := func(scheduler string, pathSubset []PathSpec, bursty bool) (float64, error) {
		s, err := NewScenario(seed, mptcp.Config{CC: mptcp.Reno{}}, backend, scheduler, pathSubset...)
		if err != nil {
			return 0, err
		}
		var delivered int64
		s.Conn.Receiver().OnDeliver(func(_ int64, size int, _ time.Duration) {
			delivered += int64(size)
		})
		if bursty {
			// 175 KiB bursts every 250 ms (≈0.7 MB/s demand): above a
			// single lossy path's capacity (~0.5 MB/s) but below the
			// aggregate, so Q drains between bursts and mistimed
			// redundancy "just before new data arrives in Q" costs
			// real throughput (§5.1).
			for at := time.Duration(0); at < duration; at += 250 * time.Millisecond {
				at := at
				s.Eng.At(at, func() { s.Conn.Send(175<<10, 0) })
			}
		} else {
			// Backlogged source: top Q up every 50 ms.
			for at := time.Duration(0); at < duration; at += 50 * time.Millisecond {
				s.Eng.At(at, func() {
					if s.Conn.QueuedSegments() < 512 {
						s.Conn.Send(512<<10, 0)
					}
				})
			}
		}
		s.Eng.RunUntil(duration)
		return float64(delivered) / duration.Seconds(), nil
	}

	// Single-path TCP baseline: the best single path with the default
	// scheduler.
	var singleBest float64
	for _, p := range paths {
		g, err := goodput("minRTT", []PathSpec{p}, false)
		if err != nil {
			return nil, err
		}
		if g > singleBest {
			singleBest = g
		}
	}
	var out []ThroughputPoint
	for _, scheduler := range schedulers {
		for _, workload := range []string{"bulk", "bursty"} {
			g, err := goodput(scheduler, paths, workload == "bursty")
			if err != nil {
				return nil, err
			}
			out = append(out, ThroughputPoint{
				Scheduler:  scheduler,
				Workload:   workload,
				Normalized: g / singleBest,
				GoodputBps: g,
			})
		}
	}
	return out, nil
}

// FormatThroughput renders Fig. 10c.
func FormatThroughput(points []ThroughputPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %12s %14s\n", "scheduler", "workload", "normalized", "goodput MB/s")
	for _, p := range points {
		fmt.Fprintf(&b, "%-24s %-8s %12.2f %14.2f\n", p.Scheduler, p.Workload, p.Normalized, p.GoodputBps/1e6)
	}
	return b.String()
}
