package experiments

import (
	"fmt"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// StreamingVariant selects the scheduler configuration of the
// interactive-streaming scenario (Fig. 1 and Fig. 13).
type StreamingVariant string

// The three configurations compared in the paper.
const (
	// StreamingDefault is today's MinRTT scheduler with both subflows
	// active ("neither the default scheduler ... allows preserving
	// preferences").
	StreamingDefault StreamingVariant = "default"
	// StreamingBackup is MinRTT with the LTE subflow in backup mode
	// ("practically deactivates the subflow").
	StreamingBackup StreamingVariant = "backup"
	// StreamingTAP is the throughput- and preference-aware scheduler
	// of §5.4 with the target bitrate signaled in R1.
	StreamingTAP StreamingVariant = "tap"
)

// StreamingResult is the outcome of one interactive-streaming run.
type StreamingResult struct {
	Variant StreamingVariant
	// Bucket width of the series.
	Bucket time.Duration
	// WiFiTx and LTETx are bytes put on each subflow per bucket.
	WiFiTx, LTETx []float64
	// Goodput is in-order delivered bytes per bucket.
	Goodput []float64
	// Target is the application bitrate per bucket.
	Target []float64
	// WiFiBytes and LTEBytes are wire totals.
	WiFiBytes, LTEBytes int64
	// LowPhaseLTEShare is the LTE share of wire bytes during the
	// 1 MB/s phase — the paper's ~30% observation for MinRTT (Fig. 1).
	LowPhaseLTEShare float64
	// HighPhaseGoodput is the mean delivered rate (bytes/s) during the
	// 4 MB/s phase; the backup variant fails to sustain it.
	HighPhaseGoodput float64
}

// streamDuration and the bitrate switch point of Fig. 1.
const (
	streamDuration   = 16 * time.Second
	bitrateSwitchAt  = 6 * time.Second
	lowRate          = 1 << 20 // 1 MB/s
	highRate         = 4 << 20 // 4 MB/s
	streamTickPeriod = 100 * time.Millisecond
)

// Streaming runs the interactive streaming session of Fig. 1/Fig. 13:
// a 1 MB/s stream that rises to 4 MB/s at t=6 s over fluctuating WiFi
// (~3 MB/s, 10 ms RTT) and LTE (8 MB/s, 40 ms RTT).
func Streaming(variant StreamingVariant, backend core.Backend, seed int64) (StreamingResult, error) {
	scheduler := "minRTT"
	lteBackup := false
	switch variant {
	case StreamingDefault:
	case StreamingBackup:
		lteBackup = true
	case StreamingTAP:
		scheduler = "tap"
		lteBackup = true
	default:
		return StreamingResult{}, fmt.Errorf("experiments: unknown streaming variant %q", variant)
	}
	s, err := NewScenario(seed, mptcp.Config{}, backend, scheduler, WiFi(), LTE(lteBackup))
	if err != nil {
		return StreamingResult{}, err
	}
	rec := netsim.NewRecorder()
	s.Conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		rec.Record("goodput", at, float64(size))
	})

	// The application pushes stream data every 100 ms and keeps the
	// TAP target register in sync with the bitrate.
	rate := func(at time.Duration) int {
		if at < bitrateSwitchAt {
			return lowRate
		}
		return highRate
	}
	for at := time.Duration(0); at < streamDuration; at += streamTickPeriod {
		at := at
		s.Eng.At(at, func() {
			r := rate(at)
			if variant == StreamingTAP {
				s.Conn.SetRegister(schedlib.RegTarget, int64(r))
			}
			s.Conn.Send(r/int(time.Second/streamTickPeriod), 0)
			rec.Record("target", at, float64(r)/float64(time.Second/streamTickPeriod))
		})
	}
	// Sample per-subflow wire bytes per tick by deltas.
	var lastWiFi, lastLTE int64
	for at := streamTickPeriod; at <= streamDuration+2*time.Second; at += streamTickPeriod {
		at := at
		s.Eng.At(at, func() {
			w := s.Conn.Subflows()[0].BytesSent
			l := s.Conn.Subflows()[1].BytesSent
			rec.Record("wifiTx", at-1, float64(w-lastWiFi))
			rec.Record("lteTx", at-1, float64(l-lastLTE))
			lastWiFi, lastLTE = w, l
		})
	}
	s.Eng.RunUntil(streamDuration + 2*time.Second)

	res := StreamingResult{
		Variant:   variant,
		Bucket:    500 * time.Millisecond,
		WiFiTx:    rec.Bucket("wifiTx", 500*time.Millisecond),
		LTETx:     rec.Bucket("lteTx", 500*time.Millisecond),
		Goodput:   rec.Bucket("goodput", 500*time.Millisecond),
		Target:    rec.Bucket("target", 500*time.Millisecond),
		WiFiBytes: s.Conn.Subflows()[0].BytesSent,
		LTEBytes:  s.Conn.Subflows()[1].BytesSent,
	}
	// LTE share during the low phase (exclude slow-start warm-up).
	var wifiLow, lteLow float64
	for _, sm := range rec.Series("wifiTx") {
		if sm.At >= time.Second && sm.At < bitrateSwitchAt {
			wifiLow += sm.Value
		}
	}
	for _, sm := range rec.Series("lteTx") {
		if sm.At >= time.Second && sm.At < bitrateSwitchAt {
			lteLow += sm.Value
		}
	}
	if wifiLow+lteLow > 0 {
		res.LowPhaseLTEShare = lteLow / (wifiLow + lteLow)
	}
	// Goodput in the high phase (skip 2 s after the switch for the
	// ramp, stop at stream end).
	var highBytes float64
	highStart := bitrateSwitchAt + 2*time.Second
	for _, sm := range rec.Series("goodput") {
		if sm.At >= highStart && sm.At < streamDuration {
			highBytes += sm.Value
		}
	}
	res.HighPhaseGoodput = highBytes / (streamDuration - highStart).Seconds()
	return res, nil
}

// FormatStreaming renders the per-variant summary row.
func FormatStreaming(rs []StreamingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %18s %20s\n",
		"variant", "wifi MB", "lte MB", "lte share (1MB/s)", "goodput@4MB/s (MB/s)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s %14.2f %14.2f %17.1f%% %20.2f\n",
			r.Variant,
			float64(r.WiFiBytes)/1e6,
			float64(r.LTEBytes)/1e6,
			r.LowPhaseLTEShare*100,
			r.HighPhaseGoodput/1e6)
	}
	return b.String()
}

// ---- Handover (§5.2) ----

// HandoverResult measures the WiFi→LTE handover scenario.
type HandoverResult struct {
	Scheduler string
	// Interruption is the longest gap between consecutive in-order
	// deliveries around the handover.
	Interruption time.Duration
	// Completed reports whether the transfer finished.
	Completed bool
	// FCT is the total flow completion time.
	FCT time.Duration
}

// Handover runs a bulk transfer during which the WiFi path collapses
// at t=3 s; the application signals the handover 50 ms later
// (sensor-based prediction, as in the paper's smooth-handover work).
// Compared schedulers: the default MinRTT and the HandoverAware
// scheduler of §5.2.
func Handover(scheduler string, backend core.Backend, seed int64) (HandoverResult, error) {
	// The collapse happens early so the bulk transfer spans it.
	wifiDown := 500 * time.Millisecond
	wifi := PathSpec{
		Name: "wifi",
		Rate: netsim.SteppedRate(
			netsim.Step{From: 0, Rate: 3e6},
			netsim.Step{From: wifiDown, Rate: 0}, // association lost
		),
		Delay: 5 * time.Millisecond,
	}
	s, err := NewScenario(seed, mptcp.Config{}, backend, scheduler, wifi, LTE(false))
	if err != nil {
		return HandoverResult{}, err
	}
	res := HandoverResult{Scheduler: scheduler}
	var lastDelivery time.Duration
	var maxGap time.Duration
	total := 8 << 20
	delivered := int64(0)
	s.Conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		if at > lastDelivery {
			if gap := at - lastDelivery; gap > maxGap && lastDelivery > 0 {
				maxGap = gap
			}
			lastDelivery = at
		}
		delivered += int64(size)
		if delivered >= int64(total) && res.FCT == 0 {
			res.FCT = at
		}
	})
	s.Eng.After(0, func() { s.Conn.Send(total, 0) })
	s.Eng.At(wifiDown+50*time.Millisecond, func() {
		s.Conn.SetRegister(schedlib.RegHandover, 1)
		s.Conn.SetRegister(schedlib.RegHandoverSbf, 0)
	})
	// The path manager eventually tears the dead subflow down.
	s.Eng.At(wifiDown+2*time.Second, func() { s.Conn.Subflows()[0].Close() })
	s.Eng.RunUntil(30 * time.Second)
	res.Interruption = maxGap
	res.Completed = delivered >= int64(total)
	return res, nil
}
