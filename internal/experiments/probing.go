package experiments

import (
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
)

// ProbingResult measures the probing row of the design-space table
// (Table 2: "Timely RTT/capacity estimates — probe subflows of
// interest"; §5: "As thin flows typically do not use all subflows,
// fresh RTT estimates significantly improve the scheduling decision in
// dynamic environments").
type ProbingResult struct {
	Scheduler string
	// MeanResponse is the mean request latency after the idle path
	// silently became the better one.
	MeanResponse time.Duration
	// FastPathShare is the post-change share of data packets carried
	// by the path that is actually faster now.
	FastPathShare float64
	Responses     int
}

// Probing runs a thin request/response flow over two paths. Path A is
// a constant 20 ms RTT and wins initially; path B starts slower
// (30 ms RTT at handshake time) but silently improves to 4 ms RTT at
// t = 2 s. A thin flow never exercises B, so the default scheduler's
// estimate for it stays frozen at 30 ms and every request keeps going
// over A; the probing scheduler refreshes B's estimate with occasional
// redundant probes and migrates.
func Probing(scheduler string, backend core.Backend, seed int64) (ProbingResult, error) {
	const improveAt = 2 * time.Second
	pathBDelay := func(at time.Duration) time.Duration {
		if at >= improveAt {
			return 2 * time.Millisecond
		}
		return 15 * time.Millisecond
	}
	paths := []PathSpec{
		{Name: "a", Rate: netsim.ConstantRate(4e6), Delay: 10 * time.Millisecond},
		{Name: "b", Rate: netsim.ConstantRate(4e6), DelayFn: pathBDelay},
	}
	s, err := NewScenario(seed, mptcp.Config{}, backend, scheduler, paths...)
	if err != nil {
		return ProbingResult{}, err
	}
	res := ProbingResult{Scheduler: scheduler}

	const reqSize = 2 * 1460
	const measureFrom = improveAt + time.Second
	type pending struct {
		end     int64
		started time.Duration
	}
	var reqs []pending
	var delivered int64
	var latencies []time.Duration
	s.Conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		for len(reqs) > 0 && delivered >= reqs[0].end {
			if reqs[0].started >= measureFrom {
				latencies = append(latencies, at-reqs[0].started)
			}
			reqs = reqs[1:]
		}
	})
	var sent int64
	for at := 500 * time.Millisecond; at < 10*time.Second; at += 250 * time.Millisecond {
		at := at
		s.Eng.At(at, func() {
			sent += reqSize
			reqs = append(reqs, pending{end: sent, started: at})
			s.Conn.Send(reqSize, 0)
		})
	}
	var aBase, bBase int64
	s.Eng.At(measureFrom, func() {
		aBase = s.Conn.Subflows()[0].PktsSent
		bBase = s.Conn.Subflows()[1].PktsSent
	})
	s.Eng.RunUntil(30 * time.Second)

	aPkts := s.Conn.Subflows()[0].PktsSent - aBase
	bPkts := s.Conn.Subflows()[1].PktsSent - bBase
	if aPkts+bPkts > 0 {
		res.FastPathShare = float64(bPkts) / float64(aPkts+bPkts)
	}
	res.Responses = len(latencies)
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanResponse = sum / time.Duration(len(latencies))
	}
	return res, nil
}
