package experiments

import (
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
)

// OpportunisticResult measures the opportunistic-retransmission
// feature of the default scheduler (§3.4): when the receive window is
// blocked, packets stuck on a slower subflow are retransmitted on a
// faster one to unblock the meta connection.
type OpportunisticResult struct {
	Scheduler string
	// Goodput over the transfer (bytes/s).
	Goodput float64
	// FCT of the transfer.
	FCT       time.Duration
	Completed bool
}

// Opportunistic runs a bulk transfer through a small receive buffer
// over strongly heterogeneous paths. Packets scheduled onto the slow
// subflow keep the (tight) meta window occupied for a long time;
// without opportunistic retransmission the fast subflow starves on
// window-blocked data, with it the blocking packets are duplicated
// onto the fast path.
func Opportunistic(scheduler string, backend core.Backend, seed int64) (OpportunisticResult, error) {
	paths := []PathSpec{
		{Name: "fast", Rate: netsim.ConstantRate(4e6), Delay: 5 * time.Millisecond},
		{Name: "slow", Rate: netsim.ConstantRate(4e6), Delay: 120 * time.Millisecond},
	}
	// 32 KiB receive buffer ≈ 22 segments: far below the slow path's
	// bandwidth-delay product, so window blocking dominates.
	s, err := NewScenario(seed, mptcp.Config{RcvBuf: 32 << 10}, backend, scheduler, paths...)
	if err != nil {
		return OpportunisticResult{}, err
	}
	res := OpportunisticResult{Scheduler: scheduler}
	const total = 1 << 20
	var delivered int64
	s.Conn.Receiver().OnDeliver(func(_ int64, size int, at time.Duration) {
		delivered += int64(size)
		if delivered >= total && res.FCT == 0 {
			res.FCT = at - flowWarmup
		}
	})
	s.Eng.At(flowWarmup, func() { s.Conn.Send(total, 0) })
	s.Eng.RunUntil(flowWarmup + 120*time.Second)
	res.Completed = delivered >= total
	if res.FCT > 0 {
		res.Goodput = float64(total) / res.FCT.Seconds()
	}
	return res, nil
}
