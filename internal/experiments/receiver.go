package experiments

import (
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
)

// ReceiverResult compares the legacy and optimized receivers (§4.2).
type ReceiverResult struct {
	Mode mptcp.ReceiverMode
	// MeanDeliveryLatency is the average time from flow start to
	// in-order delivery, weighted per segment.
	MeanDeliveryLatency time.Duration
	// FCT is when the last byte was delivered.
	FCT time.Duration
	// HeldSegments counts segments the legacy two-level queueing
	// buffered behind subflow gaps (always 0 for optimized).
	HeldSegments int64
}

// ReceiverComparison reproduces the §4.2 claim: for loss and
// out-of-order patterns across subflows, the optimized receiver pushes
// in-order data to the application strictly no later than the legacy
// receiver. The default scheduler's cross-subflow reinjection creates
// the decisive pattern: a hole on one subflow is filled via the other,
// but the legacy receiver still withholds the first subflow's
// subsequent segments until its own retransmission lands.
func ReceiverComparison(backend core.Backend, seed int64) ([]ReceiverResult, error) {
	const runs = 8
	var out []ReceiverResult
	for _, mode := range []mptcp.ReceiverMode{mptcp.ReceiverLegacy, mptcp.ReceiverOptimized} {
		var meanSum, fctSum time.Duration
		var held int64
		for run := int64(0); run < runs; run++ {
			s, err := NewScenario(seed+run*131, mptcp.Config{ReceiverMode: mode}, backend, "minRTT",
				PathSpec{Name: "p1", Rate: netsim.ConstantRate(2e6), Delay: 10 * time.Millisecond, Loss: 0.03},
				PathSpec{Name: "p2", Rate: netsim.ConstantRate(2e6), Delay: 25 * time.Millisecond, Loss: 0.03},
			)
			if err != nil {
				return nil, err
			}
			var latencySum time.Duration
			var segments int64
			var last time.Duration
			s.Conn.Receiver().OnDeliver(func(_ int64, _ int, at time.Duration) {
				latencySum += at
				segments++
				last = at
			})
			s.Eng.After(0, func() { s.Conn.Send(256<<10, 0) })
			s.Eng.RunUntil(120 * time.Second)
			if segments > 0 {
				meanSum += latencySum / time.Duration(segments)
			}
			fctSum += last
			held += s.Conn.Receiver().HeldByLegacy
		}
		out = append(out, ReceiverResult{
			Mode:                mode,
			MeanDeliveryLatency: meanSum / runs,
			FCT:                 fctSum / runs,
			HeldSegments:        held / runs,
		})
	}
	return out, nil
}
