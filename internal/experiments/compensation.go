package experiments

import (
	"fmt"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/schedlib"
)

// CompensationSchedulers are the three schedulers of Fig. 12.
var CompensationSchedulers = []string{"minRTT", "compensating", "selectiveCompensation"}

// CompensationPoint is one cell of the Fig. 12 sweep.
type CompensationPoint struct {
	Scheduler string
	RTTRatio  float64
	MeanFCT   time.Duration
	// OverheadVsDefault is wire bytes normalized to the default
	// scheduler's wire bytes at the same ratio (Fig. 12 middle).
	OverheadVsDefault float64
	wireBytes         float64
}

// CompensationSweep reproduces Fig. 12: short flows (64 KiB) over two
// subflows whose RTT ratio is swept; the application signals the end
// of flow, enabling the Compensating schedulers to retransmit
// still-in-flight packets across subflows.
func CompensationSweep(backend core.Backend, ratios []float64, runs int) ([]CompensationPoint, error) {
	// High path rates and a flow on the order of the aggregate initial
	// congestion window keep the short flow RTT-dominated — Fig. 11 is
	// about "the end of a short flow", where the last in-flight
	// packets on the slow subflow dominate the FCT.
	const flowSize = 24 << 10
	const fastOneWay = 10 * time.Millisecond

	var out []CompensationPoint
	for _, scheduler := range CompensationSchedulers {
		for _, ratio := range ratios {
			var sumFCT time.Duration
			var sumWire float64
			completed := 0
			for run := 0; run < runs; run++ {
				paths := []PathSpec{
					{Name: "fast", Rate: netsim.ConstantRate(8e6), Delay: fastOneWay},
					{Name: "slow", Rate: netsim.ConstantRate(8e6), Delay: time.Duration(float64(fastOneWay) * ratio)},
				}
				s, err := NewScenario(int64(run*37+5), mptcp.Config{}, backend, scheduler, paths...)
				if err != nil {
					return nil, err
				}
				s.Conn.SetRegister(schedlib.RegCompRatio, 20) // selective threshold: ratio 2
				fct, wire := runFlow(s, flowSize, true, 60*time.Second)
				if fct == 0 {
					continue
				}
				completed++
				sumFCT += fct
				sumWire += float64(wire)
			}
			if completed == 0 {
				return nil, fmt.Errorf("experiments: %s at ratio %.1f never completed", scheduler, ratio)
			}
			out = append(out, CompensationPoint{
				Scheduler: scheduler,
				RTTRatio:  ratio,
				MeanFCT:   sumFCT / time.Duration(completed),
				wireBytes: sumWire / float64(completed),
			})
		}
	}
	// Normalize overhead to the default scheduler per ratio.
	defaultWire := map[float64]float64{}
	for _, p := range out {
		if p.Scheduler == "minRTT" {
			defaultWire[p.RTTRatio] = p.wireBytes
		}
	}
	for i := range out {
		if base := defaultWire[out[i].RTTRatio]; base > 0 {
			out[i].OverheadVsDefault = out[i].wireBytes / base
		}
	}
	return out, nil
}

// FormatCompensation renders Fig. 12 (FCT and overhead).
func FormatCompensation(points []CompensationPoint) string {
	var ratios []float64
	seen := map[float64]bool{}
	byKey := map[string]CompensationPoint{}
	for _, p := range points {
		if !seen[p.RTTRatio] {
			seen[p.RTTRatio] = true
			ratios = append(ratios, p.RTTRatio)
		}
		byKey[fmt.Sprintf("%s/%.2f", p.Scheduler, p.RTTRatio)] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "rtt ratio")
	for _, s := range CompensationSchedulers {
		fmt.Fprintf(&b, " %17s FCT %17s ovh", s, s)
	}
	b.WriteString("\n")
	for _, r := range ratios {
		fmt.Fprintf(&b, "%-10.1f", r)
		for _, s := range CompensationSchedulers {
			p := byKey[fmt.Sprintf("%s/%.2f", s, r)]
			fmt.Fprintf(&b, " %17.1f ms  %17.2fx   ",
				float64(p.MeanFCT.Microseconds())/1000, p.OverheadVsDefault)
		}
		b.WriteString("\n")
	}
	return b.String()
}
