package benchrec

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{
		Schema: Schema, GitRev: "abc1234", GoVersion: "go1.22", Seed: 7,
		Experiments: []Experiment{
			{Name: "fig9_vm_2sbf", NsPerOp: 100, VsNative: 1.5},
			{Name: "hotpath_instrumented", NsPerOp: 90, AllocsPerOp: 0, P50NS: 80, P99NS: 200, P999NS: 400},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.GitRev != rec.GitRev || len(back.Experiments) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Experiments[1].P99NS != 200 {
		t.Fatalf("quantile lost: %+v", back.Experiments[1])
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteFile(path, Record{Schema: "other/v9"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestCompareGates(t *testing.T) {
	base := Record{Experiments: []Experiment{
		{Name: "a", NsPerOp: 100, VsNative: 2.0, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 50},
	}}
	th := Thresholds{NsTol: 0.10, RelTol: 0.10}

	ok := Record{Experiments: []Experiment{
		{Name: "a", NsPerOp: 109, VsNative: 2.1, AllocsPerOp: 0},
		{Name: "new", NsPerOp: 9999}, // unmatched: ignored
	}}
	if regs := Compare(base, ok, th); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}

	bad := Record{Experiments: []Experiment{
		{Name: "a", NsPerOp: 150, VsNative: 2.5, AllocsPerOp: 1},
	}}
	regs := Compare(base, bad, th)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (allocs, ns, ratio), got %v", regs)
	}
	for _, want := range []string{"allocs/op", "ns/op", "vs_native"} {
		found := false
		for _, r := range regs {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %s regression in %v", want, regs)
		}
	}
}

func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement run")
	}
	rec, err := Measure(7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != Schema || rec.GoVersion == "" {
		t.Fatalf("bad header: %+v", rec)
	}
	byName := map[string]Experiment{}
	for _, e := range rec.Experiments {
		byName[e.Name] = e
	}
	hot, ok := byName["hotpath_instrumented"]
	if !ok {
		t.Fatalf("no hotpath experiment in %v", rec.Experiments)
	}
	if hot.AllocsPerOp != 0 {
		t.Fatalf("instrumented hot path allocates %.2f/op, want 0", hot.AllocsPerOp)
	}
	if hot.P50NS <= 0 || hot.P99NS < hot.P50NS {
		t.Fatalf("quantiles out of order: %+v", hot)
	}
	if vm, ok := byName["fig9_vm_2sbf"]; !ok || vm.VsNative <= 0 {
		t.Fatalf("fig9 vm row missing or unratioed: %+v", vm)
	}
	if fp, ok := byName["conn_footprint"]; !ok || fp.BytesPerConn <= 0 {
		t.Fatalf("footprint row missing or zero: %+v", fp)
	}
}
