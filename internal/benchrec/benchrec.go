// Package benchrec measures the repository's key performance numbers
// and records them in a machine-readable form (BENCH_*.json at the
// repo root), so perf changes show up in review diffs and CI can gate
// on a committed baseline.
//
// A Record holds one experiment list: scheduler execution cost per
// back-end (the Fig. 9 measurement), the instrumented hot-path's
// allocation count and latency quantiles, and the per-connection
// memory footprint. Compare diffs a candidate against a baseline:
// allocation counts are gated exactly (the hot path must stay at 0
// allocs/op), ratios (vs_native) and raw ns/op within configurable
// tolerances — raw times need generous tolerances when baseline and
// candidate ran on different machines; the machine-independent signals
// are allocs_per_op and vs_native.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	goruntime "runtime"
	"strings"
	"time"

	"progmp/internal/core"
	"progmp/internal/experiments"
	"progmp/internal/fleet"
	"progmp/internal/mptcp"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/schedlib"
)

// Schema identifies the record format.
const Schema = "progmp.bench/v1"

// Experiment is one measured row. Zero-valued optional fields are
// omitted; AllocsPerOp always serializes because 0 is its most
// important value.
type Experiment struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// VsNative is the ratio to the native scheduler at the same
	// environment size (machine-independent, the primary CI gate).
	VsNative     float64 `json:"vs_native,omitempty"`
	P50NS        int64   `json:"p50_ns,omitempty"`
	P99NS        int64   `json:"p99_ns,omitempty"`
	P999NS       int64   `json:"p999_ns,omitempty"`
	BytesPerConn int64   `json:"bytes_per_conn,omitempty"`
}

// Record is one full measurement run.
type Record struct {
	Schema      string       `json:"schema"`
	GitRev      string       `json:"git_rev,omitempty"`
	GoVersion   string       `json:"go_version"`
	Seed        int64        `json:"seed"`
	Experiments []Experiment `json:"experiments"`
}

// gitRev best-effort resolves the working tree's short revision; ""
// outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// allocsPerRun reports the average allocations per call of f (the
// testing.AllocsPerRun measurement, available outside tests).
func allocsPerRun(runs int, f func()) float64 {
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	f() // warm up
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	goruntime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// hotPath measures the instrumented scheduling block in the same
// steady state the zero-alloc tests pin: congestion windows full, acks
// withheld, so every trigger runs snapshot + execute + apply without
// transmitting. Latency quantiles come from the conn.sched_exec_ns
// histogram the instrumentation feeds.
func hotPath(seed int64) (Experiment, error) {
	eng := netsim.NewEngine(seed)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	for _, name := range []string{"a", "b"} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: name, Rate: netsim.ConstantRate(10e6), Delay: 20 * time.Millisecond,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: name, Link: link}); err != nil {
			return Experiment{}, err
		}
	}
	s, err := core.Load("minRTT", schedlib.All["minRTT"], core.BackendVM)
	if err != nil {
		return Experiment{}, err
	}
	s.SetSynchronousSpecialization(true)
	conn.SetScheduler(s)
	reg := obs.NewRegistry()
	conn.Instrument(nil, reg)
	eng.RunUntil(10 * time.Millisecond)

	conn.Send(1<<20, 0)
	for i := 0; i < 64; i++ {
		conn.Kick()
	}
	allocs := allocsPerRun(200, conn.Kick)
	for i := 0; i < 5000; i++ {
		conn.Kick()
	}
	h := reg.Histogram("conn.sched_exec_ns")
	return Experiment{
		Name:        "hotpath_instrumented",
		NsPerOp:     h.Mean(),
		AllocsPerOp: allocs,
		P50NS:       h.Quantile(0.50),
		P99NS:       h.Quantile(0.99),
		P999NS:      h.Quantile(0.999),
	}, nil
}

// bytesPerConn reports the heap cost of one idle connection (with its
// arena, queues and receiver) amortized over n instances.
func bytesPerConn(seed int64, n int) int64 {
	eng := netsim.NewEngine(seed)
	conns := make([]*mptcp.Conn, 0, n)
	goruntime.GC()
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		conns = append(conns, mptcp.NewConn(eng, mptcp.Config{}))
	}
	goruntime.GC()
	goruntime.ReadMemStats(&after)
	per := (int64(after.HeapAlloc) - int64(before.HeapAlloc)) / int64(n)
	goruntime.KeepAlive(conns)
	if per < 0 {
		per = 0
	}
	return per
}

// fleetExperiments runs a small sharded fleet soak (internal/fleet)
// and reports its headline numbers: scheduler-decision latency
// quantiles (wall ns — machine-dependent, gate with generous
// tolerances), delivery latency quantiles (virtual time scaled to ns —
// machine-independent), and the steady-state heap cost per connection
// world. AllocsPerOp stays 0 by design: the soak's allocation count is
// dominated by world construction and would make the exact allocation
// gate flaky, while the hot path's zero-alloc property is already
// pinned by hotpath_instrumented.
func fleetExperiments(seed int64) ([]Experiment, error) {
	res, err := fleet.Run(fleet.Config{
		Conns:    2000,
		Seed:     seed,
		Duration: 500 * time.Millisecond,
		NewScheduler: func() (mptcp.Scheduler, error) {
			s, err := core.Load("minRTT", schedlib.All["minRTT"], core.BackendVM)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		Program: "minRTT",
	})
	if err != nil {
		return nil, err
	}
	return []Experiment{
		{
			Name:    "fleet_decision",
			NsPerOp: float64(res.DecisionP50NS),
			P50NS:   res.DecisionP50NS,
			P99NS:   res.DecisionP99NS,
		},
		{
			Name:  "fleet_delivery",
			P50NS: res.DeliveryP50US * 1000,
			P99NS: res.DeliveryP99US * 1000,
		},
		{
			Name:         "fleet_conn_footprint",
			BytesPerConn: res.BytesPerConn,
		},
	}, nil
}

// Measure runs the full experiment list. iters scales the Fig. 9
// execution count (<= 0 selects 200000, the progmp-bench default).
func Measure(seed int64, iters int) (Record, error) {
	if iters <= 0 {
		iters = 200000
	}
	rec := Record{
		Schema:    Schema,
		GitRev:    gitRev(),
		GoVersion: goruntime.Version(),
		Seed:      seed,
	}
	overhead, err := experiments.ExecutionOverhead(iters)
	if err != nil {
		return rec, err
	}
	for _, r := range overhead {
		rec.Experiments = append(rec.Experiments, Experiment{
			Name:     fmt.Sprintf("fig9_%s_%dsbf", r.Backend, r.Subflows),
			NsPerOp:  r.NsPerOp,
			VsNative: r.RelativeToNative,
		})
	}
	hot, err := hotPath(seed)
	if err != nil {
		return rec, err
	}
	rec.Experiments = append(rec.Experiments, hot)
	rec.Experiments = append(rec.Experiments, Experiment{
		Name:         "conn_footprint",
		BytesPerConn: bytesPerConn(seed, 64),
	})
	fleetExps, err := fleetExperiments(seed)
	if err != nil {
		return rec, err
	}
	rec.Experiments = append(rec.Experiments, fleetExps...)
	return rec, nil
}

// WriteFile serializes rec as indented JSON (trailing newline, so the
// committed baseline diffs cleanly).
func WriteFile(path string, rec Record) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a record and checks its schema.
func ReadFile(path string) (Record, error) {
	var rec Record
	buf, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(buf, &rec); err != nil {
		return rec, fmt.Errorf("%s: %v", path, err)
	}
	if rec.Schema != Schema {
		return rec, fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, Schema)
	}
	return rec, nil
}

// Thresholds tunes Compare. NsTol bounds the relative growth of raw
// ns/op (same-machine comparisons; use a generous value across
// machines). RelTol bounds the growth of the machine-independent
// vs_native ratio. Allocation counts have no tolerance: any growth is
// a regression.
type Thresholds struct {
	NsTol  float64
	RelTol float64
}

// DefaultThresholds is the 10%-regression gate of the bench tooling.
func DefaultThresholds() Thresholds { return Thresholds{NsTol: 0.10, RelTol: 0.10} }

// Compare diffs cand against base and returns one message per
// regression (empty means the gate passes). Experiments present in
// only one record are ignored: adding a measurement must not fail the
// gate retroactively. Latency quantiles are informational — they ride
// along in the record but carry machine noise raw ns gates already
// cover.
func Compare(base, cand Record, th Thresholds) []string {
	baseByName := make(map[string]Experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByName[e.Name] = e
	}
	var regressions []string
	for _, c := range cand.Experiments {
		b, ok := baseByName[c.Name]
		if !ok {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.2f > baseline %.2f (no tolerance)",
				c.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+th.NsTol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %.1f > baseline %.1f +%.0f%%",
				c.Name, c.NsPerOp, b.NsPerOp, th.NsTol*100))
		}
		if b.VsNative > 0 && c.VsNative > b.VsNative*(1+th.RelTol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: vs_native %.2f > baseline %.2f +%.0f%%",
				c.Name, c.VsNative, b.VsNative, th.RelTol*100))
		}
	}
	return regressions
}
