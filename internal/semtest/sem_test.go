// Package semtest pins the observable semantics of tricky language
// corners with golden action sequences, executed on all three
// back-ends. Where the differential tests prove the back-ends agree
// with each other, these tests prove they agree with the *documented*
// semantics.
package semtest

import (
	"fmt"
	"strings"
	"testing"

	"progmp/internal/core"
	"progmp/internal/envtest"
	"progmp/internal/runtime"
)

// run executes src on every back-end against identically-built
// environments and returns the rendered action trace (they must agree;
// the differential suite guarantees it, this re-checks cheaply).
func run(t *testing.T, src string, build func() *runtime.Env) (string, *runtime.Env) {
	t.Helper()
	var trace string
	var last *runtime.Env
	for _, backend := range []core.Backend{core.BackendInterpreter, core.BackendCompiled, core.BackendVM} {
		s, err := core.Load("sem", src, backend)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		env := build()
		s.Exec(env)
		got := render(env)
		if trace == "" {
			trace = got
		} else if got != trace {
			t.Fatalf("%s diverges:\n%s\nvs\n%s", backend, got, trace)
		}
		last = env
	}
	return trace, last
}

// render serializes actions as "KIND seq[@sbf]" tokens.
func render(env *runtime.Env) string {
	var parts []string
	for _, a := range env.Actions {
		switch a.Kind {
		case runtime.ActionPop:
			parts = append(parts, fmt.Sprintf("POP%d(%s)", pktSeq(a.Packet), a.Queue))
		case runtime.ActionPush:
			parts = append(parts, fmt.Sprintf("PUSH%d@%d", pktSeq(a.Packet), int64(a.Subflow)-1000))
		case runtime.ActionDrop:
			parts = append(parts, fmt.Sprintf("DROP%d", pktSeq(a.Packet)))
		}
	}
	return strings.Join(parts, " ")
}

// pktSeq inverts the envtest handle convention (10000 + seq).
func pktSeq(h runtime.PacketHandle) int64 { return int64(h) - 10000 }

func expect(t *testing.T, got, want string) {
	t.Helper()
	if got != want {
		t.Fatalf("actions = %q, want %q", got, want)
	}
}

func TestQueueVariablesAreLazy(t *testing.T) {
	// A queue-typed variable holds the filter chain, not a snapshot of
	// its results: predicates see register values current at USE time.
	src := `
VAR smalls = Q.FILTER(p => p.SIZE < R1);
SET(R1, 999999);
SET(R2, smalls.COUNT);
SET(R1, 10);
SET(R3, smalls.COUNT);`
	_, env := run(t, src, func() *runtime.Env {
		return envtest.EnvSpec{
			Q: []envtest.PktSpec{{Seq: 0, Size: 100}, {Seq: 1, Size: 2000}},
		}.Build()
	})
	if env.Reg(1) != 2 {
		t.Errorf("R2 = %d, want 2 (all packets below 999999)", env.Reg(1))
	}
	if env.Reg(2) != 0 {
		t.Errorf("R3 = %d, want 0 (none below 10)", env.Reg(2))
	}
}

func TestListVariablesAreMaterialized(t *testing.T) {
	// Subflow-list variables, in contrast, are materialized at the
	// declaration: later register changes do not alter membership.
	src := `
VAR fast = SUBFLOWS.FILTER(s => s.RTT < R1);
SET(R1, 0);
SET(R2, fast.COUNT);`
	_, env := run(t, src, func() *runtime.Env {
		e := envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{{ID: 0, RTT: 5}, {ID: 1, RTT: 50}},
		}.Build()
		e.Regs[0] = 10
		return e
	})
	if env.Reg(1) != 1 {
		t.Errorf("R2 = %d, want 1 (membership fixed at declaration)", env.Reg(1))
	}
}

func TestPopVisibilityAndOrdering(t *testing.T) {
	src := `
VAR a = Q.POP();
VAR b = Q.POP();
SUBFLOWS.GET(1).PUSH(b);
SUBFLOWS.GET(0).PUSH(a);`
	got, _ := run(t, src, func() *runtime.Env { return envtest.TwoSubflowEnv(3) })
	expect(t, got, "POP0(Q) POP1(Q) PUSH1@1 PUSH0@0")
}

func TestPushTopThenDropPattern(t *testing.T) {
	// The Fig. 10a OpportunisticRedundant idiom: TOP pushes do not
	// consume; the final POP+DROP does.
	src := `
FOREACH (VAR sbf IN SUBFLOWS) {
    sbf.PUSH(Q.TOP);
}
DROP(Q.POP());`
	got, _ := run(t, src, func() *runtime.Env { return envtest.TwoSubflowEnv(2) })
	expect(t, got, "PUSH0@0 PUSH0@1 POP0(Q) DROP0")
}

func TestNullChainsAreGraceful(t *testing.T) {
	src := `
VAR ghost = SUBFLOWS.FILTER(s => FALSE).MIN(s => s.RTT);
SET(R1, ghost.RTT + ghost.CWND * 2);
IF (ghost == NULL) { SET(R2, 1); }
ghost.PUSH(Q.POP());
VAR phantom = Q.FILTER(p => FALSE).TOP;
IF (phantom == NULL) { SET(R3, 1); }
SET(R4, phantom.SIZE);`
	got, env := run(t, src, func() *runtime.Env { return envtest.TwoSubflowEnv(1) })
	// The POP happens (and the packet is restored by the substrate at
	// apply time); the PUSH to NULL does not.
	expect(t, got, "POP0(Q)")
	if env.Reg(0) != 0 || env.Reg(1) != 1 || env.Reg(2) != 1 || env.Reg(3) != 0 {
		t.Errorf("registers = %v, want [0 1 1 0 ...]", env.Regs[:4])
	}
}

func TestForeachReturnUnwindsEverything(t *testing.T) {
	src := `
FOREACH (VAR sbf IN SUBFLOWS) {
    SET(R1, R1 + 1);
    IF (sbf.ID == 0) { RETURN; }
    SET(R2, 1);
}
SET(R3, 1);`
	_, env := run(t, src, func() *runtime.Env { return envtest.TwoSubflowEnv(0) })
	if env.Reg(0) != 1 || env.Reg(1) != 0 || env.Reg(2) != 0 {
		t.Errorf("registers = %v, want RETURN to stop loop and program", env.Regs[:3])
	}
}

func TestNestedFilterChains(t *testing.T) {
	src := `
VAR picked = QU.FILTER(p => p.SIZE > 50).FILTER(p => p.SENT_COUNT == 1).MIN(p => p.SEQ);
IF (picked != NULL) {
    SET(R1, picked.SEQ);
    SUBFLOWS.MIN(s => s.RTT).PUSH(picked);
}`
	got, env := run(t, src, func() *runtime.Env {
		return envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10, Cwnd: 10}},
			QU: []envtest.PktSpec{
				{Seq: 4, Size: 40, SentCount: 1},
				{Seq: 5, Size: 90, SentCount: 2},
				{Seq: 6, Size: 90, SentCount: 1},
				{Seq: 7, Size: 90, SentCount: 1},
			},
		}.Build()
	})
	expect(t, got, "PUSH6@0")
	if env.Reg(0) != 6 {
		t.Errorf("R1 = %d, want 6", env.Reg(0))
	}
}

func TestGetWrapsNegativeRegisters(t *testing.T) {
	src := `SET(R1, 0 - 5);
VAR s = SUBFLOWS.GET(R1);
SET(R2, s.ID);`
	_, env := run(t, src, func() *runtime.Env {
		return envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{{ID: 0, RTT: 1}, {ID: 1, RTT: 2}, {ID: 2, RTT: 3}},
		}.Build()
	})
	// -5 mod 3 wraps to 1.
	if env.Reg(1) != 1 {
		t.Errorf("GET(-5) over 3 subflows = ID %d, want 1", env.Reg(1))
	}
}

func TestShortCircuitBooleans(t *testing.T) {
	// With no subflows, the right-hand sides read properties of NULL;
	// gracefulness plus short-circuit must both yield stable values.
	src := `
VAR s = SUBFLOWS.MIN(x => x.RTT);
IF (s != NULL AND s.RTT < 10) { SET(R1, 1); } ELSE { SET(R1, 2); }
IF (s == NULL OR s.RTT > 10) { SET(R2, 1); } ELSE { SET(R2, 2); }`
	_, env := run(t, src, func() *runtime.Env { return envtest.EnvSpec{}.Build() })
	if env.Reg(0) != 2 || env.Reg(1) != 1 {
		t.Errorf("registers = %v, want [2 1]", env.Regs[:2])
	}
}

func TestArithmeticCorners(t *testing.T) {
	src := `
SET(R1, 0 - 7 / 2);
SET(R2, (0 - 7) % 3);
SET(R3, 1000000 * 1000000);
SET(R4, R3 / 1000000);`
	_, env := run(t, src, func() *runtime.Env { return envtest.EnvSpec{}.Build() })
	if env.Reg(0) != -3 {
		t.Errorf("R1 = %d, want -3 (truncated division)", env.Reg(0))
	}
	if env.Reg(1) != -1 {
		t.Errorf("R2 = %d, want -1 (Go-style remainder)", env.Reg(1))
	}
	if env.Reg(3) != 1000000 {
		t.Errorf("R4 = %d, want 64-bit arithmetic", env.Reg(3))
	}
}

func TestReinjectBeforeFresh(t *testing.T) {
	// The reinjection prelude services RQ before Q and avoids subflows
	// that already carried the packet.
	src := `
IF (!RQ.EMPTY) {
    VAR re = SUBFLOWS.FILTER(s => !RQ.TOP.SENT_ON(s)).MIN(s => s.RTT);
    IF (re != NULL) { re.PUSH(RQ.POP()); }
}
IF (!Q.EMPTY) {
    SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());
}`
	got, _ := run(t, src, func() *runtime.Env {
		return envtest.EnvSpec{
			Subflows: []envtest.SbfSpec{{ID: 0, RTT: 10, Cwnd: 9}, {ID: 1, RTT: 40, Cwnd: 9}},
			Q:        []envtest.PktSpec{{Seq: 9}},
			RQ:       []envtest.PktSpec{{Seq: 2, SentOn: []int{0}}},
		}.Build()
	})
	expect(t, got, "POP2(RQ) PUSH2@1 POP9(Q) PUSH9@0")
}

func TestGlobalRegistersAndQueueBytes(t *testing.T) {
	// G1..G8 read the execution-local copy of the shared global file;
	// GSET writes it and marks the register dirty for publication.
	// Q.BYTES sums the sizes of visible matching packets.
	src := `
GSET(G1, Q.BYTES + G2);
SET(R1, G1);
SET(R2, Q.FILTER(p => p.SIZE > 150).BYTES);`
	_, env := run(t, src, func() *runtime.Env {
		e := envtest.EnvSpec{
			Q: []envtest.PktSpec{{Seq: 0, Size: 100}, {Seq: 1, Size: 200}},
		}.Build()
		e.Globals[1] = 7 // preset G2 without dirtying it
		return e
	})
	if got := env.Global(0); got != 307 {
		t.Errorf("G1 = %d, want 307 (Q.BYTES 300 + G2 7)", got)
	}
	if got := env.Reg(0); got != 307 {
		t.Errorf("R1 = %d, want 307 (reads back the local GSET)", got)
	}
	if got := env.Reg(1); got != 200 {
		t.Errorf("R2 = %d, want 200 (filtered BYTES)", got)
	}
	if got := env.DirtyGlobals(); got != 1 {
		t.Errorf("dirty mask = %b, want only G1 dirty", got)
	}
}
