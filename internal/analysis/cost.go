package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"progmp/internal/lang"
	"progmp/internal/lang/types"
)

// The termination-bound model expresses a program's worst-case step
// count as a polynomial over two size parameters: S, the number of
// subflows (bounded by runtime.MaxSubflows), and N, the depth of a
// packet queue (unbounded by the language, so evaluated at a reference
// depth). The language cannot FOREACH over queues, so the polynomial
// degree is bounded by the static expression structure: FOREACH and
// list FILTER/MIN/MAX multiply their body by S, queue scans (TOP,
// COUNT, EMPTY, MIN, MAX, and POP through a filter chain) multiply the
// chain's predicate cost by N. Per-node constants are deliberately
// generous so the bound dominates all three back-ends.

// term is one monomial's exponents: coeff · S^s · N^n.
type term struct{ s, n int }

// maxExponent caps monomial degree; anything deeper saturates the
// coefficient instead (the bound stays sound: eval saturates anyway).
const maxExponent = 8

// poly is a sparse polynomial with saturating coefficients.
type poly map[term]int64

func constPoly(c int64) poly { return poly{term{}: c} }

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return s, false
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return p, false
}

// add returns p + q.
func (p poly) add(q poly) poly {
	out := make(poly, len(p)+len(q))
	for t, c := range p {
		out[t] = c
	}
	for t, c := range q {
		s, _ := satAdd(out[t], c)
		out[t] = s
	}
	return out
}

// addConst returns p + c.
func (p poly) addConst(c int64) poly { return p.add(constPoly(c)) }

// mul returns p · q with exponents clamped at maxExponent.
func (p poly) mul(q poly) poly {
	out := make(poly)
	for tp, cp := range p {
		for tq, cq := range q {
			t := term{tp.s + tq.s, tp.n + tq.n}
			if t.s > maxExponent {
				t.s = maxExponent
			}
			if t.n > maxExponent {
				t.n = maxExponent
			}
			c, _ := satMul(cp, cq)
			s, _ := satAdd(out[t], c)
			out[t] = s
		}
	}
	return out
}

// eval computes the bound at S subflows and N queued packets,
// saturating at MaxInt64.
func (p poly) eval(S, N int64) int64 {
	var total int64
	for t, c := range p {
		v := c
		for i := 0; i < t.s; i++ {
			v, _ = satMul(v, S)
		}
		for i := 0; i < t.n; i++ {
			v, _ = satMul(v, N)
		}
		total, _ = satAdd(total, v)
	}
	return total
}

// String renders the polynomial in a stable order, constants first,
// then by total degree: "12 + 34·S + 5·S·N²".
func (p poly) String() string {
	terms := make([]term, 0, len(p))
	for t, c := range p {
		if c != 0 {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	sort.Slice(terms, func(i, j int) bool {
		a, b := terms[i], terms[j]
		if a.s+a.n != b.s+b.n {
			return a.s+a.n < b.s+b.n
		}
		if a.s != b.s {
			return a.s < b.s
		}
		return a.n < b.n
	})
	var b strings.Builder
	for i, t := range terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		c := p[t]
		if c != 1 || (t.s == 0 && t.n == 0) {
			fmt.Fprintf(&b, "%d", c)
			if t.s > 0 || t.n > 0 {
				b.WriteString("·")
			}
		}
		writeVar := func(name string, exp int) {
			if exp == 0 {
				return
			}
			b.WriteString(name)
			if exp > 1 {
				fmt.Fprintf(&b, "^%d", exp)
			}
		}
		writeVar("S", t.s)
		if t.s > 0 && t.n > 0 {
			b.WriteString("·")
		}
		writeVar("N", t.n)
	}
	return b.String()
}

var (
	sTerm = poly{term{s: 1}: 1}
	nTerm = poly{term{n: 1}: 1}
)

// ---- Program cost ----

// costProgram bounds the whole program. Must run after the value walk
// so queue-variable chains (chainDef) are resolved.
func (a *analyzer) costProgram() poly {
	total := constPoly(1)
	for _, s := range a.info.Prog.Stmts {
		total = total.add(a.costStmt(s))
	}
	return total
}

func (a *analyzer) costStmt(s lang.Stmt) poly {
	switch s := s.(type) {
	case *lang.BlockStmt:
		total := constPoly(1)
		for _, inner := range s.Stmts {
			total = total.add(a.costStmt(inner))
		}
		return total
	case *lang.IfStmt:
		// Branch cost is summed, not maxed: sound and keeps the
		// polynomial representation closed.
		total := constPoly(1).add(a.costExpr(s.Cond))
		for _, inner := range s.Then.Stmts {
			total = total.add(a.costStmt(inner))
		}
		if s.Else != nil {
			total = total.add(a.costStmt(s.Else))
		}
		return total
	case *lang.VarDecl:
		return a.costExpr(s.Init).addConst(2)
	case *lang.ForeachStmt:
		body := constPoly(2)
		for _, inner := range s.Body.Stmts {
			body = body.add(a.costStmt(inner))
		}
		return a.costExpr(s.Iter).add(sTerm.mul(body)).addConst(2)
	case *lang.SetStmt:
		return a.costExpr(s.Value).addConst(2)
	case *lang.GSetStmt:
		return a.costExpr(s.Value).addConst(2)
	case *lang.PushStmt:
		return a.costExpr(s.Target).add(a.costExpr(s.Arg)).addConst(2)
	case *lang.DropStmt:
		return a.costExpr(s.Arg).addConst(2)
	case *lang.ReturnStmt:
		return constPoly(1)
	}
	return constPoly(1)
}

func (a *analyzer) costExpr(e lang.Expr) poly {
	switch e := e.(type) {
	case *lang.NumberLit, *lang.BoolLit, *lang.NullLit, *lang.RegExpr,
		*lang.GlobalExpr, *lang.Ident, *lang.EntityExpr:
		return constPoly(1)
	case *lang.UnaryExpr:
		return a.costExpr(e.X).addConst(1)
	case *lang.BinaryExpr:
		return a.costExpr(e.X).add(a.costExpr(e.Y)).addConst(1)
	case *lang.Lambda:
		return a.costExpr(e.Body).addConst(1)
	case *lang.MemberExpr:
		return a.costMember(e)
	}
	return constPoly(1)
}

func (a *analyzer) costMember(e *lang.MemberExpr) poly {
	m := a.info.Members[e]
	recv := a.costExpr(e.Recv)
	if m == nil {
		return recv.addConst(1)
	}
	lambdaBody := func() poly {
		if len(e.Args) == 1 {
			if lam, ok := e.Args[0].(*lang.Lambda); ok {
				return a.costExpr(lam.Body)
			}
		}
		return constPoly(1)
	}
	switch costKind(m) {
	case MemberFilterList:
		// Subflow-list filters are materialized eagerly: one predicate
		// evaluation per subflow.
		return recv.add(sTerm.mul(lambdaBody().addConst(2))).addConst(1)
	case MemberFilterQueue:
		// Queue filters are lazy: building the chain is O(1); the
		// predicates are charged where the chain is scanned.
		return recv.addConst(1)
	case MemberMinMaxList:
		return recv.add(sTerm.mul(lambdaBody().addConst(2))).addConst(1)
	case MemberMinMaxQueue:
		preds := a.queuePredCost(e.Recv)
		return recv.add(nTerm.mul(preds.add(lambdaBody()).addConst(2))).addConst(1)
	case MemberQueueScan:
		// TOP / POP / COUNT / EMPTY through a filter chain visit up to
		// N packets, paying every predicate on each. On the bare queue
		// they are O(1) — except COUNT, which walks the queue.
		preds := a.queuePredCost(e.Recv)
		if len(preds) == 1 && preds[term{}] == 0 && e.Name != "COUNT" && e.Name != "BYTES" {
			return recv.addConst(2)
		}
		return recv.add(nTerm.mul(preds.addConst(1))).addConst(1)
	}
	// Property reads, GET, HAS_WINDOW_FOR, SENT_ON: constant work plus
	// argument cost.
	total := recv.addConst(2)
	for _, arg := range e.Args {
		total = total.add(a.costExpr(arg))
	}
	return total
}

// costMemberKind classifies members for the cost model.
type costMemberKind int

const (
	memberOther costMemberKind = iota
	// MemberFilterList is FILTER over a subflow list.
	MemberFilterList
	// MemberFilterQueue is FILTER over a packet queue.
	MemberFilterQueue
	// MemberMinMaxList is MIN/MAX over a subflow list.
	MemberMinMaxList
	// MemberMinMaxQueue is MIN/MAX over a packet queue.
	MemberMinMaxQueue
	// MemberQueueScan is TOP/FIRST/POP/COUNT/BYTES/EMPTY on a packet queue.
	MemberQueueScan
)

// costKind folds the checker's member kinds and the receiver type into
// the five cost-relevant shapes.
func costKind(m *types.Member) costMemberKind {
	switch m.Kind {
	case types.MemberFilter:
		if m.RecvType == types.PacketQueue {
			return MemberFilterQueue
		}
		return MemberFilterList
	case types.MemberMin, types.MemberMax:
		if m.RecvType == types.PacketQueue {
			return MemberMinMaxQueue
		}
		return MemberMinMaxList
	case types.MemberTop, types.MemberPop, types.MemberEmpty, types.MemberCount, types.MemberBytes:
		if m.RecvType == types.PacketQueue {
			return MemberQueueScan
		}
		return memberOther
	}
	return memberOther
}

// queuePredCost sums the predicate-body costs along the FILTER chain
// rooted at a queue expression, resolving queue-typed variables to
// their defining chains (legal because variables are
// single-assignment and predicates are pure).
func (a *analyzer) queuePredCost(e lang.Expr) poly {
	switch e := e.(type) {
	case *lang.EntityExpr:
		return constPoly(0)
	case *lang.Ident:
		if sym, ok := a.info.Uses[e]; ok {
			if def, ok := a.chainDef[sym]; ok {
				return a.queuePredCost(def)
			}
		}
		return constPoly(0)
	case *lang.MemberExpr:
		m := a.info.Members[e]
		if m != nil && m.Kind == types.MemberFilter && m.RecvType == types.PacketQueue {
			pred := constPoly(1)
			if len(e.Args) == 1 {
				if lam, ok := e.Args[0].(*lang.Lambda); ok {
					pred = a.costExpr(lam.Body).addConst(1)
				}
			}
			return a.queuePredCost(e.Recv).add(pred)
		}
		return constPoly(0)
	}
	return constPoly(0)
}
