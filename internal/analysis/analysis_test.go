package analysis

import (
	"strings"
	"testing"

	"progmp/internal/schedlib"
)

// expectDiag asserts that the report contains a diagnostic with the
// given rule at the given line (line 0 means any line).
func expectDiag(t *testing.T, rep *Report, rule string, line int) {
	t.Helper()
	for _, d := range rep.Diagnostics {
		if d.Rule == rule && (line == 0 || d.Line == line) {
			if d.Severity != RuleSeverity[rule] {
				t.Errorf("rule %s reported with severity %s, want %s", rule, d.Severity, RuleSeverity[rule])
			}
			return
		}
	}
	t.Errorf("missing %s diagnostic at line %d; got:\n%s", rule, line, rep)
}

func expectNoDiag(t *testing.T, rep *Report, rule string) {
	t.Helper()
	for _, d := range rep.Diagnostics {
		if d.Rule == rule {
			t.Errorf("unexpected %s diagnostic: %s", rule, d)
		}
	}
}

// The golden per-rule cases: seeded-buggy schedulers that the gate
// must flag with the right rule id and position.
func TestRuleNoPush(t *testing.T) {
	rep := AnalyzeSource(`
IF (R1 > 0) {
    SET(R2, 1);
}
RETURN;
`, Options{})
	expectDiag(t, rep, RuleNoPush, 0)
}

func TestRuleDupPushStraightLine(t *testing.T) {
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleDupPush, 5)
}

func TestRuleDupPushLoopInvariant(t *testing.T) {
	rep := AnalyzeSource(`
VAR best = SUBFLOWS.MIN(s => s.RTT);
FOREACH (VAR s IN SUBFLOWS) {
    IF (best != NULL) {
        best.PUSH(Q.TOP);
    }
}
`, Options{})
	expectDiag(t, rep, RuleDupPush, 5)
}

// Pushing via the loop variable is the legitimate redundancy idiom and
// must stay silent.
func TestDupPushLoopVariantSilent(t *testing.T) {
	rep := AnalyzeSource(`
FOREACH (VAR s IN SUBFLOWS) {
    IF (s.HAS_WINDOW_FOR(Q.TOP)) {
        s.PUSH(Q.TOP);
    }
}
`, Options{})
	expectNoDiag(t, rep, RuleDupPush)
}

// A POP between two pushes of queue-head expressions changes what
// Q.TOP denotes, so no duplicate is reported.
func TestDupPushInvalidatedByPop(t *testing.T) {
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
    DROP(Q.POP());
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectNoDiag(t, rep, RuleDupPush)
}

func TestRulePopDiscard(t *testing.T) {
	rep := AnalyzeSource(`
VAR p = Q.POP();
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RulePopDiscard, 2)
}

func TestRuleDeadBranch(t *testing.T) {
	rep := AnalyzeSource(`
IF (1 > 2) {
    SET(R1, 1);
}
IF (2 > 1) {
    SET(R2, 1);
} ELSE {
    SET(R3, 1);
}
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleDeadBranch, 2)
	expectDiag(t, rep, RuleDeadBranch, 7)
}

func TestRuleFalseFilter(t *testing.T) {
	rep := AnalyzeSource(`
VAR none = SUBFLOWS.FILTER(s => 1 > 2);
FOREACH (VAR s IN none) {
    s.PUSH(Q.TOP);
}
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleFalseFilter, 2)
	// The provably empty list also makes the FOREACH dead.
	expectDiag(t, rep, RuleDeadBranch, 3)
}

func TestRuleDivZero(t *testing.T) {
	rep := AnalyzeSource(`
SET(R1, 5 / 0);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleDivZero, 2)
}

func TestRuleOverflow(t *testing.T) {
	rep := AnalyzeSource(`
SET(R1, 4611686018427387904 * 4);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleOverflow, 2)
}

func TestRuleStepBudget(t *testing.T) {
	rep := AnalyzeSource(`
FOREACH (VAR s IN SUBFLOWS) {
    IF (Q.FILTER(p => Q.COUNT > 0).COUNT > 0) {
        s.PUSH(Q.TOP);
    }
}
`, Options{})
	expectDiag(t, rep, RuleStepBudget, 0)
	if rep.StepBoundAt <= 0 {
		t.Errorf("step bound not recorded: %q at %d", rep.StepBound, rep.StepBoundAt)
	}
	if !strings.Contains(rep.StepBound, "N") {
		t.Errorf("step bound %q should depend on queue depth N", rep.StepBound)
	}
}

func TestRuleUnreachable(t *testing.T) {
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
RETURN;
SET(R1, 1);
`, Options{})
	expectDiag(t, rep, RuleUnreachable, 7)
}

func TestRuleRQIgnoredInfo(t *testing.T) {
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleRQIgnored, 0)
	// info-only reports are still Clean.
	if !rep.Clean() {
		t.Errorf("info-only report should be Clean; got:\n%s", rep)
	}
}

func TestRuleGlobalWriteStorm(t *testing.T) {
	// Unconditional GSET — even inside FOREACH — is a write storm.
	rep := AnalyzeSource(`
GSET(G1, Q.BYTES);
FOREACH (VAR s IN SUBFLOWS) {
    GSET(G2, s.RTT);
}
VAR sbf = SUBFLOWS.MIN(s2 => s2.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleGlobalWriteStorm, 2)
	expectDiag(t, rep, RuleGlobalWriteStorm, 4)
}

func TestRuleGlobalWriteStormGuardedSilent(t *testing.T) {
	rep := AnalyzeSource(`
IF (G1 != R1) {
    GSET(G1, R1);
}
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectNoDiag(t, rep, RuleGlobalWriteStorm)
}

func TestRuleGlobalWriteStormSuppressed(t *testing.T) {
	rep := AnalyzeSource(`
//vet:ignore global-write-storm
GSET(G1, Q.BYTES);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectNoDiag(t, rep, RuleGlobalWriteStorm)
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", rep.Suppressed)
	}
}

func TestRuleUseBeforeDef(t *testing.T) {
	rep := AnalyzeSource(`
IF (missing != NULL) {
    missing.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleUseBeforeDef, 2)
	if !rep.HasErrors() {
		t.Error("use-before-def must be an error")
	}
}

func TestRuleSingleAssignment(t *testing.T) {
	rep := AnalyzeSource(`
VAR x = 1;
VAR x = 2;
`, Options{})
	expectDiag(t, rep, RuleSingleAssignment, 3)
}

func TestRulePurity(t *testing.T) {
	rep := AnalyzeSource(`
IF (Q.POP() != NULL) {
    RETURN;
}
`, Options{})
	expectDiag(t, rep, RulePurity, 0)
}

func TestRuleSyntax(t *testing.T) {
	rep := AnalyzeSource(`IF (((`, Options{})
	expectDiag(t, rep, RuleSyntax, 0)
	if !rep.HasErrors() {
		t.Error("syntax failures must be errors")
	}
}

func TestSuppression(t *testing.T) {
	src := `
//vet:ignore pop-discard
VAR p = Q.POP();
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`
	rep := AnalyzeSource(src, Options{})
	expectNoDiag(t, rep, RulePopDiscard)
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", rep.Suppressed)
	}
	// Bare marker silences every rule on the next line.
	rep = AnalyzeSource(strings.Replace(src, "//vet:ignore pop-discard", "//vet:ignore", 1), Options{})
	expectNoDiag(t, rep, RulePopDiscard)
}

// The shipped scheduler library must be admissible: no errors, no
// warnings. Infos (rq-ignored on the deliberate redundancy designs)
// are allowed.
func TestSchedlibCorpusClean(t *testing.T) {
	for name, src := range schedlib.All {
		rep := AnalyzeSource(src, Options{})
		if !rep.Clean() {
			t.Errorf("schedlib %s is not clean under progmp-vet:\n%s", name, rep)
		}
		if rep.StepBoundAt <= 0 {
			t.Errorf("schedlib %s: missing step bound", name)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarning, SevError} {
		data, err := sev.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, data, back)
		}
	}
	var bad Severity
	if err := bad.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("expected error for unknown severity name")
	}
}

func TestRejectErrorMessage(t *testing.T) {
	rep := AnalyzeSource(`VAR x = 1; VAR x = 2;`, Options{})
	err := &RejectError{Name: "bad", Report: rep}
	msg := err.Error()
	for _, want := range []string{`"bad"`, "error", RuleSingleAssignment} {
		if !strings.Contains(msg, want) {
			t.Errorf("RejectError message %q missing %q", msg, want)
		}
	}
}

func TestRuleNondeterministicRankConstant(t *testing.T) {
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => 1);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleNondeterministicRank, 2)
}

func TestRuleNondeterministicRankRegisterOnly(t *testing.T) {
	// The rank reads state, but none of it is per-subflow: every
	// candidate still ranks equal.
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MAX(s => R1 + G2);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleNondeterministicRank, 2)
}

func TestRuleNondeterministicRankMSSOnly(t *testing.T) {
	// MSS is filled from the connection configuration, identical on
	// every subflow view, so a rank built only from it is a tie.
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.MIN(s => s.MSS * 2);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectDiag(t, rep, RuleNondeterministicRank, 2)
}

func TestNondeterministicRankPerSubflowSilent(t *testing.T) {
	// A genuine per-subflow read anywhere in the rank makes the
	// selection well-defined — including mixed with invariant terms.
	for _, src := range []string{
		`VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) { sbf.PUSH(Q.TOP); }`,
		`VAR sbf = SUBFLOWS.MAX(s => s.CWND - s.SKBS_IN_FLIGHT);
IF (sbf != NULL) { sbf.PUSH(Q.TOP); }`,
		`VAR sbf = SUBFLOWS.MIN(s => s.RTT + s.MSS + R1);
IF (sbf != NULL) { sbf.PUSH(Q.TOP); }`,
	} {
		rep := AnalyzeSource(src, Options{})
		expectNoDiag(t, rep, RuleNondeterministicRank)
	}
}

func TestNondeterministicRankFilterSilent(t *testing.T) {
	// FILTER predicates legitimately ignore the element in degenerate
	// tests; the rule is scoped to MIN/MAX ranks.
	rep := AnalyzeSource(`
VAR sbf = SUBFLOWS.FILTER(s => R1 > 0).MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectNoDiag(t, rep, RuleNondeterministicRank)
}

func TestRuleNondeterministicRankSuppressed(t *testing.T) {
	rep := AnalyzeSource(`
//vet:ignore nondeterministic-rank
VAR sbf = SUBFLOWS.MIN(s => 1);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
`, Options{})
	expectNoDiag(t, rep, RuleNondeterministicRank)
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", rep.Suppressed)
	}
}
