// Package analysis is the static analyzer behind progmp-vet and the
// control-plane admission gate. It runs a dataflow /
// abstract-interpretation pass over the type-checked AST and derives a
// static worst-case step bound, producing structured diagnostics
// (rule id, severity, position) that callers can relay or act on.
//
// The severity contract: errors are programs the front end already
// refuses (syntax, type, use-before-def, single-assignment, purity) —
// the analyzer re-expresses them as structured diagnostics; warnings
// are admissible-but-almost-certainly-buggy shapes (no reachable PUSH,
// duplicate PUSH, provably dead code, a step bound above the VM
// budget) that fail progmp-vet and the ctl swap gate unless forced;
// infos are advisory. Every warning fires only on a *definite* fact,
// so a clean corpus stays clean without per-rule tuning.
package analysis

import (
	"fmt"
	"strconv"
	"strings"

	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
	"progmp/internal/vm"
)

// DefaultQueueDepth is the reference queue depth N at which the step
// bound is evaluated. The language does not bound queue length, so the
// gate checks the polynomial at a depth generously above what the
// runtime's send queues hold in practice.
const DefaultQueueDepth = 1024

// Options parameterizes an analysis run. The zero value selects the
// defaults.
type Options struct {
	// RefSubflows is the subflow count S the step bound is evaluated
	// at. Defaults to runtime.MaxSubflows.
	RefSubflows int64
	// RefQueueDepth is the queue depth N the step bound is evaluated
	// at. Defaults to DefaultQueueDepth.
	RefQueueDepth int64
	// StepBudget is the execution budget the bound is compared against.
	// Defaults to vm.MaxSteps.
	StepBudget int64
}

func (o Options) withDefaults() Options {
	if o.RefSubflows <= 0 {
		o.RefSubflows = runtime.MaxSubflows
	}
	if o.RefQueueDepth <= 0 {
		o.RefQueueDepth = DefaultQueueDepth
	}
	if o.StepBudget <= 0 {
		o.StepBudget = vm.MaxSteps
	}
	return o
}

// Facts carries analysis results beyond diagnostics, for callers that
// act on proofs rather than report them (tests cross-check them
// against the interpreter).
type Facts struct {
	// DeadIfs lists IF statements with a provably constant condition.
	DeadIfs []DeadIf
	// Bound is the worst-case step polynomial over S and N.
	Bound string
	// BoundAt is the polynomial evaluated at the reference sizes.
	BoundAt int64
}

// DeadIf is one provably dead IF branch.
type DeadIf struct {
	If *lang.IfStmt
	// DeadThen is true when the condition is always FALSE (THEN branch
	// dead), false when it is always TRUE (ELSE branch dead).
	DeadThen bool
}

// Analyze runs the analyzer over a type-checked program and returns
// its report. Suppression comments are honored when the program
// carries its source (lang.Parse records it).
func Analyze(info *types.Info, opts Options) *Report {
	rep, _ := AnalyzeProgram(info, opts)
	return rep
}

// AnalyzeProgram is Analyze plus the machine-checkable facts.
func AnalyzeProgram(info *types.Info, opts Options) (*Report, *Facts) {
	opts = opts.withDefaults()
	a := &analyzer{
		info:     info,
		opts:     opts,
		rep:      &Report{},
		facts:    &Facts{},
		vals:     make(map[*types.Symbol]absVal),
		chainDef: make(map[*types.Symbol]lang.Expr),
		consumed: make(map[*types.Symbol]bool),
	}
	a.run()

	bound := a.costProgram()
	a.rep.StepBound = bound.String()
	a.rep.StepBoundAt = bound.eval(opts.RefSubflows, opts.RefQueueDepth)
	a.facts.Bound = a.rep.StepBound
	a.facts.BoundAt = a.rep.StepBoundAt
	if a.rep.StepBoundAt > opts.StepBudget {
		a.forceDiag(RuleStepBudget, info.Prog.Position(),
			"worst-case step bound %s = %d at S=%d subflows, N=%d queued packets exceeds the execution budget of %d; the runtime will cut this scheduler off and fall back",
			a.rep.StepBound, a.rep.StepBoundAt, opts.RefSubflows, opts.RefQueueDepth, opts.StepBudget)
	}

	a.rep.applySuppressions(info.Prog.Source)
	a.rep.sortDiags()
	return a.rep, a.facts
}

// AnalyzeSource parses, checks, and analyzes raw scheduler source. It
// never returns a Go error: syntax and checker failures become
// structured error diagnostics in the report, so callers get positions
// and rule ids even for programs the front end rejects.
func AnalyzeSource(src string, opts Options) *Report {
	prog, err := lang.Parse(src)
	if err != nil {
		rep := &Report{}
		for _, e := range splitErrors(err) {
			rep.Diagnostics = append(rep.Diagnostics, frontEndDiag(RuleSyntax, e))
		}
		rep.sortDiags()
		return rep
	}
	info, err := types.Check(prog)
	if err != nil {
		rep := &Report{}
		for _, e := range splitErrors(err) {
			rep.Diagnostics = append(rep.Diagnostics, frontEndDiag(classifyCheckError(e), e))
		}
		rep.applySuppressions(src)
		rep.sortDiags()
		return rep
	}
	return Analyze(info, opts)
}

// splitErrors flattens a front-end error into its individual messages
// (types.CheckError joins them with newlines).
func splitErrors(err error) []string {
	var out []string
	for _, line := range strings.Split(err.Error(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out
}

// classifyCheckError maps a checker message to the matching rule id.
func classifyCheckError(msg string) string {
	switch {
	case strings.Contains(msg, "undeclared identifier"):
		return RuleUseBeforeDef
	case strings.Contains(msg, "redeclared (single-assignment"):
		return RuleSingleAssignment
	case strings.Contains(msg, "POP has side effects"):
		return RulePurity
	}
	return RuleType
}

// frontEndDiag builds a diagnostic from a front-end message of the
// form "line:col: text" (the position prefix is optional).
func frontEndDiag(rule, msg string) Diagnostic {
	d := Diagnostic{Rule: rule, Severity: RuleSeverity[rule], Line: 1, Col: 1, Message: msg}
	parts := strings.SplitN(msg, ":", 3)
	if len(parts) == 3 {
		line, errL := strconv.Atoi(strings.TrimSpace(parts[0]))
		col, errC := strconv.Atoi(strings.TrimSpace(parts[1]))
		if errL == nil && errC == nil {
			d.Line, d.Col = line, col
			d.Message = strings.TrimSpace(parts[2])
		}
	}
	return d
}

// sprintf is fmt.Sprintf; aliased so the walker's diag helper reads as
// one call.
func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}
