package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic. Errors reject a program at load time,
// warnings reject it at the control-plane admission gate (unless
// forced) and fail progmp-vet, infos are advisory.
type Severity int

// The severities, ordered by increasing gravity.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

var severityNames = [...]string{
	SevInfo:    "info",
	SevWarning: "warning",
	SevError:   "error",
}

// String returns the severity name as spelled in diagnostics output.
func (s Severity) String() string {
	if s >= 0 && int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name, the stable wire form
// used by progmp-vet -json and the ctl protocol.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown severity %q", name)
}

// The analyzer rules. Each diagnostic carries one of these ids; the
// catalogue with rationale and examples lives in docs/ANALYSIS.md.
const (
	// RuleSyntax wraps parser errors (error).
	RuleSyntax = "syntax"
	// RuleType wraps type-checker errors other than the three below
	// (error).
	RuleType = "type"
	// RuleUseBeforeDef is a reference to an undeclared variable (error).
	RuleUseBeforeDef = "use-before-def"
	// RuleSingleAssignment is a redeclaration of a variable, violating
	// the single-assignment form (error).
	RuleSingleAssignment = "single-assignment"
	// RulePurity is a side effect (POP) outside the effect-root
	// positions: VAR initializer, PUSH argument, DROP argument (error).
	RulePurity = "purity"
	// RuleNoPush flags a program with no reachable PUSH on any path: it
	// can never move a packet, so installing it silently starves the
	// connection (warning).
	RuleNoPush = "no-push"
	// RuleDupPush flags pushing the same packet to the same subflow
	// twice on one path, or a loop-invariant PUSH whose target and
	// packet never change across FOREACH iterations (warning).
	RuleDupPush = "dup-push"
	// RulePopDiscard flags VAR x = queue.POP() where x is never pushed
	// or dropped: the pop's only observable effect is queue reordering
	// via the restore path (warning).
	RulePopDiscard = "pop-discard"
	// RuleDeadBranch flags an IF condition that is provably constant,
	// or a FOREACH over a provably empty list (warning).
	RuleDeadBranch = "dead-branch"
	// RuleFalseFilter flags a FILTER predicate that is provably FALSE:
	// the filtered collection is always empty (warning).
	RuleFalseFilter = "false-filter"
	// RuleDivZero flags division or modulo by a provably zero divisor;
	// the language defines x/0 = 0, so the whole expression collapses
	// (warning).
	RuleDivZero = "div-zero"
	// RuleOverflow flags constant arithmetic that wraps int64
	// (warning).
	RuleOverflow = "overflow"
	// RuleStepBudget flags a program whose static worst-case step bound
	// exceeds the VM execution budget at the reference environment
	// size; such a program would be cut off mid-execution and fall
	// back (warning — the runtime budget still contains it).
	RuleStepBudget = "step-budget"
	// RuleUnreachable flags statements that follow a RETURN on every
	// path (warning).
	RuleUnreachable = "unreachable"
	// RuleRQIgnored notes a scheduler that never consults the
	// reinjection queue RQ: packets suspected lost are never reinjected
	// by this program (info — deliberate for some redundancy designs).
	RuleRQIgnored = "rq-ignored"
	// RuleNondeterministicRank flags MIN/MAX over the subflow list
	// whose rank expression cannot tell the candidates apart: it never
	// reads the lambda variable, or reads it only through properties
	// that are connection-wide rather than per-subflow (MSS is filled
	// from the connection configuration, so every view carries the same
	// value). Every candidate then ranks equal and the selection
	// degenerates to the implementation's tie-break — stable in this
	// substrate (first in iteration order), but unspecified in a kernel
	// port of the same specification (warning).
	RuleNondeterministicRank = "nondeterministic-rank"
	// RuleGlobalWriteStorm flags a GSET that executes unconditionally on
	// every scheduling decision (not guarded by any IF; a FOREACH does
	// not count as a guard). Every dirty global publishes a new epoch of
	// the cross-connection shared-state store, so an unconditional write
	// turns each packet decision into a fleet-visible store mutation
	// (warning).
	RuleGlobalWriteStorm = "global-write-storm"
)

// RuleSeverity maps every rule id to its severity.
var RuleSeverity = map[string]Severity{
	RuleSyntax:               SevError,
	RuleType:                 SevError,
	RuleUseBeforeDef:         SevError,
	RuleSingleAssignment:     SevError,
	RulePurity:               SevError,
	RuleNoPush:               SevWarning,
	RuleDupPush:              SevWarning,
	RulePopDiscard:           SevWarning,
	RuleDeadBranch:           SevWarning,
	RuleFalseFilter:          SevWarning,
	RuleDivZero:              SevWarning,
	RuleOverflow:             SevWarning,
	RuleStepBudget:           SevWarning,
	RuleUnreachable:          SevWarning,
	RuleRQIgnored:            SevInfo,
	RuleNondeterministicRank: SevWarning,
	RuleGlobalWriteStorm:     SevWarning,
}

// Diagnostic is one analyzer finding with a stable rule id and source
// position, the structured form surfaced through progmp-vet and the
// ctl compile/swap verbs.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// String renders the diagnostic in the compiler-style line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s: %s [%s]", d.Line, d.Col, d.Severity, d.Message, d.Rule)
}

// Report is the full result of analyzing one program.
type Report struct {
	// Diagnostics is sorted by position, then rule id. Suppressed
	// diagnostics are removed (and counted in Suppressed).
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	// StepBound is the static worst-case step count as a polynomial in
	// S (subflow count) and N (queue depth).
	StepBound string `json:"step_bound,omitempty"`
	// StepBoundAt is the bound evaluated at the reference environment
	// size (Options.RefSubflows and RefQueueDepth), comparable against
	// the VM step budget.
	StepBoundAt int64 `json:"step_bound_steps,omitempty"`
	// Suppressed counts diagnostics silenced by //vet:ignore comments.
	Suppressed int `json:"suppressed,omitempty"`
}

// Count returns the number of diagnostics at exactly severity sev.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Errors returns the number of error diagnostics.
func (r *Report) Errors() int { return r.Count(SevError) }

// Warnings returns the number of warning diagnostics.
func (r *Report) Warnings() int { return r.Count(SevWarning) }

// HasErrors reports whether the program must be rejected.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// Clean reports whether the program carries no errors and no warnings
// (infos are allowed), the bar for control-plane admission.
func (r *Report) Clean() bool { return r.Errors() == 0 && r.Warnings() == 0 }

// String renders all diagnostics, one per line.
func (r *Report) String() string {
	lines := make([]string, len(r.Diagnostics))
	for i, d := range r.Diagnostics {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// sortDiags orders diagnostics by position, then rule, for stable
// output.
func (r *Report) sortDiags() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// RejectError is returned when a program fails admission: it carries
// the structured report so callers (the ctl server, progmpctl) can
// relay rule ids and positions instead of a flat string.
type RejectError struct {
	Name   string
	Report *Report
}

// Error summarizes the rejection.
func (e *RejectError) Error() string {
	n := e.Report.Errors()
	worst := "error"
	if n == 0 {
		n = e.Report.Warnings()
		worst = "warning"
	}
	msg := fmt.Sprintf("scheduler %q rejected by static analysis: %d %s(s)", e.Name, n, worst)
	if len(e.Report.Diagnostics) > 0 {
		msg += "; first: " + e.Report.Diagnostics[0].String()
	}
	return msg
}

// ---- Suppressions ----

// suppressionMarker introduces an in-source suppression comment:
//
//	sbf.PUSH(QU.TOP); //vet:ignore dup-push
//	//vet:ignore rq-ignored
//	VAR x = Q.POP();
//
// A marker silences the listed rules (comma- or space-separated; no
// list means every rule) on its own line and on the following line.
const suppressionMarker = "//vet:ignore"

// parseSuppressions scans src for suppression comments. The result
// maps a source line to the set of silenced rules; a nil set silences
// everything.
func parseSuppressions(src string) map[int]map[string]bool {
	var sup map[int]map[string]bool
	for i, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, suppressionMarker)
		if idx < 0 {
			continue
		}
		rest := line[idx+len(suppressionMarker):]
		var rules map[string]bool
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) > 0 {
			rules = make(map[string]bool, len(fields))
			for _, f := range fields {
				rules[f] = true
			}
		}
		if sup == nil {
			sup = make(map[int]map[string]bool)
		}
		sup[i+1] = rules
	}
	return sup
}

// applySuppressions removes diagnostics silenced by //vet:ignore
// comments in src, counting them in Suppressed.
func (r *Report) applySuppressions(src string) {
	sup := parseSuppressions(src)
	if sup == nil {
		return
	}
	matches := func(line int, rule string) bool {
		for _, l := range [2]int{line, line - 1} {
			rules, ok := sup[l]
			if !ok {
				continue
			}
			if rules == nil || rules[rule] {
				return true
			}
		}
		return false
	}
	kept := r.Diagnostics[:0]
	for _, d := range r.Diagnostics {
		if matches(d.Line, d.Rule) {
			r.Suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	r.Diagnostics = kept
}
