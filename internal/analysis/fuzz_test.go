package analysis

import (
	"math/rand"
	"testing"

	"progmp/internal/envtest"
	"progmp/internal/interp"
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
)

// markerValue is written to R8 by the marker statement the agreement
// test injects into provably dead branches.
const markerValue = 424242

// FuzzAnalyze asserts the analyzer's robustness contract: AnalyzeSource
// never panics, and every diagnostic it emits is well-formed (known
// rule id, severity matching the catalogue, positive position).
func FuzzAnalyze(f *testing.F) {
	// The front end's own fuzz seeds: valid programs, truncated
	// programs, and garbage.
	seeds := []string{
		"IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
		"VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);",
		"SET(R1, R1 + 1);",
		"FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.TOP); }",
		"DROP(RQ.POP());",
		"IF (Q.TOP != NULL) { RETURN; } ELSE IF (QU.EMPTY) { SET(R8, 0); }",
		"VAR x = (1 + 2) * -3 / R4 % 7;",
		"IF (TRUE) {",
		"))))(((",
		"VAR VAR VAR",
		"/* unterminated",
		"// only a comment",
		"",
		"\x00\xff",
		"R9 R0 R1",
		// Analyzer-specific shapes: suppressions, dead code, budgets.
		"//vet:ignore\nVAR p = Q.POP();",
		"IF (1 > 2) { SET(R1, 0 / 0); } RETURN; RETURN;",
		"FOREACH (VAR s IN SUBFLOWS) { IF (Q.FILTER(p => Q.COUNT > 0).COUNT > 0) { s.PUSH(Q.TOP); } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, src := range schedlib.All {
		f.Add(src)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		f.Add(envtest.GenProgram(rng))
	}
	f.Fuzz(func(t *testing.T, src string) {
		rep := AnalyzeSource(src, Options{})
		for _, d := range rep.Diagnostics {
			want, known := RuleSeverity[d.Rule]
			if !known {
				t.Fatalf("unknown rule id %q in %s", d.Rule, d)
			}
			if d.Severity != want {
				t.Fatalf("diagnostic %s has severity %s, want %s", d, d.Severity, want)
			}
			if d.Line < 1 || d.Col < 1 {
				t.Fatalf("diagnostic %s has non-positive position", d)
			}
		}
	})
}

// TestGeneratedCorpusNoPanic pushes a deterministic batch of random
// programs through the analyzer: no panics, well-formed reports, and a
// step bound for every program that checks.
func TestGeneratedCorpusNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		src := envtest.GenProgram(rng)
		rep := AnalyzeSource(src, Options{})
		if rep.HasErrors() {
			t.Fatalf("generated program #%d does not check:\n%s\n%s", i, src, rep)
		}
		if rep.StepBoundAt <= 0 {
			t.Fatalf("generated program #%d has no step bound:\n%s", i, src)
		}
	}
}

// TestDeadBranchAgreement is the analyzer/interpreter agreement check:
// a marker statement injected into a branch the analyzer proved dead
// must not change the program's behaviour on any environment. The
// marked and unmarked programs are run on identical random
// environments and compared on registers and actions.
func TestDeadBranchAgreement(t *testing.T) {
	// Handcrafted programs guarantee coverage; generated programs add
	// breadth (their random comparisons are occasionally constant).
	sources := []string{
		`
IF (1 > 2) {
    SET(R1, 7);
} ELSE {
    SET(R2, R3 + 1);
}
IF (2 > 1) {
    SET(R4, 1);
} ELSE {
    DROP(Q.POP());
}
FOREACH (VAR s IN SUBFLOWS) {
    IF (5 < 3) {
        s.PUSH(Q.TOP);
    }
}
IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
    SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}
`,
		`
VAR none = SUBFLOWS.FILTER(s => FALSE);
IF (none.COUNT > 0) {
    DROP(Q.POP());
}
IF (none.EMPTY) {
    SET(R1, 1);
} ELSE {
    SET(R2, 1);
}
`,
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		sources = append(sources, envtest.GenProgram(rng))
	}

	deadSeen := 0
	for i, src := range sources {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("program #%d: %v", i, err)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("program #%d: %v", i, err)
		}
		_, facts := AnalyzeProgram(info, Options{})
		if len(facts.DeadIfs) == 0 {
			continue
		}
		marked := 0
		for _, di := range facts.DeadIfs {
			marker := &lang.SetStmt{Reg: 7, Value: &lang.NumberLit{Val: markerValue}}
			if di.DeadThen {
				di.If.Then.Stmts = append(di.If.Then.Stmts, marker)
				marked++
			} else if blk, ok := di.If.Else.(*lang.BlockStmt); ok {
				blk.Stmts = append(blk.Stmts, marker)
				marked++
			}
		}
		if marked == 0 {
			continue
		}
		deadSeen += marked
		markedSrc := prog.Format()
		for trial := 0; trial < 20; trial++ {
			seed := rng.Int63()
			origEnv := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
			markEnv := envtest.RandomEnv(rand.New(rand.NewSource(seed)))
			execSrc(t, src, origEnv)
			execSrc(t, markedSrc, markEnv)
			if *origEnv.Regs != *markEnv.Regs {
				t.Fatalf("program #%d: marker in analyzer-proven dead branch executed\nsource:\n%s\nmarked:\n%s\nregs %v vs %v",
					i, src, markedSrc, *origEnv.Regs, *markEnv.Regs)
			}
			if !envtest.SameActions(envtest.StripSites(origEnv.Actions), envtest.StripSites(markEnv.Actions)) {
				t.Fatalf("program #%d: dead-branch marker changed actions\nsource:\n%s", i, src)
			}
		}
	}
	if deadSeen == 0 {
		t.Fatal("agreement test exercised no dead branches")
	}
}

func execSrc(t *testing.T, src string, env *runtime.Env) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	interp.New(info).Exec(env)
}
