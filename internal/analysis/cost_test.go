package analysis

import (
	"math"
	"strings"
	"testing"
)

func analyzeOK(t *testing.T, src string) *Report {
	t.Helper()
	rep := AnalyzeSource(src, Options{})
	if rep.HasErrors() {
		t.Fatalf("program does not check:\n%s", rep)
	}
	return rep
}

func TestPolyArithmetic(t *testing.T) {
	p := constPoly(3).add(sTerm).add(sTerm.mul(nTerm).mul(nTerm))
	if got := p.eval(2, 10); got != 3+2+2*10*10 {
		t.Errorf("eval = %d, want %d", got, 3+2+2*10*10)
	}
	if got := p.String(); got != "3 + S + S·N^2" {
		t.Errorf("String = %q", got)
	}
	if got := constPoly(0).String(); got != "0" {
		t.Errorf("zero poly = %q", got)
	}
}

func TestPolySaturation(t *testing.T) {
	big := constPoly(math.MaxInt64).add(constPoly(math.MaxInt64))
	if got := big.eval(1, 1); got != math.MaxInt64 {
		t.Errorf("saturating add = %d", got)
	}
	deep := sTerm
	for i := 0; i < 2*maxExponent; i++ {
		deep = deep.mul(sTerm)
	}
	// Exponent clamping keeps the representation finite and eval sound.
	if got := deep.eval(2, 1); got != 1<<maxExponent {
		t.Errorf("clamped eval = %d, want %d", got, 1<<maxExponent)
	}
}

func TestSatHelpers(t *testing.T) {
	if v, ovf := satAdd(math.MaxInt64, 1); !ovf || v != math.MaxInt64 {
		t.Errorf("satAdd overflow: %d %v", v, ovf)
	}
	if v, ovf := satAdd(math.MinInt64, -1); !ovf || v != math.MinInt64 {
		t.Errorf("satAdd underflow: %d %v", v, ovf)
	}
	if v, ovf := satMul(math.MaxInt64, 2); !ovf || v != math.MaxInt64 {
		t.Errorf("satMul overflow: %d %v", v, ovf)
	}
	if v, ovf := satMul(3, 4); ovf || v != 12 {
		t.Errorf("satMul plain: %d %v", v, ovf)
	}
}

// A straight-line program's bound is a constant: no S or N terms.
func TestCostStraightLine(t *testing.T) {
	rep := analyzeOK(t, `
SET(R1, R2 + 3);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (sbf != NULL) {
    sbf.PUSH(Q.TOP);
}
RETURN;
`)
	// SUBFLOWS.MIN is a list scan, so S appears; N must not.
	if strings.Contains(rep.StepBound, "N") {
		t.Errorf("no queue scan, but bound %q mentions N", rep.StepBound)
	}
	if !strings.Contains(rep.StepBound, "S") {
		t.Errorf("list MIN should contribute an S term: %q", rep.StepBound)
	}
}

// FOREACH over SUBFLOWS multiplies the body by S; a queue MIN through
// a filter chain multiplies its predicates by N.
func TestCostShapes(t *testing.T) {
	loop := analyzeOK(t, `
FOREACH (VAR s IN SUBFLOWS) {
    s.PUSH(Q.TOP);
}
`)
	if !strings.Contains(loop.StepBound, "S") {
		t.Errorf("FOREACH bound %q lacks S", loop.StepBound)
	}

	scan := analyzeOK(t, `
VAR old = Q.FILTER(p => p.SENT_COUNT > 0).MIN(p => p.SEQ);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (old != NULL AND sbf != NULL) {
    sbf.PUSH(old);
}
`)
	if !strings.Contains(scan.StepBound, "N") {
		t.Errorf("queue MIN bound %q lacks N", scan.StepBound)
	}
}

// Nesting a queue scan inside a queue-filter predicate squares N; the
// reference evaluation must blow past the budget while the simple scan
// stays far under it.
func TestCostBudgetSeparation(t *testing.T) {
	simple := analyzeOK(t, `
IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
    SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());
}
`)
	if simple.StepBoundAt <= 0 || simple.StepBoundAt > 1<<20 {
		t.Errorf("simple scheduler bound %d out of expected range", simple.StepBoundAt)
	}
	expectNoDiag(t, simple, RuleStepBudget)

	nested := AnalyzeSource(`
FOREACH (VAR s IN SUBFLOWS) {
    IF (Q.FILTER(p => Q.COUNT > p.SEQ).COUNT > 0) {
        s.PUSH(Q.TOP);
    }
}
`, Options{})
	expectDiag(t, nested, RuleStepBudget, 0)
	if nested.StepBoundAt <= simple.StepBoundAt {
		t.Errorf("nested bound %d should exceed simple bound %d", nested.StepBoundAt, simple.StepBoundAt)
	}
}

// Chained queue filters through variables are resolved when costing
// the final scan.
func TestCostChainedFilters(t *testing.T) {
	rep := analyzeOK(t, `
VAR unsent = Q.FILTER(p => p.SENT_COUNT == 0);
VAR small = unsent.FILTER(p => p.SIZE < 1000);
VAR sbf = SUBFLOWS.MIN(s => s.RTT);
IF (!small.EMPTY AND sbf != NULL) {
    sbf.PUSH(small.POP());
}
`)
	if !strings.Contains(rep.StepBound, "N") {
		t.Errorf("chained filter scan bound %q lacks N", rep.StepBound)
	}
}

// Tightening the budget makes an otherwise fine scheduler trip the
// step-budget rule: the comparison uses Options, not a constant.
func TestCostRespectsOptions(t *testing.T) {
	src := `
IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
    SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());
}
`
	rep := AnalyzeSource(src, Options{StepBudget: 10})
	expectDiag(t, rep, RuleStepBudget, 0)
}
