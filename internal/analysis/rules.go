package analysis

import (
	"progmp/internal/lang"
	"progmp/internal/lang/types"
	"progmp/internal/runtime"
)

// analyzer carries the state of one analysis run: abstract values per
// symbol, queue-chain definitions for the cost model, consumption
// tracking for pop-discard, and the enclosing-loop stack for the
// loop-invariant duplicate-push rule.
type analyzer struct {
	info  *types.Info
	opts  Options
	rep   *Report
	facts *Facts

	vals     map[*types.Symbol]absVal
	chainDef map[*types.Symbol]lang.Expr
	consumed map[*types.Symbol]bool
	popDecls []popDecl
	loops    []*loopFrame

	// reachable is false while walking provably dead code; diagnostics
	// and push accounting are disabled there so a dead branch does not
	// generate follow-on noise.
	reachable bool
	sawPush   bool
	sawRQ     bool

	// condDepth counts enclosing IF branches. A GSET at depth zero runs
	// on every execution — FOREACH does not guard it, since a loop body
	// still executes whenever subflows exist — which is the shape the
	// global-write-storm rule flags.
	condDepth int

	unreachableReported bool
}

type popDecl struct {
	sym *types.Symbol
	pos lang.Pos
}

// loopFrame describes one enclosing FOREACH for the loop-invariance
// check: deps is the set of symbols whose value changes across
// iterations (the loop variable and anything derived from it or from a
// POP), setRegs the registers the body mutates, bodyPops whether the
// body pops any queue (which makes queue-derived packet expressions
// iteration-dependent).
type loopFrame struct {
	stmt       *lang.ForeachStmt
	deps       map[*types.Symbol]bool
	setRegs    [runtime.NumRegisters]bool
	setGlobals [runtime.NumGlobals]bool
	bodyPops   bool
}

// pathState is the per-path duplicate-push tracking: pushed maps a
// canonical "target|packet" key to its first occurrence.
type pathState struct {
	pushed map[string]pushRec
}

type pushRec struct {
	pos lang.Pos
	// volatile entries reference a queue entity directly; any POP
	// changes what Q.TOP etc. denotes, so they are invalidated.
	volatile bool
}

func newPathState() *pathState {
	return &pathState{pushed: make(map[string]pushRec)}
}

func (ps *pathState) clone() *pathState {
	out := &pathState{pushed: make(map[string]pushRec, len(ps.pushed))}
	for k, v := range ps.pushed {
		out.pushed[k] = v
	}
	return out
}

func (ps *pathState) dropVolatile() {
	for k, v := range ps.pushed {
		if v.volatile {
			delete(ps.pushed, k)
		}
	}
}

// diag records a diagnostic unless the walker is inside dead code.
func (a *analyzer) diag(rule string, pos lang.Pos, format string, args ...any) {
	if !a.reachable {
		return
	}
	a.forceDiag(rule, pos, format, args...)
}

func (a *analyzer) forceDiag(rule string, pos lang.Pos, format string, args ...any) {
	a.rep.Diagnostics = append(a.rep.Diagnostics, Diagnostic{
		Rule:     rule,
		Severity: RuleSeverity[rule],
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  sprintf(format, args...),
	})
}

// run is the main walk: value analysis, reachability, and the
// per-statement rules, followed by the whole-program rules.
func (a *analyzer) run() {
	a.reachable = true
	a.block(a.info.Prog.Stmts, newPathState())

	pos := a.info.Prog.Position()
	if !a.sawPush {
		a.forceDiag(RuleNoPush, pos,
			"no PUSH is reachable on any path: this scheduler can never send a packet")
	}
	for _, pd := range a.popDecls {
		if !a.consumed[pd.sym] {
			a.forceDiag(RulePopDiscard, pd.pos,
				"popped packet %s is never pushed or dropped; the POP only reorders the queue via the restore path", pd.sym.Name)
		}
	}
	if !a.sawRQ {
		a.forceDiag(RuleRQIgnored, pos,
			"scheduler never consults the reinjection queue RQ; packets suspected lost are not reinjected by this program")
	}
}

// block walks a statement list, tracking RETURN termination.
func (a *analyzer) block(stmts []lang.Stmt, ps *pathState) (terminated bool) {
	for _, s := range stmts {
		if terminated {
			if !a.unreachableReported && a.reachable {
				a.diag(RuleUnreachable, s.Position(),
					"statement is unreachable: every path through the preceding statements has returned")
				a.unreachableReported = true
			}
			saved := a.reachable
			a.reachable = false
			a.stmt(s, ps)
			a.reachable = saved
			continue
		}
		if a.stmt(s, ps) {
			terminated = true
		}
	}
	return terminated
}

// stmt walks one statement; the result reports whether every path
// through it ends in RETURN.
func (a *analyzer) stmt(s lang.Stmt, ps *pathState) (terminated bool) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return a.block(s.Stmts, ps)

	case *lang.ReturnStmt:
		return true

	case *lang.VarDecl:
		v := a.expr(s.Init)
		sym := a.info.Defs[s]
		if sym != nil {
			a.vals[sym] = v
			switch sym.Type {
			case types.PacketQueue, types.SubflowList:
				a.chainDef[sym] = s.Init
			}
		}
		r := a.exprRefs(s.Init)
		if r.pop {
			ps.dropVolatile()
			if sym != nil && sym.Type == types.Packet && a.isRootPop(s.Init) && a.reachable {
				a.popDecls = append(a.popDecls, popDecl{sym: sym, pos: s.VarPos})
			}
		}
		a.noteLoopDep(sym, r)
		return false

	case *lang.SetStmt:
		a.expr(s.Value)
		return false

	case *lang.GSetStmt:
		a.expr(s.Value)
		if a.condDepth == 0 {
			a.diag(RuleGlobalWriteStorm, s.SetPos,
				"GSET(G%d, ...) executes unconditionally on every scheduling decision: each write publishes a new shared-state epoch to all connections; guard it with an IF", s.Reg+1)
		}
		return false

	case *lang.IfStmt:
		cv := a.expr(s.Cond).b
		if cv == bFalse {
			a.diag(RuleDeadBranch, s.Cond.Position(),
				"IF condition is always FALSE; the branch body never executes")
			if a.reachable {
				a.facts.DeadIfs = append(a.facts.DeadIfs, DeadIf{If: s, DeadThen: true})
			}
		}
		if cv == bTrue && s.Else != nil {
			a.diag(RuleDeadBranch, s.Else.Position(),
				"IF condition is always TRUE; the ELSE branch never executes")
			if a.reachable {
				a.facts.DeadIfs = append(a.facts.DeadIfs, DeadIf{If: s, DeadThen: false})
			}
		}
		saved := a.reachable
		a.condDepth++
		a.reachable = saved && cv != bFalse
		thenTerm := a.block(s.Then.Stmts, ps.clone())
		a.reachable = saved && cv != bTrue
		var elseTerm bool
		if s.Else != nil {
			elseTerm = a.stmt(s.Else, ps.clone())
		}
		a.condDepth--
		a.reachable = saved
		switch {
		case cv == bTrue:
			return thenTerm
		case cv == bFalse:
			return s.Else != nil && elseTerm
		default:
			return thenTerm && s.Else != nil && elseTerm
		}

	case *lang.ForeachStmt:
		iv := a.expr(s.Iter)
		if iv.empty == bTrue {
			a.diag(RuleDeadBranch, s.Iter.Position(),
				"FOREACH iterates a provably empty list; the body never executes")
		}
		sym := a.info.Defs[s]
		frame := &loopFrame{stmt: s, deps: map[*types.Symbol]bool{sym: true}}
		a.prescanLoopBody(s.Body, frame)
		if sym != nil {
			a.vals[sym] = refVal(nNonNull)
		}
		saved := a.reachable
		a.reachable = saved && iv.empty != bTrue
		a.loops = append(a.loops, frame)
		a.block(s.Body.Stmts, ps.clone())
		a.loops = a.loops[:len(a.loops)-1]
		a.reachable = saved
		return false

	case *lang.PushStmt:
		a.expr(s.Target)
		a.expr(s.Arg)
		if a.reachable {
			a.sawPush = true
		}
		rt := a.exprRefs(s.Target)
		ra := a.exprRefs(s.Arg)
		if id, ok := s.Arg.(*lang.Ident); ok {
			if sym := a.info.Uses[id]; sym != nil {
				a.consumed[sym] = true
			}
		}
		if ra.pop {
			ps.dropVolatile()
		} else {
			key := lang.FormatExpr(s.Target) + "\x00" + lang.FormatExpr(s.Arg)
			if prev, dup := ps.pushed[key]; dup {
				a.diag(RuleDupPush, s.PushAt,
					"duplicate PUSH: the same packet is pushed to the same subflow twice on this path (first at %s)", prev.pos)
			} else {
				ps.pushed[key] = pushRec{pos: s.PushAt, volatile: rt.queues || ra.queues}
			}
		}
		for _, fr := range a.loops {
			if a.loopInvariant(rt, fr) && a.loopInvariant(ra, fr) && !ra.pop && !rt.pop {
				a.diag(RuleDupPush, s.PushAt,
					"PUSH target and packet are invariant across the FOREACH at %s: every iteration re-pushes the same packet to the same subflow", fr.stmt.ForPos)
				break
			}
		}
		return false

	case *lang.DropStmt:
		a.expr(s.Arg)
		if id, ok := s.Arg.(*lang.Ident); ok {
			if sym := a.info.Uses[id]; sym != nil {
				a.consumed[sym] = true
			}
		}
		if a.exprRefs(s.Arg).pop {
			ps.dropVolatile()
		}
		return false
	}
	return false
}

// noteLoopDep propagates loop-dependence: a variable derived from a
// loop-dependent symbol or from a POP differs across iterations.
func (a *analyzer) noteLoopDep(sym *types.Symbol, r refSet) {
	if sym == nil {
		return
	}
	for _, fr := range a.loops {
		if r.pop {
			fr.deps[sym] = true
			continue
		}
		for dep := range r.syms {
			if fr.deps[dep] {
				fr.deps[sym] = true
				break
			}
		}
	}
}

// loopInvariant reports whether an expression provably denotes the
// same value on every iteration of fr.
func (a *analyzer) loopInvariant(r refSet, fr *loopFrame) bool {
	for sym := range r.syms {
		if fr.deps[sym] {
			return false
		}
	}
	for i, used := range r.regs {
		if used && fr.setRegs[i] {
			return false
		}
	}
	for i, used := range r.globals {
		if used && fr.setGlobals[i] {
			return false
		}
	}
	if r.queues && fr.bodyPops {
		return false
	}
	return true
}

// prescanLoopBody collects the registers a loop body SETs and whether
// it pops any queue, before the body itself is walked.
func (a *analyzer) prescanLoopBody(b *lang.BlockStmt, fr *loopFrame) {
	var walkStmt func(s lang.Stmt)
	walkExpr := func(e lang.Expr) {
		if a.exprRefs(e).pop {
			fr.bodyPops = true
		}
	}
	walkStmt = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, inner := range s.Stmts {
				walkStmt(inner)
			}
		case *lang.IfStmt:
			for _, inner := range s.Then.Stmts {
				walkStmt(inner)
			}
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *lang.ForeachStmt:
			for _, inner := range s.Body.Stmts {
				walkStmt(inner)
			}
		case *lang.VarDecl:
			walkExpr(s.Init)
		case *lang.SetStmt:
			if s.Reg >= 0 && s.Reg < runtime.NumRegisters {
				fr.setRegs[s.Reg] = true
			}
		case *lang.GSetStmt:
			if s.Reg >= 0 && s.Reg < runtime.NumGlobals {
				fr.setGlobals[s.Reg] = true
			}
			walkExpr(s.Value)
		case *lang.PushStmt:
			walkExpr(s.Arg)
		case *lang.DropStmt:
			walkExpr(s.Arg)
		}
	}
	for _, inner := range b.Stmts {
		walkStmt(inner)
	}
}

// isRootPop reports whether e is exactly queue.POP() (the only shape
// the type checker admits for POP).
func (a *analyzer) isRootPop(e lang.Expr) bool {
	m, ok := e.(*lang.MemberExpr)
	if !ok {
		return false
	}
	res := a.info.Members[m]
	return res != nil && res.Kind == types.MemberPop
}

// checkRank implements nondeterministic-rank: a MIN/MAX selection
// over subflows is only meaningful when its rank can distinguish the
// candidates of one connection.
func (a *analyzer) checkRank(e *lang.MemberExpr) {
	if len(e.Args) != 1 {
		return
	}
	lam, ok := e.Args[0].(*lang.Lambda)
	if !ok {
		return
	}
	sym := a.info.Defs[lam]
	if sym == nil {
		return
	}
	if !a.rankDistinguishes(lam.Body, sym) {
		a.diag(RuleNondeterministicRank, e.NamePos,
			"%s rank cannot distinguish the subflows (it never reads a per-subflow property of %s): every candidate ranks equal and the pick falls to an unspecified tie-break", e.Name, lam.Param)
	}
}

// rankDistinguishes reports whether the rank expression reads sym
// through at least one property that varies per subflow. MSS is
// connection-wide — every subflow view is filled from the connection
// configuration — so a rank built only from it still ranks every
// candidate equal.
func (a *analyzer) rankDistinguishes(e lang.Expr, sym *types.Symbol) bool {
	switch e := e.(type) {
	case *lang.UnaryExpr:
		return a.rankDistinguishes(e.X, sym)
	case *lang.BinaryExpr:
		return a.rankDistinguishes(e.X, sym) || a.rankDistinguishes(e.Y, sym)
	case *lang.Lambda:
		return a.rankDistinguishes(e.Body, sym)
	case *lang.MemberExpr:
		if id, ok := e.Recv.(*lang.Ident); ok && a.info.Uses[id] == sym {
			m := a.info.Members[e]
			if m == nil || m.Kind != types.MemberSbfInt || m.SbfInt != runtime.SbfMSS {
				return true
			}
		}
		if a.rankDistinguishes(e.Recv, sym) {
			return true
		}
		for _, arg := range e.Args {
			if a.rankDistinguishes(arg, sym) {
				return true
			}
		}
		return false
	}
	return false
}

// ---- Reference collection ----

// refSet summarizes what an expression reads: symbols, registers,
// queue entities, and whether it pops.
type refSet struct {
	syms    map[*types.Symbol]bool
	regs    [runtime.NumRegisters]bool
	globals [runtime.NumGlobals]bool
	queues  bool
	pop     bool
}

func (a *analyzer) exprRefs(e lang.Expr) refSet {
	r := refSet{syms: make(map[*types.Symbol]bool)}
	a.collectRefs(e, &r)
	return r
}

func (a *analyzer) collectRefs(e lang.Expr, r *refSet) {
	switch e := e.(type) {
	case *lang.RegExpr:
		if e.Index >= 0 && e.Index < runtime.NumRegisters {
			r.regs[e.Index] = true
		}
	case *lang.GlobalExpr:
		if e.Index >= 0 && e.Index < runtime.NumGlobals {
			r.globals[e.Index] = true
		}
	case *lang.Ident:
		if sym := a.info.Uses[e]; sym != nil {
			r.syms[sym] = true
		}
	case *lang.EntityExpr:
		if e.Kind != lang.EntitySubflows {
			r.queues = true
		}
	case *lang.UnaryExpr:
		a.collectRefs(e.X, r)
	case *lang.BinaryExpr:
		a.collectRefs(e.X, r)
		a.collectRefs(e.Y, r)
	case *lang.Lambda:
		a.collectRefs(e.Body, r)
	case *lang.MemberExpr:
		if m := a.info.Members[e]; m != nil && m.Kind == types.MemberPop {
			r.pop = true
		}
		a.collectRefs(e.Recv, r)
		for _, arg := range e.Args {
			a.collectRefs(arg, r)
		}
	}
}

// ---- Abstract expression evaluation ----

func (a *analyzer) expr(e lang.Expr) absVal {
	switch e := e.(type) {
	case *lang.NumberLit:
		return intVal(single(e.Val))
	case *lang.BoolLit:
		return boolV(boolOf(e.Val))
	case *lang.NullLit:
		return refVal(nNull)
	case *lang.RegExpr:
		return intVal(fullRange)
	case *lang.GlobalExpr:
		return intVal(fullRange)
	case *lang.Ident:
		if sym := a.info.Uses[e]; sym != nil {
			if v, ok := a.vals[sym]; ok {
				return v
			}
			return unknownVal(sym.Type)
		}
		return absVal{iv: fullRange}
	case *lang.EntityExpr:
		if e.Kind == lang.EntityRQ {
			a.sawRQ = true
		}
		return listVal(bUnknown)
	case *lang.UnaryExpr:
		v := a.expr(e.X)
		if e.Op == lang.NOT {
			return boolV(notB(v.b))
		}
		return intVal(negIV(v.iv))
	case *lang.BinaryExpr:
		return a.binary(e)
	case *lang.Lambda:
		// Only reached on type errors; harmless.
		a.expr(e.Body)
		return absVal{iv: fullRange}
	case *lang.MemberExpr:
		return a.member(e)
	}
	return absVal{iv: fullRange}
}

func (a *analyzer) binary(e *lang.BinaryExpr) absVal {
	// NULL comparisons resolve through nullness, not intervals.
	_, xNull := e.X.(*lang.NullLit)
	_, yNull := e.Y.(*lang.NullLit)
	if (e.Op == lang.EQ || e.Op == lang.NEQ) && (xNull || yNull) && !(xNull && yNull) {
		other := e.X
		if xNull {
			other = e.Y
		}
		v := a.expr(other)
		var eq boolVal
		switch v.null {
		case nNull:
			eq = bTrue
		case nNonNull:
			eq = bFalse
		}
		if e.Op == lang.NEQ {
			eq = notB(eq)
		}
		return boolV(eq)
	}

	x := a.expr(e.X)
	y := a.expr(e.Y)
	switch e.Op {
	case lang.PLUS:
		a.checkConstOverflow(e, x.iv, y.iv, satAdd)
		return intVal(addIV(x.iv, y.iv))
	case lang.MINUS:
		a.checkConstOverflow(e, x.iv, y.iv, func(p, q int64) (int64, bool) {
			return satAdd(p, -q)
		})
		return intVal(subIV(x.iv, y.iv))
	case lang.STAR:
		a.checkConstOverflow(e, x.iv, y.iv, satMul)
		return intVal(mulIV(x.iv, y.iv))
	case lang.SLASH, lang.PERCENT:
		if yc, ok := y.iv.isConst(); ok {
			if yc == 0 {
				a.diag(RuleDivZero, e.X.Position(),
					"division by a constant zero: the language defines x/0 = 0, so this expression is always 0")
				return intVal(single(0))
			}
			if xc, ok := x.iv.isConst(); ok {
				if e.Op == lang.SLASH {
					return intVal(single(xc / yc))
				}
				return intVal(single(xc % yc))
			}
		}
		if x.iv.lo >= 0 && y.iv.lo >= 0 {
			return intVal(nonNegRange)
		}
		return intVal(fullRange)
	case lang.LT:
		return boolV(ltIV(x.iv, y.iv))
	case lang.LTE:
		return boolV(leIV(x.iv, y.iv))
	case lang.GT:
		return boolV(ltIV(y.iv, x.iv))
	case lang.GTE:
		return boolV(leIV(y.iv, x.iv))
	case lang.EQ, lang.NEQ:
		eq := bUnknown
		if a.info.ExprTypes[e.X] == types.Int {
			eq = eqIV(x.iv, y.iv)
		} else if x.null == nNull && y.null == nNull {
			eq = bTrue
		}
		if e.Op == lang.NEQ {
			eq = notB(eq)
		}
		return boolV(eq)
	case lang.AND:
		return boolV(andB(x.b, y.b))
	case lang.OR:
		return boolV(orB(x.b, y.b))
	}
	return absVal{iv: fullRange}
}

// checkConstOverflow flags constant arithmetic that wraps int64. Only
// definite (both operands pinned) overflow is reported.
func (a *analyzer) checkConstOverflow(e *lang.BinaryExpr, x, y interval, op func(int64, int64) (int64, bool)) {
	xc, xok := x.isConst()
	yc, yok := y.isConst()
	if !xok || !yok {
		return
	}
	if _, ovf := op(xc, yc); ovf {
		a.diag(RuleOverflow, e.X.Position(),
			"constant arithmetic overflows int64; registers wrap at runtime")
	}
}

func (a *analyzer) member(e *lang.MemberExpr) absVal {
	m := a.info.Members[e]
	recv := a.expr(e.Recv)
	if m == nil {
		for _, arg := range e.Args {
			a.expr(arg)
		}
		return absVal{iv: fullRange}
	}
	lambdaBody := func(elem types.Type) boolVal {
		if len(e.Args) != 1 {
			return bUnknown
		}
		lam, ok := e.Args[0].(*lang.Lambda)
		if !ok {
			return bUnknown
		}
		if sym := a.info.Defs[lam]; sym != nil {
			// Iteration variables are never NULL.
			a.vals[sym] = refVal(nNonNull)
		}
		return a.expr(lam.Body).b
	}
	elemNull := func() nullness {
		if recv.empty == bTrue {
			return nNull
		}
		return nUnknown
	}
	switch m.Kind {
	case types.MemberFilter:
		pred := lambdaBody(types.ElemType(m.RecvType))
		empty := recv.empty
		if pred == bFalse {
			what := "subflow list"
			if m.RecvType == types.PacketQueue {
				what = "packet queue"
			}
			a.diag(RuleFalseFilter, e.NamePos,
				"FILTER predicate is always FALSE: the filtered %s is provably empty", what)
			empty = bTrue
		}
		return listVal(empty)
	case types.MemberMin, types.MemberMax:
		lambdaBody(types.ElemType(m.RecvType))
		if m.RecvType == types.SubflowList {
			a.checkRank(e)
		}
		return refVal(elemNull())
	case types.MemberTop:
		return refVal(elemNull())
	case types.MemberPop:
		return refVal(elemNull())
	case types.MemberEmpty:
		b := bUnknown
		if recv.empty == bTrue {
			b = bTrue
		}
		return boolV(b)
	case types.MemberCount:
		if recv.empty == bTrue {
			return intVal(single(0))
		}
		if m.RecvType == types.SubflowList {
			return intVal(interval{0, runtime.MaxSubflows})
		}
		return intVal(nonNegRange)
	case types.MemberGet:
		for _, arg := range e.Args {
			a.expr(arg)
		}
		return refVal(nUnknown)
	case types.MemberSbfInt:
		return intVal(nonNegRange)
	case types.MemberPktInt:
		// PROP is an application-set intent (any int64); LAST_SENT_US
		// is -1 for never-sent packets. Everything else is
		// non-negative by construction of the environment model.
		if m.PktInt == runtime.PktProp || m.PktInt == runtime.PktLastSentUS {
			return intVal(fullRange)
		}
		return intVal(nonNegRange)
	case types.MemberSbfBool, types.MemberHasWindowFor, types.MemberSentOn:
		for _, arg := range e.Args {
			a.expr(arg)
		}
		return boolV(bUnknown)
	}
	return absVal{iv: fullRange}
}
