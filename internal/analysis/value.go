package analysis

import (
	"math"

	"progmp/internal/lang/types"
)

// The value domain of the abstract interpreter: integer intervals with
// saturating arithmetic, three-valued booleans, three-valued nullness
// for packets and subflows, and three-valued emptiness for collections.
// Diagnostics fire only on *definite* facts (provably false, provably
// empty, provably overflowing), so the analysis never needs path
// refinement to avoid false positives: anything uncertain stays silent.

// boolVal is a three-valued boolean.
type boolVal uint8

const (
	bUnknown boolVal = iota
	bTrue
	bFalse
)

func boolOf(v bool) boolVal {
	if v {
		return bTrue
	}
	return bFalse
}

func notB(v boolVal) boolVal {
	switch v {
	case bTrue:
		return bFalse
	case bFalse:
		return bTrue
	}
	return bUnknown
}

func andB(x, y boolVal) boolVal {
	if x == bFalse || y == bFalse {
		return bFalse
	}
	if x == bTrue && y == bTrue {
		return bTrue
	}
	return bUnknown
}

func orB(x, y boolVal) boolVal {
	if x == bTrue || y == bTrue {
		return bTrue
	}
	if x == bFalse && y == bFalse {
		return bFalse
	}
	return bUnknown
}

// nullness tracks reference values (packets, subflows).
type nullness uint8

const (
	nUnknown nullness = iota
	nNull
	nNonNull
)

// interval is a closed int64 range with saturating endpoints.
type interval struct{ lo, hi int64 }

var (
	fullRange   = interval{math.MinInt64, math.MaxInt64}
	nonNegRange = interval{0, math.MaxInt64}
)

func single(v int64) interval { return interval{v, v} }

func (iv interval) isConst() (int64, bool) {
	if iv.lo == iv.hi {
		return iv.lo, true
	}
	return 0, false
}

func addIV(x, y interval) interval {
	lo, _ := satAdd(x.lo, y.lo)
	hi, _ := satAdd(x.hi, y.hi)
	return interval{lo, hi}
}

func subIV(x, y interval) interval {
	return addIV(x, negIV(y))
}

func negIV(x interval) interval {
	neg := func(v int64) int64 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return interval{neg(x.hi), neg(x.lo)}
}

func mulIV(x, y interval) interval {
	corners := [4]int64{}
	vals := [4][2]int64{{x.lo, y.lo}, {x.lo, y.hi}, {x.hi, y.lo}, {x.hi, y.hi}}
	for i, v := range vals {
		corners[i], _ = satMul(v[0], v[1])
	}
	lo, hi := corners[0], corners[0]
	for _, c := range corners[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return interval{lo, hi}
}

// Interval comparisons: definite only when the ranges are disjoint or
// pinned.

func ltIV(x, y interval) boolVal {
	if x.hi < y.lo {
		return bTrue
	}
	if x.lo >= y.hi {
		return bFalse
	}
	return bUnknown
}

func leIV(x, y interval) boolVal {
	if x.hi <= y.lo {
		return bTrue
	}
	if x.lo > y.hi {
		return bFalse
	}
	return bUnknown
}

func eqIV(x, y interval) boolVal {
	if xc, ok := x.isConst(); ok {
		if yc, ok := y.isConst(); ok {
			return boolOf(xc == yc)
		}
	}
	if x.hi < y.lo || y.hi < x.lo {
		return bFalse
	}
	return bUnknown
}

// absVal is one abstract value; the fields that apply depend on the
// expression's checked type.
type absVal struct {
	iv    interval // Int
	b     boolVal  // Bool
	null  nullness // Packet, Subflow
	empty boolVal  // SubflowList, PacketQueue: provably empty?
}

// unknownVal is the top element for a given type.
func unknownVal(t types.Type) absVal {
	v := absVal{iv: fullRange}
	switch t {
	case types.Subflow, types.Packet:
		v.null = nUnknown
	}
	return v
}

func intVal(iv interval) absVal { return absVal{iv: iv} }
func boolV(b boolVal) absVal    { return absVal{iv: fullRange, b: b} }
func refVal(n nullness) absVal  { return absVal{iv: fullRange, null: n} }
func listVal(e boolVal) absVal  { return absVal{iv: fullRange, empty: e} }
