// Package guard supervises application-supplied schedulers so that a
// buggy or adversarial scheduling block cannot crash, corrupt or hang a
// connection — the userspace analogue of the kernel runtime's
// termination and isolation guarantees (§4 of the paper). The kernel
// model already makes executions *terminate* (the VM step budget) and
// makes individual mistakes *harmless* (graceful action application);
// this package closes the remaining gaps:
//
//   - a scheduler implemented as native Go (or a back-end bug) can
//     panic — the Supervisor recovers the panic and discards the
//     execution's actions;
//   - a scheduler can emit forged actions (out-of-range subflow
//     handles, packets not in the claimed queue) by appending to the
//     action queue directly — the Supervisor validates every action
//     against the environment snapshot before it reaches the
//     connection;
//   - a scheduler can simply stall: never PUSH while Q is nonempty and
//     a subflow has congestion-window headroom. With nothing in flight
//     there is no ACK clock left to re-trigger scheduling, so the
//     connection would hang forever. The Supervisor detects the
//     condition, keeps the connection's scheduler pump alive through a
//     watchdog, and counts strikes.
//
// Repeated strikes quarantine the user program: the connection degrades
// to a trusted fallback (native MinRTT by default) and, after an
// exponentially backed-off probation delay, the user scheduler is put
// on trial again; enough clean trial executions re-promote it. Every
// transition emits obs events and metrics, so progmp-trace shows
// exactly when and why a connection degraded.
package guard

import (
	"fmt"
	"time"

	"progmp/internal/mptcp/sched"
	"progmp/internal/obs"
	"progmp/internal/runtime"
)

// Scheduler is the execution interface the Supervisor wraps and
// implements (structurally identical to mptcp.Scheduler).
type Scheduler interface {
	Exec(env *runtime.Env)
}

// State is the supervisor's position in the degradation state machine.
type State int32

// The supervision states: active → quarantined → probation → active.
const (
	// StateActive runs the user scheduler under full supervision.
	StateActive State = iota
	// StateQuarantined runs the fallback scheduler; the user program is
	// suspended until the probation timer fires.
	StateQuarantined
	// StateProbation runs the user scheduler on trial: one strike
	// re-quarantines it with doubled backoff, TrialExecs clean
	// executions re-promote it to StateActive.
	StateProbation
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateQuarantined:
		return "quarantined"
	case StateProbation:
		return "probation"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// StrikeReason classifies why a strike was recorded.
type StrikeReason int

// The strike taxonomy.
const (
	StrikePanic     StrikeReason = iota // execution panicked
	StrikeBadAction                     // invalid actions stripped
	StrikeStall                         // no actions despite available work
)

// String names the reason.
func (r StrikeReason) String() string {
	switch r {
	case StrikePanic:
		return "panic"
	case StrikeBadAction:
		return "bad-action"
	case StrikeStall:
		return "stall"
	}
	return fmt.Sprintf("StrikeReason(%d)", int(r))
}

// Config tunes a Supervisor. The zero value is usable: native MinRTT
// fallback, three strikes, and — without the Now/After/Wake wiring —
// supervision without the stall watchdog or probation timer (a
// quarantined scheduler then stays quarantined).
type Config struct {
	// Fallback runs while the user scheduler is quarantined (default:
	// the native MinRTT reference scheduler).
	Fallback Scheduler
	// MaxStrikes is how many strikes quarantine the user scheduler
	// (default 3).
	MaxStrikes int
	// StallExecs is how many consecutive zero-action executions with
	// work available count as one stall strike (default 32). Generous
	// so intentionally non-work-conserving schedulers (rate limiting,
	// opportunistic waiting) do not strike spuriously: any emitted
	// action resets the run.
	StallExecs int
	// StallTimeout is the watchdog delay: when an execution ends with
	// zero actions despite available work, the supervisor re-triggers
	// scheduling after this long so the stall is observable even with
	// no ACK clock left (default 50 ms).
	StallTimeout time.Duration
	// ProbationAfter is the first quarantine duration (default 500 ms);
	// it doubles on every re-quarantine up to MaxBackoff.
	ProbationAfter time.Duration
	// MaxBackoff caps the quarantine duration (default 30 s).
	MaxBackoff time.Duration
	// TrialExecs is how many consecutive clean probation executions
	// re-promote the user scheduler (default 8).
	TrialExecs int

	// Now is the virtual clock used to timestamp events (nil: events
	// carry time 0).
	Now func() time.Duration
	// After schedules fn on the driving event loop. Required for the
	// stall watchdog and the probation timer; nil disables both.
	After func(d time.Duration, fn func())
	// Wake triggers a scheduling pass on the supervised connection
	// (mptcp.Conn.Kick). Required for the stall watchdog.
	Wake func()
}

func (c *Config) applyDefaults() {
	if c.Fallback == nil {
		c.Fallback = sched.MinRTT{}
	}
	if c.MaxStrikes == 0 {
		c.MaxStrikes = 3
	}
	if c.StallExecs == 0 {
		c.StallExecs = 32
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 50 * time.Millisecond
	}
	if c.ProbationAfter == 0 {
		c.ProbationAfter = 500 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.TrialExecs == 0 {
		c.TrialExecs = 8
	}
}

// Supervisor wraps a scheduler with panic recovery, action validation,
// stall detection and graceful degradation. It implements the same
// Exec interface as the scheduler it wraps, so it installs on a
// connection like any scheduler. A Supervisor belongs to exactly one
// connection: it keeps per-connection strike state, and the simulation
// model is single-threaded per engine.
type Supervisor struct {
	inner Scheduler
	cfg   Config

	state       State
	strikes     int
	stallRun    int // consecutive zero-action executions with work available
	backoff     time.Duration
	trialClean  int
	watchdogSet bool

	// Fleet enrollment (nil/"" when the supervisor stands alone). The
	// fleet is notified on every quarantine and may force-block this
	// supervisor when the same program misbehaves on enough connections.
	fleet        *Fleet
	fleetProgram string
	fleetBlocked bool
	// blockSavedFallback holds the per-connection fallback while a fleet
	// block forces native MinRTT; FleetLift restores it.
	blockSavedFallback Scheduler

	// Cumulative counts (also mirrored as metrics when instrumented).
	Panics      int64
	Violations  int64
	Stalls      int64
	Quarantines int64
	Restores    int64

	lastPanic string

	// Observability (nil-safe when uninstrumented).
	tracer       *obs.Tracer
	connID       int32
	mPanics      *obs.Counter
	mViolations  *obs.Counter
	mStalls      *obs.Counter
	mQuarantines *obs.Counter
	mRestores    *obs.Counter
	gState       *obs.Gauge
}

// New wraps inner in a supervisor.
func New(inner Scheduler, cfg Config) *Supervisor {
	cfg.applyDefaults()
	return &Supervisor{inner: inner, cfg: cfg, backoff: cfg.ProbationAfter}
}

// Instrument attaches the supervisor to a tracer (labelling events with
// connID, normally mptcp.Conn.TraceConnID) and a metrics registry.
// Either may be nil. Call before traffic starts.
func (s *Supervisor) Instrument(t *obs.Tracer, connID int32, reg *obs.Registry) {
	s.tracer = t
	s.connID = connID
	if reg != nil {
		s.mPanics = reg.Counter("guard.panics")
		s.mViolations = reg.Counter("guard.violations")
		s.mStalls = reg.Counter("guard.stalls")
		s.mQuarantines = reg.Counter("guard.quarantines")
		s.mRestores = reg.Counter("guard.restores")
		s.gState = reg.Gauge("guard.state")
	}
}

// State returns the current supervision state.
func (s *Supervisor) State() State { return s.state }

// Strikes returns the strike count accumulated toward the next
// quarantine.
func (s *Supervisor) Strikes() int { return s.strikes }

// LastPanic returns the rendered value of the most recent recovered
// panic ("" when none occurred).
func (s *Supervisor) LastPanic() string { return s.lastPanic }

// Inner returns the supervised scheduler.
func (s *Supervisor) Inner() Scheduler { return s.inner }

// Fallback returns the scheduler that serves quarantined periods.
func (s *Supervisor) Fallback() Scheduler { return s.cfg.Fallback }

// Swap retargets the supervisor at a new user scheduler (control-plane
// hot-swap). When fallback is non-nil it replaces the quarantine
// fallback — the hot-swap path passes the previously supervised
// program here, so a misbehaving swap degrades back to the scheduler
// that was running before the swap rather than to native MinRTT. The
// supervision state machine restarts clean: active state, zero
// strikes, first-quarantine backoff.
func (s *Supervisor) Swap(newInner, fallback Scheduler) {
	s.inner = newInner
	// A swap retargets the supervisor at a different program, so any
	// fleet block held against the old program no longer applies here
	// (the control plane refuses swaps of blocked programs up front;
	// reaching this point means the target passed or was forced).
	// Re-enroll with the fleet after swapping.
	s.fleetBlocked = false
	s.blockSavedFallback = nil
	if fallback != nil {
		s.cfg.Fallback = fallback
	}
	s.state = StateActive
	s.strikes = 0
	s.stallRun = 0
	s.trialClean = 0
	s.backoff = s.cfg.ProbationAfter
	s.gState.Set(int64(StateActive))
}

// Exec runs one supervised scheduler execution.
func (s *Supervisor) Exec(env *runtime.Env) {
	if s.state == StateQuarantined {
		s.execFallback(env)
		return
	}
	before := len(env.Actions)
	if panicked := s.runInner(env); panicked {
		env.Actions = env.Actions[:before]
		s.Panics++
		s.mPanics.Add(1)
		s.event(obs.EvGuardPanic, 0)
		s.strike(env)
	} else if stripped := s.validate(env, before); stripped > 0 {
		s.Violations += int64(stripped)
		s.mViolations.Add(int64(stripped))
		s.event(obs.EvGuardBadAction, int64(stripped))
		s.strike(env)
	} else if s.state == StateProbation {
		s.trialClean++
		if s.trialClean >= s.cfg.TrialExecs {
			s.restore()
		}
	}
	s.noteStallProgress(env, before)
}

// runInner executes the user scheduler, converting panics into a
// reported condition.
func (s *Supervisor) runInner(env *runtime.Env) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			s.lastPanic = fmt.Sprint(r)
		}
	}()
	s.inner.Exec(env)
	return false
}

// execFallback runs the trusted fallback (still panic-safe, but its
// behaviour never counts against the user program).
func (s *Supervisor) execFallback(env *runtime.Env) {
	before := len(env.Actions)
	defer func() {
		if r := recover(); r != nil {
			env.Actions = env.Actions[:before]
		}
	}()
	s.cfg.Fallback.Exec(env)
}

// validate checks every action the execution emitted against the
// environment snapshot and strips invalid ones in place, returning how
// many were removed. The connection would reject most of these
// gracefully anyway; validating here turns silent misbehaviour into an
// observable, strikeable condition before it reaches the connection.
func (s *Supervisor) validate(env *runtime.Env, before int) (stripped int) {
	if len(env.Actions) == before {
		return 0
	}
	sbfs := make(map[runtime.SubflowHandle]bool, len(env.SubflowViews))
	for _, v := range env.SubflowViews {
		sbfs[v.Handle] = true
	}
	inQueue := func(id runtime.QueueID, h runtime.PacketHandle) bool {
		q := env.Queue(id)
		for i := 0; ; i++ {
			p := q.At(i)
			if p == nil {
				return false
			}
			if p.Handle == h {
				return true
			}
		}
	}
	inAnyQueue := func(h runtime.PacketHandle) bool {
		return inQueue(runtime.QueueSend, h) ||
			inQueue(runtime.QueueUnacked, h) ||
			inQueue(runtime.QueueReinject, h)
	}
	kept := env.Actions[:before]
	for _, a := range env.Actions[before:] {
		ok := false
		switch a.Kind {
		case runtime.ActionPush:
			ok = sbfs[a.Subflow] && inAnyQueue(a.Packet)
		case runtime.ActionPop:
			ok = inQueue(a.Queue, a.Packet)
		case runtime.ActionDrop:
			ok = inAnyQueue(a.Packet)
		}
		if ok {
			kept = append(kept, a)
		} else {
			stripped++
		}
	}
	env.Actions = kept
	return stripped
}

// noteStallProgress updates the stall run after an execution: zero
// actions while work is available extends the run (arming the watchdog
// so the next observation happens even without an ACK clock); anything
// else resets it.
func (s *Supervisor) noteStallProgress(env *runtime.Env, before int) {
	if s.state == StateQuarantined {
		// A strike during this execution quarantined the scheduler and
		// already ran the fallback; stall accounting restarts on the
		// next trial.
		s.stallRun = 0
		return
	}
	if len(env.Actions) > before || !workAvailable(env) {
		s.stallRun = 0
		return
	}
	s.stallRun++
	if s.stallRun >= s.cfg.StallExecs {
		s.stallRun = 0
		s.Stalls++
		s.mStalls.Add(1)
		s.event(obs.EvGuardStall, int64(s.cfg.StallExecs))
		s.strike(env)
		if s.state == StateQuarantined {
			return
		}
		// Not yet quarantined: keep the pump alive so the next stall
		// run is observed even with no transport event left to trigger
		// the scheduler.
	}
	s.armWatchdog()
}

// workAvailable reports the stall precondition: Q is nonempty and some
// subflow could transmit now — non-backup, not TSQ-throttled, not in
// loss recovery, congestion window not exhausted. Backup subflows count
// only when no non-backup subflow exists at all (the availability shape
// of the default scheduler).
func workAvailable(env *runtime.Env) bool {
	if env.SendQ.Empty() {
		return false
	}
	anyNonBackup := false
	for _, v := range env.SubflowViews {
		if !v.Bools[runtime.SbfIsBackup] {
			anyNonBackup = true
			break
		}
	}
	for _, v := range env.SubflowViews {
		if anyNonBackup && v.Bools[runtime.SbfIsBackup] {
			continue
		}
		if v.Bools[runtime.SbfTSQThrottled] || v.Bools[runtime.SbfLossy] {
			continue
		}
		if v.Ints[runtime.SbfCwnd] > v.Ints[runtime.SbfSkbsInFlight]+v.Ints[runtime.SbfQueued] {
			return true
		}
	}
	return false
}

// armWatchdog schedules a wake so the stalled connection is re-examined
// even when no transport event would trigger the scheduler again.
func (s *Supervisor) armWatchdog() {
	if s.watchdogSet || s.cfg.After == nil || s.cfg.Wake == nil {
		return
	}
	s.watchdogSet = true
	s.cfg.After(s.cfg.StallTimeout, func() {
		s.watchdogSet = false
		s.cfg.Wake()
	})
}

// strike records one strike and quarantines the user scheduler once
// MaxStrikes accumulate. During probation a single strike
// re-quarantines immediately.
func (s *Supervisor) strike(env *runtime.Env) {
	s.strikes++
	if s.state == StateProbation || s.strikes >= s.cfg.MaxStrikes {
		s.quarantine(env)
	}
}

// quarantine suspends the user scheduler, degrades to the fallback for
// the current backoff, and schedules the probation trial.
func (s *Supervisor) quarantine(env *runtime.Env) {
	s.state = StateQuarantined
	s.strikes = 0
	s.stallRun = 0
	s.trialClean = 0
	s.Quarantines++
	s.mQuarantines.Add(1)
	s.gState.Set(int64(StateQuarantined))
	backoff := s.backoff
	s.eventSite(obs.EvGuardQuarantine, backoff.Microseconds(), admissionWarnings(s.inner))
	if s.backoff < s.cfg.MaxBackoff {
		s.backoff *= 2
		if s.backoff > s.cfg.MaxBackoff {
			s.backoff = s.cfg.MaxBackoff
		}
	}
	if s.cfg.After != nil {
		s.cfg.After(backoff, s.beginProbation)
	}
	if s.fleet != nil {
		// May escalate to a fleet block, which re-enters FleetBlock on
		// this and sibling supervisors.
		s.fleet.noteQuarantine(s.fleetProgram, s)
	}
	// Serve the triggering execution with the fallback so the
	// connection makes progress in the same scheduling pass that
	// degraded it.
	s.execFallback(env)
}

// beginProbation puts the user scheduler on trial after the quarantine
// backoff elapses. A fleet-blocked supervisor stays quarantined: only
// FleetLift (the fleet's clean-window timer) re-arms probation.
func (s *Supervisor) beginProbation() {
	if s.state != StateQuarantined || s.fleetBlocked {
		return
	}
	s.state = StateProbation
	s.trialClean = 0
	s.gState.Set(int64(StateProbation))
	s.event(obs.EvGuardProbe, int64(s.cfg.TrialExecs))
	if s.cfg.Wake != nil {
		s.cfg.Wake()
	}
}

// restore re-promotes the user scheduler after a clean trial. The
// backoff is deliberately not reset: a scheduler that keeps flapping
// between probation and quarantine earns ever longer exile.
func (s *Supervisor) restore() {
	s.state = StateActive
	s.strikes = 0
	s.trialClean = 0
	s.Restores++
	s.mRestores.Add(1)
	s.gState.Set(int64(StateActive))
	s.event(obs.EvGuardRestore, s.Quarantines)
}

// event records one supervision event through the attached tracer.
func (s *Supervisor) event(kind obs.EventKind, aux int64) {
	s.eventSite(kind, aux, 0)
}

// eventSite is event with the Site field set: supervision events carry
// no program counter, so quarantine reuses Site for the static
// analyzer's warning count at admission (see AdmissionReporter).
func (s *Supervisor) eventSite(kind obs.EventKind, aux int64, site int32) {
	if s.tracer == nil {
		return
	}
	var at time.Duration
	if s.cfg.Now != nil {
		at = s.cfg.Now()
	}
	s.tracer.Record(obs.Event{At: at, Kind: kind, Conn: s.connID, Seq: -1, Sbf: -1, Aux: aux, Site: site})
}

// AdmissionReporter is optionally implemented by supervised schedulers
// that passed through the static-analysis admission gate (core.Load
// does). When the inner scheduler reports warnings, quarantine events
// carry the count in Site: a scheduler admitted with findings and
// later quarantined is the analyzer's "told you so" signal, and
// progmp-trace surfaces it.
type AdmissionReporter interface {
	AdmissionWarnings() int
}

// admissionWarnings extracts the analyzer warning count recorded at
// admission, 0 when the scheduler does not expose one.
func admissionWarnings(inner Scheduler) int32 {
	if r, ok := inner.(AdmissionReporter); ok {
		n := r.AdmissionWarnings()
		if n > 0 {
			return int32(n)
		}
	}
	return 0
}
