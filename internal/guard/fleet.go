package guard

import (
	"sort"
	"sync"
	"time"

	"progmp/internal/mptcp/sched"
	"progmp/internal/obs"
)

// Fleet is the failure-containment tier above per-connection
// supervision: it watches quarantines across every enrolled Supervisor
// and escalates when the *same program* misbehaves on many
// *different connections*. A per-connection quarantine says "this
// execution context went bad"; the same program quarantining on K
// connections says "the program itself is poison" — so the fleet
// blocks it everywhere at once instead of letting every remaining
// connection discover the problem three strikes at a time:
//
//   - every supervisor currently running the program is forced into
//     quarantine serving native MinRTT (not its per-connection
//     fallback: a fleet block is a verdict on the program, and the
//     previous program in a hot-swap chain may be the same author's);
//   - the control plane refuses to compile or swap the program onto
//     any connection without an explicit force;
//   - after a clean backoff window — doubling on every re-block, like
//     the per-connection probation backoff — the block lifts and every
//     affected supervisor goes on ordinary probation trial.
//
// A Fleet belongs to one simulation engine: enrollment bookkeeping is
// mutex-guarded (the control plane queries Blocked from its own
// goroutines), but escalation calls into Supervisors, which are owned
// by the engine goroutine, so quarantines and lifts must originate
// there — they do, because strikes happen during scheduling and the
// lift timer runs on the engine's After hook.
type Fleet struct {
	mu       sync.Mutex
	cfg      FleetConfig
	programs map[string]*fleetProgram

	// Cumulative counts (mirrored as metrics when instrumented).
	Blocks int64
	Lifts  int64

	blockedCount int64 // programs currently blocked (gauge)

	tracer   *obs.Tracer
	mBlocks  *obs.Counter
	mLifts   *obs.Counter
	gBlocked *obs.Gauge
}

// FleetConfig tunes a Fleet. The zero value is usable: three
// connections block a program, a ten-second first clean window doubling
// to ten minutes — and without the After wiring, a blocked program
// stays blocked (no lift timer).
type FleetConfig struct {
	// BlockThreshold is K: how many distinct connections must
	// quarantine the same program before it is fleet-blocked
	// (default 3).
	BlockThreshold int
	// CleanWindow is the first block duration (default 10 s); it
	// doubles on every re-block of the same program up to MaxBackoff.
	CleanWindow time.Duration
	// MaxBackoff caps the clean window (default 10 min).
	MaxBackoff time.Duration

	// Now is the virtual clock used to timestamp events (nil: events
	// carry time 0).
	Now func() time.Duration
	// After schedules fn on the driving event loop. Required for the
	// clean-window lift; nil leaves blocked programs blocked forever.
	After func(d time.Duration, fn func())
}

func (c *FleetConfig) applyDefaults() {
	if c.BlockThreshold == 0 {
		c.BlockThreshold = 3
	}
	if c.CleanWindow == 0 {
		c.CleanWindow = 10 * time.Second
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 10 * time.Minute
	}
}

// fleetProgram is the per-program escalation state.
type fleetProgram struct {
	sups        map[*Supervisor]bool // enrolled: currently running this program
	quarantined map[*Supervisor]bool // distinct connections quarantined since the last lift
	blocked     bool
	window      time.Duration // next clean window (doubles per block)
}

// NewFleet creates a fleet tier; see FleetConfig for the knobs.
func NewFleet(cfg FleetConfig) *Fleet {
	cfg.applyDefaults()
	return &Fleet{cfg: cfg, programs: map[string]*fleetProgram{}}
}

// Instrument attaches the fleet to a tracer and a metrics registry
// (either may be nil). Fleet events carry Conn -1: they are about a
// program across connections, not any one connection.
func (f *Fleet) Instrument(t *obs.Tracer, reg *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracer = t
	if reg != nil {
		f.mBlocks = reg.Counter("guard.fleet_blocks")
		f.mLifts = reg.Counter("guard.fleet_lifts")
		f.gBlocked = reg.Gauge("guard.fleet_blocked")
	}
}

// Enroll registers sup as running program, unenrolling it from any
// previous program first — call it when installing a supervised
// scheduler and again after every hot-swap retarget. Safe on nil.
func (f *Fleet) Enroll(program string, sup *Supervisor) {
	if f == nil || sup == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if sup.fleet == f && sup.fleetProgram == program {
		return
	}
	f.unenrollLocked(sup)
	sup.fleet = f
	sup.fleetProgram = program
	p := f.program(program)
	p.sups[sup] = true
}

// Unenroll removes sup from the fleet (connection teardown). Safe on
// nil.
func (f *Fleet) Unenroll(sup *Supervisor) {
	if f == nil || sup == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unenrollLocked(sup)
	sup.fleet = nil
	sup.fleetProgram = ""
}

func (f *Fleet) unenrollLocked(sup *Supervisor) {
	if sup.fleetProgram == "" {
		return
	}
	if p, ok := f.programs[sup.fleetProgram]; ok {
		delete(p.sups, sup)
		delete(p.quarantined, sup)
	}
}

// program returns (creating if needed) the per-program state; call
// under f.mu.
func (f *Fleet) program(name string) *fleetProgram {
	p, ok := f.programs[name]
	if !ok {
		p = &fleetProgram{
			sups:        map[*Supervisor]bool{},
			quarantined: map[*Supervisor]bool{},
			window:      f.cfg.CleanWindow,
		}
		f.programs[name] = p
	}
	return p
}

// Blocked reports whether program is currently fleet-blocked — the
// control plane's admission check for compile and swap. Safe on nil.
func (f *Fleet) Blocked(program string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.programs[program]
	return ok && p.blocked
}

// BlockedPrograms returns the currently blocked program names, sorted.
func (f *Fleet) BlockedPrograms() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for name, p := range f.programs {
		if p.blocked {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// noteQuarantine records that sup quarantined its program; at
// BlockThreshold distinct connections the program is fleet-blocked.
// Called from Supervisor.quarantine on the engine goroutine.
func (f *Fleet) noteQuarantine(program string, sup *Supervisor) {
	f.mu.Lock()
	p, ok := f.programs[program]
	if !ok || !p.sups[sup] || p.blocked {
		f.mu.Unlock()
		return
	}
	p.quarantined[sup] = true
	if len(p.quarantined) < f.cfg.BlockThreshold {
		f.mu.Unlock()
		return
	}
	f.blockLocked(program, p)
	f.mu.Unlock()
}

// Block force-blocks a program immediately (operator action), with the
// same escalation and lift behaviour as an automatic block. It reports
// whether the program was newly blocked.
func (f *Fleet) Block(program string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.program(program)
	if p.blocked {
		return false
	}
	f.blockLocked(program, p)
	return true
}

// blockLocked escalates: force-quarantine every connection running the
// program onto native MinRTT, refuse new installs, and schedule the
// clean-window lift. Call under f.mu.
func (f *Fleet) blockLocked(name string, p *fleetProgram) {
	p.blocked = true
	window := p.window
	if p.window < f.cfg.MaxBackoff {
		p.window *= 2
		if p.window > f.cfg.MaxBackoff {
			p.window = f.cfg.MaxBackoff
		}
	}
	for sup := range p.sups {
		sup.FleetBlock()
	}
	f.Blocks++
	f.blockedCount++
	f.mBlocks.Add(1)
	f.gBlocked.Set(f.blockedCount)
	f.event(obs.EvFleetBlock, int64(len(p.sups)), int32(f.cfg.BlockThreshold))
	if f.cfg.After != nil {
		f.cfg.After(window, func() { f.lift(name) })
	}
}

// lift ends a block after its clean window: the program may be
// installed again and every affected supervisor goes on ordinary
// probation trial.
func (f *Fleet) lift(name string) {
	f.mu.Lock()
	p, ok := f.programs[name]
	if !ok || !p.blocked {
		f.mu.Unlock()
		return
	}
	p.blocked = false
	for sup := range p.quarantined {
		delete(p.quarantined, sup)
	}
	var lifted int64
	for sup := range p.sups {
		if sup.fleetBlocked {
			lifted++
		}
		sup.FleetLift()
	}
	f.Lifts++
	f.blockedCount--
	f.mLifts.Add(1)
	f.gBlocked.Set(f.blockedCount)
	f.event(obs.EvFleetLift, lifted, 0)
	f.mu.Unlock()
}

// event records one fleet transition through the attached tracer.
func (f *Fleet) event(kind obs.EventKind, aux int64, site int32) {
	if f.tracer == nil {
		return
	}
	var at time.Duration
	if f.cfg.Now != nil {
		at = f.cfg.Now()
	}
	f.tracer.Record(obs.Event{At: at, Kind: kind, Conn: -1, Seq: -1, Sbf: -1, Aux: aux, Site: site})
}

// ---- Supervisor side of the fleet protocol ----

// FleetBlock forces the supervisor into quarantine under a fleet-wide
// block: the connection serves native MinRTT — not the per-connection
// fallback — until FleetLift, and the probation timer is disarmed (a
// pending beginProbation fires into the fleetBlocked guard). Called by
// the fleet on the engine goroutine.
func (s *Supervisor) FleetBlock() {
	if s.fleetBlocked {
		return
	}
	s.fleetBlocked = true
	s.blockSavedFallback = s.cfg.Fallback
	s.cfg.Fallback = sched.MinRTT{}
	if s.state != StateQuarantined {
		s.state = StateQuarantined
		s.strikes = 0
		s.stallRun = 0
		s.trialClean = 0
		s.gState.Set(int64(StateQuarantined))
	}
	if s.cfg.Wake != nil {
		s.cfg.Wake()
	}
}

// FleetLift ends a fleet block on this supervisor: the saved fallback
// is restored and the user scheduler goes on ordinary probation trial.
func (s *Supervisor) FleetLift() {
	if !s.fleetBlocked {
		return
	}
	s.fleetBlocked = false
	if s.blockSavedFallback != nil {
		s.cfg.Fallback = s.blockSavedFallback
		s.blockSavedFallback = nil
	}
	s.beginProbation()
}

// ReEnroll re-registers the supervisor under a new program name with
// its current fleet — the hot-swap path, where the supervisor survives
// but the program it runs changes. No-op when not enrolled.
func (s *Supervisor) ReEnroll(program string) {
	if s.fleet != nil {
		s.fleet.Enroll(program, s)
	}
}

// FleetBlocked reports whether this supervisor is held in quarantine by
// a fleet-wide block (as opposed to its own strikes).
func (s *Supervisor) FleetBlocked() bool { return s.fleetBlocked }

// FleetProgram returns the program name this supervisor is enrolled
// under ("" when not enrolled).
func (s *Supervisor) FleetProgram() string { return s.fleetProgram }
