package guard

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/mptcp/sched"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
)

// --- broken schedulers under test -----------------------------------

// panicky panics on every execution until calm, then delegates.
type panicky struct {
	execs int
	calm  int // panic while execs <= calm... calm==-1: always panic
	inner Scheduler
}

func (p *panicky) Exec(env *runtime.Env) {
	p.execs++
	if p.calm < 0 || p.execs <= p.calm {
		panic("scheduler bug")
	}
	p.inner.Exec(env)
}

// staller never emits an action — a dead scheduling block.
type staller struct{ execs int }

func (s *staller) Exec(*runtime.Env) { s.execs++ }

// forger appends out-of-range actions directly to the action queue,
// bypassing the cooperative env.Push API.
type forger struct{}

func (forger) Exec(env *runtime.Env) {
	env.Actions = append(env.Actions,
		runtime.Action{Kind: runtime.ActionPush, Packet: 1 << 40, Subflow: 99},
		runtime.Action{Kind: runtime.ActionPop, Queue: runtime.QueueSend, Packet: 1 << 40},
	)
}

// --- end-to-end harness ---------------------------------------------

// transferUnder runs a 512 KiB transfer over two healthy paths with the
// supervised scheduler installed and returns the supervisor, checker
// and connection after the horizon.
func transferUnder(t *testing.T, inner Scheduler, tune func(*Config)) (*Supervisor, *mptcp.Conn, error) {
	t.Helper()
	eng := netsim.NewEngine(1)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	for _, d := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: "p", Rate: netsim.ConstantRate(3e6), Delay: d,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "p", Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		Now:   eng.Now,
		After: func(d time.Duration, fn func()) { eng.After(d, fn) },
		Wake:  conn.Kick,
	}
	if tune != nil {
		tune(&cfg)
	}
	sup := New(inner, cfg)
	conn.SetScheduler(sup)
	chk := mptcp.NewConservationChecker(conn)
	const total = 512 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(120 * time.Second)
	return sup, conn, chk.Check(total)
}

func TestPanickingSchedulerDegradesAndCompletes(t *testing.T) {
	sup, _, err := transferUnder(t, &panicky{calm: -1}, nil)
	if err != nil {
		t.Fatalf("transfer under always-panicking scheduler: %v", err)
	}
	if sup.Panics < 3 {
		t.Errorf("Panics = %d, want >= 3 (MaxStrikes)", sup.Panics)
	}
	if sup.Quarantines == 0 {
		t.Error("always-panicking scheduler never quarantined")
	}
	if sup.LastPanic() != "scheduler bug" {
		t.Errorf("LastPanic = %q, want %q", sup.LastPanic(), "scheduler bug")
	}
}

func TestStallingSchedulerDegradesAndCompletes(t *testing.T) {
	inner := &staller{}
	sup, _, err := transferUnder(t, inner, func(c *Config) {
		c.StallExecs = 4
		c.StallTimeout = 20 * time.Millisecond
	})
	if err != nil {
		t.Fatalf("transfer under dead-stop stalling scheduler: %v", err)
	}
	if sup.Stalls == 0 {
		t.Error("no stall strikes recorded")
	}
	if sup.Quarantines == 0 {
		t.Error("stalling scheduler never quarantined")
	}
	if inner.execs == 0 {
		t.Error("inner scheduler never executed")
	}
}

func TestForgedActionsStrippedAndCompletes(t *testing.T) {
	sup, _, err := transferUnder(t, forger{}, nil)
	if err != nil {
		t.Fatalf("transfer under action-forging scheduler: %v", err)
	}
	if sup.Violations == 0 {
		t.Error("no forged actions stripped")
	}
	if sup.Quarantines == 0 {
		t.Error("forging scheduler never quarantined")
	}
}

// TestProbationRestoresRecoveredScheduler checks the full state cycle:
// active → quarantined → probation → active once the scheduler stops
// misbehaving, with the transfer completing throughout.
func TestProbationRestoresRecoveredScheduler(t *testing.T) {
	inner := &panicky{calm: 3, inner: sched.MinRTT{}}
	sup, _, err := transferUnder(t, inner, func(c *Config) {
		c.ProbationAfter = 100 * time.Millisecond
		c.TrialExecs = 4
	})
	if err != nil {
		t.Fatalf("transfer across quarantine/restore cycle: %v", err)
	}
	if sup.Quarantines == 0 {
		t.Fatal("scheduler never quarantined")
	}
	if sup.Restores == 0 {
		t.Fatal("recovered scheduler never restored")
	}
	if sup.State() != StateActive {
		t.Errorf("final state %v, want active", sup.State())
	}
}

// TestRepeatQuarantineBacksOffExponentially: a scheduler that keeps
// misbehaving earns doubling quarantine windows, visible in the
// EvGuardQuarantine events' Aux payloads.
func TestRepeatQuarantineBacksOffExponentially(t *testing.T) {
	sup, _, err := transferUnder(t, &panicky{calm: -1}, func(c *Config) {
		c.ProbationAfter = 100 * time.Millisecond
		c.MaxBackoff = time.Second
	})
	if err != nil {
		t.Fatalf("transfer under flapping scheduler: %v", err)
	}
	if sup.Quarantines < 2 {
		t.Fatalf("Quarantines = %d, want >= 2 (probation must re-try and re-quarantine)", sup.Quarantines)
	}
}

// TestSupervisorEmitsEventsAndMetrics wires the full observability path
// and asserts transitions are visible the way progmp-trace reads them.
func TestSupervisorEmitsEventsAndMetrics(t *testing.T) {
	eng := netsim.NewEngine(2)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	link := netsim.NewLink(eng, netsim.PathConfig{
		Name: "p", Rate: netsim.ConstantRate(3e6), Delay: 5 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "p", Link: link}); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(4096)
	reg := obs.NewRegistry()
	conn.Instrument(tracer, reg)
	sup := New(&panicky{calm: 3, inner: sched.MinRTT{}}, Config{
		ProbationAfter: 100 * time.Millisecond,
		TrialExecs:     2,
		Now:            eng.Now,
		After:          func(d time.Duration, fn func()) { eng.After(d, fn) },
		Wake:           conn.Kick,
	})
	sup.Instrument(tracer, conn.TraceConnID(), reg)
	conn.SetScheduler(sup)
	chk := mptcp.NewConservationChecker(conn)
	const total = 256 << 10
	eng.After(0, func() { conn.Send(total, 0) })
	eng.RunUntil(60 * time.Second)
	if err := chk.Check(total); err != nil {
		t.Fatal(err)
	}

	kinds := make(map[obs.EventKind]int)
	for _, ev := range tracer.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.EventKind{
		obs.EvGuardPanic, obs.EvGuardQuarantine, obs.EvGuardProbe, obs.EvGuardRestore,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event recorded", want)
		}
	}
	if got := reg.Counter("guard.panics").Value(); got != sup.Panics {
		t.Errorf("guard.panics metric %d != %d", got, sup.Panics)
	}
	if got := reg.Counter("guard.quarantines").Value(); got == 0 {
		t.Error("guard.quarantines metric is 0")
	}
	if got := reg.Gauge("guard.state").Value(); got != int64(sup.State()) {
		t.Errorf("guard.state gauge %d != state %d", got, sup.State())
	}
}

// counting wraps a scheduler and counts its executions, so a test can
// tell which program actually served the connection.
type counting struct {
	inner Scheduler
	execs int
}

func (c *counting) Exec(env *runtime.Env) {
	c.execs++
	c.inner.Exec(env)
}

// TestSwapQuarantinesBackToPreviousProgram is the control-plane
// composition: hot-swapping a live supervised connection to a broken
// scheduler must degrade back to the program that was running before
// the swap — not to native MinRTT.
func TestSwapQuarantinesBackToPreviousProgram(t *testing.T) {
	eng := netsim.NewEngine(5)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	for _, d := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: "p", Rate: netsim.ConstantRate(2e6), Delay: d,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "p", Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	prev := &counting{inner: sched.MinRTT{}}
	sup := New(prev, Config{
		StallExecs:   4,
		StallTimeout: 20 * time.Millisecond,
		// Long backoff: once quarantined, the fallback serves the rest
		// of the transfer, making the attribution unambiguous.
		ProbationAfter: time.Hour,
		Now:            eng.Now,
		After:          func(d time.Duration, fn func()) { eng.After(d, fn) },
		Wake:           conn.Kick,
	})
	conn.SetScheduler(sup)
	chk := mptcp.NewConservationChecker(conn)

	const total = 1 << 20
	eng.After(0, func() { conn.Send(total, 0) })
	execsAtSwap := -1
	eng.At(300*time.Millisecond, func() {
		if conn.AllAcked() {
			t.Fatal("transfer finished before the swap; grow it")
		}
		execsAtSwap = prev.execs
		sup.Swap(&staller{}, sup.Inner())
		conn.Kick()
	})
	eng.RunUntil(120 * time.Second)

	if err := chk.Check(total); err != nil {
		t.Fatalf("transfer across bad swap: %v", err)
	}
	if execsAtSwap < 0 {
		t.Fatal("swap callback never ran")
	}
	if sup.Quarantines == 0 {
		t.Fatal("broken swapped-in scheduler never quarantined")
	}
	if got := sup.Fallback(); got != Scheduler(prev) {
		t.Fatalf("quarantine fallback is %T, want the previous program", got)
	}
	if prev.execs <= execsAtSwap {
		t.Fatalf("previous program never served the quarantine (execs %d at swap, %d at end)",
			execsAtSwap, prev.execs)
	}
	if sup.State() == StateActive {
		t.Error("supervisor re-promoted the dead scheduler")
	}
}

// TestSwapResetsSupervisionState: a supervisor that already degraded
// restarts clean when retargeted.
func TestSwapResetsSupervisionState(t *testing.T) {
	sup := New(&staller{}, Config{})
	env := syntheticEnv()
	for i := 0; i < 3; i++ {
		sup.Exec(env)
		env.Actions = env.Actions[:0]
		sup.strike(env)
	}
	if sup.State() != StateQuarantined {
		t.Fatalf("setup: state %v, want quarantined", sup.State())
	}
	good := sched.MinRTT{}
	sup.Swap(good, nil)
	if sup.State() != StateActive || sup.Strikes() != 0 {
		t.Fatalf("after Swap: state %v strikes %d, want active/0", sup.State(), sup.Strikes())
	}
	if sup.Inner() != Scheduler(good) {
		t.Fatal("Swap did not install the new program")
	}
}

// --- unit tests against a synthetic environment ---------------------

func syntheticEnv() *runtime.Env {
	view := &runtime.SubflowView{Handle: 1}
	view.Ints[runtime.SbfCwnd] = 10
	pv := &runtime.PacketView{Handle: 1}
	pv.Ints[runtime.PktSize] = 1460
	var regs [runtime.NumRegisters]int64
	return runtime.NewEnv(
		[]*runtime.SubflowView{view},
		runtime.NewQueue(runtime.QueueSend, []*runtime.PacketView{pv}),
		runtime.NewQueue(runtime.QueueUnacked, nil),
		runtime.NewQueue(runtime.QueueReinject, nil),
		&regs,
	)
}

func TestValidateStripsOnlyInvalidActions(t *testing.T) {
	env := syntheticEnv()
	sup := New(&staller{}, Config{})
	valid := runtime.Action{Kind: runtime.ActionPush, Packet: 1, Subflow: 1}
	env.Actions = append(env.Actions,
		valid,
		runtime.Action{Kind: runtime.ActionPush, Packet: 1, Subflow: 7},                 // no such subflow
		runtime.Action{Kind: runtime.ActionPush, Packet: 42, Subflow: 1},                // no such packet
		runtime.Action{Kind: runtime.ActionPop, Queue: runtime.QueueUnacked, Packet: 1}, // wrong queue
		runtime.Action{Kind: runtime.ActionDrop, Packet: 9000},                          // no such packet
	)
	stripped := sup.validate(env, 0)
	if stripped != 4 {
		t.Errorf("stripped %d actions, want 4", stripped)
	}
	if len(env.Actions) != 1 || env.Actions[0] != valid {
		t.Errorf("surviving actions %v, want only the valid push", env.Actions)
	}
}

func TestWorkAvailable(t *testing.T) {
	env := syntheticEnv()
	if !workAvailable(env) {
		t.Error("nonempty Q + cwnd headroom must report work available")
	}
	env.SubflowViews[0].Bools[runtime.SbfTSQThrottled] = true
	if workAvailable(env) {
		t.Error("TSQ-throttled subflow must not count as available")
	}
	env.SubflowViews[0].Bools[runtime.SbfTSQThrottled] = false
	env.SubflowViews[0].Ints[runtime.SbfSkbsInFlight] = 10
	if workAvailable(env) {
		t.Error("exhausted cwnd must not count as available")
	}
}

// TestQuarantineCarriesAdmissionWarnings is the analyzer/supervisor
// composition: a DSL scheduler that the static-analysis admission gate
// flagged (no-push) but that was installed anyway must, when the
// supervisor quarantines it for stalling, stamp the analyzer's warning
// count into the quarantine event's Site field.
func TestQuarantineCarriesAdmissionWarnings(t *testing.T) {
	// SET-only program: admitted with a no-push warning, then stalls.
	sched, err := core.Load("noPush", "SET(R1, R1 + 1);", core.BackendInterpreter)
	if err != nil {
		t.Fatal(err)
	}
	warnings := sched.AdmissionWarnings()
	if warnings == 0 {
		t.Fatal("test premise broken: no-push program carries no analyzer warnings")
	}

	eng := netsim.NewEngine(3)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	link := netsim.NewLink(eng, netsim.PathConfig{
		Name: "p", Rate: netsim.ConstantRate(3e6), Delay: 5 * time.Millisecond,
	})
	if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "p", Link: link}); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(4096)
	conn.Instrument(tracer, nil)
	sup := New(sched, Config{
		StallExecs:     4,
		StallTimeout:   20 * time.Millisecond,
		ProbationAfter: time.Second,
		Now:            eng.Now,
		After:          func(d time.Duration, fn func()) { eng.After(d, fn) },
		Wake:           conn.Kick,
	})
	sup.Instrument(tracer, conn.TraceConnID(), nil)
	conn.SetScheduler(sup)
	eng.After(0, func() { conn.Send(64<<10, 0) })
	eng.RunUntil(30 * time.Second)

	if sup.Quarantines == 0 {
		t.Fatal("stalling no-push scheduler never quarantined")
	}
	var sawQuarantine bool
	for _, ev := range tracer.Events() {
		if ev.Kind != obs.EvGuardQuarantine {
			continue
		}
		sawQuarantine = true
		if ev.Site != int32(warnings) {
			t.Errorf("quarantine event Site = %d, want admission warning count %d", ev.Site, warnings)
		}
	}
	if !sawQuarantine {
		t.Fatal("no quarantine event in the trace")
	}
}
