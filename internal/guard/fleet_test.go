package guard

import (
	"sync"
	"testing"
	"time"

	"progmp/internal/mptcp"
	"progmp/internal/mptcp/sched"
	"progmp/internal/netsim"
	"progmp/internal/obs"
	"progmp/internal/runtime"
)

// switchable panics while bad, otherwise does nothing (an intentionally
// idle but clean scheduler: empty env means no work available, so it
// never strikes for stalling).
type switchable struct {
	bad   bool
	execs int
}

func (s *switchable) Exec(*runtime.Env) {
	s.execs++
	if s.bad {
		panic("poison program")
	}
}

// freshEnv builds a minimal valid environment (empty queues, no
// subflows) for unit-driving Supervisor.Exec.
func freshEnv() *runtime.Env {
	var regs [runtime.NumRegisters]int64
	return runtime.NewEnv(nil, nil, nil, nil, &regs)
}

// fleetRig is a unit-level fleet: n supervisors enrolled under one
// program name, all clocked by a shared virtual engine.
type fleetRig struct {
	eng    *netsim.Engine
	fleet  *Fleet
	tracer *obs.Tracer
	reg    *obs.Registry
	sups   []*Supervisor
	inners []*switchable
}

const rigProgram = "poison.progmp"

func newFleetRig(n int, fcfg FleetConfig) *fleetRig {
	r := &fleetRig{
		eng:    netsim.NewEngine(1),
		tracer: obs.NewTracer(256),
		reg:    obs.NewRegistry(),
	}
	fcfg.Now = r.eng.Now
	fcfg.After = func(d time.Duration, fn func()) { r.eng.After(d, fn) }
	r.fleet = NewFleet(fcfg)
	r.fleet.Instrument(r.tracer, r.reg)
	for i := 0; i < n; i++ {
		inner := &switchable{}
		sup := New(inner, Config{
			Now:   r.eng.Now,
			After: func(d time.Duration, fn func()) { r.eng.After(d, fn) },
		})
		sup.Instrument(r.tracer, int32(i), r.reg)
		r.fleet.Enroll(rigProgram, sup)
		r.sups = append(r.sups, sup)
		r.inners = append(r.inners, inner)
	}
	return r
}

// quarantineSup drives sup to quarantine through real strikes
// (MaxStrikes panicking executions).
func (r *fleetRig) quarantineSup(i int) {
	r.inners[i].bad = true
	for sup := r.sups[i]; sup.State() != StateQuarantined; {
		sup.Exec(freshEnv())
	}
	r.inners[i].bad = false
}

func (r *fleetRig) eventCount(kind obs.EventKind) int {
	n := 0
	for _, ev := range r.tracer.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestFleetBlockAtThreshold mutation-checks K: K-1 distinct quarantined
// connections must NOT block, the K-th must, and re-quarantines of the
// same connection must not count as new connections.
func TestFleetBlockAtThreshold(t *testing.T) {
	r := newFleetRig(4, FleetConfig{BlockThreshold: 3})

	r.quarantineSup(0)
	r.quarantineSup(1)
	// Same connection again: distinctness, not volume, is what counts.
	r.fleet.noteQuarantine(rigProgram, r.sups[0])
	r.fleet.noteQuarantine(rigProgram, r.sups[1])
	if r.fleet.Blocked(rigProgram) {
		t.Fatal("fleet blocked at K-1 distinct connections")
	}
	if r.fleet.Blocks != 0 {
		t.Fatalf("Blocks = %d before threshold, want 0", r.fleet.Blocks)
	}

	r.quarantineSup(2)
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("fleet not blocked at K distinct connections")
	}
	for i, sup := range r.sups {
		if !sup.FleetBlocked() {
			t.Errorf("sup %d not fleet-blocked", i)
		}
		if sup.State() != StateQuarantined {
			t.Errorf("sup %d state = %v, want quarantined", i, sup.State())
		}
	}
	if r.fleet.Blocks != 1 {
		t.Errorf("Blocks = %d, want 1", r.fleet.Blocks)
	}
	if got := r.eventCount(obs.EvFleetBlock); got != 1 {
		t.Errorf("FLEET_BLOCK events = %d, want 1", got)
	}
	if got := r.fleet.BlockedPrograms(); len(got) != 1 || got[0] != rigProgram {
		t.Errorf("BlockedPrograms() = %v", got)
	}
	// The healthy connection (never struck) was dragged down too — the
	// whole point of the fleet tier.
	if !r.sups[3].FleetBlocked() {
		t.Error("healthy sibling connection not fleet-blocked")
	}
}

// TestFleetLiftAfterCleanWindow: the block lifts after the clean
// window; per-connection probation timers that fire during the block
// must NOT resurrect the program early; after the lift every
// supervisor goes on ordinary probation and clean trials restore it.
func TestFleetLiftAfterCleanWindow(t *testing.T) {
	r := newFleetRig(2, FleetConfig{BlockThreshold: 2, CleanWindow: 5 * time.Second})
	r.quarantineSup(0)
	r.quarantineSup(1)
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("not blocked at threshold")
	}

	// Per-connection probation (default 500 ms) fires well before the
	// 5 s clean window: the fleetBlocked guard must hold the line.
	r.eng.RunUntil(2 * time.Second)
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("block evaporated before the clean window elapsed")
	}
	for i, sup := range r.sups {
		if sup.State() != StateQuarantined {
			t.Fatalf("sup %d left quarantine during fleet block (state %v)", i, sup.State())
		}
	}

	r.eng.RunUntil(6 * time.Second)
	if r.fleet.Blocked(rigProgram) {
		t.Fatal("block not lifted after the clean window")
	}
	if got := r.eventCount(obs.EvFleetLift); got != 1 {
		t.Errorf("FLEET_LIFT events = %d, want 1", got)
	}
	for i, sup := range r.sups {
		if sup.FleetBlocked() {
			t.Errorf("sup %d still fleet-blocked after lift", i)
		}
		if sup.State() != StateProbation {
			t.Errorf("sup %d state = %v after lift, want probation", i, sup.State())
		}
	}

	// Clean trial executions re-promote to active.
	for _, sup := range r.sups {
		for j := 0; j < sup.cfg.TrialExecs; j++ {
			sup.Exec(freshEnv())
		}
	}
	for i, sup := range r.sups {
		if sup.State() != StateActive {
			t.Errorf("sup %d state = %v after clean trial, want active", i, sup.State())
		}
	}
}

// TestFleetReBlockDoublesWindow: a program that misbehaves again right
// after a lift is re-blocked for twice the window.
func TestFleetReBlockDoublesWindow(t *testing.T) {
	r := newFleetRig(1, FleetConfig{BlockThreshold: 1, CleanWindow: 1 * time.Second})
	r.quarantineSup(0)
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("not blocked at K=1")
	}
	r.eng.RunUntil(1200 * time.Millisecond)
	if r.fleet.Blocked(rigProgram) {
		t.Fatal("first block not lifted after 1 s window")
	}
	if r.sups[0].State() != StateProbation {
		t.Fatalf("state = %v after lift, want probation", r.sups[0].State())
	}

	// One strike during probation re-quarantines immediately → re-block
	// with the doubled (2 s) window.
	r.inners[0].bad = true
	r.sups[0].Exec(freshEnv())
	r.inners[0].bad = false
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("not re-blocked after probation strike")
	}
	r.eng.RunUntil(2700 * time.Millisecond) // 1.5 s into the 2 s window
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("re-block lifted before the doubled window elapsed")
	}
	r.eng.RunUntil(3500 * time.Millisecond)
	if r.fleet.Blocked(rigProgram) {
		t.Fatal("re-block not lifted after the doubled window")
	}
	if r.fleet.Blocks != 2 || r.fleet.Lifts != 2 {
		t.Errorf("Blocks/Lifts = %d/%d, want 2/2", r.fleet.Blocks, r.fleet.Lifts)
	}
}

// TestSwapClearsFleetBlockAndReEnrolls: retargeting a blocked
// supervisor at a different program frees this connection (the block on
// the old program stays for everyone else).
func TestSwapClearsFleetBlockAndReEnrolls(t *testing.T) {
	r := newFleetRig(2, FleetConfig{BlockThreshold: 2, CleanWindow: time.Hour})
	r.quarantineSup(0)
	r.quarantineSup(1)
	if !r.fleet.Blocked(rigProgram) {
		t.Fatal("not blocked")
	}

	fresh := &switchable{}
	r.sups[0].Swap(fresh, nil)
	r.fleet.Enroll("good.progmp", r.sups[0])
	if r.sups[0].FleetBlocked() {
		t.Error("swapped supervisor still fleet-blocked")
	}
	if r.sups[0].State() != StateActive {
		t.Errorf("swapped supervisor state = %v, want active", r.sups[0].State())
	}
	if r.sups[0].FleetProgram() != "good.progmp" {
		t.Errorf("FleetProgram = %q after re-enroll", r.sups[0].FleetProgram())
	}
	if !r.fleet.Blocked(rigProgram) {
		t.Error("block on the old program evaporated after one connection swapped away")
	}
	if !r.sups[1].FleetBlocked() {
		t.Error("sibling connection lost its block")
	}

	// Unenroll drops fleet membership entirely.
	r.fleet.Unenroll(r.sups[0])
	if r.sups[0].FleetProgram() != "" {
		t.Errorf("FleetProgram = %q after Unenroll, want empty", r.sups[0].FleetProgram())
	}
}

// TestFleetOperatorBlock: Fleet.Block is the manual escalation hatch.
func TestFleetOperatorBlock(t *testing.T) {
	r := newFleetRig(2, FleetConfig{CleanWindow: time.Hour})
	if !r.fleet.Block(rigProgram) {
		t.Fatal("operator block refused")
	}
	if r.fleet.Block(rigProgram) {
		t.Error("second operator block reported newly-blocked")
	}
	if !r.fleet.Blocked(rigProgram) || !r.sups[0].FleetBlocked() || !r.sups[1].FleetBlocked() {
		t.Error("operator block did not propagate to enrolled supervisors")
	}
}

// TestProbationRestoreUnderConcurrentHotSwap drives a live transfer
// whose scheduler flaps between panicking and clean while a second
// goroutine hot-swaps the supervised program through the engine inbox —
// the control-plane concurrency shape — and asserts byte-exact delivery
// and a supervisor that ends the run in a coherent state. Run with
// -race this doubles as the probation/restore data-race check.
func TestProbationRestoreUnderConcurrentHotSwap(t *testing.T) {
	eng := netsim.NewEngine(7)
	conn := mptcp.NewConn(eng, mptcp.Config{})
	for _, d := range []time.Duration{2 * time.Millisecond, 8 * time.Millisecond} {
		link := netsim.NewLink(eng, netsim.PathConfig{
			Name: "p", Rate: netsim.ConstantRate(8e6), Delay: d,
		})
		if _, err := conn.AddSubflow(mptcp.SubflowConfig{Name: "p", Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	sup := New(&panicky{calm: 2, inner: sched.MinRTT{}}, Config{
		MaxStrikes:     1,
		ProbationAfter: 5 * time.Millisecond,
		TrialExecs:     2,
		Now:            eng.Now,
		After:          func(d time.Duration, fn func()) { eng.After(d, fn) },
		Wake:           conn.Kick,
	})
	conn.SetScheduler(sup)
	chk := mptcp.NewConservationChecker(conn)

	fleet := NewFleet(FleetConfig{
		BlockThreshold: 2, // one connection: never fleet-blocks, but exercises enrollment
		Now:            eng.Now,
		After:          func(d time.Duration, fn func()) { eng.After(d, fn) },
	})
	fleet.Enroll("flappy", sup)

	inbox := netsim.NewInbox()
	const total = 256 << 10
	eng.After(0, func() { conn.Send(total, 0) })

	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.RunLiveUntil(30*time.Second, 2000, inbox) // 2000x real time
		inbox.Close()
	}()

	// Concurrent hot-swapper: retarget the supervisor every few
	// milliseconds of wall time, alternating broken and clean programs,
	// exactly as ctl swap does (inside the engine via the inbox).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			broken := i%2 == 0
			err := inbox.Do(func() {
				var next Scheduler = sched.MinRTT{}
				if broken {
					next = &panicky{calm: 1, inner: sched.MinRTT{}}
				}
				sup.Swap(next, sup.Inner())
				fleet.Enroll("flappy", sup)
			})
			if err != nil {
				return // engine finished; nothing left to swap
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done

	if err := chk.Check(total); err != nil {
		t.Fatalf("conservation under concurrent hot-swap: %v", err)
	}
	switch sup.State() {
	case StateActive, StateProbation, StateQuarantined:
		// Any state is legal at cutoff; what matters is it is coherent
		// and the transfer completed byte-exact.
	default:
		t.Fatalf("incoherent supervisor state %v", sup.State())
	}
}
