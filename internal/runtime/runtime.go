// Package runtime defines the execution-environment contract between the
// ProgMP scheduler back-ends (interpreter, compiled closures, bytecode VM)
// and the MPTCP substrate.
//
// It mirrors §3.1 of the paper: the environment exposes the sending queue
// Q, the in-flight queue QU, the reinjection queue RQ, and the set of
// subflows — all as immutable snapshots for the duration of one scheduler
// execution. Side effects (PUSH, POP, DROP) are collected in an action
// queue and applied by the substrate after the execution, preserving the
// visible semantics of the programming model while decoupling evaluation
// from packet movement (§4.1).
package runtime

import "fmt"

// NumRegisters is the number of integer registers (R1..R8) each
// scheduler instance keeps across executions (§3.3).
const NumRegisters = 8

// NumGlobals is the number of global registers (G1..G8) shared across
// every connection attached to the same cross-connection state store.
const NumGlobals = 8

// MaxSubflows bounds the number of concurrently tracked subflows. Packet
// views track per-subflow transmission with a bitmask indexed by subflow ID.
const MaxSubflows = 64

// QueueID identifies one of the three packet queues of the environment.
type QueueID int

// The three queues of the scheduling environment model (§3.1).
const (
	QueueSend     QueueID = iota // Q: packets pushed by the application
	QueueUnacked                 // QU: unacknowledged packets in flight
	QueueReinject                // RQ: packets suspected lost, to reinject
)

// String names the queue as spelled in the language.
func (q QueueID) String() string {
	switch q {
	case QueueSend:
		return "Q"
	case QueueUnacked:
		return "QU"
	case QueueReinject:
		return "RQ"
	}
	return fmt.Sprintf("QueueID(%d)", int(q))
}

// SubflowIntProp enumerates integer-valued subflow properties.
type SubflowIntProp int

// Integer subflow properties (Table 1 and §3.3). Times are in
// microseconds, sizes in bytes, windows and in-flight counts in segments.
const (
	SbfRTT          SubflowIntProp = iota // smoothed round-trip time (µs)
	SbfRTTAvg                             // long-term average RTT (µs)
	SbfRTTVar                             // RTT variance estimate (µs)
	SbfCwnd                               // congestion window (segments)
	SbfSkbsInFlight                       // unacknowledged segments in flight
	SbfQueued                             // segments queued but not yet sent
	SbfThroughput                         // delivery-rate estimate (bytes/s)
	SbfMSS                                // maximum segment size (bytes)
	SbfID                                 // stable subflow identifier
	SbfLostSkbs                           // segments currently marked lost
	SbfRTO                                // retransmission timeout (µs)
	SbfLinkQueued                         // bytes backlogged in the path's link transmit queue
	SbfXRTT                               // cross-connection smoothed RTT for this destination (µs); 0 when unknown
	SbfXLost                              // cross-connection loss events observed on this destination
	SbfXDelivered                         // cross-connection delivered bytes on this destination
	SbfXQuar                              // cross-connection quarantine signals recorded for this destination
	sbfIntPropCount
)

// NumSubflowIntProps is the number of integer subflow properties.
const NumSubflowIntProps = int(sbfIntPropCount)

var sbfIntPropNames = [...]string{
	SbfRTT:          "RTT",
	SbfRTTAvg:       "RTT_AVG",
	SbfRTTVar:       "RTT_VAR",
	SbfCwnd:         "CWND",
	SbfSkbsInFlight: "SKBS_IN_FLIGHT",
	SbfQueued:       "QUEUED",
	SbfThroughput:   "THROUGHPUT",
	SbfMSS:          "MSS",
	SbfID:           "ID",
	SbfLostSkbs:     "LOST_SKBS",
	SbfRTO:          "RTO",
	SbfLinkQueued:   "LINK_QUEUED",
	SbfXRTT:         "XRTT",
	SbfXLost:        "XLOST",
	SbfXDelivered:   "XDELIVERED",
	SbfXQuar:        "XQUAR",
}

// String returns the language-level spelling of the property.
func (p SubflowIntProp) String() string {
	if int(p) < len(sbfIntPropNames) {
		return sbfIntPropNames[p]
	}
	return fmt.Sprintf("SubflowIntProp(%d)", int(p))
}

// SubflowBoolProp enumerates boolean subflow properties.
type SubflowBoolProp int

// Boolean subflow properties.
const (
	SbfLossy        SubflowBoolProp = iota // in loss-recovery state
	SbfTSQThrottled                        // throttled by TCP small queues
	SbfIsBackup                            // flagged backup by the path manager
	sbfBoolPropCount
)

// NumSubflowBoolProps is the number of boolean subflow properties.
const NumSubflowBoolProps = int(sbfBoolPropCount)

var sbfBoolPropNames = [...]string{
	SbfLossy:        "LOSSY",
	SbfTSQThrottled: "TSQ_THROTTLED",
	SbfIsBackup:     "IS_BACKUP",
}

// String returns the language-level spelling of the property.
func (p SubflowBoolProp) String() string {
	if int(p) < len(sbfBoolPropNames) {
		return sbfBoolPropNames[p]
	}
	return fmt.Sprintf("SubflowBoolProp(%d)", int(p))
}

// PacketIntProp enumerates integer-valued packet properties.
type PacketIntProp int

// Integer packet properties.
const (
	PktSize       PacketIntProp = iota // payload size (bytes)
	PktSeq                             // data (meta-level) sequence number
	PktProp                            // application-set scheduling intent (§3.2)
	PktSentCount                       // number of transmissions so far
	PktAgeUS                           // time since enqueue (µs)
	PktLastSentUS                      // time since the most recent transmission (µs); -1 if never sent
	pktIntPropCount
)

// NumPacketIntProps is the number of integer packet properties.
const NumPacketIntProps = int(pktIntPropCount)

var pktIntPropNames = [...]string{
	PktSize:       "SIZE",
	PktSeq:        "SEQ",
	PktProp:       "PROP",
	PktSentCount:  "SENT_COUNT",
	PktAgeUS:      "AGE_US",
	PktLastSentUS: "LAST_SENT_US",
}

// String returns the language-level spelling of the property.
func (p PacketIntProp) String() string {
	if int(p) < len(pktIntPropNames) {
		return pktIntPropNames[p]
	}
	return fmt.Sprintf("PacketIntProp(%d)", int(p))
}

// PacketHandle opaquely identifies a packet for actions. Handles are
// only meaningful to the substrate that produced the environment.
type PacketHandle int64

// SubflowHandle opaquely identifies a subflow for actions.
type SubflowHandle int64

// PacketView is an immutable snapshot of one packet (§3.3: properties
// are immutable during a single scheduler execution).
type PacketView struct {
	Handle PacketHandle
	// Ints holds the integer properties, indexed by PacketIntProp.
	Ints [NumPacketIntProps]int64
	// SentOnMask has bit i set when the packet was transmitted on the
	// subflow with ID i.
	SentOnMask uint64
	// pos is the view's position inside its owning queue snapshot,
	// maintained by Queue so PopPacket runs in O(1). A view shared
	// between queues falls back to a linear scan in the non-owning
	// queue (the position check is an identity comparison).
	pos int32
}

// SentOn reports whether the packet was ever transmitted on sbf.
//
//progmp:hotpath
//progmp:deterministic
func (p *PacketView) SentOn(sbf *SubflowView) bool {
	if p == nil || sbf == nil {
		return false
	}
	id := sbf.Ints[SbfID]
	if id < 0 || id >= MaxSubflows {
		return false
	}
	return p.SentOnMask&(1<<uint(id)) != 0
}

// SubflowView is an immutable snapshot of one subflow.
type SubflowView struct {
	Handle SubflowHandle
	Ints   [NumSubflowIntProps]int64
	Bools  [NumSubflowBoolProps]bool
	// RWndFreeBytes is how many additional payload bytes the peer's
	// receive window can accommodate; HAS_WINDOW_FOR compares against it.
	RWndFreeBytes int64
}

// HasWindowFor reports whether the receive window can accommodate p
// (HAS_WINDOW_FOR in the language). A nil packet has no window.
//
//progmp:hotpath
//progmp:deterministic
func (s *SubflowView) HasWindowFor(p *PacketView) bool {
	if s == nil || p == nil {
		return false
	}
	return p.Ints[PktSize] <= s.RWndFreeBytes
}

// ActionKind enumerates deferred side effects.
type ActionKind int

// Side-effecting operations collected during one execution (§4.1:
// "scheduler execution and the actual PUSH operations are internally
// decoupled with an action_queue").
const (
	ActionPop  ActionKind = iota // remove packet from a queue
	ActionPush                   // transmit packet on a subflow
	ActionDrop                   // discard a popped packet
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionPop:
		return "POP"
	case ActionPush:
		return "PUSH"
	case ActionDrop:
		return "DROP"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is one deferred side effect, recorded in program order.
type Action struct {
	Kind    ActionKind
	Queue   QueueID       // for ActionPop: source queue
	Packet  PacketHandle  // packet involved (zero value invalid)
	Subflow SubflowHandle // for ActionPush: target subflow
	// Site is the decision site inside the scheduler program that
	// recorded the action: the source line for the interpreter and
	// compiled back-ends, the bytecode pc for the VM, 0 for native
	// schedulers. Stamped from Env.Site; consumed by decision tracing.
	Site int32
}
