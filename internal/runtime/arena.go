package runtime

// Arena owns one connection's reusable snapshot storage: the Env, the
// subflow view storage, and the three queue views with their lazy
// materialization buffers. One scheduler execution in steady state
// costs zero heap allocations — every structure below is recycled with
// generation counters instead of reallocation, and backing arrays only
// ever grow (at bind time, never mid-execution, so view pointers handed
// to a running scheduler stay stable).
//
// Lifecycle per execution:
//
//	views := a.BindSubflows(n)   // fill every field of every view
//	a.BindQueue(QueueSend, src, qLen, reuseQ)
//	a.BindQueue(QueueUnacked, ...)
//	a.BindQueue(QueueReinject, ...)
//	a.BeginExec()                // resets actions + pop state, O(1)
//	sched.Exec(a.Env())
//
// The reuse flag of BindQueue implements incremental snapshot reuse
// across compressed executions (§4.1): when the caller can prove the
// substrate behind a queue is unchanged since the previous bind (same
// membership, same properties, same clock), already-materialized views
// survive and the next execution pays nothing to re-view them.
type Arena struct {
	env      Env
	regs     [NumRegisters]int64 // used when the caller passes nil regs
	globals  [NumGlobals]int64   // execution-local copy of the shared globals
	sbfStore []SubflowView
	sbfPtrs  []*SubflowView
	queues   [3]Queue
}

// NewArena creates an arena whose Env persists registers in regs (a
// private register file is used when nil).
func NewArena(regs *[NumRegisters]int64) *Arena {
	a := &Arena{}
	if regs == nil {
		regs = &a.regs
	}
	a.env.Regs = regs
	a.env.Globals = &a.globals
	a.env.SendQ = &a.queues[QueueSend]
	a.env.UnackedQ = &a.queues[QueueUnacked]
	a.env.ReinjectQ = &a.queues[QueueReinject]
	for id := range a.queues {
		a.queues[id].id = QueueID(id)
		a.queues[id].gen = 1
	}
	return a
}

// Env returns the arena's environment. The pointer is stable for the
// arena's lifetime; contents change with every Bind*/BeginExec.
//
//progmp:hotpath
//progmp:deterministic
func (a *Arena) Env() *Env { return &a.env }

// BindSubflows sizes the subflow view set for the next execution and
// returns the views for the caller to fill. Views are recycled, so the
// caller must overwrite every field of every returned view.
//
//progmp:hotpath
//progmp:deterministic
func (a *Arena) BindSubflows(n int) []*SubflowView {
	if n > len(a.sbfStore) {
		newCap := n + 8
		//progmp:ignore hotpath cold growth: storage is recycled once sized for the subflow count
		a.sbfStore = make([]SubflowView, newCap)
		//progmp:ignore hotpath cold growth: storage is recycled once sized for the subflow count
		a.sbfPtrs = make([]*SubflowView, newCap)
		for i := range a.sbfStore {
			a.sbfPtrs[i] = &a.sbfStore[i]
		}
	}
	a.env.SubflowViews = a.sbfPtrs[:n]
	return a.env.SubflowViews
}

// BindQueue points queue id at a source of n packets for the next
// execution. reuse asserts that the substrate behind src is unchanged
// since the previous bind of this queue — same packets in the same
// order with the same property values — letting already-materialized
// views carry over; pass false whenever in doubt. A length change
// always invalidates regardless of reuse.
//
//progmp:hotpath
//progmp:deterministic
func (a *Arena) BindQueue(id QueueID, src QueueSource, n int, reuse bool) {
	if id < QueueSend || id > QueueReinject {
		return
	}
	a.queues[id].bind(id, src, n, reuse)
}

// BeginExec readies the environment for one execution: the action queue
// empties (capacity retained) and all pop state clears. O(1).
//
//progmp:hotpath
//progmp:deterministic
func (a *Arena) BeginExec() {
	a.env.Reset()
}
