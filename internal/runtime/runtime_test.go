package runtime

import (
	"testing"
	"testing/quick"
)

func pkts(n int) []*PacketView {
	out := make([]*PacketView, n)
	for i := range out {
		p := &PacketView{Handle: PacketHandle(i + 1)}
		p.Ints[PktSeq] = int64(i)
		p.Ints[PktSize] = 100
		out[i] = p
	}
	return out
}

func TestQueueTopPopOrder(t *testing.T) {
	q := NewQueue(QueueSend, pkts(3))
	if q.Len() != 3 || q.Empty() {
		t.Fatalf("fresh queue: len=%d empty=%v", q.Len(), q.Empty())
	}
	first := q.Top()
	if first.Ints[PktSeq] != 0 {
		t.Errorf("Top seq = %d, want 0", first.Ints[PktSeq])
	}
	if !q.PopPacket(first) {
		t.Fatal("PopPacket(first) failed")
	}
	if q.PopPacket(first) {
		t.Error("double pop succeeded")
	}
	if got := q.Top().Ints[PktSeq]; got != 1 {
		t.Errorf("Top after pop = %d, want 1", got)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestQueuePopMiddle(t *testing.T) {
	q := NewQueue(QueueSend, pkts(3))
	middle := q.At(1)
	if !q.PopPacket(middle) {
		t.Fatal("middle pop failed")
	}
	var seen []int64
	q.All(func(p *PacketView) bool {
		seen = append(seen, p.Ints[PktSeq])
		return true
	})
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 2 {
		t.Errorf("visible after middle pop = %v, want [0 2]", seen)
	}
}

func TestQueueNextVisible(t *testing.T) {
	q := NewQueue(QueueSend, pkts(4))
	q.PopPacket(q.At(0))
	q.PopPacket(q.At(2))
	var order []int
	for pos := q.NextVisible(-1); pos >= 0; pos = q.NextVisible(pos) {
		order = append(order, pos)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Errorf("NextVisible walk = %v, want [1 3]", order)
	}
}

func TestQueueReset(t *testing.T) {
	q := NewQueue(QueueSend, pkts(2))
	q.PopPacket(q.At(0))
	q.Reset()
	if q.Len() != 2 {
		t.Errorf("Len after reset = %d, want 2", q.Len())
	}
}

func TestQueueAllEarlyStop(t *testing.T) {
	q := NewQueue(QueueSend, pkts(5))
	count := 0
	q.All(func(*PacketView) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early-stopped walk visited %d, want 2", count)
	}
}

func TestEnvActionsAndRegisters(t *testing.T) {
	sbf := &SubflowView{Handle: 7}
	sbf.Ints[SbfID] = 0
	env := NewEnv([]*SubflowView{sbf}, NewQueue(QueueSend, pkts(2)), nil, nil, nil)
	p := env.SendQ.Top()
	if !env.Pop(QueueSend, p) {
		t.Fatal("Pop failed")
	}
	env.Push(sbf, p)
	env.Drop(nil) // graceful no-op
	env.Push(nil, p)
	env.Push(sbf, nil)
	if len(env.Actions) != 2 {
		t.Fatalf("actions = %v, want pop+push only", env.Actions)
	}
	if env.PushCount() != 1 {
		t.Errorf("PushCount = %d, want 1", env.PushCount())
	}
	env.SetReg(3, 42)
	if env.Reg(3) != 42 {
		t.Errorf("register write lost")
	}
	env.SetReg(-1, 9)
	env.SetReg(NumRegisters, 9)
	if env.Reg(-1) != 0 || env.Reg(NumRegisters) != 0 {
		t.Errorf("out-of-range registers must read 0")
	}
	env.Reset()
	if len(env.Actions) != 0 || env.SendQ.Len() != 2 {
		t.Errorf("Reset must clear actions and pops")
	}
	if env.Reg(3) != 42 {
		t.Errorf("Reset must preserve registers")
	}
}

func TestSentOnAndWindow(t *testing.T) {
	sbf := &SubflowView{RWndFreeBytes: 500}
	sbf.Ints[SbfID] = 3
	p := &PacketView{SentOnMask: 1 << 3}
	p.Ints[PktSize] = 400
	if !p.SentOn(sbf) {
		t.Error("SentOn lost the bit")
	}
	if !sbf.HasWindowFor(p) {
		t.Error("400 <= 500 must fit")
	}
	p.Ints[PktSize] = 600
	if sbf.HasWindowFor(p) {
		t.Error("600 > 500 must not fit")
	}
	var nilS *SubflowView
	var nilP *PacketView
	if nilS.HasWindowFor(p) || sbf.HasWindowFor(nilP) || nilP.SentOn(sbf) || p.SentOn(nil) {
		t.Error("nil receivers must be graceful")
	}
}

// Property: any interleaving of pops keeps Len consistent with the
// number of distinct successful pops, and Top always returns the first
// non-popped packet.
func TestQueuePopProperty(t *testing.T) {
	f := func(popIdx []uint8) bool {
		const n = 10
		q := NewQueue(QueueSend, pkts(n))
		popped := map[int]bool{}
		for _, raw := range popIdx {
			i := int(raw) % n
			ok := q.PopPacket(q.At(i))
			if ok == popped[i] {
				return false // must succeed exactly once per packet
			}
			popped[i] = true
		}
		if q.Len() != n-len(popped) {
			return false
		}
		top := q.Top()
		for i := 0; i < n; i++ {
			if !popped[i] {
				return top == q.At(i)
			}
		}
		return top == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if QueueSend.String() != "Q" || QueueUnacked.String() != "QU" || QueueReinject.String() != "RQ" {
		t.Error("queue names wrong")
	}
	if SbfRTT.String() != "RTT" || SbfTSQThrottled.String() != "TSQ_THROTTLED" {
		t.Error("subflow property names wrong")
	}
	if PktSize.String() != "SIZE" {
		t.Error("packet property names wrong")
	}
	if ActionPush.String() != "PUSH" || ActionPop.String() != "POP" || ActionDrop.String() != "DROP" {
		t.Error("action names wrong")
	}
}

func TestEnvQueueLookupAndDrop(t *testing.T) {
	env := NewEnv(nil, NewQueue(QueueSend, pkts(1)), NewQueue(QueueUnacked, nil), NewQueue(QueueReinject, nil), nil)
	if env.Queue(QueueSend) != env.SendQ || env.Queue(QueueUnacked) != env.UnackedQ || env.Queue(QueueReinject) != env.ReinjectQ {
		t.Errorf("Queue lookup broken")
	}
	if env.Queue(QueueID(9)) != nil {
		t.Errorf("unknown queue id must be nil")
	}
	if env.SendQ.ID() != QueueSend {
		t.Errorf("queue ID accessor wrong")
	}
	env.Drop(env.SendQ.Top())
	if len(env.Actions) != 1 || env.Actions[0].Kind != ActionDrop {
		t.Errorf("Drop not recorded: %v", env.Actions)
	}
	if env.SendQ.At(5) != nil {
		t.Errorf("out-of-range At must be nil")
	}
}

func TestStringersOutOfRange(t *testing.T) {
	if QueueID(9).String() == "" || SubflowIntProp(99).String() == "" ||
		SubflowBoolProp(99).String() == "" || PacketIntProp(99).String() == "" ||
		ActionKind(9).String() == "" {
		t.Errorf("out-of-range stringers must still render")
	}
}
