package runtime

// Queue is the snapshot of one packet queue presented to a scheduler
// execution. The underlying packet slice is ordered by (meta) sequence
// number, oldest first, exactly as the kernel's sk_write_queue would be
// walked via the runtime's queue_position pointer (§4.1).
//
// POP does not mutate the substrate: it marks the packet consumed within
// this execution and records an ActionPop, so the queue view stays
// consistent with the programming model (a popped packet is no longer
// visible to subsequent TOP/POP/FILTER evaluations).
type Queue struct {
	id      QueueID
	pkts    []*PacketView
	popped  []bool
	nPopped int
}

// NewQueue wraps a packet snapshot slice as a queue view. The slice is
// not copied; the substrate must not mutate it during execution.
func NewQueue(id QueueID, pkts []*PacketView) *Queue {
	return &Queue{id: id, pkts: pkts, popped: make([]bool, len(pkts))}
}

// ID returns the queue's identity.
func (q *Queue) ID() QueueID { return q.id }

// Len returns the number of packets still visible in the queue.
func (q *Queue) Len() int { return len(q.pkts) - q.nPopped }

// Empty reports whether no packets remain visible.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Top returns the first visible packet, or nil when empty.
func (q *Queue) Top() *PacketView {
	for i, p := range q.pkts {
		if !q.popped[i] {
			return p
		}
	}
	return nil
}

// All calls fn for every visible packet in order; fn returning false
// stops the walk. This is the primitive the declarative operations
// (FILTER/MIN/MAX) build on, enabling late materialization.
func (q *Queue) All(fn func(*PacketView) bool) {
	for i, p := range q.pkts {
		if q.popped[i] {
			continue
		}
		if !fn(p) {
			return
		}
	}
}

// Reset clears pop state so the same snapshot can be executed again
// (used by the overhead benchmarks to time executions without
// rebuilding the environment).
func (q *Queue) Reset() {
	for i := range q.popped {
		q.popped[i] = false
	}
	q.nPopped = 0
}

// At returns the packet at position i in the underlying snapshot,
// regardless of pop state, or nil when out of range. Positions are
// stable for the whole execution; the bytecode VM encodes packet
// handles as (queue, position) pairs.
func (q *Queue) At(i int) *PacketView {
	if i < 0 || i >= len(q.pkts) {
		return nil
	}
	return q.pkts[i]
}

// NextVisible returns the position of the first not-yet-popped packet
// strictly after position `after` (start with -1), or -1 when none.
func (q *Queue) NextVisible(after int) int {
	for i := after + 1; i < len(q.pkts); i++ {
		if i >= 0 && !q.popped[i] {
			return i
		}
	}
	return -1
}

// PopPacket marks p as consumed and returns whether it was visible.
// It supports popping from the middle of the queue, which the kernel
// runtime implements with the augmented queue_position pointer.
func (q *Queue) PopPacket(p *PacketView) bool {
	if p == nil {
		return false
	}
	for i, cand := range q.pkts {
		if cand == p && !q.popped[i] {
			q.popped[i] = true
			q.nPopped++
			return true
		}
	}
	return false
}

// Env is the complete execution environment for one scheduler run:
// subflow snapshots, queue snapshots, the register file, and the action
// queue that collects side effects.
type Env struct {
	SubflowViews []*SubflowView
	SendQ        *Queue
	UnackedQ     *Queue
	ReinjectQ    *Queue
	Regs         *[NumRegisters]int64
	Actions      []Action
	// Site is the current decision site; back-ends set it immediately
	// before emitting an action so the recorded Action carries the
	// program location (source line or bytecode pc) that decided it.
	Site int32
}

// NewEnv assembles an environment. Any nil queue is replaced by an
// empty one so back-ends never need nil checks.
func NewEnv(subflows []*SubflowView, sendQ, unackedQ, reinjectQ *Queue, regs *[NumRegisters]int64) *Env {
	if sendQ == nil {
		sendQ = NewQueue(QueueSend, nil)
	}
	if unackedQ == nil {
		unackedQ = NewQueue(QueueUnacked, nil)
	}
	if reinjectQ == nil {
		reinjectQ = NewQueue(QueueReinject, nil)
	}
	if regs == nil {
		regs = new([NumRegisters]int64)
	}
	return &Env{
		SubflowViews: subflows,
		SendQ:        sendQ,
		UnackedQ:     unackedQ,
		ReinjectQ:    reinjectQ,
		Regs:         regs,
	}
}

// Reset clears the action queue and pop state for re-execution of the
// same snapshot (overhead benchmarks). Registers are preserved.
func (e *Env) Reset() {
	e.Actions = e.Actions[:0]
	e.Site = 0
	e.SendQ.Reset()
	e.UnackedQ.Reset()
	e.ReinjectQ.Reset()
}

// Queue returns the view for id.
func (e *Env) Queue(id QueueID) *Queue {
	switch id {
	case QueueSend:
		return e.SendQ
	case QueueUnacked:
		return e.UnackedQ
	case QueueReinject:
		return e.ReinjectQ
	}
	return nil
}

// Reg reads register i (0-based). Out-of-range reads yield 0: the model
// has no exceptions by design.
func (e *Env) Reg(i int) int64 {
	if i < 0 || i >= NumRegisters {
		return 0
	}
	return e.Regs[i]
}

// SetReg writes register i. Register writes take effect immediately and
// are visible to subsequent reads in the same execution (the round-robin
// scheduler of §3.4 depends on this).
func (e *Env) SetReg(i int, v int64) {
	if i < 0 || i >= NumRegisters {
		return
	}
	e.Regs[i] = v
}

// Pop marks p consumed from queue id and records the action. Popping a
// nil or already-consumed packet is a graceful no-op returning false.
func (e *Env) Pop(id QueueID, p *PacketView) bool {
	q := e.Queue(id)
	if q == nil || !q.PopPacket(p) {
		return false
	}
	e.Actions = append(e.Actions, Action{Kind: ActionPop, Queue: id, Packet: p.Handle, Site: e.Site})
	return true
}

// Push records a PUSH of p on sbf. Pushing a nil packet or to a nil
// subflow is a graceful no-op (stale-reference safety by design).
func (e *Env) Push(sbf *SubflowView, p *PacketView) {
	if sbf == nil || p == nil {
		return
	}
	e.Actions = append(e.Actions, Action{Kind: ActionPush, Packet: p.Handle, Subflow: sbf.Handle, Site: e.Site})
}

// Drop records discarding p. Dropping nil is a graceful no-op.
func (e *Env) Drop(p *PacketView) {
	if p == nil {
		return
	}
	e.Actions = append(e.Actions, Action{Kind: ActionDrop, Packet: p.Handle, Site: e.Site})
}

// PushCount returns how many ActionPush entries were recorded. The
// substrate's calling model uses it to decide whether another execution
// may make progress (compressed executions, §4.1).
func (e *Env) PushCount() int {
	n := 0
	for _, a := range e.Actions {
		if a.Kind == ActionPush {
			n++
		}
	}
	return n
}
