package runtime

// QueueSource materializes packet views on demand. A queue bound to a
// source (see Arena.BindQueue) starts each execution with no view
// contents at all; the first access to a position fills the recycled
// view from the substrate. MaterializePacket must overwrite every
// exported field of v (views are pooled, so stale fields from an
// earlier snapshot are still present) and must describe a substrate
// that does not change for the remainder of the execution.
type QueueSource interface {
	// MaterializePacket fills v with packet i's current state. The
	// directive is a proof obligation on every implementation: queue
	// reads happen inside scheduler executions.
	//
	//progmp:hotpath
	//progmp:deterministic
	MaterializePacket(i int, v *PacketView)
}

// Queue is the snapshot of one packet queue presented to a scheduler
// execution. The underlying packet slice is ordered by (meta) sequence
// number, oldest first, exactly as the kernel's sk_write_queue would be
// walked via the runtime's queue_position pointer (§4.1).
//
// POP does not mutate the substrate: it marks the packet consumed within
// this execution and records an ActionPop, so the queue view stays
// consistent with the programming model (a popped packet is no longer
// visible to subsequent TOP/POP/FILTER evaluations).
//
// A queue operates in one of two modes. The eager mode (NewQueue) wraps
// a fully built []*PacketView. The arena mode (Arena.BindQueue) owns
// recycled view storage and fills views lazily from a QueueSource as
// Top/All/NextVisible/At touch positions — the paper's late
// materialization (§4.1), which makes a snapshot whose packets are never
// inspected cost nothing beyond the bind itself.
//
// All per-execution state (pop marks, materialization marks) is kept in
// generation-stamped arrays: Reset and rebinding bump a counter instead
// of clearing memory, so the steady-state cost of starting an execution
// is O(1) per queue, not O(packets).
type Queue struct {
	id   QueueID
	n    int           // snapshot length
	pkts []*PacketView // views for positions [0, n); may have extra capacity

	// Arena mode: recycled view storage and the lazy-fill bookkeeping.
	// src == nil means eager mode (views arrived fully built).
	src     QueueSource
	store   []PacketView
	matGen  []uint32 // matGen[i] == matMark → store[i] is filled
	matMark uint32

	// Pop bookkeeping: popGen[i] == gen → position i consumed.
	gen     uint32
	popGen  []uint32
	nPopped int
	topHint int // all positions < topHint are consumed
}

// NewQueue wraps a packet snapshot slice as an eager queue view. The
// slice is not copied; the substrate must not mutate it during
// execution.
func NewQueue(id QueueID, pkts []*PacketView) *Queue {
	q := &Queue{id: id, n: len(pkts), pkts: pkts, gen: 1, popGen: make([]uint32, len(pkts))}
	for i, p := range pkts {
		p.pos = int32(i)
	}
	return q
}

// bind points the queue at a source of n packets for the next
// execution. When reuse is true the caller asserts the substrate
// content behind the source is unchanged since the previous bind, so
// already-materialized views stay valid; otherwise every view is
// invalidated (lazily — no memory is touched here). Pop state is always
// per-execution and is cleared separately by Reset.
func (q *Queue) bind(id QueueID, src QueueSource, n int, reuse bool) {
	q.id = id
	q.src = src
	if n != q.n {
		reuse = false
	}
	if n > len(q.store) {
		// Grow the backing arrays. Views from earlier executions keep
		// pointing into the old store, which is fine: snapshots are only
		// referenced within their own execution.
		newCap := n + n/2 + 8
		//progmp:ignore hotpath cold growth: backing arrays are recycled once sized for the queue
		q.store = make([]PacketView, newCap)
		//progmp:ignore hotpath cold growth: backing arrays are recycled once sized for the queue
		q.pkts = make([]*PacketView, newCap)
		//progmp:ignore hotpath cold growth: backing arrays are recycled once sized for the queue
		q.matGen = make([]uint32, newCap)
		//progmp:ignore hotpath cold growth: backing arrays are recycled once sized for the queue
		q.popGen = make([]uint32, newCap)
		for i := range q.store {
			q.pkts[i] = &q.store[i]
			q.store[i].pos = int32(i)
		}
		q.gen = 1
		q.matMark = 0
		reuse = false
	}
	q.n = n
	if !reuse {
		q.matMark++
		if q.matMark == 0 { // wraparound: marks in matGen could collide
			for i := range q.matGen {
				q.matGen[i] = 0
			}
			q.matMark = 1
		}
	}
}

// ID returns the queue's identity.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) ID() QueueID { return q.id }

// Len returns the number of packets still visible in the queue.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) Len() int { return q.n - q.nPopped }

// Empty reports whether no packets remain visible.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) Empty() bool { return q.Len() == 0 }

// popped reports whether position i was consumed this execution.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) popped(i int) bool { return q.popGen[i] == q.gen }

// Top returns the first visible packet, or nil when empty. The scan
// cursor only ever advances (pops are irrevocable within an execution),
// so Top is amortized O(1).
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) Top() *PacketView {
	for q.topHint < q.n && q.popped(q.topHint) {
		q.topHint++
	}
	if q.topHint >= q.n {
		return nil
	}
	return q.At(q.topHint)
}

// All calls fn for every visible packet in order; fn returning false
// stops the walk. This is the primitive the declarative operations
// (FILTER/MIN/MAX) build on; views materialize only as the walk
// reaches them, so an early stop leaves the tail untouched.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) All(fn func(*PacketView) bool) {
	for i := q.topHint; i < q.n; i++ {
		if q.popped(i) {
			continue
		}
		//progmp:ignore hotpath callback literal is checked inline at each hot-path call site
		if !fn(q.At(i)) {
			return
		}
	}
}

// Reset clears pop state so the same snapshot can be executed again.
// Materialized views stay valid: generation counters make the clear
// O(1) regardless of queue length.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) Reset() {
	q.gen++
	if q.gen == 0 { // wraparound: stamps in popGen could collide
		for i := range q.popGen {
			q.popGen[i] = 0
		}
		q.gen = 1
	}
	q.nPopped = 0
	q.topHint = 0
}

// At returns the packet at position i in the underlying snapshot,
// regardless of pop state, or nil when out of range. Positions are
// stable for the whole execution; the bytecode VM encodes packet
// handles as (queue, position) pairs.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) At(i int) *PacketView {
	if i < 0 || i >= q.n {
		return nil
	}
	p := q.pkts[i]
	if q.src != nil && q.matGen[i] != q.matMark {
		q.src.MaterializePacket(i, p)
		q.matGen[i] = q.matMark
	}
	return p
}

// NextVisible returns the position of the first not-yet-popped packet
// strictly after position `after` (start with -1), or -1 when none.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) NextVisible(after int) int {
	i := after + 1
	if i < q.topHint {
		i = q.topHint // everything below the hint is consumed
	}
	for ; i < q.n; i++ {
		if !q.popped(i) {
			return i
		}
	}
	return -1
}

// PopPacket marks p as consumed and returns whether it was visible.
// It supports popping from the middle of the queue, which the kernel
// runtime implements with the augmented queue_position pointer. The
// common case — a view owned by this queue — is O(1) via the view's
// recorded position; a foreign view degrades to a scan.
//
//progmp:hotpath
//progmp:deterministic
func (q *Queue) PopPacket(p *PacketView) bool {
	if p == nil {
		return false
	}
	i := int(p.pos)
	if i < 0 || i >= q.n || q.pkts[i] != p {
		i = -1
		for j := 0; j < q.n; j++ {
			if q.pkts[j] == p {
				i = j
				break
			}
		}
		if i < 0 {
			return false
		}
	}
	if q.popped(i) {
		return false
	}
	q.popGen[i] = q.gen
	q.nPopped++
	return true
}

// Env is the complete execution environment for one scheduler run:
// subflow snapshots, queue snapshots, the register file, and the action
// queue that collects side effects.
type Env struct {
	SubflowViews []*SubflowView
	SendQ        *Queue
	UnackedQ     *Queue
	ReinjectQ    *Queue
	Regs         *[NumRegisters]int64
	// Globals is the execution-local copy of the shared global register
	// file (G1..G8). The substrate fills it from a store snapshot before
	// an execution and publishes the registers marked in the dirty mask
	// back to the store afterwards; the scheduler itself only ever
	// touches this local array, keeping the hot path allocation-free.
	Globals *[NumGlobals]int64
	Actions []Action
	// Site is the current decision site; back-ends set it immediately
	// before emitting an action so the recorded Action carries the
	// program location (source line or bytecode pc) that decided it.
	Site int32

	// Cached ActionPush count: valid while pushSeen == len(Actions).
	// Callers that truncate Actions directly (the guard rebuilds the
	// queue in place) invalidate the cache by changing the length;
	// PushCount then recounts once and re-caches.
	pushes   int
	pushSeen int

	// dirtyGlobals has bit i set when global register i was written this
	// execution; the substrate batches exactly those back to the store.
	dirtyGlobals uint32
}

// NewEnv assembles an environment. Any nil queue is replaced by an
// empty one so back-ends never need nil checks.
func NewEnv(subflows []*SubflowView, sendQ, unackedQ, reinjectQ *Queue, regs *[NumRegisters]int64) *Env {
	if sendQ == nil {
		sendQ = NewQueue(QueueSend, nil)
	}
	if unackedQ == nil {
		unackedQ = NewQueue(QueueUnacked, nil)
	}
	if reinjectQ == nil {
		reinjectQ = NewQueue(QueueReinject, nil)
	}
	if regs == nil {
		regs = new([NumRegisters]int64)
	}
	return &Env{
		SubflowViews: subflows,
		SendQ:        sendQ,
		UnackedQ:     unackedQ,
		ReinjectQ:    reinjectQ,
		Regs:         regs,
		Globals:      new([NumGlobals]int64),
	}
}

// Reset clears the action queue and pop state for re-execution of the
// same snapshot (overhead benchmarks, compressed executions).
// Registers are preserved, and so is the Actions capacity — in steady
// state no append in the hot path allocates.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Reset() {
	e.Actions = e.Actions[:0]
	e.Site = 0
	e.pushes = 0
	e.pushSeen = 0
	e.dirtyGlobals = 0
	e.SendQ.Reset()
	e.UnackedQ.Reset()
	e.ReinjectQ.Reset()
}

// Queue returns the view for id.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Queue(id QueueID) *Queue {
	switch id {
	case QueueSend:
		return e.SendQ
	case QueueUnacked:
		return e.UnackedQ
	case QueueReinject:
		return e.ReinjectQ
	}
	return nil
}

// Reg reads register i (0-based). Out-of-range reads yield 0: the model
// has no exceptions by design.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Reg(i int) int64 {
	if i < 0 || i >= NumRegisters {
		return 0
	}
	return e.Regs[i]
}

// SetReg writes register i. Register writes take effect immediately and
// are visible to subsequent reads in the same execution (the round-robin
// scheduler of §3.4 depends on this).
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) SetReg(i int, v int64) {
	if i < 0 || i >= NumRegisters {
		return
	}
	e.Regs[i] = v
}

// Global reads global register i (0-based) from the execution-local
// copy. Out-of-range reads yield 0; an environment without a globals
// array reads all-zero.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Global(i int) int64 {
	if i < 0 || i >= NumGlobals || e.Globals == nil {
		return 0
	}
	return e.Globals[i]
}

// SetGlobal writes global register i in the execution-local copy and
// marks it dirty. Like SetReg, the write is immediately visible to
// subsequent reads in the same execution; cross-connection visibility
// happens when the substrate publishes the dirty set to the store.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) SetGlobal(i int, v int64) {
	if i < 0 || i >= NumGlobals || e.Globals == nil {
		return
	}
	e.Globals[i] = v
	e.dirtyGlobals |= 1 << uint(i)
}

// DirtyGlobals returns the bitmask of global registers written this
// execution (bit i ↔ register i).
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) DirtyGlobals() uint32 { return e.dirtyGlobals }

// ClearDirtyGlobals resets the dirty mask after the substrate published
// the writes.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) ClearDirtyGlobals() { e.dirtyGlobals = 0 }

// Pop marks p consumed from queue id and records the action. Popping a
// nil or already-consumed packet is a graceful no-op returning false.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Pop(id QueueID, p *PacketView) bool {
	q := e.Queue(id)
	if q == nil || !q.PopPacket(p) {
		return false
	}
	//progmp:ignore hotpath amortized: Actions capacity is retained across executions by BeginExec
	e.Actions = append(e.Actions, Action{Kind: ActionPop, Queue: id, Packet: p.Handle, Site: e.Site})
	if e.pushSeen == len(e.Actions)-1 {
		e.pushSeen = len(e.Actions)
	}
	return true
}

// Push records a PUSH of p on sbf. Pushing a nil packet or to a nil
// subflow is a graceful no-op (stale-reference safety by design).
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Push(sbf *SubflowView, p *PacketView) {
	if sbf == nil || p == nil {
		return
	}
	//progmp:ignore hotpath amortized: Actions capacity is retained across executions by BeginExec
	e.Actions = append(e.Actions, Action{Kind: ActionPush, Packet: p.Handle, Subflow: sbf.Handle, Site: e.Site})
	if e.pushSeen == len(e.Actions)-1 {
		e.pushes++
		e.pushSeen = len(e.Actions)
	}
}

// Drop records discarding p. Dropping nil is a graceful no-op.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) Drop(p *PacketView) {
	if p == nil {
		return
	}
	//progmp:ignore hotpath amortized: Actions capacity is retained across executions by BeginExec
	e.Actions = append(e.Actions, Action{Kind: ActionDrop, Packet: p.Handle, Site: e.Site})
	if e.pushSeen == len(e.Actions)-1 {
		e.pushSeen = len(e.Actions)
	}
}

// PushCount returns how many ActionPush entries were recorded. The
// substrate's calling model uses it to decide whether another execution
// may make progress (compressed executions, §4.1). The count is
// maintained incrementally; it only falls back to a recount after the
// Actions slice was modified behind the environment's back.
//
//progmp:hotpath
//progmp:deterministic
func (e *Env) PushCount() int {
	if e.pushSeen != len(e.Actions) {
		n := 0
		for i := range e.Actions {
			if e.Actions[i].Kind == ActionPush {
				n++
			}
		}
		e.pushes = n
		e.pushSeen = len(e.Actions)
	}
	return e.pushes
}
