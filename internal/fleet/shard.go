package fleet

import (
	"time"

	"progmp/internal/guard"
	"progmp/internal/mptcp"
	"progmp/internal/obs"
)

// wheelBuckets is the hashed timing wheel's bucket count (power of
// two). With the default 5 ms slice the wheel spans 1.28 s per wrap;
// entries further out simply keep their absolute due slice and ride
// the wrap (classic hashed wheel semantics).
const wheelBuckets = 256

// evictEvery is how many slices pass between shared-store idle sweeps
// per shard; evictIdleEpochs is the staleness bar a destination record
// must clear (store epochs advance on every record write, so this is
// deliberately generous).
const (
	evictEvery      = 64
	evictIdleEpochs = 1024
)

// wheelEntry files one connection for service at an absolute slice.
type wheelEntry struct {
	conn int32
	due  uint64
}

// wheel is a hashed timing wheel over virtual-time slices: bucket
// cur&mask holds the connections due for service this slice (plus any
// future-wrap entries, which advance re-files).
type wheel struct {
	slice   time.Duration
	buckets [wheelBuckets][]wheelEntry
	cur     uint64
}

// sliceOf maps an event time to the slice that services it (the first
// slice whose RunUntil deadline is >= at), never earlier than the next
// slice.
//
//progmp:hotpath
//progmp:deterministic
func (w *wheel) sliceOf(at time.Duration) uint64 {
	s := uint64((at + w.slice - 1) / w.slice)
	if s <= w.cur {
		s = w.cur + 1
	}
	return s
}

// schedule files conn at absolute slice due.
//
//progmp:hotpath
//progmp:deterministic
func (w *wheel) schedule(conn int32, due uint64) {
	b := &w.buckets[due%wheelBuckets]
	//progmp:ignore hotpath amortized: bucket capacity is retained across wheel wraps
	*b = append(*b, wheelEntry{conn: conn, due: due})
}

// advance moves to the next slice and returns the connections due in
// it. Entries hashed into the bucket for a later wrap are kept (in
// place, preserving insertion order) for their own slice.
//
//progmp:hotpath
//progmp:deterministic
func (w *wheel) advance(ready []int32) []int32 {
	w.cur++
	b := &w.buckets[w.cur%wheelBuckets]
	kept := (*b)[:0]
	for _, e := range *b {
		if e.due == w.cur {
			//progmp:ignore hotpath amortized: the caller recycles the ready batch across slices
			ready = append(ready, e.conn)
		} else {
			//progmp:ignore hotpath in-place: kept re-files into the bucket's own storage
			kept = append(kept, e)
		}
	}
	*b = kept
	return ready
}

// shard is one per-core driver: a goroutine-owned subset of the
// fleet's connections, a timer wheel batching their wakeups, and the
// shard-local observability registry every connection resolves its
// handles from.
type shard struct {
	id    int
	cfg   *Config
	sched mptcp.Scheduler
	conns []*fleetConn
	w     wheel

	reg      *obs.Registry
	mDelivUS *obs.Histogram
	mRetired *obs.Counter
	gConns   *obs.Gauge
	fleet    *guard.Fleet

	evicted int64
}

func newShard(id int, cfg *Config, sched mptcp.Scheduler) *shard {
	sh := &shard{
		id:    id,
		cfg:   cfg,
		sched: sched,
		reg:   obs.NewRegistry(),
	}
	sh.w.slice = cfg.Slice
	sh.mDelivUS = sh.reg.Histogram("fleet.delivery_us")
	sh.mRetired = sh.reg.Counter("fleet.retired")
	sh.gConns = sh.reg.Gauge("fleet.conns")
	if cfg.Guard {
		sh.fleet = guard.NewFleet(guard.FleetConfig{})
		sh.fleet.Instrument(nil, sh.reg)
	}
	return sh
}

// retire marks a connection done (its engine drained): its shared-
// store destination references are released so idle sweeps can
// reclaim the records.
//
//progmp:deterministic
func (sh *shard) retire(fc *fleetConn) {
	if fc.retired {
		return
	}
	fc.retired = true
	fc.conn.ReleaseDests()
	sh.mRetired.Add(1)
}

// run drives the shard's connections to the horizon: per slice, pop
// the due batch off the wheel, advance each engine with one RunUntil,
// and re-file each at its next event.
//
//progmp:deterministic
func (sh *shard) run() {
	sh.gConns.Set(int64(len(sh.conns)))
	horizon, slice := sh.cfg.Duration, sh.cfg.Slice
	for i, fc := range sh.conns {
		if at, ok := fc.eng.NextEventAt(); ok {
			sh.w.schedule(int32(i), sh.w.sliceOf(at))
		} else {
			sh.retire(fc)
		}
	}
	last := uint64((horizon + slice - 1) / slice)
	var ready []int32
	for s := uint64(1); s <= last; s++ {
		now := time.Duration(s) * slice
		if now > horizon {
			now = horizon
		}
		ready = sh.w.advance(ready[:0])
		for _, ci := range ready {
			fc := sh.conns[ci]
			fc.eng.RunUntil(now)
			if at, ok := fc.eng.NextEventAt(); ok {
				if at <= horizon {
					sh.w.schedule(ci, sh.w.sliceOf(at))
					continue
				}
				// Parked: the next event (a think-time wakeup, a long
				// RTO) lands past the horizon; the soak never services
				// it, so the connection is done for accounting.
			}
			sh.retire(fc)
		}
		if sh.cfg.Store != nil && s%evictEvery == 0 {
			sh.evicted += int64(sh.cfg.Store.EvictIdle(evictIdleEpochs))
		}
	}
	// Horizon reached: every connection still filed on the wheel has
	// already run past its last in-horizon event; release whatever
	// store references remain.
	for _, fc := range sh.conns {
		sh.retire(fc)
	}
}
