package fleet

import (
	"testing"
	"time"

	"progmp/internal/core"
	"progmp/internal/mptcp"
	"progmp/internal/obs"
	"progmp/internal/runtime"
	"progmp/internal/schedlib"
	"progmp/internal/xstate"
)

func vmScheduler(t *testing.T, name string) func() (mptcp.Scheduler, error) {
	t.Helper()
	return func() (mptcp.Scheduler, error) {
		s, err := core.Load(name, schedlib.All[name], core.BackendVM)
		if err != nil {
			return nil, err
		}
		return s, nil
	}
}

// TestShardCountInvariance pins the fleet's core determinism
// property: a connection's trajectory depends only on the fleet seed
// and its index, so the same seeded connection set delivers
// byte-identically whether 1, 2 or 8 shards drive it.
func TestShardCountInvariance(t *testing.T) {
	run := func(shards int) Result {
		res, err := Run(Config{
			Conns:        64,
			Shards:       shards,
			Seed:         7,
			Duration:     800 * time.Millisecond,
			SendBytes:    16 << 10,
			Think:        60 * time.Millisecond,
			LossProb:     0.02, // exercise the per-connection rng
			NewScheduler: vmScheduler(t, "minRTT"),
			Program:      "minRTT",
			Conservation: true,
		})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if len(res.ConservationViolations) > 0 {
			t.Fatalf("%d shards: conservation violated: %v", shards, res.ConservationViolations)
		}
		if res.DeliveredBytes == 0 {
			t.Fatalf("%d shards: nothing delivered", shards)
		}
		return res
	}
	base := run(1)
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if got.DeliveredBytes != base.DeliveredBytes || got.Bursts != base.Bursts || got.Acked != base.Acked {
			t.Fatalf("fleet totals diverge: %d shards delivered=%d bursts=%d acked=%d, 1 shard delivered=%d bursts=%d acked=%d",
				shards, got.DeliveredBytes, got.Bursts, got.Acked, base.DeliveredBytes, base.Bursts, base.Acked)
		}
		for i := range base.PerConn {
			if got.PerConn[i] != base.PerConn[i] {
				t.Fatalf("conn %d diverges across shard counts: %d shards %+v, 1 shard %+v",
					i, shards, got.PerConn[i], base.PerConn[i])
			}
		}
	}
}

// TestSliceSizeInvariance: the wheel's batching quantum is a
// performance knob, never a semantic one.
func TestSliceSizeInvariance(t *testing.T) {
	run := func(slice time.Duration) Result {
		res, err := Run(Config{
			Conns:        16,
			Shards:       2,
			Seed:         11,
			Duration:     500 * time.Millisecond,
			Slice:        slice,
			NewScheduler: vmScheduler(t, "minRTT"),
			Conservation: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ConservationViolations) > 0 {
			t.Fatalf("slice %v: conservation violated: %v", slice, res.ConservationViolations)
		}
		return res
	}
	a, b := run(time.Millisecond), run(20*time.Millisecond)
	if a.DeliveredBytes != b.DeliveredBytes {
		t.Fatalf("slice size changed delivery: 1ms %d bytes, 20ms %d bytes", a.DeliveredBytes, b.DeliveredBytes)
	}
	for i := range a.PerConn {
		if a.PerConn[i] != b.PerConn[i] {
			t.Fatalf("conn %d diverges across slice sizes: %+v vs %+v", i, a.PerConn[i], b.PerConn[i])
		}
	}
}

// TestFleetSoakSmoke drives a small fleet end to end and checks the
// reported metrics are coherent: every burst conserved, latencies
// measured, per-shard sources aggregated.
func TestFleetSoakSmoke(t *testing.T) {
	agg := obs.NewAggregator()
	store := xstate.NewStore()
	res, err := Run(Config{
		Conns:        200,
		Shards:       4,
		Seed:         3,
		Duration:     600 * time.Millisecond,
		NewScheduler: vmScheduler(t, "minRTT"),
		Program:      "minRTT",
		Store:        store,
		Agg:          agg,
		DestGroups:   8,
		Conservation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConservationViolations) > 0 {
		t.Fatalf("conservation violated: %v", res.ConservationViolations)
	}
	if res.DeliveredBytes == 0 || res.Bursts < int64(res.Conns) {
		t.Fatalf("soak barely ran: %+v", res)
	}
	if res.Acked == 0 {
		t.Fatal("no connection fully acknowledged")
	}
	if res.DecisionP99NS == 0 {
		t.Fatal("decision latency not measured")
	}
	if res.DeliveryP99US == 0 {
		t.Fatal("delivery latency not measured")
	}
	if res.Events == 0 {
		t.Fatal("engine events not counted")
	}
	if res.BytesPerConn <= 0 {
		t.Fatalf("BytesPerConn = %d", res.BytesPerConn)
	}
	snap := agg.Aggregate()
	if snap.NumSources != 4 {
		t.Fatalf("aggregator sources = %d, want 4 shards", snap.NumSources)
	}
	// Every connection released its store references at retirement, so
	// a zero-idle sweep reclaims every destination record.
	if n := store.NumDests(); n == 0 {
		t.Fatal("store never saw a destination")
	}
	store.EvictIdle(0)
	if n := store.NumDests(); n != 0 {
		t.Fatalf("%d dest records still referenced after the fleet retired", n)
	}
}

// TestFleetGuardSmoke runs a supervised fleet: a scheduler that
// panics on every execution must quarantine everywhere while the
// fallback keeps bytes flowing.
func TestFleetGuardSmoke(t *testing.T) {
	res, err := Run(Config{
		Conns:        8,
		Shards:       2,
		Seed:         5,
		Duration:     400 * time.Millisecond,
		NewScheduler: func() (mptcp.Scheduler, error) { return panicScheduler{}, nil },
		Program:      "panicky",
		Guard:        true,
		Conservation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConservationViolations) > 0 {
		t.Fatalf("conservation violated: %v", res.ConservationViolations)
	}
	if res.DeliveredBytes == 0 {
		t.Fatal("guarded fleet delivered nothing (fallback not engaged?)")
	}
}

type panicScheduler struct{}

func (panicScheduler) Exec(env *runtime.Env) { panic("deliberate") }

func TestWheelWrapAround(t *testing.T) {
	w := &wheel{slice: time.Millisecond}
	// Due slice beyond one wrap hashes into an occupied bucket but must
	// not fire until its own slice.
	w.schedule(1, 3)
	w.schedule(2, 3+wheelBuckets)
	var fired []uint64
	var ready []int32
	for s := uint64(1); s <= 3+wheelBuckets; s++ {
		ready = w.advance(ready[:0])
		for _, c := range ready {
			fired = append(fired, uint64(c)<<32|s)
		}
	}
	want := []uint64{1<<32 | 3, 2<<32 | (3 + wheelBuckets)}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("wheel fired %x, want %x", fired, want)
	}
}

// fakeChecker seeds collectViolations with known findings without
// having to manufacture a real conservation violation.
type fakeChecker []string

func (f fakeChecker) Violations() []string { return f }

// TestViolationReportShardOrderInvariant pins the report's ordering:
// violations read in connection-index order no matter how the fleet
// was split across shards. Regression: the report used to be appended
// in shard-walk order, so the same fleet produced differently-ordered
// reports at different shard counts.
func TestViolationReportShardOrderInvariant(t *testing.T) {
	const n = 6
	conns := make([]*fleetConn, n)
	var want []string
	for i := range conns {
		v := fakeChecker{
			"conn " + string(rune('0'+i)) + ": first",
			"conn " + string(rune('0'+i)) + ": second",
		}
		conns[i] = &fleetConn{idx: i, check: v}
		want = append(want, v...)
	}
	layouts := map[string][]*shard{
		"1shard": {{conns: conns}},
		"3shards": func() []*shard {
			sh := []*shard{{}, {}, {}}
			for i, fc := range conns {
				sh[i%3].conns = append(sh[i%3].conns, fc)
			}
			return sh
		}(),
		"reversed": {{conns: []*fleetConn{conns[5], conns[3], conns[1]}},
			{conns: []*fleetConn{conns[4], conns[2], conns[0]}}},
	}
	for name, shards := range layouts {
		got := collectViolations(shards, n)
		if len(got) != len(want) {
			t.Fatalf("%s: %d violations, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: violation %d = %q, want %q (report must read in connection-index order)",
					name, i, got[i], want[i])
			}
		}
	}
}
